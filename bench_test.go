// Benchmarks that regenerate the paper's evaluation, one per table and
// figure (Section 8). Each benchmark runs the corresponding experiment of
// internal/bench at a reduced scale so `go test -bench=.` completes in
// minutes; `cmd/tarbench` runs the same experiments at any scale and prints
// the full tables. The benchmarks report the TAR-tree's mean node accesses
// per query as a custom metric where the experiment measures them.
package tartree_test

import (
	"strconv"
	"testing"

	"tartree/internal/bench"
	"tartree/internal/lbsn"
	"tartree/internal/obs"
)

// benchConfig keeps a full -bench=. sweep fast while preserving trends.
func benchConfig() bench.Config {
	return bench.Config{Datasets: []string{"GS"}, Scale: 0.06, Queries: 10, Seed: 1}
}

// runExperiment executes one experiment per benchmark iteration and, when a
// node-access column exists, reports the TAR-tree's (or the last method's)
// mean as a metric.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	fn := bench.Experiments[id]
	if fn == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	var lastNA float64
	for i := 0; i < b.N; i++ {
		tables, err := fn(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			naCol := -1
			for c, h := range t.Header {
				if h == "node accesses" {
					naCol = c
				}
			}
			if naCol < 0 {
				continue
			}
			for _, row := range t.Rows {
				if v, err := strconv.ParseFloat(row[naCol], 64); err == nil {
					lastNA = v
				}
			}
		}
	}
	if lastNA > 0 {
		b.ReportMetric(lastNA, "node-accesses/query")
	}
}

// Table 2: power-law fitting of the aggregate data (Section 6.1).
func BenchmarkTable2PowerLawFit(b *testing.B) { runExperiment(b, "table2") }

// Table 4: data set statistics (generator calibration).
func BenchmarkTable4Datasets(b *testing.B) { runExperiment(b, "table4") }

// Figure 6: cost analysis validation varying k.
func BenchmarkFig6CostValidationK(b *testing.B) { runExperiment(b, "fig6") }

// Figure 7: cost analysis validation varying α0.
func BenchmarkFig7CostValidationAlpha(b *testing.B) { runExperiment(b, "fig7") }

// Figure 8: TAR-tree vs alternatives while the LBSN grows.
func BenchmarkFig8Growth(b *testing.B) { runExperiment(b, "fig8") }

// Figure 9: TAR-tree vs alternatives varying k.
func BenchmarkFig9VaryK(b *testing.B) { runExperiment(b, "fig9") }

// Figure 10: TAR-tree vs alternatives varying α0.
func BenchmarkFig10VaryAlpha(b *testing.B) { runExperiment(b, "fig10") }

// Figure 11: TAR-tree vs alternatives varying the epoch length.
func BenchmarkFig11EpochLength(b *testing.B) { runExperiment(b, "fig11") }

// Figure 12: TAR-tree vs alternatives varying the R-tree node size.
func BenchmarkFig12NodeSize(b *testing.B) { runExperiment(b, "fig12") }

// Figure 13: minimum weight adjustment, enumerating vs pruning, varying k.
func BenchmarkFig13MWAVaryK(b *testing.B) { runExperiment(b, "fig13") }

// Figure 14: minimum weight adjustment varying α0.
func BenchmarkFig14MWAVaryAlpha(b *testing.B) { runExperiment(b, "fig14") }

// Figure 15: collective vs individual processing, varying the batch size.
func BenchmarkFig15CollectiveN(b *testing.B) { runExperiment(b, "fig15") }

// Figure 16: collective vs individual processing, varying the query types.
func BenchmarkFig16CollectiveTypes(b *testing.B) { runExperiment(b, "fig16") }

// Ablation benchmarks: design choices beyond the paper's figures.

// TIA backend choice (mem / B+-tree / MVBT).
func BenchmarkAblationTIABackend(b *testing.B) { runExperiment(b, "abl-backend") }

// Per-TIA buffer pool size (the paper fixes 10 slots).
func BenchmarkAblationBufferSlots(b *testing.B) { runExperiment(b, "abl-buffer") }

// R* forced reinsertion vs plain splits vs STR bulk loading.
func BenchmarkAblationReinsert(b *testing.B) { runExperiment(b, "abl-reinsert") }

// Cost-model distance-scale correction.
func BenchmarkAblationDistScale(b *testing.B) { runExperiment(b, "abl-distscale") }

// Observability overhead: BenchmarkQuery_Bare vs BenchmarkQuery_Instrumented
// run the same query stream against an uninstrumented and a fully
// instrumented (Options.Metrics, nil trace) tree. Compare with benchstat
// over -count=10: the expected delta is <2%, because the disabled-trace
// path is nil-receiver no-ops, per-query metrics are a dozen atomic adds,
// and the page sink costs one interface call per TIA buffer access. Single
// runs on a shared machine have more noise than the effect being measured.

func benchQueryTree(b *testing.B, reg *obs.Registry) {
	b.Helper()
	spec, err := lbsn.SpecByName("GS")
	if err != nil {
		b.Fatal(err)
	}
	d, err := lbsn.Generate(spec.Scaled(0.06))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := d.Build(lbsn.BuildOptions{Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	queries := d.Queries(64, 10, 0.3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Query(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuery_Bare(b *testing.B) { benchQueryTree(b, nil) }

func BenchmarkQuery_Instrumented(b *testing.B) { benchQueryTree(b, obs.NewRegistry()) }
