package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"tartree/internal/obs"
)

// snapshot is the subset of a BENCH_<exp>.json document benchdiff compares.
// The metrics map mixes counter samples (JSON numbers) and histogram
// snapshots (objects with count/sum/p50/p95/p99); both are kept raw and
// classified per key.
type snapshot struct {
	Experiment string                     `json:"experiment"`
	Config     map[string]any             `json:"config"`
	Metrics    map[string]json.RawMessage `json:"metrics"`
	TIAProbes  map[string]int64           `json:"tia_probes"`
}

// histogram is the HistogramSnapshot shape written by tarbench.
type histogram struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

func readSnapshot(path string) (snapshot, error) {
	var s snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if s.Metrics == nil {
		return s, fmt.Errorf("%s: no metrics section (was the run missing -json?)", path)
	}
	return s, nil
}

// options are the regression thresholds. A metric regresses when
// current > baseline * tol (tol 1.10 = allow 10% growth); drops are
// reported as improvements, never as failures.
type options struct {
	CountTol    float64 // deterministic work counters and probe counts
	LatencyTol  float64 // histogram p50/p95
	SkipLatency bool    // ignore latency metrics (CI machines are noisy)
}

// finding is one compared sample.
type finding struct {
	Name       string
	Baseline   float64
	Current    float64
	Tol        float64
	Regression bool
	Missing    bool // metric present in the baseline, absent in the run
	// HigherBetter marks throughput-style samples (:qps), where a drop is
	// the regression and growth is the improvement.
	HigherBetter bool
}

func (f finding) String() string {
	if f.Missing {
		return fmt.Sprintf("MISSING  %-60s baseline %.6g", f.Name, f.Baseline)
	}
	verdict := "ok"
	switch {
	case f.Regression:
		verdict = "REGRESSION"
	case f.HigherBetter && f.Baseline > 0 && f.Current > f.Baseline*f.Tol:
		verdict = "improved"
	case !f.HigherBetter && f.Baseline > 0 && f.Current < f.Baseline/f.Tol:
		verdict = "improved"
	}
	return fmt.Sprintf("%-10s %-60s %.6g -> %.6g (tol ×%.2f)",
		verdict, f.Name, f.Baseline, f.Current, f.Tol)
}

// isLatencyKey classifies a metric name: histogram-backed series carry
// seconds in the base name.
func isLatencyKey(name string) bool {
	base := name
	if i := strings.IndexByte(base, '{'); i >= 0 {
		base = base[:i]
	}
	return strings.HasSuffix(base, "_seconds")
}

// regressed applies the threshold. A baseline of zero regresses only when
// the run grew a meaningful value (guards against 0 → 0.0001 flapping).
func regressed(base, cur, tol float64) bool {
	if base == 0 {
		return cur > 1
	}
	return cur > base*tol
}

// evalSLOs gates a single snapshot against parsed objectives. An objective
// for service S applies to every histogram metric whose base name contains
// "S_latency_seconds" (so "query:p99<50ms" covers each
// bench_query_latency_seconds{method=...} series); the snapshot's recorded
// quantile must sit at or under the threshold. error_rate objectives are
// skipped — bench snapshots carry no error counts. An objective matching no
// metric is itself a failure: a gate that silently checks nothing is worse
// than no gate.
func evalSLOs(objs []obs.Objective, snap snapshot) []finding {
	var out []finding
	names := make([]string, 0, len(snap.Metrics))
	for name := range snap.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, o := range objs {
		if o.Kind == "error_rate" {
			continue
		}
		matched := false
		for _, name := range names {
			base := name
			if i := strings.IndexByte(base, '{'); i >= 0 {
				base = base[:i]
			}
			if !strings.Contains(base, o.Service+"_latency_seconds") {
				continue
			}
			var h histogram
			if json.Unmarshal(snap.Metrics[name], &h) != nil || h.Count == 0 {
				continue
			}
			var q float64
			switch o.Kind {
			case "p50":
				q = h.P50
			case "p95":
				q = h.P95
			case "p99":
				q = h.P99
			default:
				out = append(out, finding{
					Name: "slo " + o.String(), Baseline: o.Threshold,
					Missing: true, Regression: true,
				})
				continue
			}
			matched = true
			out = append(out, finding{
				Name: "slo " + o.String() + " @ " + name,
				Baseline: o.Threshold, Current: q, Tol: 1,
				Regression: q > o.Threshold,
			})
		}
		if !matched {
			out = append(out, finding{
				Name: "slo " + o.String() + " (no matching metric)",
				Baseline: o.Threshold, Missing: true, Regression: true,
			})
		}
	}
	return out
}

// compare walks every baseline metric and probe count. Samples only in the
// current snapshot are ignored: new metrics are not regressions.
func compare(base, cur snapshot, opt options) []finding {
	var out []finding
	names := make([]string, 0, len(base.Metrics))
	for name := range base.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		latency := isLatencyKey(name)
		if latency && opt.SkipLatency {
			continue
		}
		var bh, ch histogram
		if err := json.Unmarshal(base.Metrics[name], &bh); err == nil && bh.Count > 0 {
			raw, ok := cur.Metrics[name]
			if !ok || json.Unmarshal(raw, &ch) != nil {
				out = append(out, finding{Name: name, Baseline: float64(bh.Count), Missing: true, Regression: true})
				continue
			}
			// The observation count is deterministic (one per query);
			// the quantiles are wall-clock and get the looser tolerance.
			out = append(out, finding{
				Name: name + ":count", Baseline: float64(bh.Count), Current: float64(ch.Count),
				Tol: opt.CountTol, Regression: regressed(float64(bh.Count), float64(ch.Count), opt.CountTol),
			})
			if !latency {
				continue
			}
			for _, q := range []struct {
				suffix    string
				base, cur float64
			}{{":p50", bh.P50, ch.P50}, {":p95", bh.P95, ch.P95}} {
				out = append(out, finding{
					Name: name + q.suffix, Baseline: q.base, Current: q.cur,
					Tol: opt.LatencyTol, Regression: regressed(q.base, q.cur, opt.LatencyTol),
				})
			}
			// Throughput: count/sum is the aggregate queries-per-second the
			// histogram implies. Higher is better, so the regression test is
			// inverted: fail when the run fell below baseline/tol.
			if bh.Sum > 0 && ch.Sum > 0 {
				bq, cq := float64(bh.Count)/bh.Sum, float64(ch.Count)/ch.Sum
				out = append(out, finding{
					Name: name + ":qps", Baseline: bq, Current: cq,
					Tol: opt.LatencyTol, HigherBetter: true,
					Regression: bq > 0 && cq < bq/opt.LatencyTol,
				})
			}
			continue
		}
		var bv float64
		if err := json.Unmarshal(base.Metrics[name], &bv); err != nil {
			continue // non-numeric, non-histogram: nothing to compare
		}
		raw, ok := cur.Metrics[name]
		var cv float64
		if !ok || json.Unmarshal(raw, &cv) != nil {
			out = append(out, finding{Name: name, Baseline: bv, Missing: true, Regression: true})
			continue
		}
		tol := opt.CountTol
		if latency {
			tol = opt.LatencyTol
		}
		out = append(out, finding{
			Name: name, Baseline: bv, Current: cv,
			Tol: tol, Regression: regressed(bv, cv, tol),
		})
	}

	probes := make([]string, 0, len(base.TIAProbes))
	for k := range base.TIAProbes {
		probes = append(probes, k)
	}
	sort.Strings(probes)
	for _, k := range probes {
		bv := float64(base.TIAProbes[k])
		if bv == 0 {
			continue // backend unused by this experiment
		}
		cv, ok := cur.TIAProbes[k]
		if !ok {
			out = append(out, finding{Name: "tia_probes." + k, Baseline: bv, Missing: true, Regression: true})
			continue
		}
		out = append(out, finding{
			Name: "tia_probes." + k, Baseline: bv, Current: float64(cv),
			Tol: opt.CountTol, Regression: regressed(bv, float64(cv), opt.CountTol),
		})
	}
	return out
}
