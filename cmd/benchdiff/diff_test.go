package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tartree/internal/obs"
)

func rawMetrics(t *testing.T, m map[string]any) map[string]json.RawMessage {
	t.Helper()
	out := make(map[string]json.RawMessage, len(m))
	for k, v := range m {
		blob, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		out[k] = blob
	}
	return out
}

func testSnapshot(t *testing.T) snapshot {
	return snapshot{
		Experiment: "smoke",
		Metrics: rawMetrics(t, map[string]any{
			`bench_node_accesses_total{method="TAR-tree"}`: 120,
			`bench_results_total{method="TAR-tree"}`:       200,
			`bench_query_latency_seconds{method="TAR-tree"}`: map[string]any{
				"count": 20, "sum": 0.1, "p50": 0.004, "p95": 0.009, "p99": 0.012,
			},
		}),
		TIAProbes: map[string]int64{"btree": 900, "mem": 0},
	}
}

func defaultOpts() options {
	return options{CountTol: 1.10, LatencyTol: 1.30}
}

func countRegressions(fs []finding) int {
	n := 0
	for _, f := range fs {
		if f.Regression {
			n++
		}
	}
	return n
}

func TestCompareIdenticalSnapshots(t *testing.T) {
	base := testSnapshot(t)
	cur := testSnapshot(t)
	fs := compare(base, cur, defaultOpts())
	if len(fs) == 0 {
		t.Fatal("no samples compared")
	}
	if n := countRegressions(fs); n != 0 {
		t.Fatalf("identical snapshots produced %d regressions: %v", n, fs)
	}
}

func TestCompareCountRegression(t *testing.T) {
	base := testSnapshot(t)
	cur := testSnapshot(t)
	cur.Metrics[`bench_node_accesses_total{method="TAR-tree"}`] = json.RawMessage("150") // +25% > 10% tol
	fs := compare(base, cur, defaultOpts())
	if n := countRegressions(fs); n != 1 {
		t.Fatalf("want exactly the node-access regression, got %d: %v", n, fs)
	}
	// Within tolerance: 120 → 130 is under ×1.10.
	cur.Metrics[`bench_node_accesses_total{method="TAR-tree"}`] = json.RawMessage("130")
	if n := countRegressions(compare(base, cur, defaultOpts())); n != 0 {
		t.Fatalf("within-tolerance growth flagged: %v", compare(base, cur, defaultOpts()))
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base := testSnapshot(t)
	cur := testSnapshot(t)
	cur.Metrics[`bench_node_accesses_total{method="TAR-tree"}`] = json.RawMessage("60")
	cur.TIAProbes["btree"] = 400
	if n := countRegressions(compare(base, cur, defaultOpts())); n != 0 {
		t.Fatal("improvements flagged as regressions")
	}
}

func TestCompareLatencyRegression(t *testing.T) {
	base := testSnapshot(t)
	cur := testSnapshot(t)
	cur.Metrics[`bench_query_latency_seconds{method="TAR-tree"}`], _ = json.Marshal(map[string]any{
		"count": 20, "sum": 0.3, "p50": 0.02, "p95": 0.05, "p99": 0.08, // 5× slower
	})
	if n := countRegressions(compare(base, cur, defaultOpts())); n != 3 { // p50, p95, qps
		t.Fatalf("want 3 latency regressions, got %d", n)
	}
	// -skip-latency must ignore them.
	opt := defaultOpts()
	opt.SkipLatency = true
	if n := countRegressions(compare(base, cur, opt)); n != 0 {
		t.Fatal("skip-latency still flagged latency")
	}
}

// TestCompareThroughputDelta covers the :qps sample derived from latency
// histograms: count/sum in queries per second, with the regression test
// inverted (a throughput DROP fails, growth is an improvement).
func TestCompareThroughputDelta(t *testing.T) {
	const key = `bench_query_latency_seconds{method="TAR-tree"}`
	base := testSnapshot(t) // count 20 / sum 0.1 → 200 qps

	// Same work, 40% more wall time → 143 qps, below 200/1.30: only the
	// qps sample regresses (quantiles kept inside their tolerance).
	cur := testSnapshot(t)
	cur.Metrics[key], _ = json.Marshal(map[string]any{
		"count": 20, "sum": 0.14, "p50": 0.0048, "p95": 0.0108, "p99": 0.014,
	})
	fs := compare(base, cur, defaultOpts())
	var qps *finding
	for i := range fs {
		if fs[i].Name == key+":qps" {
			qps = &fs[i]
		}
	}
	if qps == nil {
		t.Fatalf("no :qps sample in %v", fs)
	}
	if !qps.Regression || !qps.HigherBetter {
		t.Errorf("throughput drop not flagged: %+v", qps)
	}
	if qps.Baseline != 200 || qps.Current < 142 || qps.Current > 144 {
		t.Errorf("qps values = %.6g -> %.6g, want 200 -> ~142.9", qps.Baseline, qps.Current)
	}
	if n := countRegressions(fs); n != 1 {
		t.Errorf("want only the qps regression, got %d: %v", n, fs)
	}

	// Faster run: qps grows, nothing regresses, the sample reads improved.
	fast := testSnapshot(t)
	fast.Metrics[key], _ = json.Marshal(map[string]any{
		"count": 20, "sum": 0.05, "p50": 0.002, "p95": 0.005, "p99": 0.006,
	})
	fs = compare(base, fast, defaultOpts())
	if n := countRegressions(fs); n != 0 {
		t.Fatalf("throughput growth flagged: %v", fs)
	}
	for _, f := range fs {
		if f.Name == key+":qps" && !strings.Contains(f.String(), "improved") {
			t.Errorf("doubled qps not reported as improved: %s", f.String())
		}
	}

	// -skip-latency must skip throughput too (it is wall-clock derived).
	opt := defaultOpts()
	opt.SkipLatency = true
	for _, f := range compare(base, cur, opt) {
		if f.Name == key+":qps" {
			t.Error("skip-latency kept the qps sample")
		}
	}
}

func TestCompareMissingMetric(t *testing.T) {
	base := testSnapshot(t)
	cur := testSnapshot(t)
	delete(cur.Metrics, `bench_results_total{method="TAR-tree"}`)
	fs := compare(base, cur, defaultOpts())
	found := false
	for _, f := range fs {
		if f.Missing && f.Regression {
			found = true
		}
	}
	if !found {
		t.Fatalf("disappeared metric not flagged: %v", fs)
	}
	// Extra metrics in the current run are fine.
	cur2 := testSnapshot(t)
	cur2.Metrics["bench_new_total"] = json.RawMessage("5")
	if n := countRegressions(compare(base, cur2, defaultOpts())); n != 0 {
		t.Fatal("new metric flagged as regression")
	}
}

func TestCompareProbeRegression(t *testing.T) {
	base := testSnapshot(t)
	cur := testSnapshot(t)
	cur.TIAProbes["btree"] = 2000
	if n := countRegressions(compare(base, cur, defaultOpts())); n != 1 {
		t.Fatal("probe blowup not flagged")
	}
	// A backend unused in the baseline (0 probes) never gates.
	cur.TIAProbes["btree"] = 900
	cur.TIAProbes["mem"] = 50
	if n := countRegressions(compare(base, cur, defaultOpts())); n != 0 {
		t.Fatal("unused-baseline backend gated")
	}
}

func TestReadSnapshotErrors(t *testing.T) {
	if _, err := readSnapshot(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readSnapshot(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	nometrics := filepath.Join(t.TempDir(), "m.json")
	if err := os.WriteFile(nometrics, []byte(`{"experiment":"smoke"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readSnapshot(nometrics); err == nil {
		t.Error("snapshot without metrics accepted")
	}
}

// TestReadSnapshotRoundTrip reads a real document shape (subset of what
// tarbench writes) from disk.
func TestReadSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_smoke.json")
	doc := `{
  "experiment": "smoke",
  "config": {"scale": 0.06, "queries": 20, "seed": 1},
  "metrics": {
    "bench_node_accesses_total{method=\"TAR-tree\"}": 120,
    "bench_query_latency_seconds{method=\"TAR-tree\"}": {"bounds": [0.001], "counts": [20, 0], "sum": 0.01, "count": 20, "p50": 0.0005, "p95": 0.0009, "p99": 0.001}
  },
  "tia_probes": {"btree": 900}
}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := readSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	fs := compare(s, s, defaultOpts())
	if len(fs) == 0 || countRegressions(fs) != 0 {
		t.Fatalf("self-comparison = %v", fs)
	}
}

func TestEvalSLOs(t *testing.T) {
	snap := testSnapshot(t) // query p99 = 0.012s
	mustSLOs := func(spec string) []obs.Objective {
		t.Helper()
		objs, err := obs.ParseSLOs(spec)
		if err != nil {
			t.Fatal(err)
		}
		return objs
	}

	// Attained objective: one finding per matching series, no regressions.
	fs := evalSLOs(mustSLOs("query:p99<50ms"), snap)
	if len(fs) != 1 || countRegressions(fs) != 0 {
		t.Fatalf("attained SLO: %v", fs)
	}

	// Doctored snapshot: p99 above threshold fails the gate.
	doctored := testSnapshot(t)
	doctored.Metrics[`bench_query_latency_seconds{method="TAR-tree"}`] = json.RawMessage(
		`{"count":20,"sum":2,"p50":0.004,"p95":0.009,"p99":0.099}`)
	fs = evalSLOs(mustSLOs("query:p99<50ms"), doctored)
	if countRegressions(fs) != 1 {
		t.Fatalf("doctored snapshot should violate query:p99<50ms: %v", fs)
	}

	// p50 objectives read the p50 field.
	fs = evalSLOs(mustSLOs("query:p50<3ms"), snap)
	if countRegressions(fs) != 1 {
		t.Fatalf("p50=0.004 should violate query:p50<3ms: %v", fs)
	}

	// An objective matching no metric is a failure, not a silent pass.
	fs = evalSLOs(mustSLOs("ingest:p99<50ms"), snap)
	if countRegressions(fs) != 1 || !fs[0].Missing {
		t.Fatalf("unmatched SLO should fail: %v", fs)
	}

	// error_rate objectives are skipped (snapshots carry no error counts).
	fs = evalSLOs(mustSLOs("query:error_rate<0.01"), snap)
	if len(fs) != 0 {
		t.Fatalf("error_rate should be skipped: %v", fs)
	}
}
