// Command benchdiff compares two BENCH_<exp>.json snapshots written by
// tarbench -json and fails when the newer run regressed: work counters
// (node accesses, TIA reads, probe counts) above -count-tol times the
// baseline, latency quantiles above -latency-tol times the baseline, or
// baseline metrics that disappeared. Improvements never fail.
//
// Usage:
//
//	tarbench -exp smoke -json bench/baseline      # refresh the baseline
//	tarbench -exp smoke -json out
//	benchdiff bench/baseline/BENCH_smoke.json out/BENCH_smoke.json
//
// With -slo, benchdiff additionally gates the current snapshot's recorded
// latency quantiles on declarative objectives ("query:p99<50ms"); given a
// single snapshot argument it runs the SLO gate alone:
//
//	benchdiff -slo "query:p99<50ms" bench/baseline/BENCH_smoke.json
//
// Exit status: 0 no regression, 1 regression, 2 usage or unreadable input.
//
// CI runs it with -skip-latency: the counter metrics of the smoke
// experiment are deterministic (same data, same seed ⇒ same counts), while
// wall-clock on shared runners is not.
package main

import (
	"flag"
	"fmt"
	"os"

	"tartree/internal/obs"
)

func main() {
	var (
		countTol    = flag.Float64("count-tol", 1.10, "fail when a work counter exceeds baseline×tol")
		latencyTol  = flag.Float64("latency-tol", 1.30, "fail when a latency quantile exceeds baseline×tol")
		skipLatency = flag.Bool("skip-latency", false, "ignore latency metrics (use on noisy CI runners)")
		sloSpec     = flag.String("slo", "", `gate snapshot quantiles on SLO clauses, e.g. "query:p99<50ms"`)
		quiet       = flag.Bool("q", false, "print only regressions")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] baseline.json current.json\n")
		fmt.Fprintf(os.Stderr, "       benchdiff -slo <spec> snapshot.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	objectives, err := obs.ParseSLOs(*sloSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	// With -slo, a single snapshot is a pure SLO gate; two snapshots run
	// both the regression comparison and the gate on the current run.
	if flag.NArg() != 2 && !(flag.NArg() == 1 && len(objectives) > 0) {
		flag.Usage()
		os.Exit(2)
	}
	var findings []finding
	cur, err := readSnapshot(flag.Arg(flag.NArg() - 1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if flag.NArg() == 2 {
		base, err := readSnapshot(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		if base.Experiment != cur.Experiment {
			fmt.Fprintf(os.Stderr, "benchdiff: comparing different experiments: %q vs %q\n",
				base.Experiment, cur.Experiment)
			os.Exit(2)
		}
		findings = compare(base, cur, options{
			CountTol:    *countTol,
			LatencyTol:  *latencyTol,
			SkipLatency: *skipLatency,
		})
	}
	findings = append(findings, evalSLOs(objectives, cur)...)
	regressions := 0
	for _, f := range findings {
		if f.Regression {
			regressions++
		}
		if f.Regression || !*quiet {
			fmt.Println(f)
		}
	}
	if regressions > 0 {
		fmt.Printf("\nbenchdiff: %d regression(s) against %s\n", regressions, flag.Arg(0))
		os.Exit(1)
	}
	fmt.Printf("\nbenchdiff: no regressions (%d samples compared)\n", len(findings))
}
