// Command benchdiff compares two BENCH_<exp>.json snapshots written by
// tarbench -json and fails when the newer run regressed: work counters
// (node accesses, TIA reads, probe counts) above -count-tol times the
// baseline, latency quantiles above -latency-tol times the baseline, or
// baseline metrics that disappeared. Improvements never fail.
//
// Usage:
//
//	tarbench -exp smoke -json bench/baseline      # refresh the baseline
//	tarbench -exp smoke -json out
//	benchdiff bench/baseline/BENCH_smoke.json out/BENCH_smoke.json
//
// Exit status: 0 no regression, 1 regression, 2 usage or unreadable input.
//
// CI runs it with -skip-latency: the counter metrics of the smoke
// experiment are deterministic (same data, same seed ⇒ same counts), while
// wall-clock on shared runners is not.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		countTol    = flag.Float64("count-tol", 1.10, "fail when a work counter exceeds baseline×tol")
		latencyTol  = flag.Float64("latency-tol", 1.30, "fail when a latency quantile exceeds baseline×tol")
		skipLatency = flag.Bool("skip-latency", false, "ignore latency metrics (use on noisy CI runners)")
		quiet       = flag.Bool("q", false, "print only regressions")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] baseline.json current.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	base, err := readSnapshot(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := readSnapshot(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if base.Experiment != cur.Experiment {
		fmt.Fprintf(os.Stderr, "benchdiff: comparing different experiments: %q vs %q\n",
			base.Experiment, cur.Experiment)
		os.Exit(2)
	}

	findings := compare(base, cur, options{
		CountTol:    *countTol,
		LatencyTol:  *latencyTol,
		SkipLatency: *skipLatency,
	})
	regressions := 0
	for _, f := range findings {
		if f.Regression {
			regressions++
		}
		if f.Regression || !*quiet {
			fmt.Println(f)
		}
	}
	if regressions > 0 {
		fmt.Printf("\nbenchdiff: %d regression(s) against %s\n", regressions, flag.Arg(0))
		os.Exit(1)
	}
	fmt.Printf("\nbenchdiff: no regressions (%d samples compared)\n", len(findings))
}
