// Command datagen materializes one of the calibrated synthetic LBSN data
// sets (NYC, LA, GW, GS) as CSV files: <name>_pois.csv with one row per POI
// and <name>_checkins.csv with one row per check-in. cmd/tarquery can load
// the pair back with its -pois/-checkins flags.
package main

import (
	"flag"
	"fmt"
	"os"

	"tartree/internal/lbsn"
)

func main() {
	var (
		name   = flag.String("dataset", "GS", "data set name (NYC, LA, GW, GS)")
		scale  = flag.Float64("scale", 0.1, "scale in (0,1]")
		out    = flag.String("out", ".", "output directory")
		stream = flag.String("checkins", "", "also write the time-ordered check-in stream (CSV: poi,id,ts) to this file, for replay through the ingest path")
	)
	flag.Parse()

	spec, err := lbsn.SpecByName(*name)
	if err != nil {
		fatal(err)
	}
	d, err := lbsn.Generate(spec.Scaled(*scale))
	if err != nil {
		fatal(err)
	}
	poisPath, checkinsPath, err := d.WriteCSV(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d POIs to %s and %d check-ins to %s\n",
		len(d.POIs), poisPath, d.TotalCheckIns(), checkinsPath)
	if *stream != "" {
		f, err := os.Create(*stream)
		if err != nil {
			fatal(err)
		}
		cs := d.CheckInStream()
		if err := lbsn.WriteCheckInStream(f, cs); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d-record check-in stream to %s\n", len(cs), *stream)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}
