// Command datagen materializes one of the calibrated synthetic LBSN data
// sets (NYC, LA, GW, GS) as CSV files: <name>_pois.csv with one row per POI
// and <name>_checkins.csv with one row per check-in. cmd/tarquery can load
// the pair back with its -pois/-checkins flags.
//
// With -shards N -shard-map map.json it additionally writes an STR-style
// spatial partition of the effective POI set (the ones tarserve would
// index) for a sharded deployment: each shard process loads the map with
// -shard-of i/N -shard-map map.json, the coordinator needs no map.
package main

import (
	"flag"
	"fmt"
	"os"

	"tartree/internal/lbsn"
	"tartree/internal/shard"
)

func main() {
	var (
		name    = flag.String("dataset", "GS", "data set name (NYC, LA, GW, GS)")
		scale   = flag.Float64("scale", 0.1, "scale in (0,1]")
		out     = flag.String("out", ".", "output directory")
		stream  = flag.String("checkins", "", "also write the time-ordered check-in stream (CSV: poi,id,ts) to this file, for replay through the ingest path")
		shards  = flag.Int("shards", 0, "with -shard-map: number of spatial shards to partition the effective POIs into")
		mapFile = flag.String("shard-map", "", "write the shard partition map as JSON to this file (requires -shards)")
	)
	flag.Parse()
	if (*shards > 0) != (*mapFile != "") {
		fatal(fmt.Errorf("-shards and -shard-map must be given together"))
	}

	spec, err := lbsn.SpecByName(*name)
	if err != nil {
		fatal(err)
	}
	d, err := lbsn.Generate(spec.Scaled(*scale))
	if err != nil {
		fatal(err)
	}
	poisPath, checkinsPath, err := d.WriteCSV(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d POIs to %s and %d check-ins to %s\n",
		len(d.POIs), poisPath, d.TotalCheckIns(), checkinsPath)
	if *stream != "" {
		f, err := os.Create(*stream)
		if err != nil {
			fatal(err)
		}
		cs := d.CheckInStream()
		if err := lbsn.WriteCheckInStream(f, cs); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d-record check-in stream to %s\n", len(cs), *stream)
	}
	if *shards > 0 {
		// Partition exactly the POIs tarserve will index (the effective
		// set, with Build's default epoch length and no cutoff), so the
		// shard populations match the served indexes.
		pois := d.EffectivePOIs(0, 0)
		m, err := shard.Partition(pois, *shards, d.World)
		if err != nil {
			fatal(err)
		}
		if err := m.Save(*mapFile); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d-shard map over %d effective POIs to %s\n", *shards, len(pois), *mapFile)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}
