// Command tarbench regenerates the tables and figures of the paper's
// evaluation (Section 8). Each experiment prints the same rows/series the
// paper plots, computed on the calibrated synthetic LBSN data sets.
//
// Usage:
//
//	tarbench -exp fig9                  # one experiment, default datasets
//	tarbench -exp all -datasets GW,GS   # the full evaluation
//	tarbench -exp fig6 -scale 1 -queries 1000   # paper-scale run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tartree/internal/bench"
)

func main() {
	var (
		exp = flag.String("exp", "all", "experiment id ("+strings.Join(bench.ExperimentIDs(), ", ")+
			"; ablations: "+strings.Join(bench.AblationIDs(), ", ")+"), 'all' (paper figures) or 'ablations'")
		datasets = flag.String("datasets", "", "comma-separated data sets (NYC,LA,GW,GS); default GW,GS as in the paper")
		scale    = flag.Float64("scale", 0, "data set scale in (0,1]; 0 = per-dataset default")
		queries  = flag.Int("queries", 0, "queries per measurement; 0 = 200 (paper: 1000)")
		seed     = flag.Int64("seed", 1, "random seed for query generation")
	)
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Queries: *queries, Seed: *seed}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	var ids []string
	switch *exp {
	case "all":
		ids = bench.ExperimentIDs()
	case "ablations":
		ids = bench.AblationIDs()
	default:
		if _, ok := bench.Experiments[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "tarbench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		tables, err := bench.Experiments[id](cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tarbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for i := range tables {
			tables[i].Print(os.Stdout)
		}
		fmt.Printf("\n[%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}
