// Command tarbench regenerates the tables and figures of the paper's
// evaluation (Section 8). Each experiment prints the same rows/series the
// paper plots, computed on the calibrated synthetic LBSN data sets.
//
// Usage:
//
//	tarbench -exp fig9                  # one experiment, default datasets
//	tarbench -exp all -datasets GW,GS   # the full evaluation
//	tarbench -exp fig6 -scale 1 -queries 1000   # paper-scale run
//	tarbench -exp fig9 -json .          # also write BENCH_fig9.json
//
// With -json DIR each experiment additionally writes a machine-readable
// BENCH_<exp>.json snapshot: run metadata, the tables, the per-method
// query-latency histograms, and the per-backend TIA probe totals.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"tartree/internal/bench"
	"tartree/internal/obs"
	"tartree/internal/tia"
)

func main() {
	var (
		exp = flag.String("exp", "all", "experiment id ("+strings.Join(bench.ExperimentIDs(), ", ")+
			"; ablations: "+strings.Join(bench.AblationIDs(), ", ")+"), 'all' (paper figures) or 'ablations'")
		datasets = flag.String("datasets", "", "comma-separated data sets (NYC,LA,GW,GS); default GW,GS as in the paper")
		scale    = flag.Float64("scale", 0, "data set scale in (0,1]; 0 = per-dataset default")
		queries  = flag.Int("queries", 0, "queries per measurement; 0 = 200 (paper: 1000)")
		seed     = flag.Int64("seed", 1, "random seed for query generation")
		jsonDir  = flag.String("json", "", "also write a BENCH_<exp>.json metrics snapshot into this directory")
		trcOut   = flag.String("trace-out", "", "append per-batch span traces to this file as Chrome trace_event JSON")
		expOut   = flag.String("explain-out", "", "append per-query explain objects (calibration experiment) to this file as JSON lines")
	)
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Queries: *queries, Seed: *seed}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "tarbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *expOut != "" {
		if dir := filepath.Dir(*expOut); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "tarbench: %v\n", err)
				os.Exit(1)
			}
		}
		f, err := os.OpenFile(*expOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tarbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.ExplainOut = f
	}
	var traceSink *obs.FileTraceSink
	if *trcOut != "" {
		if dir := filepath.Dir(*trcOut); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "tarbench: %v\n", err)
				os.Exit(1)
			}
		}
		f, err := os.OpenFile(*trcOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tarbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		traceSink = obs.NewFileTraceSink(f)
		cfg.TraceSink = traceSink
	}

	var ids []string
	switch *exp {
	case "all":
		ids = bench.ExperimentIDs()
	case "ablations":
		ids = bench.AblationIDs()
	default:
		if _, ok := bench.Experiments[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "tarbench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	}
	for _, id := range ids {
		var reg *obs.Registry
		if *jsonDir != "" {
			reg = obs.NewRegistry()
			cfg.Metrics = reg
		}
		start := time.Now()
		tables, err := bench.Experiments[id](cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tarbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		for i := range tables {
			tables[i].Print(os.Stdout)
		}
		fmt.Printf("\n[%s completed in %v]\n", id, elapsed.Round(time.Millisecond))
		if reg != nil {
			path := filepath.Join(*jsonDir, "BENCH_"+id+".json")
			if err := writeSnapshot(path, id, cfg, elapsed, tables, reg); err != nil {
				fmt.Fprintf(os.Stderr, "tarbench: %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Printf("[snapshot written to %s]\n", path)
		}
	}
	if traceSink != nil {
		if err := traceSink.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "tarbench: trace export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[span traces appended to %s]\n", *trcOut)
	}
}

// benchSnapshot is the BENCH_<exp>.json document: everything needed to
// compare two runs without re-parsing the printed tables.
type benchSnapshot struct {
	Experiment string        `json:"experiment"`
	StartedAt  time.Time     `json:"started_at"`
	ElapsedMS  int64         `json:"elapsed_ms"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Config     configMeta    `json:"config"`
	Tables     []bench.Table `json:"tables"`
	// Metrics is the obs registry snapshot: the per-method
	// bench_query_latency_seconds histograms with their quantiles.
	Metrics map[string]any `json:"metrics"`
	// TIAProbes is the per-backend probe total over the whole process.
	TIAProbes map[string]int64 `json:"tia_probes"`
}

type configMeta struct {
	Datasets []string `json:"datasets,omitempty"`
	Scale    float64  `json:"scale"`
	Queries  int      `json:"queries"`
	Seed     int64    `json:"seed"`
}

func writeSnapshot(path, id string, cfg bench.Config, elapsed time.Duration, tables []bench.Table, reg *obs.Registry) error {
	probes := make(map[string]int64, len(tia.BackendKinds()))
	for _, k := range tia.BackendKinds() {
		probes[k.String()] = tia.ProbeCount(k)
	}
	snap := benchSnapshot{
		Experiment: id,
		StartedAt:  time.Now().Add(-elapsed).UTC(),
		ElapsedMS:  elapsed.Milliseconds(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Config: configMeta{
			Datasets: cfg.Datasets,
			Scale:    cfg.Scale,
			Queries:  cfg.Queries,
			Seed:     cfg.Seed,
		},
		Tables:    tables,
		Metrics:   reg.Snapshot(),
		TIAProbes: probes,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
