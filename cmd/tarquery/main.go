// Command tarquery builds a TAR-tree over one of the synthetic LBSN data
// sets and answers a kNNTA query from the command line, printing the top-k
// POIs with their score components and the work counters. It demonstrates
// the whole public API: data generation, index construction, querying and
// the minimum weight adjustment.
//
// With -server it instead queries a running tarserve over HTTP — a
// standalone server, a replication follower, or a shard coordinator, the
// client cannot tell. -explain and -io work remotely too: the server's
// plan tree (or, on a coordinator, the per-shard attribution) and I/O
// breakdown ride back in the response. Adding -min-lsn holds the query
// until that server has applied the given LSN, which is how a client
// reads its own writes from a replication follower.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"tartree"
	"tartree/internal/client"
	"tartree/internal/httpapi"
	"tartree/internal/lbsn"
	"tartree/internal/mwa"
	"tartree/internal/obs"
	"tartree/internal/pagestore"
	"tartree/internal/planner"
)

func main() {
	var (
		name     = flag.String("dataset", "GS", "data set name (NYC, LA, GW, GS)")
		scale    = flag.Float64("scale", 0.2, "data set scale in (0,1]")
		pois     = flag.String("pois", "", "load POIs from this CSV (written by datagen) instead of generating")
		checkins = flag.String("checkins", "", "load check-ins from this CSV (requires -pois)")
		x        = flag.Float64("x", 50, "query point x (world is 0..100)")
		y        = flag.Float64("y", 50, "query point y")
		k        = flag.Int("k", 10, "number of results")
		alpha    = flag.Float64("alpha", 0.3, "weight of the spatial distance")
		days     = flag.Int64("days", 128, "query interval length in days (ending at the data set's end)")
		adj      = flag.Bool("mwa", false, "also compute the minimum weight adjustment")
		plan     = flag.Bool("plan", false, "consult the cost-model planner before answering")
		explain  = flag.Bool("explain", false, "print the query's EXPLAIN/ANALYZE: plan estimates, best-first pop log, f(pk) convergence and the pruned frontier")
		group    = flag.String("grouping", "tar", "entry grouping: tar, spa, agg")
		showIO   = flag.Bool("io", false, "print the per-component I/O breakdown of the query")
		showTr   = flag.Bool("trace", false, "print a duration-annotated span tree of the query")
		replay   = flag.String("replay", "", "build an empty index and feed this check-in stream (written by datagen -checkins) through the live ingest path instead of bulk-loading histories")
		cacheB   = flag.Int64("cache-bytes", 64<<20, "shared aggregate/result cache size in bytes (0 disables)")
		doFreeze = flag.Bool("freeze", true, "compile the index into its pointer-free flat layout before querying")
		server   = flag.String("server", "", "query a running tarserve at this base URL instead of building a local index")
		minLSN   = flag.Uint64("min-lsn", 0, "with -server: hold the query until the server has applied this LSN (read-your-writes against a replication follower)")
	)
	flag.Parse()

	if *minLSN > 0 && *server == "" {
		fatal(fmt.Errorf("-min-lsn requires -server"))
	}
	if *server != "" {
		remoteQuery(*server, *x, *y, *k, *alpha, *days, *minLSN, *explain, *showIO)
		return
	}

	spec, err := lbsn.SpecByName(*name)
	if err != nil {
		fatal(err)
	}
	var d *lbsn.Dataset
	if *pois != "" {
		if *checkins == "" {
			fatal(fmt.Errorf("-pois requires -checkins"))
		}
		d, err = lbsn.LoadCSV(spec, *pois, *checkins)
	} else {
		d, err = lbsn.Generate(spec.Scaled(*scale))
	}
	if err != nil {
		fatal(err)
	}
	var g tartree.Grouping
	switch *group {
	case "tar":
		g = tartree.TAR3D
	case "spa":
		g = tartree.IndSpa
	case "agg":
		g = tartree.IndAgg
	default:
		fatal(fmt.Errorf("unknown grouping %q", *group))
	}
	cache := tartree.NewCache(*cacheB) // nil when disabled
	buildStart := time.Now()
	var tr *tartree.Tree
	if *replay != "" {
		tr, err = d.BuildEmpty(lbsn.BuildOptions{Grouping: g, Cache: cache})
		if err != nil {
			fatal(err)
		}
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		cs, err := lbsn.ReadCheckInStream(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		applied, skipped, err := lbsn.ReplayStream(tr, cs)
		if err != nil {
			fatal(err)
		}
		if err := tr.FlushAll(); err != nil {
			fatal(err)
		}
		fmt.Printf("replayed %d check-ins through the ingest path (%d for non-indexed POIs skipped)\n",
			applied, skipped)
	} else {
		tr, err = d.Build(lbsn.BuildOptions{Grouping: g, Cache: cache})
		if err != nil {
			fatal(err)
		}
	}
	if *doFreeze {
		tr.Freeze()
	}
	leaves, internals := tr.NodeCount()
	fmt.Printf("built %s over %s: %d effective POIs, %d leaf + %d internal nodes, height %d (%v)\n",
		g, spec.Name, tr.Len(), leaves, internals, tr.Height(), time.Since(buildStart).Round(time.Millisecond))

	end := d.Spec.End
	q := tartree.Query{
		X: *x, Y: *y,
		Iq:     tartree.Interval{Start: end - *days*lbsn.Day, End: end},
		K:      *k,
		Alpha0: *alpha,
	}
	if *plan {
		pl, err := planner.New(tr)
		if err != nil {
			fatal(err)
		}
		p, err := pl.Plan(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nplanner: %v (index cost %.1f vs scan cost %.1f, estimated f(pk) %.3f)\n",
			p.Engine, p.IndexCost, p.ScanCost, p.EstimatedFk)
	}

	// With -trace the query runs under a root span: the stages (cache
	// probe, best-first search, cache store) land in the span tree printed
	// after the results.
	opts := &tartree.QueryOpts{}
	var spans *tartree.TraceBuffer
	var root *tartree.Span
	if *showTr {
		spans = tartree.NewTraceBuffer(1)
		root = tartree.StartTrace("tarquery", tartree.SpanContext{}, spans)
		opts.Span = root
	}
	var exp *tartree.Explain
	if *explain {
		exp = tartree.NewExplain()
		opts.Explain = exp
		// The estimate-only planner supplies the Section-6 side of the
		// explain without materializing a scan engine. A plan failure just
		// leaves the estimates out.
		if p, err := tartree.NewPlanEstimator(tr).Plan(q); err == nil {
			exp.Plan = p.Explain()
		}
	}
	start := time.Now()
	results, stats, err := tr.QueryCtx(context.Background(), q, opts)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	if root != nil {
		root.SetAttr("results", len(results))
		root.Finish()
	}

	fmt.Printf("\nkNNTA query at (%.1f, %.1f), last %d days, k=%d, alpha0=%.2f\n\n",
		*x, *y, *days, *k, *alpha)
	fmt.Printf("%4s  %6s  %8s  %8s  %8s  %8s  %6s\n", "rank", "poi", "score", "s0", "s1", "x/y", "agg")
	for i, r := range results {
		fmt.Printf("%4d  %6d  %8.4f  %8.4f  %8.4f  %4.1f/%-4.1f %6d\n",
			i+1, r.POI.ID, r.Score, r.S0, r.S1, r.POI.X, r.POI.Y, r.Agg)
	}
	fmt.Printf("\n%d node accesses (%d internal, %d leaf), %d TIA page reads, %v\n",
		stats.RTreeAccesses(), stats.InternalAccesses, stats.LeafAccesses, stats.TIAAccesses, elapsed.Round(time.Microsecond))

	if *showIO {
		printIOBreakdown(stats)
	}

	if exp != nil {
		printExplain(exp)
	}

	if spans != nil {
		fmt.Println()
		for _, ft := range spans.Traces() {
			ft.WriteTree(os.Stdout)
		}
	}

	if *adj {
		_, a, _, err := mwa.Pruning(tr, q)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nminimum weight adjustment:")
		if a.HasLower {
			fmt.Printf("  lower alpha0 below %.4f to change the top-%d\n", a.Lower, *k)
		}
		if a.HasUpper {
			fmt.Printf("  raise alpha0 above %.4f to change the top-%d\n", a.Upper, *k)
		}
		if !a.HasLower && !a.HasUpper {
			fmt.Println("  no adjustment changes the result set")
		}
	}
}

// remoteQuery answers the query over HTTP against a running tarserve
// instead of building a local index, through the same client.Remote
// Querier the batch runner and the shard coordinator tests use. With
// minLSN > 0 the server holds the query until its applied LSN reaches
// that watermark, which gives read-your-writes semantics against a
// replication follower: ingest on the leader, note the acknowledged LSN,
// query the follower with it.
func remoteQuery(server string, x, y float64, k int, alpha float64, days int64, minLSN uint64, explain, showIO bool) {
	rem := &client.Remote{
		BaseURL: strings.TrimRight(server, "/"),
		MinLSN:  minLSN,
		Days:    days,
	}
	q := tartree.Query{X: x, Y: y, K: k, Alpha0: alpha}
	opts := &tartree.QueryOpts{}
	var exp *tartree.Explain
	if explain {
		exp = tartree.NewExplain()
		opts.Explain = exp
	}
	start := time.Now()
	resp, err := rem.Do(context.Background(), q, opts)
	if err != nil {
		var herr *httpapi.Error
		if errors.As(err, &herr) && herr.Status == http.StatusGatewayTimeout && minLSN > 0 {
			fatal(fmt.Errorf("server has not applied LSN %d within its deadline: %s", minLSN, herr.Message))
		}
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("kNNTA query at (%.1f, %.1f), last %d days, k=%d, alpha0=%.2f via %s\n",
		x, y, days, k, alpha, server)
	if minLSN > 0 {
		fmt.Printf("answered at or after applied LSN %d\n", minLSN)
	}
	fmt.Printf("\n%4s  %6s  %8s  %8s  %8s  %8s  %6s\n", "rank", "poi", "score", "s0", "s1", "x/y", "agg")
	for i, r := range resp.Results {
		fmt.Printf("%4d  %6d  %8.4f  %8.4f  %8.4f  %4.1f/%-4.1f %6d\n",
			i+1, r.POI.ID, r.Score, r.S0, r.S1, r.POI.X, r.POI.Y, r.Agg)
	}
	cached := ""
	if resp.Stats.ResultCacheHit {
		cached = " (whole result from the server's cache)"
	}
	fmt.Printf("\n%d node accesses (%d internal, %d leaf), %d TIA page reads, server %v, round trip %v%s\n",
		resp.Stats.InternalAccesses+resp.Stats.LeafAccesses, resp.Stats.InternalAccesses, resp.Stats.LeafAccesses,
		resp.Stats.TIAAccesses, time.Duration(resp.ElapsedMicros)*time.Microsecond, elapsed.Round(time.Microsecond), cached)

	if showIO {
		printRemoteIO(resp.IO, resp.Stats)
	}
	if exp != nil {
		printExplain(exp)
	}
}

// printRemoteIO renders the per-component I/O attribution a remote query
// reports (the flattened io lines of the /v1/query response).
func printRemoteIO(lines []obs.IOLine, stats tartree.QueryStats) {
	fmt.Printf("\nI/O breakdown (level 0 = leaf; shard rows: level = shard index):\n")
	fmt.Printf("%-16s %5s  %8s  %8s  %9s\n", "component", "level", "hits", "misses", "evictions")
	var hits, misses, evictions int64
	for _, l := range lines {
		fmt.Printf("%-16s %5d  %8d  %8d  %9d\n", l.Component, l.Level, l.Hits, l.Misses, l.Evictions)
		hits += l.Hits
		misses += l.Misses
		evictions += l.Evictions
	}
	fmt.Printf("%-16s %5s  %8d  %8d  %9d\n", "total", "", hits, misses, evictions)
	fmt.Printf("cache: %d hits, %d misses", stats.CacheHits, stats.CacheMisses)
	if stats.ResultCacheHit {
		fmt.Printf(" (whole result served from cache)")
	}
	fmt.Println()
}

// printIOBreakdown renders the attributed page traffic of one query as a
// table, one row per (component, level) pair that saw traffic. Level 0 is
// the leaf level of the owning structure.
func printIOBreakdown(stats tartree.QueryStats) {
	fmt.Printf("\nI/O breakdown (level 0 = leaf):\n")
	fmt.Printf("%-16s %5s  %8s  %8s  %9s\n", "component", "level", "hits", "misses", "evictions")
	var total pagestore.IOCell
	stats.IO.Each(func(c pagestore.Component, level int, cell pagestore.IOCell) {
		fmt.Printf("%-16s %5d  %8d  %8d  %9d\n", c, level, cell.Hits, cell.Misses, cell.Evictions)
		total.Hits += cell.Hits
		total.Misses += cell.Misses
		total.Evictions += cell.Evictions
	})
	fmt.Printf("%-16s %5s  %8d  %8d  %9d\n", "total", "", total.Hits, total.Misses, total.Evictions)
	fmt.Printf("cache: %d hits, %d misses", stats.CacheHits, stats.CacheMisses)
	if stats.ResultCacheHit {
		fmt.Printf(" (whole result served from cache)")
	}
	fmt.Println()
}

// printExplain renders the EXPLAIN/ANALYZE recorder as an annotated text
// tree: the plan estimates (when a planner ran), the search actuals, a
// bounded slice of the pop-by-pop log, the f(pk) convergence timeline and
// the pruned frontier.
func printExplain(e *tartree.Explain) {
	const maxShown = 12
	fmt.Println("\nEXPLAIN")
	if p := e.Plan; p != nil {
		units := "page units"
		if p.Calibrated {
			units = "µs"
		}
		fmt.Printf("├─ plan: engine=%s  est f(pk)=%.4f  est node accesses=%.1f (leaf %.1f)\n",
			p.Engine, p.EstimatedFk, p.EstimatedNodeAccesses, p.EstimatedLeafAccesses)
		fmt.Printf("│       index cost %.1f vs scan cost %.1f [%s], %d cost-model bands\n",
			p.IndexCost, p.ScanCost, units, len(p.Bands))
		if actual := e.NodeAccesses(); actual > 0 {
			fmt.Printf("│       node-access error: %+.1f%% (estimated %.1f, actual %d)\n",
				100*(p.EstimatedNodeAccesses-float64(actual))/float64(actual),
				p.EstimatedNodeAccesses, actual)
		}
	}
	fmt.Printf("├─ search: %d pops, heap high-water %d, %d node accesses (by level, leaf first: %v)\n",
		e.Pops, e.HeapMax, e.NodeAccesses(), e.NodeAccessesByLevel)
	fmt.Printf("├─ probes: %d TIA page reads (%d physical), cache %d hits / %d misses",
		e.TIAReads, e.TIAPhysical, e.CacheHits, e.CacheMisses)
	if e.ResultCacheHit {
		fmt.Printf(" (whole result from cache)")
	}
	fmt.Println()
	if len(e.Shards) > 0 {
		fmt.Printf("├─ shards (scatter-gather):\n")
		for _, s := range e.Shards {
			extra := ""
			if s.Pruned {
				extra = ", pruned by global bound"
			}
			if s.Restarts > 0 {
				extra += fmt.Sprintf(", %d restart(s)", s.Restarts)
			}
			fmt.Printf("│    shard %d %s: %d candidates over %d rounds (%d bound pushes), %d node accesses, %d TIA reads, %v%s\n",
				s.Shard, s.URL, s.Results, s.Rounds, s.BoundPushes, s.NodeAccesses, s.TIAReads,
				time.Duration(s.ElapsedMicros)*time.Microsecond, extra)
		}
	}
	if len(e.PopLog) > 0 {
		shown := len(e.PopLog)
		if shown > maxShown {
			shown = maxShown
		}
		fmt.Printf("├─ pop log (%d of %d):\n", shown, e.Pops)
		for _, p := range e.PopLog[:shown] {
			kind := fmt.Sprintf("node L%d", p.Level)
			if p.Level < 0 {
				kind = fmt.Sprintf("POI %d → result", p.POI)
			}
			fmt.Printf("│    #%-4d bound=%.4f (s0=%.4f s1=%.4f)  %-18s heap=%d\n",
				p.Seq, p.Bound, p.S0, p.S1, kind, p.HeapLen)
		}
		if e.LogTruncated || shown < len(e.PopLog) {
			fmt.Printf("│    … %d more pops\n", e.Pops-shown)
		}
	}
	if len(e.Convergence) > 0 {
		fmt.Printf("├─ f(pk) convergence:")
		for _, c := range e.Convergence {
			fmt.Printf("  r%d=%.4f@pop%d", c.Rank, c.Score, c.Pop)
		}
		fmt.Println()
	}
	fmt.Printf("└─ frontier: %d pruned element(s) left in the queue", e.FrontierSize)
	if len(e.Frontier) > 0 {
		fmt.Printf(", best bound %.4f", e.Frontier[0].Bound)
		shown := len(e.Frontier)
		if shown > maxShown {
			shown = maxShown
		}
		fmt.Println()
		for i, f := range e.Frontier[:shown] {
			glyph := "├─"
			if i == shown-1 && !e.FrontierTruncated {
				glyph = "└─"
			}
			kind := fmt.Sprintf("node L%d", f.Level)
			if f.Level < 0 {
				kind = fmt.Sprintf("POI %d", f.POI)
			}
			fmt.Printf("     %s bound=%.4f  %s\n", glyph, f.Bound, kind)
		}
		if e.FrontierTruncated || shown < len(e.Frontier) {
			fmt.Printf("     └─ … %d more\n", e.FrontierSize-shown)
		}
	} else {
		fmt.Println(" (exhausted)")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tarquery: %v\n", err)
	os.Exit(1)
}
