package main

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"

	"tartree/internal/aggcache"
	"tartree/internal/lbsn"
	"tartree/internal/obs"
)

// TestServeQueryExplain is the HTTP half of the explain acceptance: a
// query with explain=1 returns the full recorder — plan estimates, pop
// log, convergence, frontier — whose counters reconcile with the stats
// block of the same response, and the planner's calibration series appear
// on /metrics afterwards.
func TestServeQueryExplain(t *testing.T) {
	s, _ := newTestServer(t)

	code, body := get(t, s, "/v1/query?x=50&y=50&k=5&alpha=0.3&days=128&explain=1")
	if code != 200 {
		t.Fatalf("explain query status %d: %s", code, body)
	}
	var resp queryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("explain response not JSON: %v", err)
	}
	ex := resp.Explain
	if ex == nil {
		t.Fatal("explain=1 response has no explain object")
	}
	if ex.Plan == nil {
		t.Fatal("explain has no plan (estimator failed on a healthy tree)")
	}
	if ex.Plan.Engine != "tar-tree" && ex.Plan.Engine != "sequential-scan" {
		t.Errorf("plan engine = %q", ex.Plan.Engine)
	}
	if ex.Plan.EstimatedNodeAccesses <= 0 || ex.Plan.EstimatedFk <= 0 {
		t.Errorf("plan estimates empty: %+v", ex.Plan)
	}
	if ex.Pops == 0 || ex.HeapMax == 0 || len(ex.PopLog) != ex.Pops {
		t.Errorf("search forensics inconsistent: pops=%d heapMax=%d log=%d",
			ex.Pops, ex.HeapMax, len(ex.PopLog))
	}
	// The explain's own tallies must reconcile with the response's stats
	// block — the same conservation identity the core test pins, proven
	// through JSON round-tripping.
	if got, want := ex.NodeAccesses(), int64(resp.Stats.InternalAccesses+resp.Stats.LeafAccesses); got != want {
		t.Errorf("explain node accesses = %d, stats say %d", got, want)
	}
	if ex.TIAReads != resp.Stats.TIAAccesses {
		t.Errorf("explain TIA reads = %d, stats say %d", ex.TIAReads, resp.Stats.TIAAccesses)
	}
	if ex.Results != len(resp.Results) || len(ex.Convergence) != len(resp.Results) {
		t.Errorf("explain results=%d convergence=%d, response has %d",
			ex.Results, len(ex.Convergence), len(resp.Results))
	}
	if n := len(resp.Results); n > 0 && ex.ActualFk != resp.Results[n-1].Score {
		t.Errorf("explain f(pk) = %v, last result scored %v", ex.ActualFk, resp.Results[n-1].Score)
	}

	// Without explain=1 the response must not carry the object.
	code, body = get(t, s, "/v1/query?x=50&y=50&k=5&alpha=0.3&days=128")
	if code != 200 || strings.Contains(body, `"explain"`) {
		t.Errorf("plain query leaked an explain object (status %d)", code)
	}

	_, metrics := get(t, s, "/metrics")
	if !strings.Contains(metrics, "tartree_planner_engine_total{") {
		t.Error("planner decision counter missing from /metrics after an explained query")
	}
	if !strings.Contains(metrics, `tartree_planner_estimate_error_count{quantity="node_accesses"}`) {
		t.Error("planner estimate-error histogram missing from /metrics")
	}
}

// TestServeQueryExplainCacheInterplay runs explain=1 against a cached
// tree: the warm explain reports the result-cache hit with zero search
// work, and explain=1&nocache=1 composes — a full search with no cache
// probes on either side of the ledger.
func TestServeQueryExplainCacheInterplay(t *testing.T) {
	spec, err := lbsn.SpecByName("GS")
	if err != nil {
		t.Fatal(err)
	}
	d, err := lbsn.Generate(spec.Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tr, err := d.Build(lbsn.BuildOptions{Metrics: reg, Cache: aggcache.New(1 << 20)})
	if err != nil {
		t.Fatal(err)
	}
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	s := newServer(tr, reg, nil, log, d.Spec.Start, d.Spec.End, 4)

	const url = "/v1/query?x=50&y=50&k=5&days=128&explain=1"
	var cold, warm, bypass queryResponse
	for _, step := range []struct {
		url  string
		resp *queryResponse
	}{{url, &cold}, {url, &warm}, {url + "&nocache=1", &bypass}} {
		code, body := get(t, s, step.url)
		if code != 200 {
			t.Fatalf("GET %s: status %d: %s", step.url, code, body)
		}
		if err := json.Unmarshal([]byte(body), step.resp); err != nil {
			t.Fatal(err)
		}
	}
	if cold.Explain == nil || cold.Explain.ResultCacheHit || cold.Explain.CacheMisses == 0 {
		t.Errorf("cold explain: %+v", cold.Explain)
	}
	if warm.Explain == nil || !warm.Explain.ResultCacheHit {
		t.Fatalf("warm explain does not report the result-cache hit: %+v", warm.Explain)
	}
	if warm.Explain.Pops != 0 || warm.Explain.NodeAccesses() != 0 || warm.Explain.TIAReads != 0 {
		t.Errorf("warm explain shows search work on a result-cache hit: %+v", warm.Explain)
	}
	if warm.Explain.Results != len(warm.Results) {
		t.Errorf("warm explain results = %d, response has %d", warm.Explain.Results, len(warm.Results))
	}
	be := bypass.Explain
	if be == nil || be.ResultCacheHit || be.CacheHits != 0 || be.CacheMisses != 0 {
		t.Errorf("nocache explain still touched the cache: %+v", be)
	}
	if be != nil && be.Pops == 0 {
		t.Error("nocache explain did not search")
	}
}

// TestServeQueryExplainTimeout pins the cancellation contract over HTTP:
// a canceled explain query answers 504 with the explain object embedded —
// the partial counts and the frontier at the moment the search stopped,
// not an error swallow.
func TestServeQueryExplainTimeout(t *testing.T) {
	s, _ := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/v1/query?x=50&y=50&k=5&days=128&timeout_ms=1000&explain=1", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 504 {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
		Explain *explainProbe `json:"explain"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("504 body not JSON: %v\n%s", err, rec.Body.String())
	}
	if out.Error.Message == "" {
		t.Error("504 explain body has no error message")
	}
	if out.Error.Code != "timeout" {
		t.Errorf("504 explain error code %q, want %q", out.Error.Code, "timeout")
	}
	if out.Explain == nil {
		t.Fatal("504 body swallowed the explain object")
	}
	if out.Explain.Err == "" {
		t.Error("canceled explain records no error")
	}
	if out.Explain.Results != 0 {
		t.Errorf("canceled explain claims %d results", out.Explain.Results)
	}
	if out.Explain.FrontierSize == 0 {
		t.Error("canceled explain lost the partial frontier")
	}
}

// explainProbe decodes just the fields the timeout test asserts on.
type explainProbe struct {
	Err          string `json:"error"`
	Results      int    `json:"results"`
	FrontierSize int    `json:"frontier_size"`
}
