package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"

	"tartree/internal/aggcache"
	"tartree/internal/core"
	"tartree/internal/lbsn"
	"tartree/internal/obs"
	"tartree/internal/wal"
)

// newWALTestServer builds a ready server whose ingestion path is backed by a
// WAL store in dir, plus the data set it indexes.
func newWALTestServer(t *testing.T, dir string, cache *aggcache.Cache) (*server, *lbsn.Dataset, *wal.Store) {
	t.Helper()
	spec, err := lbsn.SpecByName("GS")
	if err != nil {
		t.Fatal(err)
	}
	d, err := lbsn.Generate(spec.Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ring := obs.NewTraceRing(8)
	fs, err := wal.NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	store, err := wal.OpenStore(fs, func() (*core.Tree, error) {
		return d.Build(lbsn.BuildOptions{Metrics: reg, Traces: ring, Cache: cache})
	}, wal.StoreOptions{Metrics: reg, Traces: ring, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	s := newPendingServer(reg, ring, log, 4)
	s.finishStartup(store.Tree(), store, d.Spec.Start, d.Spec.End)
	return s, d, store
}

func post(t *testing.T, s *server, url, body string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", url, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	s.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// indexedPOI returns the ID of some POI the tree carries.
func indexedPOI(t *testing.T, s *server, d *lbsn.Dataset) int64 {
	t.Helper()
	for _, p := range d.POIs {
		if _, ok := s.tree.Lookup(p.ID); ok {
			return p.ID
		}
	}
	t.Fatal("no indexed POI in data set")
	return 0
}

// TestServeIngestInvalidatesCache closes the loop between durable ingestion
// and the shared cache: a warm whole-result hit, then one live check-in
// through POST /v1/ingest, after which the same query may not be served
// stale — the ingest apply bumped the cache version. A store restart over
// the same WAL replays the check-in and must bump the version again, so
// recovery can never resurrect stale cached answers either.
func TestServeIngestInvalidatesCache(t *testing.T) {
	dir := t.TempDir()
	cache := aggcache.New(1 << 20)
	s, d, store := newWALTestServer(t, dir, cache)
	poi := indexedPOI(t, s, d)
	const url = "/v1/query?x=50&y=50&k=5&days=128"

	var warm, after queryResponse
	if code, body := get(t, s, url); code != 200 {
		t.Fatalf("cold query: %d %s", code, body)
	}
	code, body := get(t, s, url)
	if code != 200 {
		t.Fatalf("warm query: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.ResultCacheHit {
		t.Fatalf("repeat query not served from the cache: %+v", warm.Stats)
	}

	version := cache.Version()
	if code, body := post(t, s, "/v1/ingest", fmt.Sprintf(`{"poi":%d,"ts":%d}`, poi, d.Spec.End+100)); code != 200 {
		t.Fatalf("ingest: %d %s", code, body)
	}
	if cache.Version() <= version {
		t.Fatalf("ingest did not bump the cache version (%d -> %d)", version, cache.Version())
	}
	code, body = get(t, s, url)
	if code != 200 {
		t.Fatalf("post-ingest query: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &after); err != nil {
		t.Fatal(err)
	}
	if after.Stats.ResultCacheHit {
		t.Errorf("stale cached result served after ingest: %+v", after.Stats)
	}

	// WAL replay is an ingest apply too: recovery over the same directory
	// must advance the version past everything cached before the restart.
	version = cache.Version()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, store2 := newWALTestServer(t, dir, cache); store2.Recovery().Replay.Records == 0 {
		t.Fatal("restart replayed nothing")
	}
	if cache.Version() <= version {
		t.Errorf("WAL replay did not bump the cache version (%d -> %d)", version, cache.Version())
	}
}

// TestServeRecoveringThenReady pins the readiness lifecycle: before
// finishStartup the server refuses queries and ingestion and /healthz
// answers 503 "recovering"; afterwards it answers 200 "ready".
func TestServeRecoveringThenReady(t *testing.T) {
	spec, _ := lbsn.SpecByName("GS")
	d, err := lbsn.Generate(spec.Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	s := newPendingServer(reg, nil, log, 4)

	code, body := get(t, s, "/healthz")
	if code != 503 || !strings.Contains(body, `"recovering"`) {
		t.Errorf("recovering healthz: %d %s", code, body)
	}
	if code, body := get(t, s, "/v1/query?x=50&y=50"); code != 503 {
		t.Errorf("query while recovering: %d %s", code, body)
	}
	if code, body := post(t, s, "/v1/ingest", `{"poi":1,"ts":1}`); code != 503 {
		t.Errorf("ingest while recovering: %d %s", code, body)
	}
	// Observability stays up throughout recovery.
	code, metrics := get(t, s, "/metrics")
	if code != 200 {
		t.Fatalf("metrics while recovering: %d", code)
	}
	if n := metricValue(t, metrics, "tarserve_ready"); n != 0 {
		t.Errorf("tarserve_ready = %g while recovering, want 0", n)
	}

	tr, err := d.Build(lbsn.BuildOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	s.finishStartup(tr, nil, d.Spec.Start, d.Spec.End)

	code, body = get(t, s, "/healthz")
	if code != 200 || !strings.Contains(body, `"ready"`) {
		t.Errorf("ready healthz: %d %s", code, body)
	}
	if code, body := get(t, s, "/v1/query?x=50&y=50&k=5&days=128"); code != 200 {
		t.Errorf("query once ready: %d %s", code, body)
	}
	_, metrics = get(t, s, "/metrics")
	if n := metricValue(t, metrics, "tarserve_ready"); n != 1 {
		t.Errorf("tarserve_ready = %g once ready, want 1", n)
	}
}

// TestServeIngestDisabledWithoutWAL: a server started without -wal-dir
// refuses ingestion with 503, not 404.
func TestServeIngestDisabledWithoutWAL(t *testing.T) {
	s, _ := newTestServer(t)
	code, body := post(t, s, "/v1/ingest", `{"poi":1,"ts":1}`)
	if code != 503 || !strings.Contains(body, "ingestion disabled") {
		t.Errorf("ingest without WAL: %d %s", code, body)
	}
}

// TestServeIngest exercises the durable ingestion endpoint end to end:
// single and batch bodies, LSN assignment, healthz WAL status, WAL metrics,
// rejection of malformed and invalid requests, and durability across a
// store restart.
func TestServeIngest(t *testing.T) {
	dir := t.TempDir()
	s, d, store := newWALTestServer(t, dir, nil)
	poi := indexedPOI(t, s, d)
	ts := d.Spec.End + 100

	code, body := post(t, s, "/v1/ingest", fmt.Sprintf(`{"poi":%d,"ts":%d}`, poi, ts))
	if code != 200 {
		t.Fatalf("single ingest: %d %s", code, body)
	}
	var resp struct {
		Count int    `json:"count"`
		LSN   uint64 `json:"lsn"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 1 || resp.LSN != 1 {
		t.Errorf("single ingest: count=%d lsn=%d, want 1/1", resp.Count, resp.LSN)
	}

	batch := fmt.Sprintf(`{"checkins":[{"poi":%d,"ts":%d},{"poi":%d,"ts":%d},{"poi":%d,"ts":%d}]}`,
		poi, ts+1, poi, ts+2, poi, ts+3)
	code, body = post(t, s, "/v1/ingest", batch)
	if code != 200 {
		t.Fatalf("batch ingest: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 3 || resp.LSN != 4 {
		t.Errorf("batch ingest: count=%d lsn=%d, want 3/4", resp.Count, resp.LSN)
	}

	code, body = get(t, s, "/healthz")
	if code != 200 || !strings.Contains(body, `"wal"`) {
		t.Fatalf("healthz after ingest: %d %s", code, body)
	}
	var hz struct {
		WAL struct {
			Durable uint64 `json:"durable_lsn"`
			Applied uint64 `json:"applied_lsn"`
			Pending int64  `json:"pending_checkins"`
			CkptLSN uint64 `json:"checkpoint_lsn"`
		} `json:"wal"`
	}
	if err := json.Unmarshal([]byte(body), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.WAL.Durable != 4 || hz.WAL.Applied != 4 || hz.WAL.Pending != 4 {
		t.Errorf("healthz wal = %+v, want durable/applied/pending 4/4/4", hz.WAL)
	}

	_, metrics := get(t, s, "/metrics")
	if n := metricValue(t, metrics, "tartree_wal_records_total"); n != 4 {
		t.Errorf("wal records = %g, want 4", n)
	}
	if n := metricValue(t, metrics, "tartree_wal_appends_total"); n != 2 {
		t.Errorf("wal appends = %g, want 2", n)
	}

	// Queries keep working through the store-locked path.
	if code, body := get(t, s, "/v1/query?x=50&y=50&k=5&days=128"); code != 200 {
		t.Errorf("query after ingest: %d %s", code, body)
	}

	// Invalid requests: nothing gets logged, LSNs don't advance.
	for _, tc := range []struct{ name, body string }{
		{"unknown POI", `{"poi":999999999,"ts":` + fmt.Sprint(ts) + `}`},
		{"pre-origin ts", fmt.Sprintf(`{"poi":%d,"ts":-999999999}`, poi)},
		{"bad JSON", `{"poi":`},
		{"unknown field", `{"poi":1,"ts":1,"frob":2}`},
		{"empty", `{}`},
		{"empty batch", `{"checkins":[]}`},
		{"both forms", fmt.Sprintf(`{"poi":%d,"ts":%d,"checkins":[{"poi":%d,"ts":%d}]}`, poi, ts, poi, ts)},
		{"half single", `{"poi":1}`},
	} {
		code, body := post(t, s, "/v1/ingest", tc.body)
		if code != 400 {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, code, body)
		}
	}
	if lsn := store.DurableLSN(); lsn != 4 {
		t.Errorf("durable LSN after rejects = %d, want 4", lsn)
	}

	// Wrong method on /ingest.
	if code, _ := get(t, s, "/v1/ingest"); code != 405 && code != 404 {
		t.Errorf("GET /ingest: status %d, want 405/404", code)
	}

	// Durability: a fresh store over the same directory replays all four
	// check-ins without help from the base builder.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _, store2 := newWALTestServer(t, dir, nil)
	if got := store2.Recovery().Replay.Records; got != 4 {
		t.Errorf("restart replayed %d records, want 4", got)
	}
	code, body = get(t, s2, "/healthz")
	if code != 200 {
		t.Fatalf("healthz after restart: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.WAL.Applied != 4 || hz.WAL.Pending != 4 {
		t.Errorf("restart healthz wal = %+v, want applied/pending 4/4", hz.WAL)
	}
}
