// Command tarserve builds a TAR-tree over a synthetic LBSN data set and
// serves kNNTA queries over HTTP, with the full observability surface:
//
//	GET /query?x=50&y=50&k=10&alpha=0.3[&days=128][&trace=1]
//	GET /metrics        Prometheus text exposition of the obs registry
//	GET /healthz        liveness, uptime, index size
//	GET /debug/traces   recent and slowest query records with I/O breakdowns
//	GET /debug/pprof/   standard Go profiling endpoints
//
// Per-request structured access logs go to stderr (slog). Queries slower
// than -slow-query are additionally logged at warn level.
//
// Queries execute concurrently, bounded by the -max-concurrent admission
// semaphore (default GOMAXPROCS); requests beyond the limit queue and are
// visible in the tarserve_query_queue_depth gauge.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"time"

	"tartree/internal/core"
	"tartree/internal/lbsn"
	"tartree/internal/obs"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		name    = flag.String("dataset", "GS", "data set name (NYC, LA, GW, GS)")
		scale   = flag.Float64("scale", 0.1, "data set scale in (0,1]")
		group   = flag.String("grouping", "tar", "entry grouping: tar, spa, agg")
		logJSON = flag.Bool("logjson", false, "emit access logs as JSON instead of text")
		nTraces = flag.Int("traces", 64, "query records kept for /debug/traces (0 disables capture)")
		slowQ   = flag.Duration("slow-query", 250*time.Millisecond, "log queries slower than this at warn level")
		maxConc = flag.Int("max-concurrent", 0, "admission limit: queries executing at once (0 = GOMAXPROCS); excess requests queue")
	)
	flag.Parse()

	var h slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		h = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(h)

	var g core.Grouping
	switch *group {
	case "tar":
		g = core.TAR3D
	case "spa":
		g = core.IndSpa
	case "agg":
		g = core.IndAgg
	default:
		fatal(fmt.Errorf("unknown grouping %q", *group))
	}

	spec, err := lbsn.SpecByName(*name)
	if err != nil {
		fatal(err)
	}
	spec = spec.Scaled(*scale)
	log.Info("generating data set", "dataset", spec.Name, "scale", *scale)
	d, err := lbsn.Generate(spec)
	if err != nil {
		fatal(err)
	}

	reg := obs.NewRegistry()
	var ring *obs.TraceRing
	if *nTraces > 0 {
		ring = obs.NewTraceRing(*nTraces)
		ring.SetSlowLog(log, *slowQ)
	}
	buildStart := time.Now()
	tr, err := d.Build(lbsn.BuildOptions{Grouping: g, Metrics: reg, Traces: ring})
	if err != nil {
		fatal(err)
	}
	leaves, internals := tr.NodeCount()
	log.Info("index built",
		"grouping", g.String(),
		"pois", tr.Len(),
		"leaves", leaves,
		"internals", internals,
		"height", tr.Height(),
		"elapsed", time.Since(buildStart).Round(time.Millisecond),
	)

	srv := newServer(tr, reg, ring, log, d.Spec.Start, d.Spec.End, *maxConc)
	log.Info("listening", "addr", *addr, "max_concurrent", cap(srv.admission))
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tarserve: %v\n", err)
	os.Exit(1)
}
