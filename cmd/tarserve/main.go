// Command tarserve builds a TAR-tree over a synthetic LBSN data set and
// serves kNNTA queries over HTTP, with the full observability surface:
//
//	GET  /v1/query?x=50&y=50&k=10&alpha=0.3[&days=128][&trace=1][&timeout_ms=500][&nocache=1]
//	POST /v1/ingest     durable live check-ins (requires -wal-dir)
//	GET  /v1/traces     recent and slowest query records with I/O breakdowns
//	GET  /metrics       Prometheus text exposition of the obs registry
//	GET  /healthz       readiness: 200 "ready" once the index is recovered,
//	                    503 "recovering" while it is still loading
//	GET  /debug/pprof/  standard Go profiling endpoints
//
// The legacy unversioned routes (/query, /ingest, /debug/traces) answer 308
// Permanent Redirect to their /v1 successors. timeout_ms maps to a context
// deadline: a query that exceeds it stops promptly and answers 504.
//
// Queries are served through a shared epoch-versioned cache (-cache-bytes,
// default 64 MiB, 0 disables) that memoizes TIA aggregates and whole result
// sets; every ingest apply or epoch flush invalidates it, so cached answers
// are always identical to uncached ones. Hit/miss/eviction/bytes gauges are
// exported as tartree_aggcache_* on /metrics, and every query response
// reports its own cache_hits/cache_misses.
//
// With -wal-dir the server ingests live check-ins durably: POST /ingest
// appends to a group-committed write-ahead log and answers 200 only after
// the batch is fsynced and applied. On startup the index is recovered from
// the newest checkpoint in the WAL directory plus a log replay; the listener
// comes up first so /healthz reports "recovering" until the replay is done.
// Background loops fold elapsed epochs (-flush-every) and write checkpoints
// (-checkpoint-every) that let the log drop obsolete segments.
//
//	POST /ingest {"poi": 17, "ts": 1234567890}
//	POST /ingest {"checkins": [{"poi": 17, "ts": 100}, {"poi": 9, "ts": 105}]}
//
// Per-request structured access logs go to stderr (slog). Queries slower
// than -slow-query are additionally logged at warn level.
//
// Queries execute concurrently, bounded by the -max-concurrent admission
// semaphore (default GOMAXPROCS); requests beyond the limit queue and are
// visible in the tarserve_query_queue_depth gauge.
//
// # Replication
//
// With -repl-token a durable server becomes a replication leader: it
// exposes GET /v1/repl/snapshot (tree snapshot at the applied LSN) and
// GET /v1/repl/wal?from=<lsn> (CRC32C frame stream with long-poll tail),
// both requiring the token as an Authorization bearer. A follower runs
// with -follow <leader-url> -repl-token <secret> -wal-dir <dir>: it
// bootstraps from the leader's snapshot, tails the WAL through the same
// apply path local ingest uses (keeping its own durable WAL copy, so a
// restart recovers locally and resumes), answers queries, and rejects
// POST /v1/ingest with 403 plus a Location header naming the leader.
// Read-your-writes across the pair: echo the leader's ingest ack LSN as
// /v1/query?min_lsn=<lsn> on the follower — the query waits until that
// LSN is applied (504 past the deadline). /healthz reports the role and
// replication lag on both sides; the follower additionally exports
// tartree_repl_{applied_lsn,lag_records,lag_seconds}.
//
// # Sharding
//
// A fleet of servers can split the POI set spatially: datagen -shard-map
// writes an STR-style partition map, each shard runs with
// -shard-of i/N -shard-map map.json (indexing only its slice, over the
// full world so scores stay bit-identical), and one coordinator runs with
// -coordinator url0,url1,... and no local index. The coordinator serves
// /v1/query by scatter-gather: it fans the query to every shard, streams
// candidate batches back, and pushes the merged global k-th score to
// in-flight shards so each prunes against the global bound. Answers are
// exactly identical to single-node execution; a failed shard turns the
// whole query into a 503 naming the shard, never a silently partial
// top-k. /healthz reports the role and the shard's key range;
// tartree_shard_* metrics cover fan-out, rounds, bound pushes and
// straggler latency.
//
// On SIGINT/SIGTERM the server drains in-flight requests, stops the
// replication tail and background loops, flushes observed epochs and
// closes the WAL cleanly before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tartree/internal/aggcache"
	"tartree/internal/core"
	"tartree/internal/lbsn"
	"tartree/internal/obs"
	"tartree/internal/repl"
	"tartree/internal/shard"
	"tartree/internal/wal"
)

// drainTimeout bounds how long shutdown waits for in-flight requests.
const drainTimeout = 10 * time.Second

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		name    = flag.String("dataset", "GS", "data set name (NYC, LA, GW, GS)")
		scale   = flag.Float64("scale", 0.1, "data set scale in (0,1]")
		group   = flag.String("grouping", "tar", "entry grouping: tar, spa, agg")
		logJSON = flag.Bool("logjson", false, "emit access logs as JSON instead of text")
		nTraces = flag.Int("traces", 64, "query records kept for /debug/traces (0 disables capture)")
		slowQ   = flag.Duration("slow-query", 250*time.Millisecond, "log queries slower than this at warn level")
		maxConc = flag.Int("max-concurrent", 0, "admission limit: queries executing at once (0 = GOMAXPROCS); excess requests queue")
		walDir  = flag.String("wal-dir", "", "enable durable ingestion: write-ahead log and checkpoints live here")
		ckEvery = flag.Duration("checkpoint-every", 5*time.Minute, "background checkpoint interval (requires -wal-dir)")
		flEvery = flag.Duration("flush-every", 30*time.Second, "background epoch-flush interval (requires -wal-dir)")
		replay  = flag.String("replay", "", "seed a fresh WAL with this check-in stream (written by datagen -checkins) through the ingest path; skipped if the WAL already holds data")
		noSync  = flag.Bool("wal-nosync", false, "skip WAL fsyncs (throughput experiments only: crash durability is lost)")
		cacheB  = flag.Int64("cache-bytes", 64<<20, "shared aggregate/result cache size in bytes (0 disables)")
		trcOut  = flag.String("trace-out", "", "append finished span traces to this file as Chrome trace_event JSON")
		sloSpec = flag.String("slo", "", `latency/error objectives, e.g. "query:p99<50ms,ingest:p99<100ms" (burn rates on /metrics)`)
		snapV3  = flag.Bool("snapshot-v3", true, "write checkpoints in the flat snapshot-v3 format (section reads at startup, no rebuild); recovery reads either format")
		freeze  = flag.Bool("freeze", true, "compile the index into its pointer-free flat layout after startup; queries traverse the frozen slabs")
		follow  = flag.String("follow", "", "run as a replication follower of this leader base URL (requires -wal-dir and -repl-token)")
		replTok = flag.String("repl-token", "", "shared replication secret: enables the leader's /v1/repl endpoints, authenticates a follower; empty disables replication")
		shardOf = flag.String("shard-of", "", `serve spatial shard "i/N" of the data set (requires -shard-map); only POIs the map assigns to shard i are indexed`)
		mapFile = flag.String("shard-map", "", "shard map JSON file (written by datagen -shard-map); required with -shard-of")
		coord   = flag.String("coordinator", "", "comma-separated shard base URLs: run /v1/query as a scatter-gather coordinator over them (no local index)")
	)
	flag.Parse()
	var (
		shardIdx, shardN int
		shardMap         *shard.Map
	)
	if *shardOf != "" {
		switch {
		case *coord != "":
			fatal(errors.New("-shard-of and -coordinator are mutually exclusive roles"))
		case *follow != "":
			fatal(errors.New("-shard-of cannot be combined with -follow: a shard owns its own slice of the base data"))
		case *replTok != "":
			fatal(errors.New("-shard-of cannot be combined with -repl-token"))
		case *mapFile == "":
			fatal(errors.New("-shard-of requires -shard-map"))
		}
		if n, err := fmt.Sscanf(*shardOf, "%d/%d", &shardIdx, &shardN); err != nil || n != 2 {
			fatal(fmt.Errorf("-shard-of must look like \"0/4\", got %q", *shardOf))
		}
		if shardN < 1 || shardIdx < 0 || shardIdx >= shardN {
			fatal(fmt.Errorf("-shard-of index %d out of range for %d shards", shardIdx, shardN))
		}
		m, err := shard.LoadMap(*mapFile)
		if err != nil {
			fatal(err)
		}
		if m.N != shardN {
			fatal(fmt.Errorf("-shard-of names %d shards but map %s holds %d", shardN, *mapFile, m.N))
		}
		shardMap = m
	}
	if *coord != "" {
		switch {
		case *follow != "":
			fatal(errors.New("-coordinator cannot be combined with -follow"))
		case *replTok != "":
			fatal(errors.New("-coordinator cannot be combined with -repl-token: the coordinator holds no WAL to replicate"))
		case *walDir != "":
			fatal(errors.New("-coordinator cannot be combined with -wal-dir: ingest goes to the shards, not the coordinator"))
		}
	}
	if *follow != "" {
		switch {
		case *walDir == "":
			fatal(errors.New("-follow requires -wal-dir for the follower's own WAL copy"))
		case *replTok == "":
			fatal(errors.New("-follow requires -repl-token"))
		case *replay != "":
			fatal(errors.New("-replay cannot be combined with -follow: a follower's history comes from the leader"))
		}
	}

	// Shutdown: first signal starts the drain, a second one kills the
	// process the default way (stop() reinstalls default handling).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var h slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		h = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(h)

	var g core.Grouping
	switch *group {
	case "tar":
		g = core.TAR3D
	case "spa":
		g = core.IndSpa
	case "agg":
		g = core.IndAgg
	default:
		fatal(fmt.Errorf("unknown grouping %q", *group))
	}

	spec, err := lbsn.SpecByName(*name)
	if err != nil {
		fatal(err)
	}
	spec = spec.Scaled(*scale)
	// Neither a follower nor a coordinator builds a local base: the
	// follower's tree comes from the leader's snapshot, the coordinator
	// delegates every query to its shards. Both need only the spec (the
	// default query interval), so the expensive generation is skipped.
	var d *lbsn.Dataset
	if *follow == "" && *coord == "" {
		log.Info("generating data set", "dataset", spec.Name, "scale", *scale)
		if d, err = lbsn.Generate(spec); err != nil {
			fatal(err)
		}
	}
	// A shard indexes only the POIs the map assigns to it; Locate is the
	// membership oracle so every process sharing the map agrees exactly.
	var keep func(p core.POI) bool
	if shardMap != nil {
		if d.World != shardMap.World {
			fatal(fmt.Errorf("shard map %s was built for world %v, data set has %v — regenerate it with datagen -shard-map at the same -dataset/-scale", *mapFile, shardMap.World, d.World))
		}
		keep = func(p core.POI) bool { return shardMap.Locate(p.X, p.Y) == shardIdx }
	}

	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	var ring *obs.TraceRing
	if *nTraces > 0 {
		ring = obs.NewTraceRing(*nTraces)
		ring.SetSlowLog(log, *slowQ)
	}
	cache := aggcache.New(*cacheB) // nil when disabled

	objectives, err := obs.ParseSLOs(*sloSpec)
	if err != nil {
		fatal(err)
	}

	// The listener comes up before the index: /healthz answers 503
	// "recovering" (and /metrics works) until finishStartup below.
	srv := newPendingServer(reg, ring, log, *maxConc)
	srv.slo = obs.NewSLOTracker(objectives)
	srv.slo.Register(reg)
	if *trcOut != "" {
		f, err := os.OpenFile(*trcOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		srv.spanSink = obs.MultiTraceSink(srv.spans, obs.NewFileTraceSink(f))
		log.Info("span traces exported", "file", *trcOut)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	log.Info("listening", "addr", ln.Addr().String(), "max_concurrent", cap(srv.admission))
	httpServer := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()

	// waitAndDrain blocks until a shutdown signal (or listener failure),
	// drains in-flight requests, then runs cleanup — flushing and closing
	// whatever durable state the mode holds.
	waitAndDrain := func(cleanup func()) {
		select {
		case <-ctx.Done():
			log.Info("shutdown signal received, draining", "timeout", drainTimeout)
		case err := <-serveErr:
			fatal(err)
		}
		drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := httpServer.Shutdown(drainCtx); err != nil {
			log.Warn("drain incomplete", "err", err)
		}
		if cleanup != nil {
			cleanup()
		}
		log.Info("shutdown complete")
	}

	// Coordinator: no local index at all. /v1/query scatter-gathers across
	// the shard fleet; everything else (metrics, traces, healthz) works as
	// usual over the nil tree.
	if *coord != "" {
		urls := strings.Split(*coord, ",")
		for i := range urls {
			urls[i] = strings.TrimRight(strings.TrimSpace(urls[i]), "/")
			if urls[i] == "" {
				fatal(fmt.Errorf("-coordinator has an empty shard URL in %q", *coord))
			}
		}
		srv.setCoordinator(&shard.Coordinator{
			Shards:  urls,
			Metrics: shard.NewMetrics(reg),
		}, shardMap)
		srv.finishStartup(nil, nil, spec.Start, spec.End)
		log.Info("coordinator ready", "shards", len(urls))
		waitAndDrain(nil)
		return
	}

	buildStart := time.Now()
	if *walDir == "" {
		tr, err := d.Build(lbsn.BuildOptions{Grouping: g, Metrics: reg, Traces: ring, Cache: cache, Keep: keep})
		if err != nil {
			fatal(err)
		}
		if *freeze {
			tr.Freeze()
		}
		if shardMap != nil {
			srv.enableShard(&shard.Server{
				Data:    shard.TreeViewer{Tree: tr},
				Index:   shardIdx,
				N:       shardN,
				Region:  shardMap.Region(shardIdx),
				Metrics: shard.NewMetrics(reg),
			}, shardMap)
			log.Info("shard enabled", "shard", shardIdx, "of", shardN)
		}
		logIndex(log, tr, buildStart)
		srv.finishStartup(tr, nil, d.Spec.Start, d.Spec.End)
		waitAndDrain(nil)
		return
	}

	// Durable mode: recover from the newest checkpoint plus a WAL replay.
	// The base tree — used only when the directory holds no checkpoint —
	// bulk-loads the historical data set, or starts empty when a -replay
	// stream will provide the history through the ingest path. A follower
	// never builds one: Bootstrap below installs the leader's snapshot as
	// the local checkpoint before the store opens.
	fs, err := wal.NewDirFS(*walDir)
	if err != nil {
		fatal(err)
	}
	var (
		wm    *repl.Watermark
		rm    *repl.Metrics
		fopts repl.FollowerOptions
	)
	if *follow != "" {
		wm = repl.NewWatermark()
		rm = repl.NewMetrics(reg)
		fopts = repl.FollowerOptions{
			LeaderURL: strings.TrimRight(*follow, "/"),
			Token:     *replTok,
			Watermark: wm,
			Metrics:   rm,
			Logf: func(format string, args ...any) {
				log.Warn(fmt.Sprintf(format, args...))
			},
		}
		lsn, downloaded, err := repl.Bootstrap(ctx, fs, fopts)
		if err != nil {
			fatal(fmt.Errorf("bootstrapping from %s: %w", fopts.LeaderURL, err))
		}
		if downloaded {
			log.Info("bootstrapped from leader snapshot", "leader", fopts.LeaderURL, "lsn", lsn)
		} else {
			log.Info("local WAL state found, skipping snapshot bootstrap", "dir", *walDir)
		}
	}
	base := func() (*core.Tree, error) {
		if *follow != "" {
			return nil, errors.New("follower WAL directory holds no snapshot; bootstrap should have installed one")
		}
		if *replay != "" {
			return d.BuildEmpty(lbsn.BuildOptions{Grouping: g, Metrics: reg, Traces: ring, Cache: cache, Keep: keep})
		}
		return d.Build(lbsn.BuildOptions{Grouping: g, Metrics: reg, Traces: ring, Cache: cache, Keep: keep})
	}
	store, err := wal.OpenStore(fs, base, wal.StoreOptions{
		Metrics:    reg,
		Traces:     ring,
		NoSync:     *noSync,
		Cache:      cache,
		TraceSink:  srv.spanSink,
		SnapshotV3: *snapV3,
	})
	if err != nil {
		fatal(err)
	}
	rec := store.Recovery()
	log.Info("wal recovered",
		"dir", *walDir,
		"checkpoint_loaded", rec.CheckpointLoaded,
		"checkpoint_lsn", rec.CheckpointLSN,
		"replayed", rec.Replay.Records,
		"truncated_bytes", rec.Replay.TruncatedBytes,
		"durable_lsn", store.DurableLSN(),
	)

	if *replay != "" {
		if rec.CheckpointLoaded || store.DurableLSN() > 0 {
			log.Info("replay skipped: WAL already holds data", "file", *replay)
		} else if err := seedFromStream(store, *replay, log); err != nil {
			fatal(err)
		}
	}

	// A v3 checkpoint restores the frozen layout directly; otherwise (gob
	// checkpoint, fresh build, or replay seeding) compile it now. With
	// -freeze=false a pre-frozen recovery is dropped so the flag wins.
	if *freeze && !store.Frozen() {
		store.Freeze()
	} else if !*freeze && store.Frozen() {
		store.Unfreeze()
	}
	switch {
	case *follow != "":
		srv.setFollower(fopts.LeaderURL, wm, rm)
		rm.ObserveApplied(store.AppliedLSN(), store.AppliedLSN())
	case *replTok != "":
		srv.enableReplLeader(&repl.Leader{Store: store, Token: *replTok, Metrics: repl.NewMetrics(reg)})
		log.Info("replication leader enabled", "endpoints", "/v1/repl/snapshot /v1/repl/wal")
	}
	if shardMap != nil {
		// The store is the shard's Viewer: each scatter-gather round runs
		// under its read lock, and live ingest between rounds bumps the tree
		// version so in-flight sessions restart instead of answering stale.
		srv.enableShard(&shard.Server{
			Data:    store,
			Index:   shardIdx,
			N:       shardN,
			Region:  shardMap.Region(shardIdx),
			Metrics: shard.NewMetrics(reg),
		}, shardMap)
		log.Info("shard enabled", "shard", shardIdx, "of", shardN)
	}
	logIndex(log, store.Tree(), buildStart)
	srv.finishStartup(store.Tree(), store, spec.Start, spec.End)

	if *flEvery > 0 {
		go func() {
			tick := time.NewTicker(*flEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := store.FlushObserved(); err != nil && !errors.Is(err, wal.ErrClosed) {
						log.Error("epoch flush failed", "err", err)
					}
				}
			}
		}()
	}
	if *ckEvery > 0 {
		go func() {
			tick := time.NewTicker(*ckEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					lsn, err := store.Checkpoint()
					if err != nil {
						if !errors.Is(err, wal.ErrClosed) {
							log.Error("checkpoint failed", "err", err)
						}
						continue
					}
					log.Info("checkpoint written", "lsn", lsn)
				}
			}
		}()
	}

	// The follower's tail loop runs until shutdown or a fatal replication
	// error (leader truncated our LSN, bad token, divergence) — the latter
	// triggers the same drain path as a signal and exits nonzero rather
	// than serving ever-staler data silently.
	var (
		replDone  chan error
		replFatal bool
	)
	if *follow != "" {
		replDone = make(chan error, 1)
		go func() {
			err := (&repl.Follower{Store: store, Opts: fopts}).Run(ctx)
			replDone <- err
			if err != nil && ctx.Err() == nil {
				log.Error("replication tail failed, shutting down", "err", err)
				stop()
			}
		}()
	}

	waitAndDrain(func() {
		if replDone != nil {
			// The canceled context already stopped the tail; wait for the
			// last apply to finish before closing the store under it.
			if err := <-replDone; err != nil && !errors.Is(err, context.Canceled) {
				replFatal = true
			}
		}
		if err := store.FlushObserved(); err != nil {
			log.Error("final epoch flush failed", "err", err)
		}
		if err := store.Close(); err != nil {
			log.Error("closing store", "err", err)
		}
	})
	if replFatal {
		os.Exit(1)
	}
}

// seedFromStream feeds a datagen -checkins stream through the durable ingest
// path in batches, skipping check-ins for POIs the index does not carry
// (below the effectiveness threshold).
func seedFromStream(store *wal.Store, path string, log *slog.Logger) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	cs, err := lbsn.ReadCheckInStream(f)
	f.Close()
	if err != nil {
		return err
	}
	begin := time.Now()
	tree := store.Tree()
	batch := make([]wal.CheckIn, 0, 256)
	var applied, skipped int64
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if _, err := store.Ingest(batch); err != nil {
			return err
		}
		applied += int64(len(batch))
		batch = batch[:0]
		return nil
	}
	for _, c := range cs {
		if _, ok := tree.Lookup(c.POI); !ok {
			skipped++
			continue
		}
		batch = append(batch, wal.CheckIn{POI: c.POI, At: c.At})
		if len(batch) == cap(batch) {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	log.Info("replayed check-in stream through ingest path",
		"file", path,
		"applied", applied,
		"skipped", skipped,
		"elapsed", time.Since(begin).Round(time.Millisecond),
	)
	return nil
}

func logIndex(log *slog.Logger, tr *core.Tree, buildStart time.Time) {
	leaves, internals := tr.NodeCount()
	log.Info("index ready",
		"grouping", tr.Grouping().String(),
		"pois", tr.Len(),
		"leaves", leaves,
		"internals", internals,
		"height", tr.Height(),
		"elapsed", time.Since(buildStart).Round(time.Millisecond),
	)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tarserve: %v\n", err)
	os.Exit(1)
}
