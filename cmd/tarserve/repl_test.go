package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tartree/internal/core"
	"tartree/internal/lbsn"
	"tartree/internal/obs"
	"tartree/internal/repl"
	"tartree/internal/wal"
)

const replTestToken = "tarserve-repl-secret"

// startReplLeader builds a ready leader server (WAL store + replication
// endpoints enabled) and exposes it over real HTTP for the follower's
// bootstrap and tail requests.
func startReplLeader(t *testing.T) (*server, *lbsn.Dataset, *wal.Store, *httptest.Server) {
	t.Helper()
	spec, err := lbsn.SpecByName("GS")
	if err != nil {
		t.Fatal(err)
	}
	d, err := lbsn.Generate(spec.Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	fs, err := wal.NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store, err := wal.OpenStore(fs, func() (*core.Tree, error) {
		return d.Build(lbsn.BuildOptions{Metrics: reg})
	}, wal.StoreOptions{Metrics: reg, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	s := newPendingServer(reg, nil, log, 4)
	s.enableReplLeader(&repl.Leader{Store: store, Token: replTestToken, Metrics: repl.NewMetrics(reg)})
	s.finishStartup(store.Tree(), store, d.Spec.Start, d.Spec.End)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, d, store, srv
}

// startReplFollower bootstraps a follower directory from the leader,
// recovers a store over it (the base builder must never run — the
// installed snapshot is the only source of state), wires the follower
// server role, and starts the tail loop. The returned stop function
// cancels the tail and asserts it exited cleanly.
func startReplFollower(t *testing.T, leaderURL string, d *lbsn.Dataset) (*server, *wal.Store, func()) {
	t.Helper()
	ffs, err := wal.NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	freg := obs.NewRegistry()
	wm := repl.NewWatermark()
	rm := repl.NewMetrics(freg)
	fopts := repl.FollowerOptions{
		LeaderURL: leaderURL,
		Token:     replTestToken,
		Metrics:   rm,
		Watermark: wm,
		RetryMin:  time.Millisecond,
		RetryMax:  20 * time.Millisecond,
		Logf:      t.Logf,
	}
	lsn, downloaded, err := repl.Bootstrap(context.Background(), ffs, fopts)
	if err != nil || !downloaded || lsn == 0 {
		t.Fatalf("bootstrap: lsn=%d downloaded=%v err=%v", lsn, downloaded, err)
	}
	fstore, err := wal.OpenStore(ffs, func() (*core.Tree, error) {
		return nil, fmt.Errorf("follower base builder must not run")
	}, wal.StoreOptions{Metrics: freg, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fstore.Close() })
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	fsrv := newPendingServer(freg, nil, log, 4)
	fsrv.setFollower(leaderURL, wm, rm)
	fsrv.finishStartup(fstore.Tree(), fstore, d.Spec.Start, d.Spec.End)
	rm.ObserveApplied(fstore.AppliedLSN(), fstore.AppliedLSN())

	runCtx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	f := &repl.Follower{Store: fstore, Opts: fopts}
	go func() { done <- f.Run(runCtx) }()
	stop := func() {
		cancel()
		if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("follower run: %v", err)
		}
	}
	return fsrv, fstore, stop
}

// TestServeFollowerEndToEnd drives the full leader/follower story at the
// server level: bootstrap from the leader's snapshot, tail a live ingest,
// read-your-writes on the follower via min_lsn, the follower's read-only
// ingest rejection with a leader redirect, role-aware healthz on both
// sides, and the min_lsn deadline (504) for a watermark that never comes.
func TestServeFollowerEndToEnd(t *testing.T) {
	ls, d, _, lhttp := startReplLeader(t)
	poi := indexedPOI(t, ls, d)
	ts := d.Spec.End + 100

	// Seed one record before bootstrap so the snapshot carries LSN 1.
	if code, body := post(t, ls, "/v1/ingest", fmt.Sprintf(`{"poi":%d,"ts":%d}`, poi, ts)); code != 200 {
		t.Fatalf("leader ingest: %d %s", code, body)
	}
	fs, fstore, stop := startReplFollower(t, lhttp.URL, d)
	defer stop()

	// A live write on the leader, then read-your-writes on the follower:
	// min_lsn parks the query until the tail applies the acknowledged LSN.
	code, body := post(t, ls, "/v1/ingest", fmt.Sprintf(`{"poi":%d,"ts":%d}`, poi, ts+1))
	if code != 200 {
		t.Fatalf("leader ingest: %d %s", code, body)
	}
	var ack struct {
		LSN uint64 `json:"lsn"`
	}
	if err := json.Unmarshal([]byte(body), &ack); err != nil {
		t.Fatal(err)
	}
	if ack.LSN != 2 {
		t.Fatalf("leader ack LSN = %d, want 2", ack.LSN)
	}

	queryURL := "/v1/query?x=50&y=50&k=5&days=128"
	code, fbody := get(t, fs, fmt.Sprintf("%s&min_lsn=%d", queryURL, ack.LSN))
	if code != 200 {
		t.Fatalf("follower min_lsn query: %d %s", code, fbody)
	}
	if got := fstore.AppliedLSN(); got < ack.LSN {
		t.Fatalf("min_lsn query answered at applied LSN %d < %d", got, ack.LSN)
	}
	// The follower's answer must match the leader's for the same query.
	code, lbody := get(t, ls, queryURL)
	if code != 200 {
		t.Fatalf("leader query: %d %s", code, lbody)
	}
	var fresp, lresp queryResponse
	if err := json.Unmarshal([]byte(fbody), &fresp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lbody), &lresp); err != nil {
		t.Fatal(err)
	}
	if len(fresp.Results) != len(lresp.Results) || len(fresp.Results) == 0 {
		t.Fatalf("result count: follower %d, leader %d", len(fresp.Results), len(lresp.Results))
	}
	for i := range fresp.Results {
		if fresp.Results[i].POI != lresp.Results[i].POI {
			t.Errorf("result %d: follower POI %d, leader POI %d", i, fresp.Results[i].POI, lresp.Results[i].POI)
		}
		if math.Abs(fresp.Results[i].Score-lresp.Results[i].Score) > 1e-9 {
			t.Errorf("result %d: follower score %g, leader score %g", i, fresp.Results[i].Score, lresp.Results[i].Score)
		}
	}

	// The follower is read-only: local ingest is rejected with the leader's
	// ingest endpoint in Location.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/ingest", strings.NewReader(fmt.Sprintf(`{"poi":%d,"ts":%d}`, poi, ts+2)))
	req.Header.Set("Content-Type", "application/json")
	fs.ServeHTTP(rec, req)
	if rec.Code != http.StatusForbidden {
		t.Errorf("follower ingest: %d, want 403 (%s)", rec.Code, rec.Body.String())
	}
	if loc := rec.Header().Get("Location"); loc != lhttp.URL+"/v1/ingest" {
		t.Errorf("follower ingest Location = %q, want %q", loc, lhttp.URL+"/v1/ingest")
	}

	// Role-aware healthz on both sides.
	var hz struct {
		Role string         `json:"role"`
		Repl map[string]any `json:"repl"`
	}
	code, body = get(t, fs, "/healthz")
	if code != 200 {
		t.Fatalf("follower healthz: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Role != "follower" {
		t.Errorf("follower role = %q", hz.Role)
	}
	if got, _ := hz.Repl["leader"].(string); got != lhttp.URL {
		t.Errorf("follower healthz leader = %v, want %q", hz.Repl["leader"], lhttp.URL)
	}
	if got, _ := hz.Repl["applied_lsn"].(float64); got < float64(ack.LSN) {
		t.Errorf("follower healthz applied_lsn = %v, want >= %d", hz.Repl["applied_lsn"], ack.LSN)
	}
	code, body = get(t, ls, "/healthz")
	if code != 200 {
		t.Fatalf("leader healthz: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Role != "leader" {
		t.Errorf("leader role = %q", hz.Role)
	}
	if got, _ := hz.Repl["snapshots_served"].(float64); got != 1 {
		t.Errorf("leader healthz snapshots_served = %v, want 1", hz.Repl["snapshots_served"])
	}

	// Replication gauges are exported on the follower's /metrics.
	_, metrics := get(t, fs, "/metrics")
	if n := metricValue(t, metrics, "tartree_repl_applied_lsn"); n < float64(ack.LSN) {
		t.Errorf("tartree_repl_applied_lsn = %g, want >= %d", n, ack.LSN)
	}

	// A watermark that can never be reached times out with 504, bounded by
	// the query deadline rather than hanging.
	code, body = get(t, fs, queryURL+"&min_lsn=999999&timeout_ms=50")
	if code != http.StatusGatewayTimeout {
		t.Errorf("unreachable min_lsn: %d, want 504 (%s)", code, body)
	}
}

// TestServeMinLSNWithoutWAL: min_lsn on a server with no WAL store (no
// watermark to wait on) is a client error, not a hang.
func TestServeMinLSNWithoutWAL(t *testing.T) {
	s, _ := newTestServer(t)
	code, body := get(t, s, "/v1/query?x=50&y=50&k=5&days=128&min_lsn=1")
	if code != http.StatusBadRequest {
		t.Errorf("min_lsn without WAL: %d, want 400 (%s)", code, body)
	}
}

// TestServeReplEndpointsDisabled: the /v1/repl routes exist on every
// server but answer 403 until a leader is configured with -repl-token.
func TestServeReplEndpointsDisabled(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := newWALTestServer(t, dir, nil)
	for _, path := range []string{"/v1/repl/snapshot", "/v1/repl/wal?from=1"} {
		if code, body := get(t, s, path); code != http.StatusForbidden {
			t.Errorf("%s on non-leader: %d, want 403 (%s)", path, code, body)
		}
	}
}

// TestServeShutdownDrainsInflightIngest pins the graceful-shutdown
// contract: an ingest whose group commit is mid-fsync when Shutdown begins
// must complete with 200 (and really be durable), Shutdown must return
// only after it does, and the listener must refuse new connections
// afterwards. The slow FS guarantees the request is genuinely in flight
// for the whole drain; the entered channel (closed at handler entry)
// orders Shutdown after admission without sleeping.
func TestServeShutdownDrainsInflightIngest(t *testing.T) {
	spec, err := lbsn.SpecByName("GS")
	if err != nil {
		t.Fatal(err)
	}
	d, err := lbsn.Generate(spec.Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	dirFS, err := wal.NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	slow := &wal.SlowFS{FS: dirFS, SyncDelay: 100 * time.Millisecond}
	store, err := wal.OpenStore(slow, func() (*core.Tree, error) {
		return d.Build(lbsn.BuildOptions{Metrics: reg})
	}, wal.StoreOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	s := newPendingServer(reg, nil, log, 4)
	s.finishStartup(store.Tree(), store, d.Spec.Start, d.Spec.End)
	poi := indexedPOI(t, s, d)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	var once sync.Once
	hs := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() { close(entered) })
		s.ServeHTTP(w, r)
	})}
	go hs.Serve(ln)

	base := "http://" + ln.Addr().String()
	type result struct {
		code int
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		body := strings.NewReader(fmt.Sprintf(`{"poi":%d,"ts":%d}`, poi, d.Spec.End+100))
		resp, err := http.Post(base+"/v1/ingest", "application/json", body)
		if err != nil {
			inflight <- result{0, err}
			return
		}
		resp.Body.Close()
		inflight <- result{resp.StatusCode, nil}
	}()

	<-entered // the ingest is inside the server; its fsync is still pending
	if err := hs.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	r := <-inflight
	if r.err != nil || r.code != 200 {
		t.Fatalf("in-flight ingest during shutdown: code=%d err=%v", r.code, r.err)
	}
	if lsn := store.DurableLSN(); lsn != 1 {
		t.Errorf("drained ingest not durable: LSN %d, want 1", lsn)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting connections after Shutdown")
	}
}
