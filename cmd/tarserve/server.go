package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"tartree/internal/core"
	"tartree/internal/lbsn"
	"tartree/internal/obs"
	"tartree/internal/tia"
)

// server answers kNNTA queries over HTTP and exposes the observability
// surface: /metrics (Prometheus text), /debug/pprof, /healthz.
type server struct {
	tree   *core.Tree
	reg    *obs.Registry
	traces *obs.TraceRing // may be nil: /debug/traces then serves empty views
	log    *slog.Logger
	start  time.Time
	// span of the indexed data, the default query interval
	dataStart, dataEnd int64

	// Queries run concurrently: the search path is read-only over the
	// R-tree, TIA buffers synchronize page access internally, and I/O
	// accounting is query-local, so no server-side mutex is needed.
	// admission is a counting semaphore bounding how many queries execute
	// at once (-max-concurrent); excess requests wait their turn and show
	// up in the queue-depth gauge.
	admission chan struct{}
	inflight  atomic.Int64
	queued    atomic.Int64

	requests *obs.Counter
	errors   *obs.Counter
	mux      *http.ServeMux
}

func newServer(tree *core.Tree, reg *obs.Registry, traces *obs.TraceRing, log *slog.Logger, dataStart, dataEnd int64, maxConcurrent int) *server {
	if maxConcurrent <= 0 {
		maxConcurrent = runtime.GOMAXPROCS(0)
	}
	s := &server{
		tree:      tree,
		reg:       reg,
		traces:    traces,
		log:       log,
		start:     time.Now(),
		dataStart: dataStart,
		dataEnd:   dataEnd,
		admission: make(chan struct{}, maxConcurrent),
		requests:  reg.Counter("tarserve_http_requests_total"),
		errors:    reg.Counter("tarserve_http_errors_total"),
		mux:       http.NewServeMux(),
	}
	reg.GaugeFunc("tarserve_max_concurrent_queries", func() float64 { return float64(cap(s.admission)) })
	reg.GaugeFunc("tarserve_inflight_queries", func() float64 { return float64(s.inflight.Load()) })
	reg.GaugeFunc("tarserve_query_queue_depth", func() float64 { return float64(s.queued.Load()) })
	reg.GaugeFunc("tarserve_goroutines", func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("tarserve_heap_alloc_bytes", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	})
	reg.GaugeFunc("tarserve_uptime_seconds", func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("tarserve_indexed_pois", func() float64 { return float64(tree.Len()) })

	s.mux.HandleFunc("GET /query", s.handleQuery)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	// pprof registers itself on http.DefaultServeMux; mount the handlers
	// explicitly so the server owns its mux.
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// statusWriter remembers the status code for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// ServeHTTP wraps the mux with the access log and request counters.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	begin := time.Now()
	s.requests.Inc()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	if sw.status >= 400 {
		s.errors.Inc()
	}
	s.log.Info("request",
		"method", r.Method,
		"path", r.URL.Path,
		"status", sw.status,
		"duration", time.Since(begin),
		"remote", r.RemoteAddr,
	)
}

// queryResponse is the JSON shape of a /query answer.
type queryResponse struct {
	Query struct {
		X      float64 `json:"x"`
		Y      float64 `json:"y"`
		K      int     `json:"k"`
		Alpha0 float64 `json:"alpha0"`
		Start  int64   `json:"start"`
		End    int64   `json:"end"`
	} `json:"query"`
	Results []queryResult `json:"results"`
	Stats   struct {
		InternalAccesses int   `json:"internal_accesses"`
		LeafAccesses     int   `json:"leaf_accesses"`
		TIAAccesses      int64 `json:"tia_accesses"`
		TIAPhysical      int64 `json:"tia_physical"`
		Scored           int   `json:"scored"`
		NodeAccesses     int64 `json:"node_accesses"`
	} `json:"stats"`
	// IO is the attributed page-traffic breakdown of this query: one row
	// per (component, level) pair that saw traffic.
	IO            []obs.IOLine             `json:"io,omitempty"`
	ElapsedMicros int64                    `json:"elapsed_us"`
	Trace         map[string]obs.SpanStats `json:"trace,omitempty"`
}

type queryResult struct {
	POI   int64   `json:"poi"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Score float64 `json:"score"`
	S0    float64 `json:"s0"`
	S1    float64 `json:"s1"`
	Agg   int64   `json:"agg"`
}

// handleQuery answers GET /query?x=..&y=..[&k=][&alpha=][&start=&end=|&days=][&trace=1].
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, traced, err := s.parseQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var tr *obs.Trace
	if traced {
		tr = obs.NewTrace()
	}
	begin := time.Now()
	s.queued.Add(1)
	s.admission <- struct{}{} // acquire an execution slot
	s.queued.Add(-1)
	s.inflight.Add(1)
	results, stats, err := s.tree.QueryTraced(q, tr)
	s.inflight.Add(-1)
	<-s.admission
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	var resp queryResponse
	resp.Query.X, resp.Query.Y = q.X, q.Y
	resp.Query.K = q.K
	resp.Query.Alpha0 = q.Alpha0
	resp.Query.Start, resp.Query.End = q.Iq.Start, q.Iq.End
	resp.Results = make([]queryResult, 0, len(results))
	for _, res := range results {
		resp.Results = append(resp.Results, queryResult{
			POI: res.POI.ID, X: res.POI.X, Y: res.POI.Y,
			Score: res.Score, S0: res.S0, S1: res.S1, Agg: res.Agg,
		})
	}
	resp.Stats.InternalAccesses = stats.InternalAccesses
	resp.Stats.LeafAccesses = stats.LeafAccesses
	resp.Stats.TIAAccesses = stats.TIAAccesses
	resp.Stats.TIAPhysical = stats.TIAPhysical
	resp.Stats.Scored = stats.Scored
	resp.Stats.NodeAccesses = stats.NodeAccesses()
	resp.IO = core.IOLines(&stats.IO)
	resp.ElapsedMicros = time.Since(begin).Microseconds()
	if tr != nil {
		resp.Trace = make(map[string]obs.SpanStats)
		for _, sp := range tr.Spans() {
			resp.Trace[sp.Name] = sp.SpanStats
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseQuery builds the core.Query from URL parameters. x and y are
// required; the interval defaults to the whole indexed span, or its last
// `days` days.
func (s *server) parseQuery(r *http.Request) (core.Query, bool, error) {
	v := r.URL.Query()
	q := core.Query{
		K:      10,
		Alpha0: 0.3,
		Iq:     tia.Interval{Start: s.dataStart, End: s.dataEnd},
	}
	var err error
	if q.X, err = floatParam(v.Get("x")); err != nil {
		return q, false, fmt.Errorf("parameter x: %w", err)
	}
	if q.Y, err = floatParam(v.Get("y")); err != nil {
		return q, false, fmt.Errorf("parameter y: %w", err)
	}
	if raw := v.Get("k"); raw != "" {
		if q.K, err = strconv.Atoi(raw); err != nil {
			return q, false, fmt.Errorf("parameter k: %w", err)
		}
	}
	if raw := v.Get("alpha"); raw != "" {
		if q.Alpha0, err = strconv.ParseFloat(raw, 64); err != nil {
			return q, false, fmt.Errorf("parameter alpha: %w", err)
		}
	}
	if raw := v.Get("days"); raw != "" {
		days, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return q, false, fmt.Errorf("parameter days: %w", err)
		}
		q.Iq.Start = q.Iq.End - days*lbsn.Day
		if q.Iq.Start < s.dataStart {
			q.Iq.Start = s.dataStart
		}
	}
	if raw := v.Get("start"); raw != "" {
		if q.Iq.Start, err = strconv.ParseInt(raw, 10, 64); err != nil {
			return q, false, fmt.Errorf("parameter start: %w", err)
		}
	}
	if raw := v.Get("end"); raw != "" {
		if q.Iq.End, err = strconv.ParseInt(raw, 10, 64); err != nil {
			return q, false, fmt.Errorf("parameter end: %w", err)
		}
	}
	traced := v.Get("trace") == "1" || v.Get("trace") == "true"
	return q, traced, nil
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"indexed_pois":   s.tree.Len(),
		"grouping":       s.tree.Grouping().String(),
	})
}

// handleTraces serves the capture ring: the most recent and the slowest
// query records, each with spans (if the query ran traced) and the
// attributed I/O breakdown.
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"capacity": s.traces.Cap(),
		"recent":   s.traces.Recent(),
		"slowest":  s.traces.Slowest(),
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := s.reg.WriteTo(w); err != nil {
		s.log.Error("metrics write failed", "err", err)
	}
}

func floatParam(raw string) (float64, error) {
	if raw == "" {
		return 0, fmt.Errorf("missing")
	}
	return strconv.ParseFloat(raw, 64)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
