package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"tartree/internal/core"
	"tartree/internal/httpapi"
	"tartree/internal/lbsn"
	"tartree/internal/obs"
	"tartree/internal/planner"
	"tartree/internal/repl"
	"tartree/internal/shard"
	"tartree/internal/tia"
	"tartree/internal/wal"
)

// server answers kNNTA queries over HTTP and exposes the observability
// surface: /metrics (Prometheus text), /debug/pprof, /healthz. With a WAL
// store attached it also accepts durable live check-ins on POST /ingest.
//
// The server can start before the index exists: newPendingServer brings the
// listener up in a "recovering" state where /healthz answers 503 and query
// and ingest traffic is refused, and finishStartup flips it to ready once
// recovery (checkpoint load + WAL replay) completes. tree, store, dataStart
// and dataEnd are written before the ready flag is set and never after, so
// handlers that observe ready==true see them initialized.
type server struct {
	tree  *core.Tree // nil until finishStartup
	store *wal.Store // nil: ingestion disabled, queries go straight to tree
	// planner is the estimate-only optimizer behind ?explain=1: it supplies
	// the Section-6 plan the explain object reports and feeds the
	// tartree_planner_* calibration metrics. The server always executes the
	// index — the plan is advisory, so a stale seqscan can never be chosen
	// under live ingestion.
	planner *planner.Planner
	ready   atomic.Bool
	reg     *obs.Registry
	traces  *obs.TraceRing // may be nil: /debug/traces then serves empty views
	log     *slog.Logger
	start   time.Time
	// span of the indexed data, the default query interval
	dataStart, dataEnd int64

	// Queries run concurrently: the search path is read-only over the
	// R-tree, TIA buffers synchronize page access internally, and I/O
	// accounting is query-local, so no server-side mutex is needed.
	// admission is a counting semaphore bounding how many queries execute
	// at once (-max-concurrent); excess requests wait their turn and show
	// up in the queue-depth gauge.
	admission chan struct{}
	inflight  atomic.Int64
	queued    atomic.Int64

	requests *obs.Counter
	errors   *obs.Counter
	mux      *http.ServeMux

	// Span tracing: every /v1/* request gets a span tree rooted at the
	// route, joined to the client's W3C traceparent when one is sent.
	// Finished traces land in spans (served by /v1/traces?format=chrome)
	// and in spanSink, which main may widen with a -trace-out file sink
	// and which also receives the WAL's batch/flush/checkpoint traces.
	spans    *obs.TraceBuffer
	spanSink obs.TraceSink

	// slo classifies finished query/ingest requests against the -slo
	// objectives; nil (no objectives) records nothing.
	slo *obs.SLOTracker

	// Replication surface. role is "standalone" unless main configures a
	// -repl-token ("leader") or -follow ("follower"); it and leaderURL are
	// written before the ready flag like the other startup fields.
	// replLeader is atomic because the /v1/repl routes are mounted at
	// construction and must answer 403 until (and unless) the leader is
	// enabled. watermark is the applied-LSN fence behind ?min_lsn=, set for
	// every store-backed server: the leader advances it on each ingest ack,
	// a follower on each replicated apply, so read-your-writes works
	// identically on both roles.
	role        string
	leaderURL   string // follower only: where rejected writes are redirected
	replLeader  atomic.Pointer[repl.Leader]
	watermark   *repl.Watermark
	replMetrics *repl.Metrics

	// Sharding surface. A shard serves the /v1/shard routes through
	// shardSrv (mounted at construction, 403 until enableShard — the repl
	// pattern); a coordinator answers /v1/query through coord with tree
	// and store nil. shardMap is reported by healthz on both roles.
	coord    *shard.Coordinator
	shardSrv atomic.Pointer[shard.Server]
	shardMap *shard.Map
}

// newServer builds a server that is ready immediately: the tree is already
// built and there is no WAL store, so ingestion is disabled.
func newServer(tree *core.Tree, reg *obs.Registry, traces *obs.TraceRing, log *slog.Logger, dataStart, dataEnd int64, maxConcurrent int) *server {
	s := newPendingServer(reg, traces, log, maxConcurrent)
	s.finishStartup(tree, nil, dataStart, dataEnd)
	return s
}

// newPendingServer builds a server in the recovering state: /healthz answers
// 503 and /query and /ingest are refused until finishStartup. /metrics,
// /debug/traces and /debug/pprof work throughout, so recovery is observable.
func newPendingServer(reg *obs.Registry, traces *obs.TraceRing, log *slog.Logger, maxConcurrent int) *server {
	if maxConcurrent <= 0 {
		maxConcurrent = runtime.GOMAXPROCS(0)
	}
	s := &server{
		reg:       reg,
		traces:    traces,
		log:       log,
		start:     time.Now(),
		admission: make(chan struct{}, maxConcurrent),
		requests:  reg.Counter("tarserve_http_requests_total"),
		errors:    reg.Counter("tarserve_http_errors_total"),
		mux:       http.NewServeMux(),
		spans:     obs.NewTraceBuffer(256),
	}
	s.spanSink = s.spans
	reg.GaugeFunc("tarserve_max_concurrent_queries", func() float64 { return float64(cap(s.admission)) })
	reg.GaugeFunc("tarserve_inflight_queries", func() float64 { return float64(s.inflight.Load()) })
	reg.GaugeFunc("tarserve_query_queue_depth", func() float64 { return float64(s.queued.Load()) })
	reg.GaugeFunc("tarserve_goroutines", func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("tarserve_heap_alloc_bytes", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	})
	reg.GaugeFunc("tarserve_uptime_seconds", func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("tarserve_ready", func() float64 {
		if s.ready.Load() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("tarserve_indexed_pois", func() float64 {
		if !s.ready.Load() || s.tree == nil {
			return 0
		}
		return float64(s.tree.Len())
	})

	// The versioned API surface. Legacy unversioned routes answer 308
	// Permanent Redirect (which preserves method and body) so existing
	// clients keep working while the Location header teaches them the new
	// path; the query string travels with the redirect.
	s.mux.HandleFunc("GET /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux.HandleFunc("GET /query", redirectTo("/v1/query"))
	s.mux.HandleFunc("POST /ingest", redirectTo("/v1/ingest"))
	s.mux.HandleFunc("GET /debug/traces", redirectTo("/v1/traces"))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// The replication endpoints are mounted unconditionally and answer 403
	// until enableReplLeader installs a leader, so the route set never
	// mutates under a live listener.
	s.mux.HandleFunc("GET /v1/repl/snapshot", s.handleReplSnapshot)
	s.mux.HandleFunc("GET /v1/repl/wal", s.handleReplWAL)
	// The shard endpoints follow the same pattern: always mounted, 403
	// until enableShard installs the shard server.
	s.mux.HandleFunc("GET /v1/shard/gmax", s.handleShardGmax)
	s.mux.HandleFunc("POST /v1/shard/query", s.handleShardQuery)
	s.mux.HandleFunc("POST /v1/shard/next", s.handleShardNext)
	// Unknown /v1/* paths get the JSON error envelope instead of the
	// mux's plain-text 404 (registered routes win by specificity).
	s.mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		httpapi.WriteStatusError(w, http.StatusNotFound, "no such API route: "+r.URL.Path)
	})
	// pprof registers itself on http.DefaultServeMux; mount the handlers
	// explicitly so the server owns its mux.
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// finishStartup installs the recovered tree (and WAL store, when ingestion
// is enabled) and flips the server to ready. Call exactly once.
func (s *server) finishStartup(tree *core.Tree, store *wal.Store, dataStart, dataEnd int64) {
	s.tree = tree
	s.store = store
	if tree != nil {
		s.planner = planner.NewEstimator(tree)
		s.planner.Instrument(s.reg)
	}
	s.dataStart, s.dataEnd = dataStart, dataEnd
	if store != nil {
		if s.watermark == nil {
			s.watermark = repl.NewWatermark()
		}
		// Recovery already applied everything durable; min_lsn waits below
		// that must not park.
		s.watermark.Advance(store.AppliedLSN())
	}
	s.ready.Store(true)
}

// enableReplLeader turns on the /v1/repl endpoints. Call before
// finishStartup so healthz readers never race the role fields.
func (s *server) enableReplLeader(ld *repl.Leader) {
	s.role = "leader"
	s.replMetrics = ld.Metrics
	s.replLeader.Store(ld)
}

// setFollower marks the server a read-only follower of leaderURL. Call
// before finishStartup.
func (s *server) setFollower(leaderURL string, wm *repl.Watermark, m *repl.Metrics) {
	s.role = "follower"
	s.leaderURL = leaderURL
	s.watermark = wm
	s.replMetrics = m
}

// enableShard turns on the /v1/shard endpoints. Call before finishStartup
// so healthz readers never race the role fields.
func (s *server) enableShard(sh *shard.Server, m *shard.Map) {
	s.role = "shard"
	s.shardMap = m
	s.shardSrv.Store(sh)
}

// setCoordinator routes /v1/query through the scatter-gather coordinator.
// Call before finishStartup; the server then runs with a nil tree.
func (s *server) setCoordinator(c *shard.Coordinator, m *shard.Map) {
	s.role = "coordinator"
	s.shardMap = m
	s.coord = c
}

func (s *server) roleName() string {
	if s.role == "" {
		return "standalone"
	}
	return s.role
}

var errReplDisabled = fmt.Errorf("replication disabled: start the leader with -repl-token")

func (s *server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	ld := s.replLeader.Load()
	if ld == nil || !s.ready.Load() {
		httpError(w, http.StatusForbidden, errReplDisabled)
		return
	}
	ld.ServeSnapshot(w, r)
}

func (s *server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	ld := s.replLeader.Load()
	if ld == nil || !s.ready.Load() {
		httpError(w, http.StatusForbidden, errReplDisabled)
		return
	}
	ld.ServeWAL(w, r)
}

var errShardDisabled = fmt.Errorf("sharding disabled: start this server with -shard-of")

// shardServer returns the shard server, or writes the 403 envelope and
// returns nil when this process is not a (ready) shard.
func (s *server) shardServer(w http.ResponseWriter) *shard.Server {
	sh := s.shardSrv.Load()
	if sh == nil || !s.ready.Load() {
		httpError(w, http.StatusForbidden, errShardDisabled)
		return nil
	}
	return sh
}

func (s *server) handleShardGmax(w http.ResponseWriter, r *http.Request) {
	if sh := s.shardServer(w); sh != nil {
		sh.HandleGmax(w, r)
	}
}

func (s *server) handleShardQuery(w http.ResponseWriter, r *http.Request) {
	if sh := s.shardServer(w); sh != nil {
		sh.HandleQuery(w, r)
	}
}

func (s *server) handleShardNext(w http.ResponseWriter, r *http.Request) {
	if sh := s.shardServer(w); sh != nil {
		sh.HandleNext(w, r)
	}
}

// plan runs the Section-6 estimator for an explain request. With a WAL
// store attached the planner reads the tree's in-memory mirrors, so the
// estimate runs under the store's read lock like the queries themselves.
func (s *server) plan(q core.Query) (planner.Plan, error) {
	if s.store != nil {
		var pl planner.Plan
		var err error
		s.store.View(func(*core.Tree) { pl, err = s.planner.Plan(q) })
		return pl, err
	}
	return s.planner.Plan(q)
}

// redirectTo sends a 308 Permanent Redirect to the versioned path,
// preserving the query string. 308 (unlike 301) forbids the client from
// changing the method, so redirected POST /ingest bodies arrive intact.
func redirectTo(target string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		u := target
		if r.URL.RawQuery != "" {
			u += "?" + r.URL.RawQuery
		}
		http.Redirect(w, r, u, http.StatusPermanentRedirect)
	}
}

// statusWriter remembers the status code for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming handlers (the
// replication WAL tail) can push partial responses through the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// sloService maps a request path to the SLO service it counts against.
func sloService(path string) string {
	switch path {
	case "/v1/query":
		return "query"
	case "/v1/ingest":
		return "ingest"
	}
	return ""
}

// ServeHTTP wraps the mux with the access log, request counters, span
// tracing on /v1/* (joining the client's traceparent and emitting the
// server's own in the response), and SLO classification.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	begin := time.Now()
	s.requests.Inc()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	var sp *obs.Span
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		parent, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
		sp = obs.StartTrace(r.Method+" "+r.URL.Path, parent, s.spanSink)
		if sp != nil {
			// The response header must be set before the handler writes the
			// status line.
			w.Header().Set("traceparent", sp.Context().Traceparent())
			r = r.WithContext(obs.ContextWithSpan(r.Context(), sp))
		}
	}
	s.mux.ServeHTTP(sw, r)
	elapsed := time.Since(begin)
	if sp != nil {
		sp.SetAttr("status", sw.status)
		sp.Finish()
	}
	if svc := sloService(r.URL.Path); svc != "" {
		// Server-side failures burn the error budget; client errors (4xx)
		// do not — a malformed query is not our latency problem.
		s.slo.Observe(svc, elapsed, sw.status >= 500)
	}
	if sw.status >= 400 {
		s.errors.Inc()
	}
	s.log.Info("request",
		"method", r.Method,
		"path", r.URL.Path,
		"status", sw.status,
		"duration", elapsed,
		"remote", r.RemoteAddr,
	)
}

// queryResponse is the JSON shape of a /query answer.
type queryResponse struct {
	Query struct {
		X      float64 `json:"x"`
		Y      float64 `json:"y"`
		K      int     `json:"k"`
		Alpha0 float64 `json:"alpha0"`
		Start  int64   `json:"start"`
		End    int64   `json:"end"`
	} `json:"query"`
	Results []queryResult `json:"results"`
	Stats   struct {
		InternalAccesses int   `json:"internal_accesses"`
		LeafAccesses     int   `json:"leaf_accesses"`
		TIAAccesses      int64 `json:"tia_accesses"`
		TIAPhysical      int64 `json:"tia_physical"`
		Scored           int   `json:"scored"`
		NodeAccesses     int64 `json:"node_accesses"`
		// Cache probe outcomes for this query (zero without -cache-bytes);
		// with the I/O rows they keep per-query accounting auditable: the
		// TIA counters above reconcile with backend traffic, the cache
		// counters with the reads the cache absorbed.
		CacheHits      int64 `json:"cache_hits"`
		CacheMisses    int64 `json:"cache_misses"`
		ResultCacheHit bool  `json:"result_cache_hit"`
	} `json:"stats"`
	// IO is the attributed page-traffic breakdown of this query: one row
	// per (component, level) pair that saw traffic.
	IO            []obs.IOLine             `json:"io,omitempty"`
	ElapsedMicros int64                    `json:"elapsed_us"`
	Trace         map[string]obs.SpanStats `json:"trace,omitempty"`
	// Explain is the full EXPLAIN/ANALYZE object (plan, pop log, f(pk)
	// convergence, frontier, probe attribution) when the request asked for
	// explain=1.
	Explain *core.Explain `json:"explain,omitempty"`
}

type queryResult struct {
	POI   int64   `json:"poi"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Score float64 `json:"score"`
	S0    float64 `json:"s0"`
	S1    float64 `json:"s1"`
	Agg   int64   `json:"agg"`
}

// handleQuery answers
// GET /v1/query?x=..&y=..[&k=][&alpha=][&start=&end=|&days=][&trace=1][&timeout_ms=][&nocache=1][&explain=1].
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		httpError(w, http.StatusServiceUnavailable, errRecovering)
		return
	}
	q, po, err := s.parseQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var opts core.QueryOpts
	if po.traced {
		opts.Trace = obs.NewTrace()
	}
	opts.NoCache = po.nocache
	var (
		exp     *core.Explain
		plan    planner.Plan
		planned bool
	)
	if po.explain {
		exp = core.NewExplain()
		opts.Explain = exp
		// A plan failure (degenerate tree, unfittable distribution) must not
		// fail the query: the explain then reports actuals without estimates.
		// A coordinator has no local tree and therefore no planner; its
		// explain reports the per-shard attribution instead.
		if s.planner != nil {
			if pl, perr := s.plan(q); perr == nil {
				plan, planned = pl, true
				exp.Plan = plan.Explain()
			}
		}
	}
	// The request context already ends the query when the client goes
	// away; timeout_ms adds a server-side deadline on top.
	ctx := r.Context()
	if po.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, po.timeout)
		defer cancel()
	}
	if po.minLSN > 0 {
		// Read-your-writes: park until the applied watermark reaches the
		// client's LSN (typically the leader's ingest ack echoed to a
		// follower). Without an explicit timeout_ms the wait is capped so a
		// follower cut off from its leader answers 504 instead of hanging.
		if s.watermark == nil {
			httpError(w, http.StatusBadRequest, errMinLSNUnsupported)
			return
		}
		wctx := ctx
		if _, ok := wctx.Deadline(); !ok {
			var cancel context.CancelFunc
			wctx, cancel = context.WithTimeout(wctx, maxMinLSNWait)
			defer cancel()
		}
		if err := s.watermark.Wait(wctx, po.minLSN); err != nil {
			httpError(w, http.StatusGatewayTimeout,
				fmt.Errorf("min_lsn %d not applied within deadline (applied %d)", po.minLSN, s.watermark.Value()))
			return
		}
	}
	reqSpan := obs.SpanFromContext(ctx)
	begin := time.Now()
	aw := reqSpan.StartChild("admission_wait")
	s.queued.Add(1)
	s.admission <- struct{}{} // acquire an execution slot
	s.queued.Add(-1)
	aw.End()
	s.inflight.Add(1)
	ex := reqSpan.StartChild("execute")
	opts.Span = ex
	var (
		results []core.Result
		stats   core.QueryStats
	)
	// All three execution paths sit behind the same core.Querier call
	// shape: scatter-gather across shards, the lock-guarded WAL store, or
	// the bare tree.
	var querier core.Querier
	switch {
	case s.coord != nil:
		querier = s.coord
	case s.store != nil:
		// Live ingestion is on: queries must hold the store's read lock so
		// they never observe a half-applied batch.
		querier = s.store
	default:
		querier = s.tree
	}
	results, stats, err = querier.QueryCtx(ctx, q, &opts)
	ex.End()
	s.inflight.Add(-1)
	<-s.admission
	if planned {
		s.planner.Observe(plan, exp)
	}
	if err != nil {
		var shardErr *shard.ShardError
		switch {
		case errors.Is(err, core.ErrCanceled):
			if exp != nil {
				// The recorder was finished with the partial counts and
				// frontier: a timed-out explain reports what the search had
				// done, not just the error.
				writeJSON(w, http.StatusGatewayTimeout, map[string]any{
					"error": httpapi.Detail{
						Code:    httpapi.CodeTimeout,
						Message: err.Error(),
					},
					"explain": exp,
				})
				return
			}
			httpError(w, http.StatusGatewayTimeout, err)
		case errors.As(err, &shardErr):
			// A failed shard aborts the whole query — never a silently
			// partial top-k. The envelope names the shard so operators know
			// where to look.
			httpError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, core.ErrInvalid):
			httpError(w, http.StatusBadRequest, err)
		default:
			httpError(w, http.StatusUnprocessableEntity, err)
		}
		return
	}
	tr := opts.Trace
	var resp queryResponse
	resp.Query.X, resp.Query.Y = q.X, q.Y
	resp.Query.K = q.K
	resp.Query.Alpha0 = q.Alpha0
	resp.Query.Start, resp.Query.End = q.Iq.Start, q.Iq.End
	resp.Results = make([]queryResult, 0, len(results))
	for _, res := range results {
		resp.Results = append(resp.Results, queryResult{
			POI: res.POI.ID, X: res.POI.X, Y: res.POI.Y,
			Score: res.Score, S0: res.S0, S1: res.S1, Agg: res.Agg,
		})
	}
	resp.Stats.InternalAccesses = stats.InternalAccesses
	resp.Stats.LeafAccesses = stats.LeafAccesses
	resp.Stats.TIAAccesses = stats.TIAAccesses
	resp.Stats.TIAPhysical = stats.TIAPhysical
	resp.Stats.Scored = stats.Scored
	resp.Stats.NodeAccesses = stats.NodeAccesses()
	resp.Stats.CacheHits = stats.CacheHits
	resp.Stats.CacheMisses = stats.CacheMisses
	resp.Stats.ResultCacheHit = stats.ResultCacheHit
	resp.IO = core.IOLines(&stats.IO)
	resp.ElapsedMicros = time.Since(begin).Microseconds()
	resp.Explain = exp
	if tr != nil {
		resp.Trace = make(map[string]obs.SpanStats)
		for _, sp := range tr.Spans() {
			resp.Trace[sp.Name] = sp.SpanStats
		}
	}
	rs := reqSpan.StartChild("respond")
	writeJSON(w, http.StatusOK, resp)
	rs.End()
}

// parseOpts carries the per-request options parsed alongside the query.
type parseOpts struct {
	traced  bool
	nocache bool
	explain bool
	timeout time.Duration
	minLSN  uint64
}

// parseQuery builds the core.Query from URL parameters. x and y are
// required; the interval defaults to the whole indexed span, or its last
// `days` days.
func (s *server) parseQuery(r *http.Request) (core.Query, parseOpts, error) {
	v := r.URL.Query()
	var po parseOpts
	q := core.Query{
		K:      10,
		Alpha0: 0.3,
		Iq:     tia.Interval{Start: s.dataStart, End: s.dataEnd},
	}
	var err error
	if q.X, err = floatParam(v.Get("x")); err != nil {
		return q, po, fmt.Errorf("parameter x: %w", err)
	}
	if q.Y, err = floatParam(v.Get("y")); err != nil {
		return q, po, fmt.Errorf("parameter y: %w", err)
	}
	if raw := v.Get("k"); raw != "" {
		if q.K, err = strconv.Atoi(raw); err != nil {
			return q, po, fmt.Errorf("parameter k: %w", err)
		}
	}
	if raw := v.Get("alpha"); raw != "" {
		if q.Alpha0, err = strconv.ParseFloat(raw, 64); err != nil {
			return q, po, fmt.Errorf("parameter alpha: %w", err)
		}
	}
	if raw := v.Get("days"); raw != "" {
		days, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return q, po, fmt.Errorf("parameter days: %w", err)
		}
		q.Iq.Start = q.Iq.End - days*lbsn.Day
		if q.Iq.Start < s.dataStart {
			q.Iq.Start = s.dataStart
		}
	}
	if raw := v.Get("start"); raw != "" {
		if q.Iq.Start, err = strconv.ParseInt(raw, 10, 64); err != nil {
			return q, po, fmt.Errorf("parameter start: %w", err)
		}
	}
	if raw := v.Get("end"); raw != "" {
		if q.Iq.End, err = strconv.ParseInt(raw, 10, 64); err != nil {
			return q, po, fmt.Errorf("parameter end: %w", err)
		}
	}
	if raw := v.Get("timeout_ms"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms <= 0 {
			return q, po, fmt.Errorf("parameter timeout_ms: must be a positive integer")
		}
		po.timeout = time.Duration(ms) * time.Millisecond
	}
	if raw := v.Get("min_lsn"); raw != "" {
		if po.minLSN, err = strconv.ParseUint(raw, 10, 64); err != nil {
			return q, po, fmt.Errorf("parameter min_lsn: %w", err)
		}
	}
	po.traced = v.Get("trace") == "1" || v.Get("trace") == "true"
	po.nocache = v.Get("nocache") == "1" || v.Get("nocache") == "true"
	po.explain = v.Get("explain") == "1" || v.Get("explain") == "true"
	return q, po, nil
}

// maxMinLSNWait caps a min_lsn watermark wait when the request carries no
// timeout_ms of its own.
const maxMinLSNWait = 5 * time.Second

var (
	errRecovering        = fmt.Errorf("recovering: index not ready, retry later")
	errIngestDisabled    = fmt.Errorf("ingestion disabled: server started without -wal-dir")
	errIngestEmpty       = fmt.Errorf("no check-ins in request")
	errIngestBothForms   = fmt.Errorf(`use either {"poi","ts"} or {"checkins":[...]}, not both`)
	errMinLSNUnsupported = fmt.Errorf("min_lsn requires durable mode (-wal-dir)")
)

// ingestRequest is the JSON body of POST /ingest: either a single check-in
// {"poi":17,"ts":1234567890} or a batch {"checkins":[{"poi":..,"ts":..},...]}.
type ingestRequest struct {
	POI      *int64       `json:"poi"`
	Ts       *int64       `json:"ts"`
	CheckIns []ingestItem `json:"checkins"`
}

type ingestItem struct {
	POI int64 `json:"poi"`
	Ts  int64 `json:"ts"`
}

// handleIngest durably records live check-ins: a 200 means every check-in in
// the request survived an fsync of the write-ahead log and is visible to
// subsequent queries. 503 while recovering or when the server runs without a
// WAL; 400 for malformed bodies, unknown POIs and pre-origin timestamps.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		httpError(w, http.StatusServiceUnavailable, errRecovering)
		return
	}
	if s.role == "follower" {
		// A follower's WAL is a replica of the leader's — a local write
		// would fork the LSN sequence. The Location header teaches the
		// client where writes go.
		w.Header().Set("Location", s.leaderURL+"/v1/ingest")
		httpError(w, http.StatusForbidden,
			fmt.Errorf("read-only follower: send writes to the leader at %s", s.leaderURL))
		return
	}
	if s.store == nil {
		httpError(w, http.StatusServiceUnavailable, errIngestDisabled)
		return
	}
	var req ingestRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	single := req.POI != nil || req.Ts != nil
	if single && len(req.CheckIns) > 0 {
		httpError(w, http.StatusBadRequest, errIngestBothForms)
		return
	}
	var cs []wal.CheckIn
	if single {
		if req.POI == nil || req.Ts == nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf(`both "poi" and "ts" are required`))
			return
		}
		cs = []wal.CheckIn{{POI: *req.POI, At: *req.Ts}}
	} else {
		if len(req.CheckIns) == 0 {
			httpError(w, http.StatusBadRequest, errIngestEmpty)
			return
		}
		cs = make([]wal.CheckIn, len(req.CheckIns))
		for i, c := range req.CheckIns {
			cs[i] = wal.CheckIn{POI: c.POI, At: c.Ts}
		}
	}
	begin := time.Now()
	lsn, err := s.store.IngestCtx(r.Context(), cs)
	if err != nil {
		if errors.Is(err, wal.ErrInvalid) {
			httpError(w, http.StatusBadRequest, err)
		} else {
			// Durability failure: the WAL could not persist the batch, so
			// nothing was acknowledged or applied.
			s.log.Error("ingest failed", "err", err, "checkins", len(cs))
			httpError(w, http.StatusInternalServerError, err)
		}
		return
	}
	// The ack LSN doubles as the read-your-writes token: advancing the
	// watermark here lets clients echo it as min_lsn on this server, and
	// the response tells them what to echo to a follower.
	if s.watermark != nil {
		s.watermark.Advance(lsn)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":      len(cs),
		"lsn":        lsn,
		"elapsed_us": time.Since(begin).Microseconds(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":         "recovering",
			"uptime_seconds": time.Since(s.start).Seconds(),
		})
		return
	}
	resp := map[string]any{
		"status":         "ready",
		"role":           s.roleName(),
		"uptime_seconds": time.Since(s.start).Seconds(),
	}
	if s.tree != nil {
		resp["indexed_pois"] = s.tree.Len()
		resp["grouping"] = s.tree.Grouping().String()
	}
	if s.store != nil {
		var pending int64
		s.store.View(func(t *core.Tree) { pending = t.PendingCheckIns() })
		resp["wal"] = map[string]any{
			"durable_lsn":      s.store.DurableLSN(),
			"applied_lsn":      s.store.AppliedLSN(),
			"checkpoint_lsn":   s.store.CheckpointLSN(),
			"pending_checkins": pending,
		}
	}
	switch s.role {
	case "follower":
		applied := s.store.AppliedLSN()
		durable := s.replMetrics.LeaderDurableLSN()
		var lag uint64
		if durable > applied {
			lag = durable - applied
		}
		resp["repl"] = map[string]any{
			"leader":             s.leaderURL,
			"applied_lsn":        applied,
			"leader_durable_lsn": durable,
			"lag_records":        lag,
		}
	case "leader":
		resp["repl"] = map[string]any{
			"snapshots_served": s.replMetrics.SnapshotsServed.Value(),
			"stream_requests":  s.replMetrics.StreamRequests.Value(),
			"records_streamed": s.replMetrics.RecordsStreamed.Value(),
		}
	case "shard":
		if sh := s.shardSrv.Load(); sh != nil {
			region := sh.Region
			resp["shard"] = map[string]any{
				"index": sh.Index,
				"of":    sh.N,
				"region": map[string]any{
					"min_x": region.Min[0], "min_y": region.Min[1],
					"max_x": region.Max[0], "max_y": region.Max[1],
				},
			}
		}
	case "coordinator":
		resp["shard"] = map[string]any{
			"shards": s.coord.Shards,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTraces serves the capture ring: the most recent and the slowest
// query records, each with spans (if the query ran traced) and the
// attributed I/O breakdown. With ?format=chrome it instead exports the
// finished span traces (requests, WAL commit batches, flushes,
// checkpoints) as a Chrome trace_event JSON array, loadable directly in
// chrome://tracing or Perfetto.
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, map[string]any{
			"capacity":       s.traces.Cap(),
			"recent":         s.traces.Recent(),
			"slowest":        s.traces.Slowest(),
			"span_traces":    s.spans.Len(),
			"spans_finished": s.spans.Finished(),
		})
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="tarserve-trace.json"`)
		if err := obs.WriteChromeTrace(w, s.spans.Traces()); err != nil {
			s.log.Error("chrome trace export failed", "err", err)
		}
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (use json or chrome)", format))
	}
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := s.reg.WriteTo(w); err != nil {
		s.log.Error("metrics write failed", "err", err)
	}
}

func floatParam(raw string) (float64, error) {
	if raw == "" {
		return 0, fmt.Errorf("missing")
	}
	return strconv.ParseFloat(raw, 64)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError writes the unified JSON error envelope (internal/httpapi): the
// code derives from the status, and a shard failure carries the failing
// shard's index and URL in details.
func httpError(w http.ResponseWriter, status int, err error) {
	var details map[string]any
	var shardErr *shard.ShardError
	if errors.As(err, &shardErr) {
		details = map[string]any{"shard": shardErr.Shard, "url": shardErr.URL}
	}
	httpapi.WriteError(w, status, httpapi.CodeForStatus(status), err.Error(), details)
}
