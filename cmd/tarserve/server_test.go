package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"tartree/internal/aggcache"
	"tartree/internal/lbsn"
	"tartree/internal/obs"
)

func newTestServer(t *testing.T) (*server, *lbsn.Dataset) {
	t.Helper()
	spec, err := lbsn.SpecByName("GS")
	if err != nil {
		t.Fatal(err)
	}
	d, err := lbsn.Generate(spec.Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ring := obs.NewTraceRing(8)
	tr, err := d.Build(lbsn.BuildOptions{Metrics: reg, Traces: ring})
	if err != nil {
		t.Fatal(err)
	}
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	return newServer(tr, reg, ring, log, d.Spec.Start, d.Spec.End, 4), d
}

func get(t *testing.T, s *server, url string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec.Code, rec.Body.String()
}

// TestServeQueryThenMetrics is the end-to-end acceptance check: a kNNTA
// query over HTTP must leave nonzero query-latency buckets, pagestore
// hit/miss counters, and per-backend TIA probe counts on /metrics.
func TestServeQueryThenMetrics(t *testing.T) {
	s, _ := newTestServer(t)

	code, body := get(t, s, "/v1/query?x=50&y=50&k=5&alpha=0.3&days=128")
	if code != 200 {
		t.Fatalf("query status %d: %s", code, body)
	}
	var resp queryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("query response not JSON: %v\n%s", err, body)
	}
	if len(resp.Results) == 0 || len(resp.Results) > 5 {
		t.Fatalf("got %d results, want 1..5", len(resp.Results))
	}
	if resp.Stats.NodeAccesses <= 0 || resp.Stats.Scored <= 0 {
		t.Errorf("query did no work: %+v", resp.Stats)
	}
	for i := 1; i < len(resp.Results); i++ {
		if resp.Results[i].Score < resp.Results[i-1].Score {
			t.Errorf("results not sorted by score at %d", i)
		}
	}

	code, metrics := get(t, s, "/metrics")
	if code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if n := metricValue(t, metrics, `tartree_queries_total`); n != 1 {
		t.Errorf("tartree_queries_total = %g, want 1", n)
	}
	if n := metricValue(t, metrics, `tartree_query_latency_seconds_bucket{le="+Inf"}`); n != 1 {
		t.Errorf("latency +Inf bucket = %g, want 1", n)
	}
	if n := metricValue(t, metrics, `tartree_query_latency_seconds_count`); n != 1 {
		t.Errorf("latency count = %g, want 1", n)
	}
	if n := metricValue(t, metrics, `tartree_query_latency_seconds_sum`); n <= 0 {
		t.Errorf("latency sum = %g, want > 0", n)
	}
	// Attributed I/O counters: the query must leave labeled read series for
	// the r-tree components and the TIA backend, and they must reconcile
	// with the response's own stats.
	rtleaf := metricValue(t, metrics, `tartree_io_page_reads_total{component="rtree-leaf",level="0",result="hit"}`)
	if rtleaf != float64(resp.Stats.LeafAccesses) {
		t.Errorf("rtree-leaf hits = %g, want %d", rtleaf, resp.Stats.LeafAccesses)
	}
	var tiaReads float64
	for level := 0; level < 8; level++ {
		for _, result := range []string{"hit", "miss"} {
			tiaReads += metricValue(t, metrics,
				`tartree_io_page_reads_total{component="tia-btree",level="`+strconv.Itoa(level)+`",result="`+result+`"}`)
		}
	}
	if tiaReads != float64(resp.Stats.TIAAccesses) {
		t.Errorf("tia-btree reads = %g, want %d", tiaReads, resp.Stats.TIAAccesses)
	}
	hits := metricValue(t, metrics, `tartree_pagestore_reads_total{result="hit"}`)
	misses := metricValue(t, metrics, `tartree_pagestore_reads_total{result="miss"}`)
	if hits+misses <= 0 {
		t.Errorf("pagestore reads hit=%g miss=%g, want traffic", hits, misses)
	}
	if n := metricValue(t, metrics, `tartree_tia_probes_total{backend="btree"}`); n <= 0 {
		t.Errorf("btree probes = %g, want > 0", n)
	}
	if n := metricValue(t, metrics, `tarserve_http_requests_total`); n < 1 {
		t.Errorf("http requests = %g, want >= 1", n)
	}
	for _, ty := range []string{
		"# TYPE tartree_query_latency_seconds histogram",
		"# TYPE tartree_pagestore_reads_total counter",
		"# TYPE tarserve_goroutines gauge",
	} {
		if !strings.Contains(metrics, ty) {
			t.Errorf("missing %q in /metrics", ty)
		}
	}
}

func TestServeQueryTrace(t *testing.T) {
	s, _ := newTestServer(t)
	code, body := get(t, s, "/v1/query?x=30&y=70&k=3&trace=1")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp queryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	for _, span := range []string{"gmax", "queue_pop", "expand"} {
		if resp.Trace[span].Count == 0 {
			t.Errorf("span %q missing from trace: %v", span, resp.Trace)
		}
	}
	// Untraced queries must not carry a trace.
	_, body = get(t, s, "/v1/query?x=30&y=70&k=3")
	if strings.Contains(body, `"trace"`) {
		t.Error("untraced query response contains a trace")
	}
}

// TestServeDebugTraces checks the capture ring endpoint: every query —
// traced or not — must appear with its I/O breakdown, and traced queries
// keep their spans.
func TestServeDebugTraces(t *testing.T) {
	s, _ := newTestServer(t)
	for i := 0; i < 3; i++ {
		if code, body := get(t, s, "/v1/query?x=50&y=50&k=5&days=128"); code != 200 {
			t.Fatalf("query status %d: %s", code, body)
		}
	}
	if code, body := get(t, s, "/v1/query?x=20&y=80&k=3&trace=1"); code != 200 {
		t.Fatalf("traced query status %d: %s", code, body)
	}

	code, body := get(t, s, "/v1/traces")
	if code != 200 {
		t.Fatalf("debug/traces status %d: %s", code, body)
	}
	var dump struct {
		Capacity int               `json:"capacity"`
		Recent   []obs.TraceRecord `json:"recent"`
		Slowest  []obs.TraceRecord `json:"slowest"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("debug/traces not JSON: %v\n%s", err, body)
	}
	if dump.Capacity != 8 {
		t.Errorf("capacity = %d, want 8", dump.Capacity)
	}
	if len(dump.Recent) != 4 || len(dump.Slowest) != 4 {
		t.Fatalf("recent=%d slowest=%d records, want 4 each", len(dump.Recent), len(dump.Slowest))
	}
	// Newest first: the traced query leads and keeps its spans.
	newest := dump.Recent[0]
	if !strings.Contains(newest.Query, "k=3") {
		t.Errorf("newest record = %q, want the k=3 query", newest.Query)
	}
	if len(newest.Spans) == 0 {
		t.Error("traced query record has no spans")
	}
	if dump.Recent[1].Spans != nil {
		t.Error("untraced query record has spans")
	}
	for _, rec := range dump.Recent {
		if rec.ID == 0 || rec.Elapsed <= 0 {
			t.Errorf("record missing identity/timing: %+v", rec)
		}
		var tia int64
		for _, line := range rec.IO {
			if line.Component == "tia-btree" {
				tia += line.Hits + line.Misses
			}
		}
		if tia == 0 {
			t.Errorf("record %d has no attributed TIA traffic: %+v", rec.ID, rec.IO)
		}
	}
}

// TestServeConcurrentQueries hammers /query from many goroutines — more
// than the admission limit — and checks that every request succeeds with
// internally consistent per-query stats, and that the in-flight and
// queue-depth gauges drain back to zero.
func TestServeConcurrentQueries(t *testing.T) {
	s, _ := newTestServer(t)
	const workers = 8
	const perWorker = 5
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < perWorker; i++ {
				x := 10 + (w*13+i*7)%80
				y := 10 + (w*29+i*11)%80
				code, body := get(t, s, "/v1/query?x="+strconv.Itoa(x)+"&y="+strconv.Itoa(y)+"&k=5&days=128")
				if code != 200 {
					errs <- fmt.Errorf("worker %d: status %d: %s", w, code, body)
					return
				}
				var resp queryResponse
				if err := json.Unmarshal([]byte(body), &resp); err != nil {
					errs <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				// Per-query attribution must reconcile even under load.
				var tia int64
				for _, line := range resp.IO {
					if strings.HasPrefix(line.Component, "tia-") {
						tia += line.Hits + line.Misses
					}
				}
				if tia != resp.Stats.TIAAccesses {
					errs <- fmt.Errorf("worker %d: attributed TIA reads %d != stats %d", w, tia, resp.Stats.TIAAccesses)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if n := s.inflight.Load(); n != 0 {
		t.Errorf("inflight gauge = %d after drain, want 0", n)
	}
	if n := s.queued.Load(); n != 0 {
		t.Errorf("queue-depth gauge = %d after drain, want 0", n)
	}
	_, metrics := get(t, s, "/metrics")
	if n := metricValue(t, metrics, "tarserve_max_concurrent_queries"); n != 4 {
		t.Errorf("max-concurrent gauge = %g, want 4", n)
	}
	if n := metricValue(t, metrics, "tartree_queries_total"); n != workers*perWorker {
		t.Errorf("queries_total = %g, want %d", n, workers*perWorker)
	}
}

func TestServeBadRequests(t *testing.T) {
	s, _ := newTestServer(t)
	for _, url := range []string{
		"/v1/query",               // missing x, y
		"/v1/query?x=abc&y=1",     // non-numeric
		"/v1/query?x=50&y=50&k=0", // invalid k
	} {
		code, body := get(t, s, url)
		if code != 400 && code != 422 {
			t.Errorf("GET %s: status %d, want 4xx (%s)", url, code, body)
		}
		if !strings.Contains(body, `"error"`) {
			t.Errorf("GET %s: no error field in %s", url, body)
		}
	}
	if code, _ := get(t, s, "/nosuch"); code != 404 {
		t.Errorf("unknown path: status %d, want 404", code)
	}
}

// TestServeLegacyRedirects pins the deprecation path: the unversioned
// routes answer 308 Permanent Redirect to their /v1 successors, preserving
// the query string (and, because 308 forbids a method change, POST bodies).
func TestServeLegacyRedirects(t *testing.T) {
	s, _ := newTestServer(t)
	for _, tc := range []struct {
		method, path, want string
	}{
		{"GET", "/query?x=50&y=50&k=5", "/v1/query?x=50&y=50&k=5"},
		{"POST", "/ingest", "/v1/ingest"},
		{"GET", "/debug/traces", "/v1/traces"},
	} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, strings.NewReader("{}")))
		if rec.Code != 308 {
			t.Errorf("%s %s: status %d, want 308", tc.method, tc.path, rec.Code)
		}
		if loc := rec.Header().Get("Location"); loc != tc.want {
			t.Errorf("%s %s: Location %q, want %q", tc.method, tc.path, loc, tc.want)
		}
	}
}

// TestServeQueryCanceled checks the timeout surface: a query whose context
// is already dead answers 504 Gateway Timeout, not a success or a 5xx
// masquerading as a server fault.
func TestServeQueryCanceled(t *testing.T) {
	s, _ := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/v1/query?x=50&y=50&k=5&timeout_ms=1000", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 504 {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"error"`) {
		t.Errorf("504 body has no error field: %s", rec.Body.String())
	}
	// A bogus timeout_ms is a client error, not a timeout.
	if code, _ := get(t, s, "/v1/query?x=50&y=50&timeout_ms=-5"); code != 400 {
		t.Errorf("negative timeout_ms: status %d, want 400", code)
	}
}

// TestServeQueryCacheStats runs a server with the shared cache attached and
// checks the full loop: the second identical query is a whole-result cache
// hit with zero traversal, the response reports it, nocache=1 bypasses the
// cache, and the aggcache gauges appear on /metrics.
func TestServeQueryCacheStats(t *testing.T) {
	spec, err := lbsn.SpecByName("GS")
	if err != nil {
		t.Fatal(err)
	}
	d, err := lbsn.Generate(spec.Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cache := aggcache.New(1 << 20)
	tr, err := d.Build(lbsn.BuildOptions{Metrics: reg, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	s := newServer(tr, reg, nil, log, d.Spec.Start, d.Spec.End, 4)

	const url = "/v1/query?x=50&y=50&k=5&days=128"
	var cold, warm, bypass queryResponse
	for _, step := range []struct {
		url  string
		resp *queryResponse
	}{{url, &cold}, {url, &warm}, {url + "&nocache=1", &bypass}} {
		code, body := get(t, s, step.url)
		if code != 200 {
			t.Fatalf("GET %s: status %d: %s", step.url, code, body)
		}
		if err := json.Unmarshal([]byte(body), step.resp); err != nil {
			t.Fatal(err)
		}
	}
	if cold.Stats.ResultCacheHit || cold.Stats.CacheMisses == 0 {
		t.Errorf("cold query stats: %+v", cold.Stats)
	}
	if !warm.Stats.ResultCacheHit || warm.Stats.CacheHits == 0 {
		t.Errorf("warm query not served from the cache: %+v", warm.Stats)
	}
	if warm.Stats.NodeAccesses != 0 || warm.Stats.TIAAccesses != 0 {
		t.Errorf("result-cache hit still traversed: %+v", warm.Stats)
	}
	if len(warm.Results) != len(cold.Results) || warm.Results[0] != cold.Results[0] {
		t.Error("cached results differ from cold results")
	}
	if bypass.Stats.ResultCacheHit || bypass.Stats.CacheHits != 0 || bypass.Stats.CacheMisses != 0 {
		t.Errorf("nocache=1 still touched the cache: %+v", bypass.Stats)
	}
	if len(bypass.Results) != len(cold.Results) || bypass.Results[0] != cold.Results[0] {
		t.Error("nocache results differ from cached results")
	}

	_, metrics := get(t, s, "/metrics")
	if n := metricValue(t, metrics, "tartree_aggcache_hits_total"); n < 1 {
		t.Errorf("aggcache hits metric = %g, want >= 1", n)
	}
	if n := metricValue(t, metrics, "tartree_aggcache_entries"); n < 1 {
		t.Errorf("aggcache entries gauge = %g, want >= 1", n)
	}
}

func TestServeHealthzAndPprof(t *testing.T) {
	s, _ := newTestServer(t)
	code, body := get(t, s, "/healthz")
	if code != 200 || !strings.Contains(body, `"ready"`) {
		t.Errorf("healthz: %d %s", code, body)
	}
	code, body = get(t, s, "/debug/pprof/cmdline")
	if code != 200 {
		t.Errorf("pprof cmdline: status %d %s", code, body)
	}
}

// metricValue extracts a sample value from Prometheus text exposition.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: bad value %q", name, m[1])
	}
	return v
}
