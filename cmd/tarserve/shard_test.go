package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"tartree/internal/core"
	"tartree/internal/lbsn"
	"tartree/internal/obs"
	"tartree/internal/shard"
)

// shardedCluster is the full server wiring under test: n tarserve processes
// in the shard role behind loopback HTTP, one tarserve coordinator fronting
// them, and a standalone single-node server over the same corpus as the
// identity oracle.
type shardedCluster struct {
	coord  *server
	single *server
	urls   []string
	m      *shard.Map
	d      *lbsn.Dataset
	// shardServers lets tests reach into one shard's HTTP server (e.g. to
	// kill it).
	shardServers []*httptest.Server
}

func newShardedCluster(t *testing.T, n int) *shardedCluster {
	t.Helper()
	spec, err := lbsn.SpecByName("GS")
	if err != nil {
		t.Fatal(err)
	}
	d, err := lbsn.Generate(spec.Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	m, err := shard.Partition(d.EffectivePOIs(0, 0), n, d.World)
	if err != nil {
		t.Fatal(err)
	}
	log := slog.New(slog.NewTextHandler(io.Discard, nil))

	c := &shardedCluster{m: m, d: d, urls: make([]string, n), shardServers: make([]*httptest.Server, n)}
	for i := 0; i < n; i++ {
		idx := i
		tr, err := d.Build(lbsn.BuildOptions{
			Keep: func(p core.POI) bool { return m.Locate(p.X, p.Y) == idx },
		})
		if err != nil {
			t.Fatal(err)
		}
		sh := newPendingServer(obs.NewRegistry(), obs.NewTraceRing(8), log, 4)
		sh.enableShard(&shard.Server{
			Data:   shard.TreeViewer{Tree: tr},
			Index:  idx,
			N:      n,
			Region: m.Region(idx),
		}, m)
		sh.finishStartup(tr, nil, d.Spec.Start, d.Spec.End)
		srv := httptest.NewServer(sh)
		t.Cleanup(srv.Close)
		c.shardServers[i] = srv
		c.urls[i] = srv.URL
	}

	reg := obs.NewRegistry()
	co := newPendingServer(reg, obs.NewTraceRing(8), log, 4)
	co.setCoordinator(&shard.Coordinator{Shards: c.urls, Metrics: shard.NewMetrics(reg)}, m)
	co.finishStartup(nil, nil, d.Spec.Start, d.Spec.End)
	c.coord = co

	full, err := d.Build(lbsn.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c.single = newServer(full, obs.NewRegistry(), obs.NewTraceRing(8), log, d.Spec.Start, d.Spec.End, 4)
	return c
}

// TestServeShardedQueryMatchesSingleNode runs /v1/query against the
// coordinator and against a single-node server over the same corpus: the
// answers must be exactly identical through the full HTTP wiring (ids,
// bit-identical scores, aggregates), the query must be transparent (same
// response shape), and the coordinator's io rows must attribute the
// fan-out to the shard component.
func TestServeShardedQueryMatchesSingleNode(t *testing.T) {
	c := newShardedCluster(t, 3)
	for _, url := range []string{
		"/v1/query?x=50&y=50&k=5&alpha=0.3&days=128",
		"/v1/query?x=20&y=80&k=8&alpha=0.7&days=64",
		"/v1/query?x=85&y=15&k=3&alpha=0.5&days=200",
	} {
		code, body := get(t, c.single, url+"&nocache=1")
		if code != 200 {
			t.Fatalf("single-node %s: status %d: %s", url, code, body)
		}
		var want queryResponse
		if err := json.Unmarshal([]byte(body), &want); err != nil {
			t.Fatal(err)
		}

		code, body = get(t, c.coord, url)
		if code != 200 {
			t.Fatalf("coordinator %s: status %d: %s", url, code, body)
		}
		var got queryResponse
		if err := json.Unmarshal([]byte(body), &got); err != nil {
			t.Fatal(err)
		}

		if len(got.Results) != len(want.Results) {
			t.Fatalf("%s: coordinator returned %d results, single-node %d", url, len(got.Results), len(want.Results))
		}
		canon := func(rs []queryResult) []queryResult {
			out := append([]queryResult(nil), rs...)
			sort.Slice(out, func(i, j int) bool {
				if out[i].Score != out[j].Score {
					return out[i].Score < out[j].Score
				}
				return out[i].POI < out[j].POI
			})
			return out
		}
		a, b := canon(want.Results), canon(got.Results)
		for i := range a {
			if a[i].POI != b[i].POI {
				t.Fatalf("%s: rank %d: POI %d, single-node has %d", url, i, b[i].POI, a[i].POI)
			}
			if math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
				t.Fatalf("%s: rank %d (POI %d): score %v, single-node %v", url, i, a[i].POI, b[i].Score, a[i].Score)
			}
			if a[i].Agg != b[i].Agg {
				t.Fatalf("%s: rank %d (POI %d): agg %d, single-node %d", url, i, a[i].POI, b[i].Agg, a[i].Agg)
			}
		}

		// The io breakdown attributes the fan-out: one shard row per shard
		// that served at least one round, level = shard index.
		shardRows := 0
		for _, line := range got.IO {
			if line.Component == "shard" {
				shardRows++
				if line.Hits == 0 {
					t.Errorf("%s: shard io row at level %d has no round-trips", url, line.Level)
				}
			}
		}
		if shardRows == 0 {
			t.Errorf("%s: coordinator io breakdown has no shard rows: %+v", url, got.IO)
		}
	}
}

// TestServeShardedExplain: explain=1 through the coordinator carries the
// per-shard attribution table instead of a local plan.
func TestServeShardedExplain(t *testing.T) {
	c := newShardedCluster(t, 3)
	code, body := get(t, c.coord, "/v1/query?x=50&y=50&k=5&alpha=0.3&days=128&explain=1")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp queryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	ex := resp.Explain
	if ex == nil {
		t.Fatal("explain=1 through the coordinator returned no explain object")
	}
	if len(ex.Shards) != 3 {
		t.Fatalf("explain has %d shard rows, want 3: %+v", len(ex.Shards), ex.Shards)
	}
	var results, accesses, tiaReads int64
	for i, row := range ex.Shards {
		if row.Shard != i {
			t.Errorf("shard row %d reports index %d", i, row.Shard)
		}
		if row.URL != c.urls[i] {
			t.Errorf("shard row %d: url %q, want %q", i, row.URL, c.urls[i])
		}
		results += int64(row.Results)
		accesses += row.NodeAccesses
		tiaReads += row.TIAReads
	}
	if results == 0 || accesses == 0 {
		t.Errorf("shard rows report no work: results=%d node_accesses=%d", results, accesses)
	}
	// The explain's summed shard work is the same ledger the stats block
	// reports — distributed queries stay auditable end to end.
	if want := int64(resp.Stats.InternalAccesses + resp.Stats.LeafAccesses); accesses != want {
		t.Errorf("shard rows sum to %d node accesses, stats say %d", accesses, want)
	}
	if tiaReads != resp.Stats.TIAAccesses {
		t.Errorf("shard rows sum to %d TIA reads, stats say %d", tiaReads, resp.Stats.TIAAccesses)
	}
	if ex.Plan != nil {
		t.Errorf("coordinator explain carries a local plan: %+v", ex.Plan)
	}
}

// TestServeShardedKilledShard: with one shard down, the coordinator answers
// 503 with the unavailable envelope naming the dead shard — never a
// silently partial top-k.
func TestServeShardedKilledShard(t *testing.T) {
	c := newShardedCluster(t, 3)
	c.shardServers[1].Close()

	code, body := get(t, c.coord, "/v1/query?x=50&y=50&k=5&alpha=0.3&days=128")
	if code != 503 {
		t.Fatalf("status %d, want 503: %s", code, body)
	}
	var out struct {
		Error struct {
			Code    string         `json:"code"`
			Message string         `json:"message"`
			Details map[string]any `json:"details"`
		} `json:"error"`
		Results []queryResult `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("503 body not JSON: %v\n%s", err, body)
	}
	if out.Error.Code != "unavailable" {
		t.Errorf("error code %q, want %q", out.Error.Code, "unavailable")
	}
	if idx, ok := out.Error.Details["shard"].(float64); !ok || int(idx) != 1 {
		t.Errorf("error details do not name shard 1: %+v", out.Error.Details)
	}
	if u, ok := out.Error.Details["url"].(string); !ok || u != c.urls[1] {
		t.Errorf("error details do not carry the shard url: %+v", out.Error.Details)
	}
	if len(out.Results) != 0 {
		t.Errorf("failed scatter-gather still returned %d results", len(out.Results))
	}
}

// TestServeShardedHealthz pins the role blocks: a shard reports its index
// and owned region, the coordinator its shard list.
func TestServeShardedHealthz(t *testing.T) {
	c := newShardedCluster(t, 3)

	code, body := get(t, c.coord, "/healthz")
	if code != 200 {
		t.Fatalf("coordinator healthz status %d: %s", code, body)
	}
	var ch struct {
		Role  string `json:"role"`
		Shard struct {
			Shards []string `json:"shards"`
		} `json:"shard"`
	}
	if err := json.Unmarshal([]byte(body), &ch); err != nil {
		t.Fatal(err)
	}
	if ch.Role != "coordinator" {
		t.Errorf("coordinator role %q", ch.Role)
	}
	if len(ch.Shard.Shards) != 3 {
		t.Errorf("coordinator healthz lists %d shards, want 3", len(ch.Shard.Shards))
	}

	resp, err := c.shardServers[2].Client().Get(c.urls[2] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("shard healthz status %d", resp.StatusCode)
	}
	var sh struct {
		Role  string `json:"role"`
		Shard struct {
			Index  int `json:"index"`
			Of     int `json:"of"`
			Region struct {
				MinX float64 `json:"min_x"`
				MinY float64 `json:"min_y"`
				MaxX float64 `json:"max_x"`
				MaxY float64 `json:"max_y"`
			} `json:"region"`
		} `json:"shard"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sh); err != nil {
		t.Fatal(err)
	}
	if sh.Role != "shard" {
		t.Errorf("shard role %q", sh.Role)
	}
	if sh.Shard.Index != 2 || sh.Shard.Of != 3 {
		t.Errorf("shard healthz reports %d/%d, want 2/3", sh.Shard.Index, sh.Shard.Of)
	}
	r := c.m.Region(2)
	if sh.Shard.Region.MinX != r.Min[0] || sh.Shard.Region.MaxY != r.Max[1] {
		t.Errorf("shard healthz region [%v %v %v %v] does not match map region %v",
			sh.Shard.Region.MinX, sh.Shard.Region.MinY, sh.Shard.Region.MaxX, sh.Shard.Region.MaxY, r)
	}
}

// TestServeErrorEnvelope is the unified error-contract table: every /v1/*
// failure answers the same JSON envelope with a stable machine-readable
// code, across handlers and statuses.
func TestServeErrorEnvelope(t *testing.T) {
	s, _ := newTestServer(t)
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	pending := newPendingServer(obs.NewRegistry(), obs.NewTraceRing(8), log, 4)

	cases := []struct {
		name     string
		srv      *server
		method   string
		url      string
		body     string
		status   int
		code     string
		contains string
	}{
		{"malformed query", s, "GET", "/v1/query?x=abc&y=50&k=5", "", 400, "invalid_argument", ""},
		{"k out of range", s, "GET", "/v1/query?x=50&y=50&k=0&days=128", "", 400, "invalid_argument", "k must be positive"},
		{"min_lsn without a store", s, "GET", "/v1/query?x=50&y=50&k=5&days=128&min_lsn=9", "", 400, "invalid_argument", "min_lsn"},
		{"shard routes on a standalone server", s, "GET", "/v1/shard/gmax", "", 403, "forbidden", "-shard-of"},
		{"repl routes on a standalone server", s, "GET", "/v1/repl/snapshot", "", 403, "forbidden", "-repl-token"},
		{"unknown v1 route", s, "GET", "/v1/nope", "", 404, "not_found", "/v1/nope"},
		{"ingest on a static server", s, "POST", "/v1/ingest", `{"checkins":[{"poi":1,"ts":1}]}`, 503, "unavailable", ""},
		{"query while recovering", pending, "GET", "/v1/query?x=50&y=50&k=5", "", 503, "unavailable", "recovering"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var code int
			var body string
			if c.method == "POST" {
				code, body = post(t, c.srv, c.url, c.body)
			} else {
				code, body = get(t, c.srv, c.url)
			}
			if code != c.status {
				t.Fatalf("status %d, want %d: %s", code, c.status, body)
			}
			var out struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.Unmarshal([]byte(body), &out); err != nil {
				t.Fatalf("error body not the JSON envelope: %v\n%s", err, body)
			}
			if out.Error.Code != c.code {
				t.Errorf("code %q, want %q", out.Error.Code, c.code)
			}
			if out.Error.Message == "" {
				t.Error("envelope has no message")
			}
			if c.contains != "" && !strings.Contains(out.Error.Message, c.contains) {
				t.Errorf("message %q does not mention %q", out.Error.Message, c.contains)
			}
		})
	}
}
