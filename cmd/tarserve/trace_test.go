package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tartree/internal/aggcache"
	"tartree/internal/core"
	"tartree/internal/lbsn"
	"tartree/internal/obs"
	"tartree/internal/wal"
)

// newTracingTestServer builds a ready server with a shared cache (so the
// query path exercises cache_probe spans) and no WAL.
func newTracingTestServer(t *testing.T) *server {
	t.Helper()
	spec, err := lbsn.SpecByName("GS")
	if err != nil {
		t.Fatal(err)
	}
	d, err := lbsn.Generate(spec.Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cache := aggcache.New(1 << 20)
	tr, err := d.Build(lbsn.BuildOptions{Metrics: reg, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	return newServer(tr, reg, obs.NewTraceRing(8), log, d.Spec.Start, d.Spec.End, 4)
}

// TestQueryTraceSpansReconcile is the query-side tracing acceptance test: a
// traced request must produce admission_wait, cache_probe, and search
// spans, propagate the client's traceparent, and the summed self-times of
// the handler spans must reconcile with the reported request latency.
func TestQueryTraceSpansReconcile(t *testing.T) {
	s := newTracingTestServer(t)

	const client = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/v1/query?x=50&y=50&k=5&alpha=0.3&days=128", nil)
	req.Header.Set("traceparent", client)
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("query status %d: %s", rec.Code, rec.Body.String())
	}

	// The response announces the server's span in the client's trace.
	tp := rec.Header().Get("traceparent")
	sc, err := obs.ParseTraceparent(tp)
	if err != nil {
		t.Fatalf("response traceparent %q: %v", tp, err)
	}
	want, _ := obs.ParseTraceparent(client)
	if sc.TraceID != want.TraceID {
		t.Fatalf("response joined trace %s, want client trace %s", sc.TraceID, want.TraceID)
	}

	ft := s.spans.Find(sc.TraceID)
	if ft == nil {
		t.Fatal("request trace not in span buffer")
	}
	for _, name := range []string{"admission_wait", "execute", "cache_probe", "search", "respond"} {
		if ft.Find(name) == nil {
			t.Fatalf("trace missing span %q (spans: %v)", name, spanNames(ft))
		}
	}
	// The remote client span is the root's parent, zeroed to keep the
	// exported tree self-contained.
	if root := ft.Root(); root.Name != "GET /v1/query" {
		t.Fatalf("root span %q", root.Name)
	}

	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// Self-times of the handler phase spans telescope to admission_wait +
	// execute wall time, which is what elapsed_us reports (minus span
	// bookkeeping gaps of nanoseconds).
	var sum time.Duration
	for _, name := range []string{"admission_wait", "execute", "cache_probe", "search", "cache_store"} {
		if sp := ft.Find(name); sp != nil {
			sum += ft.SelfTime(sp.ID)
		}
	}
	elapsed := time.Duration(resp.ElapsedMicros) * time.Microsecond
	diff := sum - elapsed
	if diff < 0 {
		diff = -diff
	}
	if diff > elapsed/20 && diff > 50*time.Microsecond {
		t.Fatalf("span self-times %v vs reported latency %v: off by %v (>5%%)", sum, elapsed, diff)
	}
}

func spanNames(ft *obs.FinishedTrace) []string {
	names := make([]string, len(ft.Spans))
	for i, sp := range ft.Spans {
		names[i] = sp.Name
	}
	return names
}

// newSlowWALTracingServer builds a WAL-backed server whose fsyncs take long
// enough that concurrent ingests coalesce into one commit batch.
func newSlowWALTracingServer(t *testing.T) *server {
	t.Helper()
	spec, err := lbsn.SpecByName("GS")
	if err != nil {
		t.Fatal(err)
	}
	d, err := lbsn.Generate(spec.Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	s := newPendingServer(reg, obs.NewTraceRing(8), log, 4)

	dirFS, err := wal.NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store, err := wal.OpenStore(&wal.SlowFS{FS: dirFS, SyncDelay: 20 * time.Millisecond},
		func() (*core.Tree, error) {
			return d.Build(lbsn.BuildOptions{Metrics: reg})
		}, wal.StoreOptions{Metrics: reg, TraceSink: s.spanSink})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	s.finishStartup(store.Tree(), store, d.Spec.Start, d.Spec.End)
	return s
}

// TestIngestTraceEndToEnd is the ingest-side acceptance test: concurrent
// POST /v1/ingest requests with traceparent headers yield span trees with
// validate → wal_append → fsync_batch → apply, and a wal_commit_batch
// trace that links at least two of the member requests.
func TestIngestTraceEndToEnd(t *testing.T) {
	s := newSlowWALTracingServer(t)
	poi := int64(-1)
	for id := int64(1); id < 1000; id++ {
		if _, ok := s.tree.Lookup(id); ok {
			poi = id
			break
		}
	}
	if poi < 0 {
		t.Fatal("no indexed POI")
	}

	const writers = 6
	traceIDs := make([]obs.TraceID, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			body := fmt.Sprintf(`{"poi": %d, "ts": %d}`, poi, s.dataEnd+int64(i))
			req := httptest.NewRequest("POST", "/v1/ingest", strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			s.ServeHTTP(rec, req)
			if rec.Code != 200 {
				t.Errorf("ingest status %d: %s", rec.Code, rec.Body.String())
				return
			}
			sc, err := obs.ParseTraceparent(rec.Header().Get("traceparent"))
			if err != nil {
				t.Errorf("ingest response traceparent: %v", err)
				return
			}
			traceIDs[i] = sc.TraceID
		}()
	}
	wg.Wait()

	members := make(map[obs.TraceID]bool, writers)
	for _, id := range traceIDs {
		members[id] = true
	}
	for _, id := range traceIDs {
		ft := s.spans.Find(id)
		if ft == nil {
			t.Fatalf("ingest trace %s not captured", id)
		}
		for _, name := range []string{"validate", "wal_append", "fsync_batch", "apply"} {
			if ft.Find(name) == nil {
				t.Fatalf("ingest trace missing %q (spans: %v)", name, spanNames(ft))
			}
		}
	}
	best := 0
	for _, ft := range s.spans.Traces() {
		if ft.Root().Name != "wal_commit_batch" {
			continue
		}
		linked := 0
		for _, link := range ft.Root().Links {
			if members[link.TraceID] {
				linked++
			}
		}
		if linked > best {
			best = linked
		}
	}
	if best < 2 {
		t.Fatalf("no commit batch links >= 2 concurrent ingests (best %d)", best)
	}
}

// TestTracesChromeExport checks the /v1/traces?format=chrome endpoint.
func TestTracesChromeExport(t *testing.T) {
	s := newTracingTestServer(t)
	if code, body := get(t, s, "/v1/query?x=50&y=50&k=3"); code != 200 {
		t.Fatalf("query: %d %s", code, body)
	}
	code, body := get(t, s, "/v1/traces?format=chrome")
	if code != 200 {
		t.Fatalf("chrome export status %d", code)
	}
	if !strings.HasPrefix(body, "[\n") || !strings.Contains(body, `"ph":"X"`) {
		t.Fatalf("not a chrome trace event array:\n%.200s", body)
	}
	if !strings.Contains(body, "GET /v1/query") {
		t.Fatal("exported trace missing the query request span")
	}
	if code, _ := get(t, s, "/v1/traces?format=bogus"); code != 400 {
		t.Fatalf("bogus format status %d, want 400", code)
	}
	// The default JSON view still works and now reports span-trace counts.
	code, body = get(t, s, "/v1/traces")
	if code != 200 || !strings.Contains(body, "span_traces") {
		t.Fatalf("default traces view: %d %s", code, body)
	}
}

// TestServerSLOMetrics wires an SLO tracker the way main does and checks
// the burn-rate series appear on /metrics after a query.
func TestServerSLOMetrics(t *testing.T) {
	s := newTracingTestServer(t)
	objs, err := obs.ParseSLOs("query:p99<50ms")
	if err != nil {
		t.Fatal(err)
	}
	s.slo = obs.NewSLOTracker(objs)
	s.slo.Register(s.reg)
	if code, body := get(t, s, "/v1/query?x=50&y=50&k=3"); code != 200 {
		t.Fatalf("query: %d %s", code, body)
	}
	code, body := get(t, s, "/metrics")
	if code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	for _, want := range []string{
		`tartree_slo_requests_total{slo="query:p99<50ms",outcome="good"}`,
		`tartree_slo_burn_rate{slo="query:p99<50ms",window="5m"}`,
		`tartree_slo_burn_rate{slo="query:p99<50ms",window="1h"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
