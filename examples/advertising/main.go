// Advertising: location-based mobile advertising (Section 1) issues large
// batches of kNNTA queries — one per user — against a shared set of venues,
// with only a few interval presets ("today", "this week"). This example
// compares processing the batch individually against the paper's collective
// scheme (Section 7.2), which shares index traversal and TIA aggregation.
package main

import (
	"fmt"
	"log"
	"time"

	"tartree/internal/batch"
	"tartree/internal/core"
	"tartree/internal/lbsn"
	"tartree/internal/tia"
)

func main() {
	// A scaled-down Foursquare-like data set (GS in the paper).
	data, err := lbsn.Generate(lbsn.GS.Scaled(0.1))
	if err != nil {
		log.Fatal(err)
	}
	// TIAs run unbuffered so the sharing effect is visible in page reads.
	factory := tia.NewBTreeFactory(1024, 0)
	tr, err := data.Build(lbsn.BuildOptions{Grouping: core.TAR3D, TIA: factory})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d venues\n", tr.Len())

	// 2000 users ask for venues near them; campaigns use two interval
	// presets: the last two weeks and the last two months. (Presets shorter
	// than the 7-day epoch would match no complete epoch under the paper's
	// containment semantics.)
	presets := []tia.Interval{
		{Start: data.Spec.End - 14*lbsn.Day, End: data.Spec.End},
		{Start: data.Spec.End - 56*lbsn.Day, End: data.Spec.End},
	}
	queries := data.QueriesWithIntervals(2000, 5, 0.3, 99, presets)

	start := time.Now()
	_, indStats, err := batch.ProcessIndividually(tr, queries)
	if err != nil {
		log.Fatal(err)
	}
	indTime := time.Since(start)

	start = time.Now()
	collRes, collStats, err := batch.Process(tr, queries)
	if err != nil {
		log.Fatal(err)
	}
	collTime := time.Since(start)

	n := float64(len(queries))
	fmt.Printf("individual: %6.2f node accesses/query, %6.2f TIA reads/query, %v total\n",
		float64(indStats.RTreeAccesses())/n, float64(indStats.TIAPhysical)/n, indTime.Round(time.Millisecond))
	fmt.Printf("collective: %6.2f node accesses/query, %6.2f TIA reads/query, %v total\n",
		float64(collStats.RTreeAccesses())/n, float64(collStats.TIAPhysical)/n, collTime.Round(time.Millisecond))

	// Show one user's recommendations.
	fmt.Println("\nsample recommendations for the first user:")
	for i, r := range collRes[0].Results {
		fmt.Printf("  %d. venue %d at (%.1f, %.1f), %d recent check-ins\n",
			i+1, r.POI.ID, r.POI.X, r.POI.Y, r.Agg)
	}
}
