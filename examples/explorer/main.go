// Explorer: a user browses nearby attractions and tunes the balance
// between closeness and popularity. The minimum weight adjustment (Section
// 7.1) tells the interface exactly how far the slider must move before the
// result set changes — so the app can skip the dead zone instead of
// re-running queries that return the same answers.
package main

import (
	"fmt"
	"log"

	"tartree/internal/core"
	"tartree/internal/lbsn"
	"tartree/internal/mwa"
	"tartree/internal/tia"
)

func main() {
	data, err := lbsn.Generate(lbsn.NYC.Scaled(0.5))
	if err != nil {
		log.Fatal(err)
	}
	tr, err := data.Build(lbsn.BuildOptions{Grouping: core.TAR3D})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d attractions\n\n", tr.Len())

	q := core.Query{
		X: 50, Y: 50,
		Iq:     tia.Interval{Start: data.Spec.End - 256*lbsn.Day, End: data.Spec.End},
		K:      5,
		Alpha0: 0.5,
	}

	// Walk the weight space: at each step, ask for the top-5 and the
	// minimum adjustment that would change them, then jump just past it.
	for step := 0; step < 4; step++ {
		top, adj, stats, err := mwa.Pruning(tr, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("alpha0 = %.4f (distance %3.0f%%, popularity %3.0f%%):\n",
			q.Alpha0, q.Alpha0*100, (1-q.Alpha0)*100)
		for i, r := range top {
			fmt.Printf("  %d. POI %-6d dist-part %.3f  popularity-part %.3f  (%d check-ins)\n",
				i+1, r.POI.ID, r.S0, r.S1, r.Agg)
		}
		fmt.Printf("  [%d node accesses to compute top-k and adjustment]\n", stats.RTreeAccesses())
		if !adj.HasUpper || adj.Upper >= 0.999 {
			fmt.Println("  no upward adjustment changes the results; stopping")
			break
		}
		fmt.Printf("  -> results frozen until alpha0 exceeds %.4f; jumping there\n\n", adj.Upper)
		q.Alpha0 = adj.Upper + 1e-6
	}
}
