// Nightlife: the paper's motivating scenario — "find a nearby club that is
// gathering the most people in the last hour" (Section 1). A synthetic
// night unfolds minute by minute: clubs receive check-ins, epochs close
// every 15 minutes, and a user asks the same question at different hours,
// getting different answers as the crowd moves.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"tartree"
)

const minute = int64(60)

func main() {
	r := rand.New(rand.NewSource(2015))
	tr, err := tartree.New(tartree.Options{
		World:       tartree.WorldRect(0, 0, 10, 10), // a 10×10 km city
		EpochStart:  0,
		EpochLength: 15 * minute,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 40 clubs across town; each has a "peak hour" when its crowd arrives.
	type club struct {
		id   int64
		name string
		peak float64 // hour of the night with the largest crowd
		size float64 // how big the club is
	}
	clubs := make([]club, 40)
	for i := range clubs {
		clubs[i] = club{
			id:   int64(i + 1),
			name: fmt.Sprintf("club-%02d", i+1),
			peak: 1 + 6*r.Float64(),
			size: 20 + 180*r.Float64(),
		}
		if err := tr.InsertPOI(tartree.POI{
			ID: clubs[i].id, X: r.Float64() * 10, Y: r.Float64() * 10,
		}, nil); err != nil {
			log.Fatal(err)
		}
	}

	// Simulate eight hours of night life: per minute, each club receives
	// Poisson-ish arrivals peaking at its peak hour.
	for m := int64(0); m < 8*60; m++ {
		hour := float64(m) / 60
		for _, c := range clubs {
			rate := c.size / 60 * math.Exp(-0.5*math.Pow((hour-c.peak)/1.2, 2))
			n := 0
			for p := rate; p > 0; p-- {
				if r.Float64() < p {
					n++
				}
			}
			for i := 0; i < n; i++ {
				if err := tr.AddCheckIn(c.id, m*minute+int64(r.Intn(60))); err != nil {
					log.Fatal(err)
				}
			}
		}
		if m%15 == 14 {
			if err := tr.FlushEpochs((m + 1) * minute); err != nil {
				log.Fatal(err)
			}
		}
	}

	// The user stands at the city center and asks at 2am, 4am and 6am:
	// which club gathered the most people in the last hour, preferring
	// nearby ones (α0 = 0.3, the paper's default)?
	for _, hour := range []int64{2, 4, 6} {
		now := hour * 60 * minute
		results, _, err := tr.Query(tartree.Query{
			X: 5, Y: 5,
			Iq:     tartree.Interval{Start: now - 60*minute, End: now},
			K:      3,
			Alpha0: 0.3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("at %d:00 — top clubs by crowd in the last hour:\n", hour)
		for i, res := range results {
			fmt.Printf("  %d. %s at (%.1f, %.1f): %d check-ins, score %.3f\n",
				i+1, clubs[res.POI.ID-1].name, res.POI.X, res.POI.Y, res.Agg, res.Score)
		}
	}
}
