// Quickstart: index a handful of POIs with check-in histories, then answer
// a kNNTA query — the smallest complete use of the public API.
package main

import (
	"fmt"
	"log"

	"tartree"
)

func main() {
	// A 100×100 world with one-hour epochs starting at t=0.
	tr, err := tartree.New(tartree.Options{
		World:       tartree.WorldRect(0, 0, 100, 100),
		EpochStart:  0,
		EpochLength: 3600,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three cafés with their hourly visit histories (epoch start, end,
	// count). Zero-visit epochs are simply omitted.
	pois := []struct {
		p    tartree.POI
		hist []tartree.Record
	}{
		{tartree.POI{ID: 1, X: 20, Y: 30}, []tartree.Record{
			{Ts: 0, Te: 3600, Agg: 4}, {Ts: 3600, Te: 7200, Agg: 6}}},
		{tartree.POI{ID: 2, X: 60, Y: 65}, []tartree.Record{
			{Ts: 3600, Te: 7200, Agg: 21}}},
		{tartree.POI{ID: 3, X: 55, Y: 58}, []tartree.Record{
			{Ts: 0, Te: 3600, Agg: 2}}},
	}
	for _, e := range pois {
		if err := tr.InsertPOI(e.p, e.hist); err != nil {
			log.Fatal(err)
		}
	}

	// Live check-ins stream in and are folded into the index when their
	// epoch completes.
	for i := 0; i < 5; i++ {
		if err := tr.AddCheckIn(3, 7200+int64(i*60)); err != nil {
			log.Fatal(err)
		}
	}
	if err := tr.FlushEpochs(3 * 3600); err != nil {
		log.Fatal(err)
	}

	// Who is worth visiting near (50, 50), weighing recency of popularity
	// over the last two hours at 70%?
	results, stats, err := tr.Query(tartree.Query{
		X: 50, Y: 50,
		Iq:     tartree.Interval{Start: 3600, End: 3 * 3600},
		K:      2,
		Alpha0: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("#%d POI %d at (%.0f,%.0f): score %.3f (distance part %.3f, aggregate %d visits)\n",
			i+1, r.POI.ID, r.POI.X, r.POI.Y, r.Score, r.S0, r.Agg)
	}
	fmt.Printf("answered with %d R-tree node accesses and %d TIA page reads\n",
		stats.RTreeAccesses(), stats.TIAAccesses)
}
