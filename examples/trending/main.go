// Trending: three capabilities beyond the paper's headline experiment in
// one scenario. A news app ranks venues by their busiest single epoch (the
// max aggregate) instead of the total, over a varied-length epoch grid
// (fine recent epochs, coarse old ones — the grid the paper sketches in
// Section 3.1), and a cost-model-driven planner decides per query whether
// the TAR-tree or a sequential scan is cheaper.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tartree/internal/core"
	"tartree/internal/geo"
	"tartree/internal/planner"
	"tartree/internal/tia"
)

func main() {
	r := rand.New(rand.NewSource(7))
	tr, err := core.NewTree(core.Options{
		World:    geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{100, 100}},
		Grouping: core.TAR3D,
		// Geometric epochs: 1h, 2h, 4h, 8h, ... — recent history is fine
		// grained, old history coarse, and the TIA's interval records
		// handle the non-uniform grid natively.
		Epochs:  core.GeometricEpochs{Start: 0, First: 3600},
		AggFunc: tia.FuncMax,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 500 venues; one of them ("the stadium") has a single gigantic spike,
	// the rest trickle along. Under the max aggregate the spike dominates
	// even though steady venues have larger totals.
	const n = 500
	for i := 1; i <= n; i++ {
		if err := tr.InsertPOI(core.POI{ID: int64(i), X: r.Float64() * 100, Y: r.Float64() * 100}, nil); err != nil {
			log.Fatal(err)
		}
	}
	horizon := int64(64 * 3600) // 64 hours of activity
	for i := 1; i <= n; i++ {
		checkins := 50 + r.Intn(100)
		for c := 0; c < checkins; c++ {
			tr.AddCheckIn(int64(i), int64(r.Float64()*float64(horizon))) //nolint:errcheck
		}
	}
	const stadium = 42
	// A concert: 3000 check-ins within one hour.
	for c := 0; c < 3000; c++ {
		tr.AddCheckIn(stadium, 30*3600+int64(r.Intn(3600))) //nolint:errcheck
	}
	if err := tr.FlushAll(); err != nil {
		log.Fatal(err)
	}

	pl, err := planner.New(tr)
	if err != nil {
		log.Fatal(err)
	}

	// The all-time trending board: the concert's single hour beats every
	// steady venue's best epoch.
	top, _, err := tr.Query(core.Query{
		X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: horizon}, K: 3, Alpha0: 0.2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("all-time trending (max aggregate):")
	for i, rr := range top {
		marker := ""
		if rr.POI.ID == stadium {
			marker = "  <- the concert spike"
		}
		fmt.Printf("  %d. venue %d: busiest epoch %d check-ins%s\n", i+1, rr.POI.ID, rr.Agg, marker)
	}

	// The planner at work on an ordinary window (no outlier): the index
	// wins for small k, the scan when k approaches the venue count.
	window := tia.Interval{Start: 40 * 3600, End: horizon}
	for _, k := range []int{3, 450} {
		q := core.Query{X: 50, Y: 50, Iq: window, K: k, Alpha0: 0.5}
		_, plan, _, err := pl.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k=%d over the last day: planner chose %v (index cost %.1f vs scan cost %.1f)\n",
			k, plan.Engine, plan.IndexCost, plan.ScanCost)
	}
}
