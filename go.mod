module tartree

go 1.22
