// Package aggcache is a sharded, epoch-versioned, byte-sized LRU cache for
// query-derived values of a TAR-tree: memoized TIA aggregates — (TIA id,
// interval, agg-func) → aggregate — and whole ranked result sets — (query
// signature, k, α0) → results. The TIA is read-mostly by construction
// (Section 4.1: aggregates change only when an epoch flush folds buffered
// check-ins into the index), so between mutations every cached value is
// provably identical to a recomputation.
//
// Correctness rests on a single monotonic version stamp. Every entry is
// stamped with the cache version current when it was stored; Invalidate
// bumps the version, instantly orphaning every older entry (they miss on
// lookup and are reclaimed lazily by the LRU). The tree bumps the version on
// every mutation that can change a query answer — epoch flushes, live ingest
// applies (WAL replay included), POI insertion/deletion, rebuilds — so a hit
// can never serve pre-mutation state.
//
// Concurrency: Get/Put/Invalidate are safe from any number of goroutines.
// The intended discipline (which wal.Store enforces with its RWMutex) is
// that queries — the only writers of cache entries — run under a read lock
// while mutations and their Invalidate run under the write lock; a Put can
// therefore never straddle an invalidation, and its stamp is always the
// version the value was computed at.
//
// The cache is value-agnostic: keys are any comparable values (the caller
// supplies a 64-bit hash for shard routing), values are opaque with a
// caller-estimated byte size. A nil *Cache is a valid no-op cache, so call
// sites need no guards.
package aggcache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// numShards splits the key space to keep lock contention negligible under
// concurrent queries. Must be a power of two.
const numShards = 16

// entryOverheadBytes is charged per entry on top of the caller-supplied
// value size: the map cell, list element and entry struct.
const entryOverheadBytes = 96

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits and Misses count Get outcomes. A lookup that finds an entry of
	// an older version counts as a miss (and as an Invalidated reclaim).
	Hits, Misses int64
	// Evictions counts entries dropped to fit the byte budget; Invalidated
	// counts stale entries reclaimed lazily on lookup or overwrite.
	Evictions, Invalidated int64
	// Bytes and Entries describe the current contents (stale entries not
	// yet reclaimed included).
	Bytes, Entries int64
	// Version is the current invalidation stamp.
	Version uint64
}

// Cache is the sharded versioned LRU. Create one with New; the zero value
// and the nil pointer are both inert.
type Cache struct {
	version atomic.Uint64
	hits    atomic.Int64
	misses  atomic.Int64
	evicted atomic.Int64
	stale   atomic.Int64
	bytes   atomic.Int64
	entries atomic.Int64
	shards  [numShards]shard
}

type shard struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	items    map[any]*list.Element
	lru      list.List // front = most recent
}

type entry struct {
	key   any
	val   any
	bytes int64
	ver   uint64
}

// New creates a cache bounded to roughly maxBytes across all shards.
// maxBytes <= 0 returns nil — the no-op cache — so a "-cache-bytes 0" flag
// disables caching with no further branching at call sites.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	c := &Cache{}
	per := maxBytes / numShards
	if per < entryOverheadBytes {
		per = entryOverheadBytes
	}
	for i := range c.shards {
		c.shards[i].maxBytes = per
		c.shards[i].items = make(map[any]*list.Element)
	}
	return c
}

// Version returns the current invalidation stamp.
func (c *Cache) Version() uint64 {
	if c == nil {
		return 0
	}
	return c.version.Load()
}

// Invalidate bumps the version stamp, orphaning every stored entry. O(1):
// stale entries are reclaimed lazily by lookups, overwrites and LRU
// pressure.
func (c *Cache) Invalidate() {
	if c == nil {
		return
	}
	c.version.Add(1)
}

// Get returns the cached value for key, or (nil, false). h routes the key to
// a shard; the same key must always be presented with the same hash. Entries
// stored before the last Invalidate miss and are reclaimed.
func (c *Cache) Get(h uint64, key any) (any, bool) {
	if c == nil {
		return nil, false
	}
	ver := c.version.Load()
	s := &c.shards[h&(numShards-1)]
	s.mu.Lock()
	el, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	e := el.Value.(*entry)
	if e.ver != ver {
		s.remove(el, e)
		s.mu.Unlock()
		c.stale.Add(1)
		c.bytes.Add(-e.bytes)
		c.entries.Add(-1)
		c.misses.Add(1)
		return nil, false
	}
	s.lru.MoveToFront(el)
	s.mu.Unlock()
	c.hits.Add(1)
	return e.val, true
}

// Put stores val under key, charging valBytes plus a fixed per-entry
// overhead against the byte budget and evicting least-recently-used entries
// to fit. Values larger than a shard's whole budget are not cached.
func (c *Cache) Put(h uint64, key any, val any, valBytes int64) {
	if c == nil {
		return
	}
	size := valBytes + entryOverheadBytes
	ver := c.version.Load()
	s := &c.shards[h&(numShards-1)]
	if size > s.maxBytes {
		return
	}
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*entry)
		if e.ver != ver {
			c.stale.Add(1)
		}
		c.bytes.Add(size - e.bytes)
		s.bytes += size - e.bytes
		e.val, e.bytes, e.ver = val, size, ver
		s.lru.MoveToFront(el)
	} else {
		el := s.lru.PushFront(&entry{key: key, val: val, bytes: size, ver: ver})
		s.items[key] = el
		s.bytes += size
		c.bytes.Add(size)
		c.entries.Add(1)
	}
	var evicted int64
	for s.bytes > s.maxBytes {
		back := s.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		s.remove(back, e)
		c.bytes.Add(-e.bytes)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evicted.Add(evicted)
		c.entries.Add(-evicted)
	}
}

// remove unlinks an entry from the shard. Caller holds s.mu and settles the
// cache-level byte/entry counters.
func (s *shard) remove(el *list.Element, e *entry) {
	s.lru.Remove(el)
	delete(s.items, e.key)
	s.bytes -= e.bytes
}

// Snapshot returns the current counters.
func (c *Cache) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evicted.Load(),
		Invalidated: c.stale.Load(),
		Bytes:       c.bytes.Load(),
		Entries:     c.entries.Load(),
		Version:     c.version.Load(),
	}
}

// Mix folds v into hash h (FNV-1a style). Callers build shard-routing hashes
// by chaining Mix over the fields of their key structs, starting from Seed.
func Mix(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	return h
}

// Seed is the FNV-1a offset basis, the conventional starting hash for Mix
// chains.
const Seed = 14695981039346656037
