package aggcache

import (
	"fmt"
	"sync"
	"testing"
)

type key struct{ a, b int64 }

func hash(k key) uint64 { return Mix(Mix(Seed, uint64(k.a)), uint64(k.b)) }

func TestGetPutRoundTrip(t *testing.T) {
	c := New(1 << 20)
	k := key{1, 2}
	if _, ok := c.Get(hash(k), k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(hash(k), k, int64(42), 8)
	v, ok := c.Get(hash(k), k)
	if !ok || v.(int64) != 42 {
		t.Fatalf("got (%v, %v), want (42, true)", v, ok)
	}
	s := c.Snapshot()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit, 1 miss, 1 entry", s)
	}
	if s.Bytes != 8+entryOverheadBytes {
		t.Fatalf("bytes %d, want %d", s.Bytes, 8+entryOverheadBytes)
	}
}

func TestInvalidateOrphansEverything(t *testing.T) {
	c := New(1 << 20)
	for i := int64(0); i < 10; i++ {
		k := key{i, i}
		c.Put(hash(k), k, i, 8)
	}
	c.Invalidate()
	for i := int64(0); i < 10; i++ {
		k := key{i, i}
		if _, ok := c.Get(hash(k), k); ok {
			t.Fatalf("key %d hit after Invalidate", i)
		}
	}
	s := c.Snapshot()
	if s.Invalidated != 10 {
		t.Fatalf("invalidated %d, want 10", s.Invalidated)
	}
	if s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("stale entries not reclaimed: %+v", s)
	}
	if s.Version != 1 {
		t.Fatalf("version %d, want 1", s.Version)
	}
	// Fresh puts under the new version hit again.
	k := key{3, 3}
	c.Put(hash(k), k, int64(7), 8)
	if v, ok := c.Get(hash(k), k); !ok || v.(int64) != 7 {
		t.Fatal("post-invalidation put did not hit")
	}
}

func TestPutOverwriteSettlesBytes(t *testing.T) {
	c := New(1 << 20)
	k := key{5, 5}
	c.Put(hash(k), k, "small", 10)
	c.Put(hash(k), k, "bigger", 100)
	s := c.Snapshot()
	if s.Entries != 1 {
		t.Fatalf("entries %d, want 1", s.Entries)
	}
	if s.Bytes != 100+entryOverheadBytes {
		t.Fatalf("bytes %d, want %d", s.Bytes, 100+entryOverheadBytes)
	}
	if v, _ := c.Get(hash(k), k); v != "bigger" {
		t.Fatalf("got %v, want the overwritten value", v)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	// One shard's budget is maxBytes/numShards; route every key to the same
	// shard (identical hash) so eviction order is observable.
	per := int64(4 * (64 + entryOverheadBytes))
	c := New(per * numShards)
	const h = 7
	for i := int64(0); i < 6; i++ {
		k := key{i, 0}
		c.Put(h, k, i, 64)
	}
	s := c.Snapshot()
	if s.Evictions != 2 {
		t.Fatalf("evictions %d, want 2", s.Evictions)
	}
	if s.Bytes > per {
		t.Fatalf("shard over budget: %d > %d", s.Bytes, per)
	}
	// The two oldest keys are gone, the four newest remain.
	for i := int64(0); i < 2; i++ {
		if _, ok := c.Get(h, key{i, 0}); ok {
			t.Fatalf("key %d survived eviction", i)
		}
	}
	for i := int64(2); i < 6; i++ {
		if _, ok := c.Get(h, key{i, 0}); !ok {
			t.Fatalf("key %d evicted out of LRU order", i)
		}
	}
}

func TestOversizedValueNotCached(t *testing.T) {
	c := New(numShards * 1024)
	k := key{9, 9}
	c.Put(hash(k), k, "huge", 1<<20)
	if _, ok := c.Get(hash(k), k); ok {
		t.Fatal("value larger than a shard budget was cached")
	}
	if s := c.Snapshot(); s.Entries != 0 {
		t.Fatalf("entries %d, want 0", s.Entries)
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	c.Put(1, key{1, 1}, 1, 8)
	if _, ok := c.Get(1, key{1, 1}); ok {
		t.Fatal("nil cache hit")
	}
	c.Invalidate()
	if s := c.Snapshot(); s != (Stats{}) {
		t.Fatalf("nil snapshot %+v", s)
	}
	if New(0) != nil {
		t.Fatal("New(0) must return the nil no-op cache")
	}
}

// TestConcurrentHammer drives gets, puts and invalidations from many
// goroutines; run with -race. Afterwards the byte/entry counters must agree
// with a full walk of the shards.
func TestConcurrentHammer(t *testing.T) {
	c := New(64 << 10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := key{int64(i % 97), int64(w % 3)}
				h := hash(k)
				if v, ok := c.Get(h, k); ok {
					if v.(int64) != k.a {
						t.Errorf("corrupt value %v for key %+v", v, k)
						return
					}
				} else {
					c.Put(h, k, k.a, 16)
				}
				if i%500 == 499 && w == 0 {
					c.Invalidate()
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.Snapshot()
	var bytes, entries int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		bytes += sh.bytes
		entries += int64(len(sh.items))
		if sh.lru.Len() != len(sh.items) {
			t.Errorf("shard %d: lru %d != map %d", i, sh.lru.Len(), len(sh.items))
		}
		sh.mu.Unlock()
	}
	if s.Bytes != bytes || s.Entries != entries {
		t.Fatalf("counters (bytes %d, entries %d) != shard walk (%d, %d)",
			s.Bytes, s.Entries, bytes, entries)
	}
	if s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("degenerate run: %+v", s)
	}
}

func TestMixSpreadsShards(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1024; i++ {
		seen[Mix(Seed, i)&(numShards-1)] = true
	}
	if len(seen) != numShards {
		t.Fatalf("hash reached %d/%d shards", len(seen), numShards)
	}
}

func ExampleCache() {
	c := New(1 << 20)
	type aggKey struct {
		tia        uint64
		start, end int64
	}
	k := aggKey{tia: 7, start: 0, end: 3600}
	h := Mix(Mix(Mix(Seed, k.tia), uint64(k.start)), uint64(k.end))
	c.Put(h, k, int64(42), 24)
	if v, ok := c.Get(h, k); ok {
		fmt.Println(v)
	}
	c.Invalidate() // an epoch flush changed the aggregates
	_, ok := c.Get(h, k)
	fmt.Println(ok)
	// Output:
	// 42
	// false
}
