// Package batch implements the collective query processing scheme of
// Section 7.2: a batch of kNNTA queries runs best-first searches over c
// priority queues, and at each step the node that is the front entry of the
// most queues is accessed once and shared by all of them. Queries with the
// same query time interval additionally share the aggregate computation on
// the TIAs (one aggregate cache and one normalization read per interval
// group), mirroring the paper's observation that applications offer only a
// few interval presets.
package batch

import (
	"tartree/internal/core"
	"tartree/internal/rstar"
	"tartree/internal/tia"
)

// Result pairs a query with its top-k answers.
type Result struct {
	Query   core.Query
	Results []core.Result
}

// runState tracks one query's progress through the shared traversal.
type runState struct {
	q       core.Query
	search  *core.Search
	results []core.Result
	done    bool
}

func (st *runState) finished() bool { return st.done || len(st.results) >= st.q.K }

// drainPOIs pops every leading POI element off the queue into the results
// (POIs are free: no node access is needed to consume a leaf entry).
func (st *runState) drainPOIs() {
	for !st.finished() {
		el := st.search.Peek()
		if el == nil {
			st.done = true
			return
		}
		if !el.IsPOI() {
			return
		}
		st.search.Pop()
		st.results = append(st.results, st.search.Result(el))
	}
}

// Process answers the batch collectively and returns per-query results plus
// the shared work counters.
func Process(t *core.Tree, queries []core.Query) ([]Result, core.QueryStats, error) {
	var stats core.QueryStats
	states := make([]*runState, len(queries))

	// Group queries by time interval: one aggregate cache and one
	// normalization constant per group.
	type group struct {
		cache core.AggCache
		gmax  float64
	}
	groups := map[tia.Interval]*group{}
	rootCounted := false
	for i, q := range queries {
		g, ok := groups[q.Iq]
		if !ok {
			cache := make(core.AggCache)
			gm, err := t.MaxAggregate(q.Iq, &stats, cache)
			if err != nil {
				return nil, stats, err
			}
			g = &group{cache: cache, gmax: float64(gm)}
			groups[q.Iq] = g
		}
		s, err := t.NewSearchWith(q, core.SearchOptions{
			Stats:              &stats,
			Cache:              g.cache,
			Gmax:               &g.gmax,
			SkipAccessCounting: true,
		})
		if err != nil {
			return nil, stats, err
		}
		if !rootCounted {
			// The root is read once for the whole batch.
			countNode(&stats, t.Root())
			rootCounted = true
		}
		states[i] = &runState{q: q, search: s}
	}

	active := len(states)
	for _, st := range states {
		st.drainPOIs()
		if st.finished() {
			active--
		}
	}
	for active > 0 {
		// Greedy step: find the node that is the front entry of the most
		// queues (Section 7.2), access it once and advance all of them.
		freq := map[*rstar.Node]int{}
		var best *rstar.Node
		for _, st := range states {
			if st.finished() {
				continue
			}
			n := st.search.Peek().Node()
			freq[n]++
			if best == nil || freq[n] > freq[best] {
				best = n
			}
		}
		if best == nil {
			break
		}
		countNode(&stats, best)
		for _, st := range states {
			if st.finished() {
				continue
			}
			if el := st.search.Peek(); el.Node() == best {
				st.search.Pop()
				if err := st.search.Expand(el); err != nil {
					return nil, stats, err
				}
			}
			st.drainPOIs()
			if st.finished() {
				active--
			}
		}
	}

	out := make([]Result, len(states))
	for i, st := range states {
		out[i] = Result{Query: st.q, Results: st.results}
	}
	return out, stats, nil
}

func countNode(stats *core.QueryStats, n *rstar.Node) {
	if n.Level == 0 {
		stats.LeafAccesses++
	} else {
		stats.InternalAccesses++
	}
}

// ProcessIndividually answers the batch one query at a time with the plain
// best-first search — the baseline the paper compares against (with the
// TIAs unbuffered to expose the effect of memory buffering, which callers
// arrange via the TIA factory).
func ProcessIndividually(t *core.Tree, queries []core.Query) ([]Result, core.QueryStats, error) {
	var total core.QueryStats
	out := make([]Result, len(queries))
	for i, q := range queries {
		res, stats, err := t.Query(q)
		if err != nil {
			return nil, total, err
		}
		out[i] = Result{Query: q, Results: res}
		total.InternalAccesses += stats.InternalAccesses
		total.LeafAccesses += stats.LeafAccesses
		total.TIAAccesses += stats.TIAAccesses
		total.TIAPhysical += stats.TIAPhysical
		total.Scored += stats.Scored
	}
	return out, total, nil
}
