// Package batch implements the collective query processing scheme of
// Section 7.2: a batch of kNNTA queries runs best-first searches over c
// priority queues, and at each step the node that is the front entry of the
// most queues is accessed once and shared by all of them. Queries with the
// same query time interval additionally share the aggregate computation on
// the TIAs (one aggregate cache and one normalization read per interval
// group), mirroring the paper's observation that applications offer only a
// few interval presets.
package batch

import (
	"context"
	"runtime"
	"sync"

	"tartree/internal/core"
	"tartree/internal/rstar"
	"tartree/internal/tia"
)

// Result pairs a query with its top-k answers.
type Result struct {
	Query   core.Query
	Results []core.Result
}

// runState tracks one query's progress through the shared traversal.
type runState struct {
	q       core.Query
	search  *core.Search
	results []core.Result
	done    bool
}

func (st *runState) finished() bool { return st.done || len(st.results) >= st.q.K }

// drainPOIs pops every leading POI element off the queue into the results
// (POIs are free: no node access is needed to consume a leaf entry).
func (st *runState) drainPOIs() {
	for !st.finished() {
		el := st.search.Peek()
		if el == nil {
			st.done = true
			return
		}
		if !el.IsPOI() {
			return
		}
		st.search.Pop()
		st.results = append(st.results, st.search.Result(el))
	}
}

// Process answers the batch collectively and returns per-query results plus
// the shared work counters.
func Process(t *core.Tree, queries []core.Query) ([]Result, core.QueryStats, error) {
	var stats core.QueryStats
	states := make([]*runState, len(queries))

	// Group queries by time interval: one aggregate cache and one
	// normalization constant per group.
	type group struct {
		cache core.AggCache
		gmax  float64
	}
	groups := map[tia.Interval]*group{}
	rootCounted := false
	for i, q := range queries {
		g, ok := groups[q.Iq]
		if !ok {
			cache := make(core.AggCache)
			gm, err := t.MaxAggregate(q.Iq, &stats, cache)
			if err != nil {
				return nil, stats, err
			}
			g = &group{cache: cache, gmax: float64(gm)}
			groups[q.Iq] = g
		}
		s, err := t.NewSearchWith(q, core.SearchOptions{
			Stats:              &stats,
			Cache:              g.cache,
			Gmax:               &g.gmax,
			SkipAccessCounting: true,
		})
		if err != nil {
			return nil, stats, err
		}
		if !rootCounted {
			// The root is read once for the whole batch.
			countNode(&stats, t.Root())
			rootCounted = true
		}
		states[i] = &runState{q: q, search: s}
	}

	active := len(states)
	for _, st := range states {
		st.drainPOIs()
		if st.finished() {
			active--
		}
	}
	for active > 0 {
		// Greedy step: find the node that is the front entry of the most
		// queues (Section 7.2), access it once and advance all of them.
		freq := map[*rstar.Node]int{}
		var best *rstar.Node
		for _, st := range states {
			if st.finished() {
				continue
			}
			n := st.search.Peek().Node()
			freq[n]++
			if best == nil || freq[n] > freq[best] {
				best = n
			}
		}
		if best == nil {
			break
		}
		countNode(&stats, best)
		for _, st := range states {
			if st.finished() {
				continue
			}
			if el := st.search.Peek(); el.Node() == best {
				st.search.Pop()
				if err := st.search.Expand(el); err != nil {
					return nil, stats, err
				}
			}
			st.drainPOIs()
			if st.finished() {
				active--
			}
		}
	}

	out := make([]Result, len(states))
	for i, st := range states {
		out[i] = Result{Query: st.q, Results: st.results}
	}
	return out, stats, nil
}

// ProcessParallel answers the batch with a worker pool: queries are grouped
// by time interval, each group runs the collective scheme of Process on one
// worker, and up to `workers` groups execute concurrently (workers <= 0
// means GOMAXPROCS). Shared-node-access semantics are preserved *within* a
// group — exactly the sharing Process would find, since queries in different
// interval groups never share an aggregate cache anyway. Results come back
// in input order and the returned stats are the merged per-group counters,
// so the totals are identical to running each group through Process
// serially, regardless of worker count.
func ProcessParallel(t *core.Tree, queries []core.Query, workers int) ([]Result, core.QueryStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Group queries by interval, remembering each query's original index.
	type group struct {
		queries []core.Query
		idx     []int
	}
	groups := map[tia.Interval]*group{}
	var order []*group // deterministic iteration: first-appearance order
	for i, q := range queries {
		g, ok := groups[q.Iq]
		if !ok {
			g = &group{}
			groups[q.Iq] = g
			order = append(order, g)
		}
		g.queries = append(g.queries, q)
		g.idx = append(g.idx, i)
	}

	out := make([]Result, len(queries))
	perGroup := make([]core.QueryStats, len(order))
	errs := make([]error, len(order))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for gi, g := range order {
		wg.Add(1)
		go func(gi int, g *group) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, stats, err := Process(t, g.queries)
			perGroup[gi] = stats
			if err != nil {
				errs[gi] = err
				return
			}
			for j, r := range res {
				out[g.idx[j]] = r // disjoint indices: no two groups share a slot
			}
		}(gi, g)
	}
	wg.Wait()

	var total core.QueryStats
	for gi := range perGroup {
		total.Merge(&perGroup[gi])
	}
	for _, err := range errs {
		if err != nil {
			return nil, total, err
		}
	}
	return out, total, nil
}

func countNode(stats *core.QueryStats, n *rstar.Node) {
	if n.Level == 0 {
		stats.LeafAccesses++
	} else {
		stats.InternalAccesses++
	}
}

// ProcessIndividually answers the batch one query at a time with the plain
// best-first search — the baseline the paper compares against (with the
// TIAs unbuffered to expose the effect of memory buffering, which callers
// arrange via the TIA factory). It takes any Querier, so the baseline can
// run against a local tree, a WAL store, a remote server or a shard
// coordinator unchanged.
func ProcessIndividually(src core.Querier, queries []core.Query) ([]Result, core.QueryStats, error) {
	var total core.QueryStats
	out := make([]Result, len(queries))
	for i, q := range queries {
		res, stats, err := src.QueryCtx(context.Background(), q, nil)
		if err != nil {
			return nil, total, err
		}
		out[i] = Result{Query: q, Results: res}
		total.Merge(&stats)
	}
	return out, total, nil
}
