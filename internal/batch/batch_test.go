package batch

import (
	"math"
	"math/rand"
	"testing"

	"tartree/internal/core"
	"tartree/internal/geo"
	"tartree/internal/tia"
)

func buildTree(t testing.TB, n int, seed int64) (*core.Tree, *rand.Rand) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tr, err := core.NewTree(core.Options{
		World:       geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{100, 100}},
		Grouping:    core.TAR3D,
		EpochStart:  0,
		EpochLength: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		var hist []tia.Record
		scale := math.Pow(r.Float64(), -1.1)
		for ep := int64(0); ep < 20; ep++ {
			if r.Intn(3) == 0 {
				agg := int64(1 + scale*r.Float64())
				if agg > 500 {
					agg = 500
				}
				hist = append(hist, tia.Record{Ts: ep * 10, Te: ep*10 + 10, Agg: agg})
			}
		}
		if err := tr.InsertPOI(core.POI{ID: int64(i), X: r.Float64() * 100, Y: r.Float64() * 100}, hist); err != nil {
			t.Fatal(err)
		}
	}
	return tr, r
}

func randomQueries(r *rand.Rand, n, types int) []core.Query {
	// types distinct intervals, as in the paper's Figure 16 setup.
	ivs := make([]tia.Interval, types)
	for i := range ivs {
		start := int64(r.Intn(100))
		ivs[i] = tia.Interval{Start: start, End: start + int64(1+r.Intn(100))}
	}
	qs := make([]core.Query, n)
	for i := range qs {
		qs[i] = core.Query{
			X: r.Float64() * 100, Y: r.Float64() * 100,
			Iq:     ivs[r.Intn(types)],
			K:      10,
			Alpha0: 0.3,
		}
	}
	return qs
}

// TestCollectiveEqualsIndividual: both processing modes return identical
// result sets (scores compared; ties may permute).
func TestCollectiveEqualsIndividual(t *testing.T) {
	tr, r := buildTree(t, 800, 3)
	queries := randomQueries(r, 50, 5)
	coll, _, err := Process(tr, queries)
	if err != nil {
		t.Fatal(err)
	}
	ind, _, err := ProcessIndividually(tr, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(coll) != len(ind) {
		t.Fatalf("result counts differ")
	}
	for i := range coll {
		a, b := coll[i].Results, ind[i].Results
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", i, len(a), len(b))
		}
		for j := range a {
			if math.Abs(a[j].Score-b[j].Score) > 1e-9 {
				t.Fatalf("query %d pos %d: %.9f vs %.9f", i, j, a[j].Score, b[j].Score)
			}
		}
	}
}

// TestCollectiveSharesAccesses: the collective scheme needs fewer R-tree
// node accesses than individual processing, and the advantage grows with
// the batch size (Figure 15's trend).
func TestCollectiveSharesAccesses(t *testing.T) {
	tr, r := buildTree(t, 1500, 7)
	prevPerQuery := math.Inf(1)
	for _, n := range []int{20, 100, 400} {
		queries := randomQueries(r, n, 3)
		_, cs, err := Process(tr, queries)
		if err != nil {
			t.Fatal(err)
		}
		_, is, err := ProcessIndividually(tr, queries)
		if err != nil {
			t.Fatal(err)
		}
		cPer := float64(cs.RTreeAccesses()) / float64(n)
		iPer := float64(is.RTreeAccesses()) / float64(n)
		t.Logf("n=%d: collective %.1f accesses/query, individual %.1f", n, cPer, iPer)
		if cPer >= iPer {
			t.Errorf("n=%d: collective (%v) not cheaper than individual (%v)", n, cPer, iPer)
		}
		if cPer >= prevPerQuery*1.05 {
			t.Errorf("n=%d: per-query accesses did not shrink with batch size (%v -> %v)", n, prevPerQuery, cPer)
		}
		prevPerQuery = cPer
	}
}

// TestMoreTypesLessSharing: with more distinct query intervals, TIA sharing
// declines (Figure 16's trend).
func TestMoreTypesLessSharing(t *testing.T) {
	tr, r := buildTree(t, 1000, 11)
	var prev int64 = -1
	for _, types := range []int{1, 10, 50} {
		queries := randomQueries(r, 100, types)
		_, cs, err := Process(tr, queries)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("types=%d: TIA accesses %d", types, cs.TIAAccesses)
		if prev >= 0 && cs.TIAAccesses < prev {
			// More types must not reduce TIA work (monotone trend, modulo
			// the random query points — allow a small slack).
			if float64(cs.TIAAccesses) < 0.8*float64(prev) {
				t.Errorf("types=%d: TIA accesses %d fell below previous %d", types, cs.TIAAccesses, prev)
			}
		}
		prev = cs.TIAAccesses
	}
}

// TestParallelEqualsSerial: the worker-pool executor returns the same
// results as individual processing, in input order, and its work counters
// are identical regardless of worker count — parallelism must not change
// what is computed, only when.
func TestParallelEqualsSerial(t *testing.T) {
	tr, r := buildTree(t, 800, 5)
	queries := randomQueries(r, 60, 5)
	ind, _, err := ProcessIndividually(tr, queries)
	if err != nil {
		t.Fatal(err)
	}
	var baseline core.QueryStats
	for wi, workers := range []int{1, 4, 16} {
		par, ps, err := ProcessParallel(tr, queries, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range par {
			if par[i].Query != queries[i] {
				t.Fatalf("workers=%d: result %d out of input order", workers, i)
			}
			a, b := par[i].Results, ind[i].Results
			if len(a) != len(b) {
				t.Fatalf("workers=%d query %d: %d vs %d results", workers, i, len(a), len(b))
			}
			for j := range a {
				if math.Abs(a[j].Score-b[j].Score) > 1e-9 {
					t.Fatalf("workers=%d query %d pos %d: %.9f vs %.9f",
						workers, i, j, a[j].Score, b[j].Score)
				}
			}
		}
		// Deterministic counters: logical work must not depend on the
		// worker count. (Physical reads may: eviction order under a shared
		// buffer legitimately varies with interleaving.)
		if wi == 0 {
			baseline = ps
		} else {
			if ps.InternalAccesses != baseline.InternalAccesses ||
				ps.LeafAccesses != baseline.LeafAccesses ||
				ps.TIAAccesses != baseline.TIAAccesses ||
				ps.Scored != baseline.Scored {
				t.Errorf("workers=%d: stats %+v differ from workers=1 baseline %+v",
					workers, ps, baseline)
			}
		}
	}
}

// TestParallelSharesWithinGroups: the worker-pool executor preserves the
// collective scheme's sharing inside each interval group, so it does far
// fewer R-tree accesses than individual processing.
func TestParallelSharesWithinGroups(t *testing.T) {
	tr, r := buildTree(t, 1500, 9)
	queries := randomQueries(r, 200, 3)
	_, ps, err := ProcessParallel(tr, queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, is, err := ProcessIndividually(tr, queries)
	if err != nil {
		t.Fatal(err)
	}
	if ps.RTreeAccesses() >= is.RTreeAccesses() {
		t.Errorf("parallel collective (%d R-tree accesses) not cheaper than individual (%d)",
			ps.RTreeAccesses(), is.RTreeAccesses())
	}
}

func TestEmptyBatch(t *testing.T) {
	tr, _ := buildTree(t, 50, 1)
	out, stats, err := Process(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || stats.RTreeAccesses() != 0 {
		t.Errorf("empty batch produced work: %+v", stats)
	}
}

func TestSingleQueryBatch(t *testing.T) {
	tr, r := buildTree(t, 300, 2)
	q := randomQueries(r, 1, 1)
	coll, _, err := Process(tr, q)
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := tr.Query(q[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(coll[0].Results) != len(direct) {
		t.Fatalf("single-query batch differs from direct query")
	}
	for i := range direct {
		if math.Abs(coll[0].Results[i].Score-direct[i].Score) > 1e-9 {
			t.Fatalf("pos %d differs", i)
		}
	}
}

func TestBatchInvalidQuery(t *testing.T) {
	tr, _ := buildTree(t, 50, 4)
	bad := []core.Query{{X: 1, Y: 1, Iq: tia.Interval{Start: 5, End: 5}, K: 1, Alpha0: 0.5}}
	if _, _, err := Process(tr, bad); err == nil {
		t.Error("invalid query accepted")
	}
	if _, _, err := ProcessIndividually(tr, bad); err == nil {
		t.Error("invalid query accepted individually")
	}
	if _, _, err := ProcessParallel(tr, bad, 4); err == nil {
		t.Error("invalid query accepted in parallel")
	}
}
