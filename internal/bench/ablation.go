package bench

import (
	"fmt"
	"time"

	"tartree/internal/core"
	"tartree/internal/costmodel"
	"tartree/internal/lbsn"
	"tartree/internal/tia"
)

// This file holds ablation experiments beyond the paper's figures: each
// isolates one design choice called out in DESIGN.md and measures its
// effect under the default workload (k = 10, α0 = 0.3).

// AblationTIABackend compares the TIA backends: the in-memory mirror
// (free), the disk B+-tree (default) and the multi-version B-tree the
// paper names. The choice does not affect correctness or R-tree node
// accesses — only TIA page traffic and CPU time.
func AblationTIABackend(cfg Config) ([]Table, error) {
	var tables []Table
	for _, name := range cfg.datasets() {
		env, err := newEnv(cfg, name)
		if err != nil {
			return nil, err
		}
		t := Table{
			Title:  fmt.Sprintf("Ablation: TIA backend (%s)", name),
			Header: []string{"backend", "CPU time (ms)", "node accesses", "TIA page reads"},
		}
		backends := []struct {
			name string
			fac  tia.Factory
		}{
			{"mem", tia.NewMemFactory()},
			{"btree", tia.NewBTreeFactory(defaultNodeSize, 10)},
			{"mvbt", tia.NewMVBTFactory(defaultNodeSize, 10)},
		}
		for _, b := range backends {
			tr, err := env.data.Build(lbsn.BuildOptions{Grouping: core.TAR3D, TIA: b.fac})
			if err != nil {
				return nil, err
			}
			queries := env.data.Queries(cfg.queries(), defaultK, defaultAlpha, cfg.Seed)
			m, err := cfg.measure("TAR-tree/"+b.name, tr, queries)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{b.name, ms(m.CPUMicros), f1(m.NodeAccesses), f1(m.TIAAccesses)})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// AblationBufferSlots sweeps the per-TIA buffer pool size. The paper fixes
// it at 10 slots; this shows what that buys in physical page reads.
func AblationBufferSlots(cfg Config) ([]Table, error) {
	var tables []Table
	for _, name := range cfg.datasets() {
		env, err := newEnv(cfg, name)
		if err != nil {
			return nil, err
		}
		t := Table{
			Title:  fmt.Sprintf("Ablation: TIA buffer slots (%s)", name),
			Header: []string{"slots", "CPU time (ms)", "TIA logical reads", "TIA physical reads"},
		}
		for _, slots := range []int{0, 1, 10, 100} {
			fac := tia.NewBTreeFactory(defaultNodeSize, slots)
			tr, err := env.data.Build(lbsn.BuildOptions{Grouping: core.TAR3D, TIA: fac})
			if err != nil {
				return nil, err
			}
			queries := env.data.Queries(cfg.queries(), defaultK, defaultAlpha, cfg.Seed)
			var cpu float64
			var logical, physical int64
			for _, q := range queries {
				start := time.Now()
				_, stats, err := tr.Query(q)
				if err != nil {
					return nil, err
				}
				cpu += float64(time.Since(start).Microseconds())
				logical += stats.TIAAccesses
				physical += stats.TIAPhysical
			}
			n := float64(len(queries))
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", slots), ms(cpu / n),
				f1(float64(logical) / n), f1(float64(physical) / n),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// AblationReinsert isolates the R* forced-reinsertion heuristic: the same
// TAR-tree built with and without it, plus an STR bulk-loaded tree as the
// packing upper bound.
func AblationReinsert(cfg Config) ([]Table, error) {
	var tables []Table
	for _, name := range cfg.datasets() {
		env, err := newEnv(cfg, name)
		if err != nil {
			return nil, err
		}
		t := Table{
			Title:  fmt.Sprintf("Ablation: construction method (%s)", name),
			Header: []string{"construction", "nodes", "CPU time (ms)", "node accesses"},
		}
		queries := env.data.Queries(cfg.queries(), defaultK, defaultAlpha, cfg.Seed)
		variants := []struct {
			name  string
			build func() (*core.Tree, error)
		}{
			{"R* with reinsertion", func() (*core.Tree, error) {
				return env.data.Build(lbsn.BuildOptions{Grouping: core.TAR3D})
			}},
			{"R* without reinsertion", func() (*core.Tree, error) {
				return buildNoReinsert(env.data)
			}},
			{"STR bulk rebuild", func() (*core.Tree, error) {
				tr, err := env.data.Build(lbsn.BuildOptions{Grouping: core.TAR3D})
				if err != nil {
					return nil, err
				}
				if err := tr.RebuildBulk(); err != nil {
					return nil, err
				}
				return tr, nil
			}},
		}
		for _, v := range variants {
			tr, err := v.build()
			if err != nil {
				return nil, err
			}
			leaves, internals := tr.NodeCount()
			m, err := cfg.measure("TAR-tree/"+v.name, tr, queries)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{v.name,
				fmt.Sprintf("%d", leaves+internals), ms(m.CPUMicros), f1(m.NodeAccesses)})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// buildNoReinsert mirrors Dataset.Build with forced reinsertion disabled.
func buildNoReinsert(d *lbsn.Dataset) (*core.Tree, error) {
	tr, err := core.NewTree(core.Options{
		World:           d.World,
		Grouping:        core.TAR3D,
		EpochStart:      d.Spec.Start,
		EpochLength:     defaultEpoch,
		DisableReinsert: true,
	})
	if err != nil {
		return nil, err
	}
	for i := range d.POIs {
		p := &d.POIs[i]
		hist := lbsn.History(p, d.Spec.Start, defaultEpoch, 0)
		var total int64
		for _, r := range hist {
			total += r.Agg
		}
		if total < d.Spec.MinEffective {
			continue
		}
		if err := tr.InsertPOI(core.POI{ID: p.ID, X: p.X, Y: p.Y}, hist); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// AblationDistScale compares the cost model's estimated f(pk) with and
// without the √2 distance-scale correction (DESIGN.md documents why the
// correction is needed when distances are normalized by the diagonal).
func AblationDistScale(cfg Config) ([]Table, error) {
	var tables []Table
	fanout := effectiveFanoutRatio * float64(core.CapacityFor(defaultNodeSize, 3))
	for _, name := range cfg.datasets() {
		env, err := newEnv(cfg, name)
		if err != nil {
			return nil, err
		}
		tr, err := env.data.Build(lbsn.BuildOptions{Grouping: core.TAR3D})
		if err != nil {
			return nil, err
		}
		t := Table{
			Title:  fmt.Sprintf("Ablation: cost-model distance scale (%s)", name),
			Header: []string{"k", "measured f(pk)", "estimated (scale sqrt2)", "estimated (scale 1)"},
		}
		for _, k := range []int{1, 10, 100} {
			queries := env.data.Queries(cfg.queries(), k, defaultAlpha, cfg.Seed)
			m, err := cfg.measure("TAR-tree", tr, queries)
			if err != nil {
				return nil, err
			}
			est := map[float64]float64{}
			for _, scale := range []float64{1.4142135623730951, 1} {
				fk, err := estimateWithScale(tr, queries, k, defaultAlpha, fanout, scale)
				if err != nil {
					return nil, err
				}
				est[scale] = fk
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", k), f3(m.MeanFk),
				f3(est[1.4142135623730951]), f3(est[1]),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// estimateWithScale mirrors estimateForQueries with an explicit DistScale.
func estimateWithScale(tr *core.Tree, queries []core.Query, k int, alpha0, fanout, scale float64) (float64, error) {
	type class struct {
		n  int
		iv tia.Interval
	}
	classes := map[int64]*class{}
	for _, q := range queries {
		l := q.Iq.End - q.Iq.Start
		if c, ok := classes[l]; ok {
			c.n++
		} else {
			classes[l] = &class{n: 1, iv: q.Iq}
		}
	}
	var ids []int64
	tr.POIs(func(p core.POI, total int64) bool { ids = append(ids, p.ID); return true })
	var fkSum float64
	total := 0
	for _, c := range classes {
		aggs := make([]int64, 0, len(ids))
		for _, id := range ids {
			a, err := tr.AggregateMirror(id, c.iv)
			if err != nil {
				return 0, err
			}
			aggs = append(aggs, a)
		}
		layers, maxAgg := classLayers(aggs)
		p := costmodel.Params{
			Alpha0:    alpha0,
			K:         k,
			Fanout:    fanout,
			MaxAgg:    maxAgg,
			Layers:    layers,
			DistScale: scale,
		}
		fk, err := p.EstimateFk()
		if err != nil {
			return 0, err
		}
		fkSum += fk * float64(c.n)
		total += c.n
	}
	return fkSum / float64(total), nil
}

func init() {
	Experiments["abl-backend"] = AblationTIABackend
	Experiments["abl-buffer"] = AblationBufferSlots
	Experiments["abl-reinsert"] = AblationReinsert
	Experiments["abl-distscale"] = AblationDistScale
}

// AblationIDs lists the ablation experiment ids.
func AblationIDs() []string {
	return []string{"abl-backend", "abl-buffer", "abl-reinsert", "abl-distscale"}
}
