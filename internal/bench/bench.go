// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 8). Each Fig*/Table* function
// runs one experiment and returns text tables whose rows are the series the
// paper plots; cmd/tarbench prints them and the root bench_test.go wraps
// them as Go benchmarks.
//
// Following the paper's setup: the R-tree node size is 1024 bytes (50
// two-dimensional / 36 three-dimensional entries), the epoch length is 7
// days, each TIA has 10 buffer slots, POIs need 15/10/100/50 check-ins to
// be indexed, and 1000 queries are generated with the query point sampled
// from the POIs and the interval length drawn from 2^0..2^9 days. By
// default k = 10 and α0 = 0.3. Because the original data sets are not
// available offline, the harness runs on the calibrated synthetic data of
// internal/lbsn, scaled so an experiment finishes in minutes; absolute
// numbers differ from the paper, trends and ratios are the comparison.
package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"tartree/internal/core"
	"tartree/internal/lbsn"
	"tartree/internal/obs"
	"tartree/internal/seqscan"
	"tartree/internal/tia"
)

// Config parameterizes an experiment run.
type Config struct {
	// Datasets to run on; nil selects GW and GS, the two the paper presents.
	Datasets []string
	// Scale shrinks the data sets; 0 selects per-dataset defaults that keep
	// a full experiment within minutes.
	Scale float64
	// Queries per measurement; 0 selects 200 (the paper uses 1000).
	Queries int
	// Seed for query generation.
	Seed int64
	// Metrics, when set, collects per-method query-latency histograms
	// (bench_query_latency_seconds{method="..."}) across the whole run,
	// which cmd/tarbench -json exports next to the tables.
	Metrics *obs.Registry
	// TraceSink, when set, receives one finished span trace per measured
	// query batch: a bench_batch root span (method/queries attrs) with one
	// child span per query; index methods additionally record their cache
	// probe and best-first search stages below each query span. cmd/tarbench
	// -trace-out writes these as Chrome trace_event JSON.
	TraceSink obs.TraceSink
	// ExplainOut, when set, receives one JSON line per explained query from
	// experiments that run with an explain recorder (currently the
	// calibration sweep). cmd/tarbench -explain-out points it at a file.
	ExplainOut io.Writer
}

func (c Config) datasets() []string {
	if len(c.Datasets) == 0 {
		return []string{"GW", "GS"}
	}
	return c.Datasets
}

// defaultScales keep experiment sweeps within minutes while leaving
// thousands of effective POIs after the check-in thresholds. GW at scale 1
// has 1.28M raw POIs; halving it keeps generation fast without changing the
// distributions.
var defaultScales = map[string]float64{
	"NYC": 1.0, "LA": 1.0, "GW": 0.5, "GS": 1.0,
}

func (c Config) scaleFor(name string) float64 {
	if c.Scale > 0 {
		return c.Scale
	}
	if s, ok := defaultScales[name]; ok {
		return s
	}
	return 0.1
}

func (c Config) queries() int {
	if c.Queries > 0 {
		return c.Queries
	}
	return 200
}

// Table is a printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// dataEnv is a generated data set plus its derived artifacts, shared by the
// experiments on the same dataset.
type dataEnv struct {
	name string
	data *lbsn.Dataset
}

func newEnv(cfg Config, name string) (*dataEnv, error) {
	spec, err := lbsn.SpecByName(name)
	if err != nil {
		return nil, err
	}
	d, err := lbsn.Generate(spec.Scaled(cfg.scaleFor(name)))
	if err != nil {
		return nil, err
	}
	return &dataEnv{name: name, data: d}, nil
}

// methods in the paper's presentation order.
var methodNames = []string{"baseline", "IND-agg", "IND-spa", "TAR-tree"}

// queryable unifies the baseline scanner and the index variants.
type queryable interface {
	Query(q core.Query) ([]core.Result, core.QueryStats, error)
}

// ctxQueryable is the optional richer query entry point (the TAR-tree and
// its variants implement it): measure uses it to attach per-query spans so
// batch traces include the cache-probe/search stages.
type ctxQueryable interface {
	QueryCtx(ctx context.Context, q core.Query, opts *core.QueryOpts) ([]core.Result, core.QueryStats, error)
}

type scanAdapter struct{ s *seqscan.Scanner }

func (a scanAdapter) Query(q core.Query) ([]core.Result, core.QueryStats, error) {
	res, err := a.s.Query(q)
	return res, core.QueryStats{}, err
}

// buildAll constructs the baseline and the three index variants for the
// data set (indexing check-ins before cutoff; 0 = all).
func (e *dataEnv) buildAll(nodeSize int, epochLength int64, cutoff int64) (map[string]queryable, error) {
	out := make(map[string]queryable, 4)
	scan := seqscan.New(e.data.World, tia.Contained)
	for i := range e.data.POIs {
		p := &e.data.POIs[i]
		hist := lbsn.History(p, e.data.Spec.Start, epochLength, cutoff)
		var total int64
		for _, r := range hist {
			total += r.Agg
		}
		if total < e.data.Spec.MinEffective {
			continue
		}
		scan.Add(core.POI{ID: p.ID, X: p.X, Y: p.Y}, hist)
	}
	out["baseline"] = scanAdapter{scan}
	for _, g := range []core.Grouping{core.IndAgg, core.IndSpa, core.TAR3D} {
		tr, err := e.data.Build(lbsn.BuildOptions{
			Grouping:    g,
			NodeSize:    nodeSize,
			EpochLength: epochLength,
			Cutoff:      cutoff,
		})
		if err != nil {
			return nil, err
		}
		out[g.String()] = tr
	}
	return out, nil
}

// measure runs the queries and returns the mean CPU time and mean node
// accesses (R-tree node accesses; zero for the baseline, which scans),
// plus the full latency distribution of the batch.
type measurement struct {
	CPUMicros    float64
	NodeAccesses float64
	LeafAccesses float64
	TIAAccesses  float64
	MeanFk       float64
	Latency      obs.HistogramSnapshot
}

// measure runs the query batch against q. The method label tags the latency
// series: the local histogram feeds measurement.Latency (p50/p95/p99 of this
// batch), and when cfg.Metrics is set the same observations accumulate in
// the run-wide bench_query_latency_seconds{method="..."} histogram.
func (c Config) measure(method string, q queryable, queries []core.Query) (measurement, error) {
	var m measurement
	local := obs.NewHistogram(nil)
	var shared *obs.Histogram
	if c.Metrics != nil {
		shared = c.Metrics.Histogram(fmt.Sprintf(`bench_query_latency_seconds{method=%q}`, method), nil)
	}
	// A nil TraceSink makes bt nil and every span call below a no-op, so
	// the untraced path stays allocation-free.
	bt := obs.StartTrace("bench_batch", obs.SpanContext{}, c.TraceSink)
	bt.SetAttr("method", method)
	bt.SetAttr("queries", len(queries))
	defer bt.Finish()
	ctxTarget, _ := q.(ctxQueryable)
	for _, qu := range queries {
		qs := bt.StartChild("query")
		start := time.Now()
		var (
			res   []core.Result
			stats core.QueryStats
			err   error
		)
		if qs != nil && ctxTarget != nil {
			res, stats, err = ctxTarget.QueryCtx(context.Background(), qu, &core.QueryOpts{Span: qs})
		} else {
			res, stats, err = q.Query(qu)
		}
		if err != nil {
			qs.End()
			return m, err
		}
		elapsed := time.Since(start)
		qs.End()
		local.Observe(elapsed.Seconds())
		if shared != nil {
			shared.Observe(elapsed.Seconds())
		}
		m.CPUMicros += float64(elapsed.Microseconds())
		m.NodeAccesses += float64(stats.RTreeAccesses())
		m.LeafAccesses += float64(stats.LeafAccesses)
		m.TIAAccesses += float64(stats.TIAAccesses)
		if len(res) > 0 {
			m.MeanFk += res[len(res)-1].Score
		}
	}
	n := float64(len(queries))
	m.CPUMicros /= n
	m.NodeAccesses /= n
	m.LeafAccesses /= n
	m.TIAAccesses /= n
	m.MeanFk /= n
	m.Latency = local.Snapshot()
	return m, nil
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func ms(micros float64) string {
	return fmt.Sprintf("%.3f", micros/1000)
}
