package bench

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"tartree/internal/obs"
)

// tinyConfig keeps the smoke tests fast.
func tinyConfig() Config {
	return Config{Datasets: []string{"GS"}, Scale: 0.06, Queries: 20, Seed: 1}
}

func TestTablePrint(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "long-header", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	ds := c.datasets()
	if len(ds) != 2 || ds[0] != "GW" || ds[1] != "GS" {
		t.Errorf("default datasets = %v", ds)
	}
	if c.queries() != 200 {
		t.Errorf("default queries = %d", c.queries())
	}
	if c.scaleFor("GW") != 0.5 {
		t.Errorf("default GW scale = %v", c.scaleFor("GW"))
	}
	if (Config{Scale: 0.5}).scaleFor("GW") != 0.5 {
		t.Error("explicit scale ignored")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := append(ExperimentIDs(), AblationIDs()...)
	if len(ids) != len(Experiments) {
		t.Fatalf("registry has %d entries, ids list %d", len(Experiments), len(ids))
	}
	for _, id := range ids {
		if Experiments[id] == nil {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
}

// TestAllExperimentsRun smoke-tests every experiment at a tiny scale: each
// must produce non-empty tables with consistent row widths.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped in -short mode")
	}
	cfg := tinyConfig()
	for _, id := range ExperimentIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tables, err := Experiments[id](cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("table %q has no rows", tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Header) {
						t.Fatalf("table %q row width %d != header %d", tab.Title, len(row), len(tab.Header))
					}
				}
			}
		})
	}
}

// TestSmokeDeterministic runs the regression probe twice with the same
// config and requires identical work counters — the property cmd/benchdiff
// relies on to gate CI on counts instead of wall-clock.
func TestSmokeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	counters := func() map[string]int64 {
		reg := obs.NewRegistry()
		cfg := tinyConfig()
		cfg.Metrics = reg
		if _, err := Smoke(cfg); err != nil {
			t.Fatal(err)
		}
		out := map[string]int64{}
		for name, v := range reg.Snapshot() {
			if n, ok := v.(int64); ok {
				out[name] = n
			}
		}
		return out
	}
	a, b := counters(), counters()
	if len(a) == 0 {
		t.Fatal("smoke exported no counters")
	}
	for name, v := range a {
		if b[name] != v {
			t.Errorf("counter %s: %d vs %d across identical runs", name, v, b[name])
		}
	}
	for _, method := range []string{"baseline", "IND-agg", "IND-spa", "TAR-tree"} {
		if a[fmt.Sprintf(`bench_results_total{method=%q}`, method)] == 0 {
			t.Errorf("method %s returned no results", method)
		}
	}
}

// TestFig9TARWins checks the headline claim on the generated data: at every
// k the TAR-tree needs no more node accesses than IND-spa and IND-agg.
func TestFig9TARWins(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := tinyConfig()
	cfg.Scale = 0.3 // enough POIs that pruning matters
	cfg.Queries = 60
	tables, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	accesses := map[string]map[string]float64{} // k -> method -> NA
	for _, row := range tables[0].Rows {
		k, method, na := row[0], row[1], row[3]
		if na == "-" {
			continue
		}
		v, err := strconv.ParseFloat(na, 64)
		if err != nil {
			t.Fatal(err)
		}
		if accesses[k] == nil {
			accesses[k] = map[string]float64{}
		}
		accesses[k][method] = v
	}
	// At the smoke-test scale individual k points are noisy (a handful of
	// node accesses); assert over the whole sweep, and that no single point
	// is a blowout.
	totals := map[string]float64{}
	for k, m := range accesses {
		for method, v := range m {
			totals[method] += v
		}
		if m["TAR-tree"] > m["IND-spa"]*1.5 || m["TAR-tree"] > m["IND-agg"]*1.5 {
			t.Errorf("k=%s: TAR-tree %.1f far worse than alternatives (%.1f / %.1f)",
				k, m["TAR-tree"], m["IND-spa"], m["IND-agg"])
		}
	}
	if totals["TAR-tree"] >= totals["IND-spa"] {
		t.Errorf("sweep total: TAR-tree %.1f not better than IND-spa %.1f", totals["TAR-tree"], totals["IND-spa"])
	}
	if totals["TAR-tree"] >= totals["IND-agg"] {
		t.Errorf("sweep total: TAR-tree %.1f not better than IND-agg %.1f", totals["TAR-tree"], totals["IND-agg"])
	}
}

// TestAblationsRun smoke-tests the ablation experiments.
func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := tinyConfig()
	for _, id := range AblationIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tables, err := Experiments[id](cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 || len(tables[0].Rows) == 0 {
				t.Fatal("empty result")
			}
		})
	}
}

func TestClassLayers(t *testing.T) {
	// All zeros: a single zero layer, maxAgg floor of 1.
	layers, maxAgg := classLayers([]int64{0, 0, 0})
	if len(layers) != 1 || layers[0].X != 0 || maxAgg != 1 {
		t.Fatalf("zero-only layers = %v maxAgg=%d", layers, maxAgg)
	}
	// Mixed data: layers ascend in X and cover the total population.
	aggs := make([]int64, 0, 3000)
	for i := 0; i < 3000; i++ {
		if i%3 == 0 {
			aggs = append(aggs, 0)
		} else {
			aggs = append(aggs, int64(1+i%40))
		}
	}
	layers, maxAgg = classLayers(aggs)
	if maxAgg != 40 {
		t.Errorf("maxAgg = %d", maxAgg)
	}
	prev := int64(-1)
	var total float64
	for _, l := range layers {
		if l.X <= prev {
			t.Fatalf("layers out of order at %d", l.X)
		}
		prev = l.X
		total += l.Count
	}
	// The modeled population is within 20% of the actual count (the
	// power-law tail replaces the empirical tail).
	if total < 2400 || total > 3600 {
		t.Errorf("modeled population = %.0f, actual 3000", total)
	}
}
