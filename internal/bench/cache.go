package bench

import (
	"context"
	"fmt"
	"time"

	"tartree/internal/aggcache"
	"tartree/internal/core"
	"tartree/internal/lbsn"
	"tartree/internal/tia"
)

// Cache experiment defaults: a repeated-interval workload — many query
// points sharing a handful of distinct intervals — is where the shared
// cache pays off twice, first through aggregate reuse across queries on the
// same interval, then through whole-result hits when a query repeats.
const (
	cacheIntervals = 4
	cacheBytes     = 32 << 20 // large enough that the workload never evicts
)

// cacheBackends lists the TIA storage engines the cache fronts, in cost
// order: the in-memory mirror, the disk B+-tree (the default), and the
// multiversion B-tree.
var cacheBackends = []struct {
	name string
	fac  func() tia.Factory
}{
	{"mem", func() tia.Factory { return tia.NewMemFactory() }},
	{"btree", func() tia.Factory { return tia.NewBTreeFactory(defaultNodeSize, 10) }},
	{"mvbt", func() tia.Factory { return tia.NewMVBTFactory(defaultNodeSize, 10) }},
}

// CacheExp measures the epoch-versioned cache on a repeated-interval
// workload, per TIA backend: a cold pass with the cache bypassed (the
// uncached baseline), a first cached pass (aggregate reuse across queries
// that share an interval), and a warm pass over the identical batch
// (whole-result hits, zero traversal). Two correctness gates ride along:
// every cached answer must equal its uncached twin, and after a live ingest
// the invalidated cache must again agree with the tree.
//
// The exported counters depend only on the workload shape — never on
// timing — so benchdiff can gate on them:
//
//	bench_cache_queries_total{backend="..."}
//	bench_cache_cold_tia_reads_total{backend="..."}
//	bench_cache_first_agg_hits_total{backend="..."}
//	bench_cache_warm_result_hits_total{backend="..."}
//	bench_cache_warm_tia_reads_total{backend="..."}
func CacheExp(cfg Config) ([]Table, error) {
	name := cfg.datasets()[0]
	if len(cfg.Datasets) == 0 {
		name = "GS"
	}
	if cfg.Scale == 0 {
		cfg.Scale = smokeScale
	}
	if cfg.Queries == 0 {
		cfg.Queries = smokeQueries
	}
	env, err := newEnv(cfg, name)
	if err != nil {
		return nil, err
	}
	ivs := env.data.QueryIntervals(cacheIntervals, cfg.Seed+17)
	queries := env.data.QueriesWithIntervals(cfg.queries(), defaultK, defaultAlpha, cfg.Seed+17, ivs)

	t := Table{
		Title: fmt.Sprintf("Cache: repeated-interval workload (%s, scale %.2f, %d queries over %d intervals)",
			name, cfg.Scale, len(queries), cacheIntervals),
		Header: []string{"backend", "pass", "ms/query", "TIA reads", "agg hits", "agg misses", "result hits", "speedup vs cold"},
	}
	ctx := context.Background()
	for _, b := range cacheBackends {
		cache := aggcache.New(cacheBytes)
		tr, err := env.data.Build(lbsn.BuildOptions{
			Grouping: core.TAR3D,
			NodeSize: defaultNodeSize,
			TIA:      b.fac(),
			Cache:    cache,
		})
		if err != nil {
			return nil, err
		}
		var want [][]core.Result
		runPass := func(opts *core.QueryOpts, check bool) (passStats, error) {
			var ps passStats
			start := time.Now()
			for i, qu := range queries {
				res, stats, err := tr.QueryCtx(ctx, qu, opts)
				if err != nil {
					return ps, err
				}
				ps.tiaReads += stats.TIAAccesses
				ps.aggHits += stats.CacheHits
				ps.aggMisses += stats.CacheMisses
				if stats.ResultCacheHit {
					ps.resultHits++
					ps.aggHits-- // a whole-result hit is not an aggregate probe
				}
				if check {
					if err := sameResults(want[i], res); err != nil {
						return ps, fmt.Errorf("cache %s query %d: %w", b.name, i, err)
					}
				} else {
					want = append(want, res)
				}
			}
			ps.elapsed = time.Since(start)
			return ps, nil
		}

		cold, err := runPass(&core.QueryOpts{NoCache: true}, false)
		if err != nil {
			return nil, err
		}
		first, err := runPass(nil, true)
		if err != nil {
			return nil, err
		}
		warm, err := runPass(nil, true)
		if err != nil {
			return nil, err
		}

		// Invalidation gate: a live ingest folded into a fresh epoch must
		// leave cached and uncached answers in agreement again.
		at := env.data.Spec.End
		for i := range queries[:4] {
			res := want[i]
			if len(res) == 0 {
				continue
			}
			for n := 0; n < 20; n++ {
				if err := tr.AddCheckIn(res[0].POI.ID, at); err != nil {
					return nil, fmt.Errorf("cache %s: ingest: %w", b.name, err)
				}
			}
		}
		if err := tr.FlushEpochs(at + defaultEpoch); err != nil {
			return nil, err
		}
		for i, qu := range queries[:4] {
			plain, _, err := tr.QueryCtx(ctx, qu, &core.QueryOpts{NoCache: true})
			if err != nil {
				return nil, err
			}
			cached, stats, err := tr.QueryCtx(ctx, qu, nil)
			if err != nil {
				return nil, err
			}
			if stats.ResultCacheHit {
				return nil, fmt.Errorf("cache %s query %d: stale result served after ingest", b.name, i)
			}
			if err := sameResults(plain, cached); err != nil {
				return nil, fmt.Errorf("cache %s query %d after ingest: %w", b.name, i, err)
			}
		}

		if cfg.Metrics != nil {
			l := func(c string) string { return fmt.Sprintf(`%s{backend=%q}`, c, b.name) }
			cfg.Metrics.Counter(l("bench_cache_queries_total")).Add(int64(len(queries)))
			cfg.Metrics.Counter(l("bench_cache_cold_tia_reads_total")).Add(cold.tiaReads)
			cfg.Metrics.Counter(l("bench_cache_first_agg_hits_total")).Add(first.aggHits)
			cfg.Metrics.Counter(l("bench_cache_warm_result_hits_total")).Add(warm.resultHits)
			cfg.Metrics.Counter(l("bench_cache_warm_tia_reads_total")).Add(warm.tiaReads)
		}
		for _, p := range []struct {
			name string
			ps   passStats
		}{{"cold (nocache)", cold}, {"first (cached)", first}, {"warm (repeat)", warm}} {
			speedup := "-"
			if p.ps.elapsed > 0 && p.name != "cold (nocache)" {
				speedup = fmt.Sprintf("%.1f×", float64(cold.elapsed)/float64(p.ps.elapsed))
			}
			t.Rows = append(t.Rows, []string{
				b.name,
				p.name,
				fmt.Sprintf("%.3f", p.ps.elapsed.Seconds()*1000/float64(len(queries))),
				fmt.Sprintf("%d", p.ps.tiaReads),
				fmt.Sprintf("%d", p.ps.aggHits),
				fmt.Sprintf("%d", p.ps.aggMisses),
				fmt.Sprintf("%d", p.ps.resultHits),
				speedup,
			})
		}
	}
	return []Table{t}, nil
}

// passStats accumulates one pass over the query batch.
type passStats struct {
	elapsed    time.Duration
	tiaReads   int64
	aggHits    int64
	aggMisses  int64
	resultHits int64
}

// sameResults requires two ranked answers to agree exactly — the
// equivalence contract of the cache, enforced inside the experiment.
func sameResults(want, got []core.Result) error {
	if len(want) != len(got) {
		return fmt.Errorf("result count %d != %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("rank %d: %+v != %+v", i, got[i], want[i])
		}
	}
	return nil
}

func init() {
	Experiments["cache"] = CacheExp
}
