package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"

	"tartree/internal/core"
	"tartree/internal/lbsn"
	"tartree/internal/planner"
	"tartree/internal/tia"
)

// Calibration experiment: a deterministic sweep of (k, interval-length)
// query classes that measures how far the Section-6 estimates (node
// accesses, f(pk)) land from the executed search — the paper's Section 6.4
// estimate-accuracy evaluation as a CI-gated counter set instead of a
// figure.
//
// The exported metrics depend only on the workload shape — the cost model,
// the power-law fit, the tree build and the best-first search are all
// deterministic under a fixed seed — so benchdiff gates them exactly:
//
//	bench_planner_queries_total{class="..."}
//	bench_planner_engine_total{class="...",engine="..."}
//	bench_planner_est_node_accesses_total{class="..."}   (rounded sum)
//	bench_planner_actual_node_accesses_total{class="..."}
//	bench_planner_access_error_abs_pct{class="..."}      (mean |signed error|)
//	bench_planner_fk_error_abs_pct{class="..."}
//
// The error gauges are the calibration gate proper: a cost-model change
// that silently drifts the estimates past the tolerance fails benchdiff.
// With Config.ExplainOut set, every query's full explain object is
// appended as one JSON line, giving CI a queryable forensic artifact.
const calibrationQueriesPerClass = 8

// calibrationClasses sweeps k toward the dataset size and the interval
// from narrow to wide — the two axes along which the tree-vs-scan
// crossover and the estimate error move.
var calibrationClasses = []struct {
	k    int
	days int64
}{
	{1, 8},
	{10, 8},
	{10, 128},
	{100, 128},
	{1000, 512},
}

// explainLine is one JSONL row of the calibration explain artifact.
type explainLine struct {
	Class   string        `json:"class"`
	K       int           `json:"k"`
	Days    int64         `json:"days"`
	Query   int           `json:"query"`
	Explain *core.Explain `json:"explain"`
}

// CalibrationExp runs the calibration sweep on the first configured
// dataset (GS by default) over a TAR3D tree with the paper's defaults.
func CalibrationExp(cfg Config) ([]Table, error) {
	name := "GS"
	if len(cfg.Datasets) > 0 {
		name = cfg.Datasets[0]
	}
	if cfg.Scale == 0 {
		cfg.Scale = smokeScale
	}
	env, err := newEnv(cfg, name)
	if err != nil {
		return nil, err
	}
	tr, err := env.data.Build(lbsn.BuildOptions{
		Grouping:    core.TAR3D,
		NodeSize:    defaultNodeSize,
		EpochLength: defaultEpoch,
	})
	if err != nil {
		return nil, err
	}
	pl, err := planner.New(tr)
	if err != nil {
		return nil, err
	}
	if cfg.Metrics != nil {
		// The fleet-level planner series accumulate alongside the bench_*
		// counters, so the snapshot shows both views of the same sweep.
		pl.Instrument(cfg.Metrics)
	}

	t := Table{
		Title: fmt.Sprintf("Calibration: Section-6 estimate vs actual (%s, scale %.2f, TAR-tree, %d queries/class)",
			name, cfg.Scale, calibrationQueriesPerClass),
		Header: []string{"class", "engine", "est NA", "actual NA", "NA err", "est f(pk)", "actual f(pk)", "f(pk) err"},
	}
	ctx := context.Background()
	var enc *json.Encoder
	if cfg.ExplainOut != nil {
		enc = json.NewEncoder(cfg.ExplainOut)
	}
	for ci, class := range calibrationClasses {
		label := fmt.Sprintf("k%d_d%d", class.k, class.days)
		span := env.data.Spec.End - env.data.Spec.Start
		length := class.days * lbsn.Day
		if length > span {
			length = span
		}
		iv := tia.Interval{Start: env.data.Spec.End - length, End: env.data.Spec.End}
		queries := env.data.QueriesWithIntervals(
			calibrationQueriesPerClass, class.k, defaultAlpha, cfg.Seed+int64(23+ci), []tia.Interval{iv})

		var (
			estNA, actNA           float64
			estFk, actFk           float64
			naErrSum, fkErrSum     float64 // |signed relative error| sums
			naMeasured, fkMeasured int
			engines                = map[planner.Engine]int{}
		)
		for qi, qu := range queries {
			exp := core.NewExplain()
			_, plan, _, err := pl.QueryCtx(ctx, qu, &core.QueryOpts{Explain: exp})
			if err != nil {
				return nil, fmt.Errorf("calibration %s query %d: %w", label, qi, err)
			}
			engines[plan.Engine]++
			estNA += plan.EstimatedNodeAccesses
			estFk += plan.EstimatedFk
			actFk += exp.ActualFk
			if plan.Engine == planner.UseIndex {
				actual := float64(exp.NodeAccesses())
				actNA += actual
				if actual > 0 {
					naErrSum += math.Abs((plan.EstimatedNodeAccesses - actual) / actual)
					naMeasured++
				}
			}
			if exp.ActualFk > 0 {
				fkErrSum += math.Abs((plan.EstimatedFk - exp.ActualFk) / exp.ActualFk)
				fkMeasured++
			}
			if enc != nil {
				if err := enc.Encode(explainLine{
					Class: label, K: class.k, Days: class.days, Query: qi, Explain: exp,
				}); err != nil {
					return nil, fmt.Errorf("calibration %s: explain artifact: %w", label, err)
				}
			}
		}
		n := float64(len(queries))
		naErrPct, fkErrPct := 0.0, 0.0
		if naMeasured > 0 {
			naErrPct = 100 * naErrSum / float64(naMeasured)
		}
		if fkMeasured > 0 {
			fkErrPct = 100 * fkErrSum / float64(fkMeasured)
		}
		engineCell := ""
		for _, e := range []planner.Engine{planner.UseIndex, planner.UseScan} {
			if c := engines[e]; c > 0 {
				if engineCell != "" {
					engineCell += " + "
				}
				engineCell += fmt.Sprintf("%d×%s", c, e)
			}
		}
		t.Rows = append(t.Rows, []string{
			label,
			engineCell,
			f1(estNA / n),
			f1(actNA / n),
			fmt.Sprintf("%.1f%%", naErrPct),
			f3(estFk / n),
			f3(actFk / n),
			fmt.Sprintf("%.1f%%", fkErrPct),
		})

		if cfg.Metrics != nil {
			l := func(c string) string { return fmt.Sprintf(`%s{class=%q}`, c, label) }
			cfg.Metrics.Counter(l("bench_planner_queries_total")).Add(int64(len(queries)))
			for e, c := range engines {
				cfg.Metrics.Counter(fmt.Sprintf(
					`bench_planner_engine_total{class=%q,engine=%q}`, label, e.String())).Add(int64(c))
			}
			cfg.Metrics.Counter(l("bench_planner_est_node_accesses_total")).Add(int64(math.Round(estNA)))
			cfg.Metrics.Counter(l("bench_planner_actual_node_accesses_total")).Add(int64(math.Round(actNA)))
			cfg.Metrics.Gauge(l("bench_planner_access_error_abs_pct")).Set(math.Round(naErrPct*10) / 10)
			cfg.Metrics.Gauge(l("bench_planner_fk_error_abs_pct")).Set(math.Round(fkErrPct*10) / 10)
		}
	}
	return []Table{t}, nil
}

func init() {
	Experiments["calibration"] = CalibrationExp
}
