package bench

import (
	"fmt"
	"math/rand"
	"time"

	"tartree/internal/batch"
	"tartree/internal/core"
	"tartree/internal/costmodel"
	"tartree/internal/lbsn"
	"tartree/internal/mwa"
	"tartree/internal/powerlaw"
	"tartree/internal/tia"
)

const (
	defaultNodeSize = 1024
	defaultEpoch    = 7 * lbsn.Day
	defaultK        = 10
	defaultAlpha    = 0.3
	// effectiveFanoutRatio is the classic 69% node utilization (Theodoridis
	// & Sellis) the cost analysis assumes.
	effectiveFanoutRatio = 0.69
)

// Table4 reports the generated data set statistics next to the paper's
// calibration targets (Table 4).
func Table4(cfg Config) ([]Table, error) {
	t := Table{
		Title:  "Table 4: data sets (generated at the configured scale vs paper targets at scale 1)",
		Header: []string{"name", "scale", "locations", "check-ins", "paper locations", "paper check-ins", "effective POIs"},
	}
	for _, name := range cfg.datasets() {
		spec, err := lbsn.SpecByName(name)
		if err != nil {
			return nil, err
		}
		env, err := newEnv(cfg, name)
		if err != nil {
			return nil, err
		}
		eff := 0
		for i := range env.data.POIs {
			if env.data.POIs[i].Total() >= spec.MinEffective {
				eff++
			}
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.2f", cfg.scaleFor(name)),
			fmt.Sprintf("%d", len(env.data.POIs)),
			fmt.Sprintf("%d", env.data.TotalCheckIns()),
			fmt.Sprintf("%d", spec.Locations),
			fmt.Sprintf("%d", spec.CheckIns),
			fmt.Sprintf("%d", eff),
		})
	}
	return []Table{t}, nil
}

// Table2 fits a discrete power law to the per-POI check-in totals of each
// data set and reports n, β̂, x̂min and the bootstrap p-value (Table 2).
func Table2(cfg Config) ([]Table, error) {
	t := Table{
		Title:  "Table 2: power-law fitting of per-POI check-in totals",
		Header: []string{"data", "n", "beta-hat", "xmin-hat", "p-value", "paper beta", "paper xmin"},
	}
	for _, name := range cfg.datasets() {
		env, err := newEnv(cfg, name)
		if err != nil {
			return nil, err
		}
		totals := env.data.Totals()
		fit, err := powerlaw.Estimate(totals, powerlaw.FitOptions{})
		if err != nil {
			return nil, err
		}
		p, err := powerlaw.PValue(totals, fit, 50, rand.New(rand.NewSource(cfg.Seed+7)))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", fit.N),
			f2(fit.Beta),
			fmt.Sprintf("%d", fit.Xmin),
			f2(p),
			f2(env.data.Spec.Beta),
			fmt.Sprintf("%d", env.data.Spec.Xmin),
		})
	}
	return []Table{t}, nil
}

// classLayers builds cost-model layers from the aggregate values of every
// indexed POI over a query-interval class: the empirical body below the
// fitted x̂min plus the fitted power-law tail, the paper's modelling choice
// in Section 6.1.
func classLayers(aggs []int64) ([]costmodel.Layer, int64) {
	var maxAgg int64 = 1
	var nonzero []int64
	zeros := 0.0
	for _, a := range aggs {
		if a > maxAgg {
			maxAgg = a
		}
		if a > 0 {
			nonzero = append(nonzero, a)
		} else {
			zeros++
		}
	}
	empirical := costmodel.EmpiricalLayers(aggs)
	fit, err := powerlaw.Estimate(nonzero, powerlaw.FitOptions{})
	if err != nil {
		return empirical, maxAgg
	}
	var layers []costmodel.Layer
	for _, l := range empirical {
		if l.X < fit.Xmin {
			layers = append(layers, l)
		}
	}
	tail, err := costmodel.PowerLawLayers(float64(fit.NTail), fit.Beta, fit.Xmin, maxAgg, 0)
	if err != nil {
		return empirical, maxAgg
	}
	layers = append(layers, tail...)
	return layers, maxAgg
}

// estimateForQueries runs the Section 6 cost model per interval-length
// class and returns the query-weighted mean estimated f(pk) and leaf node
// accesses.
func estimateForQueries(tr *core.Tree, queries []core.Query, k int, alpha0, fanout float64) (float64, float64, error) {
	type class struct {
		n  int
		iv tia.Interval
	}
	classes := map[int64]*class{}
	for _, q := range queries {
		l := q.Iq.End - q.Iq.Start
		if c, ok := classes[l]; ok {
			c.n++
		} else {
			classes[l] = &class{n: 1, iv: q.Iq}
		}
	}
	var ids []int64
	tr.POIs(func(p core.POI, total int64) bool { ids = append(ids, p.ID); return true })
	var fkSum, naSum float64
	total := 0
	for _, c := range classes {
		aggs := make([]int64, 0, len(ids))
		for _, id := range ids {
			a, err := tr.AggregateMirror(id, c.iv)
			if err != nil {
				return 0, 0, err
			}
			aggs = append(aggs, a)
		}
		layers, maxAgg := classLayers(aggs)
		p := costmodel.Params{
			Alpha0: alpha0,
			K:      k,
			Fanout: fanout,
			MaxAgg: maxAgg,
			Layers: layers,
		}
		fk, na, err := p.Estimate()
		if err != nil {
			return 0, 0, err
		}
		fkSum += fk * float64(c.n)
		naSum += na * float64(c.n)
		total += c.n
	}
	return fkSum / float64(total), naSum / float64(total), nil
}

// costValidation is the shared driver for Figures 6 and 7.
func costValidation(cfg Config, title string, ks []int, alphas []float64) ([]Table, error) {
	var tables []Table
	fanout := effectiveFanoutRatio * float64(core.CapacityFor(defaultNodeSize, 3))
	for _, name := range cfg.datasets() {
		env, err := newEnv(cfg, name)
		if err != nil {
			return nil, err
		}
		tr, err := env.data.Build(lbsn.BuildOptions{Grouping: core.TAR3D})
		if err != nil {
			return nil, err
		}
		t := Table{
			Title:  fmt.Sprintf("%s (%s)", title, name),
			Header: []string{"k", "alpha0", "measured f(pk)", "estimated f(pk)", "measured leaf NA", "estimated leaf NA"},
		}
		for _, k := range ks {
			for _, a := range alphas {
				queries := env.data.Queries(cfg.queries(), k, a, cfg.Seed+int64(k*1000)+int64(a*100))
				m, err := cfg.measure("TAR-tree", tr, queries)
				if err != nil {
					return nil, err
				}
				estFk, estNA, err := estimateForQueries(tr, queries, k, a, fanout)
				if err != nil {
					return nil, err
				}
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%d", k), f2(a),
					f3(m.MeanFk), f3(estFk),
					f1(m.LeafAccesses), f1(estNA),
				})
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig6 validates the cost analysis varying k (Figure 6).
func Fig6(cfg Config) ([]Table, error) {
	return costValidation(cfg, "Figure 6: cost analysis validation, varying k",
		[]int{1, 5, 10, 50, 100}, []float64{defaultAlpha})
}

// Fig7 validates the cost analysis varying α0 (Figure 7).
func Fig7(cfg Config) ([]Table, error) {
	return costValidation(cfg, "Figure 7: cost analysis validation, varying alpha0",
		[]int{defaultK}, []float64{0.1, 0.3, 0.5, 0.7, 0.9})
}

// methodSweep measures the four methods over one axis of variation.
func methodSweep(cfg Config, name, title, axis string,
	points []string,
	build func(env *dataEnv, point string) (map[string]queryable, error),
	queriesFor func(env *dataEnv, point string) []core.Query,
) (Table, error) {
	env, err := newEnv(cfg, name)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  fmt.Sprintf("%s (%s)", title, name),
		Header: []string{axis, "method", "CPU time (ms)", "node accesses"},
	}
	for _, pt := range points {
		methods, err := build(env, pt)
		if err != nil {
			return Table{}, err
		}
		queries := queriesFor(env, pt)
		for _, mn := range methodNames {
			m, err := cfg.measure(mn, methods[mn], queries)
			if err != nil {
				return Table{}, err
			}
			na := "-"
			if mn != "baseline" {
				na = f1(m.NodeAccesses)
			}
			t.Rows = append(t.Rows, []string{pt, mn, ms(m.CPUMicros), na})
		}
	}
	return t, nil
}

// Fig8 evaluates the methods while the LBSN grows: snapshots at 20%..100%
// of the time span (Figure 8).
func Fig8(cfg Config) ([]Table, error) {
	var tables []Table
	for _, name := range cfg.datasets() {
		points := []string{"20%", "40%", "60%", "80%", "100%"}
		fracs := map[string]float64{"20%": 0.2, "40%": 0.4, "60%": 0.6, "80%": 0.8, "100%": 1.0}
		t, err := methodSweep(cfg, name, "Figure 8: effect of the LBSN growing with time", "time",
			points,
			func(env *dataEnv, pt string) (map[string]queryable, error) {
				return env.buildAll(defaultNodeSize, defaultEpoch, env.data.SnapshotEnd(fracs[pt]))
			},
			func(env *dataEnv, pt string) []core.Query {
				return env.data.QueriesUntil(cfg.queries(), defaultK, defaultAlpha, cfg.Seed, env.data.SnapshotEnd(fracs[pt]))
			})
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig9 varies k from 1 to 100 (Figure 9).
func Fig9(cfg Config) ([]Table, error) {
	return paramSweep(cfg, "Figure 9: varying k", "k",
		[]string{"1", "5", "10", "50", "100"},
		func(pt string) (int, float64) {
			var k int
			fmt.Sscanf(pt, "%d", &k)
			return k, defaultAlpha
		})
}

// Fig10 varies α0 from 0.1 to 0.9 (Figure 10).
func Fig10(cfg Config) ([]Table, error) {
	return paramSweep(cfg, "Figure 10: varying alpha0", "alpha0",
		[]string{"0.1", "0.3", "0.5", "0.7", "0.9"},
		func(pt string) (int, float64) {
			var a float64
			fmt.Sscanf(pt, "%f", &a)
			return defaultK, a
		})
}

// paramSweep builds the four methods once per dataset and sweeps a query
// parameter (k or α0).
func paramSweep(cfg Config, title, axis string, points []string, parse func(string) (int, float64)) ([]Table, error) {
	var tables []Table
	for _, name := range cfg.datasets() {
		env, err := newEnv(cfg, name)
		if err != nil {
			return nil, err
		}
		methods, err := env.buildAll(defaultNodeSize, defaultEpoch, 0)
		if err != nil {
			return nil, err
		}
		t := Table{
			Title:  fmt.Sprintf("%s (%s)", title, name),
			Header: []string{axis, "method", "CPU time (ms)", "node accesses"},
		}
		for _, pt := range points {
			k, a := parse(pt)
			queries := env.data.Queries(cfg.queries(), k, a, cfg.Seed)
			for _, mn := range methodNames {
				m, err := cfg.measure(mn, methods[mn], queries)
				if err != nil {
					return nil, err
				}
				na := "-"
				if mn != "baseline" {
					na = f1(m.NodeAccesses)
				}
				t.Rows = append(t.Rows, []string{pt, mn, ms(m.CPUMicros), na})
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig11 varies the epoch length from 1 to 28 days (Figure 11).
func Fig11(cfg Config) ([]Table, error) {
	var tables []Table
	for _, name := range cfg.datasets() {
		t, err := methodSweep(cfg, name, "Figure 11: varying the epoch length", "epoch (days)",
			[]string{"1", "3", "7", "14", "28"},
			func(env *dataEnv, pt string) (map[string]queryable, error) {
				var days int64
				fmt.Sscanf(pt, "%d", &days)
				return env.buildAll(defaultNodeSize, days*lbsn.Day, 0)
			},
			func(env *dataEnv, pt string) []core.Query {
				return env.data.Queries(cfg.queries(), defaultK, defaultAlpha, cfg.Seed)
			})
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig12 varies the R-tree node size from 512 to 8192 bytes (Figure 12).
func Fig12(cfg Config) ([]Table, error) {
	var tables []Table
	for _, name := range cfg.datasets() {
		t, err := methodSweep(cfg, name, "Figure 12: varying the R-tree node size", "node size (B)",
			[]string{"512", "1024", "2048", "4096", "8192"},
			func(env *dataEnv, pt string) (map[string]queryable, error) {
				var b int
				fmt.Sscanf(pt, "%d", &b)
				return env.buildAll(b, defaultEpoch, 0)
			},
			func(env *dataEnv, pt string) []core.Query {
				return env.data.Queries(cfg.queries(), defaultK, defaultAlpha, cfg.Seed)
			})
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// mwaSweep drives Figures 13 and 14.
func mwaSweep(cfg Config, title, axis string, points []string, parse func(string) (int, float64)) ([]Table, error) {
	var tables []Table
	nq := cfg.queries()
	if nq > 20 {
		nq = 20 // enumerating is deliberately expensive; 20 queries suffice
	}
	for _, name := range cfg.datasets() {
		env, err := newEnv(cfg, name)
		if err != nil {
			return nil, err
		}
		tr, err := env.data.Build(lbsn.BuildOptions{Grouping: core.TAR3D})
		if err != nil {
			return nil, err
		}
		t := Table{
			Title:  fmt.Sprintf("%s (%s)", title, name),
			Header: []string{axis, "method", "CPU time (ms)", "node accesses"},
		}
		for _, pt := range points {
			k, a := parse(pt)
			if k >= tr.Len() {
				continue
			}
			queries := env.data.Queries(nq, k, a, cfg.Seed)
			for _, alg := range []struct {
				name string
				run  func(*core.Tree, core.Query) ([]core.Result, mwa.Adjustment, core.QueryStats, error)
			}{{"enumerating", mwa.Enumerating}, {"pruning", mwa.Pruning}} {
				var cpuMicros, na float64
				for _, q := range queries {
					start := time.Now()
					_, _, stats, err := alg.run(tr, q)
					if err != nil {
						return nil, err
					}
					cpuMicros += float64(time.Since(start).Microseconds())
					na += float64(stats.RTreeAccesses())
				}
				t.Rows = append(t.Rows, []string{pt, alg.name,
					ms(cpuMicros / float64(len(queries))), f1(na / float64(len(queries)))})
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig13 compares the MWA algorithms varying k (Figure 13).
func Fig13(cfg Config) ([]Table, error) {
	return mwaSweep(cfg, "Figure 13: computing the MWA, varying k", "k",
		[]string{"10", "50", "100", "500", "1000"},
		func(pt string) (int, float64) {
			var k int
			fmt.Sscanf(pt, "%d", &k)
			return k, defaultAlpha
		})
}

// Fig14 compares the MWA algorithms varying α0 (Figure 14).
func Fig14(cfg Config) ([]Table, error) {
	return mwaSweep(cfg, "Figure 14: computing the MWA, varying alpha0", "alpha0",
		[]string{"0.1", "0.3", "0.5", "0.7", "0.9"},
		func(pt string) (int, float64) {
			var a float64
			fmt.Sscanf(pt, "%f", &a)
			return defaultK, a
		})
}

// collectiveSweep drives Figures 15 and 16. The TIAs run unbuffered to
// expose the effect of memory buffering, per the paper's setup.
func collectiveSweep(cfg Config, title, axis string, points []string,
	queriesFor func(env *dataEnv, pt string) []core.Query) ([]Table, error) {
	var tables []Table
	for _, name := range cfg.datasets() {
		env, err := newEnv(cfg, name)
		if err != nil {
			return nil, err
		}
		fac := tia.NewBTreeFactory(defaultNodeSize, 0)
		tr, err := env.data.Build(lbsn.BuildOptions{Grouping: core.TAR3D, TIA: fac})
		if err != nil {
			return nil, err
		}
		t := Table{
			Title:  fmt.Sprintf("%s (%s)", title, name),
			Header: []string{axis, "method", "CPU time (ms)", "node accesses"},
		}
		for _, pt := range points {
			queries := queriesFor(env, pt)
			for _, mode := range []struct {
				name string
				run  func() (core.QueryStats, error)
			}{
				{"individual", func() (core.QueryStats, error) {
					_, s, err := batch.ProcessIndividually(tr, queries)
					return s, err
				}},
				{"collective", func() (core.QueryStats, error) {
					_, s, err := batch.Process(tr, queries)
					return s, err
				}},
			} {
				start := time.Now()
				stats, err := mode.run()
				if err != nil {
					return nil, err
				}
				cpuMicros := float64(time.Since(start).Microseconds())
				n := float64(len(queries))
				// Node accesses include the unbuffered TIA page reads.
				na := (float64(stats.RTreeAccesses()) + float64(stats.TIAPhysical)) / n
				t.Rows = append(t.Rows, []string{pt, mode.name, ms(cpuMicros / n), f1(na)})
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig15 varies the number of queries in a batch (Figure 15).
func Fig15(cfg Config) ([]Table, error) {
	return collectiveSweep(cfg, "Figure 15: collective processing, varying the number of queries",
		"queries", []string{"100", "500", "1000", "5000", "10000"},
		func(env *dataEnv, pt string) []core.Query {
			var n int
			fmt.Sscanf(pt, "%d", &n)
			ivs := env.data.QueryIntervals(5, 11)
			return env.data.QueriesWithIntervals(n, defaultK, defaultAlpha, 13, ivs)
		})
}

// Fig16 varies the number of query types — distinct intervals (Figure 16).
func Fig16(cfg Config) ([]Table, error) {
	return collectiveSweep(cfg, "Figure 16: collective processing, varying the number of query types",
		"types", []string{"1", "5", "10", "50", "100"},
		func(env *dataEnv, pt string) []core.Query {
			var types int
			fmt.Sscanf(pt, "%d", &types)
			ivs := env.data.QueryIntervals(types, 11)
			return env.data.QueriesWithIntervals(1000, defaultK, defaultAlpha, 13, ivs)
		})
}

// Experiments maps experiment ids to their runners.
var Experiments = map[string]func(Config) ([]Table, error){
	"table2": Table2,
	"table4": Table4,
	"fig6":   Fig6,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig13":  Fig13,
	"fig14":  Fig14,
	"fig15":  Fig15,
	"fig16":  Fig16,
	"smoke":  Smoke,
}

// ExperimentIDs lists the experiment ids in the paper's order, plus the
// ingestion-throughput experiment, the cache experiment, the cost-model
// calibration sweep, the cold-start experiment, the replication
// experiment and the smoke regression probe.
func ExperimentIDs() []string {
	return []string{"table2", "table4", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"ingest", "cache", "calibration", "startup", "repl", "shard", "smoke"}
}
