package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"tartree/internal/obs"
	"tartree/internal/wal"
)

// Ingestion experiment defaults. The slow-disk delay models a device where
// an fsync costs ~1ms (a SATA SSD with a volatile cache disabled is worse);
// against it the batching effect of group commit is measurable without the
// run taking minutes.
const (
	ingestRecords   = 512
	ingestSyncDelay = time.Millisecond
)

// ingestMode is one row of the ingestion-throughput table.
type ingestMode struct {
	name    string
	writers int  // concurrent clients appending
	batch   int  // check-ins per append call
	sync    bool // false: NoSync (durability off, upper bound)
}

var ingestModes = []ingestMode{
	{"fsync-per-append", 1, 1, true}, // naive floor: serial, one fsync each
	{"group-commit", 4, 1, true},
	{"group-commit", 16, 1, true},
	{"group-commit", 16, 8, true},
	{"batched-serial", 1, 8, true},
	{"nosync", 1, 1, false},
	{"nosync", 16, 8, false},
}

// Ingest measures durable ingestion throughput through the write-ahead log
// on a simulated slow disk (every fsync costs ingestSyncDelay). The naive
// floor is one fsync per append from a single client; group commit amortizes
// the same fsync over every append that arrived while the previous one was
// in flight, so concurrent writers multiply throughput without weakening
// durability. Each run is verified by replaying the log and counting the
// records back.
func Ingest(cfg Config) ([]Table, error) {
	root, err := os.MkdirTemp("", "tartree-ingest-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	t := Table{
		Title: fmt.Sprintf("Ingestion: WAL throughput on a slow disk (%d check-ins, fsync = %v)",
			ingestRecords, ingestSyncDelay),
		Header: []string{"mode", "writers", "batch", "appends", "fsyncs", "elapsed (ms)", "records/s", "speedup"},
	}
	var naive float64 // records/s of the first (naive) mode
	for i, mode := range ingestModes {
		dir, err := os.MkdirTemp(root, "run-*")
		if err != nil {
			return nil, err
		}
		var fs wal.FS
		fs, err = wal.NewDirFS(dir)
		if err != nil {
			return nil, err
		}
		if mode.sync {
			fs = &wal.SlowFS{FS: fs, SyncDelay: ingestSyncDelay}
		}
		reg := obs.NewRegistry()
		log, err := wal.OpenLog(fs, wal.LogOptions{
			NoSync:  !mode.sync,
			Metrics: wal.NewMetrics(reg),
		}, 0, nil)
		if err != nil {
			return nil, err
		}

		perWriter := ingestRecords / mode.writers
		appends := 0
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, mode.writers)
		for w := 0; w < mode.writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				batch := make([]wal.CheckIn, 0, mode.batch)
				for i := 0; i < perWriter; i++ {
					id := int64(w*perWriter + i)
					batch = append(batch, wal.CheckIn{POI: id, At: id})
					if len(batch) == mode.batch || i == perWriter-1 {
						if _, err := log.Append(batch); err != nil {
							errs <- err
							return
						}
						batch = batch[:0]
					}
				}
			}(w)
			appends += (perWriter + mode.batch - 1) / mode.batch
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		for err := range errs {
			return nil, err
		}
		if err := log.Close(); err != nil {
			return nil, err
		}

		// Correctness gate: every acknowledged record must replay.
		replayed := 0
		reopened, err := wal.OpenLog(fs, wal.LogOptions{NoSync: true}, 0,
			func(lsn uint64, c wal.CheckIn) error { replayed++; return nil })
		if err != nil {
			return nil, err
		}
		reopened.Close()
		total := mode.writers * perWriter
		if replayed != total {
			return nil, fmt.Errorf("ingest %s: replayed %d of %d appended records", mode.name, replayed, total)
		}

		fsyncs := reg.Counter("tartree_wal_fsyncs_total").Value()
		rps := float64(total) / elapsed.Seconds()
		if i == 0 {
			naive = rps
		}
		t.Rows = append(t.Rows, []string{
			mode.name,
			fmt.Sprintf("%d", mode.writers),
			fmt.Sprintf("%d", mode.batch),
			fmt.Sprintf("%d", appends),
			fmt.Sprintf("%d", fsyncs),
			fmt.Sprintf("%.1f", elapsed.Seconds()*1000),
			fmt.Sprintf("%.0f", rps),
			fmt.Sprintf("%.1f×", rps/naive),
		})
	}
	return []Table{t}, nil
}

// smokeIngest is the deterministic ingestion pass of the Smoke probe: a
// fixed number of serial batched appends with fsync off, closed and replayed
// back. The exported counters depend only on the workload shape, never on
// timing, so benchdiff can gate on them:
//
//	bench_ingest_appends_total
//	bench_ingest_records_total
//	bench_ingest_replayed_total
func smokeIngest(cfg Config) (Table, error) {
	const (
		records = 200
		batch   = 4
	)
	dir, err := os.MkdirTemp("", "tartree-smoke-ingest-*")
	if err != nil {
		return Table{}, err
	}
	defer os.RemoveAll(dir)
	fs, err := wal.NewDirFS(dir)
	if err != nil {
		return Table{}, err
	}
	log, err := wal.OpenLog(fs, wal.LogOptions{NoSync: true}, 0, nil)
	if err != nil {
		return Table{}, err
	}
	appends := 0
	cs := make([]wal.CheckIn, 0, batch)
	for i := 0; i < records; i++ {
		cs = append(cs, wal.CheckIn{POI: int64(i % 16), At: int64(i)})
		if len(cs) == batch {
			if _, err := log.Append(cs); err != nil {
				return Table{}, err
			}
			appends++
			cs = cs[:0]
		}
	}
	if err := log.Close(); err != nil {
		return Table{}, err
	}
	replayed := 0
	reopened, err := wal.OpenLog(fs, wal.LogOptions{NoSync: true}, 0,
		func(lsn uint64, c wal.CheckIn) error { replayed++; return nil })
	if err != nil {
		return Table{}, err
	}
	if err := reopened.Close(); err != nil {
		return Table{}, err
	}
	if replayed != records {
		return Table{}, fmt.Errorf("smoke ingest: replayed %d of %d records", replayed, records)
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Counter("bench_ingest_appends_total").Add(int64(appends))
		cfg.Metrics.Counter("bench_ingest_records_total").Add(int64(records))
		cfg.Metrics.Counter("bench_ingest_replayed_total").Add(int64(replayed))
	}
	t := Table{
		Title:  "Smoke: WAL ingest probe (serial batched appends, replayed back)",
		Header: []string{"appends", "records", "replayed"},
		Rows: [][]string{{
			fmt.Sprintf("%d", appends),
			fmt.Sprintf("%d", records),
			fmt.Sprintf("%d", replayed),
		}},
	}
	return t, nil
}

func init() {
	Experiments["ingest"] = Ingest
}
