package bench

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"tartree/internal/core"
	"tartree/internal/lbsn"
	"tartree/internal/obs"
	"tartree/internal/repl"
	"tartree/internal/wal"
)

// Replication experiment defaults. The corpus is split so the snapshot
// bootstrap and the streaming tail each carry a substantial share, and the
// check-ins land inside the query window so the convergence gate actually
// depends on every replicated record.
const (
	replBootRecords = 400
	replTailRecords = 600
	replBenchToken  = "bench-repl-token"
)

// ReplExp measures the replication pipeline end to end over loopback HTTP:
// a leader ingests the first part of a deterministic check-in stream, a
// follower bootstraps from its snapshot, the leader ingests the rest, and
// the follower tails it through a single WAL stream. The convergence gate
// rides along: after the tail, the follower must hold the leader's durable
// LSN exactly and answer the full query battery with the leader's (POI,
// aggregate) sets.
//
// The exported counters depend only on the workload shape — record counts,
// LSNs, query work — never on timing, so benchdiff can gate on them:
//
//	bench_repl_bootstrap_lsn_total
//	bench_repl_tail_records_total
//	bench_repl_records_applied_total
//	bench_repl_stream_requests_total
//	bench_repl_queries_total
//	bench_repl_follower_node_accesses_total
func ReplExp(cfg Config) ([]Table, error) {
	name := "GS"
	scale := cfg.Scale
	if scale == 0 {
		scale = 0.05
	}
	spec, err := lbsn.SpecByName(name)
	if err != nil {
		return nil, err
	}
	d, err := lbsn.Generate(spec.Scaled(scale))
	if err != nil {
		return nil, err
	}
	root, err := os.MkdirTemp("", "tartree-repl-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	lfs, err := wal.NewDirFS(mustMkdir(root, "leader"))
	if err != nil {
		return nil, err
	}
	lstore, err := wal.OpenStore(lfs, func() (*core.Tree, error) {
		return d.Build(lbsn.BuildOptions{Grouping: core.TAR3D, NodeSize: defaultNodeSize})
	}, wal.StoreOptions{NoSync: true})
	if err != nil {
		return nil, err
	}
	defer lstore.Close()

	// Deterministic live stream over indexed POIs, timestamps ascending to
	// the data set's end so the replicated records sit inside the query
	// window the battery below covers.
	var pois []int64
	for _, p := range d.POIs {
		if _, ok := lstore.Tree().Lookup(p.ID); ok {
			pois = append(pois, p.ID)
		}
	}
	if len(pois) == 0 {
		return nil, fmt.Errorf("repl: no indexed POIs at scale %.2f", scale)
	}
	total := replBootRecords + replTailRecords
	mk := func(i int) wal.CheckIn {
		return wal.CheckIn{POI: pois[i%len(pois)], At: d.Spec.End - int64(total) + int64(i)}
	}
	corpus := make([]wal.CheckIn, total)
	for i := range corpus {
		corpus[i] = mk(i)
	}
	if _, err := lstore.Ingest(corpus[:replBootRecords]); err != nil {
		return nil, err
	}

	lreg := obs.NewRegistry()
	lm := repl.NewMetrics(lreg)
	ld := &repl.Leader{
		Store:   lstore,
		Token:   replBenchToken,
		Metrics: lm,
		// One connection carries the whole tail; the idle poll outlives the
		// run so the stream-request count stays deterministic.
		PollTimeout: time.Hour,
	}
	mux := http.NewServeMux()
	ld.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Phase 1: snapshot bootstrap into an empty follower directory.
	ffs, err := wal.NewDirFS(mustMkdir(root, "follower"))
	if err != nil {
		return nil, err
	}
	freg := obs.NewRegistry()
	fm := repl.NewMetrics(freg)
	wm := repl.NewWatermark()
	fopts := repl.FollowerOptions{
		LeaderURL: srv.URL,
		Token:     replBenchToken,
		Metrics:   fm,
		Watermark: wm,
	}
	bootStart := time.Now()
	bootLSN, downloaded, err := repl.Bootstrap(context.Background(), ffs, fopts)
	if err != nil {
		return nil, err
	}
	bootElapsed := time.Since(bootStart)
	if !downloaded || bootLSN != replBootRecords {
		return nil, fmt.Errorf("repl: bootstrap lsn=%d downloaded=%v, want %d/true", bootLSN, downloaded, replBootRecords)
	}
	fstore, err := wal.OpenStore(ffs, func() (*core.Tree, error) {
		return nil, fmt.Errorf("follower base builder must not run")
	}, wal.StoreOptions{NoSync: true})
	if err != nil {
		return nil, err
	}
	defer fstore.Close()
	blob, _, err := lstore.EncodeSnapshot()
	if err != nil {
		return nil, err
	}

	// Phase 2: the leader ingests the rest; the follower tails it all over
	// one stream and is cancelled once the watermark reports convergence.
	if _, err := lstore.Ingest(corpus[replBootRecords:]); err != nil {
		return nil, err
	}
	f := &repl.Follower{Store: fstore, Opts: fopts}
	runCtx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	tailStart := time.Now()
	go func() { done <- f.Run(runCtx) }()
	waitCtx, waitCancel := context.WithTimeout(context.Background(), time.Minute)
	werr := wm.Wait(waitCtx, uint64(total))
	waitCancel()
	tailElapsed := time.Since(tailStart)
	cancel()
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		return nil, fmt.Errorf("repl: follower run: %w", err)
	}
	if werr != nil {
		return nil, fmt.Errorf("repl: follower never reached LSN %d (applied %d)", total, fstore.AppliedLSN())
	}

	// Convergence gate: exact LSN identity and answer-identical queries.
	if got, want := fstore.AppliedLSN(), lstore.DurableLSN(); got != want {
		return nil, fmt.Errorf("repl: follower applied %d, leader durable %d", got, want)
	}
	horizon := d.Spec.End + 1
	if err := lstore.FlushEpochs(horizon); err != nil {
		return nil, err
	}
	if err := fstore.FlushEpochs(horizon); err != nil {
		return nil, err
	}
	queries := d.Queries(cfg.queries(), defaultK, defaultAlpha, cfg.Seed+41)
	_, lres, err := runStartupBatch(lstore.Tree(), queries)
	if err != nil {
		return nil, err
	}
	fwork, fres, err := runStartupBatch(fstore.Tree(), queries)
	if err != nil {
		return nil, err
	}
	for i := range queries {
		if err := sameAnswerSet(lres[i], fres[i]); err != nil {
			return nil, fmt.Errorf("repl: query %d: follower vs leader: %w", i, err)
		}
	}

	if cfg.Metrics != nil {
		cfg.Metrics.Counter("bench_repl_bootstrap_lsn_total").Add(int64(bootLSN))
		cfg.Metrics.Counter("bench_repl_tail_records_total").Add(replTailRecords)
		cfg.Metrics.Counter("bench_repl_records_applied_total").Add(int64(fm.AppliedLSN() - bootLSN))
		cfg.Metrics.Counter("bench_repl_stream_requests_total").Add(lm.StreamRequests.Value())
		cfg.Metrics.Counter("bench_repl_queries_total").Add(int64(len(queries)))
		cfg.Metrics.Counter("bench_repl_follower_node_accesses_total").Add(fwork.nodeAccesses)
	}

	t := Table{
		Title: fmt.Sprintf("Replication: snapshot bootstrap + WAL tail over loopback HTTP (%s ×%.2f, %d+%d records)",
			name, scale, replBootRecords, replTailRecords),
		Header: []string{"phase", "records", "snapshot KB", "streams", "elapsed (ms)", "records/s"},
		Rows: [][]string{
			{
				"bootstrap",
				fmt.Sprintf("%d", bootLSN),
				fmt.Sprintf("%.1f", float64(len(blob))/1024),
				"1",
				fmt.Sprintf("%.1f", bootElapsed.Seconds()*1000),
				"-",
			},
			{
				"tail",
				fmt.Sprintf("%d", replTailRecords),
				"-",
				fmt.Sprintf("%d", lm.StreamRequests.Value()),
				fmt.Sprintf("%.1f", tailElapsed.Seconds()*1000),
				fmt.Sprintf("%.0f", replTailRecords/tailElapsed.Seconds()),
			},
			{
				"converged",
				fmt.Sprintf("%d", fstore.AppliedLSN()),
				"-",
				"-",
				"-",
				fmt.Sprintf("%d queries agree", len(queries)),
			},
		},
	}
	return []Table{t}, nil
}

// mustMkdir creates a named subdirectory under root; failures surface later
// as FS-open errors, which keeps the call sites linear.
func mustMkdir(root, name string) string {
	dir := root + string(os.PathSeparator) + name
	os.Mkdir(dir, 0o755)
	return dir
}

func init() {
	Experiments["repl"] = ReplExp
}
