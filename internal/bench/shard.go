package bench

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"tartree/internal/core"
	"tartree/internal/lbsn"
	"tartree/internal/obs"
	"tartree/internal/shard"
)

// shardBenchN is the shard count of the experiment fleet — the 2×2 STR
// grid the README quickstart also uses.
const shardBenchN = 4

// shardBenchNodeSize shrinks the nodes so every shard's slice still spans
// multiple tree levels: with the 1 KiB default a quarter of the corpus fits
// in one leaf and there is no frontier left for the global bound to prune.
const shardBenchNodeSize = 256

// ShardExp measures scatter-gather kNNTA over loopback HTTP: the effective
// POI set is STR-partitioned across four shard servers, and the same query
// battery runs three ways — single-node, coordinated with the global
// ranking bound pushed to in-flight shards, and coordinated with the bound
// disabled (pure fan-out). Two gates ride along: the bounded coordinator's
// answers must be exactly identical to single-node execution (ids AND
// scores — the shards index their slices over the full world rectangle, so
// per-POI scores are bit-identical), and the global bound must strictly
// reduce the summed per-shard node accesses against the no-bound fan-out.
//
// The exported counters depend only on the workload shape (the rounds are
// barriers, so round/push counts are deterministic), never on timing:
//
//	bench_shard_queries_total
//	bench_shard_results_total
//	bench_shard_fanout_total
//	bench_shard_rounds_total
//	bench_shard_bound_pushes_total
//	bench_shard_pruned_total
//	bench_shard_node_accesses_single_total
//	bench_shard_node_accesses_bounded_total
//	bench_shard_node_accesses_unbounded_total
func ShardExp(cfg Config) ([]Table, error) {
	name := "GS"
	scale := cfg.Scale
	if scale == 0 {
		scale = 0.2
	}
	spec, err := lbsn.SpecByName(name)
	if err != nil {
		return nil, err
	}
	d, err := lbsn.Generate(spec.Scaled(scale))
	if err != nil {
		return nil, err
	}
	single, err := d.Build(lbsn.BuildOptions{Grouping: core.TAR3D, NodeSize: shardBenchNodeSize})
	if err != nil {
		return nil, err
	}

	pois := d.EffectivePOIs(0, 0)
	if len(pois) < shardBenchN {
		return nil, fmt.Errorf("shard: only %d effective POIs at scale %.2f", len(pois), scale)
	}
	m, err := shard.Partition(pois, shardBenchN, d.World)
	if err != nil {
		return nil, err
	}
	urls := make([]string, shardBenchN)
	for i := 0; i < shardBenchN; i++ {
		idx := i
		tr, err := d.Build(lbsn.BuildOptions{
			Grouping: core.TAR3D,
			NodeSize: shardBenchNodeSize,
			Keep:     func(p core.POI) bool { return m.Locate(p.X, p.Y) == idx },
		})
		if err != nil {
			return nil, err
		}
		mux := http.NewServeMux()
		(&shard.Server{
			Data:   shard.TreeViewer{Tree: tr},
			Index:  idx,
			N:      shardBenchN,
			Region: m.Region(idx),
		}).Register(mux)
		srv := httptest.NewServer(mux)
		defer srv.Close()
		urls[i] = srv.URL
	}

	queries := d.Queries(cfg.queries(), defaultK, defaultAlpha, cfg.Seed+43)

	// Arm 1: single-node baseline (also the identity oracle).
	var singleWork int64
	oracle := make([][]core.Result, len(queries))
	for i, q := range queries {
		r, stats, err := single.QueryCtx(context.Background(), q, &core.QueryOpts{NoCache: true})
		if err != nil {
			return nil, err
		}
		oracle[i] = r
		singleWork += int64(stats.RTreeAccesses())
	}

	// Arm 2: scatter-gather with the global bound pushed to in-flight
	// shards. Gate 1: exact answer identity against the oracle.
	bm := shard.NewMetrics(obs.NewRegistry())
	bounded := &shard.Coordinator{Shards: urls, Metrics: bm}
	var boundedWork int64
	boundedStart := time.Now()
	for i, q := range queries {
		r, stats, err := bounded.QueryCtx(context.Background(), q, nil)
		if err != nil {
			return nil, err
		}
		boundedWork += int64(stats.RTreeAccesses())
		if err := identicalAnswers(oracle[i], r); err != nil {
			return nil, fmt.Errorf("shard: query %d: coordinator vs single-node: %w", i, err)
		}
	}
	boundedElapsed := time.Since(boundedStart)

	// Arm 3: the same fleet with the bound disabled — every shard streams
	// its whole frontier. Gate 2: the bound must strictly reduce work.
	um := shard.NewMetrics(obs.NewRegistry())
	unbounded := &shard.Coordinator{Shards: urls, Metrics: um, NoBound: true, Batch: defaultK}
	var unboundedWork int64
	unboundedStart := time.Now()
	for i, q := range queries {
		r, stats, err := unbounded.QueryCtx(context.Background(), q, nil)
		if err != nil {
			return nil, err
		}
		unboundedWork += int64(stats.RTreeAccesses())
		if err := identicalAnswers(oracle[i], r); err != nil {
			return nil, fmt.Errorf("shard: query %d: unbounded coordinator vs single-node: %w", i, err)
		}
	}
	unboundedElapsed := time.Since(unboundedStart)

	if boundedWork >= unboundedWork {
		return nil, fmt.Errorf("shard: global bound did not reduce work: bounded %d node accesses vs unbounded %d",
			boundedWork, unboundedWork)
	}

	var results int64
	for _, r := range oracle {
		results += int64(len(r))
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Counter("bench_shard_queries_total").Add(int64(len(queries)))
		cfg.Metrics.Counter("bench_shard_results_total").Add(results)
		cfg.Metrics.Counter("bench_shard_fanout_total").Add(bm.Fanout.Value())
		cfg.Metrics.Counter("bench_shard_rounds_total").Add(bm.Rounds.Value())
		cfg.Metrics.Counter("bench_shard_bound_pushes_total").Add(bm.BoundPushes.Value())
		cfg.Metrics.Counter("bench_shard_pruned_total").Add(bm.Pruned.Value())
		cfg.Metrics.Counter("bench_shard_node_accesses_single_total").Add(singleWork)
		cfg.Metrics.Counter("bench_shard_node_accesses_bounded_total").Add(boundedWork)
		cfg.Metrics.Counter("bench_shard_node_accesses_unbounded_total").Add(unboundedWork)
	}

	t := Table{
		Title: fmt.Sprintf("Sharding: scatter-gather kNNTA over %d shards, loopback HTTP (%s ×%.2f, %d queries; answers identical to single-node)",
			shardBenchN, name, scale, len(queries)),
		Header: []string{"mode", "node accesses", "rounds", "bound pushes", "pruned shards", "elapsed (ms)"},
		Rows: [][]string{
			{
				"single-node",
				fmt.Sprintf("%d", singleWork),
				"-", "-", "-", "-",
			},
			{
				"scatter-gather, global bound",
				fmt.Sprintf("%d", boundedWork),
				fmt.Sprintf("%d", bm.Rounds.Value()),
				fmt.Sprintf("%d", bm.BoundPushes.Value()),
				fmt.Sprintf("%d", bm.Pruned.Value()),
				fmt.Sprintf("%.1f", boundedElapsed.Seconds()*1000),
			},
			{
				"scatter-gather, no bound",
				fmt.Sprintf("%d", unboundedWork),
				fmt.Sprintf("%d", um.Rounds.Value()),
				"0",
				fmt.Sprintf("%d", um.Pruned.Value()),
				fmt.Sprintf("%.1f", unboundedElapsed.Seconds()*1000),
			},
			{
				"bound saving",
				fmt.Sprintf("-%.1f%%", 100*(1-float64(boundedWork)/float64(unboundedWork))),
				"-", "-", "-", "-",
			},
		},
	}
	return []Table{t}, nil
}

// identicalAnswers requires exact answer identity — the same POI ids with
// bit-identical scores. Both sides are canonicalized by (score, id) so a
// tie between equal-score POIs (measure-zero with continuous coordinates,
// but possible) cannot order-flake the gate.
func identicalAnswers(want, got []core.Result) error {
	if len(want) != len(got) {
		return fmt.Errorf("result count %d != %d", len(got), len(want))
	}
	canon := func(rs []core.Result) []core.Result {
		out := append([]core.Result(nil), rs...)
		sort.Slice(out, func(i, j int) bool {
			if out[i].Score != out[j].Score {
				return out[i].Score < out[j].Score
			}
			return out[i].POI.ID < out[j].POI.ID
		})
		return out
	}
	a, b := canon(want), canon(got)
	for i := range a {
		if a[i].POI.ID != b[i].POI.ID {
			return fmt.Errorf("rank %d: POI %d != %d", i, b[i].POI.ID, a[i].POI.ID)
		}
		if math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return fmt.Errorf("rank %d (POI %d): score %v != %v", i, a[i].POI.ID, b[i].Score, a[i].Score)
		}
		if a[i].Agg != b[i].Agg {
			return fmt.Errorf("rank %d (POI %d): aggregate %d != %d", i, a[i].POI.ID, b[i].Agg, a[i].Agg)
		}
	}
	return nil
}

func init() {
	Experiments["shard"] = ShardExp
}
