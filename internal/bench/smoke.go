package bench

import (
	"context"
	"fmt"
	"time"

	"tartree/internal/core"
	"tartree/internal/obs"
)

// smokeDefaults keep the regression probe under a few seconds: one small
// data set and a short, fixed query batch.
const (
	smokeScale   = 0.06
	smokeQueries = 20
)

// Smoke is the regression probe behind cmd/benchdiff: one small data set,
// all four methods, a fixed deterministic query batch. Besides the usual
// latency histograms it exports exact work counters into cfg.Metrics —
//
//	bench_node_accesses_total{method="..."}
//	bench_tia_reads_total{method="..."}
//	bench_results_total{method="..."}
//
// which are machine-independent (they count index work, not time), so two
// BENCH_smoke.json snapshots from different machines are comparable.
func Smoke(cfg Config) ([]Table, error) {
	name := cfg.datasets()[0]
	if len(cfg.Datasets) == 0 {
		name = "GS"
	}
	if cfg.Scale == 0 {
		cfg.Scale = smokeScale
	}
	if cfg.Queries == 0 {
		cfg.Queries = smokeQueries
	}
	env, err := newEnv(cfg, name)
	if err != nil {
		return nil, err
	}
	methods, err := env.buildAll(defaultNodeSize, defaultEpoch, 0)
	if err != nil {
		return nil, err
	}
	queries := env.data.Queries(cfg.queries(), defaultK, defaultAlpha, cfg.Seed+11)

	t := Table{
		Title:  fmt.Sprintf("Smoke: regression probe (%s, scale %.2f, %d queries)", name, cfg.Scale, len(queries)),
		Header: []string{"method", "results", "node accesses", "TIA reads", "CPU time (ms)", "p50 (ms)", "qps"},
	}
	for _, mn := range methodNames {
		var results, nodeAccesses, tiaReads int64
		var cpuMicros float64
		local := obs.NewHistogram(nil)
		var shared *obs.Histogram
		if cfg.Metrics != nil {
			shared = cfg.Metrics.Histogram(fmt.Sprintf(`bench_query_latency_seconds{method=%q}`, mn), nil)
		}
		bt := obs.StartTrace("bench_batch", obs.SpanContext{}, cfg.TraceSink)
		bt.SetAttr("method", mn)
		bt.SetAttr("queries", len(queries))
		ctxTarget, _ := methods[mn].(ctxQueryable)
		for _, qu := range queries {
			qs := bt.StartChild("query")
			start := time.Now()
			var (
				res   []core.Result
				stats core.QueryStats
				err   error
			)
			if qs != nil && ctxTarget != nil {
				res, stats, err = ctxTarget.QueryCtx(context.Background(), qu, &core.QueryOpts{Span: qs})
			} else {
				res, stats, err = methods[mn].Query(qu)
			}
			if err != nil {
				qs.End()
				bt.Finish()
				return nil, err
			}
			elapsed := time.Since(start)
			qs.End()
			local.Observe(elapsed.Seconds())
			if shared != nil {
				shared.Observe(elapsed.Seconds())
			}
			cpuMicros += float64(elapsed.Microseconds())
			results += int64(len(res))
			nodeAccesses += int64(stats.RTreeAccesses())
			tiaReads += stats.TIAAccesses
		}
		bt.Finish()
		if cfg.Metrics != nil {
			cfg.Metrics.Counter(fmt.Sprintf(`bench_node_accesses_total{method=%q}`, mn)).Add(nodeAccesses)
			cfg.Metrics.Counter(fmt.Sprintf(`bench_tia_reads_total{method=%q}`, mn)).Add(tiaReads)
			cfg.Metrics.Counter(fmt.Sprintf(`bench_results_total{method=%q}`, mn)).Add(results)
		}
		snap := local.Snapshot()
		// Aggregate throughput over the batch; benchdiff derives the same
		// count/sum ratio from the exported latency histogram.
		qps := 0.0
		if snap.Sum > 0 {
			qps = float64(snap.Count) / snap.Sum
		}
		t.Rows = append(t.Rows, []string{
			mn,
			fmt.Sprintf("%d", results),
			fmt.Sprintf("%d", nodeAccesses),
			fmt.Sprintf("%d", tiaReads),
			ms(cpuMicros / float64(len(queries))),
			fmt.Sprintf("%.3f", snap.P50*1000),
			fmt.Sprintf("%.0f", qps),
		})
	}
	it, err := smokeIngest(cfg)
	if err != nil {
		return nil, err
	}
	return []Table{t, it}, nil
}
