package bench

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"tartree/internal/core"
	"tartree/internal/lbsn"
	"tartree/internal/tia"
)

// Startup experiment defaults: the cold-load sweep builds the same index at
// several data-set sizes, saves it in both snapshot formats, and times how
// long a process restart takes to serve from each. The gate on the largest
// size enforces the point of the flat format — section reads must beat the
// gob decode + per-POI insert + bulk rebuild of the legacy path by at least
// startupMinSpeedup.
const startupMinSpeedup = 5.0

var startupScales = []float64{0.05, 0.1, 0.2}

// StartupExp measures cold-start cost: for each data-set size it saves the
// built TAR-tree as a legacy gob (v2) image and as a flat snapshot-v3 image,
// then times loading each with fresh disk B+-tree TIAs (best of three, so a
// stray scheduling hiccup cannot fail the gate). Three correctness gates
// ride along: the v3 load must arrive with the frozen layout installed, the
// frozen and pointer traversals of the loaded tree must return identical
// answers with identical node accesses, and the v2- and v3-loaded trees
// must agree on every query's (POI, aggregate) ranking.
//
// The exported counters depend only on the data set — never on timing — so
// benchdiff can gate on them:
//
//	bench_startup_pois_total{scale="..."}
//	bench_startup_v2_bytes_total{scale="..."}
//	bench_startup_v3_bytes_total{scale="..."}
//	bench_startup_node_accesses_total{scale="..."}
//	bench_startup_queries_total
func StartupExp(cfg Config) ([]Table, error) {
	name := cfg.datasets()[0]
	if len(cfg.Datasets) == 0 {
		name = "GS"
	}
	scales := startupScales
	if cfg.Scale > 0 {
		scales = []float64{cfg.Scale}
	}
	if cfg.Queries == 0 {
		cfg.Queries = smokeQueries
	}

	t := Table{
		Title:  fmt.Sprintf("Startup: cold load, gob-v2 rebuild vs flat snapshot-v3 (%s)", name),
		Header: []string{"scale", "POIs", "v2 KB", "v3 KB", "v2 load (ms)", "v3 load (ms)", "speedup", "node accesses"},
	}
	for si, sc := range scales {
		sub := cfg
		sub.Scale = sc
		env, err := newEnv(sub, name)
		if err != nil {
			return nil, err
		}
		tr, err := env.data.Build(lbsn.BuildOptions{Grouping: core.TAR3D, NodeSize: defaultNodeSize})
		if err != nil {
			return nil, err
		}
		var v2, v3 bytes.Buffer
		if err := tr.SaveSnapshot(&v2); err != nil {
			return nil, err
		}
		if err := tr.SaveSnapshotV3(&v3); err != nil {
			return nil, err
		}

		// Timed loads, best of three, each against a fresh TIA factory so
		// no page-store state survives from the previous attempt.
		var fromV2, fromV3 *core.Tree
		timeV2, timeV3 := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < 3; i++ {
			start := time.Now()
			lt, err := core.LoadSnapshot(bytes.NewReader(v2.Bytes()), tia.NewBTreeFactory(defaultNodeSize, 10))
			if err != nil {
				return nil, fmt.Errorf("startup scale %.2f: v2 load: %w", sc, err)
			}
			if d := time.Since(start); d < timeV2 {
				timeV2 = d
			}
			fromV2 = lt
			start = time.Now()
			lt, err = core.LoadSnapshot(bytes.NewReader(v3.Bytes()), tia.NewBTreeFactory(defaultNodeSize, 10))
			if err != nil {
				return nil, fmt.Errorf("startup scale %.2f: v3 load: %w", sc, err)
			}
			if d := time.Since(start); d < timeV3 {
				timeV3 = d
			}
			fromV3 = lt
		}
		if !fromV3.Frozen() {
			return nil, fmt.Errorf("startup scale %.2f: v3 load did not install the frozen layout", sc)
		}

		queries := env.data.Queries(cfg.queries(), defaultK, defaultAlpha, cfg.Seed+29)

		// Gate: the frozen traversal must be the pointer traversal — same
		// answers, same node accesses — on the very tree the server restarts
		// into.
		frozenStats, frozenRes, err := runStartupBatch(fromV3, queries)
		if err != nil {
			return nil, err
		}
		fromV3.Unfreeze()
		pointerStats, pointerRes, err := runStartupBatch(fromV3, queries)
		if err != nil {
			return nil, err
		}
		fromV3.Freeze()
		for i := range queries {
			if err := sameResults(pointerRes[i], frozenRes[i]); err != nil {
				return nil, fmt.Errorf("startup scale %.2f query %d: frozen vs pointer: %w", sc, i, err)
			}
		}
		if frozenStats != pointerStats {
			return nil, fmt.Errorf("startup scale %.2f: frozen work %+v != pointer work %+v", sc, frozenStats, pointerStats)
		}

		// Gate: both formats restore the same index — every query's ranked
		// (POI, aggregate) multiset agrees. The v2 path bulk-rebuilds, so
		// tree shapes (and tie order) may differ; identity is on answers.
		_, v2Res, err := runStartupBatch(fromV2, queries)
		if err != nil {
			return nil, err
		}
		for i := range queries {
			if err := sameAnswerSet(v2Res[i], frozenRes[i]); err != nil {
				return nil, fmt.Errorf("startup scale %.2f query %d: v2 vs v3: %w", sc, i, err)
			}
		}

		speedup := float64(timeV2) / float64(timeV3)
		if si == len(scales)-1 && speedup < startupMinSpeedup {
			return nil, fmt.Errorf("startup scale %.2f: v3 load only %.1f× faster than v2 (gate: ≥%.0f×)",
				sc, speedup, startupMinSpeedup)
		}

		if cfg.Metrics != nil {
			l := func(c string) string { return fmt.Sprintf(`%s{scale="%.2f"}`, c, sc) }
			cfg.Metrics.Counter(l("bench_startup_pois_total")).Add(int64(fromV3.Len()))
			cfg.Metrics.Counter(l("bench_startup_v2_bytes_total")).Add(int64(v2.Len()))
			cfg.Metrics.Counter(l("bench_startup_v3_bytes_total")).Add(int64(v3.Len()))
			cfg.Metrics.Counter(l("bench_startup_node_accesses_total")).Add(frozenStats.nodeAccesses)
			cfg.Metrics.Counter("bench_startup_queries_total").Add(int64(len(queries)))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", sc),
			fmt.Sprintf("%d", fromV3.Len()),
			fmt.Sprintf("%.1f", float64(v2.Len())/1024),
			fmt.Sprintf("%.1f", float64(v3.Len())/1024),
			fmt.Sprintf("%.3f", timeV2.Seconds()*1000),
			fmt.Sprintf("%.3f", timeV3.Seconds()*1000),
			fmt.Sprintf("%.1f×", speedup),
			fmt.Sprintf("%d", frozenStats.nodeAccesses),
		})
	}
	return []Table{t}, nil
}

// startupWork is the exact query-work fingerprint compared between the
// frozen and pointer traversals.
type startupWork struct {
	nodeAccesses int64
	leafAccesses int64
	tiaReads     int64
	results      int64
}

// runStartupBatch runs the query batch uncached (the cache would hide the
// traversal being compared) and folds the work counters.
func runStartupBatch(tr *core.Tree, queries []core.Query) (startupWork, [][]core.Result, error) {
	var w startupWork
	res := make([][]core.Result, len(queries))
	for i, qu := range queries {
		r, stats, err := tr.Query(qu)
		if err != nil {
			return w, nil, err
		}
		res[i] = r
		w.nodeAccesses += int64(stats.RTreeAccesses())
		w.leafAccesses += int64(stats.LeafAccesses)
		w.tiaReads += stats.TIAAccesses
		w.results += int64(len(r))
	}
	return w, res, nil
}

// sameAnswerSet requires two ranked answers to carry the same (POI,
// aggregate) multiset — the equivalence that survives a bulk rebuild, where
// score ties may order differently.
func sameAnswerSet(want, got []core.Result) error {
	if len(want) != len(got) {
		return fmt.Errorf("result count %d != %d", len(got), len(want))
	}
	key := func(rs []core.Result) []string {
		ks := make([]string, len(rs))
		for i, r := range rs {
			ks[i] = fmt.Sprintf("%d/%d", r.POI.ID, r.Agg)
		}
		sort.Strings(ks)
		return ks
	}
	a, b := key(want), key(got)
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("answer sets differ at %s vs %s", b[i], a[i])
		}
	}
	return nil
}

func init() {
	Experiments["startup"] = StartupExp
}
