// Package btree implements a disk-based B+-tree over a pagestore buffer
// pool. It is the default backend for the TAR-tree's temporal indexes
// (TIAs): keys are epoch start times and values are fixed-size records
// holding the epoch end time and the aggregate value.
//
// The tree supports point updates (Put is insert-or-overwrite), lookups,
// ordered range scans through linked leaves, deletion with rebalancing,
// and Destroy, which returns every page to the underlying file — used when
// an internal entry's TIA is rebuilt after an R-tree split.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"tartree/internal/pagestore"
)

// Value is the fixed-size payload stored with each key. For a TIA record
// ⟨ts, te, agg⟩ keyed by ts, Value is {te, agg}.
type Value [2]int64

const (
	headerSize = 16 // flags(1) pad(1) count(2) next(4) pad(8)
	leafEntry  = 8 + 16
	innerEntry = 8 + 4 // key + child; one extra leading child per node

	flagLeaf = 1
)

var (
	errCorrupt = errors.New("btree: corrupt page")
	// ErrTooSmall is returned by New when the page size cannot hold the
	// minimum number of entries per node.
	ErrTooSmall = errors.New("btree: page size too small")
)

// node is the in-memory decoding of a page.
type node struct {
	id   pagestore.PageID
	leaf bool
	// level is the node's height in the tree (1 = leaf); it is not
	// stored on the page but threaded from callers, which always know
	// it, so page I/O can be attributed per level.
	level    int
	keys     []int64
	vals     []Value            // leaf only; len == len(keys)
	children []pagestore.PageID // inner only; len == len(keys)+1
	next     pagestore.PageID   // leaf chain
}

// Tree is a disk-based B+-tree. Read-only operations (Get, Scan and their
// Acct variants) are safe to call from many goroutines at once — the buffer
// pool synchronizes page access — but the tree is not safe for concurrent
// mutation, nor for mutation concurrent with reads; the TAR-tree serializes
// updates per TIA and never mutates TIAs while queries run.
type Tree struct {
	buf       *pagestore.Buffer
	root      pagestore.PageID
	height    int // 1 = root is a leaf
	count     int
	leafCap   int
	innerCap  int // max number of keys in an inner node
	pageSize  int
	scratch   []byte
	destroyed bool
}

// New creates an empty B+-tree whose pages are allocated from buf.
func New(buf *pagestore.Buffer) (*Tree, error) {
	ps := buf.PageSize()
	t := &Tree{
		buf:      buf,
		height:   1,
		leafCap:  (ps - headerSize) / leafEntry,
		innerCap: (ps - headerSize - 4) / innerEntry,
		pageSize: ps,
		scratch:  make([]byte, ps),
	}
	if t.leafCap < 3 || t.innerCap < 3 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooSmall, ps)
	}
	root, err := buf.Alloc()
	if err != nil {
		return nil, err
	}
	t.root = root
	if err := t.writeNode(&node{id: root, leaf: true, level: 1}); err != nil {
		return nil, err
	}
	return t, nil
}

// NewBulk builds a tree over buf from strictly increasing keys in one
// bottom-up pass: the leaf level is written left to right, then each inner
// level over the one below. Records are spread evenly over ceil(n/cap)
// nodes per level, so every node meets the deletion minimum fill and later
// Puts and Deletes behave exactly as on an incrementally built tree. The
// cost is one page write per node — no reads, no splits — which is what
// makes snapshot restores cheap.
func NewBulk(buf *pagestore.Buffer, keys []int64, vals []Value) (*Tree, error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("btree: bulk load with %d keys but %d values", len(keys), len(vals))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			return nil, fmt.Errorf("btree: bulk-load keys not strictly increasing at index %d", i)
		}
	}
	if len(keys) == 0 {
		return New(buf)
	}
	ps := buf.PageSize()
	t := &Tree{
		buf:      buf,
		leafCap:  (ps - headerSize) / leafEntry,
		innerCap: (ps - headerSize - 4) / innerEntry,
		pageSize: ps,
		scratch:  make([]byte, ps),
	}
	if t.leafCap < 3 || t.innerCap < 3 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooSmall, ps)
	}

	// child is one finished node of the level below, carried upward with
	// the smallest key of its subtree (the separator above it).
	type child struct {
		id  pagestore.PageID
		min int64
	}

	// Leaf level. All leaf pages are allocated first so each can chain to
	// its right sibling as it is written.
	n := len(keys)
	nleaves := (n + t.leafCap - 1) / t.leafCap
	ids := make([]pagestore.PageID, nleaves)
	var err error
	for i := range ids {
		if ids[i], err = buf.Alloc(); err != nil {
			return nil, err
		}
	}
	level := make([]child, 0, nleaves)
	off := 0
	for i := 0; i < nleaves; i++ {
		cnt := n / nleaves
		if i < n%nleaves {
			cnt++
		}
		nd := &node{id: ids[i], leaf: true, level: 1, keys: keys[off : off+cnt], vals: vals[off : off+cnt]}
		if i+1 < nleaves {
			nd.next = ids[i+1]
		}
		if err := t.writeNode(nd); err != nil {
			return nil, err
		}
		level = append(level, child{ids[i], keys[off]})
		off += cnt
	}
	t.count = n
	t.height = 1

	// Inner levels, bottom-up, until one node remains.
	for len(level) > 1 {
		t.height++
		m := len(level)
		nnodes := (m + t.innerCap) / (t.innerCap + 1)
		next := make([]child, 0, nnodes)
		off := 0
		for i := 0; i < nnodes; i++ {
			cnt := m / nnodes
			if i < m%nnodes {
				cnt++
			}
			group := level[off : off+cnt]
			id, err := buf.Alloc()
			if err != nil {
				return nil, err
			}
			nd := &node{id: id, level: t.height}
			nd.children = make([]pagestore.PageID, cnt)
			nd.keys = make([]int64, cnt-1)
			for j, c := range group {
				nd.children[j] = c.id
				if j > 0 {
					nd.keys[j-1] = c.min
				}
			}
			if err := t.writeNode(nd); err != nil {
				return nil, err
			}
			next = append(next, child{id, group[0].min})
			off += cnt
		}
		level = next
	}
	t.root = level[0].id
	return t, nil
}

// Len returns the number of keys stored.
func (t *Tree) Len() int { return t.count }

// Height returns the number of levels (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// LeafCap and InnerCap expose node capacities for tests and sizing.
func (t *Tree) LeafCap() int  { return t.leafCap }
func (t *Tree) InnerCap() int { return t.innerCap }

// tag attributes one page access to this tree's component at the given
// node level (btree levels are 1-based; attribution levels are 0 = leaf).
func tag(level int) pagestore.IOTag {
	return pagestore.NewIOTag(pagestore.CompTIABTree, level-1)
}

func (t *Tree) readNode(id pagestore.PageID, level int) (*node, error) {
	return t.readNodeAcct(id, level, nil)
}

// readNodeAcct is readNode with the access charged to a query-local acct
// (nil for unattributed traffic, e.g. the mutation paths).
func (t *Tree) readNodeAcct(id pagestore.PageID, level int, acct *pagestore.IOAcct) (*node, error) {
	page, err := t.buf.GetTag(id, tag(level).WithAcct(acct))
	if err != nil {
		return nil, err
	}
	n := &node{id: id, level: level}
	n.leaf = page[0]&flagLeaf != 0
	cnt := int(binary.LittleEndian.Uint16(page[2:4]))
	n.next = pagestore.PageID(binary.LittleEndian.Uint32(page[4:8]))
	off := headerSize
	if n.leaf {
		if cnt > t.leafCap {
			return nil, errCorrupt
		}
		n.keys = make([]int64, cnt)
		n.vals = make([]Value, cnt)
		for i := 0; i < cnt; i++ {
			n.keys[i] = int64(binary.LittleEndian.Uint64(page[off:]))
			n.vals[i][0] = int64(binary.LittleEndian.Uint64(page[off+8:]))
			n.vals[i][1] = int64(binary.LittleEndian.Uint64(page[off+16:]))
			off += leafEntry
		}
		return n, nil
	}
	if cnt > t.innerCap {
		return nil, errCorrupt
	}
	n.keys = make([]int64, cnt)
	n.children = make([]pagestore.PageID, cnt+1)
	n.children[0] = pagestore.PageID(binary.LittleEndian.Uint32(page[off:]))
	off += 4
	for i := 0; i < cnt; i++ {
		n.keys[i] = int64(binary.LittleEndian.Uint64(page[off:]))
		n.children[i+1] = pagestore.PageID(binary.LittleEndian.Uint32(page[off+8:]))
		off += innerEntry
	}
	return n, nil
}

func (t *Tree) writeNode(n *node) error {
	page := t.scratch
	for i := range page {
		page[i] = 0
	}
	if n.leaf {
		page[0] = flagLeaf
	}
	binary.LittleEndian.PutUint16(page[2:4], uint16(len(n.keys)))
	binary.LittleEndian.PutUint32(page[4:8], uint32(n.next))
	off := headerSize
	if n.leaf {
		for i, k := range n.keys {
			binary.LittleEndian.PutUint64(page[off:], uint64(k))
			binary.LittleEndian.PutUint64(page[off+8:], uint64(n.vals[i][0]))
			binary.LittleEndian.PutUint64(page[off+16:], uint64(n.vals[i][1]))
			off += leafEntry
		}
	} else {
		binary.LittleEndian.PutUint32(page[off:], uint32(n.children[0]))
		off += 4
		for i, k := range n.keys {
			binary.LittleEndian.PutUint64(page[off:], uint64(k))
			binary.LittleEndian.PutUint32(page[off+8:], uint32(n.children[i+1]))
			off += innerEntry
		}
	}
	return t.buf.PutTag(n.id, page, tag(n.level))
}

// search returns the index of the first key >= k.
func search(keys []int64, k int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under key, and whether it exists.
func (t *Tree) Get(key int64) (Value, bool, error) {
	return t.GetAcct(key, nil)
}

// GetAcct is Get with the page accesses charged to acct (which may be nil).
func (t *Tree) GetAcct(key int64, acct *pagestore.IOAcct) (Value, bool, error) {
	id := t.root
	for level := t.height; level > 1; level-- {
		n, err := t.readNodeAcct(id, level, acct)
		if err != nil {
			return Value{}, false, err
		}
		i := search(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++ // separator keys equal to the key route right
		}
		id = n.children[i]
	}
	n, err := t.readNodeAcct(id, 1, acct)
	if err != nil {
		return Value{}, false, err
	}
	i := search(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true, nil
	}
	return Value{}, false, nil
}

// Put inserts key with value v, overwriting any existing value.
func (t *Tree) Put(key int64, v Value) error {
	sepKey, right, added, err := t.insert(t.root, t.height, key, v)
	if err != nil {
		return err
	}
	if added {
		t.count++
	}
	if right != pagestore.InvalidPage {
		// Grow a new root.
		id, err := t.buf.Alloc()
		if err != nil {
			return err
		}
		root := &node{
			id:       id,
			level:    t.height + 1,
			keys:     []int64{sepKey},
			children: []pagestore.PageID{t.root, right},
		}
		if err := t.writeNode(root); err != nil {
			return err
		}
		t.root = id
		t.height++
	}
	return nil
}

// insert descends to the leaf, inserts and splits upward. It returns the
// separator key and new right sibling when the visited node split.
func (t *Tree) insert(id pagestore.PageID, level int, key int64, v Value) (int64, pagestore.PageID, bool, error) {
	n, err := t.readNode(id, level)
	if err != nil {
		return 0, pagestore.InvalidPage, false, err
	}
	if level == 1 {
		i := search(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = v
			return 0, pagestore.InvalidPage, false, t.writeNode(n)
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, Value{})
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = v
		if len(n.keys) <= t.leafCap {
			return 0, pagestore.InvalidPage, true, t.writeNode(n)
		}
		// Split the leaf.
		mid := len(n.keys) / 2
		rid, err := t.buf.Alloc()
		if err != nil {
			return 0, pagestore.InvalidPage, false, err
		}
		right := &node{
			id:    rid,
			leaf:  true,
			level: 1,
			keys:  append([]int64(nil), n.keys[mid:]...),
			vals:  append([]Value(nil), n.vals[mid:]...),
			next:  n.next,
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = rid
		if err := t.writeNode(n); err != nil {
			return 0, pagestore.InvalidPage, false, err
		}
		if err := t.writeNode(right); err != nil {
			return 0, pagestore.InvalidPage, false, err
		}
		return right.keys[0], rid, true, nil
	}

	i := search(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		i++
	}
	sep, rchild, added, err := t.insert(n.children[i], level-1, key, v)
	if err != nil || rchild == pagestore.InvalidPage {
		return 0, pagestore.InvalidPage, added, err
	}
	// Insert separator and new child into this inner node.
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, pagestore.InvalidPage)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = rchild
	if len(n.keys) <= t.innerCap {
		return 0, pagestore.InvalidPage, added, t.writeNode(n)
	}
	// Split the inner node; the middle key moves up.
	mid := len(n.keys) / 2
	upKey := n.keys[mid]
	rid, err := t.buf.Alloc()
	if err != nil {
		return 0, pagestore.InvalidPage, false, err
	}
	right := &node{
		id:       rid,
		level:    level,
		keys:     append([]int64(nil), n.keys[mid+1:]...),
		children: append([]pagestore.PageID(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	if err := t.writeNode(n); err != nil {
		return 0, pagestore.InvalidPage, false, err
	}
	if err := t.writeNode(right); err != nil {
		return 0, pagestore.InvalidPage, false, err
	}
	return upKey, rid, added, nil
}

// Scan visits all pairs with lo <= key <= hi in ascending key order,
// stopping early when fn returns false.
func (t *Tree) Scan(lo, hi int64, fn func(key int64, v Value) bool) error {
	return t.ScanAcct(lo, hi, nil, fn)
}

// ScanAcct is Scan with the page accesses charged to acct (which may be
// nil). The TIA aggregation path threads the owning query's acct here so
// per-query I/O stays exact under concurrent execution.
func (t *Tree) ScanAcct(lo, hi int64, acct *pagestore.IOAcct, fn func(key int64, v Value) bool) error {
	id := t.root
	for level := t.height; level > 1; level-- {
		n, err := t.readNodeAcct(id, level, acct)
		if err != nil {
			return err
		}
		i := search(n.keys, lo)
		if i < len(n.keys) && n.keys[i] == lo {
			i++
		}
		id = n.children[i]
	}
	for id != pagestore.InvalidPage {
		n, err := t.readNodeAcct(id, 1, acct)
		if err != nil {
			return err
		}
		for i := search(n.keys, lo); i < len(n.keys); i++ {
			if n.keys[i] > hi {
				return nil
			}
			if !fn(n.keys[i], n.vals[i]) {
				return nil
			}
		}
		id = n.next
	}
	return nil
}

// Delete removes key; it reports whether the key was present.
func (t *Tree) Delete(key int64) (bool, error) {
	removed, _, err := t.remove(t.root, t.height, key)
	if err != nil {
		return false, err
	}
	if removed {
		t.count--
	}
	// Collapse the root when an inner root has a single child.
	for t.height > 1 {
		n, err := t.readNode(t.root, t.height)
		if err != nil {
			return removed, err
		}
		if len(n.keys) > 0 {
			break
		}
		old := t.root
		t.root = n.children[0]
		t.height--
		if err := t.buf.Free(old); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

func (t *Tree) minKeys(level int) int {
	if level == 1 {
		return t.leafCap / 2
	}
	return t.innerCap / 2
}

// remove deletes key from the subtree rooted at id. The second result
// reports whether the node at id is now underfull (its parent rebalances).
func (t *Tree) remove(id pagestore.PageID, level int, key int64) (bool, bool, error) {
	n, err := t.readNode(id, level)
	if err != nil {
		return false, false, err
	}
	if level == 1 {
		i := search(n.keys, key)
		if i >= len(n.keys) || n.keys[i] != key {
			return false, false, nil
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		if err := t.writeNode(n); err != nil {
			return false, false, err
		}
		return true, len(n.keys) < t.minKeys(1), nil
	}
	i := search(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		i++
	}
	removed, under, err := t.remove(n.children[i], level-1, key)
	if err != nil || !under {
		return removed, false, err
	}
	if err := t.rebalance(n, i, level-1); err != nil {
		return removed, false, err
	}
	return removed, len(n.keys) < t.minKeys(level), nil
}

// rebalance fixes the underfull child at position i of parent p by
// borrowing from or merging with a sibling.
func (t *Tree) rebalance(p *node, i, childLevel int) error {
	child, err := t.readNode(p.children[i], childLevel)
	if err != nil {
		return err
	}
	min := t.minKeys(childLevel)

	// Try to borrow from the left sibling.
	if i > 0 {
		left, err := t.readNode(p.children[i-1], childLevel)
		if err != nil {
			return err
		}
		if len(left.keys) > min {
			if child.leaf {
				k := left.keys[len(left.keys)-1]
				v := left.vals[len(left.vals)-1]
				left.keys = left.keys[:len(left.keys)-1]
				left.vals = left.vals[:len(left.vals)-1]
				child.keys = append([]int64{k}, child.keys...)
				child.vals = append([]Value{v}, child.vals...)
				p.keys[i-1] = k
			} else {
				// Rotate through the parent separator.
				child.keys = append([]int64{p.keys[i-1]}, child.keys...)
				child.children = append([]pagestore.PageID{left.children[len(left.children)-1]}, child.children...)
				p.keys[i-1] = left.keys[len(left.keys)-1]
				left.keys = left.keys[:len(left.keys)-1]
				left.children = left.children[:len(left.children)-1]
			}
			if err := t.writeNode(left); err != nil {
				return err
			}
			if err := t.writeNode(child); err != nil {
				return err
			}
			return t.writeNode(p)
		}
	}
	// Try to borrow from the right sibling.
	if i < len(p.children)-1 {
		right, err := t.readNode(p.children[i+1], childLevel)
		if err != nil {
			return err
		}
		if len(right.keys) > min {
			if child.leaf {
				child.keys = append(child.keys, right.keys[0])
				child.vals = append(child.vals, right.vals[0])
				right.keys = right.keys[1:]
				right.vals = right.vals[1:]
				p.keys[i] = right.keys[0]
			} else {
				child.keys = append(child.keys, p.keys[i])
				child.children = append(child.children, right.children[0])
				p.keys[i] = right.keys[0]
				right.keys = right.keys[1:]
				right.children = right.children[1:]
			}
			if err := t.writeNode(right); err != nil {
				return err
			}
			if err := t.writeNode(child); err != nil {
				return err
			}
			return t.writeNode(p)
		}
	}
	// Merge with a sibling. Normalize so we merge child i into i-1.
	j := i
	if j == 0 {
		j = 1
	}
	left, err := t.readNode(p.children[j-1], childLevel)
	if err != nil {
		return err
	}
	right, err := t.readNode(p.children[j], childLevel)
	if err != nil {
		return err
	}
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, p.keys[j-1])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	p.keys = append(p.keys[:j-1], p.keys[j:]...)
	p.children = append(p.children[:j], p.children[j+1:]...)
	if err := t.writeNode(left); err != nil {
		return err
	}
	if err := t.buf.Free(right.id); err != nil {
		return err
	}
	return t.writeNode(p)
}

// Destroy frees every page of the tree. The tree must not be used after.
func (t *Tree) Destroy() error {
	if t.destroyed {
		return nil
	}
	t.destroyed = true
	return t.freeSubtree(t.root, t.height)
}

func (t *Tree) freeSubtree(id pagestore.PageID, level int) error {
	if level > 1 {
		n, err := t.readNode(id, level)
		if err != nil {
			return err
		}
		for _, c := range n.children {
			if err := t.freeSubtree(c, level-1); err != nil {
				return err
			}
		}
	}
	return t.buf.Free(id)
}

// Check validates structural invariants (ordering, fill factors, leaf
// chaining, key count). Intended for tests.
func (t *Tree) Check() error {
	total, _, _, err := t.check(t.root, t.height, nil, nil, true)
	if err != nil {
		return err
	}
	if total != t.count {
		return fmt.Errorf("btree: count mismatch: counted %d, recorded %d", total, t.count)
	}
	return nil
}

func (t *Tree) check(id pagestore.PageID, level int, lo, hi *int64, isRoot bool) (int, pagestore.PageID, pagestore.PageID, error) {
	n, err := t.readNode(id, level)
	if err != nil {
		return 0, 0, 0, err
	}
	if n.leaf != (level == 1) {
		return 0, 0, 0, fmt.Errorf("btree: node %d leaf flag mismatch at level %d", id, level)
	}
	for i := 1; i < len(n.keys); i++ {
		if n.keys[i-1] >= n.keys[i] {
			return 0, 0, 0, fmt.Errorf("btree: node %d keys out of order", id)
		}
	}
	for _, k := range n.keys {
		if lo != nil && k < *lo || hi != nil && k >= *hi {
			return 0, 0, 0, fmt.Errorf("btree: node %d key %d outside separator range", id, k)
		}
	}
	if !isRoot && len(n.keys) < t.minKeys(level) {
		return 0, 0, 0, fmt.Errorf("btree: node %d underfull (%d keys at level %d)", id, len(n.keys), level)
	}
	if n.leaf {
		return len(n.keys), id, id, nil
	}
	total := 0
	var firstLeaf, prevLast pagestore.PageID
	for i, c := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = &n.keys[i-1]
		}
		if i < len(n.keys) {
			chi = &n.keys[i]
		}
		cnt, fl, ll, err := t.check(c, level-1, clo, chi, false)
		if err != nil {
			return 0, 0, 0, err
		}
		total += cnt
		if i == 0 {
			firstLeaf = fl
		} else if level == 2 {
			// Verify the leaf chain between consecutive children.
			prev, err := t.readNode(prevLast, 1)
			if err != nil {
				return 0, 0, 0, err
			}
			if prev.next != fl {
				return 0, 0, 0, fmt.Errorf("btree: broken leaf chain at %d -> %d", prevLast, fl)
			}
		}
		prevLast = ll
	}
	return total, firstLeaf, prevLast, nil
}
