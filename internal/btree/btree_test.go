package btree

import (
	"math/rand"
	"sort"
	"testing"

	"tartree/internal/pagestore"
)

func newTestTree(t *testing.T, pageSize int) *Tree {
	t.Helper()
	buf := pagestore.NewBuffer(pagestore.NewMemFile(pageSize), 64)
	tr, err := New(buf)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPageSizeTooSmall(t *testing.T) {
	buf := pagestore.NewBuffer(pagestore.NewMemFile(32), 4)
	if _, err := New(buf); err == nil {
		t.Fatal("expected error for tiny pages")
	}
}

func TestCapacitiesAt1024(t *testing.T) {
	tr := newTestTree(t, 1024)
	if tr.LeafCap() != (1024-16)/24 {
		t.Errorf("leaf cap = %d", tr.LeafCap())
	}
	if tr.InnerCap() != (1024-20)/12 {
		t.Errorf("inner cap = %d", tr.InnerCap())
	}
}

func TestPutGetBasic(t *testing.T) {
	tr := newTestTree(t, 256)
	if _, ok, _ := tr.Get(5); ok {
		t.Fatal("empty tree returned a value")
	}
	if err := tr.Put(5, Value{50, 500}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get(5)
	if err != nil || !ok || v != (Value{50, 500}) {
		t.Fatalf("get = %v %v %v", v, ok, err)
	}
	// Overwrite.
	if err := tr.Put(5, Value{51, 501}); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := tr.Get(5); v != (Value{51, 501}) {
		t.Fatalf("overwrite failed: %v", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestInsertManySequential(t *testing.T) {
	tr := newTestTree(t, 128)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Put(int64(i), Value{int64(i + 1), int64(i * 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("len = %d, want %d", tr.Len(), n)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, ok, err := tr.Get(int64(i))
		if err != nil || !ok {
			t.Fatalf("missing key %d: %v", i, err)
		}
		if v != (Value{int64(i + 1), int64(i * 2)}) {
			t.Fatalf("key %d: value %v", i, v)
		}
	}
	if tr.Height() < 2 {
		t.Error("tree should have split with 2000 keys on 128B pages")
	}
}

func TestInsertManyRandomOrder(t *testing.T) {
	tr := newTestTree(t, 128)
	r := rand.New(rand.NewSource(1))
	keys := r.Perm(3000)
	for _, k := range keys {
		if err := tr.Put(int64(k), Value{int64(k), int64(-k)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		v, ok, _ := tr.Get(int64(k))
		if !ok || v != (Value{int64(k), int64(-k)}) {
			t.Fatalf("key %d lost", k)
		}
	}
}

func TestScan(t *testing.T) {
	tr := newTestTree(t, 128)
	// Insert even keys 0..198.
	for i := 0; i < 100; i++ {
		if err := tr.Put(int64(i*2), Value{int64(i * 2), 1}); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	if err := tr.Scan(11, 31, func(k int64, v Value) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []int64{12, 14, 16, 18, 20, 22, 24, 26, 28, 30}
	if len(got) != len(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	tr.Scan(0, 1000, func(k int64, v Value) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d", count)
	}
	// Empty range.
	visited := false
	tr.Scan(500, 600, func(k int64, v Value) bool { visited = true; return true })
	if visited {
		t.Error("scan past max key visited entries")
	}
	// Inclusive bounds.
	var incl []int64
	tr.Scan(10, 12, func(k int64, v Value) bool { incl = append(incl, k); return true })
	if len(incl) != 2 || incl[0] != 10 || incl[1] != 12 {
		t.Errorf("inclusive scan = %v", incl)
	}
}

func TestDelete(t *testing.T) {
	tr := newTestTree(t, 128)
	const n = 1500
	for i := 0; i < n; i++ {
		tr.Put(int64(i), Value{int64(i), 0})
	}
	// Delete a missing key.
	if ok, err := tr.Delete(int64(n + 10)); err != nil || ok {
		t.Fatalf("delete missing = %v %v", ok, err)
	}
	// Delete every third key.
	for i := 0; i < n; i += 3 {
		ok, err := tr.Delete(int64(i))
		if err != nil || !ok {
			t.Fatalf("delete %d failed: %v %v", i, ok, err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, ok, _ := tr.Get(int64(i))
		if (i%3 == 0) == ok {
			t.Fatalf("key %d presence = %v", i, ok)
		}
	}
	// Delete everything; the tree should collapse to an empty root leaf.
	for i := 0; i < n; i++ {
		tr.Delete(int64(i))
	}
	if tr.Len() != 0 {
		t.Fatalf("len after full delete = %d", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("height after full delete = %d", tr.Height())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

// Model check: random interleaving of put/delete/get/scan against a map.
func TestModelCheck(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	tr := newTestTree(t, 128)
	model := map[int64]Value{}
	for step := 0; step < 20000; step++ {
		k := int64(r.Intn(500))
		switch r.Intn(10) {
		case 0, 1, 2, 3: // put
			v := Value{r.Int63n(100), r.Int63n(100)}
			if err := tr.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 4, 5: // delete
			ok, err := tr.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			_, want := model[k]
			if ok != want {
				t.Fatalf("step %d: delete(%d) = %v, want %v", step, k, ok, want)
			}
			delete(model, k)
		case 6, 7, 8: // get
			v, ok, err := tr.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK := model[k]
			if ok != wantOK || (ok && v != want) {
				t.Fatalf("step %d: get(%d) = %v %v, want %v %v", step, k, v, ok, want, wantOK)
			}
		default: // full scan must match sorted model
			var keys []int64
			tr.Scan(-1, 1000, func(k int64, v Value) bool {
				keys = append(keys, k)
				if model[k] != v {
					t.Fatalf("step %d: scan value mismatch at %d", step, k)
				}
				return true
			})
			if len(keys) != len(model) {
				t.Fatalf("step %d: scan found %d keys, model has %d", step, len(keys), len(model))
			}
			if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
				t.Fatalf("step %d: scan out of order", step)
			}
		}
		if step%2000 == 0 {
			if err := tr.Check(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("len = %d, model = %d", tr.Len(), len(model))
	}
}

func TestDestroyFreesAllPages(t *testing.T) {
	f := pagestore.NewMemFile(128)
	buf := pagestore.NewBuffer(f, 16)
	tr, err := New(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		tr.Put(int64(i), Value{1, 2})
	}
	if f.NumPages() < 10 {
		t.Fatalf("expected many pages, got %d", f.NumPages())
	}
	if err := tr.Destroy(); err != nil {
		t.Fatal(err)
	}
	if f.NumPages() != 0 {
		t.Fatalf("pages leaked after destroy: %d", f.NumPages())
	}
	// Destroy is idempotent.
	if err := tr.Destroy(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeKeys(t *testing.T) {
	tr := newTestTree(t, 128)
	keys := []int64{-100, -1, 0, 1, 100}
	for _, k := range keys {
		tr.Put(k, Value{k, k})
	}
	var got []int64
	tr.Scan(-200, 200, func(k int64, v Value) bool { got = append(got, k); return true })
	for i, k := range keys {
		if got[i] != k {
			t.Fatalf("scan order with negatives = %v", got)
		}
	}
}

func BenchmarkPut(b *testing.B) {
	buf := pagestore.NewBuffer(pagestore.NewMemFile(1024), 256)
	tr, _ := New(buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(int64(i), Value{int64(i), 1})
	}
}

func BenchmarkGet(b *testing.B) {
	buf := pagestore.NewBuffer(pagestore.NewMemFile(1024), 256)
	tr, _ := New(buf)
	for i := 0; i < 100000; i++ {
		tr.Put(int64(i), Value{int64(i), 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(int64(i % 100000))
	}
}

func TestScanEmptyTree(t *testing.T) {
	tr := newTestTree(t, 128)
	visited := false
	if err := tr.Scan(-1000, 1000, func(k int64, v Value) bool { visited = true; return true }); err != nil {
		t.Fatal(err)
	}
	if visited {
		t.Fatal("scan of empty tree visited entries")
	}
	if _, ok, _ := tr.Get(0); ok {
		t.Fatal("get on empty tree")
	}
	if ok, _ := tr.Delete(0); ok {
		t.Fatal("delete on empty tree")
	}
}

func TestOverwriteAcrossSplits(t *testing.T) {
	tr := newTestTree(t, 128)
	const n = 1000
	for i := 0; i < n; i++ {
		tr.Put(int64(i), Value{1, 1})
	}
	// Overwrite every key after the tree has split many times.
	for i := 0; i < n; i++ {
		tr.Put(int64(i), Value{2, int64(i)})
	}
	if tr.Len() != n {
		t.Fatalf("len = %d after overwrites", tr.Len())
	}
	for i := 0; i < n; i++ {
		v, ok, _ := tr.Get(int64(i))
		if !ok || v != (Value{2, int64(i)}) {
			t.Fatalf("key %d = %v %v", i, v, ok)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestNewBulk builds trees of every small size (and a few larger ones) at a
// page size that forces several levels, and requires each to be
// indistinguishable from an incrementally built tree: same scan contents,
// valid invariants (Check enforces the deletion minimum fill bulk loading
// must respect), and fully mutable afterwards.
func TestNewBulk(t *testing.T) {
	sizes := []int{0, 1, 2, 3, 7, 8, 9, 50, 64, 100, 500, 2000}
	for _, n := range sizes {
		keys := make([]int64, n)
		vals := make([]Value, n)
		for i := range keys {
			keys[i] = int64(i*3 - n) // strictly increasing, crosses zero
			vals[i] = Value{int64(i), int64(i * 2)}
		}
		buf := pagestore.NewBuffer(pagestore.NewMemFile(256), 64)
		tr, err := NewBulk(buf, keys, vals)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		var got int
		err = tr.Scan(-1<<62, 1<<62, func(k int64, v Value) bool {
			if k != keys[got] || v != vals[got] {
				t.Fatalf("n=%d: scan[%d] = %d/%v, want %d/%v", n, got, k, v, keys[got], vals[got])
			}
			got++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != n {
			t.Fatalf("n=%d: scanned %d", n, got)
		}
		// The bulk-built tree accepts point reads and mutations.
		if n > 0 {
			if v, ok, err := tr.Get(keys[n/2]); err != nil || !ok || v != vals[n/2] {
				t.Fatalf("n=%d: Get(%d) = %v %v %v", n, keys[n/2], v, ok, err)
			}
			if ok, err := tr.Delete(keys[0]); err != nil || !ok {
				t.Fatalf("n=%d: Delete: %v %v", n, ok, err)
			}
		}
		if err := tr.Put(1<<40, Value{7, 7}); err != nil {
			t.Fatalf("n=%d: Put: %v", n, err)
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("n=%d after mutation: %v", n, err)
		}
	}
}

// TestNewBulkRejectsUnsorted: duplicate and descending keys must error.
func TestNewBulkRejectsUnsorted(t *testing.T) {
	buf := pagestore.NewBuffer(pagestore.NewMemFile(256), 64)
	if _, err := NewBulk(buf, []int64{1, 1}, []Value{{}, {}}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	if _, err := NewBulk(buf, []int64{2, 1}, []Value{{}, {}}); err == nil {
		t.Fatal("descending keys accepted")
	}
	if _, err := NewBulk(buf, []int64{1}, nil); err == nil {
		t.Fatal("mismatched value count accepted")
	}
}
