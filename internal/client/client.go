// Package client is the HTTP side of core.Querier: a Remote forwards
// QueryCtx calls to a tarserve /v1/query endpoint — leader, follower,
// or shard coordinator, the caller cannot tell — propagating the W3C
// traceparent of the caller's span and the read-your-writes min_lsn
// watermark, and decoding errors out of the unified envelope back into
// the sentinel errors (core.ErrInvalid, core.ErrCanceled) local callers
// already branch on.
package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"tartree/internal/core"
	"tartree/internal/httpapi"
	"tartree/internal/obs"
)

// Remote queries a tarserve instance over HTTP. The zero value is unusable;
// BaseURL is required.
type Remote struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// Client overrides http.DefaultClient.
	Client *http.Client
	// MinLSN, when non-zero, is forwarded as min_lsn so a follower holds
	// the query until it has applied at least that LSN (read-your-writes).
	MinLSN uint64
	// Days, when positive, replaces the query's explicit interval with the
	// server-side "last N days" convenience parameter (anchored at the
	// server's data end) — for callers that do not know the remote span.
	Days int64
}

// Response is the full decoded answer of one remote query — everything
// /v1/query returns beyond the ([]Result, QueryStats) pair, for callers
// like tarquery that render I/O attribution and explains.
type Response struct {
	Results       []core.Result
	Stats         core.QueryStats
	IO            []obs.IOLine
	ElapsedMicros int64
	Explain       *core.Explain
}

// wireResponse mirrors cmd/tarserve's queryResponse JSON.
type wireResponse struct {
	Results []struct {
		POI   int64   `json:"poi"`
		X     float64 `json:"x"`
		Y     float64 `json:"y"`
		Score float64 `json:"score"`
		S0    float64 `json:"s0"`
		S1    float64 `json:"s1"`
		Agg   int64   `json:"agg"`
	} `json:"results"`
	Stats struct {
		InternalAccesses int   `json:"internal_accesses"`
		LeafAccesses     int   `json:"leaf_accesses"`
		TIAAccesses      int64 `json:"tia_accesses"`
		TIAPhysical      int64 `json:"tia_physical"`
		Scored           int   `json:"scored"`
		CacheHits        int64 `json:"cache_hits"`
		CacheMisses      int64 `json:"cache_misses"`
		ResultCacheHit   bool  `json:"result_cache_hit"`
	} `json:"stats"`
	IO            []obs.IOLine  `json:"io"`
	ElapsedMicros int64         `json:"elapsed_us"`
	Explain       *core.Explain `json:"explain"`
}

// Do runs one query and returns the full response. opts contributes
// NoCache (forwarded as nocache=1), Explain (forwarded as explain=1 and
// filled from the response), and Span (its context rides the traceparent
// header so the server's span tree links to the caller's).
func (r *Remote) Do(ctx context.Context, q core.Query, opts *core.QueryOpts) (*Response, error) {
	if opts == nil {
		opts = &core.QueryOpts{}
	}
	v := url.Values{}
	v.Set("x", strconv.FormatFloat(q.X, 'g', -1, 64))
	v.Set("y", strconv.FormatFloat(q.Y, 'g', -1, 64))
	v.Set("k", strconv.Itoa(q.K))
	v.Set("alpha", strconv.FormatFloat(q.Alpha0, 'g', -1, 64))
	if r.Days > 0 {
		v.Set("days", strconv.FormatInt(r.Days, 10))
	} else {
		v.Set("start", strconv.FormatInt(q.Iq.Start, 10))
		v.Set("end", strconv.FormatInt(q.Iq.End, 10))
	}
	if opts.NoCache {
		v.Set("nocache", "1")
	}
	if opts.Explain != nil {
		v.Set("explain", "1")
	}
	if r.MinLSN > 0 {
		v.Set("min_lsn", strconv.FormatUint(r.MinLSN, 10))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.BaseURL+"/v1/query?"+v.Encode(), nil)
	if err != nil {
		return nil, err
	}
	if opts.Span != nil {
		req.Header.Set("traceparent", opts.Span.Context().Traceparent())
	}
	client := r.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("%w: %v", core.ErrCanceled, ctx.Err())
		}
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		herr := httpapi.ReadError(resp)
		switch resp.StatusCode {
		case http.StatusBadRequest:
			return nil, fmt.Errorf("%w: %w", core.ErrInvalid, herr)
		case http.StatusGatewayTimeout:
			return nil, fmt.Errorf("%w: %w", core.ErrCanceled, herr)
		}
		return nil, herr
	}
	var wire wireResponse
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return nil, fmt.Errorf("client: decoding %s response: %w", r.BaseURL, err)
	}
	out := &Response{IO: wire.IO, ElapsedMicros: wire.ElapsedMicros, Explain: wire.Explain}
	out.Results = make([]core.Result, len(wire.Results))
	for i, res := range wire.Results {
		out.Results[i] = core.Result{
			POI:   core.POI{ID: res.POI, X: res.X, Y: res.Y},
			Score: res.Score, S0: res.S0, S1: res.S1, Agg: res.Agg,
		}
	}
	out.Stats.InternalAccesses = wire.Stats.InternalAccesses
	out.Stats.LeafAccesses = wire.Stats.LeafAccesses
	out.Stats.TIAAccesses = wire.Stats.TIAAccesses
	out.Stats.TIAPhysical = wire.Stats.TIAPhysical
	out.Stats.Scored = wire.Stats.Scored
	out.Stats.CacheHits = wire.Stats.CacheHits
	out.Stats.CacheMisses = wire.Stats.CacheMisses
	out.Stats.ResultCacheHit = wire.Stats.ResultCacheHit
	if opts.Explain != nil && wire.Explain != nil {
		*opts.Explain = *wire.Explain
	}
	return out, nil
}

// QueryCtx implements core.Querier over HTTP.
func (r *Remote) QueryCtx(ctx context.Context, q core.Query, opts *core.QueryOpts) ([]core.Result, core.QueryStats, error) {
	resp, err := r.Do(ctx, q, opts)
	if err != nil {
		return nil, core.QueryStats{}, err
	}
	return resp.Results, resp.Stats, nil
}
