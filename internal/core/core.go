// Package core implements the TAR-tree (temporal aggregate R-tree) and the
// k-nearest neighbor temporal aggregate (kNNTA) query of the paper.
//
// A kNNTA query (q, Iq, α0, k) returns the k POIs minimizing
//
//	f(p) = α0·d(p, q) + α1·(1 − g(p, Iq)),   α1 = 1 − α0,
//
// where d is the Euclidean distance to the query point normalized by the
// diameter of the data space, and g is the temporal aggregate (count of
// check-ins) over the query interval normalized by its per-query upper
// bound. The TAR-tree is an R-tree whose every entry additionally points to
// a temporal index on the aggregate (TIA); query processing is best-first
// search with the consistent lower bound of Property 1.
//
// The package supports the paper's three entry-grouping strategies
// (Section 5): the integral 3D strategy (the TAR-tree proper), grouping by
// spatial extents only (IND-spa), and grouping by aggregate-distribution
// similarity (IND-agg).
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"tartree/internal/aggcache"
	"tartree/internal/geo"
	"tartree/internal/obs"
	"tartree/internal/rstar"
	"tartree/internal/tia"
)

// Grouping selects the entry-grouping strategy.
type Grouping int

const (
	// TAR3D is the paper's integral 3D strategy: entries are grouped as
	// 3-dimensional boxes of two normalized spatial dimensions and one
	// aggregate dimension z = 1 − λ̂/λ̂max.
	TAR3D Grouping = iota
	// IndSpa groups by spatial extents only (a plain 2D R*-tree).
	IndSpa
	// IndAgg groups by aggregate-distribution similarity (Manhattan
	// distance between per-epoch aggregate vectors).
	IndAgg
)

// String implements fmt.Stringer.
func (g Grouping) String() string {
	switch g {
	case TAR3D:
		return "TAR-tree"
	case IndSpa:
		return "IND-spa"
	case IndAgg:
		return "IND-agg"
	}
	return fmt.Sprintf("Grouping(%d)", int(g))
}

// Dims returns the index dimensionality implied by the grouping.
func (g Grouping) Dims() int {
	if g == TAR3D {
		return 3
	}
	return 2
}

// nodeHeaderBytes and coordinate/pointer sizes reproduce the paper's node
// capacities: a 1024-byte node holds 50 two-dimensional or 36
// three-dimensional entries (Section 8, experiments setup).
const (
	nodeHeaderBytes = 16
	coordBytes      = 4
	pointerBytes    = 4
)

// CapacityFor returns the entry capacity of a node of nodeSize bytes
// holding dims-dimensional entries.
func CapacityFor(nodeSize, dims int) int {
	entry := 2*dims*coordBytes + pointerBytes
	c := (nodeSize - nodeHeaderBytes) / entry
	if c < 4 {
		c = 4
	}
	return c
}

// Options configures a TAR-tree.
type Options struct {
	// World is the 2D bounding rectangle of the data space. The ranking
	// function normalizes spatial distances by its diagonal — the paper's
	// "maximum distance between any two points in the space".
	World geo.Rect
	// NodeSize is the R-tree node size in bytes (default 1024).
	NodeSize int
	// Grouping selects the entry-grouping strategy (default TAR3D).
	Grouping Grouping
	// TIA creates the temporal indexes; nil selects a disk B+-tree factory
	// with NodeSize pages and 10 buffer slots per TIA, the paper's setup.
	TIA tia.Factory
	// Semantics matches TIA records against query intervals (default
	// Contained, per Section 4.3).
	Semantics tia.Semantics
	// AggFunc combines the matched epochs' values into g(p, Iq): the
	// default FuncSum counts check-ins; FuncMax ranks by the busiest single
	// epoch. Section 3.1 lists both as supported aggregates. (Max remains
	// consistent with Property 1 because an internal TIA's per-epoch maxima
	// dominate every child's epochs.)
	AggFunc tia.Func
	// EpochStart (t0) and EpochLength discretize time into a uniform grid
	// (Section 3.1). For non-uniform grids set Epochs instead.
	EpochStart  int64
	EpochLength int64
	// Epochs overrides the uniform grid with an arbitrary discretization
	// (e.g. GeometricEpochs). When set, EpochStart/EpochLength are ignored.
	Epochs Epochs
	// DisableReinsert turns off the R*-tree forced reinsertion; the
	// ablation experiments use it to isolate that heuristic's effect.
	DisableReinsert bool
	// Metrics, when set, instruments the tree: queries publish latency
	// histograms and work counters into the registry, and the TIA factory's
	// page buffers publish hit/miss/eviction rates through an attached
	// obs.PageSink. Nil (the default) disables instrumentation entirely.
	// Trees may share one registry, but each should own its TIA factory —
	// attaching one factory to two instrumented trees double-counts its
	// page traffic.
	Metrics *obs.Registry
	// Traces, when set, records every finished query (its latency,
	// result count and attributed I/O breakdown, plus timed spans when the
	// query ran through QueryTraced with a trace) into the ring, which
	// keeps the most recent and slowest records. Nil disables capture.
	// Independent of Metrics; cmd/tarserve serves the ring at
	// /debug/traces.
	Traces *obs.TraceRing
	// Cache, when set, memoizes TIA aggregate probes and whole ranked
	// result sets across queries. The tree bumps the cache's version stamp
	// on every mutation that can change a query answer (check-in ingest,
	// epoch flushes, POI insertion/deletion, rebuilds), so cached answers
	// are always identical to recomputed ones. A cache may be shared by
	// several trees — keys embed tree and TIA identities — but then every
	// sharing tree invalidates it. Nil disables caching.
	Cache *aggcache.Cache
}

func (o *Options) fill() error {
	if o.World.IsEmpty() || !o.World.Valid(2) {
		return errors.New("core: Options.World must be a valid non-empty rectangle")
	}
	if o.NodeSize == 0 {
		o.NodeSize = 1024
	}
	if o.NodeSize < 256 {
		return fmt.Errorf("core: node size %d too small", o.NodeSize)
	}
	if o.Epochs == nil {
		if o.EpochLength <= 0 {
			return errors.New("core: EpochLength must be positive")
		}
		o.Epochs = FixedEpochs{Start: o.EpochStart, Length: o.EpochLength}
	}
	if err := validateEpochs(o.Epochs); err != nil {
		return err
	}
	if o.TIA == nil {
		o.TIA = tia.NewBTreeFactory(o.NodeSize, 10)
	}
	return nil
}

// POI describes a point of interest.
type POI struct {
	ID   int64
	X, Y float64
}

// Result is one kNNTA answer.
type Result struct {
	POI   POI
	Score float64
	// S0 is the normalized spatial distance d(p, q); S1 is 1 − g(p, Iq).
	// Score = α0·S0 + α1·S1. The weight-adjustment algorithm of Section 7.1
	// works directly on these components.
	S0, S1 float64
	// Agg is the raw (unnormalized) aggregate over the query interval.
	Agg int64
}

// Query is a kNNTA query.
type Query struct {
	X, Y   float64      // query point in world coordinates
	Iq     tia.Interval // query time interval
	K      int
	Alpha0 float64 // weight of the spatial distance; α1 = 1 − Alpha0
}

// Validate reports whether the query parameters are usable. Failures wrap
// ErrInvalid, so errors.Is(err, ErrInvalid) identifies bad input.
func (q Query) Validate() error {
	if q.K <= 0 {
		return fmt.Errorf("%w: k must be positive", ErrInvalid)
	}
	if q.Alpha0 <= 0 || q.Alpha0 >= 1 {
		return fmt.Errorf("%w: α0 must be in (0, 1)", ErrInvalid)
	}
	if q.Iq.End <= q.Iq.Start {
		return fmt.Errorf("%w: interval must be non-empty", ErrInvalid)
	}
	return nil
}

// aggData is the augmentation attached to every TAR-tree entry: the
// in-memory mirror of the entry's aggregate distribution (used for grouping
// decisions and rebuilds) and the disk-resident TIA read — and counted — at
// query time.
type aggData struct {
	mirror *tia.Mem
	disk   tia.Index
	// id is a process-unique identity used as the stable cache key for this
	// TIA's memoized aggregates. Identity alone is sound only because every
	// structural or content mutation bumps the cache version stamp.
	id uint64
	// owned marks internal-entry data, whose disk index is destroyed when
	// the entry disappears. Leaf data is shared with the POI registry and
	// outlives tree restructuring.
	owned bool
}

// idSeq issues process-unique identities for aggData instances and trees.
var idSeq atomic.Uint64

func newAggData(mirror *tia.Mem, disk tia.Index, owned bool) *aggData {
	return &aggData{mirror: mirror, disk: disk, id: idSeq.Add(1), owned: owned}
}

// poiState is the per-POI registry record.
type poiState struct {
	poi    POI
	loc    geo.Vector // scaled spatial coordinates
	data   *aggData
	z      float64 // aggregate-dimension coordinate at insertion time
	total  int64   // lifetime aggregate
	inTree bool
}

// Tree is a TAR-tree.
type Tree struct {
	id            uint64 // process-unique, part of result-cache keys
	opts          Options
	rt            *rstar.Tree
	dims          int
	scale         float64 // world → index coordinate scale (uniform, so distances scale too)
	origin        geo.Vector
	maxDistScaled float64 // diagonal of the world in scaled coordinates

	pois      map[int64]*poiState
	lambdaMax float64 // running max of per-epoch mean aggregates λ̂
	// global holds, per epoch, the maximum aggregate over all POIs. Its
	// aggregate over a query interval is the normalization range of
	// g(p, Iq): an inexpensive, grouping-independent upper bound that every
	// index variant shares, so all variants rank identically. (Deleting a
	// POI can leave it loose; Rebuild retightens it.)
	global *aggData

	clock   int64                            // latest time observed
	pending map[tia.Interval]map[int64]int64 // epoch → poi → count

	// frozen is the flat compilation of rt installed by Freeze; queries that
	// opt in (SearchOptions.AllowFrozen) traverse it instead of the pointer
	// tree. Structural mutations drop it; check-in ingest does not (the
	// shared aggregate handles observe new flushes, structure is untouched).
	frozen *rstar.FlatTree

	instr  *instruments   // nil unless Options.Metrics is set
	traces *obs.TraceRing // nil unless Options.Traces is set

	// version counts answer-changing mutations (see Version). Bumped in
	// invalidateCache, read under whatever lock guards the tree.
	version uint64
}

// NewTree creates an empty TAR-tree.
func NewTree(opts Options) (*Tree, error) {
	if err := (&opts).fill(); err != nil {
		return nil, err
	}
	ext := math.Max(opts.World.Max[0]-opts.World.Min[0], opts.World.Max[1]-opts.World.Min[1])
	if ext <= 0 {
		return nil, errors.New("core: world rectangle is degenerate")
	}
	t := &Tree{
		id:      idSeq.Add(1),
		opts:    opts,
		dims:    opts.Grouping.Dims(),
		scale:   1 / ext,
		origin:  opts.World.Min,
		pois:    make(map[int64]*poiState),
		pending: make(map[tia.Interval]map[int64]int64),
		clock:   opts.Epochs.Origin(),
	}
	t.maxDistScaled = opts.World.Diagonal(2) * t.scale
	if opts.Metrics != nil {
		t.instr = newInstruments(opts.Metrics)
		if at, ok := opts.TIA.(sinkAttacher); ok {
			at.AttachSink(obs.NewPageSink(opts.Metrics, "tartree_pagestore"))
		}
		if opts.Cache != nil {
			registerCacheMetrics(opts.Metrics, opts.Cache)
		}
	}
	t.traces = opts.Traces
	disk, err := opts.TIA.New()
	if err != nil {
		return nil, err
	}
	t.global = newAggData(tia.NewMem(), disk, true)

	t.rt = rstar.New(t.rstarConfig())
	return t, nil
}

// rstarConfig builds the R-tree configuration the tree's options imply;
// NewTree, Rebuild and the snapshot-v3 loader (which thaws a frozen layout
// into a pointer tree) must agree on it.
func (t *Tree) rstarConfig() rstar.Config {
	var strat rstar.Strategy
	if t.opts.Grouping == IndAgg {
		strat = &aggStrategy{}
	}
	return rstar.Config{
		Dims:            t.dims,
		Capacity:        CapacityFor(t.opts.NodeSize, t.dims),
		Strategy:        strat,
		Aug:             &treeAug{t: t},
		DisableReinsert: t.opts.DisableReinsert,
	}
}

// Options returns the (filled-in) options the tree was created with.
func (t *Tree) Options() Options { return t.opts }

// Grouping returns the entry-grouping strategy in use.
func (t *Tree) Grouping() Grouping { return t.opts.Grouping }

// Len returns the number of indexed POIs.
func (t *Tree) Len() int { return t.rt.Len() }

// Height returns the R-tree height.
func (t *Tree) Height() int { return t.rt.Height() }

// NodeCount returns the number of leaf and internal R-tree nodes.
func (t *Tree) NodeCount() (leaves, internals int) { return t.rt.NodeCount() }

// Root exposes the underlying R-tree root so query processors (best-first
// search, BBS skyline, collective batches) can traverse and count accesses.
func (t *Tree) Root() *rstar.Node { return t.rt.Root() }

// Dims returns the index dimensionality (2 or 3).
func (t *Tree) Dims() int { return t.dims }

// TIAFactory returns the factory whose stats accumulate TIA page traffic.
func (t *Tree) TIAFactory() tia.Factory { return t.opts.TIA }

// MaxDist returns the normalization constant for spatial distances: the
// diagonal of the world rectangle, in world units.
func (t *Tree) MaxDist() float64 { return t.opts.World.Diagonal(2) }

// scaled maps world coordinates into index coordinates.
func (t *Tree) scaled(x, y float64) geo.Vector {
	return geo.Vector{(x - t.origin[0]) * t.scale, (y - t.origin[1]) * t.scale}
}

// Epochs returns the time discretization in use.
func (t *Tree) Epochs() Epochs { return t.opts.Epochs }

// Clock returns the largest timestamp the tree has observed (check-ins,
// inserted history, explicit flush horizons). Live ingestion uses it as
// "now" when deciding which epochs have fully elapsed.
func (t *Tree) Clock() int64 { return t.clock }

// epochsElapsed returns m, the number of epochs in [t0, tc].
func (t *Tree) epochsElapsed() int64 {
	return t.opts.Epochs.Count(t.clock)
}

// observe advances the tree clock.
func (t *Tree) observe(at int64) {
	if at > t.clock {
		t.clock = at
	}
}

// lambda computes λ̂ = (1/m)·Σ vᵢ, the mean per-epoch aggregate used as the
// aggregate-dimension coordinate source (Section 5.2).
func (t *Tree) lambda(total int64) float64 {
	return float64(total) / float64(t.epochsElapsed())
}

// zCoord maps λ̂ to the aggregate dimension: z = 1 − λ̂/λ̂max.
func (t *Tree) zCoord(lambda float64) float64 {
	if t.lambdaMax <= 0 {
		return 1
	}
	z := 1 - lambda/t.lambdaMax
	if z < 0 {
		z = 0
	}
	return z
}

// InsertPOI indexes a POI together with its check-in history (aggregates
// already bucketed into epochs; zero-aggregate epochs are omitted).
func (t *Tree) InsertPOI(p POI, history []tia.Record) error {
	if _, dup := t.pois[p.ID]; dup {
		return fmt.Errorf("core: POI %d already indexed", p.ID)
	}
	if !t.opts.World.ContainsPoint(geo.Vector{p.X, p.Y}, 2) {
		return fmt.Errorf("core: POI %d at (%g, %g) outside the world rectangle", p.ID, p.X, p.Y)
	}
	disk, err := t.opts.TIA.New()
	if err != nil {
		return err
	}
	data := newAggData(tia.NewMem(), disk, false)
	var total int64
	for _, r := range history {
		if r.Agg == 0 {
			continue
		}
		if err := data.put(r); err != nil {
			return err
		}
		if err := t.raiseGlobal(r); err != nil {
			return err
		}
		total += r.Agg
		t.observe(r.Te)
	}
	st := &poiState{
		poi:   p,
		loc:   t.scaled(p.X, p.Y),
		data:  data,
		total: total,
	}
	lambda := t.lambda(total)
	if lambda > t.lambdaMax {
		t.lambdaMax = lambda
	}
	st.z = t.zCoord(lambda)
	t.pois[p.ID] = st
	st.inTree = true
	t.invalidateCache()
	t.frozen = nil
	return t.rt.Insert(rstar.Entry{
		Rect: t.leafRect(st),
		Item: rstar.Item(p.ID),
		Data: data,
	})
}

// invalidateCache bumps the shared cache's version stamp and the tree's
// own mutation version. Called by every mutation that can change a query
// answer; over-invalidation is harmless, under-invalidation never happens.
func (t *Tree) invalidateCache() {
	t.version++
	t.opts.Cache.Invalidate() // nil-safe
}

// leafRect builds the (point) bounding rectangle of a POI in index space.
func (t *Tree) leafRect(st *poiState) geo.Rect {
	v := st.loc
	if t.dims == 3 {
		v[2] = st.z
	}
	return geo.PointRect(v)
}

// DeletePOI removes a POI and destroys its TIA.
func (t *Tree) DeletePOI(id int64) (bool, error) {
	st, ok := t.pois[id]
	if !ok {
		return false, nil
	}
	removed, err := t.rt.Delete(t.leafRect(st), rstar.Item(id))
	if err != nil {
		return false, err
	}
	if removed {
		delete(t.pois, id)
		t.invalidateCache()
		t.frozen = nil
		if err := st.data.disk.Destroy(); err != nil {
			return true, err
		}
	}
	return removed, nil
}

// Lookup returns the POI registry entry.
func (t *Tree) Lookup(id int64) (POI, bool) {
	st, ok := t.pois[id]
	if !ok {
		return POI{}, false
	}
	return st.poi, true
}

// POIs visits every indexed POI (iteration order is unspecified).
func (t *Tree) POIs(fn func(p POI, total int64) bool) {
	for _, st := range t.pois {
		if !fn(st.poi, st.total) {
			return
		}
	}
}

// put stores a record in both the mirror and the disk index.
func (d *aggData) put(r tia.Record) error {
	if err := d.mirror.Put(r); err != nil {
		return err
	}
	return d.disk.Put(r)
}

// raiseGlobal lifts the tree-wide per-epoch maximum to cover r.
func (t *Tree) raiseGlobal(r tia.Record) error {
	if cur, ok := currentAgg(t.global.mirror, r.Ts); ok && cur >= r.Agg {
		return nil
	}
	return t.global.put(r)
}

// rebuildFrom replaces the contents with the per-epoch maxima over the
// children's mirrors, rewriting the disk index from scratch.
func (d *aggData) rebuildFrom(entries []rstar.Entry, fresh func() (tia.Index, error)) error {
	m := tia.NewMem()
	for _, e := range entries {
		child := e.Data.(*aggData)
		if err := tia.MaxMerge(m, child.mirror); err != nil {
			return err
		}
	}
	if d.disk != nil {
		if err := d.disk.Destroy(); err != nil {
			return err
		}
	}
	disk, err := fresh()
	if err != nil {
		return err
	}
	for _, r := range m.Records() {
		if err := disk.Put(r); err != nil {
			return err
		}
	}
	d.mirror = m
	d.disk = disk
	return nil
}

// treeAug maintains the TIAs of internal entries across R-tree structure
// changes (Section 4.1: an internal entry's TIA stores, per epoch, the
// maximum aggregate of the TIAs in its child node).
type treeAug struct {
	t *Tree
}

// Make implements rstar.Augmenter.
func (a *treeAug) Make(n *rstar.Node, old any) (any, error) {
	d, _ := old.(*aggData)
	if d == nil || !d.owned {
		// Never cannibalize a leaf's data (possible when a subtree shrinks
		// to a single POI); internal entries always own a fresh aggData.
		d = newAggData(nil, nil, true)
	}
	if err := d.rebuildFrom(n.Entries, a.t.opts.TIA.New); err != nil {
		return nil, err
	}
	return d, nil
}

// Extend implements rstar.Augmenter.
func (a *treeAug) Extend(data any, e rstar.Entry) (any, error) {
	d, _ := data.(*aggData)
	if d == nil {
		disk, err := a.t.opts.TIA.New()
		if err != nil {
			return nil, err
		}
		d = newAggData(tia.NewMem(), disk, true)
	}
	src := e.Data.(*aggData)
	for _, r := range src.mirror.Records() {
		cur, _ := currentAgg(d.mirror, r.Ts)
		if r.Agg > cur {
			if err := d.put(r); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// Dispose implements rstar.Augmenter. Leaf aggData stays alive in the POI
// registry; internal aggData owns its disk index.
func (a *treeAug) Dispose(data any) error {
	d, _ := data.(*aggData)
	if d == nil || !d.owned || d.disk == nil {
		return nil
	}
	return d.disk.Destroy()
}

// currentAgg returns the aggregate stored for the epoch starting at ts.
func currentAgg(m *tia.Mem, ts int64) (int64, bool) {
	recs := m.Records()
	lo, hi := 0, len(recs)
	for lo < hi {
		mid := (lo + hi) / 2
		if recs[mid].Ts < ts {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(recs) && recs[lo].Ts == ts {
		return recs[lo].Agg, true
	}
	return 0, false
}

// Rebuild reconstructs the tree from the POI registry, recomputing every
// aggregate-dimension coordinate with the current λ̂max. The paper suggests
// this as the remedy for drift as the LBSN grows (Section 8.2).
func (t *Tree) Rebuild() error {
	t.invalidateCache()
	t.frozen = nil
	if err := t.refreshGlobals(); err != nil {
		return err
	}
	rt := rstar.New(t.rstarConfig())
	old := t.rt
	t.rt = rt
	for _, st := range t.pois {
		st.z = t.zCoord(t.lambda(st.total))
		if err := rt.Insert(rstar.Entry{
			Rect: t.leafRect(st),
			Item: rstar.Item(st.poi.ID),
			Data: st.data,
		}); err != nil {
			t.rt = old
			return err
		}
	}
	return nil
}

// RebuildBulk reconstructs the tree with sort-tile-recursive bulk loading —
// much faster than Rebuild and typically yielding tighter nodes. It packs
// by (possibly 3-dimensional) position, so it applies to the spatial
// groupings only; IndAgg trees fall back to the incremental Rebuild.
func (t *Tree) RebuildBulk() error {
	if t.opts.Grouping == IndAgg {
		return t.Rebuild()
	}
	t.invalidateCache()
	t.frozen = nil
	if err := t.refreshGlobals(); err != nil {
		return err
	}
	entries := make([]rstar.Entry, 0, len(t.pois))
	for _, st := range t.pois {
		st.z = t.zCoord(t.lambda(st.total))
		entries = append(entries, rstar.Entry{
			Rect: t.leafRect(st),
			Item: rstar.Item(st.poi.ID),
			Data: st.data,
		})
	}
	// Map iteration is randomized; sort so rebuilds (and the snapshots
	// written from them) are deterministic for a given POI set.
	sort.Slice(entries, func(i, j int) bool { return entries[i].Item < entries[j].Item })
	rt, err := rstar.BulkLoad(rstar.Config{
		Dims:     t.dims,
		Capacity: CapacityFor(t.opts.NodeSize, t.dims),
		Aug:      &treeAug{t: t},
	}, entries)
	if err != nil {
		return err
	}
	t.rt = rt
	return nil
}

// refreshGlobals recomputes λ̂max and retightens the global per-epoch
// maxima (deletions may have loosened them).
func (t *Tree) refreshGlobals() error {
	t.lambdaMax = 0
	fresh := tia.NewMem()
	for _, st := range t.pois {
		if l := t.lambda(st.total); l > t.lambdaMax {
			t.lambdaMax = l
		}
		if err := tia.MaxMerge(fresh, st.data.mirror); err != nil {
			return err
		}
	}
	if err := t.global.disk.Destroy(); err != nil {
		return err
	}
	disk, err := t.opts.TIA.New()
	if err != nil {
		return err
	}
	for _, r := range fresh.Records() {
		if err := disk.Put(r); err != nil {
			return err
		}
	}
	t.global = newAggData(fresh, disk, true)
	return nil
}

// Check validates the R-tree invariants plus the TAR-tree augmentation
// invariant: every internal entry's mirror dominates (per epoch) the
// mirrors of the entries in its child node. Intended for tests.
func (t *Tree) Check() error {
	if err := t.rt.Check(); err != nil {
		return err
	}
	var walk func(n *rstar.Node) error
	walk = func(n *rstar.Node) error {
		for _, e := range n.Entries {
			if e.Child == nil {
				continue
			}
			parent := e.Data.(*aggData)
			for _, c := range e.Child.Entries {
				child := c.Data.(*aggData)
				for _, r := range child.mirror.Records() {
					got, ok := currentAgg(parent.mirror, r.Ts)
					if !ok || got < r.Agg {
						return fmt.Errorf("core: internal TIA does not dominate child at epoch %d (%d < %d)", r.Ts, got, r.Agg)
					}
				}
			}
			if err := walk(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.rt.Root()); err != nil {
		return err
	}
	// Disk TIAs must mirror the in-memory vectors.
	var derr error
	t.rt.VisitNodes(func(n *rstar.Node) bool {
		for _, e := range n.Entries {
			d := e.Data.(*aggData)
			if d.disk.Len() != d.mirror.Len() {
				derr = fmt.Errorf("core: disk TIA length %d != mirror %d", d.disk.Len(), d.mirror.Len())
				return false
			}
		}
		return true
	})
	if derr != nil {
		return derr
	}
	// The global maxima must dominate every POI's per-epoch aggregates.
	for id, st := range t.pois {
		for _, r := range st.data.mirror.Records() {
			got, ok := currentAgg(t.global.mirror, r.Ts)
			if !ok || got < r.Agg {
				return fmt.Errorf("core: global TIA does not dominate POI %d at epoch %d (%d < %d)", id, r.Ts, got, r.Agg)
			}
		}
	}
	return nil
}
