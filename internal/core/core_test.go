package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"tartree/internal/geo"
	"tartree/internal/tia"
)

func world(x0, y0, x1, y1 float64) geo.Rect {
	return geo.Rect{Min: geo.Vector{x0, y0}, Max: geo.Vector{x1, y1}}
}

func mustTree(t testing.TB, opts Options) *Tree {
	t.Helper()
	tr, err := NewTree(opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func defaultOpts(g Grouping) Options {
	return Options{
		World:       world(0, 0, 100, 100),
		Grouping:    g,
		EpochStart:  0,
		EpochLength: 10,
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := NewTree(Options{}); err == nil {
		t.Error("empty options accepted")
	}
	if _, err := NewTree(Options{World: world(0, 0, 1, 1)}); err == nil {
		t.Error("zero epoch length accepted")
	}
	if _, err := NewTree(Options{World: world(0, 0, 1, 1), EpochLength: 10, NodeSize: 64}); err == nil {
		t.Error("tiny node size accepted")
	}
}

func TestCapacityFor(t *testing.T) {
	// Section 8: 1024-byte nodes hold 50 two-dimensional and 36
	// three-dimensional entries.
	if got := CapacityFor(1024, 2); got != 50 {
		t.Errorf("2D capacity = %d, want 50", got)
	}
	if got := CapacityFor(1024, 3); got != 36 {
		t.Errorf("3D capacity = %d, want 36", got)
	}
}

func TestGroupingString(t *testing.T) {
	if TAR3D.String() != "TAR-tree" || IndSpa.String() != "IND-spa" || IndAgg.String() != "IND-agg" {
		t.Error("bad grouping names")
	}
	if TAR3D.Dims() != 3 || IndSpa.Dims() != 2 || IndAgg.Dims() != 2 {
		t.Error("bad grouping dims")
	}
}

func TestInsertAndLookup(t *testing.T) {
	tr := mustTree(t, defaultOpts(TAR3D))
	if err := tr.InsertPOI(POI{ID: 1, X: 10, Y: 20}, nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.InsertPOI(POI{ID: 1, X: 30, Y: 40}, nil); err == nil {
		t.Error("duplicate POI accepted")
	}
	if err := tr.InsertPOI(POI{ID: 2, X: 200, Y: 0}, nil); err == nil {
		t.Error("out-of-world POI accepted")
	}
	p, ok := tr.Lookup(1)
	if !ok || p.X != 10 || p.Y != 20 {
		t.Errorf("lookup = %+v %v", p, ok)
	}
	if _, ok := tr.Lookup(99); ok {
		t.Error("phantom lookup")
	}
	if tr.Len() != 1 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestCheckInFlow(t *testing.T) {
	tr := mustTree(t, defaultOpts(TAR3D))
	tr.InsertPOI(POI{ID: 1, X: 10, Y: 10}, nil)
	tr.InsertPOI(POI{ID: 2, X: 20, Y: 20}, nil)
	if err := tr.AddCheckIn(99, 5); err == nil {
		t.Error("check-in for unknown POI accepted")
	}
	if err := tr.AddCheckIn(1, -5); err == nil {
		t.Error("check-in before epoch start accepted")
	}
	// Epoch 0 = [0,10): POI 1 gets 3 check-ins, POI 2 gets 1.
	for i := 0; i < 3; i++ {
		if err := tr.AddCheckIn(1, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.AddCheckIn(2, 7)
	if tr.PendingCheckIns() != 4 {
		t.Errorf("pending = %d", tr.PendingCheckIns())
	}
	// Flushing before the epoch ends does nothing.
	if err := tr.FlushEpochs(9); err != nil {
		t.Fatal(err)
	}
	if tr.PendingCheckIns() != 4 {
		t.Error("epoch flushed early")
	}
	if err := tr.FlushEpochs(10); err != nil {
		t.Fatal(err)
	}
	if tr.PendingCheckIns() != 0 {
		t.Error("flush left check-ins pending")
	}
	got, err := tr.Aggregate(1, tia.Interval{Start: 0, End: 10})
	if err != nil || got != 3 {
		t.Errorf("aggregate = %d %v, want 3", got, err)
	}
	if got, _ := tr.Aggregate(2, tia.Interval{Start: 0, End: 10}); got != 1 {
		t.Errorf("poi 2 aggregate = %d", got)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestPaperWorkedExample reproduces the running example of Sections 3.2 and
// 4.1 (Figure 1, Table 1): 12 POIs a..l, three epochs, a query with α0=0.3
// over [t0, tc]. The paper reports f(e) = 0.626, f(f) = 0.058 and the top-1
// result f, using max distance 15.6 (the diagonal of an 11×11 space) with
// d(e,q) = 2.24 and d(f,q) = 3.
func TestPaperWorkedExample(t *testing.T) {
	for _, g := range []Grouping{TAR3D, IndSpa, IndAgg} {
		t.Run(g.String(), func(t *testing.T) {
			tr := mustTree(t, Options{
				World:       world(0, 0, 11, 11),
				Grouping:    g,
				EpochStart:  0,
				EpochLength: 1,
			})
			// Aggregates per Table 1 for epochs [t0,t1), [t1,t2), [t2,tc].
			aggs := map[string][3]int64{
				"a": {1, 1, 0}, "b": {1, 0, 1}, "c": {2, 2, 2}, "d": {2, 0, 0},
				"e": {1, 1, 0}, "f": {3, 5, 4}, "g": {2, 3, 1}, "h": {1, 1, 0},
				"i": {2, 2, 2}, "j": {2, 0, 0}, "k": {1, 0, 1}, "l": {1, 0, 1},
			}
			// Positions approximating Figure 1; only e and f distances are
			// asserted (√5 ≈ 2.24 and 3).
			pos := map[string][2]float64{
				"a": {2, 9}, "b": {4, 10}, "c": {6, 9}, "d": {1, 7},
				"e": {6, 7}, "f": {8, 5}, "g": {9, 6}, "h": {1, 4},
				"i": {9, 3}, "j": {2, 1}, "k": {4, 2}, "l": {1, 1},
			}
			q := Query{X: 5, Y: 5, Iq: tia.Interval{Start: 0, End: 3}, K: 1, Alpha0: 0.3}
			names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
			for i, name := range names {
				var hist []tia.Record
				for ep, a := range aggs[name] {
					if a > 0 {
						hist = append(hist, tia.Record{Ts: int64(ep), Te: int64(ep + 1), Agg: a})
					}
				}
				p := pos[name]
				if err := tr.InsertPOI(POI{ID: int64(i + 1), X: p[0], Y: p[1]}, hist); err != nil {
					t.Fatal(err)
				}
			}
			// d(e,q): e at (6,7), q at (5,5): √5 = 2.236 ≈ the paper's 2.24.
			eID := int64(5) // "e"
			re, err := tr.ScorePOI(q, eID)
			if err != nil {
				t.Fatal(err)
			}
			// f(e) = 0.3·2.236/15.556 + 0.7·(1 − 2/12) = 0.6264...
			if math.Abs(re.Score-0.626) > 0.002 {
				t.Errorf("f(e) = %.4f, want ≈0.626", re.Score)
			}
			if re.Agg != 2 {
				t.Errorf("agg(e) = %d, want 2", re.Agg)
			}
			fID := int64(6) // "f"
			rf, err := tr.ScorePOI(q, fID)
			if err != nil {
				t.Fatal(err)
			}
			// f(f) = 0.3·3/15.556 + 0.7·(1 − 12/12) = 0.0579...
			if math.Abs(rf.Score-0.058) > 0.002 {
				t.Errorf("f(f) = %.4f, want ≈0.058", rf.Score)
			}
			if rf.Agg != 12 {
				t.Errorf("agg(f) = %d, want 12", rf.Agg)
			}
			// The top-1 kNNTA result is f.
			res, stats, err := tr.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != 1 || res[0].POI.ID != fID {
				t.Fatalf("top-1 = %+v, want POI f", res)
			}
			if math.Abs(res[0].Score-rf.Score) > 1e-9 {
				t.Errorf("BFS score %.6f != direct score %.6f", res[0].Score, rf.Score)
			}
			if stats.RTreeAccesses() == 0 {
				t.Error("no node accesses counted")
			}
			if err := tr.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// buildRandomTree populates a tree with n POIs whose check-in histories
// follow a rough power law, and returns the expected epoch count.
func buildRandomTree(t testing.TB, g Grouping, n int, seed int64) (*Tree, *rand.Rand) {
	t.Helper()
	return buildRandomTreeOpts(t, defaultOpts(g), n, seed)
}

func buildRandomTreeOpts(t testing.TB, opts Options, n int, seed int64) (*Tree, *rand.Rand) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tr := mustTree(t, opts)
	const epochs = 20
	for i := 0; i < n; i++ {
		var hist []tia.Record
		// Heavy-tailed total: most POIs small, a few large.
		total := int64(1 + int(math.Pow(r.Float64(), -1.2)))
		if total > 500 {
			total = 500
		}
		for total > 0 {
			ep := int64(r.Intn(epochs))
			c := 1 + r.Int63n(total)
			found := false
			for j := range hist {
				if hist[j].Ts == ep*10 {
					hist[j].Agg += c
					found = true
					break
				}
			}
			if !found {
				hist = append(hist, tia.Record{Ts: ep * 10, Te: ep*10 + 10, Agg: c})
			}
			total -= c
		}
		if err := tr.InsertPOI(POI{ID: int64(i + 1), X: r.Float64() * 100, Y: r.Float64() * 100}, hist); err != nil {
			t.Fatal(err)
		}
	}
	return tr, r
}

// bruteForceQuery ranks every POI with ScorePOI and returns the top k.
func bruteForceQuery(t testing.TB, tr *Tree, q Query) []Result {
	t.Helper()
	gmax, err := tr.gmaxMirror(q.Iq)
	if err != nil {
		t.Fatal(err)
	}
	var all []Result
	for id, st := range tr.pois {
		res, err := tr.scorePOIWith(q, st, gmax)
		if err != nil {
			t.Fatalf("score %d: %v", id, err)
		}
		all = append(all, res)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score < all[j].Score
		}
		return all[i].POI.ID < all[j].POI.ID
	})
	if len(all) > q.K {
		all = all[:q.K]
	}
	return all
}

// TestBFSEqualsBruteForce is the central correctness property: for every
// grouping strategy and random queries, best-first search over the TAR-tree
// returns exactly the brute-force top-k (scores compared; ties may permute
// POIs).
func TestBFSEqualsBruteForce(t *testing.T) {
	for _, g := range []Grouping{TAR3D, IndSpa, IndAgg} {
		t.Run(g.String(), func(t *testing.T) {
			tr, r := buildRandomTree(t, g, 600, 42+int64(g))
			if err := tr.Check(); err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 25; trial++ {
				start := int64(r.Intn(150))
				q := Query{
					X:      r.Float64() * 100,
					Y:      r.Float64() * 100,
					Iq:     tia.Interval{Start: start, End: start + int64(1+r.Intn(200))},
					K:      1 + r.Intn(20),
					Alpha0: 0.05 + 0.9*r.Float64(),
				}
				got, _, err := tr.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				want := bruteForceQuery(t, tr, q)
				if len(got) != len(want) {
					t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
				}
				for i := range got {
					if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
						t.Fatalf("trial %d pos %d: score %.9f want %.9f (q=%+v)",
							trial, i, got[i].Score, want[i].Score, q)
					}
				}
			}
		})
	}
}

// TestCheckInsThenQuery verifies that live ingestion (AddCheckIn + flush)
// produces the same query results as loading the equivalent history.
func TestCheckInsThenQuery(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	live := mustTree(t, defaultOpts(TAR3D))
	hist := mustTree(t, defaultOpts(TAR3D))
	const n = 150
	type ci struct {
		poi int64
		at  int64
	}
	var checkins []ci
	for i := 1; i <= n; i++ {
		x, y := r.Float64()*100, r.Float64()*100
		live.InsertPOI(POI{ID: int64(i), X: x, Y: y}, nil)
		cnt := r.Intn(30)
		hm := map[int64]int64{}
		for j := 0; j < cnt; j++ {
			at := int64(r.Intn(200))
			checkins = append(checkins, ci{int64(i), at})
			hm[at/10]++
		}
		var hrecs []tia.Record
		for ep, c := range hm {
			hrecs = append(hrecs, tia.Record{Ts: ep * 10, Te: ep*10 + 10, Agg: c})
		}
		sort.Slice(hrecs, func(a, b int) bool { return hrecs[a].Ts < hrecs[b].Ts })
		hist.InsertPOI(POI{ID: int64(i), X: x, Y: y}, hrecs)
	}
	for _, c := range checkins {
		if err := live.AddCheckIn(c.poi, c.at); err != nil {
			t.Fatal(err)
		}
	}
	if err := live.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := live.Check(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 15; trial++ {
		q := Query{
			X: r.Float64() * 100, Y: r.Float64() * 100,
			Iq:     tia.Interval{Start: int64(r.Intn(100)), End: int64(100 + r.Intn(150))},
			K:      5,
			Alpha0: 0.3,
		}
		a, _, err := live.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := hist.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if math.Abs(a[i].Score-b[i].Score) > 1e-9 {
				t.Fatalf("trial %d pos %d: %.9f vs %.9f", trial, i, a[i].Score, b[i].Score)
			}
		}
	}
}

func TestDeletePOI(t *testing.T) {
	tr, _ := buildRandomTree(t, TAR3D, 300, 99)
	if ok, err := tr.DeletePOI(9999); err != nil || ok {
		t.Fatalf("delete missing = %v %v", ok, err)
	}
	for i := int64(1); i <= 150; i++ {
		ok, err := tr.DeletePOI(i)
		if err != nil || !ok {
			t.Fatalf("delete %d = %v %v", i, ok, err)
		}
	}
	if tr.Len() != 150 {
		t.Fatalf("len = %d", tr.Len())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	// Remaining POIs still queryable.
	q := Query{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 200}, K: 10, Alpha0: 0.5}
	res, _, err := tr.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("results after delete = %d", len(res))
	}
	for _, r := range res {
		if r.POI.ID <= 150 {
			t.Fatalf("deleted POI %d returned", r.POI.ID)
		}
	}
}

func TestRebuild(t *testing.T) {
	tr, r := buildRandomTree(t, TAR3D, 400, 31)
	q := Query{X: r.Float64() * 100, Y: r.Float64() * 100,
		Iq: tia.Interval{Start: 0, End: 200}, K: 10, Alpha0: 0.3}
	before, _, err := tr.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	after, _, err := tr.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("result counts differ after rebuild")
	}
	for i := range before {
		if math.Abs(before[i].Score-after[i].Score) > 1e-9 {
			t.Fatalf("pos %d: %.9f vs %.9f", i, before[i].Score, after[i].Score)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	tr := mustTree(t, defaultOpts(TAR3D))
	tr.InsertPOI(POI{ID: 1, X: 1, Y: 1}, nil)
	bad := []Query{
		{X: 1, Y: 1, Iq: tia.Interval{Start: 0, End: 10}, K: 0, Alpha0: 0.5},
		{X: 1, Y: 1, Iq: tia.Interval{Start: 0, End: 10}, K: 5, Alpha0: 0},
		{X: 1, Y: 1, Iq: tia.Interval{Start: 0, End: 10}, K: 5, Alpha0: 1},
		{X: 1, Y: 1, Iq: tia.Interval{Start: 10, End: 10}, K: 5, Alpha0: 0.5},
	}
	for i, q := range bad {
		if _, _, err := tr.Query(q); err == nil {
			t.Errorf("query %d accepted: %+v", i, q)
		}
	}
}

func TestEmptyTreeQuery(t *testing.T) {
	tr := mustTree(t, defaultOpts(TAR3D))
	res, _, err := tr.Query(Query{X: 1, Y: 1, Iq: tia.Interval{Start: 0, End: 10}, K: 3, Alpha0: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("results from empty tree: %v", res)
	}
}

func TestKLargerThanN(t *testing.T) {
	tr, _ := buildRandomTree(t, TAR3D, 10, 3)
	res, _, err := tr.Query(Query{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 200}, K: 50, Alpha0: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("got %d results, want all 10", len(res))
	}
	// Results in ascending score order.
	for i := 1; i < len(res); i++ {
		if res[i].Score < res[i-1].Score-1e-12 {
			t.Fatal("results out of order")
		}
	}
}

// TestNodeAccessComparison reproduces the paper's core claim in miniature:
// on power-law data the TAR-tree needs fewer node accesses than IND-spa and
// IND-agg for the same queries.
func TestNodeAccessComparison(t *testing.T) {
	accesses := map[Grouping]int64{}
	for _, g := range []Grouping{TAR3D, IndSpa, IndAgg} {
		tr, _ := buildRandomTree(t, g, 2000, 77)
		r := rand.New(rand.NewSource(123))
		var total int64
		for trial := 0; trial < 50; trial++ {
			q := Query{
				X: r.Float64() * 100, Y: r.Float64() * 100,
				Iq:     tia.Interval{Start: int64(r.Intn(100)), End: int64(120 + r.Intn(80))},
				K:      10,
				Alpha0: 0.3,
			}
			_, stats, err := tr.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			total += int64(stats.RTreeAccesses())
		}
		accesses[g] = total
	}
	t.Logf("node accesses: TAR=%d IND-spa=%d IND-agg=%d",
		accesses[TAR3D], accesses[IndSpa], accesses[IndAgg])
	if accesses[TAR3D] >= accesses[IndSpa] {
		t.Errorf("TAR-tree (%d) not better than IND-spa (%d)", accesses[TAR3D], accesses[IndSpa])
	}
	if accesses[TAR3D] >= accesses[IndAgg] {
		t.Errorf("TAR-tree (%d) not better than IND-agg (%d)", accesses[TAR3D], accesses[IndAgg])
	}
}

func TestQueryStatsCounted(t *testing.T) {
	tr, _ := buildRandomTree(t, TAR3D, 500, 5)
	_, stats, err := tr.Query(Query{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 200}, K: 10, Alpha0: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RTreeAccesses() == 0 || stats.Scored == 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.TIAAccesses == 0 {
		t.Errorf("no TIA accesses counted: %+v", stats)
	}
	if stats.NodeAccesses() != int64(stats.RTreeAccesses())+stats.TIAAccesses {
		t.Error("NodeAccesses arithmetic wrong")
	}
}

func TestMVBTBackedTree(t *testing.T) {
	opts := defaultOpts(TAR3D)
	opts.TIA = tia.NewMVBTFactory(1024, 10)
	tr := mustTree(t, opts)
	r := rand.New(rand.NewSource(15))
	for i := 1; i <= 200; i++ {
		var hist []tia.Record
		for ep := int64(0); ep < 10; ep++ {
			if r.Intn(2) == 0 {
				hist = append(hist, tia.Record{Ts: ep * 10, Te: ep*10 + 10, Agg: r.Int63n(20) + 1})
			}
		}
		if err := tr.InsertPOI(POI{ID: int64(i), X: r.Float64() * 100, Y: r.Float64() * 100}, hist); err != nil {
			t.Fatal(err)
		}
	}
	q := Query{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 100}, K: 5, Alpha0: 0.3}
	got, stats, err := tr.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForceQuery(t, tr, q)
	for i := range want {
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("pos %d: %.9f vs %.9f", i, got[i].Score, want[i].Score)
		}
	}
	if stats.TIAAccesses == 0 {
		t.Error("MVBT TIA accesses not counted")
	}
}

func TestIntersectingSemantics(t *testing.T) {
	opts := defaultOpts(TAR3D)
	opts.Semantics = tia.Intersecting
	tr := mustTree(t, opts)
	tr.InsertPOI(POI{ID: 1, X: 10, Y: 10}, []tia.Record{{Ts: 0, Te: 10, Agg: 5}})
	tr.InsertPOI(POI{ID: 2, X: 90, Y: 90}, []tia.Record{{Ts: 10, Te: 20, Agg: 5}})
	// Interval [5, 8) intersects only POI 1's epoch; under Contained it
	// would match nothing.
	got, err := tr.Aggregate(1, tia.Interval{Start: 5, End: 8})
	if err != nil || got != 5 {
		t.Fatalf("intersecting aggregate = %d %v", got, err)
	}
	res, _, err := tr.Query(Query{X: 50, Y: 50, Iq: tia.Interval{Start: 5, End: 8}, K: 1, Alpha0: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].POI.ID != 1 {
		t.Fatalf("top-1 = %+v, want POI 1", res)
	}
}

func BenchmarkQueryTAR(b *testing.B) {
	tr, _ := buildRandomTree(b, TAR3D, 5000, 1)
	r := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Query{X: r.Float64() * 100, Y: r.Float64() * 100,
			Iq: tia.Interval{Start: 0, End: 200}, K: 10, Alpha0: 0.3}
		if _, _, err := tr.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRebuildBulk(t *testing.T) {
	for _, g := range []Grouping{TAR3D, IndSpa, IndAgg} {
		t.Run(g.String(), func(t *testing.T) {
			tr, r := buildRandomTree(t, g, 400, 61)
			q := Query{X: r.Float64() * 100, Y: r.Float64() * 100,
				Iq: tia.Interval{Start: 0, End: 200}, K: 10, Alpha0: 0.3}
			before, _, err := tr.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.RebuildBulk(); err != nil {
				t.Fatal(err)
			}
			if err := tr.Check(); err != nil {
				t.Fatal(err)
			}
			after, _, err := tr.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(before) != len(after) {
				t.Fatal("result counts differ after bulk rebuild")
			}
			for i := range before {
				if math.Abs(before[i].Score-after[i].Score) > 1e-9 {
					t.Fatalf("pos %d: %.9f vs %.9f", i, before[i].Score, after[i].Score)
				}
			}
			// Mutations after a bulk rebuild keep working.
			if err := tr.InsertPOI(POI{ID: 9001, X: 1, Y: 1}, nil); err != nil {
				t.Fatal(err)
			}
			if err := tr.AddCheckIn(9001, 5); err != nil {
				t.Fatal(err)
			}
			if err := tr.FlushEpochs(10); err != nil {
				t.Fatal(err)
			}
			if err := tr.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMaxAggregateFunc runs the kNNTA query with the max aggregate (the
// busiest single epoch in the interval) and verifies BFS against brute
// force — Property 1 holds for max because internal TIAs store per-epoch
// maxima over supersets of their children's epochs.
func TestMaxAggregateFunc(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	opts := defaultOpts(TAR3D)
	opts.AggFunc = tia.FuncMax
	tr := mustTree(t, opts)
	for i := 1; i <= 300; i++ {
		var hist []tia.Record
		for ep := int64(0); ep < 20; ep++ {
			if r.Intn(3) == 0 {
				hist = append(hist, tia.Record{Ts: ep * 10, Te: ep*10 + 10, Agg: int64(1 + r.Intn(40))})
			}
		}
		if err := tr.InsertPOI(POI{ID: int64(i), X: r.Float64() * 100, Y: r.Float64() * 100}, hist); err != nil {
			t.Fatal(err)
		}
	}
	// The aggregate of a POI is now the max epoch value in the interval.
	got, err := tr.AggregateMirror(1, tia.Interval{Start: 0, End: 200})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	st := tr.pois[1]
	for _, rec := range st.data.mirror.Records() {
		if rec.Agg > want {
			want = rec.Agg
		}
	}
	if got != want {
		t.Fatalf("max aggregate = %d, want %d", got, want)
	}
	for trial := 0; trial < 15; trial++ {
		q := Query{
			X: r.Float64() * 100, Y: r.Float64() * 100,
			Iq:     tia.Interval{Start: int64(r.Intn(100)), End: int64(110 + r.Intn(90))},
			K:      1 + r.Intn(10),
			Alpha0: 0.1 + 0.8*r.Float64(),
		}
		res, _, err := tr.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		wantRes := bruteForceQuery(t, tr, q)
		if len(res) != len(wantRes) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(res), len(wantRes))
		}
		for i := range res {
			if math.Abs(res[i].Score-wantRes[i].Score) > 1e-9 {
				t.Fatalf("trial %d pos %d: %.9f vs %.9f", trial, i, res[i].Score, wantRes[i].Score)
			}
		}
	}
}
