package core

import (
	"context"
	"errors"
	"math"
	"time"

	"tartree/internal/aggcache"
	"tartree/internal/obs"
)

// ErrInvalid is wrapped by every query-validation failure; errors.Is lets
// callers (HTTP handlers, CLIs) map bad input to a client error without
// matching strings.
var ErrInvalid = errors.New("core: invalid query")

// ErrCanceled is wrapped by searches aborted by their context, whether
// canceled or past the deadline. The stats returned alongside it are valid
// partial counts of the work done up to the abort.
var ErrCanceled = errors.New("core: query canceled")

// QueryOpts tunes one QueryCtx call. The zero value (or a nil pointer) is
// the default behavior: cache enabled (when the tree has one), no trace.
type QueryOpts struct {
	// Trace, when non-nil, records timed spans of the search (gmax read,
	// queue pops, node expansions, TIA probes) into it.
	Trace *obs.Trace
	// Span, when non-nil, is the caller's request span: the query stages
	// (cache probe, best-first search, cache store) are recorded as its
	// children in the structured span tree. Orthogonal to Trace, which
	// aggregates per-operation timings rather than building a tree.
	Span *obs.Span
	// NoCache bypasses the tree's shared epoch-versioned cache for this
	// query: no result-cache lookup, no aggregate-cache lookups, no stores.
	NoCache bool
	// SkipAccessCounting suppresses R-tree node-access counting; callers
	// that account for shared node accesses externally set it.
	SkipAccessCounting bool
	// Explain, when non-nil, records the query's EXPLAIN/ANALYZE forensics:
	// the best-first pop log, heap high-water mark, per-level node accesses,
	// probe attribution, f(pk) convergence and the leftover frontier.
	// QueryCtx finishes the recorder on every path — including errors and
	// cancellation, where it carries the partial counts — and folds its
	// compact summary into the trace-ring record. A nil recorder costs one
	// pointer test per instrumented site and allocates nothing.
	Explain *Explain
}

// resultKey identifies a whole ranked result set in the shared cache. It
// embeds the tree identity so one cache can serve several trees.
type resultKey struct {
	tree   uint64
	x, y   float64
	start  int64
	end    int64
	k      int
	alpha0 float64
}

// resultBytes estimates the budget charge of one cached Result (the struct
// plus its share of the slice).
const resultBytes = 72

// QueryCtx answers a kNNTA query with best-first search: the one entry
// point behind Query and QueryTraced. The context is polled on every
// best-first pop; once canceled or past its deadline the search stops
// promptly and the error wraps ErrCanceled, with the stats holding valid
// partial counts. Validation failures wrap ErrInvalid. On a tree with a
// cache (Options.Cache) the whole ranked result is served from — and
// stored into — the cache unless opts.NoCache is set; a result-cache hit
// sets stats.ResultCacheHit and does no tree traversal at all. On an
// instrumented tree (Options.Metrics) the query feeds the registry; with a
// trace ring (Options.Traces) it is recorded there too.
func (t *Tree) QueryCtx(ctx context.Context, q Query, opts *QueryOpts) ([]Result, QueryStats, error) {
	var o QueryOpts
	if opts != nil {
		o = *opts
	}
	var begin time.Time
	if t.instr != nil || t.traces != nil {
		begin = time.Now()
	}
	res, stats, err := t.runQueryCtx(ctx, q, &o)
	o.Explain.Finish(res, &stats, err)
	if t.instr != nil {
		t.instr.record(stats, len(res), time.Since(begin), err)
	}
	if t.traces != nil {
		rec := obs.TraceRecord{
			Query:   describeQuery(q),
			Start:   begin,
			Elapsed: time.Since(begin),
			Results: len(res),
			Spans:   o.Trace.Spans(),
			IO:      IOLines(&stats.IO),
			Explain: o.Explain.Summary(),
		}
		if err != nil {
			rec.Err = err.Error()
		}
		t.traces.Record(rec)
	}
	return res, stats, err
}

func (t *Tree) runQueryCtx(ctx context.Context, q Query, o *QueryOpts) ([]Result, QueryStats, error) {
	// I/O attribution is query-local: the scorer's IOAcct points at
	// stats.IO and rides the IOTag of every TIA page access (including
	// evictions and write-backs that access forces), so nothing here diffs
	// shared factory counters and concurrent queries cannot bleed traffic
	// into each other's stats.
	var stats QueryStats
	if err := q.Validate(); err != nil {
		return nil, stats, err
	}
	cache := t.opts.Cache
	if o.NoCache {
		cache = nil
	}
	var rkey resultKey
	var rhash uint64
	if cache != nil {
		ps := o.Span.StartChild("cache_probe")
		rkey = resultKey{
			tree: t.id, x: q.X, y: q.Y,
			start: q.Iq.Start, end: q.Iq.End,
			k: q.K, alpha0: q.Alpha0,
		}
		rhash = hashResultKey(rkey)
		v, ok := cache.Get(rhash, rkey)
		stats.IO.AddRead(resultCacheTag, ok)
		o.Explain.recordResultCacheProbe(ok)
		ps.SetAttr("hit", ok)
		ps.End()
		if ok {
			stats.ResultCacheHit = true
			stats.CacheHits++
			cached := v.([]Result)
			return append([]Result(nil), cached...), stats, nil
		}
		stats.CacheMisses++
	}
	ss := o.Span.StartChild("search")
	res, err := t.searchTopKCtx(ctx, q, o, &stats)
	if ss != nil {
		ss.SetAttr("results", len(res))
		ss.SetAttr("node_accesses", stats.NodeAccesses())
		ss.End()
	}
	if err != nil {
		return res, stats, err
	}
	if cache != nil {
		cs := o.Span.StartChild("cache_store")
		cache.Put(rhash, rkey, append([]Result(nil), res...), int64(len(res)+1)*resultBytes)
		cs.End()
	}
	return res, stats, nil
}

func (t *Tree) searchTopKCtx(ctx context.Context, q Query, o *QueryOpts, stats *QueryStats) ([]Result, error) {
	s, err := t.NewSearchWith(q, SearchOptions{
		Stats:              stats,
		Trace:              o.Trace,
		NoCache:            o.NoCache,
		SkipAccessCounting: o.SkipAccessCounting,
		Explain:            o.Explain,
		Ctx:                ctx,
		AllowFrozen:        true,
	})
	if err != nil {
		return nil, err
	}
	// Deferred so a canceled search still snapshots what the bound had
	// pruned up to the abort: explain of a canceled query reports the
	// partial frontier rather than nothing.
	defer o.Explain.captureFrontier(s)
	results := make([]Result, 0, q.K)
	for len(results) < q.K {
		r, err := s.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			break
		}
		results = append(results, *r)
		o.Explain.recordResult(len(results), r.Score)
	}
	return results, nil
}

func hashResultKey(k resultKey) uint64 {
	h := aggcache.Mix(aggcache.Seed, k.tree)
	h = aggcache.Mix(h, math.Float64bits(k.x))
	h = aggcache.Mix(h, math.Float64bits(k.y))
	h = aggcache.Mix(h, uint64(k.start))
	h = aggcache.Mix(h, uint64(k.end))
	h = aggcache.Mix(h, uint64(k.k))
	return aggcache.Mix(h, math.Float64bits(k.alpha0))
}
