package core

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"tartree/internal/aggcache"
	"tartree/internal/geo"
	"tartree/internal/pagestore"
	"tartree/internal/tia"
)

// stepCtx is a context whose Err flips to Canceled after limit polls: it
// lets a test cancel a search at a deterministic point mid-flight, without
// timing races.
type stepCtx struct {
	context.Context
	polls atomic.Int64
	limit int64
}

func (c *stepCtx) Err() error {
	if c.polls.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

func exhaustiveQuery(tr *Tree) Query {
	return Query{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 600}, K: tr.Len(), Alpha0: 0.5}
}

func TestQueryCtxCanceledBeforeStart(t *testing.T) {
	tr := buildAccountingTree(t, TAR3D)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, stats, err := tr.QueryCtx(ctx, exhaustiveQuery(tr), nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(res) != 0 {
		t.Errorf("canceled query returned %d results", len(res))
	}
	// Only the root read can have happened before the first poll.
	if stats.RTreeAccesses() > 1 {
		t.Errorf("pre-canceled query did %d node accesses", stats.RTreeAccesses())
	}
}

func TestQueryCtxExpiredDeadline(t *testing.T) {
	tr := buildAccountingTree(t, TAR3D)
	ctx, cancel := context.WithTimeout(context.Background(), -1)
	defer cancel()
	_, _, err := tr.QueryCtx(ctx, exhaustiveQuery(tr), nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("ctx.Err() = %v", ctx.Err())
	}
}

// TestQueryCtxMidSearchCancellation cancels an exhaustive search after a
// fixed number of best-first pops and checks the three promises of the
// contract: the error wraps ErrCanceled, the stats are valid partial counts
// (some work done, strictly less than a full run), and nothing leaks — the
// canceled query's attributed I/O still reconciles with the factory, and
// the tree keeps answering correctly afterwards.
func TestQueryCtxMidSearchCancellation(t *testing.T) {
	tr := buildAccountingTreeOpts(t, Options{
		World:       geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{100, 100}},
		NodeSize:    256,
		Grouping:    TAR3D,
		EpochStart:  0,
		EpochLength: 100,
		TIA:         tia.NewBTreeFactory(256, 10),
	})
	q := exhaustiveQuery(tr)
	full, fullStats, err := tr.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	fac := tr.TIAFactory()
	fac.ResetStats()

	ctx := &stepCtx{Context: context.Background(), limit: 10}
	res, stats, err := tr.QueryCtx(ctx, q, nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(res) != 0 {
		t.Errorf("canceled query returned %d results", len(res))
	}
	if got := ctx.polls.Load(); got != ctx.limit+1 {
		t.Errorf("search did %d more pops after cancellation", got-ctx.limit-1)
	}
	if stats.RTreeAccesses() == 0 {
		t.Error("partial stats recorded no work")
	}
	if stats.RTreeAccesses() >= fullStats.RTreeAccesses() {
		t.Errorf("canceled after %d pops but did %d node accesses (full run: %d)",
			ctx.limit, stats.RTreeAccesses(), fullStats.RTreeAccesses())
	}

	// No leaked accounting: the canceled query's breakdown plus a completed
	// query's breakdown must equal the factory's delta exactly, and the
	// completed query must reproduce the pre-cancellation answer.
	after, afterStats, err := tr.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, full) {
		t.Error("query after cancellation differs from the one before")
	}
	var sum pagestore.IOBreakdown
	sum.Add(&stats.IO)
	sum.Add(&afterStats.IO)
	sum[pagestore.CompRTreeInternal] = [pagestore.MaxIOLevels]pagestore.IOCell{}
	sum[pagestore.CompRTreeLeaf] = [pagestore.MaxIOLevels]pagestore.IOCell{}
	if got := fac.Breakdown(); got != sum {
		t.Errorf("factory delta != canceled + completed breakdowns:\n got %v\nwant %v", got, sum)
	}
}

// cacheTestBackends mirrors the conservation test's backend set plus the
// in-memory TIA, so equivalence is proven for every storage engine.
func cacheTestBackends() map[string]func() tia.Factory {
	return map[string]func() tia.Factory{
		"mem":   func() tia.Factory { return tia.NewMemFactory() },
		"btree": func() tia.Factory { return tia.NewBTreeFactory(256, 10) },
		"mvbt":  func() tia.Factory { return tia.NewMVBTFactory(1024, 10) },
	}
}

// TestCacheEquivalence is the correctness contract of the tentpole: for
// every grouping × backend, cached answers are byte-for-byte identical to
// uncached ones — on a cold cache, on a warm cache (whole-result hit), and
// again after a live ingest invalidates every cached aggregate.
func TestCacheEquivalence(t *testing.T) {
	queries := []Query{
		{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 700}, K: 10, Alpha0: 0.5},
		{X: 10, Y: 80, Iq: tia.Interval{Start: 100, End: 400}, K: 5, Alpha0: 0.3},
		{X: 95, Y: 5, Iq: tia.Interval{Start: 200, End: 700}, K: 3, Alpha0: 0.7},
	}
	for _, g := range []Grouping{TAR3D, IndSpa, IndAgg} {
		for name, newFac := range cacheTestBackends() {
			t.Run(g.String()+"/"+name, func(t *testing.T) {
				cache := aggcache.New(1 << 20)
				tr := buildAccountingTreeOpts(t, Options{
					World:       geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{100, 100}},
					NodeSize:    256,
					Grouping:    g,
					EpochStart:  0,
					EpochLength: 100,
					TIA:         newFac(),
					Cache:       cache,
				})
				ctx := context.Background()
				nocache := &QueryOpts{NoCache: true}
				for i, q := range queries {
					want, wantStats, err := tr.QueryCtx(ctx, q, nocache)
					if err != nil {
						t.Fatal(err)
					}
					cold, coldStats, err := tr.QueryCtx(ctx, q, nil)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(cold, want) {
						t.Fatalf("query %d: cold cached result differs from uncached", i)
					}
					if coldStats.ResultCacheHit {
						t.Errorf("query %d: cold query reported a result-cache hit", i)
					}
					if coldStats.TIAAccesses > wantStats.TIAAccesses {
						t.Errorf("query %d: cold cached query did %d backend probes, uncached did %d",
							i, coldStats.TIAAccesses, wantStats.TIAAccesses)
					}
					warm, warmStats, err := tr.QueryCtx(ctx, q, nil)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(warm, want) {
						t.Fatalf("query %d: warm cached result differs from uncached", i)
					}
					if !warmStats.ResultCacheHit || warmStats.CacheHits == 0 {
						t.Errorf("query %d: warm query not served from the result cache: %+v", i, warmStats)
					}
					if warmStats.TIAAccesses != 0 || warmStats.RTreeAccesses() != 0 {
						t.Errorf("query %d: result-cache hit still traversed: %+v", i, warmStats)
					}
				}

				// A result-cache hit must hand out a private copy: mutating it
				// cannot poison later answers.
				warm, _, err := tr.QueryCtx(ctx, queries[0], nil)
				if err != nil {
					t.Fatal(err)
				}
				clean := append([]Result(nil), warm...)
				for i := range warm {
					warm[i].Score = -1
					warm[i].POI.ID = -1
				}
				again, _, err := tr.QueryCtx(ctx, queries[0], nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(again, clean) {
					t.Error("mutating a cached result leaked into the cache")
				}

				// Live ingest: new check-ins for the first answer's POIs, folded
				// into a fresh epoch, must invalidate every cached entry. The
				// first post-ingest cached query may not be a stale hit, and it
				// must again equal the uncached answer.
				version := cache.Version()
				top, _, err := tr.QueryCtx(ctx, queries[0], &QueryOpts{NoCache: true})
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range top[:2] {
					for i := 0; i < 50; i++ {
						if err := tr.AddCheckIn(r.POI.ID, 650); err != nil {
							t.Fatal(err)
						}
					}
				}
				if err := tr.FlushEpochs(700); err != nil {
					t.Fatal(err)
				}
				if cache.Version() <= version {
					t.Fatalf("ingest did not bump the cache version (%d -> %d)", version, cache.Version())
				}
				for i, q := range queries {
					want, _, err := tr.QueryCtx(ctx, q, nocache)
					if err != nil {
						t.Fatal(err)
					}
					got, gotStats, err := tr.QueryCtx(ctx, q, nil)
					if err != nil {
						t.Fatal(err)
					}
					if gotStats.ResultCacheHit {
						t.Errorf("query %d: stale result served after ingest invalidation", i)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("query %d: post-ingest cached result differs from uncached", i)
					}
				}
			})
		}
	}
}

// TestCacheInvalidationOnMutation pins the conservative invalidation rule:
// every mutation of the tree — buffered check-in, epoch flush, POI insert
// and delete, rebuilds — bumps the shared cache's version.
func TestCacheInvalidationOnMutation(t *testing.T) {
	cache := aggcache.New(1 << 20)
	opts := defaultOpts(TAR3D)
	opts.Cache = cache
	tr := mustTree(t, opts)
	bumped := func(step string, mutate func() error) {
		t.Helper()
		before := cache.Version()
		if err := mutate(); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		if cache.Version() <= before {
			t.Errorf("%s did not bump the cache version", step)
		}
	}
	bumped("InsertPOI", func() error { return tr.InsertPOI(POI{ID: 1, X: 10, Y: 10}, nil) })
	bumped("AddCheckIn", func() error { return tr.AddCheckIn(1, 5) })
	bumped("FlushEpochs", func() error { return tr.FlushEpochs(10) })
	bumped("Rebuild", func() error { return tr.Rebuild() })
	bumped("DeletePOI", func() error {
		removed, err := tr.DeletePOI(1)
		if err == nil && !removed {
			t.Fatal("DeletePOI found nothing")
		}
		return err
	})
}

// TestCacheConservation extends the attribution conservation check to a
// cache-enabled tree: cache probes are attributed to their own component
// (agg-cache) and reconcile with the flat CacheHits/CacheMisses counters,
// while the TIA cells still count only real backend reads and still sum to
// exactly the factory's delta.
func TestCacheConservation(t *testing.T) {
	cache := aggcache.New(1 << 20)
	tr := buildAccountingTreeOpts(t, Options{
		World:       geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{100, 100}},
		NodeSize:    256,
		Grouping:    TAR3D,
		EpochStart:  0,
		EpochLength: 100,
		TIA:         tia.NewBTreeFactory(256, 10),
		Cache:       cache,
	})
	fac := tr.TIAFactory()
	fac.ResetStats()
	queries := []Query{
		{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 600}, K: 10, Alpha0: 0.5},
		{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 600}, K: 10, Alpha0: 0.5}, // warm repeat
		{X: 10, Y: 80, Iq: tia.Interval{Start: 100, End: 400}, K: 5, Alpha0: 0.3},
	}
	var sum pagestore.IOBreakdown
	for i, q := range queries {
		_, stats, err := tr.QueryCtx(context.Background(), q, nil)
		if err != nil {
			t.Fatal(err)
		}
		var tiaReads, cacheReads, cacheHits int64
		stats.IO.Each(func(c pagestore.Component, level int, cell pagestore.IOCell) {
			switch c {
			case pagestore.CompTIABTree, pagestore.CompTIAMVBT:
				tiaReads += cell.Hits + cell.Misses
			case pagestore.CompAggCache:
				cacheReads += cell.Hits + cell.Misses
				cacheHits += cell.Hits
			case pagestore.CompUnknown:
				t.Errorf("query %d: unattributed traffic at level %d: %+v", i, level, cell)
			}
		})
		if tiaReads != stats.TIAAccesses {
			t.Errorf("query %d: tia cells sum to %d, flat counter says %d", i, tiaReads, stats.TIAAccesses)
		}
		if cacheReads != stats.CacheHits+stats.CacheMisses {
			t.Errorf("query %d: agg-cache cells sum to %d probes, flat counters say %d",
				i, cacheReads, stats.CacheHits+stats.CacheMisses)
		}
		if cacheHits != stats.CacheHits {
			t.Errorf("query %d: agg-cache cells hold %d hits, flat counter says %d", i, cacheHits, stats.CacheHits)
		}
		sum.Add(&stats.IO)
	}
	sum[pagestore.CompRTreeInternal] = [pagestore.MaxIOLevels]pagestore.IOCell{}
	sum[pagestore.CompRTreeLeaf] = [pagestore.MaxIOLevels]pagestore.IOCell{}
	sum[pagestore.CompAggCache] = [pagestore.MaxIOLevels]pagestore.IOCell{}
	if got := fac.Breakdown(); got != sum {
		t.Errorf("factory delta != sum of per-query breakdowns with the cache on:\n got %v\nwant %v", got, sum)
	}
	snap := cache.Snapshot()
	if snap.Hits == 0 || snap.Entries == 0 {
		t.Errorf("cache saw no traffic: %+v", snap)
	}
}
