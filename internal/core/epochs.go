package core

import (
	"errors"
	"fmt"

	"tartree/internal/tia"
)

// Epochs discretizes the time axis (Section 3.1: "each epoch may be a
// second, an hour or of varied lengths ... depending on the application").
// Because the TIA indexes ⟨ts, te, agg⟩ intervals rather than timestamps,
// the TAR-tree supports non-uniform epoch grids — one of the paper's
// differentiators against the aRB-tree, whose B-tree cannot index time
// intervals.
type Epochs interface {
	// EpochOf returns the half-open epoch [start, end) containing t.
	// t must not precede Origin.
	EpochOf(t int64) tia.Interval
	// Count returns the number of epochs that begin in [Origin, until].
	Count(until int64) int64
	// Origin returns the start of the first epoch (the application's t0).
	Origin() int64
}

// FixedEpochs is the uniform grid: epoch i covers
// [Start + i·Length, Start + (i+1)·Length).
type FixedEpochs struct {
	Start  int64
	Length int64
}

// EpochOf implements Epochs.
func (e FixedEpochs) EpochOf(t int64) tia.Interval {
	i := (t - e.Start) / e.Length
	s := e.Start + i*e.Length
	return tia.Interval{Start: s, End: s + e.Length}
}

// Count implements Epochs.
func (e FixedEpochs) Count(until int64) int64 {
	if until <= e.Start {
		return 1
	}
	return (until-e.Start)/e.Length + 1
}

// Origin implements Epochs.
func (e FixedEpochs) Origin() int64 { return e.Start }

// GeometricEpochs is the varied-length grid the paper sketches ("one hour,
// two hours, four hours, eight hours and so on"): epoch i has length
// First·2^i, so epoch i covers [Start + First·(2^i − 1), Start + First·(2^{i+1} − 1)).
type GeometricEpochs struct {
	Start int64
	First int64 // length of the first epoch
}

// EpochOf implements Epochs.
func (e GeometricEpochs) EpochOf(t int64) tia.Interval {
	off := t - e.Start
	// Find i with First·(2^i − 1) <= off < First·(2^{i+1} − 1).
	var i uint
	for ; i < 62; i++ {
		if off < e.First*((1<<(i+1))-1) {
			break
		}
	}
	lo := e.Start + e.First*((1<<i)-1)
	hi := e.Start + e.First*((1<<(i+1))-1)
	return tia.Interval{Start: lo, End: hi}
}

// Count implements Epochs.
func (e GeometricEpochs) Count(until int64) int64 {
	if until <= e.Start {
		return 1
	}
	n := int64(0)
	for i := uint(0); i < 62; i++ {
		if e.Start+e.First*((1<<i)-1) >= until {
			break
		}
		n++
	}
	if n == 0 {
		n = 1
	}
	return n
}

// Origin implements Epochs.
func (e GeometricEpochs) Origin() int64 { return e.Start }

// validateEpochs checks an Epochs implementation for basic sanity.
func validateEpochs(e Epochs) error {
	if e == nil {
		return errors.New("core: nil epochs")
	}
	iv := e.EpochOf(e.Origin())
	if iv.Start != e.Origin() || iv.End <= iv.Start {
		return fmt.Errorf("core: epochs misaligned at origin: %+v", iv)
	}
	return nil
}
