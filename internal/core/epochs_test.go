package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tartree/internal/tia"
)

func TestFixedEpochs(t *testing.T) {
	e := FixedEpochs{Start: 100, Length: 10}
	cases := []struct {
		t    int64
		want tia.Interval
	}{
		{100, tia.Interval{Start: 100, End: 110}},
		{109, tia.Interval{Start: 100, End: 110}},
		{110, tia.Interval{Start: 110, End: 120}},
		{205, tia.Interval{Start: 200, End: 210}},
	}
	for _, c := range cases {
		if got := e.EpochOf(c.t); got != c.want {
			t.Errorf("EpochOf(%d) = %v, want %v", c.t, got, c.want)
		}
	}
	if got := e.Count(100); got != 1 {
		t.Errorf("Count(origin) = %d", got)
	}
	if got := e.Count(105); got != 1 {
		t.Errorf("Count(105) = %d", got)
	}
	if got := e.Count(110); got != 2 {
		t.Errorf("Count(110) = %d", got)
	}
	if got := e.Count(129); got != 3 {
		t.Errorf("Count(129) = %d", got)
	}
	if e.Origin() != 100 {
		t.Error("origin")
	}
}

func TestGeometricEpochs(t *testing.T) {
	// First = 1h: epochs [0,1h), [1h,3h), [3h,7h), [7h,15h), ...
	const h = 3600
	e := GeometricEpochs{Start: 0, First: h}
	cases := []struct {
		t    int64
		want tia.Interval
	}{
		{0, tia.Interval{Start: 0, End: h}},
		{h - 1, tia.Interval{Start: 0, End: h}},
		{h, tia.Interval{Start: h, End: 3 * h}},
		{3 * h, tia.Interval{Start: 3 * h, End: 7 * h}},
		{6*h + 30, tia.Interval{Start: 3 * h, End: 7 * h}},
		{7 * h, tia.Interval{Start: 7 * h, End: 15 * h}},
	}
	for _, c := range cases {
		if got := e.EpochOf(c.t); got != c.want {
			t.Errorf("EpochOf(%d) = %v, want %v", c.t, got, c.want)
		}
	}
	if got := e.Count(0); got != 1 {
		t.Errorf("Count(0) = %d", got)
	}
	if got := e.Count(h + 1); got != 2 {
		t.Errorf("Count(h+1) = %d", got)
	}
	if got := e.Count(8 * h); got != 4 {
		t.Errorf("Count(8h) = %d", got)
	}
}

// Property: for any epoch scheme, EpochOf(t) contains t, epochs tile the
// axis (EpochOf of the end is the next epoch), and Count is monotone.
func TestEpochsProperties(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	schemes := []Epochs{
		FixedEpochs{Start: 0, Length: 7},
		FixedEpochs{Start: -50, Length: 13},
		GeometricEpochs{Start: 10, First: 3},
	}
	for _, e := range schemes {
		if err := validateEpochs(e); err != nil {
			t.Fatal(err)
		}
		f := func() bool {
			at := e.Origin() + int64(r.Intn(1_000_000))
			iv := e.EpochOf(at)
			if !(iv.Start <= at && at < iv.End) {
				return false
			}
			next := e.EpochOf(iv.End)
			if next.Start != iv.End {
				return false
			}
			return e.Count(at) <= e.Count(at+1000)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%T: %v", e, err)
		}
	}
}

// TestGeometricEpochTree runs the whole pipeline on a varied-length grid:
// live ingestion, TIA aggregation and BFS-vs-brute-force equality. This is
// the capability the paper claims the aRB-tree lacks.
func TestGeometricEpochTree(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	opts := Options{
		World:    world(0, 0, 100, 100),
		Grouping: TAR3D,
		Epochs:   GeometricEpochs{Start: 0, First: 10},
	}
	tr := mustTree(t, opts)
	const n = 200
	for i := 1; i <= n; i++ {
		if err := tr.InsertPOI(POI{ID: int64(i), X: r.Float64() * 100, Y: r.Float64() * 100}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Check-ins over [0, 10000): epochs 10, 20, 40, ... long.
	for i := 0; i < 5000; i++ {
		id := int64(1 + r.Intn(n))
		at := int64(r.Intn(10000))
		if err := tr.AddCheckIn(id, at); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	// Aggregates against a brute-force bucketing.
	e := opts.Epochs
	iv := tia.Interval{Start: 30, End: 5000}
	for id := int64(1); id <= 10; id++ {
		got, err := tr.Aggregate(id, iv)
		if err != nil {
			t.Fatal(err)
		}
		mirror, err := tr.AggregateMirror(id, iv)
		if err != nil {
			t.Fatal(err)
		}
		if got != mirror {
			t.Fatalf("POI %d: disk %d != mirror %d", id, got, mirror)
		}
		_ = e
	}
	// BFS equals brute force under the varied grid.
	for trial := 0; trial < 10; trial++ {
		q := Query{
			X: r.Float64() * 100, Y: r.Float64() * 100,
			Iq:     tia.Interval{Start: int64(r.Intn(100)), End: int64(1000 + r.Intn(9000))},
			K:      5,
			Alpha0: 0.3,
		}
		got, _, err := tr.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceQuery(t, tr, q)
		for i := range want {
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("trial %d pos %d: %.9f vs %.9f", trial, i, got[i].Score, want[i].Score)
			}
		}
	}
}

func TestEpochsValidation(t *testing.T) {
	if err := validateEpochs(nil); err == nil {
		t.Error("nil epochs accepted")
	}
	if err := validateEpochs(FixedEpochs{Start: 0, Length: 10}); err != nil {
		t.Error(err)
	}
}
