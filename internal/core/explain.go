package core

import (
	"sort"

	"tartree/internal/obs"
)

// Explain is the per-query EXPLAIN/ANALYZE recorder: attached to one
// QueryCtx call via QueryOpts.Explain, it captures the best-first search
// forensics pop by pop — which nodes were expanded at which Property-1
// lower bound, how the kth-score f(pk) converged, how deep the priority
// queue grew — plus the probe attribution the query-local IOAcct cells
// already collect, and (when a planner ran first) the Section-6 cost-model
// estimates to compare the actuals against.
//
// A nil *Explain is the disabled state: every method no-ops, so the query
// path pays one pointer test per instrumented site and allocates nothing
// (pinned by TestExplainNilRecorderNoAllocs). The recorder is bound to a
// single query and is not safe for concurrent use.
//
// Counts (Pops, HeapMax, NodeAccessesByLevel, probe counters) are always
// exact; the pop-by-pop log and the leftover frontier are capped at
// ExplainMaxPops/ExplainMaxFrontier entries with the Truncated flags set,
// so an adversarially deep search cannot balloon the recorder.
type Explain struct {
	// Plan carries the cost-model estimates when a planner ran before the
	// query; nil when the query executed unplanned.
	Plan *ExplainPlan `json:"plan,omitempty"`

	// Pops counts every priority-queue pop; HeapMax is the queue's
	// high-water mark over the whole search.
	Pops    int `json:"pops"`
	HeapMax int `json:"heap_max"`
	// NodeAccessesByLevel counts R-tree node reads by level (index 0 =
	// leaf), root read included. Its sum equals the query's
	// InternalAccesses + LeafAccesses.
	NodeAccessesByLevel []int64 `json:"node_accesses_by_level,omitempty"`
	// PopLog is the pop-by-pop record of the search (capped; counts above
	// stay exact). Level -1 marks a POI pop — in the top-k search every
	// popped POI is emitted as the next result.
	PopLog       []ExplainPop `json:"pop_log,omitempty"`
	LogTruncated bool         `json:"pop_log_truncated,omitempty"`
	// Convergence is the f(pk) timeline: one point per emitted result,
	// with the pop at which it surfaced. The last point's score is the
	// actual f(pk).
	Convergence []ExplainPoint `json:"convergence,omitempty"`
	// Frontier is the priority queue left over when the search stopped —
	// the subtrees the Property-1 bound pruned (never expanded), in
	// ascending bound order (capped). FrontierSize is the exact count.
	Frontier          []ExplainNode `json:"frontier,omitempty"`
	FrontierSize      int           `json:"frontier_size"`
	FrontierTruncated bool          `json:"frontier_truncated,omitempty"`

	// Probe attribution, recorded at the scorer's TIA and cache probe
	// sites. These reconcile exactly with the query's QueryStats
	// (TestExplainConservation).
	TIAReads       int64 `json:"tia_reads"`
	TIAPhysical    int64 `json:"tia_physical"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	ResultCacheHit bool  `json:"result_cache_hit,omitempty"`

	// Set by Finish.
	Results  int          `json:"results"`
	ActualFk float64      `json:"actual_fk"`
	Err      string       `json:"error,omitempty"`
	IO       []obs.IOLine `json:"io,omitempty"`

	// Shards carries the per-shard attribution when the query ran through
	// the scatter-gather coordinator (internal/shard): one row per shard,
	// in shard order. Empty for local execution.
	Shards []ExplainShard `json:"shards,omitempty"`

	done bool
}

// ExplainShard is one shard's contribution to a scatter-gather query: how
// many rounds it served, how much search work it did, and whether the
// global bound pruned its frontier before exhaustion. The coordinator
// fills one per shard; remote explains round-trip it through JSON.
type ExplainShard struct {
	// Shard is the shard index (position in the coordinator's shard list);
	// URL is its base endpoint.
	Shard int    `json:"shard"`
	URL   string `json:"url"`
	// Results counts candidates this shard streamed to the coordinator;
	// Rounds counts the batch round-trips it served, and BoundPushes the
	// rounds that carried a (tightened) global bound down to it.
	Results     int `json:"results"`
	Rounds      int `json:"rounds"`
	BoundPushes int `json:"bound_pushes"`
	// NodeAccesses and TIAReads are the shard-local search work deltas
	// summed over all rounds.
	NodeAccesses int64 `json:"node_accesses"`
	TIAReads     int64 `json:"tia_reads"`
	// Pruned reports the shard stopped because its best frontier bound
	// reached the global kth score (rather than exhausting its frontier);
	// Restarts counts sessions abandoned to index-version drift.
	Pruned   bool `json:"pruned,omitempty"`
	Restarts int  `json:"restarts,omitempty"`
	// ElapsedMicros is the coordinator-observed wall time spent waiting on
	// this shard across all rounds (straggler attribution).
	ElapsedMicros int64 `json:"elapsed_micros"`
}

// ExplainPlan is the planner's side of an explain: the Section-6 estimates
// and engine choice made before the query ran. internal/planner fills it;
// core only carries it so one object travels the whole pipeline.
type ExplainPlan struct {
	// Engine names the chosen execution strategy ("tar-tree" or
	// "sequential-scan").
	Engine string `json:"engine"`
	// EstimatedFk is the Section-6.2 estimate of the kth result's score.
	EstimatedFk float64 `json:"est_fk"`
	// EstimatedLeafAccesses is the Section-6.3 leaf node-access estimate;
	// EstimatedNodeAccesses adds the proportional internal accesses and
	// the normalization read.
	EstimatedLeafAccesses float64 `json:"est_leaf_accesses"`
	EstimatedNodeAccesses float64 `json:"est_node_accesses"`
	// IndexCost and ScanCost are the compared costs, in microseconds when
	// the planner is calibrated, otherwise in abstract page units.
	IndexCost  float64 `json:"index_cost"`
	ScanCost   float64 `json:"scan_cost"`
	Calibrated bool    `json:"calibrated,omitempty"`
	// Bands is the Section-6.3 node-access estimation detail: one row per
	// slab of cubic leaf nodes intersected with the search cone.
	Bands []ExplainBand `json:"bands,omitempty"`
}

// ExplainBand is one slab of the Section-6.3 leaf-access estimation.
type ExplainBand struct {
	Nodes  float64 `json:"nodes"`  // expected nodes in the band
	Side   float64 `json:"side"`   // node extent S_y
	Radius float64 `json:"radius"` // cone cross-section radius at the band
	P      float64 `json:"p"`      // access probability
}

// ExplainPop is one best-first pop: the popped element's Property-1 lower
// bound and components, and the queue depth after the pop.
type ExplainPop struct {
	Seq     int     `json:"seq"`
	Level   int     `json:"level"` // child level; -1 = POI (leaf entry)
	POI     int64   `json:"poi,omitempty"`
	Bound   float64 `json:"bound"` // Property-1 lower bound (queue priority)
	S0      float64 `json:"s0"`
	S1      float64 `json:"s1"`
	HeapLen int     `json:"heap_len"`
}

// ExplainPoint is one step of the kth-score convergence timeline.
type ExplainPoint struct {
	Pop   int     `json:"pop"`
	Rank  int     `json:"rank"`
	Score float64 `json:"score"`
}

// ExplainNode is one never-expanded frontier element left in the queue
// when the search stopped.
type ExplainNode struct {
	Level int     `json:"level"` // -1 = POI
	POI   int64   `json:"poi,omitempty"`
	Bound float64 `json:"bound"`
}

// ExplainMaxPops and ExplainMaxFrontier cap the stored pop log and
// frontier snapshot; the scalar counters stay exact past the caps.
const (
	ExplainMaxPops     = 4096
	ExplainMaxFrontier = 256
)

// NewExplain creates an empty recorder for QueryOpts.Explain.
func NewExplain() *Explain { return &Explain{} }

// NodeAccesses returns the total R-tree node accesses the recorder counted
// (root read plus every expansion), derived purely from the explain's own
// per-level tallies — the number the conservation test reconciles against
// QueryStats. Zero on a nil recorder.
func (e *Explain) NodeAccesses() int64 {
	if e == nil {
		return 0
	}
	var total int64
	for _, n := range e.NodeAccessesByLevel {
		total += n
	}
	return total
}

// recordNodeAccess tallies one R-tree node read at the given level.
func (e *Explain) recordNodeAccess(level int) {
	if e == nil {
		return
	}
	for len(e.NodeAccessesByLevel) <= level {
		e.NodeAccessesByLevel = append(e.NodeAccessesByLevel, 0)
	}
	e.NodeAccessesByLevel[level]++
}

// recordPush tracks the heap high-water mark after a push.
func (e *Explain) recordPush(heapLen int) {
	if e == nil {
		return
	}
	if heapLen > e.HeapMax {
		e.HeapMax = heapLen
	}
}

// recordPop logs one priority-queue pop. heapLen is the queue depth after
// the pop.
func (e *Explain) recordPop(el *Elem, heapLen int) {
	if e == nil {
		return
	}
	e.Pops++
	if len(e.PopLog) >= ExplainMaxPops {
		e.LogTruncated = true
		return
	}
	p := ExplainPop{
		Seq:     e.Pops,
		Level:   el.childLevel,
		Bound:   el.Score,
		S0:      el.S0,
		S1:      el.S1,
		HeapLen: heapLen,
	}
	if el.IsPOI() {
		p.POI = int64(el.Entry.Item)
	}
	e.PopLog = append(e.PopLog, p)
}

// recordProbe tallies one TIA aggregate probe's page-read delta.
func (e *Explain) recordProbe(logical, physical int64) {
	if e == nil {
		return
	}
	e.TIAReads += logical
	e.TIAPhysical += physical
}

// recordCacheProbe tallies one shared-cache aggregate probe.
func (e *Explain) recordCacheProbe(hit bool) {
	if e == nil {
		return
	}
	if hit {
		e.CacheHits++
	} else {
		e.CacheMisses++
	}
}

// recordResultCacheProbe tallies the whole-result cache lookup.
func (e *Explain) recordResultCacheProbe(hit bool) {
	if e == nil {
		return
	}
	if hit {
		e.CacheHits++
		e.ResultCacheHit = true
	} else {
		e.CacheMisses++
	}
}

// recordResult extends the convergence timeline with the rank-th result
// (1-based), which surfaced at the current pop count.
func (e *Explain) recordResult(rank int, score float64) {
	if e == nil {
		return
	}
	e.Convergence = append(e.Convergence, ExplainPoint{Pop: e.Pops, Rank: rank, Score: score})
}

// captureFrontier snapshots the search's leftover priority queue: the
// subtrees (and POIs) the bound pruned. Called when the search stops for
// any reason, including cancellation — a canceled query's explain reports
// the partial frontier instead of nothing.
func (e *Explain) captureFrontier(s *Search) {
	if e == nil || s == nil {
		return
	}
	e.FrontierSize = len(s.queue)
	n := len(s.queue)
	if n > ExplainMaxFrontier {
		n = ExplainMaxFrontier
		e.FrontierTruncated = true
	}
	// The heap slice is only partially ordered; sort a copy by bound so
	// the rendered frontier reads best-first.
	elems := append([]*Elem(nil), s.queue...)
	sort.Slice(elems, func(i, j int) bool { return elems[i].Score < elems[j].Score })
	e.Frontier = make([]ExplainNode, 0, n)
	for _, el := range elems[:n] {
		fn := ExplainNode{Level: el.childLevel, Bound: el.Score}
		if el.IsPOI() {
			fn.POI = int64(el.Entry.Item)
		}
		e.Frontier = append(e.Frontier, fn)
	}
}

// Finish seals the recorder with the query's outcome: result count, actual
// f(pk) (the last result's score) and the attributed I/O snapshot.
// Idempotent, so the planner may finish a scan-path explain the tree never
// saw; nil-safe like every other method. QueryCtx calls it on every path,
// including errors — a canceled query's explain carries the partial counts
// and frontier with Err set.
func (e *Explain) Finish(results []Result, stats *QueryStats, err error) {
	if e == nil || e.done {
		return
	}
	e.done = true
	e.Results = len(results)
	if len(results) > 0 {
		e.ActualFk = results[len(results)-1].Score
	}
	if err != nil {
		e.Err = err.Error()
	}
	if stats != nil {
		e.IO = IOLines(&stats.IO)
	}
}

// Summary condenses the explain into the compact neutral form slow-query
// TraceRing records carry. Nil on a nil recorder.
func (e *Explain) Summary() *obs.ExplainSummary {
	if e == nil {
		return nil
	}
	s := &obs.ExplainSummary{
		ActualAccesses: e.NodeAccesses(),
		ActualFk:       e.ActualFk,
		Pops:           e.Pops,
		HeapMax:        e.HeapMax,
		Frontier:       e.FrontierSize,
		TIAReads:       e.TIAReads,
		CacheHits:      e.CacheHits,
		ResultCacheHit: e.ResultCacheHit,
		Truncated:      e.LogTruncated || e.FrontierTruncated,
	}
	if p := e.Plan; p != nil {
		s.Engine = p.Engine
		s.EstimatedAccesses = p.EstimatedNodeAccesses
		s.EstimatedFk = p.EstimatedFk
		if actual := float64(s.ActualAccesses); actual > 0 {
			s.AccessError = (p.EstimatedNodeAccesses - actual) / actual
		}
	}
	return s
}
