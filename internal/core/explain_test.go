package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"tartree/internal/aggcache"
	"tartree/internal/geo"
	"tartree/internal/tia"
)

// explainBackends mirrors the cache-equivalence backend set so the
// conservation identity below is pinned for every storage engine.
func explainBackends() map[string]func() tia.Factory {
	return map[string]func() tia.Factory{
		"mem":   func() tia.Factory { return tia.NewMemFactory() },
		"btree": func() tia.Factory { return tia.NewBTreeFactory(256, 10) },
		"mvbt":  func() tia.Factory { return tia.NewMVBTFactory(1024, 10) },
	}
}

func explainTreeOpts(g Grouping, fac tia.Factory) Options {
	return Options{
		World:       geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{100, 100}},
		NodeSize:    256,
		Grouping:    g,
		EpochStart:  0,
		EpochLength: 100,
		TIA:         fac,
	}
}

// checkConservation asserts the explain recorder's independent tallies
// reconcile exactly with the query's QueryStats: node accesses (total and
// the leaf row of the per-level breakdown), logical and physical TIA reads,
// and cache probe counts. The two sides are recorded at different sites —
// QueryStats in the search/scorer accounting, Explain at its own hooks — so
// equality here means no instrumented site is missed or double-counted.
func checkConservation(t *testing.T, ex *Explain, stats QueryStats) {
	t.Helper()
	if got, want := ex.NodeAccesses(), int64(stats.InternalAccesses+stats.LeafAccesses); got != want {
		t.Errorf("explain NodeAccesses = %d, stats say %d", got, want)
	}
	if len(ex.NodeAccessesByLevel) > 0 {
		if got, want := ex.NodeAccessesByLevel[0], int64(stats.LeafAccesses); got != want {
			t.Errorf("explain leaf accesses = %d, stats.LeafAccesses = %d", got, want)
		}
	}
	if ex.TIAReads != stats.TIAAccesses {
		t.Errorf("explain TIAReads = %d, stats.TIAAccesses = %d", ex.TIAReads, stats.TIAAccesses)
	}
	if ex.TIAPhysical != stats.TIAPhysical {
		t.Errorf("explain TIAPhysical = %d, stats.TIAPhysical = %d", ex.TIAPhysical, stats.TIAPhysical)
	}
	if ex.CacheHits != stats.CacheHits {
		t.Errorf("explain CacheHits = %d, stats.CacheHits = %d", ex.CacheHits, stats.CacheHits)
	}
	if ex.CacheMisses != stats.CacheMisses {
		t.Errorf("explain CacheMisses = %d, stats.CacheMisses = %d", ex.CacheMisses, stats.CacheMisses)
	}
}

// TestExplainConservation is the acceptance contract of the explain
// recorder: for every grouping × TIA backend, on both a selective and an
// exhaustive query, the recorder's node-access, TIA-read and cache tallies
// equal the QueryStats counterparts exactly, the pop log and convergence
// timeline are internally consistent, and attaching the recorder does not
// change the answer.
func TestExplainConservation(t *testing.T) {
	for _, g := range []Grouping{TAR3D, IndSpa, IndAgg} {
		for name, newFac := range explainBackends() {
			t.Run(g.String()+"/"+name, func(t *testing.T) {
				tr := buildAccountingTreeOpts(t, explainTreeOpts(g, newFac()))
				queries := []Query{
					{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 600}, K: 25, Alpha0: 0.5},
					exhaustiveQuery(tr),
				}
				for _, q := range queries {
					plain, _, err := tr.Query(q)
					if err != nil {
						t.Fatal(err)
					}
					ex := NewExplain()
					res, stats, err := tr.QueryCtx(context.Background(), q, &QueryOpts{Explain: ex})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(res, plain) {
						t.Fatalf("k=%d: explained query answers differently from plain query", q.K)
					}
					checkConservation(t, ex, stats)

					// Search-shape forensics: every pop is logged (below the
					// cap), every popped POI became a result, the heap
					// high-water mark is real, and Finish sealed the outcome.
					if ex.Pops == 0 || ex.HeapMax == 0 {
						t.Fatalf("k=%d: empty search forensics: pops=%d heapMax=%d", q.K, ex.Pops, ex.HeapMax)
					}
					if ex.LogTruncated {
						t.Fatalf("k=%d: pop log truncated on a %d-POI tree", q.K, tr.Len())
					}
					if len(ex.PopLog) != ex.Pops {
						t.Errorf("k=%d: pop log has %d entries, Pops = %d", q.K, len(ex.PopLog), ex.Pops)
					}
					poiPops := 0
					for i, p := range ex.PopLog {
						if p.Seq != i+1 {
							t.Fatalf("k=%d: pop %d has seq %d", q.K, i, p.Seq)
						}
						if p.Level == -1 {
							poiPops++
						}
					}
					if poiPops != len(res) {
						t.Errorf("k=%d: %d POI pops but %d results", q.K, poiPops, len(res))
					}
					if len(ex.Convergence) != len(res) {
						t.Errorf("k=%d: convergence has %d points for %d results", q.K, len(ex.Convergence), len(res))
					}
					if ex.Results != len(res) {
						t.Errorf("k=%d: Results = %d, want %d", q.K, ex.Results, len(res))
					}
					if len(res) > 0 && ex.ActualFk != res[len(res)-1].Score {
						t.Errorf("k=%d: ActualFk = %v, want last score %v", q.K, ex.ActualFk, res[len(res)-1].Score)
					}
					if len(ex.IO) == 0 {
						t.Errorf("k=%d: Finish recorded no I/O lines", q.K)
					}

					// The frontier is what the Property-1 bound pruned: a
					// selective search leaves one, the exhaustive search by
					// definition leaves nothing.
					if q.K == tr.Len() {
						if ex.FrontierSize != 0 {
							t.Errorf("exhaustive search left a frontier of %d", ex.FrontierSize)
						}
					} else if ex.FrontierSize == 0 {
						t.Errorf("k=%d: selective search pruned nothing", q.K)
					}
					if !ex.FrontierTruncated && len(ex.Frontier) != ex.FrontierSize {
						t.Errorf("k=%d: frontier snapshot has %d of %d entries without truncation",
							q.K, len(ex.Frontier), ex.FrontierSize)
					}
					for i := 1; i < len(ex.Frontier); i++ {
						if ex.Frontier[i].Bound < ex.Frontier[i-1].Bound {
							t.Fatalf("k=%d: frontier not sorted by bound at %d", q.K, i)
						}
					}
				}
			})
		}
	}
}

// TestExplainResultCache pins the recorder's cache semantics on a cached
// tree: the cold run reconciles with stats (result-cache miss included),
// the warm run is a pure result-cache hit with zero search forensics, and
// NoCache suppresses every cache probe from both sides of the ledger.
func TestExplainResultCache(t *testing.T) {
	opts := explainTreeOpts(TAR3D, tia.NewBTreeFactory(256, 10))
	opts.Cache = aggcache.New(1 << 20)
	tr := buildAccountingTreeOpts(t, opts)
	q := Query{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 600}, K: 10, Alpha0: 0.5}

	cold := NewExplain()
	_, coldStats, err := tr.QueryCtx(context.Background(), q, &QueryOpts{Explain: cold})
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, cold, coldStats)
	if cold.ResultCacheHit {
		t.Fatal("cold query claims a result-cache hit")
	}
	if cold.CacheMisses == 0 {
		t.Fatal("cold query on a cached tree recorded no cache misses")
	}

	warm := NewExplain()
	res, warmStats, err := tr.QueryCtx(context.Background(), q, &QueryOpts{Explain: warm})
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, warm, warmStats)
	if !warm.ResultCacheHit || !warmStats.ResultCacheHit {
		t.Fatalf("warm repeat not served from the result cache (explain %v, stats %v)",
			warm.ResultCacheHit, warmStats.ResultCacheHit)
	}
	if warm.Pops != 0 || warm.NodeAccesses() != 0 || warm.TIAReads != 0 {
		t.Errorf("result-cache hit did search work: pops=%d nodes=%d tia=%d",
			warm.Pops, warm.NodeAccesses(), warm.TIAReads)
	}
	if warm.Results != len(res) || warm.ActualFk != res[len(res)-1].Score {
		t.Errorf("result-cache hit explain outcome = (%d, %v), want (%d, %v)",
			warm.Results, warm.ActualFk, len(res), res[len(res)-1].Score)
	}

	nocache := NewExplain()
	_, ncStats, err := tr.QueryCtx(context.Background(), q, &QueryOpts{Explain: nocache, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, nocache, ncStats)
	if nocache.CacheHits != 0 || nocache.CacheMisses != 0 || nocache.ResultCacheHit {
		t.Errorf("NoCache query recorded cache probes: hits=%d misses=%d resultHit=%v",
			nocache.CacheHits, nocache.CacheMisses, nocache.ResultCacheHit)
	}
	if nocache.Pops == 0 {
		t.Error("NoCache query did not search")
	}
}

// TestExplainCanceledQuery checks the cancellation contract: the explain of
// a query aborted mid-search is finished, carries the partial counts that
// still reconcile with the partial stats, records the error, and reports
// the frontier at the moment the search stopped instead of swallowing it.
func TestExplainCanceledQuery(t *testing.T) {
	tr := buildAccountingTreeOpts(t, explainTreeOpts(TAR3D, tia.NewBTreeFactory(256, 10)))
	ctx := &stepCtx{Context: context.Background(), limit: 10}
	ex := NewExplain()
	res, stats, err := tr.QueryCtx(ctx, exhaustiveQuery(tr), &QueryOpts{Explain: ex})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(res) != 0 {
		t.Fatalf("canceled query returned %d results", len(res))
	}
	checkConservation(t, ex, stats)
	if ex.Err == "" {
		t.Error("canceled explain has no error")
	}
	if ex.Pops == 0 {
		t.Error("canceled explain recorded no pops before the abort")
	}
	if ex.FrontierSize == 0 {
		t.Error("canceled explain lost the partial frontier")
	}
	if ex.Results != 0 {
		t.Errorf("canceled explain Results = %d", ex.Results)
	}
}

// TestExplainNilRecorderNoAllocs pins the disabled state's cost: every
// recorder method on a nil *Explain must allocate nothing, so the unexplained
// query path pays only the pointer tests.
func TestExplainNilRecorderNoAllocs(t *testing.T) {
	var e *Explain
	el := &Elem{}
	s := &Search{}
	allocs := testing.AllocsPerRun(100, func() {
		e.recordNodeAccess(3)
		e.recordPush(7)
		e.recordPop(el, 6)
		e.recordProbe(2, 1)
		e.recordCacheProbe(true)
		e.recordResultCacheProbe(false)
		e.recordResult(1, 0.5)
		e.captureFrontier(s)
		e.Finish(nil, nil, nil)
		if e.NodeAccesses() != 0 {
			t.Fatal("nil recorder counted accesses")
		}
		if e.Summary() != nil {
			t.Fatal("nil recorder produced a summary")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkQuery_Bare / BenchmarkQuery_Explain measure the recorder's
// overhead on the same query: Bare is the nil-recorder baseline the
// no-allocs test pins, Explain pays for the pop log, frontier snapshot and
// convergence timeline.
func BenchmarkQuery_Bare(b *testing.B) {
	tr := buildAccountingTreeOpts(b, explainTreeOpts(TAR3D, tia.NewBTreeFactory(256, 10)))
	q := Query{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 600}, K: 10, Alpha0: 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.QueryCtx(context.Background(), q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuery_Explain(b *testing.B) {
	tr := buildAccountingTreeOpts(b, explainTreeOpts(TAR3D, tia.NewBTreeFactory(256, 10)))
	q := Query{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 600}, K: 10, Alpha0: 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.QueryCtx(context.Background(), q, &QueryOpts{Explain: NewExplain()}); err != nil {
			b.Fatal(err)
		}
	}
}
