package core

import (
	"runtime"
	"time"

	"tartree/internal/rstar"
)

// Freeze compiles the R-tree into its flat frozen form (rstar.FlatTree) and
// installs it on the tree: queries that opt in (the standard QueryCtx path
// does) traverse int32 offsets into contiguous slabs instead of chasing
// node pointers. The pointer tree stays authoritative — structural
// mutations (InsertPOI, DeletePOI, Rebuild, RebuildBulk) drop the frozen
// form, and the caller re-Freezes when ingest settles. Check-in ingest
// (AddCheckIn, FlushEpochs) does not invalidate it: the frozen entries
// share the pointer tree's aggregate handles, so flushed epochs are
// observed without recompiling.
//
// On an instrumented tree Freeze exports tartree_index_bytes by layout,
// the freeze duration histogram, and the allocation/heap-object deltas of
// the compilation (the GC-pressure price of the flat copy).
func (t *Tree) Freeze() *rstar.FlatTree {
	var before runtime.MemStats
	if t.instr != nil {
		runtime.ReadMemStats(&before)
	}
	start := time.Now()
	f := t.rt.Freeze()
	d := time.Since(start)
	t.frozen = f
	if t.instr != nil {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		t.instr.recordFreeze(t.rt.MemoryBytes(), f.Bytes(), d,
			int64(after.Mallocs-before.Mallocs), int64(after.HeapObjects)-int64(before.HeapObjects))
	}
	return f
}

// Unfreeze drops the frozen form; subsequent queries run the pointer path.
func (t *Tree) Unfreeze() {
	t.frozen = nil
	if t.instr != nil {
		t.instr.recordIndexBytes(t.rt.MemoryBytes(), 0)
	}
}

// Frozen reports whether a frozen flat layout is installed.
func (t *Tree) Frozen() bool { return t.frozen != nil }

// setFrozen installs an externally built flat compilation (the snapshot-v3
// loader constructs one straight from the on-disk sections). The layout
// gauges are exported here too, so a tree restored frozen from disk reports
// tartree_index_bytes without ever calling Freeze.
func (t *Tree) setFrozen(f *rstar.FlatTree) {
	t.frozen = f
	if t.instr != nil && f != nil {
		t.instr.recordIndexBytes(t.rt.MemoryBytes(), f.Bytes())
	}
}

// IndexBytes returns the heap footprint of the pointer tree and of the
// frozen layout (0 when not frozen). Aggregate data is excluded from both —
// it is shared, so it cancels out of the comparison.
func (t *Tree) IndexBytes() (pointer, flat int64) {
	return t.rt.MemoryBytes(), t.frozen.Bytes()
}

// recordIndexBytes exports the by-layout footprint gauges.
func (in *instruments) recordIndexBytes(pointerBytes, flatBytes int64) {
	if in == nil {
		return
	}
	in.reg.Gauge(`tartree_index_bytes{layout="pointer"}`).Set(float64(pointerBytes))
	in.reg.Gauge(`tartree_index_bytes{layout="flat"}`).Set(float64(flatBytes))
}

// recordFreeze exports one freeze into the registry.
func (in *instruments) recordFreeze(pointerBytes, flatBytes int64, d time.Duration, allocs, heapObjects int64) {
	if in == nil {
		return
	}
	in.recordIndexBytes(pointerBytes, flatBytes)
	in.reg.Histogram("tartree_freeze_duration_seconds", nil).Observe(d.Seconds())
	in.reg.Gauge("tartree_freeze_allocs_delta").Set(float64(allocs))
	in.reg.Gauge("tartree_freeze_heap_objects_delta").Set(float64(heapObjects))
	in.reg.Counter("tartree_freezes_total").Inc()
}
