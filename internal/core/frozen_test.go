package core

import (
	"context"
	"reflect"
	"testing"

	"tartree/internal/tia"
)

// frozenTestQueries covers a selective top-k, an exhaustive drain and two
// weight extremes (near-pure-distance and near-pure-aggregate ranking).
func frozenTestQueries(tr *Tree) []Query {
	return []Query{
		{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 600}, K: 25, Alpha0: 0.5},
		{X: 12, Y: 88, Iq: tia.Interval{Start: 100, End: 400}, K: 10, Alpha0: 0.9},
		{X: 97, Y: 3, Iq: tia.Interval{Start: 200, End: 300}, K: 40, Alpha0: 0.1},
		exhaustiveQuery(tr),
	}
}

// TestFrozenSearchEquivalence pins the frozen flat traversal to the pointer
// traversal exactly: for every grouping × TIA backend, the same query on
// two identically built trees — one frozen, one not — returns identical
// results, identical QueryStats (node accesses, TIA logical and physical
// reads, scored entries, the full I/O breakdown) and identical EXPLAIN
// forensics (pop-by-pop log, per-level accesses, heap high-water mark,
// frontier). Two twin trees are used, rather than one tree queried twice,
// because the TIA buffers retain state across queries — the twins guarantee
// both paths see the same cold/warm buffer sequence.
func TestFrozenSearchEquivalence(t *testing.T) {
	for _, g := range []Grouping{TAR3D, IndSpa, IndAgg} {
		for name, newFac := range explainBackends() {
			t.Run(g.String()+"/"+name, func(t *testing.T) {
				pointer := buildAccountingTreeOpts(t, explainTreeOpts(g, newFac()))
				frozen := buildAccountingTreeOpts(t, explainTreeOpts(g, newFac()))
				frozen.Freeze()
				if !frozen.Frozen() {
					t.Fatal("Freeze did not install the flat layout")
				}
				for qi, q := range frozenTestQueries(pointer) {
					exP, exF := NewExplain(), NewExplain()
					resP, statsP, err := pointer.QueryCtx(context.Background(), q, &QueryOpts{Explain: exP})
					if err != nil {
						t.Fatal(err)
					}
					resF, statsF, err := frozen.QueryCtx(context.Background(), q, &QueryOpts{Explain: exF})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(resP, resF) {
						t.Fatalf("query %d: frozen results differ from pointer results", qi)
					}
					if !reflect.DeepEqual(statsP, statsF) {
						t.Fatalf("query %d: stats differ\npointer: %+v\nfrozen:  %+v", qi, statsP, statsF)
					}
					if exP.Pops != exF.Pops || exP.HeapMax != exF.HeapMax {
						t.Fatalf("query %d: pops %d/%d heapMax %d/%d", qi, exP.Pops, exF.Pops, exP.HeapMax, exF.HeapMax)
					}
					if !reflect.DeepEqual(exP.NodeAccessesByLevel, exF.NodeAccessesByLevel) {
						t.Fatalf("query %d: per-level accesses differ: %v vs %v", qi, exP.NodeAccessesByLevel, exF.NodeAccessesByLevel)
					}
					if !reflect.DeepEqual(exP.PopLog, exF.PopLog) {
						t.Fatalf("query %d: pop logs diverge", qi)
					}
					if exP.FrontierSize != exF.FrontierSize || !reflect.DeepEqual(exP.Frontier, exF.Frontier) {
						t.Fatalf("query %d: frontiers diverge (%d vs %d)", qi, exP.FrontierSize, exF.FrontierSize)
					}
					if exP.TIAReads != exF.TIAReads || exP.TIAPhysical != exF.TIAPhysical {
						t.Fatalf("query %d: TIA reads %d/%d physical %d/%d",
							qi, exP.TIAReads, exF.TIAReads, exP.TIAPhysical, exF.TIAPhysical)
					}
				}
			})
		}
	}
}

// TestFreezeLifecycle: structural mutations drop the frozen form; check-in
// ingest does not (the frozen entries share the aggregate handles), and the
// frozen answer tracks flushed epochs exactly.
func TestFreezeLifecycle(t *testing.T) {
	tr := buildAccountingTreeOpts(t, explainTreeOpts(TAR3D, tia.NewMemFactory()))
	tr.Freeze()

	// Ingest through the frozen form: flushes must be visible to frozen
	// queries because structure did not change.
	for i := 0; i < 50; i++ {
		if err := tr.AddCheckIn(int64(1+i%7), 610); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if !tr.Frozen() {
		t.Fatal("check-in ingest dropped the frozen form")
	}
	q := Query{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 700}, K: 15, Alpha0: 0.5}
	resFrozen, _, err := tr.QueryCtx(context.Background(), q, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr.Unfreeze()
	resPointer, _, err := tr.QueryCtx(context.Background(), q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resFrozen, resPointer) {
		t.Fatal("frozen query does not observe flushed epochs like the pointer query")
	}

	// Structural mutations invalidate.
	tr.Freeze()
	if err := tr.InsertPOI(POI{ID: 9001, X: 1, Y: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if tr.Frozen() {
		t.Fatal("InsertPOI left a stale frozen form")
	}
	tr.Freeze()
	if _, err := tr.DeletePOI(9001); err != nil {
		t.Fatal(err)
	}
	if tr.Frozen() {
		t.Fatal("DeletePOI left a stale frozen form")
	}
	tr.Freeze()
	if err := tr.RebuildBulk(); err != nil {
		t.Fatal(err)
	}
	if tr.Frozen() {
		t.Fatal("RebuildBulk left a stale frozen form")
	}
}

// TestIndexBytes: the flat layout must be the smaller representation.
func TestIndexBytes(t *testing.T) {
	tr := buildAccountingTreeOpts(t, explainTreeOpts(TAR3D, tia.NewMemFactory()))
	ptr, flat := tr.IndexBytes()
	if ptr <= 0 || flat != 0 {
		t.Fatalf("before freeze: pointer=%d flat=%d", ptr, flat)
	}
	tr.Freeze()
	ptr, flat = tr.IndexBytes()
	if flat <= 0 || flat >= ptr {
		t.Fatalf("after freeze: flat=%d not in (0, pointer=%d)", flat, ptr)
	}
}

// BenchmarkQueryPath compares pointer and frozen traversal on the same
// deterministic tree and query mix; the acceptance bar is that the frozen
// path is no slower per node access.
func BenchmarkQueryPath(b *testing.B) {
	for _, frozen := range []bool{false, true} {
		name := "pointer"
		if frozen {
			name = "frozen"
		}
		b.Run(name, func(b *testing.B) {
			tr := buildAccountingTreeOpts(b, explainTreeOpts(TAR3D, tia.NewMemFactory()))
			if frozen {
				tr.Freeze()
			}
			q := Query{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 600}, K: 25, Alpha0: 0.5}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := tr.QueryCtx(context.Background(), q, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
