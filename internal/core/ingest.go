package core

import (
	"fmt"
	"sort"

	"tartree/internal/rstar"
	"tartree/internal/tia"
)

// AddCheckIn records one check-in at POI id at time at. Check-ins are
// buffered per epoch; FlushEpochs folds every completed epoch into the
// TIAs in one batch, matching Section 4.2 ("when an epoch ends, we compute
// the aggregate of each POI by the check-ins, and then insert the non-zero
// aggregates in a batch fashion").
func (t *Tree) AddCheckIn(id int64, at int64) error {
	if _, ok := t.pois[id]; !ok {
		return fmt.Errorf("core: check-in for unknown POI %d", id)
	}
	if at < t.opts.Epochs.Origin() {
		return fmt.Errorf("core: check-in at %d precedes epoch origin %d", at, t.opts.Epochs.Origin())
	}
	ep := t.opts.Epochs.EpochOf(at)
	m := t.pending[ep]
	if m == nil {
		m = make(map[int64]int64)
		t.pending[ep] = m
	}
	m[id]++
	t.observe(at)
	// Buffered check-ins are not yet query-visible, but invalidating here
	// (one atomic add) keeps the rule simple and audit-proof: every ingest
	// apply — WAL replay included — bumps the cache version.
	t.invalidateCache()
	return nil
}

// PendingCheckIns returns the number of buffered, not yet flushed check-ins.
func (t *Tree) PendingCheckIns() int64 {
	var n int64
	for _, m := range t.pending {
		for _, c := range m {
			n += c
		}
	}
	return n
}

// FlushEpochs closes every epoch that ends at or before now, folding its
// buffered check-ins into the tree: one top-down traversal per epoch that
// appends the POI's aggregate to each leaf TIA and the running maximum to
// each internal TIA, touching only subtrees that contain a non-zero POI.
func (t *Tree) FlushEpochs(now int64) error {
	t.observe(now)
	var epochs []tia.Interval
	for ep := range t.pending {
		if ep.End <= now {
			epochs = append(epochs, ep)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i].Start < epochs[j].Start })
	for _, ep := range epochs {
		if err := t.flushEpoch(ep, t.pending[ep]); err != nil {
			return err
		}
		delete(t.pending, ep)
	}
	return nil
}

// FlushAll closes every buffered epoch regardless of the clock; callers use
// it when loading historical data.
func (t *Tree) FlushAll() error {
	maxEnd := t.clock
	for ep := range t.pending {
		if ep.End > maxEnd {
			maxEnd = ep.End
		}
	}
	return t.FlushEpochs(maxEnd)
}

func (t *Tree) flushEpoch(iv tia.Interval, counts map[int64]int64) error {
	if len(counts) == 0 {
		return nil
	}
	t.invalidateCache()
	max, err := t.applyEpoch(t.rt.Root(), iv, counts)
	if err != nil {
		return err
	}
	if max > 0 {
		if err := t.raiseGlobal(tia.Record{Ts: iv.Start, Te: iv.End, Agg: max}); err != nil {
			return err
		}
	}
	// Track lifetime totals and the running λ̂ maximum; z-coordinates of
	// existing entries are not relocated (Section 8.2 discusses rebuilds).
	// Check-ins buffered for a POI deleted before the epoch closed are
	// dropped.
	for id, c := range counts {
		st, ok := t.pois[id]
		if !ok {
			continue
		}
		st.total += c
		if l := t.lambda(st.total); l > t.lambdaMax {
			t.lambdaMax = l
		}
	}
	return nil
}

// applyEpoch recursively folds the epoch's aggregates into the subtree and
// returns the largest updated aggregate inside it (0 when no indexed POI
// checked in, in which case nothing was written). An epoch may already
// hold data — a POI inserted with history can receive further check-ins in
// the same epoch — so leaf records accumulate and internal records take the
// maximum with the existing value.
func (t *Tree) applyEpoch(n *rstar.Node, iv tia.Interval, counts map[int64]int64) (int64, error) {
	var max int64
	for i := range n.Entries {
		e := &n.Entries[i]
		d := e.Data.(*aggData)
		var eff int64
		if e.Child == nil {
			delta := counts[int64(e.Item)]
			if delta == 0 {
				continue
			}
			cur, _ := currentAgg(d.mirror, iv.Start)
			eff = cur + delta
		} else {
			childEff, err := t.applyEpoch(e.Child, iv, counts)
			if err != nil {
				return 0, err
			}
			if childEff == 0 {
				continue
			}
			eff = childEff
			if cur, _ := currentAgg(d.mirror, iv.Start); cur > eff {
				eff = cur
			}
		}
		if err := d.put(tia.Record{Ts: iv.Start, Te: iv.End, Agg: eff}); err != nil {
			return 0, err
		}
		if eff > max {
			max = eff
		}
	}
	return max, nil
}

// Aggregate returns the temporal aggregate of one POI over iv, read from
// its disk TIA under the tree's semantics.
func (t *Tree) Aggregate(id int64, iv tia.Interval) (int64, error) {
	st, ok := t.pois[id]
	if !ok {
		return 0, fmt.Errorf("core: unknown POI %d", id)
	}
	return st.data.disk.AggregateFunc(iv, t.opts.Semantics, t.opts.AggFunc)
}

// AggregateMirror is Aggregate from the in-memory mirror (no disk access);
// baselines and tests use it.
func (t *Tree) AggregateMirror(id int64, iv tia.Interval) (int64, error) {
	st, ok := t.pois[id]
	if !ok {
		return 0, fmt.Errorf("core: unknown POI %d", id)
	}
	return st.data.mirror.AggregateFunc(iv, t.opts.Semantics, t.opts.AggFunc)
}

// History returns a copy of the POI's per-epoch aggregate records.
func (t *Tree) History(id int64) ([]tia.Record, error) {
	st, ok := t.pois[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown POI %d", id)
	}
	return append([]tia.Record(nil), st.data.mirror.Records()...), nil
}
