package core

import (
	"fmt"
	"sync"
	"time"

	"tartree/internal/aggcache"
	"tartree/internal/obs"
	"tartree/internal/pagestore"
	"tartree/internal/tia"
)

// instruments is the tree's bridge into an obs.Registry. All metrics are
// shared by trees that share a registry (the registry getters are
// idempotent), so a process serving several groupings still exports one
// coherent set of series.
type instruments struct {
	queries     *obs.Counter
	queryErrors *obs.Counter
	results     *obs.Counter
	latency     *obs.Histogram
	internals   *obs.Counter
	leaves      *obs.Counter
	tiaLogical  *obs.Counter
	tiaPhysical *obs.Counter
	scored      *obs.Counter

	// Attributed I/O counters, one per (component, level, event) actually
	// observed. Created lazily so the exposition shows only series with
	// traffic; the cache avoids re-formatting the labeled name per query.
	reg    *obs.Registry
	ioMu   sync.Mutex
	ioHits [pagestore.NumComponents][pagestore.MaxIOLevels]*obs.Counter
	ioMiss [pagestore.NumComponents][pagestore.MaxIOLevels]*obs.Counter
	ioEvic [pagestore.NumComponents][pagestore.MaxIOLevels]*obs.Counter
}

func newInstruments(r *obs.Registry) *instruments {
	registerTIAProbes(r)
	return &instruments{
		queries:     r.Counter("tartree_queries_total"),
		queryErrors: r.Counter("tartree_query_errors_total"),
		results:     r.Counter("tartree_results_total"),
		latency:     r.Histogram("tartree_query_latency_seconds", nil),
		internals:   r.Counter(`tartree_rtree_node_accesses_total{level="internal"}`),
		leaves:      r.Counter(`tartree_rtree_node_accesses_total{level="leaf"}`),
		tiaLogical:  r.Counter(`tartree_tia_page_reads_total{kind="logical"}`),
		tiaPhysical: r.Counter(`tartree_tia_page_reads_total{kind="physical"}`),
		scored:      r.Counter("tartree_entries_scored_total"),
		reg:         r,
	}
}

// ioCounters returns (creating on first use) the hit/miss/eviction
// counters of one breakdown cell.
func (in *instruments) ioCounters(c pagestore.Component, level int) (hits, misses, evic *obs.Counter) {
	in.ioMu.Lock()
	defer in.ioMu.Unlock()
	if in.ioHits[c][level] == nil {
		in.ioHits[c][level] = in.reg.Counter(fmt.Sprintf(
			`tartree_io_page_reads_total{component=%q,level="%d",result="hit"}`, c.String(), level))
		in.ioMiss[c][level] = in.reg.Counter(fmt.Sprintf(
			`tartree_io_page_reads_total{component=%q,level="%d",result="miss"}`, c.String(), level))
		in.ioEvic[c][level] = in.reg.Counter(fmt.Sprintf(
			`tartree_io_evictions_total{component=%q,level="%d"}`, c.String(), level))
	}
	return in.ioHits[c][level], in.ioMiss[c][level], in.ioEvic[c][level]
}

// record folds one finished query into the metrics: the paper's work
// counters (QueryStats) plus the wall-clock latency the paper never
// measured.
func (in *instruments) record(stats QueryStats, nresults int, d time.Duration, err error) {
	if in == nil {
		return
	}
	in.queries.Inc()
	in.latency.Observe(d.Seconds())
	if err != nil {
		in.queryErrors.Inc()
		return
	}
	in.results.Add(int64(nresults))
	in.internals.Add(int64(stats.InternalAccesses))
	in.leaves.Add(int64(stats.LeafAccesses))
	in.tiaLogical.Add(stats.TIAAccesses)
	in.tiaPhysical.Add(stats.TIAPhysical)
	in.scored.Add(int64(stats.Scored))
	stats.IO.Each(func(c pagestore.Component, level int, cell pagestore.IOCell) {
		hits, misses, evic := in.ioCounters(c, level)
		hits.Add(cell.Hits)
		misses.Add(cell.Misses)
		evic.Add(cell.Evictions)
	})
}

// registerCacheMetrics exports the shared epoch-versioned cache's counters
// as tartree_aggcache_* series. Re-registration replaces the callbacks, so
// trees sharing one registry should also share one cache (the usual
// deployment); otherwise the last tree's cache wins.
func registerCacheMetrics(r *obs.Registry, c *aggcache.Cache) {
	r.CounterFunc("tartree_aggcache_hits_total", func() int64 { return c.Snapshot().Hits })
	r.CounterFunc("tartree_aggcache_misses_total", func() int64 { return c.Snapshot().Misses })
	r.CounterFunc("tartree_aggcache_evictions_total", func() int64 { return c.Snapshot().Evictions })
	r.CounterFunc("tartree_aggcache_invalidated_total", func() int64 { return c.Snapshot().Invalidated })
	r.GaugeFunc("tartree_aggcache_bytes", func() float64 { return float64(c.Snapshot().Bytes) })
	r.GaugeFunc("tartree_aggcache_entries", func() float64 { return float64(c.Snapshot().Entries) })
	r.GaugeFunc("tartree_aggcache_version", func() float64 { return float64(c.Snapshot().Version) })
}

// registerTIAProbes exports the process-wide per-backend probe totals.
func registerTIAProbes(r *obs.Registry) {
	for _, k := range tia.BackendKinds() {
		k := k
		r.CounterFunc(fmt.Sprintf(`tartree_tia_probes_total{backend=%q}`, k.String()),
			func() int64 { return tia.ProbeCount(k) })
	}
}

// sinkAttacher is satisfied by the disk-backed tia factories; the memory
// factory implements it as a no-op.
type sinkAttacher interface{ AttachSink(pagestore.Sink) }
