package core

import (
	"fmt"
	"time"

	"tartree/internal/obs"
	"tartree/internal/pagestore"
	"tartree/internal/tia"
)

// instruments is the tree's bridge into an obs.Registry. All metrics are
// shared by trees that share a registry (the registry getters are
// idempotent), so a process serving several groupings still exports one
// coherent set of series.
type instruments struct {
	queries     *obs.Counter
	queryErrors *obs.Counter
	results     *obs.Counter
	latency     *obs.Histogram
	internals   *obs.Counter
	leaves      *obs.Counter
	tiaLogical  *obs.Counter
	tiaPhysical *obs.Counter
	scored      *obs.Counter
}

func newInstruments(r *obs.Registry) *instruments {
	registerTIAProbes(r)
	return &instruments{
		queries:     r.Counter("tartree_queries_total"),
		queryErrors: r.Counter("tartree_query_errors_total"),
		results:     r.Counter("tartree_results_total"),
		latency:     r.Histogram("tartree_query_latency_seconds", nil),
		internals:   r.Counter(`tartree_rtree_node_accesses_total{level="internal"}`),
		leaves:      r.Counter(`tartree_rtree_node_accesses_total{level="leaf"}`),
		tiaLogical:  r.Counter(`tartree_tia_page_reads_total{kind="logical"}`),
		tiaPhysical: r.Counter(`tartree_tia_page_reads_total{kind="physical"}`),
		scored:      r.Counter("tartree_entries_scored_total"),
	}
}

// record folds one finished query into the metrics: the paper's work
// counters (QueryStats) plus the wall-clock latency the paper never
// measured.
func (in *instruments) record(stats QueryStats, nresults int, d time.Duration, err error) {
	if in == nil {
		return
	}
	in.queries.Inc()
	in.latency.Observe(d.Seconds())
	if err != nil {
		in.queryErrors.Inc()
		return
	}
	in.results.Add(int64(nresults))
	in.internals.Add(int64(stats.InternalAccesses))
	in.leaves.Add(int64(stats.LeafAccesses))
	in.tiaLogical.Add(stats.TIAAccesses)
	in.tiaPhysical.Add(stats.TIAPhysical)
	in.scored.Add(int64(stats.Scored))
}

// registerTIAProbes exports the process-wide per-backend probe totals.
func registerTIAProbes(r *obs.Registry) {
	for _, k := range tia.BackendKinds() {
		k := k
		r.CounterFunc(fmt.Sprintf(`tartree_tia_probes_total{backend=%q}`, k.String()),
			func() int64 { return tia.ProbeCount(k) })
	}
}

// sinkAttacher is satisfied by the disk-backed tia factories; the memory
// factory implements it as a no-op.
type sinkAttacher interface{ AttachSink(pagestore.Sink) }
