package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"tartree/internal/tia"
)

// TestRandomOperationModel interleaves every mutating operation — POI
// inserts with and without history, check-ins, epoch flushes, deletions and
// rebuilds — and continuously validates the tree against its invariants and
// against brute-force query results. This is the package's fuzz-like model
// check.
func TestRandomOperationModel(t *testing.T) {
	for _, g := range []Grouping{TAR3D, IndSpa, IndAgg} {
		g := g
		t.Run(g.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(404 + int64(g)))
			tr := mustTree(t, defaultOpts(g))
			nextID := int64(1)
			var live []int64
			clock := int64(0)

			for step := 0; step < 400; step++ {
				switch op := r.Intn(10); {
				case op < 4: // insert a POI (half with history)
					var hist []tia.Record
					if r.Intn(2) == 0 {
						for ep := int64(0); ep <= clock/10; ep++ {
							if r.Intn(3) == 0 {
								hist = append(hist, tia.Record{Ts: ep * 10, Te: ep*10 + 10, Agg: int64(1 + r.Intn(30))})
							}
						}
					}
					if err := tr.InsertPOI(POI{ID: nextID, X: r.Float64() * 100, Y: r.Float64() * 100}, hist); err != nil {
						t.Fatalf("step %d: insert: %v", step, err)
					}
					live = append(live, nextID)
					nextID++
				case op < 7 && len(live) > 0: // check-ins
					for i := 0; i < 1+r.Intn(10); i++ {
						id := live[r.Intn(len(live))]
						at := clock + int64(r.Intn(30))
						if err := tr.AddCheckIn(id, at); err != nil {
							t.Fatalf("step %d: checkin: %v", step, err)
						}
					}
				case op < 8: // advance time and flush
					clock += int64(10 + r.Intn(40))
					if err := tr.FlushEpochs(clock); err != nil {
						t.Fatalf("step %d: flush: %v", step, err)
					}
				case op < 9 && len(live) > 3: // delete a POI
					i := r.Intn(len(live))
					ok, err := tr.DeletePOI(live[i])
					if err != nil || !ok {
						t.Fatalf("step %d: delete: %v %v", step, ok, err)
					}
					live = append(live[:i], live[i+1:]...)
				default: // occasionally rebuild
					if step%7 == 0 {
						var err error
						if r.Intn(2) == 0 {
							err = tr.Rebuild()
						} else {
							err = tr.RebuildBulk()
						}
						if err != nil {
							t.Fatalf("step %d: rebuild: %v", step, err)
						}
					}
				}
				if step%50 == 49 {
					if err := tr.FlushAll(); err != nil {
						t.Fatal(err)
					}
					if err := tr.Check(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					if tr.Len() != len(live) {
						t.Fatalf("step %d: len %d != %d", step, tr.Len(), len(live))
					}
					if len(live) == 0 {
						continue
					}
					q := Query{
						X: r.Float64() * 100, Y: r.Float64() * 100,
						Iq:     tia.Interval{Start: int64(r.Intn(50)), End: 50 + clock},
						K:      1 + r.Intn(5),
						Alpha0: 0.1 + 0.8*r.Float64(),
					}
					got, _, err := tr.Query(q)
					if err != nil {
						t.Fatal(err)
					}
					want := bruteForceQuery(t, tr, q)
					if len(got) != len(want) {
						t.Fatalf("step %d: %d vs %d results", step, len(got), len(want))
					}
					for i := range got {
						if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
							t.Fatalf("step %d pos %d: %.9f vs %.9f", step, i, got[i].Score, want[i].Score)
						}
					}
				}
			}
		})
	}
}

// TestConcurrentQueries runs read-only queries from many goroutines against
// every TIA backend; run with -race to catch sharing bugs (the TIA buffer
// pools synchronize internally, the R-tree and mirrors are immutable during
// queries, and I/O accounting is query-local).
func TestConcurrentQueries(t *testing.T) {
	backends := []struct {
		name string
		fac  func() tia.Factory
	}{
		{"mem", func() tia.Factory { return tia.NewMemFactory() }},
		{"btree", func() tia.Factory { return tia.NewBTreeFactory(256, 10) }},
		{"mvbt", func() tia.Factory { return tia.NewMVBTFactory(1024, 10) }},
	}
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			t.Parallel()
			opts := defaultOpts(TAR3D)
			opts.TIA = be.fac()
			tr, _ := buildRandomTreeOpts(t, opts, 800, 2024)
			const workers = 8
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < 30; i++ {
						q := Query{
							X: r.Float64() * 100, Y: r.Float64() * 100,
							Iq:     tia.Interval{Start: int64(r.Intn(100)), End: int64(120 + r.Intn(80))},
							K:      1 + r.Intn(10),
							Alpha0: 0.1 + 0.8*r.Float64(),
						}
						res, _, err := tr.Query(q)
						if err != nil {
							errs <- err
							return
						}
						// Sanity: scores non-decreasing.
						for j := 1; j < len(res); j++ {
							if res[j].Score < res[j-1].Score-1e-12 {
								errs <- errUnknownPOI(0)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}
