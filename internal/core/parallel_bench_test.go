package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tartree/internal/pagestore"
	"tartree/internal/tia"
)

// benchBackends are the TIA backends the parallel benchmarks cover; the
// buffered disk backends are the interesting cases (shared buffer pools
// under concurrent access), mem is the contention-free ceiling, and
// btree-slowdisk adds simulated device latency so queries actually block
// on misses — the case where overlapping execution pays off even when
// hardware parallelism is scarce.
var benchBackends = []struct {
	name  string
	fac   func() (tia.Factory, *pagestore.SlowFile)
	delay time.Duration // applied after the build, before measuring
}{
	{"mem", func() (tia.Factory, *pagestore.SlowFile) { return tia.NewMemFactory(), nil }, 0},
	{"btree", func() (tia.Factory, *pagestore.SlowFile) { return tia.NewBTreeFactory(1024, 10), nil }, 0},
	{"mvbt", func() (tia.Factory, *pagestore.SlowFile) { return tia.NewMVBTFactory(1024, 10), nil }, 0},
	// Unbuffered (slots=0), as in the paper's buffering baseline: every
	// logical read is physical, so queries genuinely block on the device.
	{"btree-slowdisk", func() (tia.Factory, *pagestore.SlowFile) {
		sf := pagestore.NewSlowFile(pagestore.NewMemFile(1024), 0)
		return tia.NewBTreeFactoryWithFile(sf, 0), sf
	}, 50 * time.Microsecond},
}

func benchParallelTree(b *testing.B, g Grouping, fac tia.Factory) *Tree {
	b.Helper()
	opts := defaultOpts(g)
	opts.TIA = fac
	tr, _ := buildRandomTreeOpts(b, opts, 2000, 7)
	return tr
}

// benchQuery varies the query point but fixes interval, k, and alpha: the
// per-query work is then near-uniform, so throughput ratios between the
// parallel and serialized benchmarks measure scheduling, not query mix.
func benchQuery(r *rand.Rand) Query {
	return Query{
		X: r.Float64() * 100, Y: r.Float64() * 100,
		Iq:     tia.Interval{Start: 0, End: 200},
		K:      10,
		Alpha0: 0.3,
	}
}

// BenchmarkQueryParallel measures aggregate query throughput with one
// query stream per GOMAXPROCS worker (b.RunParallel), for every grouping ×
// TIA backend. Compare against BenchmarkQuerySerialized at the same -cpu
// to see the gain from removing the global query lock.
func BenchmarkQueryParallel(b *testing.B) {
	for _, g := range []Grouping{TAR3D, IndSpa, IndAgg} {
		for _, be := range benchBackends {
			b.Run(g.String()+"/"+be.name, func(b *testing.B) {
				fac, slow := be.fac()
				tr := benchParallelTree(b, g, fac)
				if slow != nil {
					slow.SetDelay(be.delay)
				}
				var seed atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					r := rand.New(rand.NewSource(seed.Add(1)))
					for pb.Next() {
						if _, _, err := tr.Query(benchQuery(r)); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// BenchmarkQuerySerialized is the pre-concurrency baseline: the same
// parallel load, but a global mutex serializes query execution the way the
// old server-side lock did. The ratio of QueryParallel to QuerySerialized
// throughput at -cpu N is the scaling win.
func BenchmarkQuerySerialized(b *testing.B) {
	for _, g := range []Grouping{TAR3D, IndSpa, IndAgg} {
		for _, be := range benchBackends {
			b.Run(g.String()+"/"+be.name, func(b *testing.B) {
				fac, slow := be.fac()
				tr := benchParallelTree(b, g, fac)
				if slow != nil {
					slow.SetDelay(be.delay)
				}
				var mu sync.Mutex
				var seed atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					r := rand.New(rand.NewSource(seed.Add(1)))
					for pb.Next() {
						mu.Lock()
						_, _, err := tr.Query(benchQuery(r))
						mu.Unlock()
						if err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}
