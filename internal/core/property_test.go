package core

import (
	"math/rand"
	"testing"

	"tartree/internal/rstar"
	"tartree/internal/tia"
)

// TestProperty1Consistency verifies the paper's Property 1 directly: for
// every query and every parent/child entry pair in the tree,
// f(e) <= f(ec) — the parent's score lower-bounds everything beneath it.
// This is the invariant that makes best-first search correct, and it must
// hold for every grouping strategy and for both aggregate functions.
func TestProperty1Consistency(t *testing.T) {
	for _, g := range []Grouping{TAR3D, IndSpa, IndAgg} {
		for _, fn := range []tia.Func{tia.FuncSum, tia.FuncMax} {
			g, fn := g, fn
			name := g.String() + "/sum"
			if fn == tia.FuncMax {
				name = g.String() + "/max"
			}
			t.Run(name, func(t *testing.T) {
				r := rand.New(rand.NewSource(500 + int64(g) + int64(fn)))
				opts := defaultOpts(g)
				opts.AggFunc = fn
				tr := mustTree(t, opts)
				for i := 1; i <= 400; i++ {
					var hist []tia.Record
					for ep := int64(0); ep < 20; ep++ {
						if r.Intn(3) == 0 {
							hist = append(hist, tia.Record{Ts: ep * 10, Te: ep*10 + 10, Agg: int64(1 + r.Intn(30))})
						}
					}
					if err := tr.InsertPOI(POI{ID: int64(i), X: r.Float64() * 100, Y: r.Float64() * 100}, hist); err != nil {
						t.Fatal(err)
					}
				}
				for trial := 0; trial < 8; trial++ {
					q := Query{
						X: r.Float64() * 100, Y: r.Float64() * 100,
						Iq:     tia.Interval{Start: int64(r.Intn(100)), End: int64(110 + r.Intn(90))},
						K:      5,
						Alpha0: 0.1 + 0.8*r.Float64(),
					}
					sc, err := tr.NewScorer(q, nil, nil)
					if err != nil {
						t.Fatal(err)
					}
					var walk func(n *rstar.Node) error
					walk = func(n *rstar.Node) error {
						for _, e := range n.Entries {
							if e.Child == nil {
								continue
							}
							s0, s1, err := sc.Components(e)
							if err != nil {
								return err
							}
							parent := sc.Score(s0, s1)
							for _, c := range e.Child.Entries {
								cs0, cs1, err := sc.Components(c)
								if err != nil {
									return err
								}
								child := sc.Score(cs0, cs1)
								if parent > child+1e-9 {
									t.Fatalf("Property 1 violated: f(e)=%.9f > f(ec)=%.9f (q=%+v)",
										parent, child, q)
								}
							}
							if err := walk(e.Child); err != nil {
								return err
							}
						}
						return nil
					}
					if err := walk(tr.Root()); err != nil {
						t.Fatal(err)
					}
				}
			})
		}
	}
}

// TestSearchYieldsSortedScores: the incremental Search returns POIs in
// globally non-decreasing score order — the optimality guarantee of
// best-first search per Hjaltason & Samet.
func TestSearchYieldsSortedScores(t *testing.T) {
	tr, r := buildRandomTree(t, TAR3D, 500, 909)
	for trial := 0; trial < 10; trial++ {
		q := Query{
			X: r.Float64() * 100, Y: r.Float64() * 100,
			Iq:     tia.Interval{Start: 0, End: 200},
			K:      1,
			Alpha0: 0.1 + 0.8*r.Float64(),
		}
		s, err := tr.NewSearch(q, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		prev := -1.0
		count := 0
		for {
			res, err := s.Next()
			if err != nil {
				t.Fatal(err)
			}
			if res == nil {
				break
			}
			if res.Score < prev-1e-12 {
				t.Fatalf("trial %d: score %.12f after %.12f", trial, res.Score, prev)
			}
			prev = res.Score
			count++
		}
		if count != tr.Len() {
			t.Fatalf("trial %d: drained %d POIs of %d", trial, count, tr.Len())
		}
	}
}
