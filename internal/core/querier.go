package core

import (
	"context"

	"tartree/internal/tia"
)

// Querier is the one query surface every execution path implements: the
// local *Tree, the WAL-backed wal.Store (which wraps the tree in its store
// lock), the HTTP client in internal/client (which forwards the call to a
// remote tarserve), and the scatter-gather shard coordinator in
// internal/shard. Code that runs kNNTA queries — batch executors, the
// tarquery CLI, the server handler — accepts a Querier and stops caring
// where the index lives.
//
// Implementations must honor ctx (returning an error wrapping ErrCanceled
// on expiry), must validate q (returning an error wrapping ErrInvalid on
// bad input), and must fill opts.Explain when one is attached. A nil opts
// is equivalent to the zero QueryOpts.
type Querier interface {
	QueryCtx(ctx context.Context, q Query, opts *QueryOpts) ([]Result, QueryStats, error)
}

// Version returns the tree's mutation version: a counter bumped by every
// mutation that can change a query answer (check-in ingest, epoch flushes,
// POI insertion/deletion, rebuilds). Shard query sessions snapshot it when
// they start and abandon the session when it drifts, so an incremental
// search never spans two logical states of the index. Freezing does not
// bump it — a frozen layout answers identically to the pointer tree it was
// built from.
func (t *Tree) Version() uint64 { return t.version }

// GlobalMirrorRecords returns the per-epoch records of the global TIA's
// in-memory mirror that intersect iv, in ascending Ts order. The slice is
// freshly allocated.
//
// This is the shard-side half of the distributed gmax exchange: a scalar
// per-shard gmax cannot be combined into the global normalizer under
// FuncSum (the per-epoch maxima may live on different shards in different
// epochs), but MaxMerge-ing the shards' mirror records rebuilds exactly
// the single-node global mirror, so the coordinator's AggregateFunc over
// the merge equals the single-node Gmax bit for bit.
func (t *Tree) GlobalMirrorRecords(iv tia.Interval) []tia.Record {
	var out []tia.Record
	for _, r := range t.global.mirror.Records() {
		if iv.Intersects(r) {
			out = append(out, r)
		}
	}
	return out
}
