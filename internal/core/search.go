package core

import (
	"container/heap"
	"context"
	"fmt"
	"time"

	"tartree/internal/aggcache"
	"tartree/internal/geo"
	"tartree/internal/obs"
	"tartree/internal/pagestore"
	"tartree/internal/rstar"
	"tartree/internal/tia"
)

// QueryStats counts the work done by a query (or a batch of queries). Node
// accesses are the paper's primary, machine-independent cost metric.
type QueryStats struct {
	// InternalAccesses and LeafAccesses count R-tree node reads.
	InternalAccesses int
	LeafAccesses     int
	// TIAAccesses counts logical TIA page reads (buffer hits included);
	// TIAPhysical counts the reads that reached the disk, which is what
	// the buffering experiment of Section 8.4 varies.
	TIAAccesses int64
	TIAPhysical int64
	// Scored counts entry score computations (TIA aggregate lookups before
	// caching).
	Scored int
	// IO attributes the query's page traffic by (component, level): R-tree
	// node reads (always buffer hits — the R-tree is in memory) and TIA
	// page traffic per backend. The scorer threads a query-local
	// pagestore.IOAcct pointing here through every TIA probe, so the TIA
	// cells reconcile exactly with the traffic this query caused — with no
	// global counter diffing, the accounting stays exact while any number
	// of queries run concurrently. The R-tree cells reconcile with
	// InternalAccesses/LeafAccesses.
	IO pagestore.IOBreakdown
	// CacheHits and CacheMisses count probes of the shared epoch-versioned
	// cache (Options.Cache): a hit answered a TIA aggregate probe — or the
	// whole query — from the cache instead of the backend, a miss fell
	// through. The same probes appear in IO under the agg-cache component
	// (level 0 = aggregate probes, level 1 = whole-result lookups), so the
	// conservation audit extends to cached queries: TIA cells still
	// reconcile exactly with backend traffic, and cache cells account for
	// the reads the cache absorbed. Both stay zero without a cache.
	CacheHits, CacheMisses int64
	// ResultCacheHit reports that the entire ranked result was served from
	// the cache: no tree traversal, no TIA probes.
	ResultCacheHit bool
}

// NodeAccesses returns R-tree plus logical TIA accesses, the total the
// experiment figures report.
func (s QueryStats) NodeAccesses() int64 {
	return int64(s.InternalAccesses+s.LeafAccesses) + s.TIAAccesses
}

// RTreeAccesses returns only the R-tree node accesses.
func (s QueryStats) RTreeAccesses() int { return s.InternalAccesses + s.LeafAccesses }

// Merge accumulates another query's counters (and I/O breakdown) into s,
// for batch executors that report one aggregate QueryStats.
func (s *QueryStats) Merge(o *QueryStats) {
	s.InternalAccesses += o.InternalAccesses
	s.LeafAccesses += o.LeafAccesses
	s.TIAAccesses += o.TIAAccesses
	s.TIAPhysical += o.TIAPhysical
	s.Scored += o.Scored
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.ResultCacheHit = s.ResultCacheHit || o.ResultCacheHit
	s.IO.Add(&o.IO)
}

// aggKey identifies a cached TIA aggregate.
type aggKey struct {
	idx tia.Index
	iv  tia.Interval
}

// AggCache memoizes TIA aggregates per (index, interval). The collective
// processing scheme of Section 7.2 shares one cache among the queries of a
// batch that have the same query time interval.
type AggCache map[aggKey]int64

// sharedAggKey identifies a memoized TIA aggregate in the shared
// epoch-versioned cache. It embeds the matching semantics and aggregate
// function so trees with different options can share one cache.
type sharedAggKey struct {
	tia uint64 // process-unique aggData identity
	iv  tia.Interval
	sem tia.Semantics
	fn  tia.Func
}

// aggCacheProbeTag and resultCacheTag attribute shared-cache lookups in the
// per-query I/O breakdown: level 0 is an aggregate probe, level 1 a
// whole-result lookup.
var (
	aggCacheProbeTag = pagestore.NewIOTag(pagestore.CompAggCache, 0)
	resultCacheTag   = pagestore.NewIOTag(pagestore.CompAggCache, 1)
)

// aggValueBytes is the budget charge for one cached aggregate: the boxed
// int64 plus the key struct.
const aggValueBytes = 48

// sharedAggHash routes k to its cache shard.
func sharedAggHash(k sharedAggKey) uint64 {
	h := aggcache.Mix(aggcache.Seed, k.tia)
	h = aggcache.Mix(h, uint64(k.iv.Start))
	h = aggcache.Mix(h, uint64(k.iv.End))
	h = aggcache.Mix(h, uint64(k.sem))
	return aggcache.Mix(h, uint64(k.fn))
}

// Scorer computes query-dependent ranking scores of tree entries. A Scorer
// is bound to one query (point, interval, weights) and one stats sink.
type Scorer struct {
	t     *Tree
	q     Query
	qv    geo.Vector // scaled query point
	gmax  float64    // aggregate normalizer (per-query constant)
	stats *QueryStats
	// acct is the query-local I/O accounting context threaded through
	// every TIA probe. Its breakdown pointer aims at stats.IO, so the
	// buffer layer writes the query's attributed traffic directly into
	// the caller's QueryStats without touching shared counters.
	acct  pagestore.IOAcct
	cache AggCache
	// shared is the tree's epoch-versioned cross-query cache, consulted
	// after the query-local memo and before the TIA backend. Nil when the
	// tree has no cache or the search opted out.
	shared *aggcache.Cache
	trace  *obs.Trace // nil when tracing is off
	// explain, when non-nil, receives the scorer's probe attribution (TIA
	// reads, cache hits/misses) for EXPLAIN/ANALYZE. Nil costs one pointer
	// test per probe.
	explain *Explain
}

// sharedGet probes the cross-query cache for d's aggregate over the query
// interval, recording the probe in the stats (hit/miss counters and the
// agg-cache I/O cell).
func (sc *Scorer) sharedGet(d *aggData) (int64, bool) {
	if sc.shared == nil {
		return 0, false
	}
	k := sharedAggKey{tia: d.id, iv: sc.q.Iq, sem: sc.t.opts.Semantics, fn: sc.t.opts.AggFunc}
	v, ok := sc.shared.Get(sharedAggHash(k), k)
	sc.explain.recordCacheProbe(ok)
	if sc.stats != nil {
		sc.stats.IO.AddRead(aggCacheProbeTag, ok)
		if ok {
			sc.stats.CacheHits++
		} else {
			sc.stats.CacheMisses++
		}
	}
	if !ok {
		return 0, false
	}
	return v.(int64), true
}

// sharedPut stores a freshly computed aggregate in the cross-query cache.
func (sc *Scorer) sharedPut(d *aggData, a int64) {
	if sc.shared == nil {
		return
	}
	k := sharedAggKey{tia: d.id, iv: sc.q.Iq, sem: sc.t.opts.Semantics, fn: sc.t.opts.AggFunc}
	sc.shared.Put(sharedAggHash(k), k, a, aggValueBytes)
}

// acctPtr returns the scorer's accounting context, or nil when the scorer
// collects no stats (probes then run unattributed).
func (sc *Scorer) acctPtr() *pagestore.IOAcct {
	if sc.stats == nil {
		return nil
	}
	return &sc.acct
}

// NewScorer prepares a scorer for q, reading the per-query aggregate
// normalizer from the tree's global per-epoch-maximum TIA.
func (t *Tree) NewScorer(q Query, stats *QueryStats, cache AggCache) (*Scorer, error) {
	return t.newScorer(q, stats, cache, nil, t.opts.Cache, nil)
}

func (t *Tree) newScorer(q Query, stats *QueryStats, cache AggCache, tr *obs.Trace, shared *aggcache.Cache, ex *Explain) (*Scorer, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if cache == nil {
		cache = make(AggCache)
	}
	sc := &Scorer{
		t:       t,
		q:       q,
		qv:      t.scaled(q.X, q.Y),
		stats:   stats,
		cache:   cache,
		shared:  shared,
		trace:   tr,
		explain: ex,
	}
	if stats != nil {
		sc.acct.IO = &stats.IO
	}
	gmax, err := sc.maxAggregate()
	if err != nil {
		return nil, err
	}
	sc.gmax = float64(gmax)
	return sc, nil
}

// maxAggregate reads the normalization range of g(p, Iq) from the tree's
// global per-epoch-maximum TIA: the sum of the global epoch maxima over the
// interval, an upper bound on every POI's aggregate that is independent of
// the grouping strategy (so all index variants rank identically). The read
// counts toward the query's TIA accesses.
func (sc *Scorer) maxAggregate() (int64, error) {
	g := sc.t.global
	key := aggKey{idx: g.disk, iv: sc.q.Iq}
	if v, ok := sc.cache[key]; ok {
		return v, nil
	}
	if v, ok := sc.sharedGet(g); ok {
		sc.cache[key] = v
		return v, nil
	}
	if sc.trace != nil {
		defer sc.trace.StartSpan("gmax")()
	}
	before := sc.acct.Stats
	a, err := g.disk.AggregateAcct(sc.q.Iq, sc.t.opts.Semantics, sc.t.opts.AggFunc, sc.acctPtr())
	if err != nil {
		return 0, err
	}
	if sc.stats != nil {
		delta := sc.acct.Stats.Sub(before)
		sc.stats.TIAAccesses += delta.LogicalReads
		sc.stats.TIAPhysical += delta.PhysicalReads
		sc.explain.recordProbe(delta.LogicalReads, delta.PhysicalReads)
	}
	sc.cache[key] = a
	sc.sharedPut(g, a)
	return a, nil
}

// Query returns the query the scorer is bound to.
func (sc *Scorer) Query() Query { return sc.q }

// Gmax returns the per-query aggregate normalizer (0 when no check-in falls
// inside the interval anywhere).
func (sc *Scorer) Gmax() float64 { return sc.gmax }

// aggregate reads (and caches) the entry's TIA aggregate over the query
// interval, counting physical TIA page reads.
func (sc *Scorer) aggregate(e rstar.Entry) (int64, error) {
	d := e.Data.(*aggData)
	key := aggKey{idx: d.disk, iv: sc.q.Iq}
	if v, ok := sc.cache[key]; ok {
		return v, nil
	}
	if v, ok := sc.sharedGet(d); ok {
		sc.cache[key] = v
		return v, nil
	}
	var begin time.Time
	if sc.trace != nil {
		begin = time.Now()
	}
	before := sc.acct.Stats
	a, err := d.disk.AggregateAcct(sc.q.Iq, sc.t.opts.Semantics, sc.t.opts.AggFunc, sc.acctPtr())
	if err != nil {
		return 0, err
	}
	if sc.trace != nil {
		sc.trace.Observe("tia_probe", time.Since(begin))
	}
	if sc.stats != nil {
		delta := sc.acct.Stats.Sub(before)
		sc.stats.TIAAccesses += delta.LogicalReads
		sc.stats.TIAPhysical += delta.PhysicalReads
		sc.stats.Scored++
		sc.explain.recordProbe(delta.LogicalReads, delta.PhysicalReads)
	}
	sc.cache[key] = a
	sc.sharedPut(d, a)
	return a, nil
}

// Components returns the two score components of an entry: the normalized
// spatial distance lower bound s0 and the aggregate term lower bound s1 =
// 1 − g/Gmax. For leaf entries both are exact. Property 1 guarantees
// α0·s0 + α1·s1 never exceeds the score of anything in the subtree.
func (sc *Scorer) Components(e rstar.Entry) (s0, s1 float64, err error) {
	s0 = geo.MinDist(sc.qv, e.Rect, 2) / sc.t.maxDistScaled
	a, err := sc.aggregate(e)
	if err != nil {
		return 0, 0, err
	}
	if sc.gmax > 0 {
		s1 = 1 - float64(a)/sc.gmax
	} else {
		s1 = 1
	}
	return s0, s1, nil
}

// Score combines the components with the query weights.
func (sc *Scorer) Score(s0, s1 float64) float64 {
	return sc.q.Alpha0*s0 + (1-sc.q.Alpha0)*s1
}

// resultOf builds a Result for a popped leaf entry.
func (sc *Scorer) resultOf(e rstar.Entry, s0, s1 float64) Result {
	st := sc.t.pois[int64(e.Item)]
	var agg int64
	if sc.gmax > 0 {
		agg = int64((1-s1)*sc.gmax + 0.5)
	}
	return Result{
		POI:   st.poi,
		Score: sc.Score(s0, s1),
		S0:    s0,
		S1:    s1,
		Agg:   agg,
	}
}

// Elem is one element of the best-first priority queue: an entry with its
// (lower-bound) score and components.
type Elem struct {
	Entry      rstar.Entry
	Score      float64
	S0, S1     float64
	childLevel int // level of the child node; -1 for leaf entries
	// flat is the entry's id in the frozen slabs; meaningful only on the
	// frozen path (Entry.Child stays nil there — the child is addressed
	// through FlatTree.Children[flat] instead of a pointer).
	flat int32
}

// IsPOI reports whether the element is a leaf entry (an actual POI). It
// keys off the recorded child level, which both the pointer and the frozen
// path set, rather than the Child pointer only the former has.
func (el *Elem) IsPOI() bool { return el.childLevel < 0 }

// Node returns the child node of an internal element (nil for POIs). The
// collective scheme uses pointer identity to detect shared front entries.
func (el *Elem) Node() *rstar.Node { return el.Entry.Child }

type elemHeap []*Elem

func (h elemHeap) Len() int           { return len(h) }
func (h elemHeap) Less(i, j int) bool { return h[i].Score < h[j].Score }
func (h elemHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *elemHeap) Push(x any)        { *h = append(*h, x.(*Elem)) }
func (h *elemHeap) Pop() any          { o := *h; n := len(o); x := o[n-1]; *h = o[:n-1]; return x }

// Search is an incremental best-first search over the TAR-tree (Section
// 4.3, after Hjaltason & Samet). Pop returns queue elements in ascending
// score order; the caller decides whether to Expand internal elements,
// which lets the weight-adjustment and skyline algorithms prune subtrees.
//
// CountAccesses can be disabled by batch processors that account for
// shared node accesses themselves.
type Search struct {
	sc    *Scorer
	queue elemHeap
	stats *QueryStats
	// ft, when non-nil, switches the traversal to the tree's frozen flat
	// layout: expansion walks int32 offsets into contiguous slabs instead
	// of chasing node pointers. Scoring, heap order, stats and explain
	// accounting are shared with the pointer path, so the two paths produce
	// identical results and identical counters (pinned by property test).
	ft            *rstar.FlatTree
	trace         *obs.Trace
	explain       *Explain        // nil when EXPLAIN is off
	ctx           context.Context // nil = never canceled
	CountAccesses bool
}

// SearchOptions tunes NewSearchWith.
type SearchOptions struct {
	Stats *QueryStats
	Cache AggCache
	// Gmax supplies a precomputed aggregate normalizer; nil computes it
	// with a branch-and-bound descent. The collective scheme computes it
	// once per query-interval group.
	Gmax *float64
	// SkipAccessCounting suppresses node-access counting in Expand and on
	// the root read; batch processors that share node accesses across
	// queries account for them externally.
	SkipAccessCounting bool
	// Trace, when non-nil, records timed spans of the search: the gmax
	// normalizer read, queue pops, node expansions and TIA probes. A nil
	// trace costs one pointer test per instrumented site.
	Trace *obs.Trace
	// NoCache bypasses the tree's shared epoch-versioned cache
	// (Options.Cache) for this search: no lookups, no stores.
	NoCache bool
	// Explain, when non-nil, records the search forensics (pops, node
	// accesses by level, heap high-water mark, probe attribution) into the
	// recorder. A nil recorder costs one pointer test per site.
	Explain *Explain
	// Ctx, when non-nil, is polled on every best-first pop; once canceled
	// or past its deadline, Next returns an error wrapping ErrCanceled and
	// the stats collected so far remain valid partial counts.
	Ctx context.Context
	// AllowFrozen lets the search traverse the tree's frozen flat layout
	// when one is installed (Tree.Freeze); without one it silently runs the
	// pointer path. Callers that rely on child-node pointer identity (the
	// collective scheme compares Elem.Node across searches) leave it unset.
	AllowFrozen bool
}

// NewSearch starts a best-first search for q. Reading the root node counts
// as one internal node access.
func (t *Tree) NewSearch(q Query, stats *QueryStats, cache AggCache) (*Search, error) {
	return t.NewSearchWith(q, SearchOptions{Stats: stats, Cache: cache})
}

// NewSearchWith starts a best-first search with explicit options.
func (t *Tree) NewSearchWith(q Query, o SearchOptions) (*Search, error) {
	shared := t.opts.Cache
	if o.NoCache {
		shared = nil
	}
	var sc *Scorer
	var err error
	if o.Gmax != nil {
		sc, err = t.newScorerWithGmax(q, *o.Gmax, o.Stats, o.Cache, shared)
		if sc != nil {
			sc.trace = o.Trace
			sc.explain = o.Explain
		}
	} else {
		sc, err = t.newScorer(q, o.Stats, o.Cache, o.Trace, shared, o.Explain)
	}
	if err != nil {
		return nil, err
	}
	s := &Search{sc: sc, stats: o.Stats, trace: o.Trace, explain: o.Explain, ctx: o.Ctx, CountAccesses: !o.SkipAccessCounting}
	if o.AllowFrozen {
		if f := t.frozen; f != nil {
			s.ft = f
			root := f.Root()
			s.countNodeAccess(int(root.Level))
			for i := int32(0); i < root.Count; i++ {
				if err := s.pushFlat(root.Start + i); err != nil {
					return nil, err
				}
			}
			return s, nil
		}
	}
	root := t.rt.Root()
	s.countNodeAccess(root.Level)
	for _, e := range root.Entries {
		if err := s.push(e); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// countNodeAccess records one R-tree node read at the given level into the
// query stats (unless access counting is off) and the explain recorder. The
// root read and every Expand — pointer or frozen — go through here, so both
// traversal paths account identically.
func (s *Search) countNodeAccess(level int) {
	if s.CountAccesses && s.stats != nil {
		if level == 0 {
			s.stats.LeafAccesses++
			s.stats.IO.AddRead(pagestore.NewIOTag(pagestore.CompRTreeLeaf, 0), true)
		} else {
			s.stats.InternalAccesses++
			s.stats.IO.AddRead(pagestore.NewIOTag(pagestore.CompRTreeInternal, level), true)
		}
	}
	s.explain.recordNodeAccess(level)
}

// newScorerWithGmax builds a scorer using a precomputed normalizer.
func (t *Tree) newScorerWithGmax(q Query, gmax float64, stats *QueryStats, cache AggCache, shared *aggcache.Cache) (*Scorer, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if cache == nil {
		cache = make(AggCache)
	}
	sc := &Scorer{t: t, q: q, qv: t.scaled(q.X, q.Y), gmax: gmax, stats: stats, cache: cache, shared: shared}
	if stats != nil {
		sc.acct.IO = &stats.IO
	}
	return sc, nil
}

// MaxAggregate reads the normalization range for iv (the sum of the global
// per-epoch maxima over the interval), counting its accesses into stats.
// The collective scheme calls it once per query-interval group.
func (t *Tree) MaxAggregate(iv tia.Interval, stats *QueryStats, cache AggCache) (int64, error) {
	if cache == nil {
		cache = make(AggCache)
	}
	sc := &Scorer{
		t: t,
		// Only Iq matters for aggregation; other fields are placeholders.
		q:      Query{Iq: iv, K: 1, Alpha0: 0.5},
		stats:  stats,
		cache:  cache,
		shared: t.opts.Cache,
	}
	if stats != nil {
		sc.acct.IO = &stats.IO
	}
	return sc.maxAggregate()
}

// Scorer returns the search's scorer.
func (s *Search) Scorer() *Scorer { return s.sc }

func (s *Search) push(e rstar.Entry) error {
	s0, s1, err := s.sc.Components(e)
	if err != nil {
		return err
	}
	el := &Elem{Entry: e, S0: s0, S1: s1, Score: s.sc.Score(s0, s1), childLevel: -1}
	if e.Child != nil {
		el.childLevel = e.Child.Level
	}
	heap.Push(&s.queue, el)
	s.explain.recordPush(len(s.queue))
	return nil
}

// pushFlat scores and enqueues entry eid of the frozen slabs. The
// materialized Entry carries the exact same rectangle and aggregate handle
// the pointer tree holds, so components, score and heap order are
// bit-identical to the pointer path.
func (s *Search) pushFlat(eid int32) error {
	e := s.ft.EntryAt(eid)
	s0, s1, err := s.sc.Components(e)
	if err != nil {
		return err
	}
	el := &Elem{Entry: e, S0: s0, S1: s1, Score: s.sc.Score(s0, s1), childLevel: -1, flat: eid}
	if cid := s.ft.Children[eid]; cid >= 0 {
		el.childLevel = int(s.ft.Nodes[cid].Level)
	}
	heap.Push(&s.queue, el)
	s.explain.recordPush(len(s.queue))
	return nil
}

// Peek returns the least-score element without removing it, or nil when
// the queue is empty.
func (s *Search) Peek() *Elem {
	if len(s.queue) == 0 {
		return nil
	}
	return s.queue[0]
}

// Pop removes and returns the least-score element, or nil when exhausted.
func (s *Search) Pop() *Elem {
	if len(s.queue) == 0 {
		return nil
	}
	if s.trace != nil {
		defer s.trace.StartSpan("queue_pop")()
	}
	el := heap.Pop(&s.queue).(*Elem)
	s.explain.recordPop(el, len(s.queue))
	return el
}

// Expand pushes the children of an internal element, counting one node
// access (when CountAccesses is set). The traced "expand" span covers the
// R-tree descent including the scoring of the child entries, so the nested
// "tia_probe" time is a subset of it. On a frozen search the element's
// child node is resolved through the flat slabs instead of a pointer.
func (s *Search) Expand(el *Elem) error {
	if s.ft != nil {
		return s.expandFlat(el)
	}
	n := el.Entry.Child
	if n == nil {
		return nil
	}
	if s.trace != nil {
		defer s.trace.StartSpan("expand")()
	}
	s.countNodeAccess(n.Level)
	for _, e := range n.Entries {
		if err := s.push(e); err != nil {
			return err
		}
	}
	return nil
}

// expandFlat is Expand on the frozen layout: the child node is a (level,
// start, count) triple and its entries are a contiguous run of the slabs —
// no pointer chase, no per-node slice header.
func (s *Search) expandFlat(el *Elem) error {
	if el.childLevel < 0 {
		return nil
	}
	if s.trace != nil {
		defer s.trace.StartSpan("expand")()
	}
	n := s.ft.Nodes[s.ft.Children[el.flat]]
	s.countNodeAccess(int(n.Level))
	for i := int32(0); i < n.Count; i++ {
		if err := s.pushFlat(n.Start + i); err != nil {
			return err
		}
	}
	return nil
}

// Next runs the search until the next POI emerges, returning nil when the
// tree is exhausted.
func (s *Search) Next() (*Result, error) {
	for {
		if s.ctx != nil {
			if err := s.ctx.Err(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCanceled, err)
			}
		}
		el := s.Pop()
		if el == nil {
			return nil, nil
		}
		if el.IsPOI() {
			r := s.sc.resultOf(el.Entry, el.S0, el.S1)
			return &r, nil
		}
		if err := s.Expand(el); err != nil {
			return nil, err
		}
	}
}

// Result converts a POI element into a Result.
func (s *Search) Result(el *Elem) Result {
	return s.sc.resultOf(el.Entry, el.S0, el.S1)
}

// Query answers a kNNTA query with best-first search and returns the top-k
// results in ascending score order together with the work counters. On an
// instrumented tree (Options.Metrics) the query also feeds the latency
// histogram and work counters of the registry.
//
// Deprecated: Query is QueryCtx(context.Background(), q, nil); new code
// should call QueryCtx.
func (t *Tree) Query(q Query) ([]Result, QueryStats, error) {
	return t.QueryCtx(context.Background(), q, nil)
}

// QueryTraced is Query with an optional per-query trace: when tr is
// non-nil, the search records timed spans (gmax read, queue pops, node
// expansions, TIA probes) into it. A nil trace is free. On a tree with a
// trace ring (Options.Traces) every query — traced or not — is recorded
// into the ring with its I/O breakdown.
//
// Deprecated: QueryTraced is QueryCtx(context.Background(), q,
// &QueryOpts{Trace: tr}); new code should call QueryCtx.
func (t *Tree) QueryTraced(q Query, tr *obs.Trace) ([]Result, QueryStats, error) {
	return t.QueryCtx(context.Background(), q, &QueryOpts{Trace: tr})
}

// describeQuery renders a query compactly for trace records and logs.
func describeQuery(q Query) string {
	return fmt.Sprintf("knnta(x=%g, y=%g, k=%d, a0=%g, iq=[%d,%d))",
		q.X, q.Y, q.K, q.Alpha0, q.Iq.Start, q.Iq.End)
}

// IOLines converts a breakdown into the neutral rows obs stores (obs is
// dependency-free, so it cannot see pagestore types). Exported so servers
// can render a query's attribution without depending on the array layout.
func IOLines(b *pagestore.IOBreakdown) []obs.IOLine {
	var out []obs.IOLine
	b.Each(func(c pagestore.Component, level int, cell pagestore.IOCell) {
		out = append(out, obs.IOLine{
			Component: c.String(),
			Level:     level,
			Hits:      cell.Hits,
			Misses:    cell.Misses,
			Evictions: cell.Evictions,
		})
	})
	return out
}

// ScorePOI computes the exact ranking score of one POI for q (from the
// in-memory mirror; no disk accesses). Tests and the sequential-scan
// baseline use it.
func (t *Tree) ScorePOI(q Query, id int64) (Result, error) {
	if err := q.Validate(); err != nil {
		return Result{}, err
	}
	st, ok := t.pois[id]
	if !ok {
		return Result{}, errUnknownPOI(id)
	}
	gmax, err := t.gmaxMirror(q.Iq)
	if err != nil {
		return Result{}, err
	}
	return t.scorePOIWith(q, st, gmax)
}

func (t *Tree) scorePOIWith(q Query, st *poiState, gmax float64) (Result, error) {
	agg, err := st.data.mirror.AggregateFunc(q.Iq, t.opts.Semantics, t.opts.AggFunc)
	if err != nil {
		return Result{}, err
	}
	qv := t.scaled(q.X, q.Y)
	s0 := geo.Dist(qv, st.loc, 2) / t.maxDistScaled
	s1 := 1.0
	if gmax > 0 {
		s1 = 1 - float64(agg)/gmax
	}
	return Result{
		POI:   st.poi,
		Score: q.Alpha0*s0 + (1-q.Alpha0)*s1,
		S0:    s0,
		S1:    s1,
		Agg:   agg,
	}, nil
}

// gmaxMirror computes the per-query aggregate normalizer from the global
// TIA's in-memory mirror (no disk accesses). It equals the Scorer's Gmax.
func (t *Tree) gmaxMirror(iv tia.Interval) (float64, error) {
	a, err := t.global.mirror.AggregateFunc(iv, t.opts.Semantics, t.opts.AggFunc)
	return float64(a), err
}

type errUnknownPOI int64

func (e errUnknownPOI) Error() string { return "core: unknown POI" }
