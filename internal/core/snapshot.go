package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"tartree/internal/geo"
	"tartree/internal/tia"
)

// snapshot is the serialized form of a tree: the POI registry with full
// aggregate histories plus the options needed to rebuild. The R-tree
// structure itself is not serialized — loading bulk-rebuilds it, which is
// both simpler and typically yields a better-packed tree than the
// incremental history would.
type snapshot struct {
	Version   int
	World     [4]float64
	NodeSize  int
	Grouping  Grouping
	Semantics tia.Semantics
	AggFunc   tia.Func
	// Epoch grid: fixed grids round-trip; custom Epochs implementations
	// must be re-supplied at load time.
	EpochStart  int64
	EpochLength int64
	Geometric   bool
	Clock       int64
	POIs        []snapshotPOI
}

type snapshotPOI struct {
	ID      int64
	X, Y    float64
	Records []tia.Record
}

const snapshotVersion = 1

// SaveSnapshot serializes the tree (POIs, histories, configuration) so a
// later process can LoadSnapshot it without replaying the check-in stream.
// Pending (unflushed) check-ins are not included; call FlushAll first.
func (t *Tree) SaveSnapshot(w io.Writer) error {
	if n := t.PendingCheckIns(); n > 0 {
		return fmt.Errorf("core: %d check-ins pending; FlushAll before saving", n)
	}
	s := snapshot{
		Version:   snapshotVersion,
		World:     [4]float64{t.opts.World.Min[0], t.opts.World.Min[1], t.opts.World.Max[0], t.opts.World.Max[1]},
		NodeSize:  t.opts.NodeSize,
		Grouping:  t.opts.Grouping,
		Semantics: t.opts.Semantics,
		AggFunc:   t.opts.AggFunc,
		Clock:     t.clock,
	}
	switch e := t.opts.Epochs.(type) {
	case FixedEpochs:
		s.EpochStart, s.EpochLength = e.Start, e.Length
	case GeometricEpochs:
		s.EpochStart, s.EpochLength, s.Geometric = e.Start, e.First, true
	default:
		return fmt.Errorf("core: cannot snapshot custom epoch scheme %T", e)
	}
	s.POIs = make([]snapshotPOI, 0, len(t.pois))
	for _, st := range t.pois {
		s.POIs = append(s.POIs, snapshotPOI{
			ID:      st.poi.ID,
			X:       st.poi.X,
			Y:       st.poi.Y,
			Records: append([]tia.Record(nil), st.data.mirror.Records()...),
		})
	}
	return gob.NewEncoder(w).Encode(&s)
}

// LoadSnapshot reconstructs a tree saved with SaveSnapshot. The TIA factory
// is supplied fresh (disk state is rebuilt, not deserialized); nil selects
// the default. The index is bulk-rebuilt for spatial groupings.
func LoadSnapshot(r io.Reader, factory tia.Factory) (*Tree, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", s.Version)
	}
	opts := Options{
		World:     geo.Rect{Min: geo.Vector{s.World[0], s.World[1]}, Max: geo.Vector{s.World[2], s.World[3]}},
		NodeSize:  s.NodeSize,
		Grouping:  s.Grouping,
		Semantics: s.Semantics,
		AggFunc:   s.AggFunc,
		TIA:       factory,
	}
	if s.Geometric {
		opts.Epochs = GeometricEpochs{Start: s.EpochStart, First: s.EpochLength}
	} else {
		opts.EpochStart, opts.EpochLength = s.EpochStart, s.EpochLength
	}
	t, err := NewTree(opts)
	if err != nil {
		return nil, err
	}
	t.observe(s.Clock)
	for _, p := range s.POIs {
		if err := t.InsertPOI(POI{ID: p.ID, X: p.X, Y: p.Y}, p.Records); err != nil {
			return nil, err
		}
	}
	t.observe(s.Clock) // inserting history may have rewound nothing; re-pin
	if t.opts.Grouping != IndAgg {
		if err := t.RebuildBulk(); err != nil {
			return nil, err
		}
	}
	return t, nil
}
