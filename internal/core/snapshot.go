package core

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"tartree/internal/aggcache"
	"tartree/internal/geo"
	"tartree/internal/obs"
	"tartree/internal/tia"
)

// snapshot is the serialized form of a tree: the POI registry with full
// aggregate histories plus the options needed to rebuild. The R-tree
// structure itself is not serialized — loading bulk-rebuilds it, which is
// both simpler and typically yields a better-packed tree than the
// incremental history would.
type snapshot struct {
	Version   int
	World     [4]float64
	NodeSize  int
	Grouping  Grouping
	Semantics tia.Semantics
	AggFunc   tia.Func
	// Epoch grid: fixed grids round-trip; custom Epochs implementations
	// must be re-supplied at load time.
	EpochStart  int64
	EpochLength int64
	Geometric   bool
	Clock       int64
	POIs        []snapshotPOI
	// Pending carries the buffered, not yet flushed check-ins (since
	// version 2), so a save/load cycle loses nothing: a snapshot taken
	// mid-epoch restores with the same PendingCheckIns and flushes to the
	// same aggregates.
	Pending []snapshotEpoch
}

type snapshotPOI struct {
	ID      int64
	X, Y    float64
	Records []tia.Record
}

// snapshotEpoch is one buffered epoch of pending check-ins.
type snapshotEpoch struct {
	Start, End int64
	POIs       []int64
	Counts     []int64
}

const snapshotVersion = 2

// SaveSnapshot serializes the tree (POIs, histories, configuration, and any
// pending check-ins) so a later process can LoadSnapshot it without
// replaying the check-in stream.
func (t *Tree) SaveSnapshot(w io.Writer) error {
	s := snapshot{
		Version:   snapshotVersion,
		World:     [4]float64{t.opts.World.Min[0], t.opts.World.Min[1], t.opts.World.Max[0], t.opts.World.Max[1]},
		NodeSize:  t.opts.NodeSize,
		Grouping:  t.opts.Grouping,
		Semantics: t.opts.Semantics,
		AggFunc:   t.opts.AggFunc,
		Clock:     t.clock,
	}
	switch e := t.opts.Epochs.(type) {
	case FixedEpochs:
		s.EpochStart, s.EpochLength = e.Start, e.Length
	case GeometricEpochs:
		s.EpochStart, s.EpochLength, s.Geometric = e.Start, e.First, true
	default:
		return fmt.Errorf("core: cannot snapshot custom epoch scheme %T", e)
	}
	s.POIs = make([]snapshotPOI, 0, len(t.pois))
	for _, st := range t.pois {
		s.POIs = append(s.POIs, snapshotPOI{
			ID:      st.poi.ID,
			X:       st.poi.X,
			Y:       st.poi.Y,
			Records: append([]tia.Record(nil), st.data.mirror.Records()...),
		})
	}
	for ep, counts := range t.pending {
		se := snapshotEpoch{Start: ep.Start, End: ep.End}
		for id, c := range counts {
			se.POIs = append(se.POIs, id)
			se.Counts = append(se.Counts, c)
		}
		sortEpochPOIs(&se)
		s.Pending = append(s.Pending, se)
	}
	sort.Slice(s.Pending, func(i, j int) bool { return s.Pending[i].Start < s.Pending[j].Start })
	return gob.NewEncoder(w).Encode(&s)
}

// sortEpochPOIs orders one pending epoch's parallel slices by POI id so
// snapshots of the same tree encode identically.
func sortEpochPOIs(se *snapshotEpoch) {
	idx := make([]int, len(se.POIs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return se.POIs[idx[a]] < se.POIs[idx[b]] })
	pois := make([]int64, len(idx))
	counts := make([]int64, len(idx))
	for i, j := range idx {
		pois[i], counts[i] = se.POIs[j], se.Counts[j]
	}
	se.POIs, se.Counts = pois, counts
}

// LoadSnapshot reconstructs a tree saved with SaveSnapshot or
// SaveSnapshotV3 — the format is detected from the leading magic bytes. The
// TIA factory is supplied fresh (disk state is rebuilt, not deserialized);
// nil selects the default. On the legacy gob path the index is bulk-rebuilt
// for spatial groupings; on the v3 path the frozen layout loads directly
// from the on-disk sections.
func LoadSnapshot(r io.Reader, factory tia.Factory) (*Tree, error) {
	return LoadSnapshotObserved(r, factory, nil, nil, nil)
}

// LoadSnapshotObserved is LoadSnapshot with instrumentation and caching:
// the rebuilt tree publishes metrics and trace records as if it had been
// created with Options.Metrics/Options.Traces set, and attaches the shared
// epoch-versioned cache (nil disables). The WAL recovery path uses it so a
// restored server keeps its observability surface and cache.
func LoadSnapshotObserved(r io.Reader, factory tia.Factory, metrics *obs.Registry, traces *obs.TraceRing, cache *aggcache.Cache) (*Tree, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(len(snapshotV3Magic)); err == nil && bytes.Equal(magic, snapshotV3Magic[:]) {
		b, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading v3 snapshot: %w", err)
		}
		return loadSnapshotV3(b, factory, metrics, traces, cache)
	}
	var s snapshot
	if err := gob.NewDecoder(br).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if s.Version < 1 || s.Version > snapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", s.Version)
	}
	opts := Options{
		World:     geo.Rect{Min: geo.Vector{s.World[0], s.World[1]}, Max: geo.Vector{s.World[2], s.World[3]}},
		NodeSize:  s.NodeSize,
		Grouping:  s.Grouping,
		Semantics: s.Semantics,
		AggFunc:   s.AggFunc,
		TIA:       factory,
		Metrics:   metrics,
		Traces:    traces,
		Cache:     cache,
	}
	if s.Geometric {
		opts.Epochs = GeometricEpochs{Start: s.EpochStart, First: s.EpochLength}
	} else {
		opts.EpochStart, opts.EpochLength = s.EpochStart, s.EpochLength
	}
	t, err := NewTree(opts)
	if err != nil {
		return nil, err
	}
	t.observe(s.Clock)
	for _, p := range s.POIs {
		if err := t.InsertPOI(POI{ID: p.ID, X: p.X, Y: p.Y}, p.Records); err != nil {
			return nil, err
		}
	}
	t.observe(s.Clock) // inserting history may have rewound nothing; re-pin
	for _, se := range s.Pending {
		ep := tia.Interval{Start: se.Start, End: se.End}
		m := make(map[int64]int64, len(se.POIs))
		for i, id := range se.POIs {
			m[id] = se.Counts[i]
		}
		t.pending[ep] = m
	}
	if t.opts.Grouping != IndAgg {
		if err := t.RebuildBulk(); err != nil {
			return nil, err
		}
	}
	return t, nil
}
