package core

import (
	"bytes"
	"math"
	"testing"

	"tartree/internal/tia"
)

func TestSnapshotRoundTrip(t *testing.T) {
	for _, g := range []Grouping{TAR3D, IndSpa, IndAgg} {
		t.Run(g.String(), func(t *testing.T) {
			tr, r := buildRandomTree(t, g, 300, 17)
			var buf bytes.Buffer
			if err := tr.SaveSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := LoadSnapshot(&buf, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != tr.Len() {
				t.Fatalf("len = %d, want %d", got.Len(), tr.Len())
			}
			if err := got.Check(); err != nil {
				t.Fatal(err)
			}
			// Identical query results.
			for trial := 0; trial < 10; trial++ {
				q := Query{
					X: r.Float64() * 100, Y: r.Float64() * 100,
					Iq:     tia.Interval{Start: int64(r.Intn(100)), End: int64(120 + r.Intn(80))},
					K:      5,
					Alpha0: 0.3,
				}
				a, _, err := tr.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				b, _, err := got.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				if len(a) != len(b) {
					t.Fatalf("result counts differ")
				}
				for i := range a {
					if math.Abs(a[i].Score-b[i].Score) > 1e-9 {
						t.Fatalf("trial %d pos %d: %.9f vs %.9f", trial, i, a[i].Score, b[i].Score)
					}
				}
			}
			// The restored tree accepts further updates.
			if err := got.InsertPOI(POI{ID: 9999, X: 2, Y: 2}, nil); err != nil {
				t.Fatal(err)
			}
			if err := got.AddCheckIn(9999, got.clock+1); err != nil {
				t.Fatal(err)
			}
			if err := got.FlushAll(); err != nil {
				t.Fatal(err)
			}
			if err := got.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSnapshotPreservesPending pins the no-check-in-loss property through a
// snapshot+recover cycle: check-ins buffered but not yet flushed must
// survive SaveSnapshot/LoadSnapshot and fold into the same aggregates as on
// the original tree. (Before snapshot version 2, SaveSnapshot refused trees
// with pending check-ins, forcing every checkpoint to flush first.)
func TestSnapshotPreservesPending(t *testing.T) {
	for _, g := range []Grouping{TAR3D, IndSpa, IndAgg} {
		t.Run(g.String(), func(t *testing.T) {
			tr := mustTree(t, defaultOpts(g))
			for id := int64(1); id <= 5; id++ {
				if err := tr.InsertPOI(POI{ID: id, X: float64(id) * 3, Y: float64(id) * 7}, nil); err != nil {
					t.Fatal(err)
				}
			}
			// Buffer check-ins across two epochs without flushing.
			for i := 0; i < 30; i++ {
				id := int64(i%5 + 1)
				if err := tr.AddCheckIn(id, int64(i*5)); err != nil {
					t.Fatal(err)
				}
			}
			want := tr.PendingCheckIns()
			if want == 0 {
				t.Fatal("test produced no pending check-ins")
			}

			var buf bytes.Buffer
			if err := tr.SaveSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := LoadSnapshot(&buf, nil)
			if err != nil {
				t.Fatal(err)
			}
			if n := got.PendingCheckIns(); n != want {
				t.Fatalf("restored tree has %d pending check-ins, want %d", n, want)
			}

			// Flushing both trees must yield identical aggregates.
			if err := tr.FlushAll(); err != nil {
				t.Fatal(err)
			}
			if err := got.FlushAll(); err != nil {
				t.Fatal(err)
			}
			if n := got.PendingCheckIns(); n != 0 {
				t.Fatalf("restored tree still has %d pending after FlushAll", n)
			}
			iv := tia.Interval{Start: 0, End: 1000}
			for id := int64(1); id <= 5; id++ {
				a, err := tr.Aggregate(id, iv)
				if err != nil {
					t.Fatal(err)
				}
				b, err := got.Aggregate(id, iv)
				if err != nil {
					t.Fatal(err)
				}
				if a != b {
					t.Errorf("POI %d: aggregate %d after restore, want %d", id, b, a)
				}
			}
			if err := got.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSnapshotGeometricEpochs(t *testing.T) {
	opts := Options{
		World:    world(0, 0, 100, 100),
		Grouping: TAR3D,
		Epochs:   GeometricEpochs{Start: 0, First: 10},
	}
	tr := mustTree(t, opts)
	tr.InsertPOI(POI{ID: 1, X: 5, Y: 5}, []tia.Record{{Ts: 0, Te: 10, Agg: 3}})
	var buf bytes.Buffer
	if err := tr.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Epochs().(GeometricEpochs); !ok {
		t.Fatalf("epochs = %T, want GeometricEpochs", got.Epochs())
	}
	a, _ := got.Aggregate(1, tia.Interval{Start: 0, End: 100})
	if a != 3 {
		t.Fatalf("aggregate = %d", a)
	}
}

func TestSnapshotGarbage(t *testing.T) {
	if _, err := LoadSnapshot(bytes.NewReader([]byte("not a snapshot")), nil); err == nil {
		t.Fatal("garbage accepted")
	}
}
