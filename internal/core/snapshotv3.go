package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"tartree/internal/aggcache"
	"tartree/internal/geo"
	"tartree/internal/obs"
	"tartree/internal/rstar"
	"tartree/internal/tia"
)

// Snapshot v3 is an exact on-disk image of the frozen flat layout: fixed-
// width little-endian sections followed by a CRC-32C trailer (the WAL's
// checksum), no gob. Loading is section reads — the node and entry slabs
// deserialize straight into an rstar.FlatTree, TIA contents arrive packed
// (tia.AppendPacked) instead of being recomputed from POI histories — so a
// server restart skips the per-POI inserts and the bulk rebuild of the
// legacy gob path entirely.
//
// Layout (all integers little-endian):
//
//	magic        8 B  "TARSNP3\x00"
//	headerBytes  u32  length of the fixed header including the magic
//	flags        u32  bit 0 = geometric epoch grid
//	grouping     u32
//	semantics    u32
//	aggFunc      u32
//	nodeSize     u32
//	world        4×f64 (minX, minY, maxX, maxY)
//	epochStart   i64
//	epochLength  i64  (first epoch length when geometric)
//	clock        i64
//	lambdaMax    f64  running max of per-epoch mean aggregates λ̂
//	height       u32  frozen tree height
//	count        u64  number of POIs (= leaf entries)
//
// then the sections, each "<4-byte id> <u64 payload length> <payload>", in
// fixed order:
//
//	TIAS  per-TIA record streams: u64 count, then per TIA a uvarint record
//	      count followed by the packed records. TIA 0 is the tree-global
//	      per-epoch-maximum index, TIAs 1..P belong to the POIs in POIS
//	      order, the rest to internal entries in ENTR order.
//	POIS  u64 count, then per POI: id i64, x f64, y f64, z f64, total i64,
//	      tiaRef u32. z is the aggregate-dimension coordinate at insertion
//	      time — stored, not recomputed, because the leaf rectangles embed
//	      it and DeletePOI must reproduce it exactly.
//	PEND  buffered check-ins: u64 epoch count, then per epoch start i64,
//	      end i64, u64 n, n×(poi i64, count i64).
//	NODE  u64 count, then per node level i32, start i32, count i32.
//	ENTR  u64 count, then per entry rect 6×f64 (min xyz, max xyz), child
//	      node id i32 (−1 = leaf), item i64, tiaRef u32.
//
// and finally a u32 CRC-32C of everything before it.
var snapshotV3Magic = [8]byte{'T', 'A', 'R', 'S', 'N', 'P', '3', 0}

const (
	v3HeaderBytes = 8 + 4 + 5*4 + 4*8 + 3*8 + 8 + 4 + 8
	v3FlagGeom    = 1 << 0

	v3POIBytes   = 8 + 3*8 + 8 + 4 // id, x, y, z, total, tiaRef
	v3NodeBytes  = 12              // level, start, count
	v3EntryBytes = 6*8 + 4 + 8 + 4 // rect, child, item, tiaRef
)

var v3Castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SaveSnapshotV3 writes the snapshot-v3 image. It only reads the tree (the
// WAL checkpointer calls it under a read lock): the installed frozen layout
// is used when present, otherwise a temporary flat compilation is built and
// discarded without being installed.
func (t *Tree) SaveSnapshotV3(w io.Writer) error {
	var flags uint32
	var epochStart, epochLength int64
	switch e := t.opts.Epochs.(type) {
	case FixedEpochs:
		epochStart, epochLength = e.Start, e.Length
	case GeometricEpochs:
		epochStart, epochLength = e.Start, e.First
		flags |= v3FlagGeom
	default:
		return fmt.Errorf("core: cannot snapshot custom epoch scheme %T", e)
	}
	f := t.frozen
	if f == nil {
		f = t.rt.Freeze()
	}

	// Assign TIA references: 0 = global, 1..P the POIs by ascending id,
	// then internal entries in entry order. Leaf entries share their POI's
	// aggData, so the walk below never mints a reference for them.
	ids := make([]int64, 0, len(t.pois))
	for id := range t.pois {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	refs := map[*aggData]uint32{t.global: 0}
	tias := []*aggData{t.global}
	for _, id := range ids {
		d := t.pois[id].data
		refs[d] = uint32(len(tias))
		tias = append(tias, d)
	}
	for _, data := range f.Data {
		d := data.(*aggData)
		if _, ok := refs[d]; !ok {
			refs[d] = uint32(len(tias))
			tias = append(tias, d)
		}
	}

	var buf []byte
	buf = append(buf, snapshotV3Magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, v3HeaderBytes)
	buf = binary.LittleEndian.AppendUint32(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.opts.Grouping))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.opts.Semantics))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.opts.AggFunc))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.opts.NodeSize))
	for _, v := range [4]float64{t.opts.World.Min[0], t.opts.World.Min[1], t.opts.World.Max[0], t.opts.World.Max[1]} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(epochStart))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(epochLength))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.clock))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.lambdaMax))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Height))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Count))

	section := func(id string, payload []byte) {
		buf = append(buf, id...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
		buf = append(buf, payload...)
	}

	var p []byte
	p = binary.LittleEndian.AppendUint64(p, uint64(len(tias)))
	for _, d := range tias {
		recs := d.mirror.Records()
		p = binary.AppendUvarint(p, uint64(len(recs)))
		p = tia.AppendPacked(p, recs)
	}
	section("TIAS", p)

	p = binary.LittleEndian.AppendUint64(nil, uint64(len(ids)))
	for _, id := range ids {
		st := t.pois[id]
		p = binary.LittleEndian.AppendUint64(p, uint64(st.poi.ID))
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(st.poi.X))
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(st.poi.Y))
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(st.z))
		p = binary.LittleEndian.AppendUint64(p, uint64(st.total))
		p = binary.LittleEndian.AppendUint32(p, refs[st.data])
	}
	section("POIS", p)

	pending := make([]snapshotEpoch, 0, len(t.pending))
	for ep, counts := range t.pending {
		se := snapshotEpoch{Start: ep.Start, End: ep.End}
		for id, c := range counts {
			se.POIs = append(se.POIs, id)
			se.Counts = append(se.Counts, c)
		}
		sortEpochPOIs(&se)
		pending = append(pending, se)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].Start < pending[j].Start })
	p = binary.LittleEndian.AppendUint64(nil, uint64(len(pending)))
	for _, se := range pending {
		p = binary.LittleEndian.AppendUint64(p, uint64(se.Start))
		p = binary.LittleEndian.AppendUint64(p, uint64(se.End))
		p = binary.LittleEndian.AppendUint64(p, uint64(len(se.POIs)))
		for i := range se.POIs {
			p = binary.LittleEndian.AppendUint64(p, uint64(se.POIs[i]))
			p = binary.LittleEndian.AppendUint64(p, uint64(se.Counts[i]))
		}
	}
	section("PEND", p)

	p = binary.LittleEndian.AppendUint64(nil, uint64(len(f.Nodes)))
	for _, n := range f.Nodes {
		p = binary.LittleEndian.AppendUint32(p, uint32(n.Level))
		p = binary.LittleEndian.AppendUint32(p, uint32(n.Start))
		p = binary.LittleEndian.AppendUint32(p, uint32(n.Count))
	}
	section("NODE", p)

	p = binary.LittleEndian.AppendUint64(nil, uint64(len(f.Rects)))
	for i := range f.Rects {
		r := &f.Rects[i]
		for d := 0; d < geo.MaxDims; d++ {
			p = binary.LittleEndian.AppendUint64(p, math.Float64bits(r.Min[d]))
		}
		for d := 0; d < geo.MaxDims; d++ {
			p = binary.LittleEndian.AppendUint64(p, math.Float64bits(r.Max[d]))
		}
		p = binary.LittleEndian.AppendUint32(p, uint32(f.Children[i]))
		p = binary.LittleEndian.AppendUint64(p, uint64(f.Items[i]))
		p = binary.LittleEndian.AppendUint32(p, refs[f.Data[i].(*aggData)])
	}
	section("ENTR", p)

	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, v3Castagnoli))
	_, err := w.Write(buf)
	return err
}

// v3cursor is a bounds-checked reader over the snapshot bytes; every read
// that would run past the end reports corruption instead of panicking.
type v3cursor struct {
	b   []byte
	off int
}

func (c *v3cursor) need(n int) ([]byte, error) {
	if n < 0 || c.off+n > len(c.b) {
		return nil, fmt.Errorf("core: snapshot truncated at byte %d (need %d of %d)", c.off, n, len(c.b))
	}
	s := c.b[c.off : c.off+n]
	c.off += n
	return s, nil
}

func (c *v3cursor) u32() (uint32, error) {
	s, err := c.need(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(s), nil
}

func (c *v3cursor) u64() (uint64, error) {
	s, err := c.need(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(s), nil
}

func (c *v3cursor) i64() (int64, error) { v, err := c.u64(); return int64(v), err }

func (c *v3cursor) f64() (float64, error) {
	v, err := c.u64()
	return math.Float64frombits(v), err
}

// count reads a u64 element count and rejects values that could not fit in
// the remaining bytes at elemBytes each — a forged count then fails before
// any allocation proportional to it.
func (c *v3cursor) count(elemBytes int) (int, error) {
	v, err := c.u64()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(c.b)-c.off)/uint64(elemBytes) {
		return 0, fmt.Errorf("core: snapshot count %d exceeds remaining %d bytes", v, len(c.b)-c.off)
	}
	return int(v), nil
}

// section checks the 4-byte section id and returns a cursor over its
// payload, advancing the parent past it.
func (c *v3cursor) section(id string) (*v3cursor, error) {
	s, err := c.need(4)
	if err != nil {
		return nil, err
	}
	if string(s) != id {
		return nil, fmt.Errorf("core: snapshot section %q where %q expected", s, id)
	}
	n, err := c.u64()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(c.b)-c.off) {
		return nil, fmt.Errorf("core: snapshot section %s length %d exceeds remaining %d bytes", id, n, len(c.b)-c.off)
	}
	p, err := c.need(int(n))
	if err != nil {
		return nil, err
	}
	return &v3cursor{b: p}, nil
}

// loadSnapshotV3 decodes a v3 image (magic already verified by the caller,
// but still present in b). It builds the rstar.FlatTree straight from the
// NODE/ENTR sections, thaws it into the pointer tree, and installs it as
// the frozen layout — no per-POI inserts, no bulk rebuild, for every
// grouping including IND-agg.
func loadSnapshotV3(b []byte, factory tia.Factory, metrics *obs.Registry, traces *obs.TraceRing, cache *aggcache.Cache) (*Tree, error) {
	if len(b) < v3HeaderBytes+4 || !bytes.Equal(b[:8], snapshotV3Magic[:]) {
		return nil, fmt.Errorf("core: not a v3 snapshot")
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, v3Castagnoli) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("core: snapshot checksum mismatch")
	}
	c := &v3cursor{b: body, off: 8}
	hdrLen, err := c.u32()
	if err != nil {
		return nil, err
	}
	if hdrLen != v3HeaderBytes {
		return nil, fmt.Errorf("core: snapshot header length %d, want %d", hdrLen, v3HeaderBytes)
	}
	flags, err := c.u32()
	if err != nil {
		return nil, err
	}
	var grouping, semantics, aggFunc, nodeSize uint32
	for _, dst := range []*uint32{&grouping, &semantics, &aggFunc, &nodeSize} {
		if *dst, err = c.u32(); err != nil {
			return nil, err
		}
	}
	var world [4]float64
	for i := range world {
		if world[i], err = c.f64(); err != nil {
			return nil, err
		}
	}
	epochStart, err := c.i64()
	if err != nil {
		return nil, err
	}
	epochLength, err := c.i64()
	if err != nil {
		return nil, err
	}
	clock, err := c.i64()
	if err != nil {
		return nil, err
	}
	lambdaMax, err := c.f64()
	if err != nil {
		return nil, err
	}
	height, err := c.u32()
	if err != nil {
		return nil, err
	}
	itemCount, err := c.u64()
	if err != nil {
		return nil, err
	}
	if grouping > uint32(IndAgg) {
		return nil, fmt.Errorf("core: snapshot grouping %d unknown", grouping)
	}

	opts := Options{
		World:     geo.Rect{Min: geo.Vector{world[0], world[1]}, Max: geo.Vector{world[2], world[3]}},
		NodeSize:  int(nodeSize),
		Grouping:  Grouping(grouping),
		Semantics: tia.Semantics(semantics),
		AggFunc:   tia.Func(aggFunc),
		TIA:       factory,
		Metrics:   metrics,
		Traces:    traces,
		Cache:     cache,
	}
	if flags&v3FlagGeom != 0 {
		opts.Epochs = GeometricEpochs{Start: epochStart, First: epochLength}
	} else {
		opts.EpochStart, opts.EpochLength = epochStart, epochLength
	}
	t, err := NewTree(opts)
	if err != nil {
		return nil, err
	}
	t.observe(clock)
	t.lambdaMax = lambdaMax

	// TIAS: decode the packed record streams.
	ts, err := c.section("TIAS")
	if err != nil {
		return nil, err
	}
	ntias, err := ts.count(1)
	if err != nil {
		return nil, err
	}
	if ntias < 1 {
		return nil, fmt.Errorf("core: snapshot has no TIA table")
	}
	recsByRef := make([][]tia.Record, ntias)
	rest := ts.b[ts.off:]
	for i := 0; i < ntias; i++ {
		n, k := binary.Uvarint(rest)
		if k <= 0 {
			return nil, fmt.Errorf("core: snapshot TIA %d truncated", i)
		}
		rest = rest[k:]
		if n > uint64(len(rest)) { // every packed record is >= 3 bytes... >= 1
			return nil, fmt.Errorf("core: snapshot TIA %d record count %d exceeds section", i, n)
		}
		recs, r2, err := tia.DecodePacked(rest, int(n))
		if err != nil {
			return nil, fmt.Errorf("core: snapshot TIA %d: %w", i, err)
		}
		recsByRef[i], rest = recs, r2
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("core: snapshot TIA section has %d trailing bytes", len(rest))
	}

	// dataFor materializes the aggData of one reference — memoized, so the
	// leaf entries of the ENTR section share their POI's aggData identity
	// exactly as the live tree does. The packed decode guarantees strictly
	// ascending Ts, so both the mirror and (when the factory supports it)
	// the disk index are built bottom-up from the sorted stream instead of
	// one put at a time — the difference between a restart that re-inserts
	// every record and one that writes each page once.
	bulk, _ := t.opts.TIA.(tia.BulkFactory)
	datas := make([]*aggData, ntias)
	dataFor := func(ref uint32, owned bool) (*aggData, error) {
		if ref >= uint32(ntias) {
			return nil, fmt.Errorf("core: snapshot TIA reference %d out of range", ref)
		}
		if d := datas[ref]; d != nil {
			return d, nil
		}
		recs := recsByRef[ref]
		var disk tia.Index
		var err error
		if bulk != nil {
			disk, err = bulk.NewBulk(recs)
		} else {
			disk, err = t.opts.TIA.New()
			if err == nil {
				for _, r := range recs {
					if err = disk.Put(r); err != nil {
						break
					}
				}
			}
		}
		if err != nil {
			return nil, err
		}
		d := newAggData(tia.NewMemFromSorted(recs), disk, owned)
		datas[ref] = d
		return d, nil
	}

	// Global per-epoch maxima: replace the empty index NewTree installed.
	if err := t.global.disk.Destroy(); err != nil {
		return nil, err
	}
	if t.global, err = dataFor(0, true); err != nil {
		return nil, err
	}

	// POIS.
	ps, err := c.section("POIS")
	if err != nil {
		return nil, err
	}
	npois, err := ps.count(v3POIBytes)
	if err != nil {
		return nil, err
	}
	if uint64(npois) != itemCount {
		return nil, fmt.Errorf("core: snapshot has %d POIs but header says %d items", npois, itemCount)
	}
	for i := 0; i < npois; i++ {
		id, err := ps.i64()
		if err != nil {
			return nil, err
		}
		var x, y, z float64
		for _, dst := range []*float64{&x, &y, &z} {
			if *dst, err = ps.f64(); err != nil {
				return nil, err
			}
		}
		total, err := ps.i64()
		if err != nil {
			return nil, err
		}
		ref, err := ps.u32()
		if err != nil {
			return nil, err
		}
		if _, dup := t.pois[id]; dup {
			return nil, fmt.Errorf("core: snapshot POI %d duplicated", id)
		}
		data, err := dataFor(ref, false)
		if err != nil {
			return nil, err
		}
		t.pois[id] = &poiState{
			poi:    POI{ID: id, X: x, Y: y},
			loc:    t.scaled(x, y),
			data:   data,
			z:      z,
			total:  total,
			inTree: true,
		}
	}

	// PEND.
	es, err := c.section("PEND")
	if err != nil {
		return nil, err
	}
	neps, err := es.count(24)
	if err != nil {
		return nil, err
	}
	for i := 0; i < neps; i++ {
		start, err := es.i64()
		if err != nil {
			return nil, err
		}
		end, err := es.i64()
		if err != nil {
			return nil, err
		}
		n, err := es.count(16)
		if err != nil {
			return nil, err
		}
		m := make(map[int64]int64, n)
		for j := 0; j < n; j++ {
			id, err := es.i64()
			if err != nil {
				return nil, err
			}
			cnt, err := es.i64()
			if err != nil {
				return nil, err
			}
			m[id] = cnt
		}
		t.pending[tia.Interval{Start: start, End: end}] = m
	}

	// NODE + ENTR → FlatTree.
	ns, err := c.section("NODE")
	if err != nil {
		return nil, err
	}
	nnodes, err := ns.count(v3NodeBytes)
	if err != nil {
		return nil, err
	}
	f := &rstar.FlatTree{Dims: t.dims, Height: int(height), Count: int(itemCount)}
	f.Nodes = make([]rstar.FlatNode, nnodes)
	for i := range f.Nodes {
		var lvl, start, cnt uint32
		for _, dst := range []*uint32{&lvl, &start, &cnt} {
			if *dst, err = ns.u32(); err != nil {
				return nil, err
			}
		}
		f.Nodes[i] = rstar.FlatNode{Level: int32(lvl), Start: int32(start), Count: int32(cnt)}
	}
	esec, err := c.section("ENTR")
	if err != nil {
		return nil, err
	}
	nentries, err := esec.count(v3EntryBytes)
	if err != nil {
		return nil, err
	}
	f.Rects = make([]geo.Rect, nentries)
	f.Children = make([]int32, nentries)
	f.Items = make([]int64, nentries)
	f.Data = make([]any, nentries)
	leaves := 0
	for i := 0; i < nentries; i++ {
		var r geo.Rect
		for d := 0; d < geo.MaxDims; d++ {
			if r.Min[d], err = esec.f64(); err != nil {
				return nil, err
			}
		}
		for d := 0; d < geo.MaxDims; d++ {
			if r.Max[d], err = esec.f64(); err != nil {
				return nil, err
			}
		}
		child, err := esec.u32()
		if err != nil {
			return nil, err
		}
		item, err := esec.i64()
		if err != nil {
			return nil, err
		}
		ref, err := esec.u32()
		if err != nil {
			return nil, err
		}
		f.Rects[i], f.Children[i], f.Items[i] = r, int32(child), item
		owned := true
		if int32(child) < 0 { // leaf entry: shares the POI's aggData
			st, ok := t.pois[item]
			if !ok {
				return nil, fmt.Errorf("core: snapshot leaf entry references unknown POI %d", item)
			}
			if st.data != nil {
				owned = false
			}
			leaves++
		}
		d, err := dataFor(ref, owned)
		if err != nil {
			return nil, err
		}
		if int32(child) < 0 && d != t.pois[item].data {
			return nil, fmt.Errorf("core: snapshot leaf entry for POI %d cites TIA %d, not the POI's", item, ref)
		}
		f.Data[i] = d
	}
	if leaves != npois {
		return nil, fmt.Errorf("core: snapshot has %d leaf entries for %d POIs", leaves, npois)
	}
	if c.off != len(c.b) {
		return nil, fmt.Errorf("core: snapshot has %d trailing bytes", len(c.b)-c.off)
	}

	// Thaw validates the structure (bounds, cycles, aliasing, level skew)
	// and restores the pointer tree; the flat form itself becomes the
	// installed frozen layout.
	rt, err := f.Thaw(t.rstarConfig())
	if err != nil {
		return nil, err
	}
	t.rt = rt
	t.setFrozen(f)
	return t, nil
}
