package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"tartree/internal/obs"
	"tartree/internal/tia"
)

// TestSnapshotV3RoundTrip: save-v3 → load reproduces the tree exactly —
// structure, aggregates, pending check-ins, λ̂max — for every grouping,
// arrives pre-frozen, and stays mutable.
func TestSnapshotV3RoundTrip(t *testing.T) {
	for _, g := range []Grouping{TAR3D, IndSpa, IndAgg} {
		t.Run(g.String(), func(t *testing.T) {
			tr, r := buildRandomTree(t, g, 300, 17)
			// Buffer some unflushed check-ins so PEND is exercised.
			for i := 0; i < 25; i++ {
				if err := tr.AddCheckIn(int64(1+r.Intn(300)), tr.clock+int64(i%3)); err != nil {
					t.Fatal(err)
				}
			}
			var buf bytes.Buffer
			if err := tr.SaveSnapshotV3(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := LoadSnapshot(bytes.NewReader(buf.Bytes()), nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != tr.Len() {
				t.Fatalf("len = %d, want %d", got.Len(), tr.Len())
			}
			if !got.Frozen() {
				t.Fatal("v3 load did not install the frozen layout")
			}
			if got.lambdaMax != tr.lambdaMax {
				t.Fatalf("lambdaMax = %v, want %v", got.lambdaMax, tr.lambdaMax)
			}
			if got.PendingCheckIns() != tr.PendingCheckIns() {
				t.Fatalf("pending = %d, want %d", got.PendingCheckIns(), tr.PendingCheckIns())
			}
			if err := got.Check(); err != nil {
				t.Fatal(err)
			}
			// Identical query answers (exact: same rects, same aggregates).
			for trial := 0; trial < 10; trial++ {
				q := Query{
					X: r.Float64() * 100, Y: r.Float64() * 100,
					Iq:     tia.Interval{Start: int64(r.Intn(100)), End: int64(120 + r.Intn(80))},
					K:      7,
					Alpha0: 0.3,
				}
				a, _, err := tr.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				b, _, err := got.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("trial %d: answers differ after v3 round trip", trial)
				}
			}
			// The restored tree accepts further updates (structural mutation
			// drops the frozen form first).
			if err := got.InsertPOI(POI{ID: 9999, X: 2, Y: 2}, nil); err != nil {
				t.Fatal(err)
			}
			if got.Frozen() {
				t.Fatal("insert after v3 load left the frozen layout installed")
			}
			if err := got.AddCheckIn(9999, got.clock+1); err != nil {
				t.Fatal(err)
			}
			if err := got.FlushAll(); err != nil {
				t.Fatal(err)
			}
			if _, err := got.DeletePOI(42); err != nil {
				t.Fatal(err)
			}
			if err := got.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSnapshotV3MatchesV2: a tree saved both ways loads to equivalent
// trees — same answers, same aggregates — so old gob snapshots keep loading
// through the legacy path while new checkpoints use v3.
func TestSnapshotV3MatchesV2(t *testing.T) {
	for _, g := range []Grouping{TAR3D, IndSpa, IndAgg} {
		t.Run(g.String(), func(t *testing.T) {
			tr, r := buildRandomTree(t, g, 200, 23)
			var v2, v3 bytes.Buffer
			if err := tr.SaveSnapshot(&v2); err != nil {
				t.Fatal(err)
			}
			if err := tr.SaveSnapshotV3(&v3); err != nil {
				t.Fatal(err)
			}
			fromV2, err := LoadSnapshot(&v2, nil)
			if err != nil {
				t.Fatal(err)
			}
			fromV3, err := LoadSnapshot(&v3, nil)
			if err != nil {
				t.Fatal(err)
			}
			if fromV2.Len() != fromV3.Len() {
				t.Fatalf("lens differ: %d vs %d", fromV2.Len(), fromV3.Len())
			}
			iv := tia.Interval{Start: 0, End: 500}
			fromV2.POIs(func(p POI, total int64) bool {
				a, err := fromV2.Aggregate(p.ID, iv)
				if err != nil {
					t.Fatal(err)
				}
				b, err := fromV3.Aggregate(p.ID, iv)
				if err != nil {
					t.Fatal(err)
				}
				if a != b {
					t.Fatalf("POI %d: aggregate %d (v2) vs %d (v3)", p.ID, a, b)
				}
				return true
			})
			for trial := 0; trial < 10; trial++ {
				q := Query{
					X: r.Float64() * 100, Y: r.Float64() * 100,
					Iq:     tia.Interval{Start: int64(r.Intn(100)), End: int64(120 + r.Intn(80))},
					K:      5,
					Alpha0: 0.4,
				}
				a, _, err := fromV2.QueryCtx(context.Background(), q, nil)
				if err != nil {
					t.Fatal(err)
				}
				b, _, err := fromV3.QueryCtx(context.Background(), q, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(a) != len(b) {
					t.Fatalf("trial %d: %d vs %d results", trial, len(a), len(b))
				}
				for i := range a {
					if a[i].POI.ID != b[i].POI.ID || a[i].Agg != b[i].Agg {
						t.Fatalf("trial %d pos %d: (%d,%d) vs (%d,%d)",
							trial, i, a[i].POI.ID, a[i].Agg, b[i].POI.ID, b[i].Agg)
					}
				}
			}
		})
	}
}

// TestSnapshotV3RejectsCorrupt: truncations, bit flips and a wrong magic
// must all error — never panic, never load silently wrong data. The CRC
// trailer catches every single-bit flip; structural validation backs it up.
func TestSnapshotV3RejectsCorrupt(t *testing.T) {
	tr, _ := buildRandomTree(t, TAR3D, 120, 31)
	var buf bytes.Buffer
	if err := tr.SaveSnapshotV3(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()

	// Every truncation point (sampled for speed) must error.
	for n := 0; n < len(img); n += 7 {
		if _, err := LoadSnapshot(bytes.NewReader(img[:n]), nil); err == nil {
			t.Fatalf("truncation at %d bytes accepted", n)
		}
	}
	// Bit flips across the image (sampled): CRC must reject.
	for off := 0; off < len(img); off += 131 {
		for bit := 0; bit < 8; bit += 3 {
			mut := append([]byte(nil), img...)
			mut[off] ^= 1 << bit
			if _, err := LoadSnapshot(bytes.NewReader(mut), nil); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", off, bit)
			}
		}
	}
	// Wrong magic falls through to the gob path and must error there.
	mut := append([]byte(nil), img...)
	mut[0] = 'X'
	if _, err := LoadSnapshot(bytes.NewReader(mut), nil); err == nil {
		t.Fatal("wrong magic accepted")
	}
}

// TestSnapshotV3EmptyTree: a POI-less tree round-trips.
func TestSnapshotV3EmptyTree(t *testing.T) {
	tr := mustTree(t, defaultOpts(TAR3D))
	var buf bytes.Buffer
	if err := tr.SaveSnapshotV3(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("len = %d", got.Len())
	}
	if err := got.InsertPOI(POI{ID: 1, X: 5, Y: 5}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotV3RestoreExportsIndexGauges: a tree restored frozen from a
// v3 image reports the by-layout footprint gauges without ever calling
// Freeze — the loader installs the layout through the same telemetry path.
func TestSnapshotV3RestoreExportsIndexGauges(t *testing.T) {
	tr, _ := buildRandomTree(t, TAR3D, 200, 23)
	var buf bytes.Buffer
	if err := tr.SaveSnapshotV3(&buf); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	got, err := LoadSnapshotObserved(bytes.NewReader(buf.Bytes()), nil, reg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Frozen() {
		t.Fatal("v3 load did not install the frozen layout")
	}
	ptr := reg.Gauge(`tartree_index_bytes{layout="pointer"}`).Value()
	flat := reg.Gauge(`tartree_index_bytes{layout="flat"}`).Value()
	if flat <= 0 || ptr <= 0 || flat >= ptr {
		t.Fatalf("restored gauges: pointer=%v flat=%v (want 0 < flat < pointer)", ptr, flat)
	}
	if n := reg.Counter("tartree_freezes_total").Value(); n != 0 {
		t.Fatalf("restore counted as a freeze: tartree_freezes_total = %v", n)
	}
}

// TestSnapshotV3GeometricEpochs: the geometric-grid flag round-trips.
func TestSnapshotV3GeometricEpochs(t *testing.T) {
	opts := Options{
		World:    world(0, 0, 100, 100),
		Grouping: TAR3D,
		Epochs:   GeometricEpochs{Start: 0, First: 10},
	}
	tr := mustTree(t, opts)
	if err := tr.InsertPOI(POI{ID: 1, X: 5, Y: 5}, []tia.Record{{Ts: 0, Te: 10, Agg: 3}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.SaveSnapshotV3(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Epochs().(GeometricEpochs); !ok {
		t.Fatalf("epochs = %T, want GeometricEpochs", got.Epochs())
	}
	a, _ := got.Aggregate(1, tia.Interval{Start: 0, End: 100})
	if a != 3 {
		t.Fatalf("aggregate = %d", a)
	}
}

// TestSnapshotV3Deterministic: saving the same tree twice yields identical
// bytes (entry order is fixed by the frozen compile, POIs and pending are
// sorted), so checkpoint artifacts are reproducible and diffable.
func TestSnapshotV3Deterministic(t *testing.T) {
	tr, _ := buildRandomTree(t, TAR3D, 150, 41)
	var a, b bytes.Buffer
	if err := tr.SaveSnapshotV3(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.SaveSnapshotV3(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same tree differ")
	}
}

// FuzzLoadSnapshotV3 hammers the v3 decoder with mutated images: any input
// must either load cleanly or error — panics and unbounded allocations are
// the failure modes the bounds-checked cursor exists to prevent.
func FuzzLoadSnapshotV3(f *testing.F) {
	tr, _ := buildRandomTree(f, TAR3D, 60, 53)
	var buf bytes.Buffer
	if err := tr.SaveSnapshotV3(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:40])
	f.Add(snapshotV3Magic[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := LoadSnapshot(bytes.NewReader(data), nil)
		if err == nil && tr == nil {
			t.Fatal("nil tree without error")
		}
	})
}
