package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"tartree/internal/geo"
	"tartree/internal/obs"
	"tartree/internal/pagestore"
	"tartree/internal/rstar"
	"tartree/internal/tia"
)

// buildAccountingTree indexes a deterministic grid of POIs with small nodes
// so the tree has several levels under every grouping.
func buildAccountingTree(t testing.TB, g Grouping) *Tree {
	t.Helper()
	return buildAccountingTreeOpts(t, Options{
		World:       geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{100, 100}},
		NodeSize:    256,
		Grouping:    g,
		EpochStart:  0,
		EpochLength: 100,
	})
}

func buildAccountingTreeOpts(t testing.TB, opts Options) *Tree {
	t.Helper()
	tr, err := NewTree(opts)
	if err != nil {
		t.Fatal(err)
	}
	id := int64(0)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			id++
			// Deterministic, poi-dependent histories spread over 6 epochs.
			var hist []tia.Record
			for e := int64(0); e < 6; e++ {
				agg := (id+e)%5 + 1
				hist = append(hist, tia.Record{Ts: e * 100, Te: (e + 1) * 100, Agg: agg})
			}
			p := POI{ID: id, X: float64(i*5 + 2), Y: float64(j*5 + 2)}
			if err := tr.InsertPOI(p, hist); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tr
}

// walkCounts independently tallies the tree's shape by direct traversal:
// the numbers an exhaustive best-first search must reproduce in its
// QueryStats.
func walkCounts(root *rstar.Node) (internalNodes, leafNodes, entries int) {
	var walk func(n *rstar.Node)
	walk = func(n *rstar.Node) {
		if n.Level == 0 {
			leafNodes++
		} else {
			internalNodes++
		}
		entries += len(n.Entries)
		for _, e := range n.Entries {
			if e.Child != nil {
				walk(e.Child)
			}
		}
	}
	walk(root)
	return
}

// TestQueryStatsAccounting pins the meaning of the work counters for all
// three groupings: an exhaustive query (k = number of POIs) must expand
// every node exactly once, so InternalAccesses/LeafAccesses equal an
// independent traversal count, Scored equals the total number of entries,
// and the access identities hold.
func TestQueryStatsAccounting(t *testing.T) {
	for _, g := range []Grouping{TAR3D, IndSpa, IndAgg} {
		t.Run(g.String(), func(t *testing.T) {
			tr := buildAccountingTree(t, g)
			internals, leaves, entries := walkCounts(tr.Root())
			if internals < 2 || leaves < 4 {
				t.Fatalf("tree too shallow for the test: %d internal, %d leaf nodes", internals, leaves)
			}
			// Cross-check the independent walk against the tree's own count.
			nl, ni := tr.NodeCount()
			if nl != leaves || ni != internals {
				t.Fatalf("walk found %d/%d nodes, NodeCount says %d/%d", leaves, internals, nl, ni)
			}

			q := Query{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 600}, K: tr.Len(), Alpha0: 0.5}
			res, stats, err := tr.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != tr.Len() {
				t.Fatalf("exhaustive query returned %d of %d POIs", len(res), tr.Len())
			}
			if stats.InternalAccesses != internals {
				t.Errorf("InternalAccesses = %d, want %d", stats.InternalAccesses, internals)
			}
			if stats.LeafAccesses != leaves {
				t.Errorf("LeafAccesses = %d, want %d", stats.LeafAccesses, leaves)
			}
			if got := stats.RTreeAccesses(); got != internals+leaves {
				t.Errorf("RTreeAccesses = %d, want %d", got, internals+leaves)
			}
			if stats.Scored != entries {
				t.Errorf("Scored = %d, want %d (one per entry)", stats.Scored, entries)
			}
			if stats.TIAAccesses <= 0 {
				t.Errorf("TIAAccesses = %d, want > 0 with the disk backend", stats.TIAAccesses)
			}
			if stats.TIAPhysical < 0 || stats.TIAPhysical > stats.TIAAccesses {
				t.Errorf("TIAPhysical = %d outside [0, %d]", stats.TIAPhysical, stats.TIAAccesses)
			}
			if got := stats.NodeAccesses(); got != int64(internals+leaves)+stats.TIAAccesses {
				t.Errorf("NodeAccesses = %d, want RTree+TIA = %d", got, int64(internals+leaves)+stats.TIAAccesses)
			}

			// A k=1 query can never do more work than the exhaustive one.
			_, one, err := tr.Query(Query{X: 50, Y: 50, Iq: q.Iq, K: 1, Alpha0: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			if one.RTreeAccesses() > stats.RTreeAccesses() {
				t.Errorf("k=1 accesses %d exceed exhaustive %d", one.RTreeAccesses(), stats.RTreeAccesses())
			}
		})
	}
}

// TestInstrumentedTreeMetrics checks the Options.Metrics wiring end to end:
// after queries on an instrumented tree, the registry holds a nonzero
// latency histogram, matching work counters, pagestore traffic from the
// attached PageSink, and per-backend probe totals.
func TestInstrumentedTreeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	tr := buildAccountingTreeOpts(t, Options{
		World:       geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{100, 100}},
		NodeSize:    256,
		EpochStart:  0,
		EpochLength: 100,
		Metrics:     reg,
	})
	q := Query{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 600}, K: 5, Alpha0: 0.5}
	var want QueryStats
	for i := 0; i < 3; i++ {
		_, stats, err := tr.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want.InternalAccesses += stats.InternalAccesses
		want.LeafAccesses += stats.LeafAccesses
		want.TIAAccesses += stats.TIAAccesses
		want.Scored += stats.Scored
	}
	if got := reg.Counter("tartree_queries_total").Value(); got != 3 {
		t.Errorf("queries_total = %d, want 3", got)
	}
	h := reg.Histogram("tartree_query_latency_seconds", nil)
	if h.Count() != 3 || h.Sum() <= 0 {
		t.Errorf("latency histogram count=%d sum=%g", h.Count(), h.Sum())
	}
	if got := reg.Counter(`tartree_rtree_node_accesses_total{level="internal"}`).Value(); got != int64(want.InternalAccesses) {
		t.Errorf("internal accesses metric = %d, want %d", got, want.InternalAccesses)
	}
	if got := reg.Counter(`tartree_tia_page_reads_total{kind="logical"}`).Value(); got != want.TIAAccesses {
		t.Errorf("tia logical reads metric = %d, want %d", got, want.TIAAccesses)
	}
	snap := reg.Snapshot()
	if v, ok := snap[`tartree_tia_probes_total{backend="btree"}`].(int64); !ok || v <= 0 {
		t.Errorf("btree probe counter = %v", snap[`tartree_tia_probes_total{backend="btree"}`])
	}
	// The PageSink attached to the factory must have seen buffer traffic.
	var pageTraffic int64
	for _, key := range []string{
		`tartree_pagestore_reads_total{result="hit"}`,
		`tartree_pagestore_reads_total{result="miss"}`,
	} {
		if v, ok := snap[key].(int64); ok {
			pageTraffic += v
		}
	}
	if pageTraffic == 0 {
		t.Error("pagestore hit/miss counters are all zero")
	}
}

// TestQueryTracedRecordsSpans checks that a traced query aggregates the
// expected span names and that a nil trace changes nothing.
func TestQueryTracedRecordsSpans(t *testing.T) {
	tr := buildAccountingTree(t, TAR3D)
	q := Query{X: 20, Y: 20, Iq: tia.Interval{Start: 0, End: 600}, K: 3, Alpha0: 0.5}
	trace := obs.NewTrace()
	resTraced, statsTraced, err := tr.QueryTraced(q, trace)
	if err != nil {
		t.Fatal(err)
	}
	spans := make(map[string]obs.SpanStat)
	for _, s := range trace.Spans() {
		spans[s.Name] = s
	}
	for _, name := range []string{"gmax", "queue_pop", "expand", "tia_probe"} {
		if spans[name].Count == 0 {
			t.Errorf("span %q not recorded (have %v)", name, trace.Spans())
		}
	}
	if c := spans["tia_probe"].Count; c != int64(statsTraced.Scored) {
		t.Errorf("tia_probe count = %d, want Scored = %d", c, statsTraced.Scored)
	}

	resBare, statsBare, err := tr.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resBare) != len(resTraced) || statsBare != statsTraced {
		t.Errorf("tracing changed the query: %+v vs %+v", statsBare, statsTraced)
	}
}

// TestIOBreakdownConservation is the attribution conservation check, for
// all three groupings: every query's IOBreakdown must (a) match the flat
// QueryStats counters component by component, (b) contain no unattributed
// traffic, and (c) sum — across queries — to exactly the TIA factory's
// breakdown and flat Stats() deltas, which aggregate the underlying
// pagestore buffers' traffic.
func TestIOBreakdownConservation(t *testing.T) {
	backends := map[string]func() tia.Factory{
		"btree": func() tia.Factory { return tia.NewBTreeFactory(256, 10) },
		"mvbt":  func() tia.Factory { return tia.NewMVBTFactory(1024, 10) },
	}
	for _, g := range []Grouping{TAR3D, IndSpa, IndAgg} {
		for name, newFac := range backends {
			t.Run(g.String()+"/"+name, func(t *testing.T) {
				tr := buildAccountingTreeOpts(t, Options{
					World:       geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{100, 100}},
					NodeSize:    256,
					Grouping:    g,
					EpochStart:  0,
					EpochLength: 100,
					TIA:         newFac(),
				})
				fac := tr.TIAFactory()
				fac.ResetStats()
				queries := []Query{
					{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 600}, K: tr.Len(), Alpha0: 0.5},
					{X: 10, Y: 80, Iq: tia.Interval{Start: 100, End: 400}, K: 5, Alpha0: 0.3},
					{X: 95, Y: 5, Iq: tia.Interval{Start: 200, End: 600}, K: 1, Alpha0: 0.7},
					{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 600}, K: 10, Alpha0: 0.5},
				}
				var sum pagestore.IOBreakdown
				for i, q := range queries {
					_, stats, err := tr.Query(q)
					if err != nil {
						t.Fatal(err)
					}
					// R-tree cells are pure buffer hits (the R-tree is in
					// memory) and must equal the flat node-access counters.
					ri := stats.IO.Component(pagestore.CompRTreeInternal)
					rl := stats.IO.Component(pagestore.CompRTreeLeaf)
					if ri.Hits != int64(stats.InternalAccesses) || ri.Misses != 0 {
						t.Errorf("query %d: rtree-internal cell %+v, want %d pure hits", i, ri, stats.InternalAccesses)
					}
					if rl.Hits != int64(stats.LeafAccesses) || rl.Misses != 0 {
						t.Errorf("query %d: rtree-leaf cell %+v, want %d pure hits", i, rl, stats.LeafAccesses)
					}
					// TIA cells must reconcile with the flat TIA counters, and
					// no query traffic may be unattributed.
					var tiaHits, tiaMisses int64
					stats.IO.Each(func(c pagestore.Component, level int, cell pagestore.IOCell) {
						switch c {
						case pagestore.CompTIABTree, pagestore.CompTIAMVBT:
							tiaHits += cell.Hits
							tiaMisses += cell.Misses
						case pagestore.CompUnknown:
							t.Errorf("query %d: unattributed traffic at level %d: %+v", i, level, cell)
						}
					})
					if tiaHits+tiaMisses != stats.TIAAccesses {
						t.Errorf("query %d: tia cells sum to %d logical reads, flat counter says %d",
							i, tiaHits+tiaMisses, stats.TIAAccesses)
					}
					if tiaMisses != stats.TIAPhysical {
						t.Errorf("query %d: tia cells sum to %d misses, flat counter says %d",
							i, tiaMisses, stats.TIAPhysical)
					}
					sum.Add(&stats.IO)
				}
				// Conservation: with the R-tree cells (in-memory, never buffer
				// traffic) removed, the per-query breakdowns must sum exactly
				// to the factory's attributed and flat windows, which aggregate
				// the buffers' own Stats().
				tiaSum := sum
				tiaSum[pagestore.CompRTreeInternal] = [pagestore.MaxIOLevels]pagestore.IOCell{}
				tiaSum[pagestore.CompRTreeLeaf] = [pagestore.MaxIOLevels]pagestore.IOCell{}
				if got := fac.Breakdown(); got != tiaSum {
					t.Errorf("factory breakdown delta does not equal the sum of per-query breakdowns:\n got %v\nwant %v", got, tiaSum)
				}
				if got, want := tiaSum.Total(), fac.Stats(); got != want {
					t.Errorf("breakdown total %+v != factory stats %+v", got, want)
				}
				if tiaSum.Total().LogicalReads == 0 {
					t.Error("conservation held but no TIA traffic was observed")
				}
			})
		}
	}
}

// TestIOBreakdownConservationConcurrent is the concurrent variant of the
// conservation check: with 8 goroutines querying the same tree at once, each
// query's IOBreakdown must still reconcile with its own flat counters (the
// accounting is query-local, not a racy global diff), and the per-query
// breakdowns must still sum — across all goroutines — to exactly the
// factory's global delta: every buffer access lands in precisely one
// query's breakdown, including evictions and write-backs attributed to the
// access that triggered them. Run with -race.
func TestIOBreakdownConservationConcurrent(t *testing.T) {
	backends := map[string]func() tia.Factory{
		"btree": func() tia.Factory { return tia.NewBTreeFactory(256, 10) },
		"mvbt":  func() tia.Factory { return tia.NewMVBTFactory(1024, 10) },
	}
	for name, newFac := range backends {
		name, newFac := name, newFac
		t.Run(name, func(t *testing.T) {
			tr := buildAccountingTreeOpts(t, Options{
				World:       geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{100, 100}},
				NodeSize:    256,
				Grouping:    TAR3D,
				EpochStart:  0,
				EpochLength: 100,
				TIA:         newFac(),
			})
			fac := tr.TIAFactory()
			fac.ResetStats()

			const workers = 8
			const perWorker = 12
			sums := make([]pagestore.IOBreakdown, workers)
			errs := make(chan error, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(w) * 97))
					for i := 0; i < perWorker; i++ {
						start := int64(r.Intn(4)) * 100
						q := Query{
							X: r.Float64() * 100, Y: r.Float64() * 100,
							Iq:     tia.Interval{Start: start, End: start + 100 + int64(r.Intn(5))*100},
							K:      1 + r.Intn(20),
							Alpha0: 0.1 + 0.8*r.Float64(),
						}
						_, stats, err := tr.Query(q)
						if err != nil {
							errs <- err
							return
						}
						// Per-query reconciliation under load.
						var tiaHits, tiaMisses int64
						bad := false
						stats.IO.Each(func(c pagestore.Component, level int, cell pagestore.IOCell) {
							switch c {
							case pagestore.CompTIABTree, pagestore.CompTIAMVBT:
								tiaHits += cell.Hits
								tiaMisses += cell.Misses
							case pagestore.CompUnknown:
								bad = true
							}
						})
						if bad {
							errs <- fmt.Errorf("worker %d query %d: unattributed traffic: %v", w, i, stats.IO)
							return
						}
						if tiaHits+tiaMisses != stats.TIAAccesses || tiaMisses != stats.TIAPhysical {
							errs <- fmt.Errorf("worker %d query %d: cells (%d logical, %d misses) != flat counters (%d, %d)",
								w, i, tiaHits+tiaMisses, tiaMisses, stats.TIAAccesses, stats.TIAPhysical)
							return
						}
						sums[w].Add(&stats.IO)
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// Global conservation: the per-query breakdowns, summed across all
			// goroutines, equal the factory's delta exactly.
			var sum pagestore.IOBreakdown
			for w := range sums {
				sum.Add(&sums[w])
			}
			sum[pagestore.CompRTreeInternal] = [pagestore.MaxIOLevels]pagestore.IOCell{}
			sum[pagestore.CompRTreeLeaf] = [pagestore.MaxIOLevels]pagestore.IOCell{}
			if got := fac.Breakdown(); got != sum {
				t.Errorf("factory breakdown != sum of per-query breakdowns across %d concurrent workers:\n got %v\nwant %v",
					workers, got, sum)
			}
			if got, want := sum.Total(), fac.Stats(); got != want {
				t.Errorf("breakdown total %+v != factory stats %+v", got, want)
			}
			if sum.Total().LogicalReads == 0 {
				t.Error("no TIA traffic observed")
			}
		})
	}
}
