package core

import (
	"math"
	"sort"

	"tartree/internal/rstar"
	"tartree/internal/tia"
)

// aggStrategy implements the IND-agg grouping of Section 5.1: entries are
// grouped by the similarity of their aggregate distributions, measured with
// the Manhattan distance. When a POI is added it goes to the node with the
// smallest distance; when a node splits, entries are redistributed so the
// distance between the two new nodes is maximized.
type aggStrategy struct{}

// entryRecords returns the aggregate-distribution records of an entry.
func entryRecords(e rstar.Entry) []tia.Record {
	d, _ := e.Data.(*aggData)
	if d == nil || d.mirror == nil {
		return nil
	}
	return d.mirror.Records()
}

// ChooseSubtree implements rstar.Strategy: pick the child whose aggregate
// distribution is nearest (Manhattan) to the inserted entry's, breaking
// ties by spatial enlargement so degenerate distributions stay stable.
func (aggStrategy) ChooseSubtree(t *rstar.Tree, n *rstar.Node, e rstar.Entry) int {
	recs := entryRecords(e)
	best, bestDist, bestEnl := 0, int64(math.MaxInt64), math.Inf(1)
	for i, c := range n.Entries {
		d := tia.ManhattanRecords(recs, entryRecords(c))
		enl := c.Rect.Enlargement(e.Rect, t.Dims())
		if d < bestDist || (d == bestDist && enl < bestEnl) {
			best, bestDist, bestEnl = i, d, enl
		}
	}
	return best
}

// Split implements rstar.Strategy: choose the two seed entries with the
// largest pairwise distribution distance and grow two groups by assigning
// each remaining entry to the nearer seed group, respecting the minimum
// fill. Group distributions are tracked as running per-epoch maxima, the
// same summary an internal TIA keeps.
func (aggStrategy) Split(t *rstar.Tree, level int, entries []rstar.Entry) ([]rstar.Entry, []rstar.Entry) {
	n := len(entries)
	m := t.MinFill()

	// Seed selection: the pair with maximum Manhattan distance.
	si, sj := 0, 1
	var bestD int64 = -1
	for i := 0; i < n; i++ {
		ri := entryRecords(entries[i])
		for j := i + 1; j < n; j++ {
			if d := tia.ManhattanRecords(ri, entryRecords(entries[j])); d > bestD {
				bestD, si, sj = d, i, j
			}
		}
	}

	groupA := tia.NewMem()
	groupB := tia.NewMem()
	tia.MaxMerge(groupA, mirrorOf(entries[si])) //nolint:errcheck // Mem.Put never fails
	tia.MaxMerge(groupB, mirrorOf(entries[sj])) //nolint:errcheck
	left := []rstar.Entry{entries[si]}
	right := []rstar.Entry{entries[sj]}

	// Assign the rest in order of strongest preference first.
	rest := make([]int, 0, n-2)
	for i := 0; i < n; i++ {
		if i != si && i != sj {
			rest = append(rest, i)
		}
	}
	type pref struct {
		idx  int
		diff int64 // |d(A) − d(B)|: larger means a clearer preference
	}
	prefs := make([]pref, len(rest))
	for k, i := range rest {
		ri := entryRecords(entries[i])
		da := tia.ManhattanRecords(ri, groupA.Records())
		db := tia.ManhattanRecords(ri, groupB.Records())
		d := da - db
		if d < 0 {
			d = -d
		}
		prefs[k] = pref{idx: i, diff: d}
	}
	sort.Slice(prefs, func(a, b int) bool { return prefs[a].diff > prefs[b].diff })

	for _, p := range prefs {
		i := p.idx
		ri := entryRecords(entries[i])
		da := tia.ManhattanRecords(ri, groupA.Records())
		db := tia.ManhattanRecords(ri, groupB.Records())
		// Honor the minimum fill: once one side can no longer give the
		// other its share, force assignment.
		toA := da <= db
		if len(left)+(n-len(left)-len(right)) <= m {
			toA = true
		} else if len(right)+(n-len(left)-len(right)) <= m {
			toA = false
		} else if len(left) >= n-m {
			toA = false
		} else if len(right) >= n-m {
			toA = true
		}
		if toA {
			left = append(left, entries[i])
			tia.MaxMerge(groupA, mirrorOf(entries[i])) //nolint:errcheck
		} else {
			right = append(right, entries[i])
			tia.MaxMerge(groupB, mirrorOf(entries[i])) //nolint:errcheck
		}
	}
	return left, right
}

func mirrorOf(e rstar.Entry) *tia.Mem {
	d, _ := e.Data.(*aggData)
	if d == nil || d.mirror == nil {
		return tia.NewMem()
	}
	return d.mirror
}
