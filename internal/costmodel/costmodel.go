// Package costmodel implements the query-cost analysis of Section 6 of the
// paper: the estimation of the kth result's ranking score f(pk) via the
// cone-shaped search region over power-law aggregate layers (Section 6.2),
// and the estimation of the number of leaf node accesses via bands of
// cubic nodes intersected with the search cone (Section 6.3).
//
// The model views the data in a normalized 3-dimensional unit cube: two
// spatial dimensions and an aggregate dimension where a POI with aggregate
// value x sits on the layer at height h(x) = 1 − x/xmax. The query point is
// at height 0, and the search region of a query with final score f is the
// cone of base radius r0 = f/α0 and height hl = f/α1.
package costmodel

import (
	"errors"
	"math"
	"sort"

	"tartree/internal/powerlaw"
)

// Layer is one aggregate value and the (expected) number of POIs holding it.
type Layer struct {
	X     int64   // aggregate value
	Count float64 // number of POIs on the layer
}

// Params parameterizes the cost model for one query class.
type Params struct {
	// Alpha0 is the spatial weight; α1 = 1 − Alpha0.
	Alpha0 float64
	// K is the number of requested results.
	K int
	// Fanout is the effective fanout f of the tree: typically 69% of the
	// node capacity (Theodoridis & Sellis, cited in Section 6.3).
	Fanout float64
	// MaxAgg is the largest aggregate value (the normalizer of the
	// aggregate dimension).
	MaxAgg int64
	// Layers lists the POI population per aggregate value, ascending in X.
	// Build it with PowerLawLayers (the paper's model) or EmpiricalLayers.
	Layers []Layer
	// DistScale converts normalized spatial distances into unit-square
	// units. The ranking function divides distances by the diagonal of the
	// space, so a normalized distance d corresponds to d·√2 in the unit
	// square; the paper's formulas leave this implicit. Zero selects √2;
	// set 1 to reproduce the paper's unscaled radii.
	DistScale float64
}

func (p *Params) validate() error {
	if p.Alpha0 <= 0 || p.Alpha0 >= 1 {
		return errors.New("costmodel: α0 must be in (0, 1)")
	}
	if p.K <= 0 {
		return errors.New("costmodel: k must be positive")
	}
	if p.Fanout <= 1 {
		return errors.New("costmodel: fanout must exceed 1")
	}
	if p.MaxAgg <= 0 {
		return errors.New("costmodel: MaxAgg must be positive")
	}
	if len(p.Layers) == 0 {
		return errors.New("costmodel: no layers")
	}
	if !sort.SliceIsSorted(p.Layers, func(i, j int) bool { return p.Layers[i].X < p.Layers[j].X }) {
		return errors.New("costmodel: layers must be ascending in X")
	}
	if p.DistScale == 0 {
		p.DistScale = math.Sqrt2
	}
	return nil
}

// height returns h(x) = 1 − x/xmax, clamped to [0, 1].
func (p *Params) height(x int64) float64 {
	h := 1 - float64(x)/float64(p.MaxAgg)
	if h < 0 {
		return 0
	}
	return h
}

// expectedDiscArea returns E[S_{D(q,r) ∩ U}]: the expected area of a disc
// of radius r centered at a uniform point of the unit square, clipped to
// the square (Section 6.2, after Tao et al.).
func expectedDiscArea(r float64) float64 {
	if r <= 0 {
		return 0
	}
	a := math.SqrtPi * r
	if a >= 2 {
		return 1
	}
	e := a - a*a/4
	return e * e
}

// coneRadius returns the search-cone radius at height h for final score f,
// in unit-square units (0 above the cone).
func (p *Params) coneRadius(f, h float64) float64 {
	hl := f / (1 - p.Alpha0)
	if h >= hl {
		return 0
	}
	r0 := p.DistScale * f / p.Alpha0
	return r0 * (hl - h) / hl
}

// expectedInRegion returns the expected number of POIs inside the search
// region of a query with final score f: Σ_x N(x)·E[S_{D(q,r_x) ∩ U_x}].
func (p *Params) expectedInRegion(f float64) float64 {
	total := 0.0
	for _, l := range p.Layers {
		r := p.coneRadius(f, p.height(l.X))
		total += l.Count * expectedDiscArea(r)
	}
	return total
}

// EstimateFk solves k = Σ_x N(x)·E[S_{D(q,r_x) ∩ U_x}] for the expected
// ranking score of the kth result, by bisection (the count is monotone in
// f). It returns 1 when even the full cube holds fewer than k POIs.
func (p *Params) EstimateFk() (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	lo, hi := 0.0, 1.0
	if p.expectedInRegion(hi) < float64(p.K) {
		return 1, nil
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if p.expectedInRegion(mid) < float64(p.K) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Band is one slab of cubic leaf nodes produced by the node-access
// estimation (exported for tests and for cost-model introspection).
type Band struct {
	TopLayer, BottomLayer int     // indexes into Layers
	Count                 float64 // expected number of nodes in the band
	Side                  float64 // node extent (side length) S_y
	Radius                float64 // cone cross-section radius at the band bottom
	P                     float64 // access probability of a node in the band
}

// EstimateLeafAccesses computes the expected number of leaf node accesses
// NA(α, k) for a query whose final score is fk (Section 6.3): the unit
// cube is cut into bands of cubic nodes whose spatial extent matches their
// height, and each band contributes (ΣN/f)·P_y with P_y derived from the
// Minkowski sum of the node extent and the cone cross-section.
func (p *Params) EstimateLeafAccesses(fk float64) (float64, []Band, error) {
	if err := p.validate(); err != nil {
		return 0, nil, err
	}
	hl := fk / (1 - p.Alpha0)
	var bands []Band
	total := 0.0
	start := 0
	for start < len(p.Layers) {
		hx := p.height(p.Layers[start].X)
		sum := 0.0
		y := start
		side := 0.0
		for ; y < len(p.Layers); y++ {
			sum += p.Layers[y].Count
			side = p.nodeSide(sum)
			dh := hx - p.height(p.Layers[y].X)
			if side <= dh {
				break
			}
		}
		if y == len(p.Layers) {
			y--
		}
		hy := p.height(p.Layers[y].X)
		band := Band{TopLayer: start, BottomLayer: y, Count: sum / p.Fanout, Side: side}
		if hy < hl { // the band reaches into the cone
			band.Radius = p.coneRadius(fk, hy)
			band.P = accessProbability(side, band.Radius)
		}
		total += band.Count * band.P
		bands = append(bands, band)
		start = y + 1
	}
	return total, bands, nil
}

// nodeSide returns the spatial node extent S_y for a band holding n POIs:
// (1 − 1/f)·min(f/n, 1)^{1/2} (Böhm's model, Section 6.3).
func (p *Params) nodeSide(n float64) float64 {
	if n <= 0 {
		return 1
	}
	m := p.Fanout / n
	if m > 1 {
		m = 1
	}
	return (1 - 1/p.Fanout) * math.Sqrt(m)
}

// accessProbability is P_y: the probability that a node of side s in the
// band intersects the cone cross-section of radius r, with boundary
// effects (Section 6.3). L_y is the side of the square whose area equals
// the Minkowski sum of the node and the disc: L² = s² + 4sr + πr².
func accessProbability(s, r float64) float64 {
	l := math.Sqrt(s*s + 4*s*r + math.Pi*r*r)
	if l+s >= 2 || s >= 1 {
		return 1
	}
	p := (4*l - (l+s)*(l+s)) / (4 * (1 - s))
	p *= p
	if p > 1 {
		return 1
	}
	if p < 0 {
		return 0
	}
	return p
}

// Estimate runs the full pipeline: f(pk) then the leaf node accesses.
func (p *Params) Estimate() (fk, leafAccesses float64, err error) {
	fk, err = p.EstimateFk()
	if err != nil {
		return 0, 0, err
	}
	leafAccesses, _, err = p.EstimateLeafAccesses(fk)
	return fk, leafAccesses, err
}

// PowerLawLayers builds the layer population the paper's analysis uses:
// N(x) = N·p(x) with p(x) = x^−β/ζ(β, xmin) for x in [xmin, xmax], plus an
// optional zero layer of POIs with no check-ins in the interval (height 1).
func PowerLawLayers(n float64, beta float64, xmin, xmax int64, zeroCount float64) ([]Layer, error) {
	d, err := powerlaw.NewDist(beta, xmin)
	if err != nil {
		return nil, err
	}
	var layers []Layer
	if zeroCount > 0 {
		layers = append(layers, Layer{X: 0, Count: zeroCount})
	}
	for x := xmin; x <= xmax; x++ {
		layers = append(layers, Layer{X: x, Count: n * d.PMF(x)})
	}
	return layers, nil
}

// EmpiricalLayers builds layers from observed aggregate values (zeros
// included as the height-1 layer).
func EmpiricalLayers(aggs []int64) []Layer {
	counts := map[int64]float64{}
	for _, a := range aggs {
		counts[a]++
	}
	layers := make([]Layer, 0, len(counts))
	for x, c := range counts {
		layers = append(layers, Layer{X: x, Count: c})
	}
	sort.Slice(layers, func(i, j int) bool { return layers[i].X < layers[j].X })
	return layers
}
