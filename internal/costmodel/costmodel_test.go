package costmodel

import (
	"math"
	"math/rand"
	"testing"
)

func uniformLayers(n int, perLayer float64) []Layer {
	layers := make([]Layer, n)
	for i := range layers {
		layers[i] = Layer{X: int64(i + 1), Count: perLayer}
	}
	return layers
}

func TestValidation(t *testing.T) {
	good := Params{Alpha0: 0.3, K: 10, Fanout: 34.5, MaxAgg: 100, Layers: uniformLayers(10, 5)}
	if _, err := good.EstimateFk(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Alpha0: 0, K: 10, Fanout: 30, MaxAgg: 10, Layers: uniformLayers(5, 1)},
		{Alpha0: 0.3, K: 0, Fanout: 30, MaxAgg: 10, Layers: uniformLayers(5, 1)},
		{Alpha0: 0.3, K: 10, Fanout: 0.5, MaxAgg: 10, Layers: uniformLayers(5, 1)},
		{Alpha0: 0.3, K: 10, Fanout: 30, MaxAgg: 0, Layers: uniformLayers(5, 1)},
		{Alpha0: 0.3, K: 10, Fanout: 30, MaxAgg: 10},
		{Alpha0: 0.3, K: 10, Fanout: 30, MaxAgg: 10,
			Layers: []Layer{{X: 5, Count: 1}, {X: 2, Count: 1}}},
	}
	for i, p := range bad {
		if _, err := p.EstimateFk(); err == nil {
			t.Errorf("params %d accepted", i)
		}
	}
}

func TestExpectedDiscArea(t *testing.T) {
	if got := expectedDiscArea(0); got != 0 {
		t.Errorf("r=0 area = %v", got)
	}
	// Huge radius covers the whole unit square.
	if got := expectedDiscArea(5); got != 1 {
		t.Errorf("huge r area = %v", got)
	}
	// Small radius: E ≈ πr² (boundary effects vanish).
	r := 0.01
	got := expectedDiscArea(r)
	want := math.Pi * r * r
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("small r area = %v, want ≈%v", got, want)
	}
	// Monotone in r.
	prev := 0.0
	for r := 0.0; r <= 1.2; r += 0.01 {
		a := expectedDiscArea(r)
		if a < prev-1e-12 {
			t.Fatalf("area not monotone at r=%v", r)
		}
		prev = a
	}
}

func TestAccessProbabilityLimits(t *testing.T) {
	// Zero radius, tiny node: probability ~ s² (the node must contain the
	// cross-section point).
	s := 0.05
	got := accessProbability(s, 0)
	if math.Abs(got-s*s)/(s*s) > 0.2 {
		t.Errorf("P(s=%v, r=0) = %v, want ≈%v", s, got, s*s)
	}
	// Large node or large Minkowski sum: certainty.
	if got := accessProbability(0.9, 0.9); got != 1 {
		t.Errorf("large-sum P = %v", got)
	}
	// Monotone in r for fixed s.
	prev := 0.0
	for r := 0.0; r < 1; r += 0.01 {
		p := accessProbability(0.1, r)
		if p < prev-1e-12 {
			t.Fatalf("P not monotone at r=%v", r)
		}
		prev = p
	}
}

func TestFkMonotoneInK(t *testing.T) {
	layers, err := PowerLawLayers(10000, 2.5, 1, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, k := range []int{1, 5, 10, 50, 100} {
		p := Params{Alpha0: 0.3, K: k, Fanout: 24.8, MaxAgg: 500, Layers: layers}
		fk, err := p.EstimateFk()
		if err != nil {
			t.Fatal(err)
		}
		if fk <= prev {
			t.Errorf("f(p%d) = %v not greater than f at smaller k (%v)", k, fk, prev)
		}
		prev = fk
	}
}

func TestAccessesGrowWithK(t *testing.T) {
	layers, _ := PowerLawLayers(10000, 2.5, 1, 500, 0)
	prev := 0.0
	for _, k := range []int{1, 10, 100} {
		p := Params{Alpha0: 0.3, K: k, Fanout: 24.8, MaxAgg: 500, Layers: layers}
		_, na, err := p.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		if na <= prev {
			t.Errorf("NA at k=%d (%v) not greater than at smaller k (%v)", k, na, prev)
		}
		prev = na
	}
}

func TestEstimateAgainstSimulation(t *testing.T) {
	// Monte-Carlo validation of the model's own assumptions: POIs uniform
	// in the unit square with power-law aggregates, uniform query points.
	// The model is fed the *realized* empirical layers — the paper itself
	// reports that the continuous power-law layer counts misestimate when
	// fractional populations near the maximum aggregate matter (its small-k
	// inaccuracy on GS in Figure 6).
	r := rand.New(rand.NewSource(5))
	const n = 20000
	aggs := make([]int64, n)
	var maxAgg int64
	for i := range aggs {
		// Zeta(2.5) sample, capped.
		x := int64(1)
		u := r.Float64()
		cum, norm := 0.0, 1.3414872572509171 // ζ(2.5)
		for x < 300 {
			cum += math.Pow(float64(x), -2.5) / norm
			if u < cum {
				break
			}
			x++
		}
		aggs[i] = x
		if x > maxAgg {
			maxAgg = x
		}
	}
	layers := EmpiricalLayers(aggs)
	xs := make([]float64, n)
	ys := make([]float64, n)
	hs := make([]float64, n)
	for i := range aggs {
		xs[i], ys[i] = r.Float64(), r.Float64()
		hs[i] = 1 - float64(aggs[i])/float64(maxAgg)
	}
	diag := math.Sqrt2
	for _, k := range []int{1, 10, 50} {
		p := Params{Alpha0: 0.3, K: k, Fanout: 24.8, MaxAgg: maxAgg, Layers: layers}
		est, err := p.EstimateFk()
		if err != nil {
			t.Fatal(err)
		}
		// Simulate: average the kth score over random query points.
		simSum := 0.0
		const trials = 60
		scores := make([]float64, n)
		for trial := 0; trial < trials; trial++ {
			qx, qy := r.Float64(), r.Float64()
			for i := 0; i < n; i++ {
				d := math.Hypot(xs[i]-qx, ys[i]-qy) / diag
				scores[i] = 0.3*d + 0.7*hs[i]
			}
			simSum += kthSmallest(scores, k)
		}
		sim := simSum / trials
		if math.Abs(est-sim) > 0.25*sim+0.02 {
			t.Errorf("k=%d: estimated f(pk)=%.4f, simulated %.4f", k, est, sim)
		}
	}
}

func kthSmallest(xs []float64, k int) float64 {
	s := append([]float64(nil), xs...)
	// Partial selection is overkill for a test.
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[min] {
				min = j
			}
		}
		s[i], s[min] = s[min], s[i]
	}
	return s[k-1]
}

func TestBandsPartitionLayers(t *testing.T) {
	layers, _ := PowerLawLayers(5000, 2.8, 1, 200, 0)
	p := Params{Alpha0: 0.3, K: 10, Fanout: 24.8, MaxAgg: 200, Layers: layers}
	fk, _ := p.EstimateFk()
	_, bands, err := p.EstimateLeafAccesses(fk)
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) == 0 {
		t.Fatal("no bands")
	}
	// Bands must cover the layers exactly once, in order.
	next := 0
	for _, b := range bands {
		if b.TopLayer != next {
			t.Fatalf("band starts at %d, want %d", b.TopLayer, next)
		}
		if b.BottomLayer < b.TopLayer {
			t.Fatalf("inverted band %+v", b)
		}
		next = b.BottomLayer + 1
	}
	if next != len(layers) {
		t.Fatalf("bands cover %d layers of %d", next, len(layers))
	}
	// Node sides shrink toward denser (higher) layers — with a power law
	// the first band (smallest aggregates, most POIs) has the smallest side.
	if len(bands) >= 2 && bands[0].Side > bands[len(bands)-1].Side {
		t.Errorf("expected smaller nodes in the dense band: %v vs %v",
			bands[0].Side, bands[len(bands)-1].Side)
	}
}

func TestZeroLayer(t *testing.T) {
	layers, err := PowerLawLayers(1000, 2.5, 1, 100, 500)
	if err != nil {
		t.Fatal(err)
	}
	if layers[0].X != 0 || layers[0].Count != 500 {
		t.Fatalf("zero layer = %+v", layers[0])
	}
}

func TestEmpiricalLayers(t *testing.T) {
	layers := EmpiricalLayers([]int64{0, 0, 3, 1, 3, 3})
	want := []Layer{{0, 2}, {1, 1}, {3, 3}}
	if len(layers) != len(want) {
		t.Fatalf("layers = %v", layers)
	}
	for i := range want {
		if layers[i] != want[i] {
			t.Fatalf("layers = %v, want %v", layers, want)
		}
	}
}

func TestHeightClamps(t *testing.T) {
	p := Params{MaxAgg: 10}
	if got := p.height(0); got != 1 {
		t.Errorf("h(0) = %v", got)
	}
	if got := p.height(10); got != 0 {
		t.Errorf("h(max) = %v", got)
	}
	if got := p.height(20); got != 0 {
		t.Errorf("h above max = %v", got)
	}
}

func TestPaperExampleSearchRegion(t *testing.T) {
	// Section 6.2's example: α0 = 0.3, α1 = 0.7, f(pk) = 0.058 implies
	// r0 = 0.192 and hl = 0.082 (with the paper's unscaled radii).
	p := Params{Alpha0: 0.3, K: 1, Fanout: 24.8, MaxAgg: 12,
		Layers: uniformLayers(12, 1), DistScale: 1}
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	f := 0.058
	r0 := p.coneRadius(f, 0)
	if math.Abs(r0-0.192) > 0.002 {
		t.Errorf("r0 = %.4f, want ≈0.192", r0)
	}
	hl := f / 0.7
	if math.Abs(hl-0.082) > 0.002 {
		t.Errorf("hl = %.4f, want ≈0.082", hl)
	}
	// At the cone top the radius is zero.
	if got := p.coneRadius(f, hl); got != 0 {
		t.Errorf("radius at cone top = %v", got)
	}
}
