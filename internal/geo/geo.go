// Package geo provides the low-dimensional geometric primitives used by the
// TAR-tree and its grouping strategies: points, axis-aligned rectangles
// (MBRs) and the distance lower bounds needed by best-first search.
//
// The TAR-tree works in two spatial dimensions plus, for the integral 3D
// grouping strategy, one aggregate dimension. To avoid per-entry heap
// allocations, vectors are fixed-size arrays of MaxDims coordinates and a
// separate dimensionality is threaded through the callers; unused trailing
// coordinates must be zero so that equality and hashing behave.
package geo

import (
	"fmt"
	"math"
)

// MaxDims is the largest dimensionality supported. The paper uses two
// spatial dimensions and one aggregate dimension.
const MaxDims = 3

// Vector is a point in up to MaxDims dimensions. Coordinates beyond the
// dimensionality in use must be zero.
type Vector [MaxDims]float64

// Rect is an axis-aligned (hyper-)rectangle, the minimum bounding rectangle
// of the R-tree literature. A degenerate rectangle with Min == Max is a
// point and is valid.
type Rect struct {
	Min, Max Vector
}

// PointRect returns the degenerate rectangle covering exactly v.
func PointRect(v Vector) Rect { return Rect{Min: v, Max: v} }

// EmptyRect returns a rectangle that is the identity for Union: its Min is
// +Inf and its Max is -Inf in the first dims dimensions.
func EmptyRect(dims int) Rect {
	var r Rect
	for d := 0; d < dims; d++ {
		r.Min[d] = math.Inf(1)
		r.Max[d] = math.Inf(-1)
	}
	return r
}

// IsEmpty reports whether r is the identity rectangle produced by EmptyRect
// (no point has been added to it yet).
func (r Rect) IsEmpty() bool { return r.Min[0] > r.Max[0] }

// Valid reports whether Min <= Max holds in the first dims dimensions.
func (r Rect) Valid(dims int) bool {
	for d := 0; d < dims; d++ {
		if r.Min[d] > r.Max[d] {
			return false
		}
	}
	return true
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	var u Rect
	for d := 0; d < MaxDims; d++ {
		u.Min[d] = math.Min(r.Min[d], s.Min[d])
		u.Max[d] = math.Max(r.Max[d], s.Max[d])
	}
	return u
}

// ExtendPoint returns the smallest rectangle containing r and v.
func (r Rect) ExtendPoint(v Vector) Rect { return r.Union(PointRect(v)) }

// Contains reports whether s lies entirely inside r in the first dims
// dimensions.
func (r Rect) Contains(s Rect, dims int) bool {
	for d := 0; d < dims; d++ {
		if s.Min[d] < r.Min[d] || s.Max[d] > r.Max[d] {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether v lies inside r in the first dims
// dimensions.
func (r Rect) ContainsPoint(v Vector, dims int) bool {
	for d := 0; d < dims; d++ {
		if v[d] < r.Min[d] || v[d] > r.Max[d] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point in the first
// dims dimensions.
func (r Rect) Intersects(s Rect, dims int) bool {
	for d := 0; d < dims; d++ {
		if r.Min[d] > s.Max[d] || s.Min[d] > r.Max[d] {
			return false
		}
	}
	return true
}

// Area returns the dims-dimensional volume of r. An empty rectangle has
// zero area.
func (r Rect) Area(dims int) float64 {
	if r.IsEmpty() {
		return 0
	}
	a := 1.0
	for d := 0; d < dims; d++ {
		a *= r.Max[d] - r.Min[d]
	}
	return a
}

// Margin returns the sum of the edge lengths of r in the first dims
// dimensions (the R*-tree split criterion calls this the margin).
func (r Rect) Margin(dims int) float64 {
	if r.IsEmpty() {
		return 0
	}
	m := 0.0
	for d := 0; d < dims; d++ {
		m += r.Max[d] - r.Min[d]
	}
	return m
}

// OverlapArea returns the volume of the intersection of r and s, zero when
// they are disjoint.
func (r Rect) OverlapArea(s Rect, dims int) float64 {
	a := 1.0
	for d := 0; d < dims; d++ {
		lo := math.Max(r.Min[d], s.Min[d])
		hi := math.Min(r.Max[d], s.Max[d])
		if hi <= lo {
			return 0
		}
		a *= hi - lo
	}
	return a
}

// Center returns the center point of r.
func (r Rect) Center() Vector {
	var c Vector
	for d := 0; d < MaxDims; d++ {
		c[d] = (r.Min[d] + r.Max[d]) / 2
	}
	return c
}

// Enlargement returns the increase in area required for r to include s.
func (r Rect) Enlargement(s Rect, dims int) float64 {
	return r.Union(s).Area(dims) - r.Area(dims)
}

// Diagonal returns the length of the main diagonal of r in the first dims
// dimensions: the maximum distance between any two points of r.
func (r Rect) Diagonal(dims int) float64 {
	if r.IsEmpty() {
		return 0
	}
	s := 0.0
	for d := 0; d < dims; d++ {
		e := r.Max[d] - r.Min[d]
		s += e * e
	}
	return math.Sqrt(s)
}

func (r Rect) String() string {
	return fmt.Sprintf("[%v..%v]", r.Min, r.Max)
}

// Dist returns the Euclidean distance between a and b in the first dims
// dimensions.
func Dist(a, b Vector, dims int) float64 {
	s := 0.0
	for d := 0; d < dims; d++ {
		e := a[d] - b[d]
		s += e * e
	}
	return math.Sqrt(s)
}

// MinDist returns the smallest Euclidean distance from point v to any point
// of rectangle r in the first dims dimensions. It is the classic R-tree
// MINDIST lower bound: zero when v lies inside r.
func MinDist(v Vector, r Rect, dims int) float64 {
	s := 0.0
	for d := 0; d < dims; d++ {
		var e float64
		switch {
		case v[d] < r.Min[d]:
			e = r.Min[d] - v[d]
		case v[d] > r.Max[d]:
			e = v[d] - r.Max[d]
		}
		s += e * e
	}
	return math.Sqrt(s)
}

// MaxDist returns the largest Euclidean distance from point v to any point
// of rectangle r in the first dims dimensions.
func MaxDist(v Vector, r Rect, dims int) float64 {
	s := 0.0
	for d := 0; d < dims; d++ {
		e := math.Max(math.Abs(v[d]-r.Min[d]), math.Abs(v[d]-r.Max[d]))
		s += e * e
	}
	return math.Sqrt(s)
}

// Manhattan returns the L1 distance between a and b over the first dims
// dimensions. The IND-agg grouping strategy measures aggregate-distribution
// similarity with the Manhattan distance (Section 5.1 of the paper).
func Manhattan(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += math.Abs(a[i] - b[i])
	}
	for i := n; i < len(a); i++ {
		s += math.Abs(a[i])
	}
	for i := n; i < len(b); i++ {
		s += math.Abs(b[i])
	}
	return s
}
