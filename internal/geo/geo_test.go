package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointRect(t *testing.T) {
	v := Vector{1, 2, 3}
	r := PointRect(v)
	if r.Min != v || r.Max != v {
		t.Fatalf("PointRect(%v) = %v", v, r)
	}
	if got := r.Area(3); got != 0 {
		t.Errorf("point rect area = %v, want 0", got)
	}
	if !r.ContainsPoint(v, 3) {
		t.Errorf("point rect does not contain its own point")
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect(2)
	if !e.IsEmpty() {
		t.Fatal("EmptyRect not empty")
	}
	if e.Area(2) != 0 || e.Margin(2) != 0 || e.Diagonal(2) != 0 {
		t.Error("empty rect should have zero measures")
	}
	r := Rect{Min: Vector{0, 0}, Max: Vector{2, 3}}
	if got := e.Union(r); got != r {
		t.Errorf("empty ∪ r = %v, want %v", got, r)
	}
	if got := r.Union(e); got != r {
		t.Errorf("r ∪ empty = %v, want %v", got, r)
	}
}

func TestUnionContains(t *testing.T) {
	a := Rect{Min: Vector{0, 0}, Max: Vector{1, 1}}
	b := Rect{Min: Vector{2, -1}, Max: Vector{3, 0.5}}
	u := a.Union(b)
	want := Rect{Min: Vector{0, -1}, Max: Vector{3, 1}}
	if u != want {
		t.Fatalf("union = %v, want %v", u, want)
	}
	if !u.Contains(a, 2) || !u.Contains(b, 2) {
		t.Error("union must contain operands")
	}
	if a.Contains(u, 2) {
		t.Error("operand should not contain strict union")
	}
}

func TestIntersects(t *testing.T) {
	a := Rect{Min: Vector{0, 0}, Max: Vector{2, 2}}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{Min: Vector{1, 1}, Max: Vector{3, 3}}, true},
		{Rect{Min: Vector{2, 2}, Max: Vector{3, 3}}, true}, // touching corner
		{Rect{Min: Vector{3, 0}, Max: Vector{4, 1}}, false},
		{Rect{Min: Vector{0.5, 0.5}, Max: Vector{1, 1}}, true}, // contained
		{Rect{Min: Vector{-2, -2}, Max: Vector{-1, -1}}, false},
	}
	for i, c := range cases {
		if got := a.Intersects(c.b, 2); got != c.want {
			t.Errorf("case %d: Intersects=%v, want %v", i, got, c.want)
		}
		if got := c.b.Intersects(a, 2); got != c.want {
			t.Errorf("case %d (sym): Intersects=%v, want %v", i, got, c.want)
		}
	}
}

func TestAreaMarginOverlap(t *testing.T) {
	a := Rect{Min: Vector{0, 0}, Max: Vector{4, 2}}
	if got := a.Area(2); !almostEq(got, 8) {
		t.Errorf("area = %v, want 8", got)
	}
	if got := a.Margin(2); !almostEq(got, 6) {
		t.Errorf("margin = %v, want 6", got)
	}
	b := Rect{Min: Vector{3, 1}, Max: Vector{5, 5}}
	if got := a.OverlapArea(b, 2); !almostEq(got, 1) {
		t.Errorf("overlap = %v, want 1", got)
	}
	if got := a.OverlapArea(Rect{Min: Vector{9, 9}, Max: Vector{10, 10}}, 2); got != 0 {
		t.Errorf("disjoint overlap = %v, want 0", got)
	}
	if got := a.Enlargement(b, 2); !almostEq(got, 5*5-8) {
		t.Errorf("enlargement = %v, want %v", got, 25-8)
	}
}

func TestDiagonal3D(t *testing.T) {
	r := Rect{Min: Vector{0, 0, 0}, Max: Vector{1, 2, 2}}
	if got := r.Diagonal(3); !almostEq(got, 3) {
		t.Errorf("diag = %v, want 3", got)
	}
	if got := r.Diagonal(2); !almostEq(got, math.Sqrt(5)) {
		t.Errorf("2d diag = %v, want sqrt(5)", got)
	}
}

func TestMinMaxDist(t *testing.T) {
	r := Rect{Min: Vector{1, 1}, Max: Vector{3, 3}}
	// Point inside.
	if got := MinDist(Vector{2, 2}, r, 2); got != 0 {
		t.Errorf("inside mindist = %v, want 0", got)
	}
	// Point left of the rect: distance along x only.
	if got := MinDist(Vector{0, 2}, r, 2); !almostEq(got, 1) {
		t.Errorf("mindist = %v, want 1", got)
	}
	// Corner case.
	if got := MinDist(Vector{0, 0}, r, 2); !almostEq(got, math.Sqrt(2)) {
		t.Errorf("corner mindist = %v, want sqrt2", got)
	}
	if got := MaxDist(Vector{0, 0}, r, 2); !almostEq(got, math.Sqrt(18)) {
		t.Errorf("maxdist = %v, want sqrt18", got)
	}
}

func TestManhattan(t *testing.T) {
	if got := Manhattan([]float64{1, 2, 3}, []float64{2, 0, 3}); !almostEq(got, 3) {
		t.Errorf("manhattan = %v, want 3", got)
	}
	// Unequal lengths: missing entries are zeros.
	if got := Manhattan([]float64{1, 2}, []float64{1, 2, 5}); !almostEq(got, 5) {
		t.Errorf("manhattan uneven = %v, want 5", got)
	}
	if got := Manhattan([]float64{1, 2, 5}, []float64{1, 2}); !almostEq(got, 5) {
		t.Errorf("manhattan uneven (sym) = %v, want 5", got)
	}
	// Paper example (Table 1): distance between TIA of c and TIA of g is 2,
	// between c and l is 4.
	c := []float64{2, 2, 2}
	g := []float64{2, 3, 1}
	l := []float64{1, 0, 1}
	if got := Manhattan(c, g); got != 2 {
		t.Errorf("d(c,g) = %v, want 2", got)
	}
	if got := Manhattan(c, l); got != 4 {
		t.Errorf("d(c,l) = %v, want 4", got)
	}
}

func randVec(r *rand.Rand, dims int) Vector {
	var v Vector
	for d := 0; d < dims; d++ {
		v[d] = r.Float64()*20 - 10
	}
	return v
}

func randRect(r *rand.Rand, dims int) Rect {
	a, b := randVec(r, dims), randVec(r, dims)
	rect := PointRect(a).ExtendPoint(b)
	return rect
}

// Property: MinDist is a lower bound of the distance to every contained
// point, and MaxDist an upper bound.
func TestMinMaxDistBounds(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		dims := 2 + r.Intn(2)
		rect := randRect(r, dims)
		q := randVec(r, dims)
		// Sample a point inside the rect.
		var p Vector
		for d := 0; d < dims; d++ {
			p[d] = rect.Min[d] + r.Float64()*(rect.Max[d]-rect.Min[d])
		}
		dist := Dist(q, p, dims)
		return MinDist(q, rect, dims) <= dist+1e-9 && dist <= MaxDist(q, rect, dims)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: union is commutative, associative and monotone in area.
func TestUnionProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		a, b, c := randRect(r, 3), randRect(r, 3), randRect(r, 3)
		if a.Union(b) != b.Union(a) {
			return false
		}
		if a.Union(b).Union(c) != a.Union(b.Union(c)) {
			return false
		}
		u := a.Union(b)
		return u.Area(3) >= a.Area(3)-1e-12 && u.Area(3) >= b.Area(3)-1e-12 &&
			u.Contains(a, 3) && u.Contains(b, 3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: OverlapArea is symmetric and bounded by min area.
func TestOverlapProperties(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	f := func() bool {
		a, b := randRect(r, 2), randRect(r, 2)
		oa, ob := a.OverlapArea(b, 2), b.OverlapArea(a, 2)
		if !almostEq(oa, ob) {
			return false
		}
		return oa <= math.Min(a.Area(2), b.Area(2))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestValid(t *testing.T) {
	if !(Rect{Min: Vector{0, 0}, Max: Vector{1, 1}}).Valid(2) {
		t.Error("valid rect reported invalid")
	}
	if (Rect{Min: Vector{2, 0}, Max: Vector{1, 1}}).Valid(2) {
		t.Error("invalid rect reported valid")
	}
}

func TestCenter(t *testing.T) {
	r := Rect{Min: Vector{0, 2, 4}, Max: Vector{2, 4, 8}}
	if got := r.Center(); got != (Vector{1, 3, 6}) {
		t.Errorf("center = %v", got)
	}
}

func TestString(t *testing.T) {
	r := Rect{Min: Vector{0, 0}, Max: Vector{1, 1}}
	if r.String() == "" {
		t.Error("empty string")
	}
}
