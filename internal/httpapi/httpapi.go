// Package httpapi defines the one JSON error envelope every /v1/* route
// (query, ingest, replication, shard) speaks:
//
//	{"error": {"code": "invalid_argument", "message": "...", "details": {...}}}
//
// Codes are stable machine-readable strings (documented in README); the
// message is human prose; details carries optional structured context such
// as the failed shard index or the oldest retained LSN. The package also
// carries the client half — ReadError decodes an envelope (tolerating
// legacy plain-text bodies) into an *Error that callers can errors.As on.
package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Stable error codes carried in the envelope. One code per rejection class,
// not per route: clients switch on these, never on message text.
const (
	CodeInvalidArgument  = "invalid_argument"   // 400: malformed or out-of-range input
	CodeUnauthorized     = "unauthorized"       // 401: missing or invalid credential
	CodeForbidden        = "forbidden"          // 403: authenticated-but-denied, role mismatch, feature disabled
	CodeNotFound         = "not_found"          // 404: no such route or resource
	CodeMethodNotAllowed = "method_not_allowed" // 405: wrong HTTP verb
	CodeConflict         = "conflict"           // 409: state conflicts with the request (divergent WAL, busy session)
	CodeGone             = "gone"               // 410: resource existed but was truncated/expired (WAL tail, shard session)
	CodeUnprocessable    = "unprocessable"      // 422: well-formed input the engine cannot execute
	CodeInternal         = "internal"           // 500: unexpected server-side failure
	CodeUnavailable      = "unavailable"        // 503: temporarily unable (recovering, admission full, shard down)
	CodeTimeout          = "timeout"            // 504: deadline expired before the answer was complete
)

// CodeForStatus maps an HTTP status to its default envelope code; statuses
// without a dedicated code fall back to internal (5xx) or invalid_argument
// (4xx).
func CodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeInvalidArgument
	case http.StatusUnauthorized:
		return CodeUnauthorized
	case http.StatusForbidden:
		return CodeForbidden
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case http.StatusConflict:
		return CodeConflict
	case http.StatusGone:
		return CodeGone
	case http.StatusUnprocessableEntity:
		return CodeUnprocessable
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	case http.StatusGatewayTimeout:
		return CodeTimeout
	}
	if status >= 500 {
		return CodeInternal
	}
	return CodeInvalidArgument
}

// Detail is the inner object of the envelope.
type Detail struct {
	Code    string         `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details,omitempty"`
}

// Envelope is the error response body.
type Envelope struct {
	Error Detail `json:"error"`
}

// WriteError writes the envelope with an explicit code. Extra fields land
// in details; a nil map is omitted.
func WriteError(w http.ResponseWriter, status int, code, message string, details map[string]any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(Envelope{Error: Detail{Code: code, Message: message, Details: details}})
}

// WriteStatusError writes the envelope with the status's default code.
func WriteStatusError(w http.ResponseWriter, status int, message string) {
	WriteError(w, status, CodeForStatus(status), message, nil)
}

// Error is the client-side decoding of a non-2xx response. Status is always
// set; Code/Message come from the envelope when the body carried one, and
// degrade to the status default and raw body text otherwise.
type Error struct {
	Status  int
	Code    string
	Message string
	Details map[string]any
}

func (e *Error) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("http %d (%s)", e.Status, e.Code)
	}
	return fmt.Sprintf("http %d (%s): %s", e.Status, e.Code, e.Message)
}

// ReadError consumes resp.Body and returns the *Error for a non-2xx
// response. It must only be called when resp.StatusCode is not 2xx.
func ReadError(resp *http.Response) *Error {
	e := &Error{Status: resp.StatusCode, Code: CodeForStatus(resp.StatusCode)}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var env Envelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		e.Code = env.Error.Code
		e.Message = env.Error.Message
		e.Details = env.Error.Details
		return e
	}
	// Legacy bodies: {"error": "text"} or plain text.
	var flat struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &flat); err == nil && flat.Error != "" {
		e.Message = flat.Error
		return e
	}
	e.Message = strings.TrimSpace(string(body))
	return e
}
