package httpapi

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestCodeForStatus pins the status→code contract clients branch on.
func TestCodeForStatus(t *testing.T) {
	cases := []struct {
		status int
		code   string
	}{
		{400, CodeInvalidArgument},
		{401, CodeUnauthorized},
		{403, CodeForbidden},
		{404, CodeNotFound},
		{405, CodeMethodNotAllowed},
		{409, CodeConflict},
		{410, CodeGone},
		{422, CodeUnprocessable},
		{500, CodeInternal},
		{503, CodeUnavailable},
		{504, CodeTimeout},
		{502, CodeInternal},        // unmapped 5xx
		{418, CodeInvalidArgument}, // unmapped 4xx
	}
	for _, c := range cases {
		if got := CodeForStatus(c.status); got != c.code {
			t.Errorf("CodeForStatus(%d) = %q, want %q", c.status, got, c.code)
		}
	}
}

// TestWriteReadRoundTrip: an envelope written by the server half decodes
// losslessly through the client half, details included.
func TestWriteReadRoundTrip(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, http.StatusServiceUnavailable, CodeUnavailable,
		"shard 1 is down", map[string]any{"shard": 1, "url": "http://shard-1"})
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	e := ReadError(rec.Result())
	if e.Status != 503 || e.Code != CodeUnavailable {
		t.Errorf("decoded status/code %d/%q", e.Status, e.Code)
	}
	if e.Message != "shard 1 is down" {
		t.Errorf("decoded message %q", e.Message)
	}
	if idx, ok := e.Details["shard"].(float64); !ok || idx != 1 {
		t.Errorf("decoded details %+v", e.Details)
	}
	if !strings.Contains(e.Error(), "503") || !strings.Contains(e.Error(), "shard 1 is down") {
		t.Errorf("Error() = %q", e.Error())
	}
}

// TestReadErrorLegacyBodies: ReadError degrades gracefully on the bodies
// pre-envelope servers produced.
func TestReadErrorLegacyBodies(t *testing.T) {
	cases := []struct {
		name    string
		body    string
		message string
		code    string
	}{
		{"legacy flat object", `{"error": "bad thing"}`, "bad thing", CodeGone},
		{"plain text", "plain text error\n", "plain text error", CodeGone},
		{"empty body", "", "", CodeGone},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := &http.Response{
				StatusCode: http.StatusGone,
				Body:       io.NopCloser(strings.NewReader(c.body)),
			}
			e := ReadError(resp)
			if e.Status != 410 || e.Code != c.code {
				t.Errorf("status/code %d/%q", e.Status, e.Code)
			}
			if e.Message != c.message {
				t.Errorf("message %q, want %q", e.Message, c.message)
			}
		})
	}
}

// TestWriteStatusError: the default-code writer uses the status mapping.
func TestWriteStatusError(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteStatusError(rec, http.StatusNotFound, "no such route")
	e := ReadError(rec.Result())
	if e.Code != CodeNotFound || e.Message != "no such route" {
		t.Errorf("decoded %+v", e)
	}
}
