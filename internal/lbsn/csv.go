package lbsn

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"tartree/internal/geo"
)

// WriteCSV materializes the data set as two CSV files in dir:
// <name>_pois.csv (id,x,y,total) and <name>_checkins.csv (poi,unix_time).
// LoadCSV reads them back; cmd/datagen and cmd/tarquery use the pair to
// decouple data generation from experiments.
func (d *Dataset) WriteCSV(dir string) (poisPath, checkinsPath string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", err
	}
	poisPath = filepath.Join(dir, d.Spec.Name+"_pois.csv")
	checkinsPath = filepath.Join(dir, d.Spec.Name+"_checkins.csv")

	pf, err := os.Create(poisPath)
	if err != nil {
		return "", "", err
	}
	defer pf.Close()
	pw := bufio.NewWriter(pf)
	fmt.Fprintln(pw, "id,x,y,total")

	cf, err := os.Create(checkinsPath)
	if err != nil {
		return "", "", err
	}
	defer cf.Close()
	cw := bufio.NewWriter(cf)
	fmt.Fprintln(cw, "poi,unix_time")

	for i := range d.POIs {
		p := &d.POIs[i]
		fmt.Fprintf(pw, "%d,%.6f,%.6f,%d\n", p.ID, p.X, p.Y, p.Total())
		for _, ts := range p.Times {
			fmt.Fprintf(cw, "%d,%d\n", p.ID, ts)
		}
	}
	if err := pw.Flush(); err != nil {
		return "", "", err
	}
	if err := cw.Flush(); err != nil {
		return "", "", err
	}
	return poisPath, checkinsPath, nil
}

// LoadCSV reads a data set written by WriteCSV. The spec supplies the
// metadata (name, time span, thresholds) that the CSV files do not carry.
func LoadCSV(spec Spec, poisPath, checkinsPath string) (*Dataset, error) {
	pois, err := readPOIs(poisPath)
	if err != nil {
		return nil, err
	}
	byID := make(map[int64]*POI, len(pois))
	for i := range pois {
		byID[pois[i].ID] = &pois[i]
	}
	if err := readCheckIns(checkinsPath, byID); err != nil {
		return nil, err
	}
	for i := range pois {
		sort.Slice(pois[i].Times, func(a, b int) bool { return pois[i].Times[a] < pois[i].Times[b] })
	}
	spec.Locations = len(pois)
	d := &Dataset{
		Spec:  spec,
		POIs:  pois,
		World: geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{worldSide, worldSide}},
	}
	return d, nil
}

func readPOIs(path string) ([]POI, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(bufio.NewReader(f))
	r.FieldsPerRecord = 4
	rows, err := readAll(r, path)
	if err != nil {
		return nil, err
	}
	pois := make([]POI, 0, len(rows))
	for _, row := range rows {
		id, err1 := strconv.ParseInt(row[0], 10, 64)
		x, err2 := strconv.ParseFloat(row[1], 64)
		y, err3 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("lbsn: malformed POI row %v in %s", row, path)
		}
		pois = append(pois, POI{ID: id, X: x, Y: y})
	}
	return pois, nil
}

func readCheckIns(path string, byID map[int64]*POI) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csv.NewReader(bufio.NewReader(f))
	r.FieldsPerRecord = 2
	rows, err := readAll(r, path)
	if err != nil {
		return err
	}
	for _, row := range rows {
		id, err1 := strconv.ParseInt(row[0], 10, 64)
		ts, err2 := strconv.ParseInt(row[1], 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("lbsn: malformed check-in row %v in %s", row, path)
		}
		p, ok := byID[id]
		if !ok {
			return fmt.Errorf("lbsn: check-in for unknown POI %d in %s", id, path)
		}
		p.Times = append(p.Times, ts)
	}
	return nil
}

// readAll reads all rows, skipping the header.
func readAll(r *csv.Reader, path string) ([][]string, error) {
	var rows [][]string
	first := true
	for {
		row, err := r.Read()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, fmt.Errorf("lbsn: reading %s: %w", path, err)
		}
		if first {
			first = false
			continue // header
		}
		rows = append(rows, row)
	}
}
