// Package lbsn generates synthetic location-based social network data sets
// calibrated to the four real data sets of the paper (Table 4: NYC, LA,
// GW, GS). The originals (Foursquare tips, Gowalla, Foursquare-via-Twitter)
// are not redistributable in this offline environment; the generator
// reproduces the statistics the paper's results depend on:
//
//   - POI and check-in counts and time spans (Table 4),
//   - per-POI check-in totals whose tail follows a discrete power law with
//     the Table 2 exponents and cutoffs (the input of the Section 6 cost
//     model and the source of the TAR-tree's advantage),
//   - clustered, city-like spatial placement (Gaussian mixture),
//   - check-in times from per-POI Poisson processes with staggered POI
//     births, so the network grows over time (the Figure 8 experiment
//     takes snapshots at 20%..100% of the time span).
//
// Generation is deterministic per (spec, seed).
package lbsn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"tartree/internal/aggcache"
	"tartree/internal/core"
	"tartree/internal/geo"
	"tartree/internal/obs"
	"tartree/internal/powerlaw"
	"tartree/internal/tia"
)

// Day is the length of one day in the generator's time unit (seconds).
const Day int64 = 86400

// Spec describes a data set to generate.
type Spec struct {
	Name      string
	Locations int   // number of POIs at scale 1
	CheckIns  int   // approximate number of check-ins at scale 1
	Start     int64 // Unix seconds of the first check-in
	End       int64 // Unix seconds of the last check-in
	// Beta and Xmin parameterize the power-law tail of per-POI check-in
	// totals (Table 2's β̂ and x̂min).
	Beta float64
	Xmin int64
	// MinEffective is the check-in threshold for a POI to be indexed
	// (Section 8: 15, 10, 100 and 50 for the four data sets).
	MinEffective int64
	// Clusters is the number of spatial hot spots.
	Clusters int
	Seed     int64
}

func date(y int, m time.Month) int64 {
	return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC).Unix()
}

// The four data sets of Table 4, with the Table 2 tail parameters.
var (
	NYC = Spec{Name: "NYC", Locations: 72626, CheckIns: 237784,
		Start: date(2008, 5), End: date(2011, 6), Beta: 3.20, Xmin: 31,
		MinEffective: 15, Clusters: 40, Seed: 1}
	LA = Spec{Name: "LA", Locations: 45591, CheckIns: 127924,
		Start: date(2009, 2), End: date(2011, 7), Beta: 3.07, Xmin: 16,
		MinEffective: 10, Clusters: 35, Seed: 2}
	GW = Spec{Name: "GW", Locations: 1280969, CheckIns: 6442803,
		Start: date(2009, 2), End: date(2010, 10), Beta: 2.82, Xmin: 85,
		MinEffective: 100, Clusters: 60, Seed: 3}
	GS = Spec{Name: "GS", Locations: 182968, CheckIns: 1385223,
		Start: date(2011, 1), End: date(2011, 7), Beta: 2.19, Xmin: 59,
		MinEffective: 50, Clusters: 45, Seed: 4}
)

// Specs lists the four data sets in the paper's order.
func Specs() []Spec { return []Spec{NYC, LA, GW, GS} }

// SpecByName returns the spec with the given name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("lbsn: unknown data set %q", name)
}

// Scaled returns a copy with POI and check-in counts scaled by f, keeping
// the per-POI distribution (and hence the effectiveness threshold) intact.
func (s Spec) Scaled(f float64) Spec {
	if f <= 0 || f > 1 {
		return s
	}
	s.Locations = int(float64(s.Locations) * f)
	s.CheckIns = int(float64(s.CheckIns) * f)
	return s
}

// POI is a generated location with its check-in times (ascending).
type POI struct {
	ID    int64
	X, Y  float64
	Times []int64
}

// Total returns the POI's lifetime check-in count.
func (p *POI) Total() int64 { return int64(len(p.Times)) }

// Dataset is a generated LBSN.
type Dataset struct {
	Spec  Spec
	World geo.Rect
	POIs  []POI
}

// worldSide is the abstract size of the city square.
const worldSide = 100.0

// Generate materializes the data set.
func Generate(spec Spec) (*Dataset, error) {
	if spec.Locations <= 0 || spec.CheckIns <= 0 || spec.End <= spec.Start {
		return nil, fmt.Errorf("lbsn: invalid spec %+v", spec)
	}
	r := rand.New(rand.NewSource(spec.Seed))
	d := &Dataset{
		Spec:  spec,
		World: geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{worldSide, worldSide}},
	}

	// Spatial mixture: cluster centers with Zipf-distributed popularity and
	// varied spreads, plus a uniform background component.
	type cluster struct {
		cx, cy, sigma, weight float64
	}
	clusters := make([]cluster, spec.Clusters)
	wsum := 0.0
	for i := range clusters {
		clusters[i] = cluster{
			cx:     r.Float64() * worldSide,
			cy:     r.Float64() * worldSide,
			sigma:  worldSide * (0.01 + 0.04*r.Float64()),
			weight: 1 / math.Pow(float64(i+1), 1.0),
		}
		wsum += clusters[i].weight
	}
	pickCluster := func() cluster {
		u := r.Float64() * wsum
		for _, c := range clusters {
			if u -= c.weight; u <= 0 {
				return c
			}
		}
		return clusters[len(clusters)-1]
	}

	// Per-POI totals: a geometric body below Xmin mixed with a power-law
	// tail from (Beta, Xmin), with the tail probability calibrated so the
	// overall mean matches CheckIns/Locations.
	targetMean := float64(spec.CheckIns) / float64(spec.Locations)
	tail, err := powerlaw.NewDist(spec.Beta, spec.Xmin)
	if err != nil {
		return nil, err
	}
	tailMean := tail.Mean()
	if math.IsInf(tailMean, 1) {
		// β <= 2: the untruncated mean diverges; use the truncated mean at
		// the sampler's practical ceiling.
		tailMean = truncatedMean(tail, spec.Xmin*1000)
	}
	// Geometric body on [1, Xmin): success probability chosen for a small
	// mean, then truncated.
	bodyP := 0.45
	bodyMean := geomTruncMean(bodyP, spec.Xmin)
	pTail := (targetMean - bodyMean) / (tailMean - bodyMean)
	if pTail < 0.0005 {
		pTail = 0.0005
	}
	if pTail > 0.9 {
		pTail = 0.9
	}
	sampler := tail.NewSampler(r)
	sampleTotal := func() int64 {
		if r.Float64() < pTail {
			return sampler.Sample()
		}
		// Truncated geometric on [1, Xmin).
		for {
			x := int64(1)
			for r.Float64() < 1-bodyP {
				x++
			}
			if x < spec.Xmin {
				return x
			}
		}
	}

	span := spec.End - spec.Start
	d.POIs = make([]POI, spec.Locations)
	for i := range d.POIs {
		c := pickCluster()
		var x, y float64
		if r.Float64() < 0.1 {
			x, y = r.Float64()*worldSide, r.Float64()*worldSide
		} else {
			x = clamp(c.cx+r.NormFloat64()*c.sigma, 0, worldSide)
			y = clamp(c.cy+r.NormFloat64()*c.sigma, 0, worldSide)
		}
		total := sampleTotal()
		// POIs are born throughout the first 60% of the span; check-ins
		// arrive uniformly between birth and the end (a homogeneous
		// Poisson process conditioned on the total).
		birth := spec.Start + int64(r.Float64()*0.6*float64(span))
		times := make([]int64, total)
		for j := range times {
			times[j] = birth + int64(r.Float64()*float64(spec.End-birth))
		}
		sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
		d.POIs[i] = POI{ID: int64(i + 1), X: x, Y: y, Times: times}
	}
	return d, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func truncatedMean(d *powerlaw.Dist, cap int64) float64 {
	sum, norm := 0.0, 0.0
	for x := d.Xmin; x <= cap; x++ {
		p := d.PMF(x)
		sum += float64(x) * p
		norm += p
	}
	return sum / norm
}

// geomTruncMean returns the mean of a geometric(p) variable truncated to
// [1, xmin).
func geomTruncMean(p float64, xmin int64) float64 {
	sum, norm := 0.0, 0.0
	prob := p
	for x := int64(1); x < xmin; x++ {
		sum += float64(x) * prob
		norm += prob
		prob *= 1 - p
	}
	if norm == 0 {
		return 1
	}
	return sum / norm
}

// TotalCheckIns returns the number of check-ins in the data set.
func (d *Dataset) TotalCheckIns() int64 {
	var n int64
	for i := range d.POIs {
		n += d.POIs[i].Total()
	}
	return n
}

// Totals returns the per-POI check-in totals (the Table 2 fitting input).
func (d *Dataset) Totals() []int64 {
	out := make([]int64, len(d.POIs))
	for i := range d.POIs {
		out[i] = d.POIs[i].Total()
	}
	return out
}

// SnapshotEnd returns the timestamp at the given fraction of the time span
// (Figure 8 takes snapshots at 20%, 40%, ..., 100%).
func (d *Dataset) SnapshotEnd(frac float64) int64 {
	return d.Spec.Start + int64(frac*float64(d.Spec.End-d.Spec.Start))
}

// History buckets one POI's check-ins up to cutoff into epochs of the given
// grid, returning the non-zero records ascending. A zero cutoff means the
// full span.
func History(p *POI, epochStart, epochLength, cutoff int64) []tia.Record {
	if cutoff == 0 {
		cutoff = math.MaxInt64
	}
	var recs []tia.Record
	for _, t := range p.Times {
		if t >= cutoff {
			break
		}
		idx := (t - epochStart) / epochLength
		ts := epochStart + idx*epochLength
		if n := len(recs); n > 0 && recs[n-1].Ts == ts {
			recs[n-1].Agg++
			continue
		}
		recs = append(recs, tia.Record{Ts: ts, Te: ts + epochLength, Agg: 1})
	}
	return recs
}

// BuildOptions configures Build.
type BuildOptions struct {
	Grouping    core.Grouping
	NodeSize    int   // bytes; 0 selects 1024
	EpochLength int64 // seconds; 0 selects 7 days
	TIA         tia.Factory
	Semantics   tia.Semantics
	// Cutoff indexes only check-ins before this time (0: all), and POIs
	// whose totals up to the cutoff reach the effectiveness threshold.
	Cutoff int64
	// Keep, when non-nil, further filters the effective POIs: only those
	// it accepts are indexed. Shard builds pass the shard map's ownership
	// predicate here, so each shard indexes its subset over the full
	// world rectangle (which keeps per-POI scores identical to a
	// single-node build).
	Keep func(p core.POI) bool
	// Metrics instruments the built tree (see core.Options.Metrics).
	Metrics *obs.Registry
	// Traces captures finished queries (see core.Options.Traces).
	Traces *obs.TraceRing
	// Cache attaches a shared epoch-versioned aggregate/result cache (see
	// core.Options.Cache). Nil disables caching.
	Cache *aggcache.Cache
}

// Build indexes the data set's effective POIs into a TAR-tree.
func (d *Dataset) Build(o BuildOptions) (*core.Tree, error) {
	if o.EpochLength == 0 {
		o.EpochLength = 7 * Day
	}
	tr, err := core.NewTree(core.Options{
		World:       d.World,
		NodeSize:    o.NodeSize,
		Grouping:    o.Grouping,
		TIA:         o.TIA,
		Semantics:   o.Semantics,
		EpochStart:  d.Spec.Start,
		EpochLength: o.EpochLength,
		Metrics:     o.Metrics,
		Traces:      o.Traces,
		Cache:       o.Cache,
	})
	if err != nil {
		return nil, err
	}
	for i := range d.POIs {
		p := &d.POIs[i]
		hist := History(p, d.Spec.Start, o.EpochLength, o.Cutoff)
		var total int64
		for _, r := range hist {
			total += r.Agg
		}
		if total < d.Spec.MinEffective {
			continue
		}
		if o.Keep != nil && !o.Keep(core.POI{ID: p.ID, X: p.X, Y: p.Y}) {
			continue
		}
		if err := tr.InsertPOI(core.POI{ID: p.ID, X: p.X, Y: p.Y}, hist); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// EffectivePOIs returns the POIs Build would index — those whose check-in
// totals (up to cutoff; 0 means all) reach the effectiveness threshold —
// before any Keep filter. Shard-map construction partitions exactly this
// set. epochLength 0 selects the 7-day default, matching Build.
func (d *Dataset) EffectivePOIs(epochLength, cutoff int64) []core.POI {
	if epochLength == 0 {
		epochLength = 7 * Day
	}
	var out []core.POI
	for i := range d.POIs {
		p := &d.POIs[i]
		var total int64
		for _, r := range History(p, d.Spec.Start, epochLength, cutoff) {
			total += r.Agg
		}
		if total >= d.Spec.MinEffective {
			out = append(out, core.POI{ID: p.ID, X: p.X, Y: p.Y})
		}
	}
	return out
}

// Queries generates n kNNTA queries per the paper's setup: query points
// uniformly sampled from the POIs, query intervals of 2^0..2^9 days with
// uniformly drawn exponents, placed uniformly in the time span.
func (d *Dataset) Queries(n int, k int, alpha0 float64, seed int64) []core.Query {
	return d.QueriesUntil(n, k, alpha0, seed, d.Spec.End)
}

// QueriesUntil is Queries with intervals confined to [Start, end) — the
// growth experiment (Figure 8) queries each snapshot within its own span.
func (d *Dataset) QueriesUntil(n int, k int, alpha0 float64, seed, end int64) []core.Query {
	r := rand.New(rand.NewSource(seed))
	qs := make([]core.Query, n)
	span := end - d.Spec.Start
	for i := range qs {
		p := &d.POIs[r.Intn(len(d.POIs))]
		days := int64(1) << uint(r.Intn(10))
		length := days * Day
		if length > span {
			length = span
		}
		start := d.Spec.Start + int64(r.Float64()*float64(span-length))
		qs[i] = core.Query{
			X: p.X, Y: p.Y,
			Iq:     tia.Interval{Start: start, End: start + length},
			K:      k,
			Alpha0: alpha0,
		}
	}
	return qs
}

// QueryIntervals draws the given number of distinct query time intervals —
// the "query types" of the collective-processing experiment (Figure 16),
// where applications offer only a few interval presets.
func (d *Dataset) QueryIntervals(types int, seed int64) []tia.Interval {
	r := rand.New(rand.NewSource(seed))
	span := d.Spec.End - d.Spec.Start
	ivs := make([]tia.Interval, types)
	for i := range ivs {
		days := int64(1) << uint(r.Intn(10))
		length := days * Day
		if length > span {
			length = span
		}
		start := d.Spec.Start + int64(r.Float64()*float64(span-length))
		ivs[i] = tia.Interval{Start: start, End: start + length}
	}
	return ivs
}

// QueriesWithIntervals generates n queries whose intervals are drawn
// uniformly from the given presets.
func (d *Dataset) QueriesWithIntervals(n, k int, alpha0 float64, seed int64, ivs []tia.Interval) []core.Query {
	r := rand.New(rand.NewSource(seed))
	qs := make([]core.Query, n)
	for i := range qs {
		p := &d.POIs[r.Intn(len(d.POIs))]
		qs[i] = core.Query{
			X: p.X, Y: p.Y,
			Iq:     ivs[r.Intn(len(ivs))],
			K:      k,
			Alpha0: alpha0,
		}
	}
	return qs
}
