package lbsn

import (
	"math"
	"math/rand"
	"testing"

	"tartree/internal/core"
	"tartree/internal/powerlaw"
	"tartree/internal/tia"
)

func smallSpec() Spec {
	s := NYC.Scaled(0.08) // ~5800 POIs
	return s
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.POIs) != len(b.POIs) {
		t.Fatal("different POI counts")
	}
	for i := range a.POIs {
		if a.POIs[i].X != b.POIs[i].X || a.POIs[i].Total() != b.POIs[i].Total() {
			t.Fatalf("POI %d differs between runs", i)
		}
	}
}

func TestGenerateBasicShape(t *testing.T) {
	spec := smallSpec()
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.POIs) != spec.Locations {
		t.Fatalf("POIs = %d, want %d", len(d.POIs), spec.Locations)
	}
	// Check-in total within 40% of the calibration target (the mixture is
	// approximate).
	got := float64(d.TotalCheckIns())
	want := float64(spec.CheckIns)
	if got < want*0.6 || got > want*1.4 {
		t.Errorf("check-ins = %.0f, want ≈%.0f", got, want)
	}
	for i := range d.POIs {
		p := &d.POIs[i]
		if p.X < 0 || p.X > 100 || p.Y < 0 || p.Y > 100 {
			t.Fatalf("POI %d outside world: (%g, %g)", i, p.X, p.Y)
		}
		if p.Total() < 1 {
			t.Fatalf("POI %d has no check-ins", i)
		}
		for j, ts := range p.Times {
			if ts < spec.Start || ts >= spec.End {
				t.Fatalf("POI %d check-in %d out of span", i, ts)
			}
			if j > 0 && ts < p.Times[j-1] {
				t.Fatalf("POI %d times unsorted", i)
			}
		}
	}
}

// The generated tail must fit a power law with roughly the spec's β —
// this is what makes the synthetic data a valid stand-in for Table 2.
func TestGeneratedTailFollowsPowerLaw(t *testing.T) {
	spec := NYC.Scaled(0.3)
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := powerlaw.Estimate(d.Totals(), powerlaw.FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Beta-spec.Beta) > 0.5 {
		t.Errorf("fitted β = %.2f, spec β = %.2f", fit.Beta, spec.Beta)
	}
	p, err := powerlaw.PValue(d.Totals(), fit, 40, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0.1 {
		t.Errorf("p-value = %.3f: generated data rejected as power law", p)
	}
}

func TestSpatialClustering(t *testing.T) {
	d, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Grid occupancy: clustered data leaves many cells empty and packs
	// many POIs into few cells, unlike uniform placement.
	const g = 20
	var cells [g][g]int
	for i := range d.POIs {
		x := int(d.POIs[i].X / 100 * g)
		y := int(d.POIs[i].Y / 100 * g)
		if x >= g {
			x = g - 1
		}
		if y >= g {
			y = g - 1
		}
		cells[x][y]++
	}
	max, nonEmpty := 0, 0
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			if cells[i][j] > 0 {
				nonEmpty++
			}
			if cells[i][j] > max {
				max = cells[i][j]
			}
		}
	}
	mean := float64(len(d.POIs)) / (g * g)
	if float64(max) < 5*mean {
		t.Errorf("max cell %d vs mean %.1f: not clustered", max, mean)
	}
}

func TestHistoryBucketing(t *testing.T) {
	p := POI{ID: 1, Times: []int64{0, 5, 9, 10, 25, 95}}
	recs := History(&p, 0, 10, 0)
	want := []tia.Record{{Ts: 0, Te: 10, Agg: 3}, {Ts: 10, Te: 20, Agg: 1}, {Ts: 20, Te: 30, Agg: 1}, {Ts: 90, Te: 100, Agg: 1}}
	if len(recs) != len(want) {
		t.Fatalf("recs = %v", recs)
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("recs = %v, want %v", recs, want)
		}
	}
	// Cutoff drops later check-ins.
	cut := History(&p, 0, 10, 10)
	if len(cut) != 1 || cut[0].Agg != 3 {
		t.Fatalf("cut = %v", cut)
	}
}

func TestSnapshotGrowth(t *testing.T) {
	d, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		cut := d.SnapshotEnd(frac)
		var n int64
		for i := range d.POIs {
			for _, ts := range d.POIs[i].Times {
				if ts < cut {
					n++
				}
			}
		}
		if n <= prev {
			t.Errorf("snapshot %.0f%%: %d check-ins, not growing", frac*100, n)
		}
		prev = n
	}
}

func TestBuildTree(t *testing.T) {
	d, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := d.Build(BuildOptions{Grouping: core.TAR3D})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("no effective POIs indexed")
	}
	// Effective POIs are those with >= MinEffective check-ins.
	want := 0
	for i := range d.POIs {
		if d.POIs[i].Total() >= d.Spec.MinEffective {
			want++
		}
	}
	if tr.Len() != want {
		t.Fatalf("indexed %d POIs, want %d effective", tr.Len(), want)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	// Queries run and return k results.
	qs := d.Queries(20, 10, 0.3, 7)
	for _, q := range qs {
		res, _, err := tr.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 10 {
			t.Fatalf("query returned %d results", len(res))
		}
	}
}

func TestQueriesShape(t *testing.T) {
	d, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	qs := d.Queries(200, 10, 0.3, 1)
	for i, q := range qs {
		days := (q.Iq.End - q.Iq.Start) / Day
		// Interval lengths are powers of two between 1 and 512 days
		// (clamped to the span).
		if days < 1 || days > 512 {
			t.Fatalf("query %d: %d days", i, days)
		}
		if q.Iq.Start < d.Spec.Start || q.Iq.End > d.Spec.End {
			t.Fatalf("query %d: interval outside span", i)
		}
		if q.K != 10 || q.Alpha0 != 0.3 {
			t.Fatalf("query %d: wrong parameters", i)
		}
	}
}

func TestSpecHelpers(t *testing.T) {
	if len(Specs()) != 4 {
		t.Fatal("want 4 specs")
	}
	s, err := SpecByName("GW")
	if err != nil || s.Name != "GW" {
		t.Fatalf("SpecByName: %v %v", s, err)
	}
	if _, err := SpecByName("XX"); err == nil {
		t.Fatal("unknown name accepted")
	}
	h := GW.Scaled(0.5)
	if h.Locations != GW.Locations/2 {
		t.Errorf("scaled locations = %d", h.Locations)
	}
	if bad := GW.Scaled(-1); bad.Locations != GW.Locations {
		t.Errorf("invalid scale should be ignored")
	}
}

func TestGenerateInvalidSpec(t *testing.T) {
	if _, err := Generate(Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	spec := NYC.Scaled(0.01)
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	pp, cp, err := d.WriteCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(spec, pp, cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.POIs) != len(d.POIs) {
		t.Fatalf("POIs = %d, want %d", len(got.POIs), len(d.POIs))
	}
	if got.TotalCheckIns() != d.TotalCheckIns() {
		t.Fatalf("check-ins = %d, want %d", got.TotalCheckIns(), d.TotalCheckIns())
	}
	// Per-POI identity (coordinates round to 6 decimals in the CSV).
	for i := range d.POIs {
		a, b := &d.POIs[i], &got.POIs[i]
		if a.ID != b.ID || len(a.Times) != len(b.Times) {
			t.Fatalf("POI %d mismatch", a.ID)
		}
		if math.Abs(a.X-b.X) > 1e-5 || math.Abs(a.Y-b.Y) > 1e-5 {
			t.Fatalf("POI %d coords drifted", a.ID)
		}
		for j := range a.Times {
			if a.Times[j] != b.Times[j] {
				t.Fatalf("POI %d time %d mismatch", a.ID, j)
			}
		}
	}
	// A tree built from the loaded data answers identically.
	tr1, err := d.Build(BuildOptions{Grouping: core.TAR3D})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := got.Build(BuildOptions{Grouping: core.TAR3D})
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Len() != tr2.Len() {
		t.Fatalf("trees differ: %d vs %d POIs", tr1.Len(), tr2.Len())
	}
	for _, q := range d.Queries(10, 5, 0.3, 3) {
		r1, _, err := tr1.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		r2, _, err := tr2.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range r1 {
			if math.Abs(r1[i].Score-r2[i].Score) > 1e-6 {
				t.Fatalf("scores differ at %d", i)
			}
		}
	}
}

func TestLoadCSVErrors(t *testing.T) {
	if _, err := LoadCSV(NYC, "/nonexistent/p.csv", "/nonexistent/c.csv"); err == nil {
		t.Fatal("missing file accepted")
	}
}
