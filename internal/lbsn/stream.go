package lbsn

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"tartree/internal/core"
)

// StreamCheckIn is one event of the live check-in stream: check-in ID
// (1-based position in the stream) at POI at Unix time At. The stream is the
// ingestion-path counterpart of the bulk CSV pair: the same data set
// flattened into arrival order, ready to be replayed through AddCheckIn or a
// durable WAL store.
type StreamCheckIn struct {
	POI int64
	ID  int64
	At  int64
}

// CheckInStream flattens the data set into one deterministic time-ordered
// stream: all check-ins sorted by (time, POI), with IDs assigned in stream
// order. Replaying it through the ingest path and flushing yields the same
// aggregates as a bulk Build of the same data.
func (d *Dataset) CheckInStream() []StreamCheckIn {
	var n int
	for i := range d.POIs {
		n += len(d.POIs[i].Times)
	}
	out := make([]StreamCheckIn, 0, n)
	for i := range d.POIs {
		p := &d.POIs[i]
		for _, ts := range p.Times {
			out = append(out, StreamCheckIn{POI: p.ID, At: ts})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].At != out[b].At {
			return out[a].At < out[b].At
		}
		return out[a].POI < out[b].POI
	})
	for i := range out {
		out[i].ID = int64(i + 1)
	}
	return out
}

// WriteCheckInStream writes the stream as CSV with header poi,id,ts.
func WriteCheckInStream(w io.Writer, cs []StreamCheckIn) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "poi,id,ts"); err != nil {
		return err
	}
	for _, c := range cs {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d\n", c.POI, c.ID, c.At); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCheckInStream reads a stream written by WriteCheckInStream.
func ReadCheckInStream(r io.Reader) ([]StreamCheckIn, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = 3
	var out []StreamCheckIn
	first := true
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("lbsn: reading check-in stream: %w", err)
		}
		if first {
			first = false
			continue // header
		}
		poi, err1 := strconv.ParseInt(row[0], 10, 64)
		id, err2 := strconv.ParseInt(row[1], 10, 64)
		ts, err3 := strconv.ParseInt(row[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("lbsn: malformed stream row %v", row)
		}
		out = append(out, StreamCheckIn{POI: poi, ID: id, At: ts})
	}
}

// BuildEmpty indexes the data set's effective POIs with empty histories: the
// same POI set Build selects, but every aggregate left for the ingestion
// path to deliver. Replaying the full CheckInStream into the result and
// flushing reproduces Build's aggregates — the equivalence the stream tools
// (tarquery -replay, tarserve -replay) rely on.
func (d *Dataset) BuildEmpty(o BuildOptions) (*core.Tree, error) {
	if o.EpochLength == 0 {
		o.EpochLength = 7 * Day
	}
	tr, err := core.NewTree(core.Options{
		World:       d.World,
		NodeSize:    o.NodeSize,
		Grouping:    o.Grouping,
		TIA:         o.TIA,
		Semantics:   o.Semantics,
		EpochStart:  d.Spec.Start,
		EpochLength: o.EpochLength,
		Metrics:     o.Metrics,
		Traces:      o.Traces,
		Cache:       o.Cache,
	})
	if err != nil {
		return nil, err
	}
	for i := range d.POIs {
		p := &d.POIs[i]
		hist := History(p, d.Spec.Start, o.EpochLength, o.Cutoff)
		var total int64
		for _, r := range hist {
			total += r.Agg
		}
		if total < d.Spec.MinEffective {
			continue
		}
		if err := tr.InsertPOI(core.POI{ID: p.ID, X: p.X, Y: p.Y}, nil); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// ReplayStream feeds the stream through the tree's ingest path, skipping
// check-ins for POIs the tree does not index (non-effective POIs are absent
// by design), and returns how many were applied and skipped. The caller
// flushes when done.
func ReplayStream(tr *core.Tree, cs []StreamCheckIn) (applied, skipped int64, err error) {
	for _, c := range cs {
		if _, ok := tr.Lookup(c.POI); !ok {
			skipped++
			continue
		}
		if err := tr.AddCheckIn(c.POI, c.At); err != nil {
			return applied, skipped, err
		}
		applied++
	}
	return applied, skipped, nil
}
