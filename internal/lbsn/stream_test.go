package lbsn

import (
	"bytes"
	"math"
	"testing"

	"tartree/internal/tia"
)

func TestCheckInStreamDeterministicAndSorted(t *testing.T) {
	d, err := Generate(NYC.Scaled(0.01))
	if err != nil {
		t.Fatal(err)
	}
	a := d.CheckInStream()
	b := d.CheckInStream()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("stream lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].ID != int64(i+1) {
			t.Fatalf("stream ID %d at position %d", a[i].ID, i)
		}
		if i > 0 && (a[i].At < a[i-1].At || (a[i].At == a[i-1].At && a[i].POI < a[i-1].POI)) {
			t.Fatalf("stream out of order at %d", i)
		}
	}
	if got := int64(len(a)); got != d.TotalCheckIns() {
		t.Fatalf("stream has %d check-ins, data set %d", got, d.TotalCheckIns())
	}
}

func TestCheckInStreamCSVRoundTrip(t *testing.T) {
	d, err := Generate(LA.Scaled(0.005))
	if err != nil {
		t.Fatal(err)
	}
	cs := d.CheckInStream()
	var buf bytes.Buffer
	if err := WriteCheckInStream(&buf, cs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckInStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cs) {
		t.Fatalf("round trip %d of %d records", len(got), len(cs))
	}
	for i := range cs {
		if got[i] != cs[i] {
			t.Fatalf("record %d: %+v vs %+v", i, got[i], cs[i])
		}
	}
}

// TestStreamReplayMatchesBulkBuild pins the ingestion-path equivalence: an
// empty tree fed the full check-in stream and flushed answers queries
// identically to the bulk-built tree.
func TestStreamReplayMatchesBulkBuild(t *testing.T) {
	d, err := Generate(GS.Scaled(0.01))
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := d.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	live, err := d.BuildEmpty(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if live.Len() != bulk.Len() {
		t.Fatalf("effective POIs: %d live vs %d bulk", live.Len(), bulk.Len())
	}
	applied, skipped, err := ReplayStream(live, d.CheckInStream())
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 {
		t.Fatal("replay applied nothing")
	}
	if applied+skipped != d.TotalCheckIns() {
		t.Fatalf("applied %d + skipped %d != total %d", applied, skipped, d.TotalCheckIns())
	}
	if err := live.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Per-POI aggregates over the whole span agree.
	iv := tia.Interval{Start: d.Spec.Start, End: d.Spec.End + 7*Day}
	for _, p := range d.POIs {
		if _, ok := bulk.Lookup(p.ID); !ok {
			continue
		}
		a, err := bulk.Aggregate(p.ID, iv)
		if err != nil {
			t.Fatal(err)
		}
		b, err := live.Aggregate(p.ID, iv)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("POI %d: bulk aggregate %d, replayed %d", p.ID, a, b)
		}
	}
	// Query results agree.
	for _, q := range d.Queries(10, 5, 0.3, 77) {
		want, _, err := bulk.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := live.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("result counts %d vs %d", len(want), len(got))
		}
		scores := make(map[int64]float64, len(want))
		for _, r := range want {
			scores[r.POI.ID] = r.Score
		}
		for _, r := range got {
			w, ok := scores[r.POI.ID]
			if !ok || math.Abs(w-r.Score) > 1e-9 {
				t.Fatalf("POI %d score %.12f, bulk %.12f (ok=%v)", r.POI.ID, r.Score, w, ok)
			}
		}
	}
}
