// Package mvbt implements the multi-version B-tree of Becker, Gschwind,
// Ohler, Seeger and Widmayer (VLDBJ 1996), the index the paper names as its
// TIA implementation ("we have used the disk-based multi-version B-tree in
// our implementation as it has been proven to be asymptotically optimal").
//
// An MVBT stores entries ⟨key, [vstart, vend), value⟩ and answers key and
// key-range queries *as of any version*. Updates happen at non-decreasing
// versions. Nodes satisfy the weak version condition: for every version a
// node covers, the number of entries live at that version is either zero or
// at least d (except for roots). Physical overflow and weak-version
// underflow are repaired by version splits, optionally followed by key
// splits or merges with a sibling, exactly as in the original paper.
//
// The tree lives on a pagestore buffer pool; historical nodes are never
// modified after they are retired, which is what makes the structure
// append-friendly for the TAR-tree's ever-growing aggregate histories.
package mvbt

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"encoding/binary"

	"tartree/internal/pagestore"
)

// Value is the fixed-size payload of a leaf entry.
type Value [2]int64

// Live is the vend sentinel of entries that have not been deleted.
const Live int64 = math.MaxInt64

const (
	headerSize = 16
	entrySize  = 8 + 8 + 8 + 16 // key, vstart, vend, value/child

	flagLeaf = 1
)

// ErrTooSmall is returned by New when pages cannot hold enough entries.
var ErrTooSmall = errors.New("mvbt: page size too small")

// ErrVersionOrder is returned when an update uses a version smaller than a
// previous update's version.
var ErrVersionOrder = errors.New("mvbt: versions must be non-decreasing")

type entry struct {
	key    int64
	vstart int64
	vend   int64 // Live when not deleted
	val    Value // leaf payload; val[0] holds the child PageID in inner nodes
}

func (e entry) child() pagestore.PageID { return pagestore.PageID(e.val[0]) }

func (e entry) liveAt(v int64) bool { return e.vstart <= v && v < e.vend }

type node struct {
	id   pagestore.PageID
	leaf bool
	// level is the node's height (1 = leaf); it is not stored on the page
	// but threaded from callers so page I/O can be attributed per level.
	level   int
	entries []entry
}

func (n *node) liveCount(v int64) int {
	c := 0
	for _, e := range n.entries {
		if e.liveAt(v) {
			c++
		}
	}
	return c
}

// rootSpan records which node was the root for versions [vstart, vend).
type rootSpan struct {
	vstart, vend int64
	id           pagestore.PageID
	height       int // 1 = leaf root
}

// Tree is a multi-version B-tree.
type Tree struct {
	buf   *pagestore.Buffer
	roots []rootSpan // the last span is live (vend == Live)
	b     int        // node capacity in entries
	d     int        // weak version condition minimum
	svd   int        // strong condition lower bound after restructuring
	svo   int        // strong condition upper bound after restructuring
	now   int64      // version of the latest update
	count int        // live key count
}

// New creates an empty MVBT allocating pages from buf. The initial version
// is the smallest int64, so any first update version is acceptable.
func New(buf *pagestore.Buffer) (*Tree, error) {
	b := (buf.PageSize() - headerSize) / entrySize
	if b < 8 {
		return nil, fmt.Errorf("%w: %d bytes (capacity %d)", ErrTooSmall, buf.PageSize(), b)
	}
	t := &Tree{
		buf: buf,
		b:   b,
		d:   b / 8,
		svd: b / 4,
		svo: b - b/8,
		now: math.MinInt64,
	}
	if t.d < 2 {
		t.d = 2
	}
	if t.svd <= t.d {
		t.svd = t.d + 1
	}
	id, err := buf.Alloc()
	if err != nil {
		return nil, err
	}
	if err := t.writeNode(&node{id: id, leaf: true, level: 1}); err != nil {
		return nil, err
	}
	t.roots = []rootSpan{{vstart: math.MinInt64, vend: Live, id: id, height: 1}}
	return t, nil
}

// Capacity returns the node capacity in entries.
func (t *Tree) Capacity() int { return t.b }

// Len returns the number of live keys at the current version.
func (t *Tree) Len() int { return t.count }

// Now returns the latest update version seen.
func (t *Tree) Now() int64 { return t.now }

// NumRoots returns how many root spans exist (tests use this to verify that
// version splits of the root occurred).
func (t *Tree) NumRoots() int { return len(t.roots) }

// tag attributes one page access to this tree's component at the given
// node level (mvbt levels are 1-based; attribution levels are 0 = leaf).
func tag(level int) pagestore.IOTag {
	return pagestore.NewIOTag(pagestore.CompTIAMVBT, level-1)
}

func (t *Tree) readNode(id pagestore.PageID, level int) (*node, error) {
	return t.readNodeAcct(id, level, nil)
}

// readNodeAcct is readNode with the access charged to a query-local acct
// (nil for unattributed traffic, e.g. the mutation paths).
func (t *Tree) readNodeAcct(id pagestore.PageID, level int, acct *pagestore.IOAcct) (*node, error) {
	page, err := t.buf.GetTag(id, tag(level).WithAcct(acct))
	if err != nil {
		return nil, err
	}
	n := &node{id: id, level: level}
	n.leaf = page[0]&flagLeaf != 0
	cnt := int(binary.LittleEndian.Uint16(page[2:4]))
	if cnt > t.b {
		return nil, fmt.Errorf("mvbt: corrupt node %d: %d entries", id, cnt)
	}
	n.entries = make([]entry, cnt)
	off := headerSize
	for i := range n.entries {
		e := &n.entries[i]
		e.key = int64(binary.LittleEndian.Uint64(page[off:]))
		e.vstart = int64(binary.LittleEndian.Uint64(page[off+8:]))
		e.vend = int64(binary.LittleEndian.Uint64(page[off+16:]))
		e.val[0] = int64(binary.LittleEndian.Uint64(page[off+24:]))
		e.val[1] = int64(binary.LittleEndian.Uint64(page[off+32:]))
		off += entrySize
	}
	return n, nil
}

func (t *Tree) writeNode(n *node) error {
	if len(n.entries) > t.b {
		return fmt.Errorf("mvbt: node %d over capacity (%d > %d)", n.id, len(n.entries), t.b)
	}
	page := make([]byte, t.buf.PageSize())
	if n.leaf {
		page[0] = flagLeaf
	}
	binary.LittleEndian.PutUint16(page[2:4], uint16(len(n.entries)))
	off := headerSize
	for _, e := range n.entries {
		binary.LittleEndian.PutUint64(page[off:], uint64(e.key))
		binary.LittleEndian.PutUint64(page[off+8:], uint64(e.vstart))
		binary.LittleEndian.PutUint64(page[off+16:], uint64(e.vend))
		binary.LittleEndian.PutUint64(page[off+24:], uint64(e.val[0]))
		binary.LittleEndian.PutUint64(page[off+32:], uint64(e.val[1]))
		off += entrySize
	}
	return t.buf.PutTag(n.id, page, tag(n.level))
}

func (t *Tree) liveRoot() *rootSpan { return &t.roots[len(t.roots)-1] }

// rootFor returns the root span covering version v.
func (t *Tree) rootFor(v int64) rootSpan {
	i := sort.Search(len(t.roots), func(i int) bool { return t.roots[i].vend > v })
	if i == len(t.roots) {
		i = len(t.roots) - 1
	}
	return t.roots[i]
}

// routeChild picks the live child entry of n that covers key at version v:
// the live entry with the largest router key <= key, or the live entry with
// the smallest router when key precedes all routers.
func routeChild(n *node, v, key int64) (int, bool) {
	best, first := -1, -1
	var bestKey, firstKey int64
	for i, e := range n.entries {
		if !e.liveAt(v) {
			continue
		}
		if first == -1 || e.key < firstKey {
			first, firstKey = i, e.key
		}
		if e.key <= key && (best == -1 || e.key > bestKey) {
			best, bestKey = i, e.key
		}
	}
	if best != -1 {
		return best, true
	}
	if first != -1 {
		return first, true
	}
	return -1, false
}

// pathElem records the nodes visited during a descent.
type pathElem struct {
	n        *node
	childIdx int // index in n.entries of the child taken (inner levels)
}

func (t *Tree) descend(v, key int64) ([]pathElem, error) {
	span := t.rootFor(v)
	path := make([]pathElem, 0, span.height)
	id := span.id
	for level := span.height; level >= 1; level-- {
		n, err := t.readNode(id, level)
		if err != nil {
			return nil, err
		}
		pe := pathElem{n: n, childIdx: -1}
		if level > 1 {
			i, ok := routeChild(n, v, key)
			if !ok {
				return nil, fmt.Errorf("mvbt: no live route at node %d version %d", id, v)
			}
			pe.childIdx = i
			id = n.entries[i].child()
		}
		path = append(path, pe)
	}
	return path, nil
}

// Insert adds key with value val at version v. Inserting a key that is
// already live at v is an error (use Update to change a live value).
func (t *Tree) Insert(v, key int64, val Value) error {
	if v < t.now {
		return fmt.Errorf("%w: %d after %d", ErrVersionOrder, v, t.now)
	}
	t.now = v
	path, err := t.descend(v, key)
	if err != nil {
		return err
	}
	leaf := path[len(path)-1].n
	for _, e := range leaf.entries {
		if e.key == key && e.liveAt(v) {
			return fmt.Errorf("mvbt: key %d already live at version %d", key, v)
		}
	}
	leaf.entries = append(leaf.entries, entry{key: key, vstart: v, vend: Live, val: val})
	t.count++
	return t.fix(path, v)
}

// Delete marks key dead at version v. It reports whether the key was live.
func (t *Tree) Delete(v, key int64) (bool, error) {
	if v < t.now {
		return false, fmt.Errorf("%w: %d after %d", ErrVersionOrder, v, t.now)
	}
	t.now = v
	path, err := t.descend(v, key)
	if err != nil {
		return false, err
	}
	leaf := path[len(path)-1].n
	found := false
	for i := range leaf.entries {
		e := &leaf.entries[i]
		if e.key == key && e.liveAt(v) {
			if e.vstart == v {
				// Inserted and deleted at the same version: drop outright to
				// avoid zombie entries.
				leaf.entries = append(leaf.entries[:i], leaf.entries[i+1:]...)
			} else {
				e.vend = v
			}
			found = true
			break
		}
	}
	if !found {
		return false, nil
	}
	t.count--
	return true, t.fix(path, v)
}

// Update changes the value of a live key at version v by deleting and
// re-inserting it, preserving the old value in history.
func (t *Tree) Update(v, key int64, val Value) error {
	ok, err := t.Delete(v, key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("mvbt: update of non-live key %d", key)
	}
	return t.Insert(v, key, val)
}

// needsFix reports whether node n violates physical capacity or, for
// non-roots, the weak version condition at version v.
func (t *Tree) needsFix(n *node, v int64, isRoot bool) bool {
	if len(n.entries) > t.b {
		return true
	}
	if isRoot {
		return false
	}
	return n.liveCount(v) < t.d
}

// fix repairs violations along the path from the leaf upward, performing
// version splits, key splits and merges. Restructuring a node modifies its
// parent in memory, so the walk continues until it reaches a level that
// needs no repair, which it then persists; everything above is untouched.
func (t *Tree) fix(path []pathElem, v int64) error {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i].n
		if !t.needsFix(n, v, i == 0) {
			return t.writeNode(n)
		}
		if i == 0 {
			return t.fixRoot(n, v)
		}
		if err := t.restructure(path[i-1].n, n, v); err != nil {
			return err
		}
	}
	return nil
}

// versionCopy closes all live entries of n at version v and returns fresh
// copies with lifespan [v, Live). Entries born at v are moved, not copied,
// so no zombie [v, v) entries remain.
func versionCopy(n *node, v int64) []entry {
	var out []entry
	kept := n.entries[:0]
	for _, e := range n.entries {
		if !e.liveAt(v) {
			kept = append(kept, e)
			continue
		}
		c := e
		c.vstart = v
		c.vend = Live
		out = append(out, c)
		if e.vstart == v {
			continue // moved
		}
		e.vend = v
		kept = append(kept, e)
	}
	n.entries = kept
	return out
}

// splitByKey splits entries (all live from v) into two halves around the
// median key. The right half's router is its smallest key; the left half
// keeps the inherited router of the node that split.
func splitByKey(entries []entry) ([]entry, []entry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	mid := len(entries) / 2
	left := append([]entry(nil), entries[:mid]...)
	right := append([]entry(nil), entries[mid:]...)
	return left, right
}

// newNodeFrom allocates and writes a node holding entries at the given
// tree level.
func (t *Tree) newNodeFrom(leaf bool, level int, entries []entry) (*node, error) {
	id, err := t.buf.Alloc()
	if err != nil {
		return nil, err
	}
	n := &node{id: id, leaf: leaf, level: level, entries: entries}
	return n, t.writeNode(n)
}

// closeParentEntry marks the live parent entry pointing at child dead at v
// (or removes it when it was born at v) and returns the entry's router key.
// Router keys are the key-range separators inherited across version splits;
// they — not the minimum stored key — define which child covers a key, so
// restructured nodes must inherit them.
func closeParentEntry(parent *node, child pagestore.PageID, v int64) (int64, bool) {
	for i := range parent.entries {
		e := &parent.entries[i]
		if e.child() == child && e.liveAt(v) {
			router := e.key
			if e.vstart == v {
				parent.entries = append(parent.entries[:i], parent.entries[i+1:]...)
			} else {
				e.vend = v
			}
			return router, true
		}
	}
	return 0, false
}

// siblingOf picks a live sibling for a merge: the live entry whose router
// key is adjacent (closest) to router. Adjacency in router order guarantees
// the merged node covers a contiguous key range.
func siblingOf(parent *node, exclude pagestore.PageID, v, router int64) (pagestore.PageID, bool) {
	best := pagestore.InvalidPage
	bestGap := uint64(math.MaxUint64)
	for _, e := range parent.entries {
		if !e.liveAt(v) || e.child() == exclude {
			continue
		}
		var gap uint64
		if e.key >= router {
			gap = uint64(e.key - router)
		} else {
			gap = uint64(router - e.key)
		}
		if gap < bestGap {
			bestGap = gap
			best = e.child()
		}
	}
	return best, best != pagestore.InvalidPage
}

// restructure repairs child (which violates capacity or the weak version
// condition) underneath parent at version v: version split, then merge on
// strong underflow or key split on strong overflow. parent is updated in
// memory only; the caller continues fixing upward and writes it later.
func (t *Tree) restructure(parent, child *node, v int64) error {
	liveEntries := versionCopy(child, v)
	if err := t.writeNode(child); err != nil { // retire the old node
		return err
	}
	router, ok := closeParentEntry(parent, child.id, v)
	if !ok {
		return fmt.Errorf("mvbt: parent %d has no live entry for child %d", parent.id, child.id)
	}

	// Strong version underflow: merge with the router-adjacent sibling.
	if len(liveEntries) < t.svd {
		if sibID, ok := siblingOf(parent, child.id, v, router); ok {
			sib, err := t.readNode(sibID, child.level)
			if err != nil {
				return err
			}
			sibLive := versionCopy(sib, v)
			if err := t.writeNode(sib); err != nil {
				return err
			}
			sibRouter, ok := closeParentEntry(parent, sib.id, v)
			if !ok {
				return fmt.Errorf("mvbt: parent %d has no live entry for sibling %d", parent.id, sib.id)
			}
			if sibRouter < router {
				router = sibRouter
			}
			liveEntries = append(liveEntries, sibLive...)
		}
	}

	if len(liveEntries) == 0 {
		// Everything died; the parent simply loses the child.
		return nil
	}

	addChild := func(router int64, leaf bool, entries []entry) error {
		nn, err := t.newNodeFrom(leaf, child.level, entries)
		if err != nil {
			return err
		}
		parent.entries = append(parent.entries, entry{
			key:    router,
			vstart: v,
			vend:   Live,
			val:    Value{int64(nn.id), 0},
		})
		return nil
	}

	// Strong version overflow: key split into two nodes.
	if len(liveEntries) > t.svo {
		l, r := splitByKey(liveEntries)
		if err := addChild(router, child.leaf, l); err != nil {
			return err
		}
		return addChild(r[0].key, child.leaf, r)
	}
	return addChild(router, child.leaf, liveEntries)
}

// fixRoot repairs a root that overflowed its page (roots are exempt from
// the weak version condition). The root's implicit router is the smallest
// key, so key-splitting a root gives the left part a -inf router.
func (t *Tree) fixRoot(root *node, v int64) error {
	liveEntries := versionCopy(root, v)
	if err := t.writeNode(root); err != nil {
		return err
	}
	span := t.liveRoot()
	span.vend = v

	if len(liveEntries) == 0 {
		// Degenerate: everything is dead. Start a fresh empty leaf root.
		nn, err := t.newNodeFrom(true, 1, nil)
		if err != nil {
			return err
		}
		t.roots = append(t.roots, rootSpan{vstart: v, vend: Live, id: nn.id, height: 1})
		return nil
	}

	if len(liveEntries) > t.svo {
		l, r := splitByKey(liveEntries)
		ln, err := t.newNodeFrom(root.leaf, root.level, l)
		if err != nil {
			return err
		}
		rn, err := t.newNodeFrom(root.leaf, root.level, r)
		if err != nil {
			return err
		}
		newRoot, err := t.newNodeFrom(false, root.level+1, []entry{
			{key: math.MinInt64, vstart: v, vend: Live, val: Value{int64(ln.id), 0}},
			{key: r[0].key, vstart: v, vend: Live, val: Value{int64(rn.id), 0}},
		})
		if err != nil {
			return err
		}
		t.roots = append(t.roots, rootSpan{vstart: v, vend: Live, id: newRoot.id, height: span.height + 1})
		return nil
	}

	nn, err := t.newNodeFrom(root.leaf, root.level, liveEntries)
	if err != nil {
		return err
	}
	t.roots = append(t.roots, rootSpan{vstart: v, vend: Live, id: nn.id, height: span.height})
	return nil
}

// Get returns the value of key as of version v.
func (t *Tree) Get(v, key int64) (Value, bool, error) {
	span := t.rootFor(v)
	id := span.id
	for level := span.height; level > 1; level-- {
		n, err := t.readNode(id, level)
		if err != nil {
			return Value{}, false, err
		}
		i, ok := routeChild(n, v, key)
		if !ok {
			return Value{}, false, nil
		}
		id = n.entries[i].child()
	}
	n, err := t.readNode(id, 1)
	if err != nil {
		return Value{}, false, err
	}
	for _, e := range n.entries {
		if e.key == key && e.liveAt(v) {
			return e.val, true, nil
		}
	}
	return Value{}, false, nil
}

// ScanAt visits all live ⟨key, value⟩ pairs with lo <= key <= hi as of
// version v, in ascending key order, stopping early when fn returns false.
func (t *Tree) ScanAt(v, lo, hi int64, fn func(key int64, val Value) bool) error {
	return t.ScanAtAcct(v, lo, hi, nil, fn)
}

// ScanAtAcct is ScanAt with the page accesses charged to acct (which may be
// nil). The TIA aggregation path threads the owning query's acct here so
// per-query I/O stays exact under concurrent execution. Read-only
// operations are safe to call from many goroutines at once; mutation must
// not run concurrently with anything else.
func (t *Tree) ScanAtAcct(v, lo, hi int64, acct *pagestore.IOAcct, fn func(key int64, val Value) bool) error {
	span := t.rootFor(v)
	var results []entry
	if err := t.collect(span.id, span.height, v, lo, hi, acct, &results); err != nil {
		return err
	}
	sort.Slice(results, func(i, j int) bool { return results[i].key < results[j].key })
	for _, e := range results {
		if !fn(e.key, e.val) {
			return nil
		}
	}
	return nil
}

// collect gathers live leaf entries in [lo, hi] at version v.
func (t *Tree) collect(id pagestore.PageID, level int, v, lo, hi int64, acct *pagestore.IOAcct, out *[]entry) error {
	n, err := t.readNodeAcct(id, level, acct)
	if err != nil {
		return err
	}
	if level == 1 {
		for _, e := range n.entries {
			if e.liveAt(v) && lo <= e.key && e.key <= hi {
				*out = append(*out, e)
			}
		}
		return nil
	}
	// Children partition the live key space by router key: child i covers
	// [router_i, router_{i+1}). Sort the live children by router.
	var live []entry
	for _, e := range n.entries {
		if e.liveAt(v) {
			live = append(live, e)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].key < live[j].key })
	for i, e := range live {
		next := int64(math.MaxInt64)
		if i+1 < len(live) {
			next = live[i+1].key
		}
		// Child i covers keys [e.key, next); the first child also covers
		// everything below its router.
		covLo := e.key
		if i == 0 {
			covLo = math.MinInt64
		}
		if covLo > hi || next <= lo {
			continue
		}
		if err := t.collect(e.child(), level-1, v, lo, hi, acct, out); err != nil {
			return err
		}
	}
	return nil
}
