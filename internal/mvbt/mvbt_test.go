package mvbt

import (
	"math/rand"
	"sort"
	"testing"

	"tartree/internal/pagestore"
)

func newTestTree(t *testing.T, pageSize int) *Tree {
	t.Helper()
	buf := pagestore.NewBuffer(pagestore.NewMemFile(pageSize), 128)
	tr, err := New(buf)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTooSmall(t *testing.T) {
	buf := pagestore.NewBuffer(pagestore.NewMemFile(64), 4)
	if _, err := New(buf); err == nil {
		t.Fatal("expected error")
	}
}

func TestInsertGetCurrent(t *testing.T) {
	tr := newTestTree(t, 1024)
	if err := tr.Insert(10, 5, Value{1, 2}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get(10, 5)
	if err != nil || !ok || v != (Value{1, 2}) {
		t.Fatalf("get = %v %v %v", v, ok, err)
	}
	// Before its insertion version, the key does not exist.
	if _, ok, _ := tr.Get(9, 5); ok {
		t.Fatal("key visible before insertion version")
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestVersionOrderEnforced(t *testing.T) {
	tr := newTestTree(t, 1024)
	if err := tr.Insert(10, 1, Value{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(5, 2, Value{}); err == nil {
		t.Fatal("expected version-order error")
	}
	if _, err := tr.Delete(5, 1); err == nil {
		t.Fatal("expected version-order error for delete")
	}
}

func TestDoubleInsertRejected(t *testing.T) {
	tr := newTestTree(t, 1024)
	tr.Insert(1, 7, Value{1, 0})
	if err := tr.Insert(2, 7, Value{2, 0}); err == nil {
		t.Fatal("expected duplicate-key error")
	}
}

func TestDeleteAndHistory(t *testing.T) {
	tr := newTestTree(t, 1024)
	tr.Insert(1, 7, Value{70, 0})
	ok, err := tr.Delete(5, 7)
	if err != nil || !ok {
		t.Fatalf("delete = %v %v", ok, err)
	}
	// Alive in [1, 5), dead at 5 and later.
	if _, ok, _ := tr.Get(4, 7); !ok {
		t.Error("key should be alive at version 4")
	}
	if _, ok, _ := tr.Get(5, 7); ok {
		t.Error("key should be dead at version 5")
	}
	if tr.Len() != 0 {
		t.Errorf("len = %d", tr.Len())
	}
	// Deleting again is a no-op.
	ok, err = tr.Delete(6, 7)
	if err != nil || ok {
		t.Fatalf("second delete = %v %v", ok, err)
	}
	// Reinsert after deletion.
	if err := tr.Insert(8, 7, Value{71, 0}); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := tr.Get(9, 7); !ok || v != (Value{71, 0}) {
		t.Error("reinserted key wrong")
	}
	if v, ok, _ := tr.Get(3, 7); !ok || v != (Value{70, 0}) {
		t.Error("historical value lost after reinsert")
	}
}

func TestUpdate(t *testing.T) {
	tr := newTestTree(t, 1024)
	tr.Insert(1, 3, Value{1, 0})
	if err := tr.Update(2, 3, Value{2, 0}); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := tr.Get(2, 3); v != (Value{2, 0}) {
		t.Error("update not visible")
	}
	if v, _, _ := tr.Get(1, 3); v != (Value{1, 0}) {
		t.Error("old version overwritten")
	}
	if err := tr.Update(3, 99, Value{}); err == nil {
		t.Error("update of missing key should fail")
	}
}

func TestGrowthCausesRootSplits(t *testing.T) {
	tr := newTestTree(t, 512) // small pages force splits
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Insert(int64(i), int64(i*7%n), Value{int64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.NumRoots() < 2 {
		t.Error("expected root version splits")
	}
	// All keys visible at the final version.
	for i := 0; i < n; i++ {
		k := int64(i * 7 % n)
		if _, ok, err := tr.Get(int64(n), k); !ok || err != nil {
			t.Fatalf("key %d missing at current version: %v", k, err)
		}
	}
	// At version n/2, exactly the first half of the inserts are visible.
	cnt := 0
	err := tr.ScanAt(int64(n/2), -1<<62, 1<<62, func(k int64, v Value) bool {
		cnt++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if cnt != n/2+1 { // inserts at versions 0..n/2 inclusive
		t.Errorf("scan at v=%d found %d keys, want %d", n/2, cnt, n/2+1)
	}
}

func TestScanOrdering(t *testing.T) {
	tr := newTestTree(t, 512)
	r := rand.New(rand.NewSource(5))
	keys := r.Perm(800)
	for i, k := range keys {
		tr.Insert(int64(i), int64(k), Value{int64(k), 0})
	}
	var got []int64
	tr.ScanAt(int64(len(keys)), 100, 300, func(k int64, v Value) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 201 {
		t.Fatalf("scan len = %d, want 201", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("scan out of order")
	}
	if got[0] != 100 || got[len(got)-1] != 300 {
		t.Fatalf("scan bounds = %d..%d", got[0], got[len(got)-1])
	}
	// Early termination.
	cnt := 0
	tr.ScanAt(int64(len(keys)), 0, 799, func(k int64, v Value) bool { cnt++; return cnt < 10 })
	if cnt != 10 {
		t.Errorf("early stop visited %d", cnt)
	}
}

// snapshot is a full copy of the live map at a version.
type snapshot struct {
	v int64
	m map[int64]Value
}

// TestTimeTravelModel drives random inserts/deletes at increasing versions
// and verifies Get and ScanAt against per-version map snapshots. This is
// the main correctness check for the MVBT's version-split/key-split/merge
// machinery.
func TestTimeTravelModel(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	tr := newTestTree(t, 512) // capacity 6: aggressive restructuring
	cur := map[int64]Value{}
	var snaps []snapshot
	v := int64(0)
	for step := 0; step < 6000; step++ {
		if r.Intn(3) == 0 {
			// Advance time and snapshot the previous version's state.
			m := make(map[int64]Value, len(cur))
			for k, val := range cur {
				m[k] = val
			}
			snaps = append(snaps, snapshot{v: v, m: m})
			v += int64(1 + r.Intn(3))
		}
		k := int64(r.Intn(300))
		if _, exists := cur[k]; exists && r.Intn(2) == 0 {
			ok, err := tr.Delete(v, k)
			if err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			}
			if !ok {
				t.Fatalf("step %d: delete(%d) found nothing, model has it", step, k)
			}
			delete(cur, k)
		} else if !exists {
			val := Value{r.Int63n(1000), r.Int63n(1000)}
			if err := tr.Insert(v, k, val); err != nil {
				t.Fatalf("step %d: insert: %v", step, err)
			}
			cur[k] = val
		}
	}
	if tr.Len() != len(cur) {
		t.Fatalf("len = %d, model = %d", tr.Len(), len(cur))
	}
	// Spot-check every snapshot: point queries plus a full ordered scan.
	for si, s := range snaps {
		if si%7 == 0 { // full scan on a subset of snapshots to bound runtime
			found := map[int64]Value{}
			var order []int64
			err := tr.ScanAt(s.v, -1<<62, 1<<62, func(k int64, val Value) bool {
				found[k] = val
				order = append(order, k)
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(found) != len(s.m) {
				t.Fatalf("snapshot v=%d: scan %d keys, model %d", s.v, len(found), len(s.m))
			}
			for k, want := range s.m {
				if found[k] != want {
					t.Fatalf("snapshot v=%d key %d: got %v want %v", s.v, k, found[k], want)
				}
			}
			if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
				t.Fatalf("snapshot v=%d: scan out of order", s.v)
			}
		}
		// Point queries on random keys.
		for i := 0; i < 30; i++ {
			k := int64(r.Intn(300))
			got, ok, err := tr.Get(s.v, k)
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK := s.m[k]
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("snapshot v=%d key %d: got %v/%v want %v/%v", s.v, k, got, ok, want, wantOK)
			}
		}
	}
}

// TestMassDeleteUnderflow drives the merge path hard: fill, then delete
// almost everything, then verify history is intact.
func TestMassDeleteUnderflow(t *testing.T) {
	tr := newTestTree(t, 512)
	const n = 1000
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), int64(i), Value{int64(i), 0})
	}
	for i := 0; i < n; i++ {
		if i%17 == 0 {
			continue // keep a few
		}
		ok, err := tr.Delete(int64(n+i), int64(i))
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	// Current state: only multiples of 17 remain.
	cnt := 0
	tr.ScanAt(int64(2*n), 0, n, func(k int64, v Value) bool {
		if k%17 != 0 {
			t.Fatalf("unexpected survivor %d", k)
		}
		cnt++
		return true
	})
	want := 0
	for i := 0; i < n; i += 17 {
		want++
	}
	if cnt != want {
		t.Fatalf("survivors = %d, want %d", cnt, want)
	}
	// Full history at version n-1 (before any deletes): all present.
	cnt = 0
	tr.ScanAt(int64(n-1), 0, n, func(k int64, v Value) bool { cnt++; return true })
	if cnt != n {
		t.Fatalf("history scan = %d, want %d", cnt, n)
	}
}

// TestAppendOnlyWorkload mirrors how the TAR-tree uses the MVBT as a TIA:
// monotonically increasing keys, never deleted, queried with key ranges at
// the current version.
func TestAppendOnlyWorkload(t *testing.T) {
	tr := newTestTree(t, 1024)
	const n = 5000
	for i := 0; i < n; i++ {
		ts := int64(i * 100)
		if err := tr.Insert(ts, ts, Value{ts + 100, int64(i % 7)}); err != nil {
			t.Fatal(err)
		}
	}
	sum := int64(0)
	cnt := 0
	tr.ScanAt(tr.Now(), 1000, 250000, func(k int64, v Value) bool {
		sum += v[1]
		cnt++
		return true
	})
	wantCnt := 0
	wantSum := int64(0)
	for i := 0; i < n; i++ {
		ts := int64(i * 100)
		if ts >= 1000 && ts <= 250000 {
			wantCnt++
			wantSum += int64(i % 7)
		}
	}
	if cnt != wantCnt || sum != wantSum {
		t.Fatalf("range agg = %d/%d, want %d/%d", cnt, sum, wantCnt, wantSum)
	}
}

func BenchmarkInsert(b *testing.B) {
	buf := pagestore.NewBuffer(pagestore.NewMemFile(1024), 256)
	tr, _ := New(buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(int64(i), int64(i), Value{int64(i), 1})
	}
}

func BenchmarkGetCurrent(b *testing.B) {
	buf := pagestore.NewBuffer(pagestore.NewMemFile(1024), 256)
	tr, _ := New(buf)
	for i := 0; i < 50000; i++ {
		tr.Insert(int64(i), int64(i), Value{int64(i), 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(50000, int64(i%50000))
	}
}

func TestQueryBeforeFirstVersion(t *testing.T) {
	tr := newTestTree(t, 1024)
	tr.Insert(100, 1, Value{1, 0})
	if _, ok, err := tr.Get(-1000, 1); ok || err != nil {
		t.Fatalf("get before first version = %v %v", ok, err)
	}
	n := 0
	tr.ScanAt(-1000, -1<<62, 1<<62, func(k int64, v Value) bool { n++; return true })
	if n != 0 {
		t.Fatalf("scan before first version found %d", n)
	}
}

func TestSameVersionBatch(t *testing.T) {
	// Many operations at one version, including delete+reinsert cycles.
	tr := newTestTree(t, 512)
	const v = 7
	for k := int64(0); k < 300; k++ {
		if err := tr.Insert(v, k, Value{k, 0}); err != nil {
			t.Fatal(err)
		}
	}
	for k := int64(0); k < 300; k += 2 {
		if ok, err := tr.Delete(v, k); !ok || err != nil {
			t.Fatalf("delete %d: %v %v", k, ok, err)
		}
	}
	for k := int64(0); k < 300; k += 4 {
		if err := tr.Insert(v, k, Value{k, 9}); err != nil {
			t.Fatal(err)
		}
	}
	// At version v: odd keys original, multiples of 4 reinserted, the
	// rest of the evens dead.
	for k := int64(0); k < 300; k++ {
		val, ok, err := tr.Get(v, k)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case k%4 == 0:
			if !ok || val[1] != 9 {
				t.Fatalf("key %d = %v %v, want reinserted", k, val, ok)
			}
		case k%2 == 0:
			if ok {
				t.Fatalf("key %d should be dead", k)
			}
		default:
			if !ok || val[1] != 0 {
				t.Fatalf("key %d = %v %v, want original", k, val, ok)
			}
		}
	}
	// Nothing visible before v.
	cnt := 0
	tr.ScanAt(v-1, 0, 300, func(k int64, val Value) bool { cnt++; return true })
	if cnt != 0 {
		t.Fatalf("%d keys visible before v", cnt)
	}
}
