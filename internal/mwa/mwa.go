// Package mwa implements the minimum weight adjustment (MWA) of Section
// 7.1: given the top-k results of a kNNTA query, find the nearest values of
// α0 (one below, one above the current weight) at which the top-k set
// changes.
//
// Two algorithms are provided, matching the paper's experiment in Section
// 8.3: Enumerating — the straightforward approach that continues the
// best-first search to exhaustion and checks every entry against every
// top-k POI with only dominance pruning — and Pruning, which interchanges
// only the POIs on two skylines: the reversed skyline of the top-k set and
// the skyline of the lower-ranked POIs (computed with BBS over the
// TAR-tree).
package mwa

import (
	"tartree/internal/core"
	"tartree/internal/skyline"
)

// Adjustment is the minimum weight adjustment for α0: the current top-k set
// changes as soon as α0 drops below Lower or exceeds Upper.
type Adjustment struct {
	Lower    float64
	HasLower bool
	Upper    float64
	HasUpper bool
}

// Gamma returns the swap boundary γ(i, j) for a top-k POI i and a lower
// ranked POI j, where δt = si,t − sj,t. The boundary exists only when the
// deltas have opposite signs (otherwise one POI dominates the other and no
// weight exchanges them); the second result reports existence, the third
// whether the boundary lies above the current weight (δ0 > 0).
func Gamma(d0, d1 float64) (gamma float64, ok, upper bool) {
	if d0*d1 >= 0 {
		return 0, false, false
	}
	return d1 / (d1 - d0), true, d0 > 0
}

// fold accumulates a swap boundary into the adjustment: the MWA keeps the
// largest boundary below the current weight and the smallest above it.
func (a *Adjustment) fold(gamma float64, upper bool) {
	if upper {
		if !a.HasUpper || gamma < a.Upper {
			a.Upper, a.HasUpper = gamma, true
		}
	} else {
		if !a.HasLower || gamma > a.Lower {
			a.Lower, a.HasLower = gamma, true
		}
	}
}

// foldPair folds the boundary of the pair (top-k point i, lower point j).
func (a *Adjustment) foldPair(i, j skyline.Point) {
	if g, ok, upper := Gamma(i.S0-j.S0, i.S1-j.S1); ok {
		a.fold(g, upper)
	}
}

// FromPoints computes the MWA from explicit score components: topk are the
// current results, lower the remaining POIs. It is the reference
// implementation used by the paper's Table 3 example and by tests.
func FromPoints(topk, lower []skyline.Point) Adjustment {
	var a Adjustment
	for _, i := range topk {
		for _, j := range lower {
			a.foldPair(i, j)
		}
	}
	return a
}

func toPoints(rs []core.Result) []skyline.Point {
	pts := make([]skyline.Point, len(rs))
	for i, r := range rs {
		pts[i] = skyline.Point{ID: r.POI.ID, S0: r.S0, S1: r.S1}
	}
	return pts
}

// Enumerating computes the top-k and the MWA with the paper's
// straightforward approach: for each of the top-k POIs p, the best-first
// search is continued until the queue is empty, skipping only the entries
// dominated by p. This enumerates each top-k result against the lower
// ranked POIs and has very weak pruning power, which is exactly why the
// paper proposes the skyline-based algorithm.
func Enumerating(t *core.Tree, q core.Query) ([]core.Result, Adjustment, core.QueryStats, error) {
	var stats core.QueryStats
	cache := make(core.AggCache)
	s, err := t.NewSearch(q, &stats, cache)
	if err != nil {
		return nil, Adjustment{}, stats, err
	}
	topk := make([]core.Result, 0, q.K)
	for len(topk) < q.K {
		r, err := s.Next()
		if err != nil {
			return nil, Adjustment{}, stats, err
		}
		if r == nil {
			break
		}
		topk = append(topk, *r)
	}
	inTopK := make(map[int64]bool, len(topk))
	for _, r := range topk {
		inTopK[r.POI.ID] = true
	}
	gmax := s.Scorer().Gmax()
	var adj Adjustment
	for _, p := range toPoints(topk) {
		// One full BFS continuation per top-k POI, pruned only by p's
		// dominance.
		pass, err := t.NewSearchWith(q, core.SearchOptions{Stats: &stats, Cache: cache, Gmax: &gmax})
		if err != nil {
			return nil, Adjustment{}, stats, err
		}
		for {
			el := pass.Pop()
			if el == nil {
				break
			}
			if p.S0 <= el.S0 && p.S1 <= el.S1 {
				continue // p dominates the entry: nothing below can swap with p
			}
			if el.IsPOI() {
				r := pass.Result(el)
				if inTopK[r.POI.ID] {
					continue
				}
				adj.foldPair(p, skyline.Point{ID: r.POI.ID, S0: el.S0, S1: el.S1})
				continue
			}
			if err := pass.Expand(el); err != nil {
				return nil, Adjustment{}, stats, err
			}
		}
	}
	return topk, adj, stats, nil
}

// Pruning computes the top-k and the MWA with the skyline approach of
// Section 7.1: (i) the reversed skyline of the top-k POIs, (ii) the BBS
// skyline of the lower-ranked POIs over the TAR-tree, (iii) the boundaries
// interchanging POIs across the two skylines.
func Pruning(t *core.Tree, q core.Query) ([]core.Result, Adjustment, core.QueryStats, error) {
	var stats core.QueryStats
	cache := make(core.AggCache)
	s, err := t.NewSearch(q, &stats, cache)
	if err != nil {
		return nil, Adjustment{}, stats, err
	}
	topk := make([]core.Result, 0, q.K)
	for len(topk) < q.K {
		r, err := s.Next()
		if err != nil {
			return nil, Adjustment{}, stats, err
		}
		if r == nil {
			break
		}
		topk = append(topk, *r)
	}
	// (i) Reversed skyline of the top-k (in memory; no node accesses).
	tops := skyline.OfReversed(toPoints(topk))
	// (ii) Skyline of the lower-ranked POIs via BBS. A fresh search shares
	// the scorer's aggregate cache, so TIAs already read are not re-read.
	exclude := make(map[int64]bool, len(topk))
	for _, r := range topk {
		exclude[r.POI.ID] = true
	}
	gmax := s.Scorer().Gmax()
	bbs, err := t.NewSearchWith(q, core.SearchOptions{Stats: &stats, Cache: cache, Gmax: &gmax})
	if err != nil {
		return nil, Adjustment{}, stats, err
	}
	lower, err := skyline.BBS(bbs, exclude)
	if err != nil {
		return nil, Adjustment{}, stats, err
	}
	// (iii) Boundaries across the two skylines.
	adj := FromPoints(tops, lower)
	return topk, adj, stats, nil
}
