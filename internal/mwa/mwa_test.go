package mwa

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"tartree/internal/core"
	"tartree/internal/geo"
	"tartree/internal/skyline"
	"tartree/internal/tia"
)

// TestPaperTable3Example reproduces the worked example of Section 7.1:
// with the ranking list of Table 3, α0 = α1 = 0.5 and k = 2, the MWA is
// α0 < 1/3 or α0 > 20/29.
func TestPaperTable3Example(t *testing.T) {
	topk := []skyline.Point{
		{ID: 1, S0: 0.25, S1: 0.10}, // p1
		{ID: 2, S0: 0.10, S1: 0.30}, // p2
	}
	lower := []skyline.Point{
		{ID: 3, S0: 0.20, S1: 0.35},  // p3
		{ID: 4, S0: 0.35, S1: 0.25},  // p4
		{ID: 5, S0: 0.025, S1: 0.60}, // p5
		{ID: 6, S0: 0.60, S1: 0.05},  // p6
	}
	adj := FromPoints(topk, lower)
	if !adj.HasLower || math.Abs(adj.Lower-1.0/3) > 1e-12 {
		t.Errorf("Γl = %v (%v), want 1/3", adj.Lower, adj.HasLower)
	}
	if !adj.HasUpper || math.Abs(adj.Upper-20.0/29) > 1e-12 {
		t.Errorf("Γu = %v (%v), want 20/29", adj.Upper, adj.HasUpper)
	}
	// Individual boundaries quoted in the paper:
	// f'(p1) > f'(p3) needs α0 > 5/6.
	if g, ok, upper := Gamma(0.25-0.20, 0.10-0.35); !ok || !upper || math.Abs(g-5.0/6) > 1e-12 {
		t.Errorf("γ(p1,p3) = %v %v %v, want 5/6 upper", g, ok, upper)
	}
	// f'(p1) > f'(p6) needs α0 < 1/8.
	if g, ok, upper := Gamma(0.25-0.60, 0.10-0.05); !ok || upper || math.Abs(g-1.0/8) > 1e-12 {
		t.Errorf("γ(p1,p6) = %v %v %v, want 1/8 lower", g, ok, upper)
	}
	// f'(p2) > f'(p4) needs α0 < 1/6; f'(p2) > f'(p5) needs α0 > 4/5;
	// f'(p2) > f'(p6) needs α0 < 1/3.
	if g, _, _ := Gamma(0.10-0.35, 0.30-0.25); math.Abs(g-1.0/6) > 1e-12 {
		t.Errorf("γ(p2,p4) = %v, want 1/6", g)
	}
	if g, _, _ := Gamma(0.10-0.025, 0.30-0.60); math.Abs(g-4.0/5) > 1e-12 {
		t.Errorf("γ(p2,p5) = %v, want 4/5", g)
	}
	if g, _, _ := Gamma(0.10-0.60, 0.30-0.05); math.Abs(g-1.0/3) > 1e-12 {
		t.Errorf("γ(p2,p6) = %v, want 1/3", g)
	}
}

func TestGammaDominance(t *testing.T) {
	// Same signs: one POI dominates the other; no boundary.
	if _, ok, _ := Gamma(0.1, 0.2); ok {
		t.Error("dominating pair produced a boundary")
	}
	if _, ok, _ := Gamma(-0.1, -0.2); ok {
		t.Error("dominated pair produced a boundary")
	}
	if _, ok, _ := Gamma(0, 0.5); ok {
		t.Error("zero delta produced a boundary")
	}
}

func TestSkylineHelpers(t *testing.T) {
	pts := []skyline.Point{
		{ID: 1, S0: 0.1, S1: 0.9},
		{ID: 2, S0: 0.5, S1: 0.5},
		{ID: 3, S0: 0.9, S1: 0.1},
		{ID: 4, S0: 0.6, S1: 0.6}, // dominated by 2
	}
	min := skyline.Of(pts)
	if len(min) != 3 {
		t.Errorf("min skyline = %v", min)
	}
	for _, p := range min {
		if p.ID == 4 {
			t.Error("dominated point on skyline")
		}
	}
	max := skyline.OfReversed(pts)
	ids := map[int64]bool{}
	for _, p := range max {
		ids[p.ID] = true
	}
	// Under reversed dominance, 4 dominates 2.
	if ids[2] || !ids[4] || !ids[1] || !ids[3] {
		t.Errorf("reversed skyline = %v", max)
	}
}

func buildTree(t testing.TB, n int, seed int64) (*core.Tree, *rand.Rand) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tr, err := core.NewTree(core.Options{
		World:       geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{100, 100}},
		Grouping:    core.TAR3D,
		EpochStart:  0,
		EpochLength: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		var hist []tia.Record
		for ep := int64(0); ep < 20; ep++ {
			if r.Intn(3) == 0 {
				agg := int64(1 + int(math.Pow(r.Float64(), -0.8)))
				if agg > 200 {
					agg = 200
				}
				hist = append(hist, tia.Record{Ts: ep * 10, Te: ep*10 + 10, Agg: agg})
			}
		}
		if err := tr.InsertPOI(core.POI{ID: int64(i), X: r.Float64() * 100, Y: r.Float64() * 100}, hist); err != nil {
			t.Fatal(err)
		}
	}
	return tr, r
}

// bruteForceMWA ranks all POIs directly and computes the MWA by checking
// every (top-k, lower) pair.
func bruteForceMWA(t *testing.T, tr *core.Tree, q core.Query) ([]core.Result, Adjustment) {
	t.Helper()
	var all []core.Result
	tr.POIs(func(p core.POI, total int64) bool {
		r, err := tr.ScorePOI(q, p.ID)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, r)
		return true
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score < all[j].Score
		}
		return all[i].POI.ID < all[j].POI.ID
	})
	k := q.K
	if k > len(all) {
		k = len(all)
	}
	topk := all[:k]
	var tops, lows []skyline.Point
	for _, r := range topk {
		tops = append(tops, skyline.Point{ID: r.POI.ID, S0: r.S0, S1: r.S1})
	}
	for _, r := range all[k:] {
		lows = append(lows, skyline.Point{ID: r.POI.ID, S0: r.S0, S1: r.S1})
	}
	return topk, FromPoints(tops, lows)
}

// TestAlgorithmsAgree: Enumerating, Pruning and brute force compute the
// same MWA for random trees and queries.
func TestAlgorithmsAgree(t *testing.T) {
	tr, r := buildTree(t, 500, 21)
	for trial := 0; trial < 20; trial++ {
		q := core.Query{
			X: r.Float64() * 100, Y: r.Float64() * 100,
			Iq:     tia.Interval{Start: int64(r.Intn(100)), End: int64(100 + r.Intn(100))},
			K:      1 + r.Intn(10),
			Alpha0: 0.1 + 0.8*r.Float64(),
		}
		wantTop, wantAdj := bruteForceMWA(t, tr, q)
		topE, adjE, _, err := Enumerating(tr, q)
		if err != nil {
			t.Fatal(err)
		}
		topP, adjP, _, err := Pruning(tr, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(topE) != len(wantTop) || len(topP) != len(wantTop) {
			t.Fatalf("trial %d: top-k sizes differ", trial)
		}
		for i := range wantTop {
			if math.Abs(topE[i].Score-wantTop[i].Score) > 1e-9 ||
				math.Abs(topP[i].Score-wantTop[i].Score) > 1e-9 {
				t.Fatalf("trial %d: top-k scores differ at %d", trial, i)
			}
		}
		for name, adj := range map[string]Adjustment{"enumerating": adjE, "pruning": adjP} {
			if adj.HasLower != wantAdj.HasLower || adj.HasUpper != wantAdj.HasUpper {
				t.Fatalf("trial %d %s: presence %+v, want %+v (q=%+v)", trial, name, adj, wantAdj, q)
			}
			if adj.HasLower && math.Abs(adj.Lower-wantAdj.Lower) > 1e-9 {
				t.Fatalf("trial %d %s: Γl = %v, want %v", trial, name, adj.Lower, wantAdj.Lower)
			}
			if adj.HasUpper && math.Abs(adj.Upper-wantAdj.Upper) > 1e-9 {
				t.Fatalf("trial %d %s: Γu = %v, want %v", trial, name, adj.Upper, wantAdj.Upper)
			}
		}
	}
}

// TestAdjustmentChangesTopK verifies the semantic promise of the MWA: at a
// weight just past the boundary, the top-k set changes; just inside it, the
// set is unchanged.
func TestAdjustmentChangesTopK(t *testing.T) {
	tr, r := buildTree(t, 400, 33)
	checked := 0
	for trial := 0; trial < 30 && checked < 10; trial++ {
		q := core.Query{
			X: r.Float64() * 100, Y: r.Float64() * 100,
			Iq:     tia.Interval{Start: 0, End: 200},
			K:      5,
			Alpha0: 0.2 + 0.6*r.Float64(),
		}
		top, adj, _, err := Pruning(tr, q)
		if err != nil {
			t.Fatal(err)
		}
		ids := func(rs []core.Result) map[int64]bool {
			m := map[int64]bool{}
			for _, r := range rs {
				m[r.POI.ID] = true
			}
			return m
		}
		setEq := func(a, b map[int64]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		}
		base := ids(top)
		const eps = 1e-6
		if adj.HasUpper && adj.Upper+eps < 1 {
			checked++
			q2 := q
			q2.Alpha0 = adj.Upper + eps
			after, _, err := tr.Query(q2)
			if err != nil {
				t.Fatal(err)
			}
			if setEq(base, ids(after)) {
				t.Errorf("top-k unchanged past Γu=%v (α0=%v)", adj.Upper, q.Alpha0)
			}
			// Just inside the boundary, the set must be unchanged.
			q3 := q
			q3.Alpha0 = adj.Upper - eps
			same, _, err := tr.Query(q3)
			if err != nil {
				t.Fatal(err)
			}
			if !setEq(base, ids(same)) {
				t.Errorf("top-k changed before Γu=%v (α0=%v)", adj.Upper, q.Alpha0)
			}
		}
		if adj.HasLower && adj.Lower-eps > 0 {
			checked++
			q2 := q
			q2.Alpha0 = adj.Lower - eps
			after, _, err := tr.Query(q2)
			if err != nil {
				t.Fatal(err)
			}
			if setEq(base, ids(after)) {
				t.Errorf("top-k unchanged past Γl=%v (α0=%v)", adj.Lower, q.Alpha0)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no boundaries exercised")
	}
}

// TestPruningCheaper asserts the paper's performance claim: the pruning
// algorithm accesses far fewer nodes than enumerating.
func TestPruningCheaper(t *testing.T) {
	tr, r := buildTree(t, 2000, 55)
	var enumTotal, pruneTotal int64
	for trial := 0; trial < 10; trial++ {
		q := core.Query{
			X: r.Float64() * 100, Y: r.Float64() * 100,
			Iq:     tia.Interval{Start: 0, End: 200},
			K:      10,
			Alpha0: 0.3,
		}
		_, _, se, err := Enumerating(tr, q)
		if err != nil {
			t.Fatal(err)
		}
		_, _, sp, err := Pruning(tr, q)
		if err != nil {
			t.Fatal(err)
		}
		enumTotal += int64(se.RTreeAccesses())
		pruneTotal += int64(sp.RTreeAccesses())
	}
	t.Logf("node accesses: enumerating=%d pruning=%d", enumTotal, pruneTotal)
	if pruneTotal*2 >= enumTotal {
		t.Errorf("pruning (%d) should be far cheaper than enumerating (%d)", pruneTotal, enumTotal)
	}
}

func TestNoLowerRankedPOIs(t *testing.T) {
	tr, _ := buildTree(t, 5, 1)
	q := core.Query{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 200}, K: 10, Alpha0: 0.5}
	_, adj, _, err := Pruning(tr, q)
	if err != nil {
		t.Fatal(err)
	}
	if adj.HasLower || adj.HasUpper {
		t.Errorf("adjustment with no lower-ranked POIs: %+v", adj)
	}
}
