package obs

import (
	"fmt"
	"strings"
	"testing"
)

func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		"plain":            "plain",
		`back\slash`:       `back\\slash`,
		`quo"te`:           `quo\"te`,
		"new\nline":        `new\nline`,
		"query:p99<50ms":   "query:p99<50ms", // '<' is legal, untouched
		"\\\"\n":           `\\\"\n`,
		"":                 "",
		"ünïcode ≠ ascii…": "ünïcode ≠ ascii…",
	}
	for in, want := range cases {
		if got := escapeLabelValue(in); got != want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseLabels(t *testing.T) {
	pairs, ok := parseLabels(`a="b",c="d,e",f="g=h"`)
	if !ok {
		t.Fatal("well-formed labels did not parse")
	}
	want := [][2]string{{"a", "b"}, {"c", "d,e"}, {"f", "g=h"}}
	if len(pairs) != len(want) {
		t.Fatalf("got %v", pairs)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Errorf("pair %d = %v, want %v", i, pairs[i], want[i])
		}
	}

	// Escapes inside values are honored; unknown escapes keep both bytes.
	pairs, ok = parseLabels(`p="a\\b",q="say \"hi\"",r="l1\nl2",s="\d"`)
	if !ok {
		t.Fatal("escaped labels did not parse")
	}
	for i, want := range []string{`a\b`, `say "hi"`, "l1\nl2", `\d`} {
		if pairs[i][1] != want {
			t.Errorf("value %d = %q, want %q", i, pairs[i][1], want)
		}
	}

	for _, bad := range []string{`a=`, `a="b`, `="b"`, `a="b"c="d"`, `a"b"`, `a="b",`} {
		if _, ok := parseLabels(bad); ok {
			t.Errorf("parseLabels(%q) accepted malformed input", bad)
		}
	}
}

func TestSanitizeLabels(t *testing.T) {
	// Well-formed input is byte-identical on output: existing exposition
	// strings (SLO labels with '<', le="+Inf") must not change.
	for _, s := range []string{
		``,
		`a="b"`,
		`slo="query:p99<50ms",outcome="good"`,
		`le="+Inf"`,
		`p="a\\b",q="say \"hi\""`,
	} {
		if got := sanitizeLabels(s); got != s {
			t.Errorf("sanitizeLabels(%q) = %q, want unchanged", s, got)
		}
	}
	// Raw interpolation of a value holding a newline or quote-free
	// backslash gets re-escaped.
	if got, want := sanitizeLabels("msg=\"l1\nl2\""), `msg="l1\nl2"`; got != want {
		t.Errorf("sanitizeLabels newline = %q, want %q", got, want)
	}
	// Malformed input falls back to verbatim.
	if got := sanitizeLabels(`broken`); got != "broken" {
		t.Errorf("malformed fallback = %q", got)
	}
}

// TestLabelEscapingRoundTrip registers metrics whose label values carry
// every character the exposition format escapes, renders the registry, and
// parses the lines back: the recovered values must equal the originals and
// no line may contain a raw quote or newline inside a value.
func TestLabelEscapingRoundTrip(t *testing.T) {
	raw := map[string]string{
		"path":  `C:\tmp\new`,
		"msg":   "line1\nline2",
		"quote": `say "hi"`,
		"mix":   "a\\\"b\nc",
		"slo":   "query:p99<50ms",
	}
	r := NewRegistry()
	for k, v := range raw {
		// Callers build labeled names with %q, which escapes Go-style —
		// compatible with the exposition escapes for \, " and newline.
		r.Counter(fmt.Sprintf("rt_total{label=%q,which=%q}", v, k)).Add(1)
	}

	var buf strings.Builder
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got := make(map[string]string)
	for _, ln := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(ln, "rt_total{") {
			continue
		}
		open := strings.IndexByte(ln, '{')
		close := strings.LastIndexByte(ln, '}')
		if open < 0 || close < open {
			t.Fatalf("unparseable line %q", ln)
		}
		pairs, ok := parseLabels(ln[open+1 : close])
		if !ok {
			t.Fatalf("exposition labels do not parse: %q", ln)
		}
		var label, which string
		for _, kv := range pairs {
			switch kv[0] {
			case "label":
				label = kv[1]
			case "which":
				which = kv[1]
			}
		}
		got[which] = label
	}
	if len(got) != len(raw) {
		t.Fatalf("round-tripped %d series, want %d: %v", len(got), len(raw), got)
	}
	for k, want := range raw {
		if got[k] != want {
			t.Errorf("label %q round-tripped to %q, want %q", k, got[k], want)
		}
	}
	// No physical exposition line may span multiple lines or carry an
	// unescaped quote inside a value.
	for _, ln := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(ln, "rt_total") && !strings.HasSuffix(ln, " 1") {
			t.Errorf("line broken by unescaped newline: %q", ln)
		}
	}
}
