// Package obs is the repo's lightweight, dependency-free observability
// layer: a named registry of atomic counters, gauges and fixed-bucket
// latency histograms, plus per-query traces (trace.go) and a page-traffic
// sink adapter (sink.go).
//
// The paper's evaluation (Section 8) is built on counting work — node
// accesses, TIA page I/O, buffer hits. This package unifies those counters
// with wall-clock latency so every performance claim can be measured the
// same way: in tests and benchmarks through Snapshot, in a running service
// through the Prometheus text dump of WriteTo (served by cmd/tarserve at
// /metrics).
//
// Metric names may carry Prometheus-style labels embedded in the name, e.g.
//
//	tartree_tia_probes_total{backend="btree"}
//
// Registry getters are idempotent: asking twice for the same name returns
// the same metric, so independent subsystems can share one registry without
// coordination. All metric operations are safe for concurrent use.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// LatencyBuckets is the default histogram bucket layout for query
// latencies: roughly exponential from 10µs to 2.5s.
var LatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
	0.1, 0.25, 0.5, 1, 2.5,
}

// Histogram is a fixed-bucket histogram with atomic bucket counts. Bounds
// are inclusive upper bounds; observations above the last bound land in an
// implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// NewHistogram returns a standalone histogram not attached to any registry
// (nil bounds select LatencyBuckets). Useful for one-shot distributions,
// e.g. the latency of a single benchmark batch.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	return newHistogram(bounds)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the finite bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a snapshot of the per-bucket counts (the last entry
// is the +Inf bucket).
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket holding the target rank. Observations in the +Inf
// bucket clamp to the largest finite bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	return bucketQuantile(h.bounds, h.BucketCounts(), q)
}

// bucketQuantile is the shared quantile estimator over (bounds, counts)
// pairs — used by live Histograms and by HistogramSnapshot values restored
// from JSON or produced by callback histograms.
func bucketQuantile(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		prev := float64(cum)
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(bounds) { // +Inf bucket
			if len(bounds) == 0 {
				return 0
			}
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// HistogramSnapshot is the JSON-friendly view of a histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1; last is +Inf
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
}

// Quantile estimates the q-quantile of a snapshot, with the same semantics
// as Histogram.Quantile.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	return bucketQuantile(s.Bounds, s.Counts, q)
}

// Snapshot returns the histogram's current state with p50/p95/p99
// estimates.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Bounds: h.Bounds(),
		Counts: h.BucketCounts(),
		Sum:    h.Sum(),
		Count:  h.Count(),
		P50:    h.Quantile(0.50),
		P95:    h.Quantile(0.95),
		P99:    h.Quantile(0.99),
	}
}

// metric is anything the registry can hold.
type metric interface{ metricType() string }

func (*Counter) metricType() string   { return "counter" }
func (*Gauge) metricType() string     { return "gauge" }
func (*Histogram) metricType() string { return "histogram" }

// counterFunc and gaugeFunc are callback metrics: their value is read at
// export time (expvar style), so existing counters — tia probe totals,
// factory page stats, runtime stats — can be published without rewiring.
type counterFunc func() int64

func (counterFunc) metricType() string { return "counter" }

type gaugeFunc func() float64

func (gaugeFunc) metricType() string { return "gauge" }

// histogramFunc is a callback histogram: its whole snapshot is produced at
// export time. The runtime-telemetry collector uses it to publish
// distributions the Go runtime maintains itself (GC pauses, scheduler
// latencies) without double bookkeeping.
type histogramFunc func() HistogramSnapshot

func (histogramFunc) metricType() string { return "histogram" }

// Registry is a named collection of metrics. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	order   []string
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// get returns the existing metric under name or registers the one built by
// mk. A name registered with a different metric type panics: that is a
// programming error, not a runtime condition.
func (r *Registry) get(name string, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter returns the counter registered under name, creating it if absent.
func (r *Registry) Counter(name string) *Counter {
	m := r.get(name, func() metric { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.metricType()))
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if absent.
func (r *Registry) Gauge(name string) *Gauge {
	m := r.get(name, func() metric { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.metricType()))
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds if absent (nil selects LatencyBuckets). Bounds of
// an existing histogram are kept.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	m := r.get(name, func() metric {
		if bounds == nil {
			bounds = LatencyBuckets
		}
		return newHistogram(bounds)
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.metricType()))
	}
	return h
}

// CounterFunc registers a callback counter whose value is read at export
// time. Re-registering the same name replaces the callback.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.metrics[name]; !ok {
		r.order = append(r.order, name)
	}
	r.metrics[name] = counterFunc(fn)
}

// GaugeFunc registers a callback gauge whose value is read at export time.
// Re-registering the same name replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.metrics[name]; !ok {
		r.order = append(r.order, name)
	}
	r.metrics[name] = gaugeFunc(fn)
}

// HistogramFunc registers a callback histogram whose snapshot is produced at
// export time. Re-registering the same name replaces the callback.
func (r *Registry) HistogramFunc(name string, fn func() HistogramSnapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.metrics[name]; !ok {
		r.order = append(r.order, name)
	}
	r.metrics[name] = histogramFunc(fn)
}

// snapshotMetrics copies the name→metric map under the lock so exports
// don't hold it while formatting.
func (r *Registry) snapshotMetrics() ([]string, map[string]metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	ms := make(map[string]metric, len(r.metrics))
	for k, v := range r.metrics {
		ms[k] = v
	}
	return names, ms
}

// splitName separates an embedded label set from the metric name:
// `foo{a="b"}` → `foo`, `a="b"`.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// escapeLabelValue escapes a raw label value for the text exposition
// format: backslash, double quote and newline must be written as \\, \"
// and \n or scrapers mis-parse the line.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// parseLabels splits an embedded label set `a="b",c="d"` into key/raw-value
// pairs, honoring backslash escapes inside quoted values (\\, \", \n; an
// unknown escape keeps both characters). ok is false when the string does
// not parse, in which case the caller should fall back to emitting it
// verbatim.
func parseLabels(labels string) (pairs [][2]string, ok bool) {
	s := labels
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, false
		}
		key := s[:eq]
		var val strings.Builder
		i := eq + 2
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte('\\')
					val.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, false
		}
		pairs = append(pairs, [2]string{key, val.String()})
		if i == len(s) {
			return pairs, true
		}
		if s[i] != ',' || i+1 == len(s) {
			return nil, false
		}
		s = s[i+1:]
	}
	return pairs, true
}

// sanitizeLabels re-renders an embedded label set with every value
// properly escaped, so raw interpolation by callers (values carrying
// quotes, backslashes or newlines) cannot corrupt the exposition. A label
// string that does not parse is returned unchanged.
func sanitizeLabels(labels string) string {
	if labels == "" {
		return ""
	}
	pairs, ok := parseLabels(labels)
	if !ok {
		return labels
	}
	var b strings.Builder
	b.Grow(len(labels))
	for i, kv := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[0])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[1]))
		b.WriteByte('"')
	}
	return b.String()
}

// joinLabels merges an embedded label set with one extra label.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	if extra == "" {
		return labels
	}
	return labels + "," + extra
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteTo renders the registry in the Prometheus text exposition format, in
// registration order. It implements io.WriterTo, so any test or benchmark
// can dump metrics with registry.WriteTo(os.Stderr).
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	names, ms := r.snapshotMetrics()
	var total int64
	seenType := make(map[string]bool)
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	line := func(base, labels string, v float64) error {
		if labels != "" {
			return emit("%s{%s} %s\n", base, sanitizeLabels(labels), formatValue(v))
		}
		return emit("%s %s\n", base, formatValue(v))
	}
	for _, name := range names {
		m := ms[name]
		base, labels := splitName(name)
		if !seenType[base] {
			seenType[base] = true
			if err := emit("# TYPE %s %s\n", base, m.metricType()); err != nil {
				return total, err
			}
		}
		var err error
		switch m := m.(type) {
		case *Counter:
			err = line(base, labels, float64(m.Value()))
		case *Gauge:
			err = line(base, labels, m.Value())
		case counterFunc:
			err = line(base, labels, float64(m()))
		case gaugeFunc:
			err = line(base, labels, m())
		case *Histogram:
			err = writeHistogramLines(line, base, labels, m.Bounds(), m.BucketCounts(), m.Sum(), m.Count())
		case histogramFunc:
			s := m()
			err = writeHistogramLines(line, base, labels, s.Bounds, s.Counts, s.Sum, s.Count)
		}
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// writeHistogramLines renders one histogram in the exposition format:
// cumulative le-labeled buckets, the +Inf bucket, sum and count. Bucket
// count slices are len(bounds)+1 (the extra entry is +Inf); shorter slices
// are tolerated and treated as zero-filled.
func writeHistogramLines(line func(base, labels string, v float64) error,
	base, labels string, bounds []float64, counts []int64, sum float64, count int64) error {
	var cum int64
	for i, b := range bounds {
		if i < len(counts) {
			cum += counts[i]
		}
		if err := line(base+"_bucket", joinLabels(labels, fmt.Sprintf("le=%q", formatValue(b))), float64(cum)); err != nil {
			return err
		}
	}
	if len(counts) > len(bounds) {
		cum += counts[len(bounds)]
	}
	if err := line(base+"_bucket", joinLabels(labels, `le="+Inf"`), float64(cum)); err != nil {
		return err
	}
	if err := line(base+"_sum", labels, sum); err != nil {
		return err
	}
	return line(base+"_count", labels, float64(count))
}

// Snapshot returns a machine-readable view of every metric: counters as
// int64, gauges as float64, histograms as HistogramSnapshot. The result
// marshals cleanly to JSON (cmd/tarbench writes it into BENCH_*.json).
func (r *Registry) Snapshot() map[string]any {
	names, ms := r.snapshotMetrics()
	out := make(map[string]any, len(names))
	for _, name := range names {
		switch m := ms[name].(type) {
		case *Counter:
			out[name] = m.Value()
		case *Gauge:
			out[name] = m.Value()
		case counterFunc:
			out[name] = m()
		case gaugeFunc:
			out[name] = m()
		case *Histogram:
			out[name] = m.Snapshot()
		case histogramFunc:
			out[name] = m()
		}
	}
	return out
}
