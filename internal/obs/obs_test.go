package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c_total") != c {
		t.Fatal("Counter not idempotent")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering gauge over counter")
		}
	}()
	r.Gauge("m")
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 5, 7, 9, 100} {
		h.Observe(v)
	}
	if h.Count() != 10 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-133.5) > 1e-9 {
		t.Fatalf("sum = %g", h.Sum())
	}
	p50 := h.Quantile(0.5)
	if p50 < 2 || p50 > 4 {
		t.Errorf("p50 = %g, want within (2, 4]", p50)
	}
	// +Inf observations clamp to the largest finite bound.
	if p99 := h.Quantile(0.99); p99 != 8 {
		t.Errorf("p99 = %g, want 8", p99)
	}
	if q := (&Histogram{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
}

func TestWriteToPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`probes_total{backend="btree"}`).Add(3)
	r.Counter(`probes_total{backend="mem"}`).Add(7)
	r.Gauge("temp").Set(1.25)
	h := r.Histogram("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	lh := r.Histogram(`op_seconds{method="probe"}`, []float64{1})
	lh.Observe(0.5)
	lh.Observe(2)
	r.CounterFunc("cb_total", func() int64 { return 42 })

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE probes_total counter",
		`probes_total{backend="btree"} 3`,
		`probes_total{backend="mem"} 7`,
		"# TYPE temp gauge",
		"temp 1.25",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55",
		"lat_seconds_count 3",
		// Labeled histograms must merge the label set into every series:
		// buckets get le= appended, _sum and _count keep the labels alone.
		"# TYPE op_seconds histogram",
		`op_seconds_bucket{method="probe",le="1"} 1`,
		`op_seconds_bucket{method="probe",le="+Inf"} 2`,
		`op_seconds_sum{method="probe"} 2.5`,
		`op_seconds_count{method="probe"} 2`,
		"cb_total 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteTo output missing %q:\n%s", want, out)
		}
	}
	// The TYPE line of a labeled family must be emitted once.
	if n := strings.Count(out, "# TYPE probes_total counter"); n != 1 {
		t.Errorf("TYPE line emitted %d times", n)
	}
}

func TestSnapshotMarshalsToJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	r.Gauge("b").Set(0.5)
	r.Histogram("h", []float64{1}).Observe(0.25)
	r.GaugeFunc("fn", func() float64 { return 9 })
	blob, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back["a_total"].(float64) != 2 || back["fn"].(float64) != 9 {
		t.Errorf("snapshot round-trip = %v", back)
	}
	if _, ok := back["h"].(map[string]any); !ok {
		t.Errorf("histogram snapshot missing: %v", back)
	}
}

// TestConcurrentWriters hammers one registry from many goroutines — the
// acceptance check for `go test -race ./internal/obs/...`.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared_total").Inc()
				r.Gauge("shared_gauge").Add(1)
				r.Histogram("shared_hist", nil).Observe(float64(i%7) * 1e-4)
				if i%100 == 0 {
					var b strings.Builder
					if _, err := r.WriteTo(&b); err != nil {
						t.Error(err)
						return
					}
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("shared_gauge").Value(); got != workers*perWorker {
		t.Errorf("gauge = %g, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared_hist", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}
