package obs

import (
	"math"
	"sync"
	"testing"
)

// TestQuantileEmpty pins the no-observations behavior: every quantile is 0.
func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%g) = %g, want 0", q, got)
		}
	}
	var s HistogramSnapshot
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("zero snapshot Quantile(0.5) = %g, want 0", got)
	}
}

// TestQuantileSingleBucket pins linear interpolation inside one bucket:
// with all mass in [0, 10], the q-quantile is 10q.
func TestQuantileSingleBucket(t *testing.T) {
	h := NewHistogram([]float64{10})
	for i := 0; i < 5; i++ {
		h.Observe(3)
	}
	cases := map[float64]float64{0: 0, 0.2: 2, 0.5: 5, 0.9: 9, 1: 10}
	for q, want := range cases {
		if got := h.Quantile(q); math.Abs(got-want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", q, got, want)
		}
	}
}

// TestQuantileInfBucket pins the +Inf clamp: observations above the last
// finite bound report the last finite bound, never +Inf or a panic.
func TestQuantileInfBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(100) // +Inf bucket
	h.Observe(200) // +Inf bucket
	for _, q := range []float64{0.9, 0.99, 1} {
		if got := h.Quantile(q); got != 2 {
			t.Errorf("Quantile(%g) = %g, want clamp to last finite bound 2", q, got)
		}
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %g, want lower edge of first bucket", got)
	}
	// Degenerate layout: no finite bounds at all, everything is +Inf.
	// There is no finite bound to clamp to, so the estimate is 0 rather
	// than a panic or +Inf.
	e := NewHistogram([]float64{})
	e.Observe(7)
	if got := e.Quantile(0.5); got != 0 {
		t.Errorf("no-bounds Quantile(0.5) = %g, want 0", got)
	}
	if got := e.Count(); got != 1 {
		t.Errorf("no-bounds Count = %d", got)
	}
}

// TestQuantileExtremes pins q=0 and q=1 on a multi-bucket layout: q=0 is
// the lower edge of the first occupied bucket, q=1 the upper bound of the
// last occupied one.
func TestQuantileExtremes(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	h.Observe(1.5) // bucket (1,2]
	h.Observe(3)   // bucket (2,4]
	h.Observe(3.5) // bucket (2,4]
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %g, want 1 (lower edge of first occupied bucket)", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %g, want 4 (upper bound of last occupied bucket)", got)
	}
	// Quantiles are monotone in q.
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: Quantile(%g)=%g < %g", q, v, prev)
		}
		prev = v
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines; under -race this doubles as the data-race check for the
// atomic bucket/sum/count accounting.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram([]float64{0.25, 0.5, 0.75, 1})
	const (
		workers = 8
		perG    = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(w*perG+i) / float64(workers*perG)) // in [0,1)
				if i%64 == 0 {
					_ = h.Quantile(0.5) // concurrent reads must be safe too
					_ = h.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*perG {
		t.Fatalf("Count = %d, want %d (lost updates)", got, workers*perG)
	}
	var n int64
	for _, c := range h.BucketCounts() {
		n += c
	}
	if n != workers*perG {
		t.Fatalf("bucket counts sum to %d, want %d", n, workers*perG)
	}
	// Sum of i/N for i in [0, N) is (N-1)/2; CAS accumulation must not
	// drop any addend.
	want := float64(workers*perG-1) / 2
	if got := h.Sum(); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("Sum = %g, want %g", got, want)
	}
	if p50 := h.Quantile(0.5); math.Abs(p50-0.5) > 0.01 {
		t.Fatalf("p50 of uniform [0,1) = %g", p50)
	}
}
