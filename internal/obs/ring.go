package obs

import (
	"log/slog"
	"sort"
	"sync"
	"time"
)

// IOLine is one attributed I/O row of a query trace: the page traffic one
// (component, level) pair caused. The component is a neutral string
// (internal/obs depends on nothing), produced by core from the pagestore
// breakdown.
type IOLine struct {
	Component string `json:"component"`
	Level     int    `json:"level"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Evictions int64  `json:"evictions,omitempty"`
}

// ExplainSummary is the compact form of a query's EXPLAIN/ANALYZE carried
// by slow-query trace records: the planner's estimates (when a planner
// ran), the search actuals, and the signed relative node-access error.
// Like IOLine it is a neutral struct — internal/obs depends on nothing, so
// core condenses its full explain recorder into this shape.
type ExplainSummary struct {
	// Engine and the estimates are zero when the query ran unplanned.
	Engine            string  `json:"engine,omitempty"`
	EstimatedAccesses float64 `json:"est_node_accesses,omitempty"`
	EstimatedFk       float64 `json:"est_fk,omitempty"`
	// AccessError is the signed relative error of the node-access
	// estimate: (estimated − actual) / actual.
	AccessError float64 `json:"access_error,omitempty"`

	ActualAccesses int64   `json:"actual_node_accesses"`
	ActualFk       float64 `json:"actual_fk"`
	Pops           int     `json:"pops"`
	HeapMax        int     `json:"heap_max"`
	Frontier       int     `json:"frontier"`
	TIAReads       int64   `json:"tia_reads"`
	CacheHits      int64   `json:"cache_hits"`
	ResultCacheHit bool    `json:"result_cache_hit,omitempty"`
	// Truncated reports that the full recorder capped its pop log or
	// frontier snapshot; the scalar counts here are exact regardless.
	Truncated bool `json:"truncated,omitempty"`
}

// TraceRecord is one finished query as kept by a TraceRing: identity,
// timing, the aggregated spans (empty when the query ran untraced) and the
// per-component I/O breakdown.
type TraceRecord struct {
	// ID is assigned by the ring: a process-wide sequence number, so two
	// records can be correlated across the recent and slowest views.
	ID      uint64        `json:"id"`
	Query   string        `json:"query"`
	Start   time.Time     `json:"start"`
	Elapsed time.Duration `json:"elapsed_ns"`
	Results int           `json:"results"`
	Err     string        `json:"error,omitempty"`
	Spans   []SpanStat    `json:"spans,omitempty"`
	IO      []IOLine      `json:"io,omitempty"`
	// Explain is the compact explain summary when the query ran with an
	// explain recorder attached; nil otherwise.
	Explain *ExplainSummary `json:"explain,omitempty"`
}

// TraceRing keeps the N most recent and the N slowest query records, and
// optionally logs queries slower than a threshold. Like *Trace, a nil
// *TraceRing is the disabled state: every method no-ops, so query paths
// pay one pointer test when capture is off.
//
// A TraceRing is safe for concurrent use.
type TraceRing struct {
	mu   sync.Mutex
	buf  []TraceRecord // circular: buf[(pos+i) % cap] oldest → newest
	pos  int           // next write index
	n    int           // records stored (≤ cap)
	next uint64        // next ID

	slowest []TraceRecord // sorted by Elapsed descending, ≤ cap entries

	slowLog       *slog.Logger
	slowThreshold time.Duration
}

// NewTraceRing creates a ring keeping the n most recent and n slowest
// records. n < 1 is treated as 1.
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]TraceRecord, n)}
}

// Cap returns the ring capacity (0 on a nil ring).
func (r *TraceRing) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Len returns the number of records currently kept in the recent view.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// SetSlowLog makes the ring log every record with Elapsed >= threshold to
// l at warn level. A nil logger or on a nil ring disables slow logging.
func (r *TraceRing) SetSlowLog(l *slog.Logger, threshold time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.slowLog = l
	r.slowThreshold = threshold
	r.mu.Unlock()
}

// Record stores rec, assigning and returning its ID. The oldest record
// falls out of the recent view once the ring is full; the slowest view
// keeps the top records by Elapsed regardless of age.
func (r *TraceRing) Record(rec TraceRecord) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	r.next++
	rec.ID = r.next
	r.buf[r.pos] = rec
	r.pos = (r.pos + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	// Insert into the slowest view (descending Elapsed, stable for ties).
	i := sort.Search(len(r.slowest), func(i int) bool {
		return r.slowest[i].Elapsed < rec.Elapsed
	})
	if i < len(r.buf) {
		r.slowest = append(r.slowest, TraceRecord{})
		copy(r.slowest[i+1:], r.slowest[i:])
		r.slowest[i] = rec
		if len(r.slowest) > len(r.buf) {
			r.slowest = r.slowest[:len(r.buf)]
		}
	}
	log, threshold := r.slowLog, r.slowThreshold
	r.mu.Unlock()

	if log != nil && rec.Elapsed >= threshold {
		attrs := []any{
			slog.Uint64("id", rec.ID),
			slog.String("query", rec.Query),
			slog.Duration("elapsed", rec.Elapsed),
			slog.Int("results", rec.Results),
		}
		if rec.Err != "" {
			attrs = append(attrs, slog.String("error", rec.Err))
		}
		log.Warn("slow query", attrs...)
	}
	return rec.ID
}

// Recent returns the kept records newest first.
func (r *TraceRing) Recent() []TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceRecord, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.pos-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Slowest returns the slowest kept records, slowest first.
func (r *TraceRing) Slowest() []TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]TraceRecord(nil), r.slowest...)
}
