package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceRingIsNoop(t *testing.T) {
	var r *TraceRing
	if r.Cap() != 0 || r.Len() != 0 {
		t.Fatal("nil ring reports capacity")
	}
	r.SetSlowLog(slog.Default(), time.Second) // must not panic
	if id := r.Record(TraceRecord{Query: "q"}); id != 0 {
		t.Fatalf("nil ring assigned ID %d", id)
	}
	if r.Recent() != nil || r.Slowest() != nil {
		t.Fatal("nil ring has records")
	}
}

// TestTraceRingEvictionOrder fills the ring past capacity and checks the
// recent view keeps exactly the newest records, newest first, while IDs
// stay a monotone sequence.
func TestTraceRingEvictionOrder(t *testing.T) {
	r := NewTraceRing(3)
	if r.Cap() != 3 {
		t.Fatalf("cap = %d", r.Cap())
	}
	for i := 1; i <= 5; i++ {
		id := r.Record(TraceRecord{
			Query:   fmt.Sprintf("q%d", i),
			Elapsed: time.Duration(i) * time.Millisecond,
		})
		if id != uint64(i) {
			t.Fatalf("record %d got ID %d", i, id)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	recent := r.Recent()
	var got []string
	for _, rec := range recent {
		got = append(got, rec.Query)
	}
	if want := []string{"q5", "q4", "q3"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("recent = %v, want %v", got, want)
	}
}

// TestTraceRingSlowest checks the slowest view ranks by Elapsed and
// survives eviction from the recent view.
func TestTraceRingSlowest(t *testing.T) {
	r := NewTraceRing(3)
	// The slowest query arrives first and is then pushed out of the recent
	// view by four faster ones.
	for i, d := range []time.Duration{90, 10, 20, 40, 30} {
		r.Record(TraceRecord{Query: fmt.Sprintf("q%d", i), Elapsed: d * time.Millisecond})
	}
	slow := r.Slowest()
	if len(slow) != 3 {
		t.Fatalf("slowest has %d records, want 3", len(slow))
	}
	var got []time.Duration
	for _, rec := range slow {
		got = append(got, rec.Elapsed/time.Millisecond)
	}
	if fmt.Sprint(got) != fmt.Sprint([]time.Duration{90, 40, 30}) {
		t.Errorf("slowest elapsed = %v, want [90 40 30]", got)
	}
	if slow[0].ID != 1 {
		t.Errorf("slowest record ID = %d, want the evicted first record", slow[0].ID)
	}
	// It must be a copy: mutating the result leaves the ring intact.
	slow[0].Query = "mutated"
	if r.Slowest()[0].Query == "mutated" {
		t.Error("Slowest returned an aliased slice")
	}
}

func TestTraceRingSlowLog(t *testing.T) {
	r := NewTraceRing(4)
	var buf bytes.Buffer
	r.SetSlowLog(slog.New(slog.NewTextHandler(&buf, nil)), 50*time.Millisecond)
	r.Record(TraceRecord{Query: "fast", Elapsed: 10 * time.Millisecond})
	r.Record(TraceRecord{Query: "slow", Elapsed: 80 * time.Millisecond, Err: "boom"})
	out := buf.String()
	if strings.Contains(out, "fast") {
		t.Errorf("fast query logged: %s", out)
	}
	for _, want := range []string{"slow query", "query=slow", "error=boom", "id=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("slow log missing %q: %s", want, out)
		}
	}
	// Disabling the log stops emission.
	r.SetSlowLog(nil, 0)
	buf.Reset()
	r.Record(TraceRecord{Query: "slow2", Elapsed: time.Second})
	if buf.Len() != 0 {
		t.Errorf("disabled slow log still wrote: %s", buf.String())
	}
}

func TestTraceRecordJSON(t *testing.T) {
	rec := TraceRecord{
		ID:      7,
		Query:   "knnta(x=1, y=2, k=3, a0=0.5, iq=[0,10))",
		Elapsed: 1500 * time.Microsecond,
		Results: 3,
		IO:      []IOLine{{Component: "rtree-leaf", Hits: 4, Misses: 1}},
	}
	blob, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	s := string(blob)
	for _, want := range []string{`"id":7`, `"elapsed_ns":1500000`, `"component":"rtree-leaf"`, `"misses":1`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON %s missing %s", s, want)
		}
	}
	if strings.Contains(s, "spans") || strings.Contains(s, "error") {
		t.Errorf("JSON %s has empty optional fields", s)
	}
}

// TestTraceRingConcurrent hammers one ring from writers and readers — the
// acceptance check under -race.
func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(8)
	var buf bytes.Buffer
	var mu sync.Mutex
	r.SetSlowLog(slog.New(slog.NewTextHandler(lockedWriter{&mu, &buf}, nil)), time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(TraceRecord{
					Query:   "q",
					Elapsed: time.Duration(i%5) * time.Millisecond,
				})
				if i%50 == 0 {
					_ = r.Recent()
					_ = r.Slowest()
					_ = r.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 8 {
		t.Fatalf("len = %d, want 8", r.Len())
	}
	if got := r.Recent()[0].ID; got == 0 {
		t.Fatal("records missing IDs")
	}
	if len(r.Slowest()) != 8 {
		t.Fatalf("slowest has %d records", len(r.Slowest()))
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	b  *bytes.Buffer
}

func (w lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}
