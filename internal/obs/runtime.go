package obs

import (
	"math"
	"runtime"
	rm "runtime/metrics"
	"sync"
	"time"
)

// runtime.go publishes the Go runtime's own telemetry — GC pause and
// scheduler-latency histograms, heap and goroutine gauges — into a Registry
// via the runtime/metrics package. The paper's evaluation counts index work;
// these series cover the other half of "where did the time go?": stop-the-
// world pauses stretching a query's tail latency, heap growth from TIA
// buffers, goroutine pileups behind the admission semaphore.
//
// All values are read through one cached sampler, so a /metrics scrape costs
// a single runtime/metrics.Read regardless of how many series are
// registered, and every exported gauge is from the same consistent sample.

// runtimeMetricNames maps the runtime/metrics names we want to the metric
// names they are exported under. Registration is capability-based: names the
// running Go version does not provide are skipped, so the collector works
// across toolchain versions.
var runtimeGauges = []struct{ runtime, metric string }{
	{"/sched/goroutines:goroutines", "go_goroutines"},
	{"/sched/gomaxprocs:threads", "go_gomaxprocs"},
	{"/memory/classes/heap/objects:bytes", "go_heap_objects_bytes"},
	{"/memory/classes/heap/released:bytes", "go_heap_released_bytes"},
	{"/memory/classes/total:bytes", "go_memory_total_bytes"},
	{"/gc/heap/goal:bytes", "go_gc_heap_goal_bytes"},
}

var runtimeCounters = []struct{ runtime, metric string }{
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total"},
	{"/gc/heap/allocs:bytes", "go_heap_allocs_bytes_total"},
	{"/cgo/go-to-c-calls:calls", "go_cgo_calls_total"},
}

var runtimeHistograms = []struct {
	runtimes []string // first available name wins (renames across Go versions)
	metric   string
}{
	// The GC pause distribution moved from /gc/pauses:seconds to
	// /sched/pauses/total/gc:seconds in Go 1.22.
	{[]string{"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"}, "go_gc_pauses_seconds"},
	{[]string{"/sched/latencies:seconds"}, "go_sched_latencies_seconds"},
}

// maxRuntimeBuckets bounds the exposition size of runtime histograms: the
// runtime maintains hundreds of fine-grained buckets, which would dominate
// /metrics output; adjacent buckets are merged down to this many.
const maxRuntimeBuckets = 24

// runtimeSampler caches one runtime/metrics read for a short TTL so that a
// scrape touching a dozen series pays for one Read, and concurrent scrapes
// do not stampede the runtime.
type runtimeSampler struct {
	mu      sync.Mutex
	samples []rm.Sample
	index   map[string]int
	last    time.Time
	ttl     time.Duration
}

func newRuntimeSampler(names []string, ttl time.Duration) *runtimeSampler {
	s := &runtimeSampler{
		samples: make([]rm.Sample, len(names)),
		index:   make(map[string]int, len(names)),
		ttl:     ttl,
	}
	for i, n := range names {
		s.samples[i].Name = n
		s.index[n] = i
	}
	return s
}

// value returns the current sample for a runtime metric name, refreshing the
// cached read when it is older than the TTL.
func (s *runtimeSampler) value(name string) rm.Value {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.last) > s.ttl {
		rm.Read(s.samples)
		s.last = time.Now()
	}
	i, ok := s.index[name]
	if !ok {
		return rm.Value{}
	}
	return s.samples[i].Value
}

// float64Value converts a runtime/metrics value to float64 (0 for kinds we
// do not expect).
func float64Value(v rm.Value) float64 {
	switch v.Kind() {
	case rm.KindUint64:
		return float64(v.Uint64())
	case rm.KindFloat64:
		return v.Float64()
	default:
		return 0
	}
}

// snapshotFromRuntimeHistogram converts a runtime/metrics Float64Histogram
// (counts between bucket boundaries, possibly ±Inf at the edges) into a
// HistogramSnapshot (inclusive upper bounds plus a trailing +Inf bucket),
// merging adjacent buckets down to maxRuntimeBuckets. The sum is estimated
// from bucket midpoints — the runtime does not track it — which is fine for
// the burn-rate and quantile consumers of these series.
func snapshotFromRuntimeHistogram(h *rm.Float64Histogram) HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil || len(h.Counts) == 0 || len(h.Buckets) != len(h.Counts)+1 {
		return s
	}
	// Raw conversion: bucket i covers (Buckets[i], Buckets[i+1]]; its upper
	// edge becomes the inclusive bound. A +Inf upper edge becomes the
	// overflow bucket.
	bounds := make([]float64, 0, len(h.Counts))
	counts := make([]int64, 0, len(h.Counts)+1)
	var infCount int64
	var sum float64
	for i, c := range h.Counts {
		hi := h.Buckets[i+1]
		lo := h.Buckets[i]
		if math.IsInf(hi, 1) {
			infCount += int64(c)
			if c > 0 && !math.IsInf(lo, -1) {
				sum += float64(c) * lo
			}
			continue
		}
		bounds = append(bounds, hi)
		counts = append(counts, int64(c))
		if c > 0 {
			mid := hi
			if !math.IsInf(lo, -1) {
				mid = (lo + hi) / 2
			}
			sum += float64(c) * mid
		}
	}
	// Merge adjacent buckets down to the cap; the merged bucket keeps the
	// group's upper edge, so cumulative counts stay exact at the surviving
	// boundaries.
	if len(bounds) > maxRuntimeBuckets {
		stride := (len(bounds) + maxRuntimeBuckets - 1) / maxRuntimeBuckets
		mb := make([]float64, 0, maxRuntimeBuckets)
		mc := make([]int64, 0, maxRuntimeBuckets+1)
		for i := 0; i < len(bounds); i += stride {
			end := i + stride
			if end > len(bounds) {
				end = len(bounds)
			}
			var c int64
			for j := i; j < end; j++ {
				c += counts[j]
			}
			mb = append(mb, bounds[end-1])
			mc = append(mc, c)
		}
		bounds, counts = mb, mc
	}
	counts = append(counts, infCount)
	var total int64
	for _, c := range counts {
		total += c
	}
	s = HistogramSnapshot{Bounds: bounds, Counts: counts, Sum: sum, Count: total}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// RegisterRuntimeMetrics publishes the Go runtime's telemetry into r: the
// GC pause and scheduler-latency histograms, heap/goroutine/GC gauges and
// counters, plus go_num_cpu. Series the running toolchain does not provide
// are skipped. All callbacks read through one cached sample (1s TTL), so
// scrapes are cheap and internally consistent.
func RegisterRuntimeMetrics(r *Registry) {
	registerRuntimeMetrics(r, time.Second)
}

func registerRuntimeMetrics(r *Registry, ttl time.Duration) {
	available := make(map[string]bool)
	for _, d := range rm.All() {
		available[d.Name] = true
	}
	var names []string
	for _, g := range runtimeGauges {
		if available[g.runtime] {
			names = append(names, g.runtime)
		}
	}
	for _, c := range runtimeCounters {
		if available[c.runtime] {
			names = append(names, c.runtime)
		}
	}
	histNames := make(map[string]string) // metric name -> chosen runtime name
	for _, h := range runtimeHistograms {
		for _, rn := range h.runtimes {
			if available[rn] {
				names = append(names, rn)
				histNames[h.metric] = rn
				break
			}
		}
	}
	s := newRuntimeSampler(names, ttl)

	for _, g := range runtimeGauges {
		if !available[g.runtime] {
			continue
		}
		rn := g.runtime
		r.GaugeFunc(g.metric, func() float64 { return float64Value(s.value(rn)) })
	}
	for _, c := range runtimeCounters {
		if !available[c.runtime] {
			continue
		}
		rn := c.runtime
		r.CounterFunc(c.metric, func() int64 { return int64(float64Value(s.value(rn))) })
	}
	for metric, rn := range histNames {
		rn := rn
		r.HistogramFunc(metric, func() HistogramSnapshot {
			v := s.value(rn)
			if v.Kind() != rm.KindFloat64Histogram {
				return HistogramSnapshot{}
			}
			return snapshotFromRuntimeHistogram(v.Float64Histogram())
		})
	}
	r.GaugeFunc("go_num_cpu", func() float64 { return float64(runtime.NumCPU()) })
}
