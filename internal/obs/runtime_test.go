package obs

import (
	"bytes"
	"math"
	"runtime"
	rm "runtime/metrics"
	"strings"
	"testing"
	"time"
)

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	registerRuntimeMetrics(r, 0) // zero TTL: every read re-samples
	runtime.GC()                 // ensure at least one GC cycle is recorded

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"go_goroutines ",
		"go_gomaxprocs ",
		"go_memory_total_bytes ",
		"go_gc_cycles_total ",
		"go_num_cpu ",
		`go_gc_pauses_seconds_bucket{le="+Inf"}`,
		"go_gc_pauses_seconds_count ",
		`go_sched_latencies_seconds_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	snap := r.Snapshot()
	if g, ok := snap["go_goroutines"].(float64); !ok || g < 1 {
		t.Errorf("go_goroutines = %v, want >= 1", snap["go_goroutines"])
	}
	if c, ok := snap["go_gc_cycles_total"].(int64); !ok || c < 1 {
		t.Errorf("go_gc_cycles_total = %v, want >= 1", snap["go_gc_cycles_total"])
	}
	hs, ok := snap["go_gc_pauses_seconds"].(HistogramSnapshot)
	if !ok {
		t.Fatalf("go_gc_pauses_seconds snapshot is %T", snap["go_gc_pauses_seconds"])
	}
	if hs.Count < 1 {
		t.Errorf("gc pause histogram count %d, want >= 1 after runtime.GC", hs.Count)
	}
	if len(hs.Bounds) > maxRuntimeBuckets {
		t.Errorf("gc pause histogram has %d buckets, want <= %d", len(hs.Bounds), maxRuntimeBuckets)
	}
	if len(hs.Counts) != len(hs.Bounds)+1 {
		t.Errorf("counts/bounds mismatch: %d vs %d", len(hs.Counts), len(hs.Bounds))
	}
}

func TestRuntimeSamplerCaches(t *testing.T) {
	s := newRuntimeSampler([]string{"/sched/goroutines:goroutines"}, time.Hour)
	v1 := s.value("/sched/goroutines:goroutines")
	if v1.Kind() != rm.KindUint64 {
		t.Fatalf("goroutines kind %v", v1.Kind())
	}
	first := s.last
	s.value("/sched/goroutines:goroutines")
	if s.last != first {
		t.Fatal("sampler re-read within TTL")
	}
	// Unknown names return the zero Value rather than panicking.
	if got := s.value("/no/such:metric"); got.Kind() != rm.KindBad {
		t.Fatalf("unknown metric kind %v, want KindBad", got.Kind())
	}
}

func TestSnapshotFromRuntimeHistogram(t *testing.T) {
	// Buckets: (-Inf,1] (1,2] (2,+Inf) with counts 2,3,5.
	h := &rm.Float64Histogram{
		Counts:  []uint64{2, 3, 5},
		Buckets: []float64{math.Inf(-1), 1, 2, math.Inf(1)},
	}
	s := snapshotFromRuntimeHistogram(h)
	if s.Count != 10 {
		t.Fatalf("count %d, want 10", s.Count)
	}
	if len(s.Bounds) != 2 || s.Bounds[0] != 1 || s.Bounds[1] != 2 {
		t.Fatalf("bounds %v, want [1 2]", s.Bounds)
	}
	if len(s.Counts) != 3 || s.Counts[0] != 2 || s.Counts[1] != 3 || s.Counts[2] != 5 {
		t.Fatalf("counts %v, want [2 3 5]", s.Counts)
	}
	// Quantiles on the converted snapshot: q=0.2 falls in the first bucket.
	if q := s.Quantile(0.2); q != 1 {
		t.Fatalf("q0.2 = %v, want 1", q)
	}
	// Overflow-bucket quantiles clamp to the highest finite bound.
	if q := s.Quantile(0.99); q != 2 {
		t.Fatalf("q0.99 = %v, want 2 (clamped to last finite bound)", q)
	}

	// Nil and malformed inputs return an empty snapshot.
	if s := snapshotFromRuntimeHistogram(nil); s.Count != 0 {
		t.Fatal("nil histogram should be empty")
	}
	bad := &rm.Float64Histogram{Counts: []uint64{1}, Buckets: []float64{0}}
	if s := snapshotFromRuntimeHistogram(bad); s.Count != 0 {
		t.Fatal("malformed histogram should be empty")
	}
}

func TestSnapshotFromRuntimeHistogramMerges(t *testing.T) {
	// 100 buckets merge down to <= maxRuntimeBuckets with counts preserved.
	n := 100
	h := &rm.Float64Histogram{
		Counts:  make([]uint64, n),
		Buckets: make([]float64, n+1),
	}
	var want int64
	for i := 0; i < n; i++ {
		h.Counts[i] = uint64(i)
		want += int64(i)
		h.Buckets[i] = float64(i)
	}
	h.Buckets[n] = float64(n)
	s := snapshotFromRuntimeHistogram(h)
	if len(s.Bounds) > maxRuntimeBuckets {
		t.Fatalf("merged to %d buckets, want <= %d", len(s.Bounds), maxRuntimeBuckets)
	}
	if s.Count != want {
		t.Fatalf("count %d, want %d", s.Count, want)
	}
	// Upper edge of the last merged bucket is the original last finite bound.
	if s.Bounds[len(s.Bounds)-1] != float64(n) {
		t.Fatalf("last bound %v, want %v", s.Bounds[len(s.Bounds)-1], float64(n))
	}
}
