package obs

// PageSink publishes page-buffer traffic into registry counters. It
// structurally implements pagestore.Sink (obs deliberately imports nothing
// but the standard library, so the interface is satisfied by method set
// rather than by naming the type): attach one to a pagestore.Buffer — or to
// every buffer of a TIA factory via AttachSink — and the buffer's hits,
// misses, evictions and physical I/O appear under <prefix>_* metrics.
type PageSink struct {
	hits        *Counter
	misses      *Counter
	logWrites   *Counter
	physWrites  *Counter
	evictions   *Counter
	dirtyEvicts *Counter
}

// NewPageSink registers the page-traffic counters under prefix (e.g.
// "tartree_pagestore") and returns the sink. Calling it twice with the same
// registry and prefix returns sinks sharing the same counters.
func NewPageSink(r *Registry, prefix string) *PageSink {
	return &PageSink{
		hits:        r.Counter(prefix + `_reads_total{result="hit"}`),
		misses:      r.Counter(prefix + `_reads_total{result="miss"}`),
		logWrites:   r.Counter(prefix + `_writes_total{kind="logical"}`),
		physWrites:  r.Counter(prefix + `_writes_total{kind="physical"}`),
		evictions:   r.Counter(prefix + `_evictions_total{kind="clean"}`),
		dirtyEvicts: r.Counter(prefix + `_evictions_total{kind="dirty"}`),
	}
}

// PageRead implements pagestore.Sink: one logical read, served from the
// buffer (hit) or from the underlying file (miss = physical read).
func (s *PageSink) PageRead(hit bool) {
	if hit {
		s.hits.Inc()
	} else {
		s.misses.Inc()
	}
}

// PageWrite implements pagestore.Sink: physical writes reached the file,
// logical writes were absorbed by the buffer.
func (s *PageSink) PageWrite(physical bool) {
	if physical {
		s.physWrites.Inc()
	} else {
		s.logWrites.Inc()
	}
}

// PageEvicted implements pagestore.Sink.
func (s *PageSink) PageEvicted(dirty bool) {
	if dirty {
		s.dirtyEvicts.Inc()
	} else {
		s.evictions.Inc()
	}
}
