package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// slo.go: declarative service-level objectives and multi-window burn-rate
// accounting. An Objective like "query:p99<50ms" promises that 99% of query
// requests finish under 50ms; the 1% allowance is the error budget. The
// SLOTracker classifies each request as within/over budget and maintains
// burn rates over a short (5m) and a long (1h) window — the standard SRE
// multi-window pattern: the short window catches a fast burn early, the
// long window keeps a slow leak from hiding between scrapes.

// Objective is one parsed SLO clause.
type Objective struct {
	Service   string  // which pipeline the clause governs: "query", "ingest"
	Kind      string  // "p50".."p99.9" for latency, or "error_rate"
	Threshold float64 // seconds for latency kinds, a fraction for error_rate
}

// Target returns the promised good-request fraction: 0.99 for p99,
// 1-threshold for error_rate.
func (o Objective) Target() float64 {
	if o.Kind == "error_rate" {
		return 1 - o.Threshold
	}
	pct, _ := strconv.ParseFloat(strings.TrimPrefix(o.Kind, "p"), 64)
	return pct / 100
}

// Budget returns the error budget, the allowed bad-request fraction.
func (o Objective) Budget() float64 { return 1 - o.Target() }

// String renders the objective back in flag syntax, e.g. "query:p99<50ms".
func (o Objective) String() string {
	if o.Kind == "error_rate" {
		return fmt.Sprintf("%s:error_rate<%s", o.Service,
			strconv.FormatFloat(o.Threshold, 'g', -1, 64))
	}
	return fmt.Sprintf("%s:%s<%s", o.Service, o.Kind,
		time.Duration(o.Threshold*float64(time.Second)).String())
}

// ParseSLO parses one clause of the form "service:pNN<duration" or
// "service:error_rate<fraction", e.g. "query:p99<50ms" or
// "ingest:error_rate<0.001".
func ParseSLO(s string) (Objective, error) {
	var o Objective
	colon := strings.IndexByte(s, ':')
	lt := strings.IndexByte(s, '<')
	if colon <= 0 || lt <= colon+1 || lt == len(s)-1 {
		return o, fmt.Errorf("slo %q: want service:kind<value", s)
	}
	o.Service = s[:colon]
	o.Kind = s[colon+1 : lt]
	val := s[lt+1:]
	switch {
	case o.Kind == "error_rate":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f <= 0 || f >= 1 {
			return o, fmt.Errorf("slo %q: error_rate threshold must be a fraction in (0,1)", s)
		}
		o.Threshold = f
	case strings.HasPrefix(o.Kind, "p"):
		pct, err := strconv.ParseFloat(o.Kind[1:], 64)
		if err != nil || pct <= 0 || pct >= 100 {
			return o, fmt.Errorf("slo %q: quantile must be p(0,100), e.g. p99", s)
		}
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return o, fmt.Errorf("slo %q: bad latency threshold %q", s, val)
		}
		o.Threshold = d.Seconds()
	default:
		return o, fmt.Errorf("slo %q: kind must be pNN or error_rate", s)
	}
	return o, nil
}

// ParseSLOs parses a comma-separated list of clauses. An empty string
// yields nil objectives and no error.
func ParseSLOs(s string) ([]Objective, error) {
	var out []Objective
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		o, err := ParseSLO(clause)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// sloWindow counts good/bad requests over a rolling span using a ring of
// fixed-width time buckets. Buckets are lazily recycled on access, so idle
// services cost nothing between requests.
type sloWindow struct {
	mu     sync.Mutex
	bucket time.Duration
	good   []int64
	bad    []int64
	epoch  []int64 // which bucket-epoch each slot currently holds
}

func newSLOWindow(span time.Duration, buckets int) *sloWindow {
	w := &sloWindow{
		bucket: span / time.Duration(buckets),
		good:   make([]int64, buckets),
		bad:    make([]int64, buckets),
		epoch:  make([]int64, buckets),
	}
	for i := range w.epoch {
		w.epoch[i] = -1
	}
	return w
}

func (w *sloWindow) slot(now time.Time) (int, int64) {
	e := now.UnixNano() / int64(w.bucket)
	return int(e % int64(len(w.good))), e
}

func (w *sloWindow) add(now time.Time, good bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	i, e := w.slot(now)
	if w.epoch[i] != e {
		w.good[i], w.bad[i], w.epoch[i] = 0, 0, e
	}
	if good {
		w.good[i]++
	} else {
		w.bad[i]++
	}
}

// totals sums the buckets still inside the window ending at now.
func (w *sloWindow) totals(now time.Time) (good, bad int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, e := w.slot(now)
	min := e - int64(len(w.good)) + 1
	for i := range w.good {
		if w.epoch[i] >= min && w.epoch[i] <= e {
			good += w.good[i]
			bad += w.bad[i]
		}
	}
	return good, bad
}

// sloState is the live accounting for one objective.
type sloState struct {
	obj       Objective
	good, bad atomic.Int64 // cumulative, for /metrics counters
	short     *sloWindow   // 5m
	long      *sloWindow   // 1h
}

// Burn-rate window spans. Exported on /metrics as window="5m" / window="1h".
const (
	sloShortWindow = 5 * time.Minute
	sloLongWindow  = time.Hour
)

// SLOTracker classifies requests against a set of objectives and exposes
// cumulative good/bad counters plus multi-window burn-rate gauges. A nil
// tracker is a valid no-op, matching the rest of the package.
type SLOTracker struct {
	states []*sloState
	now    func() time.Time // injectable for tests
}

// NewSLOTracker builds a tracker for the given objectives. With no
// objectives it returns nil, which disables all accounting.
func NewSLOTracker(objs []Objective) *SLOTracker {
	if len(objs) == 0 {
		return nil
	}
	t := &SLOTracker{now: time.Now}
	for _, o := range objs {
		t.states = append(t.states, &sloState{
			obj:   o,
			short: newSLOWindow(sloShortWindow, 30),
			long:  newSLOWindow(sloLongWindow, 60),
		})
	}
	return t
}

// Objectives returns the tracked objectives in registration order.
func (t *SLOTracker) Objectives() []Objective {
	if t == nil {
		return nil
	}
	out := make([]Objective, len(t.states))
	for i, s := range t.states {
		out[i] = s.obj
	}
	return out
}

// Observe records one finished request for a service. For latency
// objectives the request is good when it succeeded and finished under the
// threshold; for error_rate objectives only failure matters.
func (t *SLOTracker) Observe(service string, d time.Duration, failed bool) {
	if t == nil {
		return
	}
	now := t.now()
	for _, s := range t.states {
		if s.obj.Service != service {
			continue
		}
		good := !failed
		if good && s.obj.Kind != "error_rate" {
			good = d.Seconds() <= s.obj.Threshold
		}
		if good {
			s.good.Add(1)
		} else {
			s.bad.Add(1)
		}
		s.short.add(now, good)
		s.long.add(now, good)
	}
}

// BurnRate returns the current burn rate of an objective over the short
// (5m) or long (1h) window: the observed bad-request fraction divided by
// the error budget. 1.0 means the budget is being consumed exactly at the
// sustainable rate; >1 means it will be exhausted early. Zero traffic
// burns nothing.
func (t *SLOTracker) BurnRate(obj Objective, window time.Duration) float64 {
	if t == nil {
		return 0
	}
	for _, s := range t.states {
		if s.obj != obj {
			continue
		}
		w := s.short
		if window >= sloLongWindow {
			w = s.long
		}
		good, bad := w.totals(t.now())
		total := good + bad
		if total == 0 {
			return 0
		}
		budget := s.obj.Budget()
		if budget <= 0 {
			return 0
		}
		return (float64(bad) / float64(total)) / budget
	}
	return 0
}

// Register publishes per-objective series into r:
//
//	tartree_slo_requests_total{slo="...",outcome="good"|"bad"}  counters
//	tartree_slo_burn_rate{slo="...",window="5m"|"1h"}           gauges
func (t *SLOTracker) Register(r *Registry) {
	if t == nil || r == nil {
		return
	}
	for _, s := range t.states {
		s := s
		name := s.obj.String()
		r.CounterFunc(fmt.Sprintf("tartree_slo_requests_total{slo=%q,outcome=\"good\"}", name),
			s.good.Load)
		r.CounterFunc(fmt.Sprintf("tartree_slo_requests_total{slo=%q,outcome=\"bad\"}", name),
			s.bad.Load)
		r.GaugeFunc(fmt.Sprintf("tartree_slo_burn_rate{slo=%q,window=\"5m\"}", name),
			func() float64 { return t.BurnRate(s.obj, sloShortWindow) })
		r.GaugeFunc(fmt.Sprintf("tartree_slo_burn_rate{slo=%q,window=\"1h\"}", name),
			func() float64 { return t.BurnRate(s.obj, sloLongWindow) })
	}
}
