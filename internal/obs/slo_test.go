package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParseSLO(t *testing.T) {
	o, err := ParseSLO("query:p99<50ms")
	if err != nil {
		t.Fatal(err)
	}
	if o.Service != "query" || o.Kind != "p99" || o.Threshold != 0.05 {
		t.Fatalf("parsed %+v", o)
	}
	if got := o.Target(); got != 0.99 {
		t.Fatalf("target %v, want 0.99", got)
	}
	if got := o.String(); got != "query:p99<50ms" {
		t.Fatalf("String() = %q", got)
	}

	o, err = ParseSLO("ingest:error_rate<0.001")
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != "error_rate" || o.Threshold != 0.001 {
		t.Fatalf("parsed %+v", o)
	}
	if got := o.Target(); got != 0.999 {
		t.Fatalf("target %v, want 0.999", got)
	}

	for _, bad := range []string{
		"", "query", "query:p99", "query:<50ms", ":p99<50ms",
		"query:p99<", "query:p99<fast", "query:p0<50ms", "query:p100<50ms",
		"query:error_rate<1.5", "query:error_rate<0", "query:mean<50ms",
	} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q): want error", bad)
		}
	}
}

func TestParseSLOs(t *testing.T) {
	objs, err := ParseSLOs("query:p99<50ms, ingest:p95<20ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 || objs[1].Service != "ingest" {
		t.Fatalf("objs %+v", objs)
	}
	if objs, err := ParseSLOs(""); err != nil || objs != nil {
		t.Fatalf("empty spec: %v %v", objs, err)
	}
	if _, err := ParseSLOs("query:p99<50ms,bogus"); err == nil {
		t.Fatal("want error for bad clause in list")
	}
}

func TestSLOTrackerBurnRate(t *testing.T) {
	obj, _ := ParseSLO("query:p99<50ms")
	tr := NewSLOTracker([]Objective{obj})
	clock := time.Unix(1_700_000_000, 0)
	tr.now = func() time.Time { return clock }

	// 99 fast + 1 slow request: exactly at budget, burn rate 1.0.
	for i := 0; i < 99; i++ {
		tr.Observe("query", 10*time.Millisecond, false)
	}
	tr.Observe("query", 200*time.Millisecond, false)
	if br := tr.BurnRate(obj, sloShortWindow); br < 0.99 || br > 1.01 {
		t.Fatalf("burn rate %v, want ~1.0", br)
	}
	// Errors count as bad even when fast.
	tr.Observe("query", time.Millisecond, true)
	if br := tr.BurnRate(obj, sloShortWindow); br <= 1.01 {
		t.Fatalf("burn rate %v after error, want > 1", br)
	}
	// Other services are ignored.
	tr.Observe("ingest", time.Second, true)
	g, b := tr.states[0].good.Load(), tr.states[0].bad.Load()
	if g != 99 || b != 2 {
		t.Fatalf("good/bad = %d/%d, want 99/2", g, b)
	}

	// Advance past the short window: its burn rate decays to 0, the long
	// window still remembers.
	clock = clock.Add(6 * time.Minute)
	if br := tr.BurnRate(obj, sloShortWindow); br != 0 {
		t.Fatalf("short burn rate after window passed: %v, want 0", br)
	}
	if br := tr.BurnRate(obj, sloLongWindow); br == 0 {
		t.Fatal("long burn rate should still be non-zero")
	}
	clock = clock.Add(2 * time.Hour)
	if br := tr.BurnRate(obj, sloLongWindow); br != 0 {
		t.Fatalf("long burn rate after 2h: %v, want 0", br)
	}
}

func TestSLOTrackerNilSafe(t *testing.T) {
	var tr *SLOTracker
	tr.Observe("query", time.Millisecond, false)
	tr.Register(NewRegistry())
	if tr.Objectives() != nil {
		t.Fatal("nil tracker objectives")
	}
	if tr.BurnRate(Objective{}, sloShortWindow) != 0 {
		t.Fatal("nil tracker burn rate")
	}
	if NewSLOTracker(nil) != nil {
		t.Fatal("empty objective list should yield nil tracker")
	}
}

func TestSLOTrackerRegister(t *testing.T) {
	objs, _ := ParseSLOs("query:p99<50ms")
	tr := NewSLOTracker(objs)
	tr.Observe("query", 10*time.Millisecond, false)
	tr.Observe("query", 80*time.Millisecond, false)
	r := NewRegistry()
	tr.Register(r)

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`tartree_slo_requests_total{slo="query:p99<50ms",outcome="good"} 1`,
		`tartree_slo_requests_total{slo="query:p99<50ms",outcome="bad"} 1`,
		`tartree_slo_burn_rate{slo="query:p99<50ms",window="5m"}`,
		`tartree_slo_burn_rate{slo="query:p99<50ms",window="1h"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}
