package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// span.go is the time-domain half of the observability layer: where trace.go
// aggregates thousands of identical hot-path events per query (tia_probe,
// queue_pop), this file records the coarse pipeline stages of one request as
// a proper span tree — start/end timestamps, parent edges, attributes and
// links to other traces — so "where did this request's latency go?" has an
// exact answer. The two compose: a request's span tree carries a handful of
// stage spans, and the per-stage aggregate Trace rides along as attributes.
//
// The design follows W3C Trace Context for propagation (Traceparent /
// ParseTraceparent) and exports finished traces in the Chrome trace_event
// format (WriteChromeTrace), so a flamegraph is one chrome://tracing or
// Perfetto load away. Everything is stdlib-only like the rest of the
// package, and — like *Trace and *TraceRing — a nil *Span is the disabled
// state: every method no-ops on a nil receiver, so instrumented paths pay a
// pointer test when span tracing is off.

// TraceID identifies one trace: a request's whole span tree. The zero value
// is invalid, as in W3C Trace Context.
type TraceID [16]byte

// SpanID identifies one span within a trace. The zero value is invalid.
type SpanID [8]byte

// String returns the lowercase-hex form used on the wire.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String returns the lowercase-hex form used on the wire.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// MarshalJSON renders the ID as its hex string (byte arrays would otherwise
// marshal as number arrays).
func (id TraceID) MarshalJSON() ([]byte, error) { return json.Marshal(id.String()) }

// UnmarshalJSON parses the hex string form.
func (id *TraceID) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if len(s) != 32 {
		return fmt.Errorf("obs: trace id %q: want 32 hex chars", s)
	}
	_, err := hex.Decode(id[:], []byte(s))
	return err
}

// MarshalJSON renders the ID as its hex string.
func (id SpanID) MarshalJSON() ([]byte, error) { return json.Marshal(id.String()) }

// UnmarshalJSON parses the hex string form.
func (id *SpanID) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if len(s) != 16 {
		return fmt.Errorf("obs: span id %q: want 16 hex chars", s)
	}
	_, err := hex.Decode(id[:], []byte(s))
	return err
}

// SpanContext is the propagatable identity of a span: what travels in a
// traceparent header, what a link points at.
type SpanContext struct {
	TraceID TraceID `json:"trace_id"`
	SpanID  SpanID  `json:"span_id"`
	Sampled bool    `json:"sampled"`
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the context as a W3C traceparent header value
// (version 00): "00-<trace-id>-<span-id>-<flags>".
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header value. Unknown versions
// are accepted as long as the version-00 prefix fields parse (per spec);
// all-zero trace or span IDs are rejected.
func ParseTraceparent(s string) (SpanContext, error) {
	var sc SpanContext
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return sc, fmt.Errorf("obs: malformed traceparent %q", s)
	}
	if len(parts[0]) != 2 || parts[0] == "ff" {
		return sc, fmt.Errorf("obs: traceparent version %q invalid", parts[0])
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(parts[1])); err != nil || len(parts[1]) != 32 {
		return sc, fmt.Errorf("obs: traceparent trace-id %q invalid", parts[1])
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(parts[2])); err != nil || len(parts[2]) != 16 {
		return sc, fmt.Errorf("obs: traceparent parent-id %q invalid", parts[2])
	}
	if len(parts[3]) != 2 {
		return sc, fmt.Errorf("obs: traceparent flags %q invalid", parts[3])
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(parts[3])); err != nil {
		return sc, fmt.Errorf("obs: traceparent flags %q invalid", parts[3])
	}
	sc.Sampled = flags[0]&1 == 1
	if sc.TraceID.IsZero() || sc.SpanID.IsZero() {
		return sc, fmt.Errorf("obs: traceparent %q has zero ids", s)
	}
	return sc, nil
}

// Attr is one key/value annotation on a span. Values should be simple
// (string, int, float, bool) so records marshal cleanly to JSON.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanRecord is the immutable snapshot of one finished span.
type SpanRecord struct {
	Name   string        `json:"name"`
	ID     SpanID        `json:"span_id"`
	Parent SpanID        `json:"parent_id,omitempty"` // zero for the root
	Start  time.Time     `json:"start"`
	End    time.Time     `json:"end"`
	Attrs  []Attr        `json:"attrs,omitempty"`
	Links  []SpanContext `json:"links,omitempty"`
}

// Duration returns End − Start.
func (r *SpanRecord) Duration() time.Duration { return r.End.Sub(r.Start) }

// FinishedTrace is a completed span tree as delivered to a TraceSink:
// Spans[0] is the root, the rest follow in start order.
type FinishedTrace struct {
	TraceID TraceID      `json:"trace_id"`
	Spans   []SpanRecord `json:"spans"`
}

// Root returns the root span record (nil on an empty trace).
func (t *FinishedTrace) Root() *SpanRecord {
	if t == nil || len(t.Spans) == 0 {
		return nil
	}
	return &t.Spans[0]
}

// Find returns the first span with the given name, or nil.
func (t *FinishedTrace) Find(name string) *SpanRecord {
	if t == nil {
		return nil
	}
	for i := range t.Spans {
		if t.Spans[i].Name == name {
			return &t.Spans[i]
		}
	}
	return nil
}

// Children returns the spans whose parent is id, in start order.
func (t *FinishedTrace) Children(id SpanID) []SpanRecord {
	if t == nil {
		return nil
	}
	var out []SpanRecord
	for _, s := range t.Spans {
		if s.Parent == id {
			out = append(out, s)
		}
	}
	return out
}

// SelfTime returns a span's own duration minus the durations of its direct
// children — the time the stage spent in its own code. Summed over a
// well-nested tree, self times telescope back to the root duration, which is
// how traces are reconciled against the independently measured request
// latency.
func (t *FinishedTrace) SelfTime(id SpanID) time.Duration {
	var span *SpanRecord
	for i := range t.Spans {
		if t.Spans[i].ID == id {
			span = &t.Spans[i]
			break
		}
	}
	if span == nil {
		return 0
	}
	d := span.Duration()
	for _, c := range t.Children(id) {
		d -= c.Duration()
	}
	return d
}

// TraceSink receives finished traces. Implementations must be safe for
// concurrent use; delivery happens on whatever goroutine finishes the root
// span, so sinks should return quickly.
type TraceSink interface {
	TraceFinished(t *FinishedTrace)
}

// spanTrace is the mutable in-flight trace shared by its spans.
type spanTrace struct {
	id   TraceID
	sink TraceSink

	mu    sync.Mutex
	spans []*Span
}

// Span is one in-flight timed operation in a trace. Spans are created with
// StartTrace (roots) and StartChild, annotated with SetAttr/AddLink, and
// closed with End; finishing the root delivers the whole tree to the
// trace's sink. All methods are safe for concurrent use and no-ops on a nil
// receiver.
type Span struct {
	t      *spanTrace
	id     SpanID
	parent SpanID
	name   string
	start  time.Time

	mu    sync.Mutex
	end   time.Time // zero while the span is open
	attrs []Attr
	links []SpanContext
}

// ID generation: a process-seeded splitmix64 stream. Not cryptographically
// random — trace IDs here are correlation handles, not secrets — but unique
// within and across processes with overwhelming probability.
var (
	idSeed    = uint64(time.Now().UnixNano())*0x9E3779B97F4A7C15 ^ 0xD1B54A32D192ED03
	idCounter atomic.Uint64
)

func nextID() uint64 {
	x := idSeed + idCounter.Add(1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 { // the all-zero ID is invalid on the wire
		x = 1
	}
	return x
}

func newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], nextID())
	return id
}

func newTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], nextID())
	binary.BigEndian.PutUint64(id[8:], nextID())
	return id
}

// StartTrace begins a new trace rooted at a span called name. When parent is
// valid (e.g. parsed from an incoming traceparent header) the trace joins
// the caller's trace ID and the root span's parent is the remote span;
// otherwise a fresh trace ID is minted. The finished tree is delivered to
// sink when the root span is Finished. A nil sink records nothing and
// returns a nil *Span, so callers can gate tracing entirely by the sink.
func StartTrace(name string, parent SpanContext, sink TraceSink) *Span {
	if sink == nil {
		return nil
	}
	tid := parent.TraceID
	if tid.IsZero() {
		tid = newTraceID()
	}
	t := &spanTrace{id: tid, sink: sink}
	root := &Span{
		t:      t,
		id:     newSpanID(),
		parent: parent.SpanID,
		name:   name,
		start:  time.Now(),
	}
	t.spans = append(t.spans, root)
	return root
}

// StartChild begins a child span of s.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		t:      s.t,
		id:     newSpanID(),
		parent: s.id,
		name:   name,
		start:  time.Now(),
	}
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, c)
	s.t.mu.Unlock()
	return c
}

// Context returns the span's propagatable identity.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.t.id, SpanID: s.id, Sampled: true}
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr annotates the span. Later values for the same key are appended,
// not replaced (attribute lists are short).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// AddLink records a causal link to a span in another trace — the shape
// group-commit batches (and, later, scatter-gather shards) use to connect
// one shared operation to the requests riding it.
func (s *Span) AddLink(sc SpanContext) {
	if s == nil || !sc.Valid() {
		return
	}
	s.mu.Lock()
	s.links = append(s.links, sc)
	s.mu.Unlock()
}

// AttachTrace folds an aggregate *Trace (the hot-path span statistics of
// trace.go) into the span as attributes, one per aggregate span name.
func (s *Span) AttachTrace(tr *Trace) {
	if s == nil || tr == nil {
		return
	}
	for _, sp := range tr.Spans() {
		s.SetAttr(sp.Name, fmt.Sprintf("%d× total %v max %v", sp.Count, sp.Total, sp.Max))
	}
}

// End closes the span. The first call wins; later calls (and End after
// Finish) are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Duration returns the span's elapsed time: End−Start once ended, time
// since start while still open.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Finish ends the span and, when s is the trace's root, snapshots the whole
// tree and delivers it to the sink. Open descendant spans are closed at the
// root's end time, so a handler that forgets an End still produces a
// well-formed tree.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.End()
	t := s.t
	t.mu.Lock()
	if len(t.spans) == 0 || t.spans[0] != s {
		t.mu.Unlock()
		return
	}
	spans := t.spans
	t.spans = nil
	t.mu.Unlock()

	ft := &FinishedTrace{TraceID: t.id, Spans: make([]SpanRecord, 0, len(spans))}
	rootEnd := func() time.Time {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.end
	}()
	for _, sp := range spans {
		sp.mu.Lock()
		rec := SpanRecord{
			Name:   sp.name,
			ID:     sp.id,
			Parent: sp.parent,
			Start:  sp.start,
			End:    sp.end,
			Attrs:  sp.attrs,
			Links:  sp.links,
		}
		sp.mu.Unlock()
		if rec.End.IsZero() {
			rec.End = rootEnd
		}
		if sp == s {
			rec.Parent = SpanID{} // the remote parent travels via TraceID only
		}
		ft.Spans = append(ft.Spans, rec)
	}
	t.sink.TraceFinished(ft)
}

// spanKey carries a *Span through a context.Context.
type spanKey struct{}

// ContextWithSpan returns a context carrying sp.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil. The nil return
// composes with the nil-receiver no-ops: code can unconditionally call
// SpanFromContext(ctx).StartChild("stage") and pay only pointer tests when
// tracing is off.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// TraceBuffer is a TraceSink keeping the N most recent finished traces in a
// ring, for the /v1/traces?format=chrome endpoint and tests. A nil
// *TraceBuffer discards traces.
type TraceBuffer struct {
	mu       sync.Mutex
	buf      []*FinishedTrace
	pos, n   int
	finished uint64
}

// NewTraceBuffer creates a buffer keeping the n most recent traces
// (n < 1 is treated as 1).
func NewTraceBuffer(n int) *TraceBuffer {
	if n < 1 {
		n = 1
	}
	return &TraceBuffer{buf: make([]*FinishedTrace, n)}
}

// TraceFinished implements TraceSink.
func (b *TraceBuffer) TraceFinished(t *FinishedTrace) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.buf[b.pos] = t
	b.pos = (b.pos + 1) % len(b.buf)
	if b.n < len(b.buf) {
		b.n++
	}
	b.finished++
	b.mu.Unlock()
}

// Len returns the number of buffered traces.
func (b *TraceBuffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Finished returns the total number of traces ever delivered.
func (b *TraceBuffer) Finished() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.finished
}

// Traces returns the buffered traces, oldest first.
func (b *TraceBuffer) Traces() []*FinishedTrace {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*FinishedTrace, 0, b.n)
	for i := 0; i < b.n; i++ {
		out = append(out, b.buf[(b.pos-b.n+i+len(b.buf))%len(b.buf)])
	}
	return out
}

// Find returns the buffered trace with the given ID, or nil.
func (b *TraceBuffer) Find(id TraceID) *FinishedTrace {
	for _, t := range b.Traces() {
		if t.TraceID == id {
			return t
		}
	}
	return nil
}

// MultiTraceSink fans finished traces out to every non-nil sink; it returns
// nil when no sinks remain, preserving "nil sink = tracing off".
func MultiTraceSink(sinks ...TraceSink) TraceSink {
	var live []TraceSink
	for _, s := range sinks {
		switch v := s.(type) {
		case nil:
		case *TraceBuffer:
			if v != nil {
				live = append(live, v)
			}
		case *FileTraceSink:
			if v != nil {
				live = append(live, v)
			}
		default:
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiSink(live)
}

type multiSink []TraceSink

func (m multiSink) TraceFinished(t *FinishedTrace) {
	for _, s := range m {
		s.TraceFinished(t)
	}
}

// chromeEvent is one Chrome trace_event record. Complete events ("ph":"X")
// carry their duration inline, which is exactly a span.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`  // microseconds
	Dur  int64          `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders traces in the Chrome trace_event JSON-array
// format, one complete event per line: loadable directly in chrome://tracing
// or Perfetto (both tolerate the unterminated array, so the same writer
// serves streamed files). Each trace gets its own tid so concurrent requests
// stack as separate tracks; span links and attributes travel in args.
func WriteChromeTrace(w io.Writer, traces []*FinishedTrace) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for tid, t := range traces {
		if err := writeChromeSpans(w, t, tid+1); err != nil {
			return err
		}
	}
	return nil
}

func writeChromeSpans(w io.Writer, t *FinishedTrace, tid int) error {
	for i := range t.Spans {
		s := &t.Spans[i]
		args := map[string]any{
			"trace_id": t.TraceID.String(),
			"span_id":  s.ID.String(),
		}
		if !s.Parent.IsZero() {
			args["parent_id"] = s.Parent.String()
		}
		for _, a := range s.Attrs {
			args["attr."+a.Key] = a.Value
		}
		if len(s.Links) > 0 {
			links := make([]string, len(s.Links))
			for j, l := range s.Links {
				links[j] = l.TraceID.String() + ":" + l.SpanID.String()
			}
			args["links"] = links
		}
		ev := chromeEvent{
			Name: s.Name,
			Cat:  "tartree",
			Ph:   "X",
			Ts:   s.Start.UnixMicro(),
			Dur:  s.Duration().Microseconds(),
			Pid:  1,
			Tid:  tid,
		}
		ev.Args = args
		if err := writeJSONLine(w, ev); err != nil {
			return err
		}
	}
	return nil
}

// writeJSONLine emits v as one trace_event line: the object, a trailing
// comma, a newline. Chrome's JSON-array reader accepts the dangling comma
// and missing "]", which keeps the format appendable.
func writeJSONLine(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, ',', '\n')
	_, err = w.Write(data)
	return err
}

// FileTraceSink appends finished traces to a writer as Chrome trace_event
// lines — the -trace-out sink. Safe for concurrent use.
type FileTraceSink struct {
	mu      sync.Mutex
	w       io.Writer
	started bool
	tid     int
	err     error // sticky write failure
}

// NewFileTraceSink wraps w; the caller keeps ownership (and closes it).
func NewFileTraceSink(w io.Writer) *FileTraceSink {
	return &FileTraceSink{w: w}
}

// TraceFinished implements TraceSink.
func (s *FileTraceSink) TraceFinished(t *FinishedTrace) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if !s.started {
		if _, s.err = io.WriteString(s.w, "[\n"); s.err != nil {
			return
		}
		s.started = true
	}
	s.tid++
	s.err = writeChromeSpans(s.w, t, s.tid)
}

// Err returns the first write failure, if any.
func (s *FileTraceSink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// WriteTree renders the trace as an indented, duration-annotated span tree:
//
//	query                    412µs
//	├─ admission_wait          3µs
//	├─ cache_probe             9µs
//	└─ search                380µs
//
// Orphan spans (parent not in the trace, e.g. joined from a remote parent)
// print at the top level after the root.
func (t *FinishedTrace) WriteTree(w io.Writer) {
	if t == nil || len(t.Spans) == 0 {
		fmt.Fprintln(w, "<empty trace>")
		return
	}
	byParent := make(map[SpanID][]SpanRecord)
	ids := make(map[SpanID]bool, len(t.Spans))
	for _, s := range t.Spans {
		ids[s.ID] = true
	}
	var roots []SpanRecord
	for _, s := range t.Spans {
		if !s.Parent.IsZero() && ids[s.Parent] {
			byParent[s.Parent] = append(byParent[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	for p := range byParent {
		sort.SliceStable(byParent[p], func(i, j int) bool {
			return byParent[p][i].Start.Before(byParent[p][j].Start)
		})
	}
	fmt.Fprintf(w, "trace %s\n", t.TraceID)
	var walk func(s SpanRecord, prefix string, last bool)
	walk = func(s SpanRecord, prefix string, last bool) {
		branch, childPrefix := "├─ ", prefix+"│  "
		if last {
			branch, childPrefix = "└─ ", prefix+"   "
		}
		var attrs string
		if len(s.Attrs) > 0 {
			parts := make([]string, 0, len(s.Attrs))
			for _, a := range s.Attrs {
				parts = append(parts, fmt.Sprintf("%s=%v", a.Key, a.Value))
			}
			attrs = "  {" + strings.Join(parts, ", ") + "}"
		}
		if len(s.Links) > 0 {
			attrs += fmt.Sprintf("  links=%d", len(s.Links))
		}
		fmt.Fprintf(w, "%s%s%-24s %10v%s\n", prefix, branch,
			s.Name, s.Duration().Round(time.Microsecond), attrs)
		kids := byParent[s.ID]
		for i, c := range kids {
			walk(c, childPrefix, i == len(kids)-1)
		}
	}
	for i, r := range roots {
		walk(r, "", i == len(roots)-1)
	}
}
