package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sink := NewTraceBuffer(4)
	sp := StartTrace("root", SpanContext{}, sink)
	sc := sp.Context()
	if !sc.Valid() {
		t.Fatalf("root context invalid: %+v", sc)
	}
	hdr := sc.Traceparent()
	got, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", hdr, err)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v want %+v", got, sc)
	}
	sp.Finish()
}

func TestParseTraceparentRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"00-abc-def-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff forbidden
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"00-XYZ92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // non-hex
	} {
		if _, err := ParseTraceparent(bad); err == nil {
			t.Errorf("ParseTraceparent(%q): want error", bad)
		}
	}
	// Sampled flag parses.
	sc, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Sampled {
		t.Error("flags 01: want sampled")
	}
	sc, err = ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Sampled {
		t.Error("flags 00: want unsampled")
	}
}

func TestSpanTreeStructure(t *testing.T) {
	sink := NewTraceBuffer(4)
	root := StartTrace("request", SpanContext{}, sink)
	a := root.StartChild("validate")
	a.SetAttr("checkins", 3)
	time.Sleep(time.Millisecond)
	a.End()
	b := root.StartChild("append")
	fsync := b.StartChild("fsync_batch")
	fsync.AddLink(SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: true})
	fsync.End()
	b.End()
	root.Finish()

	if sink.Len() != 1 {
		t.Fatalf("sink holds %d traces, want 1", sink.Len())
	}
	ft := sink.Traces()[0]
	if got := len(ft.Spans); got != 4 {
		t.Fatalf("trace has %d spans, want 4", got)
	}
	if ft.Root().Name != "request" {
		t.Fatalf("root span %q, want request", ft.Root().Name)
	}
	va := ft.Find("validate")
	if va == nil || va.Parent != ft.Root().ID {
		t.Fatalf("validate span missing or mis-parented: %+v", va)
	}
	if len(va.Attrs) != 1 || va.Attrs[0].Key != "checkins" {
		t.Fatalf("validate attrs: %+v", va.Attrs)
	}
	if va.Duration() <= 0 {
		t.Fatalf("validate duration %v, want > 0", va.Duration())
	}
	fb := ft.Find("fsync_batch")
	if fb == nil || fb.Parent != ft.Find("append").ID {
		t.Fatalf("fsync_batch mis-parented: %+v", fb)
	}
	if len(fb.Links) != 1 {
		t.Fatalf("fsync_batch links: %+v", fb.Links)
	}
	if kids := ft.Children(ft.Root().ID); len(kids) != 2 {
		t.Fatalf("root has %d children, want 2", len(kids))
	}
}

func TestSpanJoinsRemoteParent(t *testing.T) {
	remote := SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: true}
	sink := NewTraceBuffer(1)
	root := StartTrace("ingest", remote, sink)
	if root.Context().TraceID != remote.TraceID {
		t.Fatalf("trace id %v, want joined %v", root.Context().TraceID, remote.TraceID)
	}
	root.Finish()
	if got := sink.Traces()[0].TraceID; got != remote.TraceID {
		t.Fatalf("finished trace id %v, want %v", got, remote.TraceID)
	}
}

func TestNilSpanIsNoop(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", "v")
	sp.AddLink(SpanContext{})
	sp.End()
	sp.Finish()
	sp.AttachTrace(NewTrace())
	if c := sp.StartChild("x"); c != nil {
		t.Fatalf("nil span child: %v", c)
	}
	if sp.Context().Valid() {
		t.Fatal("nil span context should be invalid")
	}
	if sp.Duration() != 0 {
		t.Fatal("nil span duration should be 0")
	}
	// Nil sink disables the whole trace.
	if st := StartTrace("x", SpanContext{}, nil); st != nil {
		t.Fatalf("StartTrace with nil sink: %v", st)
	}
	// Nil context carries no span.
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("empty context should carry no span")
	}
}

func TestContextCarriesSpan(t *testing.T) {
	sink := NewTraceBuffer(1)
	sp := StartTrace("root", SpanContext{}, sink)
	ctx := ContextWithSpan(context.Background(), sp)
	if got := SpanFromContext(ctx); got != sp {
		t.Fatalf("SpanFromContext: got %v want %v", got, sp)
	}
	sp.Finish()
}

func TestFinishClosesOpenChildren(t *testing.T) {
	sink := NewTraceBuffer(1)
	root := StartTrace("root", SpanContext{}, sink)
	root.StartChild("leaked") // never ended
	root.Finish()
	ft := sink.Traces()[0]
	leaked := ft.Find("leaked")
	if leaked.End.IsZero() {
		t.Fatal("leaked span not closed by Finish")
	}
	if leaked.End.After(ft.Root().End) {
		t.Fatal("leaked span closed after root end")
	}
}

func TestSelfTimesTelescope(t *testing.T) {
	sink := NewTraceBuffer(1)
	root := StartTrace("root", SpanContext{}, sink)
	for i := 0; i < 3; i++ {
		c := root.StartChild("stage")
		time.Sleep(time.Millisecond)
		c.End()
	}
	root.Finish()
	ft := sink.Traces()[0]
	var sum time.Duration
	for _, s := range ft.Spans {
		sum += ft.SelfTime(s.ID)
	}
	rootDur := ft.Root().Duration()
	diff := sum - rootDur
	if diff < 0 {
		diff = -diff
	}
	if diff > rootDur/100 {
		t.Fatalf("self times sum %v vs root %v: diff %v", sum, rootDur, diff)
	}
}

func TestTraceBufferRing(t *testing.T) {
	sink := NewTraceBuffer(2)
	for i := 0; i < 3; i++ {
		sp := StartTrace("t", SpanContext{}, sink)
		sp.Finish()
	}
	if sink.Len() != 2 {
		t.Fatalf("ring len %d, want 2", sink.Len())
	}
	if sink.Finished() != 3 {
		t.Fatalf("finished %d, want 3", sink.Finished())
	}
	// Oldest-first order: the two survivors are the 2nd and 3rd traces.
	traces := sink.Traces()
	if len(traces) != 2 || traces[0].TraceID == traces[1].TraceID {
		t.Fatalf("traces: %v", traces)
	}
	if sink.Find(traces[1].TraceID) != traces[1] {
		t.Fatal("Find by id failed")
	}
}

func TestChromeExport(t *testing.T) {
	sink := NewTraceBuffer(2)
	root := StartTrace("query", SpanContext{}, sink)
	c := root.StartChild("search")
	c.AddLink(SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: true})
	c.End()
	root.Finish()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sink.Traces()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "[\n") {
		t.Fatalf("chrome export must open a JSON array, got %q", out[:2])
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")[1:]
	if len(lines) != 2 {
		t.Fatalf("got %d event lines, want 2", len(lines))
	}
	for _, line := range lines {
		line = strings.TrimSuffix(line, ",")
		var ev struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Dur  int64          `json:"dur"`
			Args map[string]any `json:"args"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event line %q: %v", line, err)
		}
		if ev.Ph != "X" {
			t.Fatalf("event phase %q, want X", ev.Ph)
		}
		if ev.Args["trace_id"] == "" {
			t.Fatal("event missing trace_id arg")
		}
	}
	if !strings.Contains(out, `"links"`) {
		t.Fatal("link missing from chrome export")
	}
}

func TestFileTraceSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewFileTraceSink(&buf)
	for i := 0; i < 2; i++ {
		sp := StartTrace("t", SpanContext{}, sink)
		sp.Finish()
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "[\n") {
		t.Fatal("file sink must open a JSON array once")
	}
	if strings.Count(out, "[\n") != 1 {
		t.Fatal("array opener written more than once")
	}
	if strings.Count(out, `"ph":"X"`) != 2 {
		t.Fatalf("want 2 events, got: %s", out)
	}
}

func TestSpanIDMarshalJSON(t *testing.T) {
	sc := SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: true}
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	var got SpanContext
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got != sc {
		t.Fatalf("json round trip: got %+v want %+v", got, sc)
	}
}

func TestConcurrentSpans(t *testing.T) {
	sink := NewTraceBuffer(1)
	root := StartTrace("root", SpanContext{}, sink)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.StartChild("worker")
			c.SetAttr("n", 1)
			c.End()
		}()
	}
	wg.Wait()
	root.Finish()
	if got := len(sink.Traces()[0].Spans); got != 9 {
		t.Fatalf("got %d spans, want 9", got)
	}
}

func TestWriteTree(t *testing.T) {
	sink := NewTraceBuffer(1)
	root := StartTrace("query", SpanContext{}, sink)
	c := root.StartChild("search")
	c.SetAttr("k", 10)
	c.End()
	root.Finish()
	var buf bytes.Buffer
	sink.Traces()[0].WriteTree(&buf)
	out := buf.String()
	for _, want := range []string{"trace ", "query", "└─ search", "k=10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree output missing %q:\n%s", want, out)
		}
	}
}

func TestIDsUnique(t *testing.T) {
	seen := make(map[SpanID]bool)
	for i := 0; i < 10000; i++ {
		id := newSpanID()
		if id.IsZero() || seen[id] {
			t.Fatalf("duplicate or zero span id at %d", i)
		}
		seen[id] = true
	}
}
