package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace records the timed spans of one query: queue pops, R-tree descents,
// TIA probes, normalizer computation. Spans with the same name are
// aggregated (count / total / max), because a single query performs
// thousands of probes and per-event storage would distort the thing being
// measured.
//
// A nil *Trace is the disabled state: every method is a no-op on a nil
// receiver, so instrumented code paths pay only a pointer test when tracing
// is off (bench_test.go's BenchmarkQuery_Instrumented/Bare pair keeps that
// overhead below 2%).
//
// A Trace is safe for concurrent use, though queries are typically traced
// from one goroutine.
type Trace struct {
	start time.Time
	mu    sync.Mutex
	order []string
	spans map[string]*SpanStats
}

// SpanStats aggregates the occurrences of one span name.
type SpanStats struct {
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
	Max   time.Duration `json:"max_ns"`
}

// SpanStat is one named aggregate in a trace report (the hot-path
// aggregation; the structured span tree lives in span.go).
type SpanStat struct {
	Name string `json:"name"`
	SpanStats
}

// NewTrace starts an enabled trace.
func NewTrace() *Trace {
	return &Trace{start: time.Now(), spans: make(map[string]*SpanStats)}
}

// Enabled reports whether the trace records anything.
func (t *Trace) Enabled() bool { return t != nil }

// Observe adds one occurrence of span name with duration d.
func (t *Trace) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	s := t.spans[name]
	if s == nil {
		s = &SpanStats{}
		t.spans[name] = s
		t.order = append(t.order, name)
	}
	s.Count++
	s.Total += d
	if d > s.Max {
		s.Max = d
	}
	t.mu.Unlock()
}

// noopEnd avoids allocating a closure per span when tracing is disabled.
var noopEnd = func() {}

// StartSpan begins a span and returns the function that ends it:
//
//	defer tr.StartSpan("tia_probe")()
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return noopEnd
	}
	begin := time.Now()
	return func() { t.Observe(name, time.Since(begin)) }
}

// Elapsed returns the wall-clock time since the trace started.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Spans returns the aggregated spans in first-observed order.
func (t *Trace) Spans() []SpanStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanStat, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, SpanStat{Name: name, SpanStats: *t.spans[name]})
	}
	return out
}

// String renders the trace as one line per span, busiest first.
func (t *Trace) String() string {
	if t == nil {
		return "<trace disabled>"
	}
	spans := t.Spans()
	sort.Slice(spans, func(i, j int) bool { return spans[i].Total > spans[j].Total })
	var b strings.Builder
	fmt.Fprintf(&b, "trace (%v elapsed):\n", t.Elapsed().Round(time.Microsecond))
	for _, s := range spans {
		fmt.Fprintf(&b, "  %-14s %6d× total %-10v max %v\n",
			s.Name, s.Count, s.Total.Round(time.Microsecond), s.Max.Round(time.Microsecond))
	}
	return b.String()
}
