package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	tr.Observe("x", time.Second) // must not panic
	tr.StartSpan("y")()
	if tr.Spans() != nil {
		t.Fatal("nil trace has spans")
	}
	if tr.Elapsed() != 0 {
		t.Fatal("nil trace has elapsed time")
	}
	if !strings.Contains(tr.String(), "disabled") {
		t.Fatalf("nil trace String = %q", tr.String())
	}
}

func TestTraceAggregatesSpans(t *testing.T) {
	tr := NewTrace()
	tr.Observe("probe", 2*time.Millisecond)
	tr.Observe("probe", 4*time.Millisecond)
	tr.Observe("expand", time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "probe" || spans[0].Count != 2 ||
		spans[0].Total != 6*time.Millisecond || spans[0].Max != 4*time.Millisecond {
		t.Errorf("probe span = %+v", spans[0])
	}
	if spans[1].Name != "expand" || spans[1].Count != 1 {
		t.Errorf("expand span = %+v", spans[1])
	}
	if !strings.Contains(tr.String(), "probe") {
		t.Errorf("String() missing span: %q", tr.String())
	}
}

func TestTraceStartSpanMeasures(t *testing.T) {
	tr := NewTrace()
	end := tr.StartSpan("s")
	time.Sleep(2 * time.Millisecond)
	end()
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Total <= 0 {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Observe("hot", time.Microsecond)
				if i%10 == 0 {
					tr.StartSpan("timed")()
				}
			}
		}()
	}
	// Readers race with the writers: Spans and String must stay consistent
	// snapshots under -race.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, s := range tr.Spans() {
					if s.Count < 0 || s.Total < 0 {
						t.Error("inconsistent span snapshot")
						return
					}
				}
				_ = tr.String()
			}
		}()
	}
	wg.Wait()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	counts := map[string]int64{}
	for _, s := range spans {
		counts[s.Name] = s.Count
	}
	if counts["hot"] != 4000 || counts["timed"] != 400 {
		t.Fatalf("span counts = %v, want hot=4000 timed=400", counts)
	}
}
