// Attributed page-traffic accounting. The paper's evaluation (§8) reports
// page accesses broken down by structure — R-tree nodes vs. TIA pages — so
// the sink path optionally carries an IOTag (component + tree level) with
// every event. Buffers emit tags via GetTag/PutTag; sinks that implement
// TagSink receive them, everything else keeps seeing the untagged Sink
// calls. AttrCounterSink accumulates both the flat Stats totals and the
// per-tag IOBreakdown, with the invariant that the breakdown always sums
// back to the flat totals (untagged traffic lands in CompUnknown).
package pagestore

import (
	"bytes"
	"fmt"
	"sync/atomic"
)

// Component identifies which index structure caused a page access.
type Component uint8

const (
	// CompUnknown collects traffic that reached the buffer without an
	// attribution tag (e.g. Flush write-backs, legacy Get/Put callers).
	CompUnknown Component = iota
	// CompRTreeInternal is an internal (non-leaf) TAR-tree node access.
	CompRTreeInternal
	// CompRTreeLeaf is a TAR-tree leaf node access.
	CompRTreeLeaf
	// CompTIABTree is a page of a B+-tree-backed TIA.
	CompTIABTree
	// CompTIAMVBT is a page of an MVBT-backed TIA.
	CompTIAMVBT
	// CompAggCache is a shared aggregate-cache probe (internal/aggcache),
	// not a page access: a Hit is a TIA probe or whole query answered from
	// the cache (so the traffic the backend would have seen is absent from
	// the TIA cells), a Miss is a probe that fell through to the backend.
	// Queries record these cells so per-query I/O stays auditable with
	// caching on — TIA cells still reconcile exactly with backend traffic,
	// and the aggcache cells explain the reads that never happened. Level 0
	// holds aggregate probes, level 1 whole-result lookups.
	CompAggCache
	// CompShard is a scatter-gather round-trip to one shard process, not a
	// page access: the coordinator records one read per shard round at
	// level = shard index (clamped), so a distributed query's io breakdown
	// attributes its fan-out the same way local queries attribute pages.
	CompShard
	// NumComponents bounds the Component enum (array dimension).
	NumComponents
)

var componentNames = [NumComponents]string{
	"unknown", "rtree-internal", "rtree-leaf", "tia-btree", "tia-mvbt", "agg-cache", "shard",
}

// String returns the stable label used in metrics and JSON output.
func (c Component) String() string {
	if c >= NumComponents {
		return "unknown"
	}
	return componentNames[c]
}

// MaxIOLevels bounds the per-component level dimension of an IOBreakdown.
// Level 0 is the leaf level and levels grow toward the root; trees deeper
// than this clamp their upper levels into the last slot (the data sets in
// the paper's setup never exceed height 8).
const MaxIOLevels = 8

// IOTag attributes one page access to a component and tree level.
// The zero IOTag means "unattributed" and maps to CompUnknown.
type IOTag struct {
	Comp  Component
	Level uint8
	// Acct, when non-nil, is the query-local accounting context this
	// access is additionally charged to (see IOAcct). Buffers carry it
	// through evictions and write-backs, so side-effect traffic lands in
	// the acct of the access that forced it — the same attribution rule
	// TagSink documents.
	Acct *IOAcct
}

// WithAcct returns a copy of t that charges its traffic to a as well as to
// the buffer's sinks. A nil a leaves the tag unattributed to any acct.
func (t IOTag) WithAcct(a *IOAcct) IOTag {
	t.Acct = a
	return t
}

// IOAcct is a query-local I/O accounting context. A query (or any other
// logical unit of work) owns one IOAcct, stamps it into the IOTags of its
// page accesses (IOTag.WithAcct), and afterwards reads its own traffic off
// Stats and IO — no diffing of global shared counters, so per-query numbers
// stay exact while any number of queries run concurrently.
//
// An IOAcct must not be shared by concurrently running units of work: its
// fields are plain values and the owning query's goroutine is expected to
// be the only one whose accesses carry it. (Buffers may record into it
// while holding only a read lock; that is safe precisely because distinct
// concurrent queries carry distinct accts.)
type IOAcct struct {
	// Stats totals the traffic of the accesses carrying this acct,
	// including evictions and write-backs those accesses forced.
	Stats Stats
	// IO, when non-nil, additionally receives the attributed
	// (component, level) breakdown of the same traffic.
	IO *IOBreakdown
}

func (a *IOAcct) read(t IOTag, hit bool) {
	a.Stats.LogicalReads++
	if !hit {
		a.Stats.PhysicalReads++
	}
	if a.IO != nil {
		a.IO.AddRead(t, hit)
	}
}

func (a *IOAcct) write(t IOTag, physical bool) {
	if physical {
		a.Stats.PhysicalWrites++
	} else {
		a.Stats.LogicalWrites++
	}
	if a.IO != nil {
		a.IO.AddWrite(t, physical)
	}
}

func (a *IOAcct) evicted(t IOTag, dirty bool) {
	_ = dirty // the dirty write-back was already counted via write()
	a.Stats.Evictions++
	if a.IO != nil {
		a.IO.AddEviction(t)
	}
}

// NewIOTag builds a tag, clamping out-of-range levels into the breakdown's
// fixed dimensions. Level 0 is the leaf level.
func NewIOTag(c Component, level int) IOTag {
	if c >= NumComponents {
		c = CompUnknown
	}
	switch {
	case level < 0:
		level = 0
	case level >= MaxIOLevels:
		level = MaxIOLevels - 1
	}
	return IOTag{Comp: c, Level: uint8(level)}
}

// clamp maps any tag (including ones constructed directly with
// out-of-range fields) onto valid array indices.
func (t IOTag) clamp() (int, int) {
	c, l := int(t.Comp), int(t.Level)
	if c >= int(NumComponents) {
		c = int(CompUnknown)
	}
	if l >= MaxIOLevels {
		l = MaxIOLevels - 1
	}
	return c, l
}

// IOCell is the traffic of one (component, level) pair. Hits+Misses is the
// logical read count; Misses is the physical read count.
type IOCell struct {
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	LogicalWrites  int64 `json:"logical_writes,omitempty"`
	PhysicalWrites int64 `json:"physical_writes,omitempty"`
	Evictions      int64 `json:"evictions,omitempty"`
}

// IsZero reports whether the cell saw no traffic at all.
func (c IOCell) IsZero() bool { return c == IOCell{} }

func (c IOCell) add(o IOCell) IOCell {
	return IOCell{
		Hits:           c.Hits + o.Hits,
		Misses:         c.Misses + o.Misses,
		LogicalWrites:  c.LogicalWrites + o.LogicalWrites,
		PhysicalWrites: c.PhysicalWrites + o.PhysicalWrites,
		Evictions:      c.Evictions + o.Evictions,
	}
}

func (c IOCell) sub(o IOCell) IOCell {
	return IOCell{
		Hits:           c.Hits - o.Hits,
		Misses:         c.Misses - o.Misses,
		LogicalWrites:  c.LogicalWrites - o.LogicalWrites,
		PhysicalWrites: c.PhysicalWrites - o.PhysicalWrites,
		Evictions:      c.Evictions - o.Evictions,
	}
}

// IOBreakdown is page traffic attributed by (component, level). It is a
// fixed-size value type so QueryStats can carry one per query without
// allocation, and so two breakdowns diff with plain arithmetic.
type IOBreakdown [NumComponents][MaxIOLevels]IOCell

// AddRead records one logical read for tag (miss = physical).
func (b *IOBreakdown) AddRead(t IOTag, hit bool) {
	c, l := t.clamp()
	if hit {
		b[c][l].Hits++
	} else {
		b[c][l].Misses++
	}
}

// AddWrite records one write for tag.
func (b *IOBreakdown) AddWrite(t IOTag, physical bool) {
	c, l := t.clamp()
	if physical {
		b[c][l].PhysicalWrites++
	} else {
		b[c][l].LogicalWrites++
	}
}

// AddEviction records one frame eviction for tag.
func (b *IOBreakdown) AddEviction(t IOTag) {
	c, l := t.clamp()
	b[c][l].Evictions++
}

// Add accumulates o into b cell-wise.
func (b *IOBreakdown) Add(o *IOBreakdown) {
	for c := range b {
		for l := range b[c] {
			b[c][l] = b[c][l].add(o[c][l])
		}
	}
}

// Sub returns b − o cell-wise.
func (b IOBreakdown) Sub(o IOBreakdown) IOBreakdown {
	for c := range b {
		for l := range b[c] {
			b[c][l] = b[c][l].sub(o[c][l])
		}
	}
	return b
}

// Total folds the breakdown back into flat Stats. For an AttrCounterSink
// this equals Snapshot() exactly — the conservation invariant the
// accounting tests pin down.
func (b *IOBreakdown) Total() Stats {
	var s Stats
	for c := range b {
		for l := range b[c] {
			cell := b[c][l]
			s.LogicalReads += cell.Hits + cell.Misses
			s.PhysicalReads += cell.Misses
			s.LogicalWrites += cell.LogicalWrites
			s.PhysicalWrites += cell.PhysicalWrites
			s.Evictions += cell.Evictions
		}
	}
	return s
}

// Component folds all levels of one component into a single cell.
func (b *IOBreakdown) Component(c Component) IOCell {
	var sum IOCell
	if c >= NumComponents {
		return sum
	}
	for l := range b[c] {
		sum = sum.add(b[c][l])
	}
	return sum
}

// IsZero reports whether no cell saw any traffic.
func (b *IOBreakdown) IsZero() bool {
	for c := range b {
		for l := range b[c] {
			if !b[c][l].IsZero() {
				return false
			}
		}
	}
	return true
}

// Each calls fn for every non-zero cell, components in enum order, levels
// leaf first.
func (b *IOBreakdown) Each(fn func(c Component, level int, cell IOCell)) {
	for c := range b {
		for l := range b[c] {
			if !b[c][l].IsZero() {
				fn(Component(c), l, b[c][l])
			}
		}
	}
}

// MarshalJSON emits only the non-zero cells, as a flat array of
// {component, level, ...cell} objects — the dense 2-D array would be
// almost entirely zeros.
func (b IOBreakdown) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('[')
	first := true
	b.Each(func(c Component, level int, cell IOCell) {
		if !first {
			buf.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&buf, `{"component":%q,"level":%d,"hits":%d,"misses":%d`,
			c.String(), level, cell.Hits, cell.Misses)
		if cell.LogicalWrites != 0 {
			fmt.Fprintf(&buf, `,"logical_writes":%d`, cell.LogicalWrites)
		}
		if cell.PhysicalWrites != 0 {
			fmt.Fprintf(&buf, `,"physical_writes":%d`, cell.PhysicalWrites)
		}
		if cell.Evictions != 0 {
			fmt.Fprintf(&buf, `,"evictions":%d`, cell.Evictions)
		}
		buf.WriteByte('}')
	})
	buf.WriteByte(']')
	return buf.Bytes(), nil
}

// TagSink is the attributed extension of Sink. Buffers type-assert each
// attached sink once at attach time; sinks implementing TagSink receive
// the tagged calls instead of (not in addition to) the plain Sink calls.
type TagSink interface {
	Sink
	// PageReadTag is PageRead with the attribution tag of the access.
	PageReadTag(tag IOTag, hit bool)
	// PageWriteTag is PageWrite with the attribution tag of the access.
	PageWriteTag(tag IOTag, physical bool)
	// PageEvictedTag is PageEvicted with the tag of the access that
	// triggered the eviction (evicting a frame is a side effect of
	// loading another page; the write-back, if any, carries the same tag).
	PageEvictedTag(tag IOTag, dirty bool)
}

// atomicIOCell is the lock-free accumulator behind one breakdown cell.
type atomicIOCell struct {
	hits           atomic.Int64
	misses         atomic.Int64
	logicalWrites  atomic.Int64
	physicalWrites atomic.Int64
	evictions      atomic.Int64
}

func (c *atomicIOCell) load() IOCell {
	return IOCell{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		LogicalWrites:  c.logicalWrites.Load(),
		PhysicalWrites: c.physicalWrites.Load(),
		Evictions:      c.evictions.Load(),
	}
}

// AttrCounterSink is a CounterSink that additionally attributes traffic by
// (component, level). The flat totals stay O(5 atomics) to snapshot — the
// per-probe Stats diff in the scorer's hot loop keeps using Snapshot() —
// while Breakdown() walks all cells and is meant to be read once per query.
//
// Like CounterSink it is cumulative and has no reset; readers that need
// windows diff breakdowns (see tia factory ResetStats).
type AttrCounterSink struct {
	flat  CounterSink
	cells [NumComponents][MaxIOLevels]atomicIOCell
}

// Snapshot returns the flat totals (identical to a plain CounterSink).
func (s *AttrCounterSink) Snapshot() Stats { return s.flat.Snapshot() }

// Breakdown returns the current attributed totals. Breakdown().Total() ==
// Snapshot() holds whenever no writer is mid-event.
func (s *AttrCounterSink) Breakdown() IOBreakdown {
	var b IOBreakdown
	for c := range s.cells {
		for l := range s.cells[c] {
			b[c][l] = s.cells[c][l].load()
		}
	}
	return b
}

// PageRead implements Sink; untagged reads land in CompUnknown.
func (s *AttrCounterSink) PageRead(hit bool) { s.PageReadTag(IOTag{}, hit) }

// PageWrite implements Sink; untagged writes land in CompUnknown.
func (s *AttrCounterSink) PageWrite(physical bool) { s.PageWriteTag(IOTag{}, physical) }

// PageEvicted implements Sink; untagged evictions land in CompUnknown.
func (s *AttrCounterSink) PageEvicted(dirty bool) { s.PageEvictedTag(IOTag{}, dirty) }

// PageReadTag implements TagSink.
func (s *AttrCounterSink) PageReadTag(tag IOTag, hit bool) {
	s.flat.PageRead(hit)
	c, l := tag.clamp()
	if hit {
		s.cells[c][l].hits.Add(1)
	} else {
		s.cells[c][l].misses.Add(1)
	}
}

// PageWriteTag implements TagSink.
func (s *AttrCounterSink) PageWriteTag(tag IOTag, physical bool) {
	s.flat.PageWrite(physical)
	c, l := tag.clamp()
	if physical {
		s.cells[c][l].physicalWrites.Add(1)
	} else {
		s.cells[c][l].logicalWrites.Add(1)
	}
}

// PageEvictedTag implements TagSink.
func (s *AttrCounterSink) PageEvictedTag(tag IOTag, dirty bool) {
	s.flat.PageEvicted(dirty)
	c, l := tag.clamp()
	s.cells[c][l].evictions.Add(1)
}
