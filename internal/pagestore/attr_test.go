package pagestore

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestIOTagClamp(t *testing.T) {
	if tag := NewIOTag(CompTIABTree, -3); tag.Level != 0 {
		t.Errorf("negative level clamped to %d, want 0", tag.Level)
	}
	if tag := NewIOTag(CompTIABTree, MaxIOLevels+5); tag.Level != MaxIOLevels-1 {
		t.Errorf("oversized level clamped to %d, want %d", tag.Level, MaxIOLevels-1)
	}
	if tag := NewIOTag(Component(200), 1); tag.Comp != CompUnknown {
		t.Errorf("invalid component clamped to %v, want unknown", tag.Comp)
	}
	// A hand-built out-of-range tag must still land inside the array.
	var b IOBreakdown
	b.AddRead(IOTag{Comp: Component(250), Level: 250}, true)
	if got := b[CompUnknown][MaxIOLevels-1].Hits; got != 1 {
		t.Errorf("raw out-of-range tag landed wrong: %+v", b)
	}
}

func TestComponentString(t *testing.T) {
	want := map[Component]string{
		CompUnknown:       "unknown",
		CompRTreeInternal: "rtree-internal",
		CompRTreeLeaf:     "rtree-leaf",
		CompTIABTree:      "tia-btree",
		CompTIAMVBT:       "tia-mvbt",
		Component(99):     "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Component(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
}

// TestAttrSinkTaggedBuffer drives one buffer with tagged and untagged
// traffic, forcing evictions and dirty write-backs, and checks every
// conservation identity: breakdown total == sink snapshot == buffer stats,
// with each event in the cell of its tag (evictions under the tag of the
// access that forced them, untagged traffic under CompUnknown).
func TestAttrSinkTaggedBuffer(t *testing.T) {
	f := NewMemFile(64)
	var sink AttrCounterSink
	b := NewBufferWithSinks(f, 2, &sink)

	var ids []PageID
	for i := 0; i < 3; i++ {
		id, err := b.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	btag := NewIOTag(CompTIABTree, 0)
	mtag := NewIOTag(CompTIAMVBT, 1)
	data := make([]byte, 64)

	// Two tagged dirty pages fill the buffer.
	if err := b.PutTag(ids[0], data, btag); err != nil {
		t.Fatal(err)
	}
	if err := b.PutTag(ids[1], data, mtag); err != nil {
		t.Fatal(err)
	}
	// Loading a third page under btag evicts ids[0] (dirty): the eviction
	// and its physical write-back must be attributed to btag.
	if _, err := b.GetTag(ids[2], btag); err != nil {
		t.Fatal(err)
	}
	// A hit on the mvbt page, then untagged traffic.
	if _, err := b.GetTag(ids[1], mtag); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get(ids[2]); err != nil { // untagged hit
		t.Fatal(err)
	}

	bd := sink.Breakdown()
	if got, want := bd.Total(), sink.Snapshot(); got != want {
		t.Fatalf("breakdown total %+v != sink snapshot %+v", got, want)
	}
	if got, want := sink.Snapshot(), b.Stats(); got != want {
		t.Fatalf("sink snapshot %+v != buffer stats %+v", got, want)
	}

	bcell := bd[CompTIABTree][0]
	if bcell.Misses != 1 || bcell.LogicalWrites != 1 || bcell.PhysicalWrites != 1 || bcell.Evictions != 1 {
		t.Errorf("btree cell = %+v, want 1 miss, 1 logical + 1 physical write, 1 eviction", bcell)
	}
	mcell := bd[CompTIAMVBT][1]
	if mcell.Hits != 1 || mcell.LogicalWrites != 1 {
		t.Errorf("mvbt cell = %+v, want 1 hit, 1 logical write", mcell)
	}
	ucell := bd[CompUnknown][0]
	if ucell.Hits != 1 {
		t.Errorf("unknown cell = %+v, want the untagged hit", ucell)
	}
}

// TestAttrSinkSharedBuffers checks the aggregate identity when one sink is
// shared by several buffers: the sum of the buffers' own Stats equals both
// the sink snapshot and the breakdown total.
func TestAttrSinkSharedBuffers(t *testing.T) {
	f := NewMemFile(64)
	var sink AttrCounterSink
	b1 := NewBufferWithSinks(f, 1, &sink)
	b2 := NewBufferWithSinks(f, 1, &sink)
	data := make([]byte, 64)
	tagA := NewIOTag(CompTIABTree, 0)
	tagB := NewIOTag(CompTIABTree, 1)

	for i := 0; i < 4; i++ {
		id, err := b1.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := b1.PutTag(id, data, tagA); err != nil {
			t.Fatal(err)
		}
		if _, err := b2.GetTag(id, tagB); err != nil {
			t.Fatal(err)
		}
	}
	if err := b1.Flush(); err != nil { // untagged physical writes
		t.Fatal(err)
	}
	sum := b1.Stats().Add(b2.Stats())
	if got := sink.Snapshot(); got != sum {
		t.Fatalf("sink snapshot %+v != summed buffer stats %+v", got, sum)
	}
	bd := sink.Breakdown()
	if got := bd.Total(); got != sum {
		t.Fatalf("breakdown total %+v != summed buffer stats %+v", got, sum)
	}
	if bd[CompTIABTree][1].Misses == 0 {
		t.Error("reads through b2 not attributed to level 1")
	}
	if bd[CompUnknown][0].PhysicalWrites == 0 {
		t.Error("flush write-backs not attributed to unknown")
	}
}

func TestIOBreakdownSubAddComponent(t *testing.T) {
	var a, b IOBreakdown
	tag := NewIOTag(CompRTreeInternal, 2)
	a.AddRead(tag, true)
	a.AddRead(tag, false)
	a.AddWrite(tag, true)
	a.AddEviction(tag)
	b.AddRead(tag, true)
	d := a.Sub(b)
	want := IOCell{Misses: 1, PhysicalWrites: 1, Evictions: 1}
	if got := d[CompRTreeInternal][2]; got != want {
		t.Errorf("Sub cell = %+v, want %+v", got, want)
	}
	d.Add(&b)
	if got := d.Component(CompRTreeInternal); got != (IOCell{Hits: 1, Misses: 1, PhysicalWrites: 1, Evictions: 1}) {
		t.Errorf("Component fold = %+v", got)
	}
	if d.IsZero() {
		t.Error("IsZero on non-empty breakdown")
	}
	var zero IOBreakdown
	if !zero.IsZero() {
		t.Error("zero breakdown not IsZero")
	}
}

func TestIOBreakdownJSON(t *testing.T) {
	var b IOBreakdown
	b.AddRead(NewIOTag(CompRTreeLeaf, 0), true)
	b.AddRead(NewIOTag(CompTIABTree, 1), false)
	out, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{`"component":"rtree-leaf"`, `"component":"tia-btree"`, `"level":1`, `"misses":1`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON %s missing %s", s, want)
		}
	}
	if strings.Contains(s, "tia-mvbt") {
		t.Errorf("JSON %s contains zero cells", s)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	if len(decoded) != 2 {
		t.Errorf("JSON has %d rows, want 2", len(decoded))
	}
}
