package pagestore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBufferConcurrentHammer drives one small Buffer from many goroutines —
// reads of shared pages, reads and write-backs of per-worker pages, constant
// eviction pressure from the tiny slot count — and checks, with the race
// detector as the memory-safety referee, that the accounting stays exactly
// conserved and no write-back is lost.
func TestBufferConcurrentHammer(t *testing.T) {
	const (
		workers  = 8
		iters    = 400
		slots    = 4 // far fewer than the working set: every miss evicts
		pageSize = 64
		sharedN  = 6 // read-only pages touched by everyone
		ownedN   = 3 // read-write pages per worker, disjoint ownership
	)
	f := NewMemFile(pageSize)
	var sink CounterSink
	b := NewBufferWithSink(f, slots, &sink)

	pattern := func(seed byte) []byte {
		data := make([]byte, pageSize)
		for i := range data {
			data[i] = seed + byte(i)
		}
		return data
	}

	shared := make([]PageID, sharedN)
	for i := range shared {
		id, err := b.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		shared[i] = id
		if err := b.Put(id, pattern(byte(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	var owned [workers][ownedN]PageID
	for w := 0; w < workers; w++ {
		for i := 0; i < ownedN; i++ {
			id, err := b.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			owned[w][i] = id
			if err := b.Put(id, pattern(0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	base := b.Stats()

	// Each worker carries a query-local acct; their sum must equal the
	// buffer's own delta exactly — every access lands in precisely one acct,
	// including evictions and write-backs attributed to the access that
	// forced them.
	accts := make([]IOAcct, workers)
	finals := make([][ownedN]byte, workers) // each worker's last-written seeds
	var gets, puts [workers]int64
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			tag := IOTag{Comp: CompTIABTree, Level: uint8(w % MaxIOLevels)}.WithAcct(&accts[w])
			last := make([]byte, ownedN) // seed of the last value written per owned page
			for i := 0; i < iters; i++ {
				switch op := r.Intn(10); {
				case op < 4: // read a shared, read-only page
					k := r.Intn(sharedN)
					data, err := b.GetTag(shared[k], tag)
					if err != nil {
						errs <- err
						return
					}
					gets[w]++
					if !bytes.Equal(data, pattern(byte(100+k))) {
						errs <- fmt.Errorf("worker %d: shared page %d corrupted", w, k)
						return
					}
				case op < 7: // read one of our own pages
					k := r.Intn(ownedN)
					data, err := b.GetTag(owned[w][k], tag)
					if err != nil {
						errs <- err
						return
					}
					gets[w]++
					if !bytes.Equal(data, pattern(last[k])) {
						errs <- fmt.Errorf("worker %d: owned page %d lost a write (seed %d)", w, k, last[k])
						return
					}
				default: // overwrite one of our own pages
					k := r.Intn(ownedN)
					last[k] = byte(1 + r.Intn(90))
					if err := b.PutTag(owned[w][k], pattern(last[k]), tag); err != nil {
						errs <- err
						return
					}
					puts[w]++
				}
			}
			// Park the final values (disjoint index per worker) so the main
			// goroutine can verify the flushed file.
			copy(finals[w][:], last)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Conservation: buffer stats, the attached sink, and the sum of the
	// per-worker accts must all agree on the traffic since the baseline.
	delta := b.Stats().Sub(base)
	if got := sink.Snapshot(); got != b.Stats() {
		t.Errorf("sink %+v != buffer stats %+v", got, b.Stats())
	}
	var acctSum Stats
	var wantReads, wantWrites int64
	for w := range accts {
		acctSum = acctSum.Add(accts[w].Stats)
		wantReads += gets[w]
		wantWrites += puts[w]
	}
	if acctSum != delta {
		t.Errorf("sum of per-worker accts %+v != buffer delta %+v", acctSum, delta)
	}
	if delta.LogicalReads != wantReads {
		t.Errorf("LogicalReads = %d, want %d (one per Get)", delta.LogicalReads, wantReads)
	}
	if delta.LogicalWrites != wantWrites {
		t.Errorf("LogicalWrites = %d, want %d (one per Put)", delta.LogicalWrites, wantWrites)
	}
	if delta.Hits()+delta.Misses() != delta.LogicalReads {
		t.Errorf("hits %d + misses %d != logical reads %d", delta.Hits(), delta.Misses(), delta.LogicalReads)
	}
	// Every eviction is a side effect of faulting a page in, which is either
	// a read miss or a Put to a non-resident page.
	if delta.Evictions > delta.PhysicalReads+delta.LogicalWrites {
		t.Errorf("evictions %d exceed possible faults (%d misses + %d puts)",
			delta.Evictions, delta.PhysicalReads, delta.LogicalWrites)
	}
	if delta.Evictions == 0 {
		t.Error("no evictions: the hammer did not create buffer pressure")
	}

	// No lost write-backs: after a flush the file holds each page's final
	// value.
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, pageSize)
	for k, id := range shared {
		if err := f.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, pattern(byte(100+k))) {
			t.Errorf("shared page %d corrupted on disk", k)
		}
	}
	for w := 0; w < workers; w++ {
		for k := 0; k < ownedN; k++ {
			if err := f.ReadPage(owned[w][k], buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, pattern(finals[w][k])) {
				t.Errorf("worker %d page %d: disk content does not match last write (seed %d)",
					w, k, finals[w][k])
			}
		}
	}
}

// TestBufferConcurrentReadsSamePage checks the documented guarantee that
// concurrent readers of the same page are safe and all see the same bytes.
func TestBufferConcurrentReadsSamePage(t *testing.T) {
	f := NewMemFile(32)
	b := NewBuffer(f, 2)
	id, err := b.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{7}, 32)
	if err := b.Put(id, want); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				data, err := b.Get(id)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(data, want) {
					errs <- fmt.Errorf("reader saw wrong bytes")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s := b.Stats(); s.Hits() < 8*200-2 {
		t.Errorf("expected nearly all hits, got %+v", s)
	}
}

func TestSlowFile(t *testing.T) {
	inner := NewMemFile(32)
	sf := NewSlowFile(inner, 0)
	id, err := sf.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{3}, 32)
	if err := sf.WritePage(id, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 32)
	if err := sf.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("SlowFile did not pass data through")
	}
	sf.SetDelay(5 * time.Millisecond)
	if sf.Delay() != 5*time.Millisecond {
		t.Errorf("Delay() = %v", sf.Delay())
	}
	begin := time.Now()
	if err := sf.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(begin); elapsed < 5*time.Millisecond {
		t.Errorf("read took %v, want >= 5ms", elapsed)
	}
}

// BenchmarkBufferGetHit measures the warm-hit path — after the two-tier
// locking change a hit takes only the shared read lock.
func BenchmarkBufferGetHit(b *testing.B) {
	f := NewMemFile(1024)
	buf := NewBuffer(f, 10)
	id, err := buf.Alloc()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := buf.Get(id); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := buf.Get(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBufferGetHitParallel is the contended variant: all workers
// hammer hits on the same warm buffer. Under the old single-mutex design
// this serialized completely.
func BenchmarkBufferGetHitParallel(b *testing.B) {
	f := NewMemFile(1024)
	buf := NewBuffer(f, 10)
	ids := make([]PageID, 8)
	for i := range ids {
		id, err := buf.Alloc()
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
		if _, err := buf.Get(id); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := buf.Get(ids[i%len(ids)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}
