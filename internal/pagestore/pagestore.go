// Package pagestore implements the paged storage layer beneath the
// disk-resident temporal indexes (TIAs) of the TAR-tree.
//
// The experimental setup in the paper keeps the R-tree in memory while
// every TIA is disk based and "assigned a maximum of 10 buffer slots".
// This package provides exactly that machinery: a page file abstraction
// (with an in-memory simulated disk and an OS-file implementation), and a
// small per-index LRU buffer pool that counts logical and physical page
// accesses so experiments can report node accesses precisely.
package pagestore

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// PageID identifies a page within a File. Zero is never a valid page, so it
// can serve as a nil pointer inside page payloads.
type PageID uint32

// InvalidPage is the zero PageID; it never refers to a real page.
const InvalidPage PageID = 0

// ErrPageBounds is returned when a PageID does not refer to an allocated
// page.
var ErrPageBounds = errors.New("pagestore: page id out of bounds")

// File is a fixed-page-size random access storage device.
//
// Implementations must be safe for use by a single goroutine; callers that
// share a File across goroutines must synchronize externally (the Buffer
// type does so).
type File interface {
	// PageSize returns the size in bytes of every page.
	PageSize() int
	// Alloc reserves a new page (reusing freed pages when possible) and
	// returns its id. The page contents are zeroed.
	Alloc() (PageID, error)
	// ReadPage copies the content of page id into buf, which must be at
	// least PageSize bytes long.
	ReadPage(id PageID, buf []byte) error
	// WritePage stores data (at least PageSize bytes) as the content of
	// page id.
	WritePage(id PageID, data []byte) error
	// Free releases page id for reuse.
	Free(id PageID) error
	// NumPages returns the number of currently allocated pages.
	NumPages() int
	// Close releases underlying resources.
	Close() error
}

// MemFile is an in-memory File: a simulated disk. It is the default backend
// for experiments because page accesses can be counted without paying for
// real I/O, mirroring how the paper reports node accesses as the
// machine-independent cost metric.
type MemFile struct {
	pageSize int
	pages    [][]byte // index = PageID-1; nil entry means freed
	free     []PageID
	n        int
}

// NewMemFile creates an in-memory page file with the given page size.
func NewMemFile(pageSize int) *MemFile {
	if pageSize <= 0 {
		panic("pagestore: page size must be positive")
	}
	return &MemFile{pageSize: pageSize}
}

// PageSize implements File.
func (f *MemFile) PageSize() int { return f.pageSize }

// Alloc implements File.
func (f *MemFile) Alloc() (PageID, error) {
	if n := len(f.free); n > 0 {
		id := f.free[n-1]
		f.free = f.free[:n-1]
		f.pages[id-1] = make([]byte, f.pageSize)
		f.n++
		return id, nil
	}
	f.pages = append(f.pages, make([]byte, f.pageSize))
	f.n++
	return PageID(len(f.pages)), nil
}

func (f *MemFile) page(id PageID) ([]byte, error) {
	if id == InvalidPage || int(id) > len(f.pages) || f.pages[id-1] == nil {
		return nil, fmt.Errorf("%w: %d", ErrPageBounds, id)
	}
	return f.pages[id-1], nil
}

// ReadPage implements File.
func (f *MemFile) ReadPage(id PageID, buf []byte) error {
	p, err := f.page(id)
	if err != nil {
		return err
	}
	copy(buf[:f.pageSize], p)
	return nil
}

// WritePage implements File.
func (f *MemFile) WritePage(id PageID, data []byte) error {
	p, err := f.page(id)
	if err != nil {
		return err
	}
	copy(p, data[:f.pageSize])
	return nil
}

// Free implements File.
func (f *MemFile) Free(id PageID) error {
	if _, err := f.page(id); err != nil {
		return err
	}
	f.pages[id-1] = nil
	f.free = append(f.free, id)
	f.n--
	return nil
}

// NumPages implements File.
func (f *MemFile) NumPages() int { return f.n }

// Close implements File.
func (f *MemFile) Close() error {
	f.pages = nil
	f.free = nil
	f.n = 0
	return nil
}

// OSFile is a File backed by a file on disk. Its free list lives in memory:
// the store is rebuilt from scratch each run, which matches how the
// experiments construct indexes.
type OSFile struct {
	f        *os.File
	pageSize int
	pages    int // allocated high-water mark
	freed    map[PageID]bool
	free     []PageID
}

// NewOSFile creates (truncating) a page file at path.
func NewOSFile(path string, pageSize int) (*OSFile, error) {
	if pageSize <= 0 {
		return nil, errors.New("pagestore: page size must be positive")
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &OSFile{f: f, pageSize: pageSize, freed: make(map[PageID]bool)}, nil
}

// PageSize implements File.
func (f *OSFile) PageSize() int { return f.pageSize }

// Alloc implements File.
func (f *OSFile) Alloc() (PageID, error) {
	if n := len(f.free); n > 0 {
		id := f.free[n-1]
		f.free = f.free[:n-1]
		delete(f.freed, id)
		if err := f.WritePage(id, make([]byte, f.pageSize)); err != nil {
			return InvalidPage, err
		}
		return id, nil
	}
	f.pages++
	id := PageID(f.pages)
	if err := f.WritePage(id, make([]byte, f.pageSize)); err != nil {
		return InvalidPage, err
	}
	return id, nil
}

func (f *OSFile) check(id PageID) error {
	if id == InvalidPage || int(id) > f.pages || f.freed[id] {
		return fmt.Errorf("%w: %d", ErrPageBounds, id)
	}
	return nil
}

// ReadPage implements File.
func (f *OSFile) ReadPage(id PageID, buf []byte) error {
	if err := f.check(id); err != nil {
		return err
	}
	_, err := f.f.ReadAt(buf[:f.pageSize], int64(id-1)*int64(f.pageSize))
	return err
}

// WritePage implements File.
func (f *OSFile) WritePage(id PageID, data []byte) error {
	if id == InvalidPage || int(id) > f.pages {
		return fmt.Errorf("%w: %d", ErrPageBounds, id)
	}
	_, err := f.f.WriteAt(data[:f.pageSize], int64(id-1)*int64(f.pageSize))
	return err
}

// Free implements File.
func (f *OSFile) Free(id PageID) error {
	if err := f.check(id); err != nil {
		return err
	}
	f.freed[id] = true
	f.free = append(f.free, id)
	return nil
}

// NumPages implements File.
func (f *OSFile) NumPages() int { return f.pages - len(f.free) }

// Close implements File.
func (f *OSFile) Close() error { return f.f.Close() }

// Stats counts page traffic through a Buffer. Logical counts include buffer
// hits; physical counts are actual File operations, i.e. the disk accesses
// the paper's experiments report.
type Stats struct {
	LogicalReads   int64
	PhysicalReads  int64
	LogicalWrites  int64
	PhysicalWrites int64
	// Evictions counts frames pushed out of the buffer to make room
	// (dirty evictions additionally count one physical write).
	Evictions int64
}

// Hits returns the reads served from the buffer without touching the file.
func (s Stats) Hits() int64 { return s.LogicalReads - s.PhysicalReads }

// Misses returns the reads that had to reach the file.
func (s Stats) Misses() int64 { return s.PhysicalReads }

// Accesses returns the number of physical page reads and writes combined.
func (s Stats) Accesses() int64 { return s.PhysicalReads + s.PhysicalWrites }

// Add returns the component-wise sum of s and t.
func (s Stats) Add(t Stats) Stats {
	return Stats{
		LogicalReads:   s.LogicalReads + t.LogicalReads,
		PhysicalReads:  s.PhysicalReads + t.PhysicalReads,
		LogicalWrites:  s.LogicalWrites + t.LogicalWrites,
		PhysicalWrites: s.PhysicalWrites + t.PhysicalWrites,
		Evictions:      s.Evictions + t.Evictions,
	}
}

// Sub returns s − t component-wise.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		LogicalReads:   s.LogicalReads - t.LogicalReads,
		PhysicalReads:  s.PhysicalReads - t.PhysicalReads,
		LogicalWrites:  s.LogicalWrites - t.LogicalWrites,
		PhysicalWrites: s.PhysicalWrites - t.PhysicalWrites,
		Evictions:      s.Evictions - t.Evictions,
	}
}

// Sink receives per-event page traffic from one or more Buffers. The
// built-in CounterSink accumulates events into Stats; obs.PageSink (which
// satisfies this interface structurally, keeping internal/obs free of
// dependencies) publishes them as registry metrics.
//
// Implementations must be safe for concurrent use: buffers call sinks
// while holding their own locks, possibly from many goroutines.
type Sink interface {
	// PageRead reports one logical read; hit tells whether it was served
	// from the buffer (miss = one physical read reached the File).
	PageRead(hit bool)
	// PageWrite reports a write: physical writes reached the File, logical
	// writes were absorbed by the buffer (write-back).
	PageWrite(physical bool)
	// PageEvicted reports a frame eviction; dirty evictions additionally
	// produced a PageWrite(true) for the write-back.
	PageEvicted(dirty bool)
}

// CounterSink aggregates the traffic of many Buffers into one set of
// atomic counters, so reading combined statistics is O(1) regardless of
// how many buffers exist — the TAR-tree creates one buffer per TIA, which
// can be tens of thousands.
//
// A CounterSink is cumulative and deliberately has no reset: it may be
// shared by many buffers, and zeroing it would silently skew every reader
// that diffs snapshots (tia factories implement ResetStats by remembering a
// base snapshot and subtracting). Buffer.ResetStats likewise leaves sinks
// untouched; see that method for the exact contract.
type CounterSink struct {
	logicalReads   atomic.Int64
	physicalReads  atomic.Int64
	logicalWrites  atomic.Int64
	physicalWrites atomic.Int64
	evictions      atomic.Int64
}

// Snapshot returns the current totals.
func (s *CounterSink) Snapshot() Stats {
	return Stats{
		LogicalReads:   s.logicalReads.Load(),
		PhysicalReads:  s.physicalReads.Load(),
		LogicalWrites:  s.logicalWrites.Load(),
		PhysicalWrites: s.physicalWrites.Load(),
		Evictions:      s.evictions.Load(),
	}
}

// PageRead implements Sink.
func (s *CounterSink) PageRead(hit bool) {
	s.logicalReads.Add(1)
	if !hit {
		s.physicalReads.Add(1)
	}
}

// PageWrite implements Sink.
func (s *CounterSink) PageWrite(physical bool) {
	if physical {
		s.physicalWrites.Add(1)
	} else {
		s.logicalWrites.Add(1)
	}
}

// PageEvicted implements Sink.
func (s *CounterSink) PageEvicted(bool) {
	s.evictions.Add(1)
}

type frame struct {
	id    PageID
	data  []byte
	dirty bool
	// used is the frame's last-access stamp from the buffer's logical
	// clock; the eviction victim is the frame with the minimum stamp.
	// Stamps are unique (the clock only counts up), so this is exact LRU.
	// Atomic because buffer hits stamp it under the shared read lock.
	used atomic.Int64
}

// Buffer is a write-back LRU buffer pool over a File. Each TIA owns a
// Buffer with a small number of slots (10 in the paper's setup; zero slots
// makes the buffer a pass-through so every access is physical, as in the
// collective-processing experiments).
//
// A Buffer is safe for concurrent use, with a two-tier locking scheme
// sized for read-heavy query traffic: a buffer hit takes only the shared
// read lock (map lookup, atomic LRU stamp, atomic counters), so concurrent
// queries over warm buffers do not serialize; misses, writes, eviction,
// and maintenance take the exclusive lock. Concurrent readers — including
// of the same page — are safe. Writers must not race readers of the same
// page: the returned Get slice aliases the frame. The TAR-tree upholds
// this by never mutating TIAs while queries run.
type Buffer struct {
	mu     sync.RWMutex
	file   File
	slots  int
	frames map[PageID]*frame
	// clock is the logical access clock behind the LRU stamps.
	clock atomic.Int64
	stats bufStats
	// base is the cumulative-stats snapshot taken by the last ResetStats;
	// Stats reports cumulative − base, the same windowing scheme the tia
	// factories use against their shared sinks. Guarded by mu.
	base  Stats
	sinks []Sink
	// tagSinks caches the TagSink assertion per sink (nil where the sink
	// is untagged), so the per-access fan-out costs no type switches.
	tagSinks []TagSink
}

// bufStats is Stats with atomic fields: buffer hits bump counters under
// the shared read lock, where plain increments would race.
type bufStats struct {
	logicalReads   atomic.Int64
	physicalReads  atomic.Int64
	logicalWrites  atomic.Int64
	physicalWrites atomic.Int64
	evictions      atomic.Int64
}

func (s *bufStats) snapshot() Stats {
	return Stats{
		LogicalReads:   s.logicalReads.Load(),
		PhysicalReads:  s.physicalReads.Load(),
		LogicalWrites:  s.logicalWrites.Load(),
		PhysicalWrites: s.physicalWrites.Load(),
		Evictions:      s.evictions.Load(),
	}
}

// NewBuffer creates a buffer pool with the given number of slots over f.
func NewBuffer(f File, slots int) *Buffer {
	return NewBufferWithSink(f, slots, nil)
}

// NewBufferWithSink creates a buffer pool that additionally reports its
// traffic to sink (which may be shared by many buffers).
func NewBufferWithSink(f File, slots int, sink *CounterSink) *Buffer {
	if sink == nil {
		return NewBufferWithSinks(f, slots)
	}
	return NewBufferWithSinks(f, slots, sink)
}

// NewBufferWithSinks creates a buffer pool publishing every page-traffic
// event to each of the given sinks.
func NewBufferWithSinks(f File, slots int, sinks ...Sink) *Buffer {
	if slots < 0 {
		panic("pagestore: negative slot count")
	}
	b := &Buffer{
		file:   f,
		slots:  slots,
		frames: make(map[PageID]*frame, slots),
	}
	for _, s := range sinks {
		b.attachSink(s)
	}
	return b
}

// attachSink appends s, caching whether it accepts attributed events.
// Callers hold b.mu (or the buffer is not yet shared).
func (b *Buffer) attachSink(s Sink) {
	b.sinks = append(b.sinks, s)
	ts, _ := s.(TagSink)
	b.tagSinks = append(b.tagSinks, ts)
}

// AddSink attaches another sink; subsequent traffic is reported to it. The
// TIA factories use it to let a metrics registry observe buffers created
// before instrumentation was enabled.
func (b *Buffer) AddSink(s Sink) {
	if s == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.attachSink(s)
}

// File returns the underlying page file.
func (b *Buffer) File() File { return b.file }

// PageSize returns the page size of the underlying file.
func (b *Buffer) PageSize() int { return b.file.PageSize() }

// count helpers keep the buffer's own stats, the attached sinks, and the
// tag's query-local acct (if any) in step. Tag-aware sinks receive the
// attribution tag; everyone else gets the plain event. They are called with
// at least the shared read lock held, so everything they touch is atomic,
// concurrency-safe (sinks), or owned by a single query (the acct).
func (b *Buffer) countRead(tag IOTag, hit bool) {
	b.stats.logicalReads.Add(1)
	if !hit {
		b.stats.physicalReads.Add(1)
	}
	for i, s := range b.sinks {
		if ts := b.tagSinks[i]; ts != nil {
			ts.PageReadTag(tag, hit)
		} else {
			s.PageRead(hit)
		}
	}
	if a := tag.Acct; a != nil {
		a.read(tag, hit)
	}
}

func (b *Buffer) countWrite(tag IOTag, physical bool) {
	if physical {
		b.stats.physicalWrites.Add(1)
	} else {
		b.stats.logicalWrites.Add(1)
	}
	for i, s := range b.sinks {
		if ts := b.tagSinks[i]; ts != nil {
			ts.PageWriteTag(tag, physical)
		} else {
			s.PageWrite(physical)
		}
	}
	if a := tag.Acct; a != nil {
		a.write(tag, physical)
	}
}

func (b *Buffer) countEviction(tag IOTag, dirty bool) {
	b.stats.evictions.Add(1)
	for i, s := range b.sinks {
		if ts := b.tagSinks[i]; ts != nil {
			ts.PageEvictedTag(tag, dirty)
		} else {
			s.PageEvicted(dirty)
		}
	}
	if a := tag.Acct; a != nil {
		a.evicted(tag, dirty)
	}
}

// evict flushes and removes the least recently used frame. The eviction
// (and any dirty write-back) is attributed to the tag of the access that
// forced it, since evicting is a side effect of loading another page.
// Callers hold the exclusive lock; slot counts are small (10 in the
// paper's setup), so the linear victim scan beats maintaining a list.
func (b *Buffer) evict(tag IOTag) error {
	var fr *frame
	for _, cand := range b.frames {
		if fr == nil || cand.used.Load() < fr.used.Load() {
			fr = cand
		}
	}
	if fr == nil {
		return nil
	}
	if fr.dirty {
		if err := b.file.WritePage(fr.id, fr.data); err != nil {
			return err
		}
		b.countWrite(tag, true)
	}
	delete(b.frames, fr.id)
	b.countEviction(tag, fr.dirty)
	return nil
}

// load returns the frame for id, faulting it in (and evicting) as needed.
// Callers hold the exclusive lock.
func (b *Buffer) load(id PageID, readThrough bool, tag IOTag) (*frame, error) {
	if fr, ok := b.frames[id]; ok {
		fr.used.Store(b.clock.Add(1))
		return fr, nil
	}
	for len(b.frames) >= b.slots && len(b.frames) > 0 {
		if err := b.evict(tag); err != nil {
			return nil, err
		}
	}
	fr := &frame{id: id, data: make([]byte, b.file.PageSize())}
	if readThrough {
		if err := b.file.ReadPage(id, fr.data); err != nil {
			return nil, err
		}
	}
	fr.used.Store(b.clock.Add(1))
	if b.slots > 0 {
		b.frames[id] = fr
	}
	return fr, nil
}

// Get returns the content of page id. The returned slice is only valid
// until the next Buffer call; callers must copy anything they retain.
func (b *Buffer) Get(id PageID) ([]byte, error) {
	return b.GetTag(id, IOTag{})
}

// GetTag is Get with an attribution tag reported to tag-aware sinks.
func (b *Buffer) GetTag(id PageID, tag IOTag) ([]byte, error) {
	if b.slots > 0 {
		// Fast path: a buffer hit needs only the shared lock.
		b.mu.RLock()
		if fr, ok := b.frames[id]; ok {
			fr.used.Store(b.clock.Add(1))
			b.countRead(tag, true)
			data := fr.data
			b.mu.RUnlock()
			return data, nil
		}
		b.mu.RUnlock()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.slots == 0 {
		buf := make([]byte, b.file.PageSize())
		if err := b.file.ReadPage(id, buf); err != nil {
			return nil, err
		}
		b.countRead(tag, false)
		return buf, nil
	}
	// Re-check under the exclusive lock: a racing miss may have faulted
	// the page in between our RUnlock and Lock.
	_, hit := b.frames[id]
	fr, err := b.load(id, true, tag)
	if err != nil {
		return nil, err
	}
	b.countRead(tag, hit)
	return fr.data, nil
}

// Put stores data as the content of page id. With buffering, the write is
// deferred until eviction or Flush (write-back); without slots it goes
// straight to the file.
func (b *Buffer) Put(id PageID, data []byte) error {
	return b.PutTag(id, data, IOTag{})
}

// PutTag is Put with an attribution tag reported to tag-aware sinks.
func (b *Buffer) PutTag(id PageID, data []byte, tag IOTag) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.countWrite(tag, false)
	if b.slots == 0 {
		if err := b.file.WritePage(id, data); err != nil {
			return err
		}
		b.countWrite(tag, true)
		return nil
	}
	fr, err := b.load(id, false, tag)
	if err != nil {
		return err
	}
	copy(fr.data, data[:b.file.PageSize()])
	fr.dirty = true
	return nil
}

// Alloc reserves a new page in the underlying file.
func (b *Buffer) Alloc() (PageID, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.file.Alloc()
}

// Free releases page id, dropping any buffered copy.
func (b *Buffer) Free(id PageID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.frames, id)
	return b.file.Free(id)
}

// Flush writes all dirty frames back to the file.
func (b *Buffer) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, fr := range b.frames {
		if fr.dirty {
			if err := b.file.WritePage(fr.id, fr.data); err != nil {
				return err
			}
			b.countWrite(IOTag{}, true)
			fr.dirty = false
		}
	}
	return nil
}

// Drop discards all buffered frames without writing them back. It is meant
// for tests and for abandoning scratch indexes.
func (b *Buffer) Drop() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.frames = make(map[PageID]*frame, b.slots)
}

// Stats returns the buffer's traffic since the last ResetStats (or since
// creation if it was never reset).
func (b *Buffer) Stats() Stats {
	b.mu.RLock()
	base := b.base
	b.mu.RUnlock()
	return b.stats.snapshot().Sub(base)
}

// TotalStats returns the buffer's cumulative traffic since creation,
// unaffected by ResetStats. Because the underlying counters are never
// zeroed, the sum of TotalStats over every buffer attached to one
// CounterSink equals that sink's Snapshot at all times — the invariant
// TestResetStatsLeavesSinkIntact pins.
func (b *Buffer) TotalStats() Stats {
	return b.stats.snapshot()
}

// ResetStats starts a new Stats window by remembering the current
// cumulative counters as the base; buffered pages stay cached.
//
// This is the same windowing scheme the tia factories use: nothing is ever
// zeroed, so attached sinks (which may be shared by many buffers) keep
// their exact totals and the sink/buffer accounting identity
//
//	sink.Snapshot() == Σ attached buffers' TotalStats()
//
// holds across resets. Stats answers the windowed view, TotalStats the
// cumulative one.
func (b *Buffer) ResetStats() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.base = b.stats.snapshot()
}

// Resize changes the number of buffer slots, evicting frames as needed.
func (b *Buffer) Resize(slots int) error {
	if slots < 0 {
		panic("pagestore: negative slot count")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.slots = slots
	for len(b.frames) > slots {
		if err := b.evict(IOTag{}); err != nil {
			return err
		}
	}
	return nil
}
