package pagestore

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
)

func testFileBasics(t *testing.T, f File) {
	t.Helper()
	ps := f.PageSize()
	id1, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	id2, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 || id1 == InvalidPage || id2 == InvalidPage {
		t.Fatalf("bad ids %d %d", id1, id2)
	}
	if f.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", f.NumPages())
	}

	data := make([]byte, ps)
	for i := range data {
		data[i] = byte(i)
	}
	if err := f.WritePage(id1, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, ps)
	if err := f.ReadPage(id1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip mismatch")
	}
	// Fresh page must be zeroed.
	if err := f.ReadPage(id2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, ps)) {
		t.Fatal("fresh page not zeroed")
	}

	// Free and reuse.
	if err := f.Free(id1); err != nil {
		t.Fatal(err)
	}
	if f.NumPages() != 1 {
		t.Fatalf("NumPages after free = %d, want 1", f.NumPages())
	}
	if err := f.ReadPage(id1, got); !errors.Is(err, ErrPageBounds) {
		t.Fatalf("read of freed page: err=%v, want ErrPageBounds", err)
	}
	id3, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id1 {
		t.Fatalf("freed page not reused: got %d, want %d", id3, id1)
	}
	// Reused page must be zeroed again.
	if err := f.ReadPage(id3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, ps)) {
		t.Fatal("reused page not zeroed")
	}

	if err := f.ReadPage(InvalidPage, got); !errors.Is(err, ErrPageBounds) {
		t.Fatalf("read invalid page: err=%v", err)
	}
	if err := f.ReadPage(PageID(999), got); !errors.Is(err, ErrPageBounds) {
		t.Fatalf("read out-of-range page: err=%v", err)
	}
}

func TestMemFileBasics(t *testing.T) {
	testFileBasics(t, NewMemFile(128))
}

func TestOSFileBasics(t *testing.T) {
	f, err := NewOSFile(filepath.Join(t.TempDir(), "pages.db"), 128)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	testFileBasics(t, f)
}

func TestBufferHitAndMiss(t *testing.T) {
	f := NewMemFile(64)
	b := NewBuffer(f, 2)
	id, _ := b.Alloc()
	data := bytes.Repeat([]byte{7}, 64)
	if err := b.Put(id, data); err != nil {
		t.Fatal(err)
	}
	// Two reads of a buffered page: zero physical reads.
	for i := 0; i < 2; i++ {
		got, err := b.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("mismatch")
		}
	}
	s := b.Stats()
	if s.LogicalReads != 2 || s.PhysicalReads != 0 {
		t.Errorf("stats = %+v, want 2 logical / 0 physical reads", s)
	}
	if s.PhysicalWrites != 0 {
		t.Errorf("write-back should defer writes, got %+v", s)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if s := b.Stats(); s.PhysicalWrites != 1 {
		t.Errorf("after flush physical writes = %d, want 1", s.PhysicalWrites)
	}
	// Underlying file must now hold the data.
	raw := make([]byte, 64)
	if err := f.ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, data) {
		t.Fatal("flush did not reach file")
	}
}

func TestBufferEviction(t *testing.T) {
	f := NewMemFile(32)
	b := NewBuffer(f, 2)
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, _ := b.Alloc()
		ids = append(ids, id)
		page := bytes.Repeat([]byte{byte(i + 1)}, 32)
		if err := b.Put(id, page); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 2: writing the third page evicted the first (dirty -> one
	// physical write).
	if s := b.Stats(); s.PhysicalWrites != 1 {
		t.Errorf("physical writes = %d, want 1 (eviction)", s.PhysicalWrites)
	}
	// Reading the evicted page is a miss.
	before := b.Stats().PhysicalReads
	got, err := b.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("evicted page content lost: %d", got[0])
	}
	if b.Stats().PhysicalReads != before+1 {
		t.Error("expected one physical read for evicted page")
	}
}

func TestBufferZeroSlots(t *testing.T) {
	f := NewMemFile(32)
	b := NewBuffer(f, 0)
	id, _ := b.Alloc()
	data := bytes.Repeat([]byte{3}, 32)
	if err := b.Put(id, data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := b.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	s := b.Stats()
	if s.PhysicalReads != 5 || s.PhysicalWrites != 1 {
		t.Errorf("pass-through stats = %+v", s)
	}
}

func TestBufferLRUOrder(t *testing.T) {
	f := NewMemFile(16)
	b := NewBuffer(f, 2)
	a, _ := b.Alloc()
	c, _ := b.Alloc()
	d, _ := b.Alloc()
	one := bytes.Repeat([]byte{1}, 16)
	b.Put(a, one)
	b.Put(c, one)
	// Touch a so that c becomes LRU.
	if _, err := b.Get(a); err != nil {
		t.Fatal(err)
	}
	b.Put(d, one) // evicts c
	b.ResetStats()
	if _, err := b.Get(a); err != nil {
		t.Fatal(err)
	}
	if b.Stats().PhysicalReads != 0 {
		t.Error("a should still be cached")
	}
	if _, err := b.Get(c); err != nil {
		t.Fatal(err)
	}
	if b.Stats().PhysicalReads != 1 {
		t.Error("c should have been evicted")
	}
}

func TestBufferFreeDropsFrame(t *testing.T) {
	f := NewMemFile(16)
	b := NewBuffer(f, 4)
	id, _ := b.Alloc()
	b.Put(id, make([]byte, 16))
	if err := b.Free(id); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get(id); !errors.Is(err, ErrPageBounds) {
		t.Fatalf("get freed page err = %v", err)
	}
}

func TestBufferResize(t *testing.T) {
	f := NewMemFile(16)
	b := NewBuffer(f, 8)
	ids := make([]PageID, 6)
	for i := range ids {
		ids[i], _ = b.Alloc()
		b.Put(ids[i], bytes.Repeat([]byte{byte(i)}, 16))
	}
	if err := b.Resize(2); err != nil {
		t.Fatal(err)
	}
	// All data must survive the shrink.
	for i, id := range ids {
		got, err := b.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("page %d content = %d, want %d", id, got[0], i)
		}
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{1, 2, 3, 4, 5}
	b := Stats{10, 20, 30, 40, 50}
	got := a.Add(b)
	want := Stats{11, 22, 33, 44, 55}
	if got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
	if got.Accesses() != 22+44 {
		t.Errorf("Accesses = %d", got.Accesses())
	}
}

// Randomized model check: a buffered file behaves exactly like a map of
// page contents, for random interleavings of put/get/alloc/free.
func TestBufferModelCheck(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	f := NewMemFile(8)
	b := NewBuffer(f, 3)
	model := map[PageID][]byte{}
	var live []PageID
	for step := 0; step < 5000; step++ {
		switch op := r.Intn(10); {
		case op < 3 || len(live) == 0: // alloc
			id, err := b.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			model[id] = make([]byte, 8)
			live = append(live, id)
		case op < 6: // put
			id := live[r.Intn(len(live))]
			page := make([]byte, 8)
			r.Read(page)
			if err := b.Put(id, page); err != nil {
				t.Fatal(err)
			}
			model[id] = page
		case op < 9: // get
			id := live[r.Intn(len(live))]
			got, err := b.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, model[id]) {
				t.Fatalf("step %d: page %d mismatch", step, id)
			}
		default: // free
			i := r.Intn(len(live))
			id := live[i]
			if err := b.Free(id); err != nil {
				t.Fatal(err)
			}
			delete(model, id)
			live = append(live[:i], live[i+1:]...)
		}
	}
	// Final flush then verify everything via the raw file.
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	for id, want := range model {
		got := make([]byte, 8)
		if err := f.ReadPage(id, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d not durable", id)
		}
	}
}

func TestCounterSinkSharedAcrossBuffers(t *testing.T) {
	f := NewMemFile(32)
	var sink CounterSink
	b1 := NewBufferWithSink(f, 2, &sink)
	b2 := NewBufferWithSink(f, 0, &sink)
	id1, _ := b1.Alloc()
	id2, _ := b2.Alloc()
	page := bytes.Repeat([]byte{1}, 32)
	b1.Put(id1, page)
	b2.Put(id2, page) // pass-through: physical write
	b1.Get(id1)       // buffered: logical only
	b2.Get(id2)       // pass-through: physical read
	s := sink.Snapshot()
	if s.LogicalReads != 2 || s.LogicalWrites != 2 {
		t.Errorf("logical counters = %+v", s)
	}
	if s.PhysicalReads != 1 || s.PhysicalWrites != 1 {
		t.Errorf("physical counters = %+v", s)
	}
	// The sink must agree with the sum of per-buffer stats.
	sum := b1.Stats().Add(b2.Stats())
	if s != sum {
		t.Errorf("sink %+v != per-buffer sum %+v", s, sum)
	}
	if d := s.Sub(sum); (d != Stats{}) {
		t.Errorf("Sub = %+v, want zero", d)
	}
}

// TestResetStatsLeavesSinkIntact pins the Buffer.ResetStats / CounterSink
// contract: ResetStats opens a new Stats window by base-snapshot
// subtraction (the same scheme tia factories use), it never zeroes the
// underlying counters, so shared sinks keep accumulating and
// sink.Snapshot() == Σ attached buffers' TotalStats() holds across resets.
func TestResetStatsLeavesSinkIntact(t *testing.T) {
	f := NewMemFile(32)
	var sink CounterSink
	b := NewBufferWithSink(f, 1, &sink)
	id1, _ := b.Alloc()
	id2, _ := b.Alloc()
	page := bytes.Repeat([]byte{9}, 32)
	b.Put(id1, page)
	b.Put(id2, page) // evicts id1 (dirty -> physical write + eviction)
	if _, err := b.Get(id1); err != nil {
		t.Fatal(err)
	}
	pre := b.Stats()
	if pre.Evictions != 2 { // id1 evicted by Put(id2), id2 evicted by Get(id1)
		t.Fatalf("evictions = %d, want 2 (stats %+v)", pre.Evictions, pre)
	}
	if got := sink.Snapshot(); got != pre {
		t.Fatalf("sink %+v != buffer stats %+v before reset", got, pre)
	}

	b.ResetStats()
	if got := b.Stats(); got != (Stats{}) {
		t.Fatalf("buffer stats after reset = %+v, want zero", got)
	}
	if got := sink.Snapshot(); got != pre {
		t.Fatalf("reset must not touch the sink: %+v != %+v", got, pre)
	}

	// New traffic lands in both; the sink exceeds the buffer by exactly the
	// pre-reset totals, so snapshot diffing still yields exact windows.
	base := sink.Snapshot()
	if _, err := b.Get(id1); err != nil { // hit: cached since the Get above
		t.Fatal(err)
	}
	if _, err := b.Get(id2); err != nil { // miss: evicted
		t.Fatal(err)
	}
	local := b.Stats()
	if local.LogicalReads != 2 || local.PhysicalReads != 1 {
		t.Fatalf("post-reset buffer stats = %+v", local)
	}
	if got := sink.Snapshot().Sub(base); got != local {
		t.Fatalf("sink window %+v != buffer stats %+v", got, local)
	}
	if got := sink.Snapshot().Sub(pre); got != local {
		t.Fatalf("sink minus pre-reset %+v != buffer stats %+v", got, local)
	}
	// TotalStats is the cumulative view: unaffected by the reset, and in
	// lock-step with the sink at all times.
	if got, want := b.TotalStats(), sink.Snapshot(); got != want {
		t.Fatalf("TotalStats %+v != sink snapshot %+v", got, want)
	}
	if got, want := b.TotalStats(), pre.Add(local); got != want {
		t.Fatalf("TotalStats %+v != pre-reset + window %+v", got, want)
	}
}

// TestResetStatsWindowsPerBuffer is the multi-buffer regression test for
// the reset semantic: resetting one buffer must not disturb the other's
// window, and the shared sink must always equal the sum of TotalStats.
func TestResetStatsWindowsPerBuffer(t *testing.T) {
	f := NewMemFile(32)
	var sink CounterSink
	b1 := NewBufferWithSink(f, 2, &sink)
	b2 := NewBufferWithSink(f, 0, &sink) // pass-through
	id1, _ := b1.Alloc()
	id2, _ := b2.Alloc()
	page := bytes.Repeat([]byte{7}, 32)
	b1.Put(id1, page)
	b2.Put(id2, page)
	b1.Get(id1)
	b2.Get(id2)

	before2 := b2.Stats()
	b1.ResetStats()
	if got := b1.Stats(); got != (Stats{}) {
		t.Fatalf("b1 window after reset = %+v, want zero", got)
	}
	if got := b2.Stats(); got != before2 {
		t.Fatalf("b1 reset disturbed b2's window: %+v != %+v", got, before2)
	}
	if got, want := sink.Snapshot(), b1.TotalStats().Add(b2.TotalStats()); got != want {
		t.Fatalf("sink %+v != sum of TotalStats %+v", got, want)
	}

	// More traffic after the reset: the invariant keeps holding, and each
	// buffer's window is exactly its own post-reset traffic.
	b1.Get(id1)
	b2.Get(id2)
	if got := b1.Stats(); got.LogicalReads != 1 {
		t.Fatalf("b1 window = %+v, want 1 logical read", got)
	}
	if got, want := sink.Snapshot(), b1.TotalStats().Add(b2.TotalStats()); got != want {
		t.Fatalf("sink %+v != sum of TotalStats %+v after more traffic", got, want)
	}
}

// TestMultipleSinks checks that every attached sink sees every event,
// including sinks attached after creation via AddSink.
func TestMultipleSinks(t *testing.T) {
	f := NewMemFile(16)
	var s1, s2 CounterSink
	b := NewBufferWithSinks(f, 1, &s1)
	id, _ := b.Alloc()
	b.Put(id, make([]byte, 16))
	b.AddSink(&s2)
	if _, err := b.Get(id); err != nil {
		t.Fatal(err)
	}
	if got := s1.Snapshot(); got.LogicalWrites != 1 || got.LogicalReads != 1 {
		t.Errorf("s1 = %+v", got)
	}
	if got := s2.Snapshot(); got.LogicalWrites != 0 || got.LogicalReads != 1 {
		t.Errorf("s2 should only see post-attach traffic: %+v", got)
	}
}
