package pagestore

import (
	"sync/atomic"
	"time"
)

// SlowFile wraps a File, adding a configurable latency to every page read
// and write that reaches it. With a Buffer on top only misses and
// write-backs pay the delay, so it models a storage device for concurrency
// and buffering experiments: queries running in parallel can hide each
// other's I/O stalls the way they would on a real disk, while the purely
// in-memory MemFile makes every workload CPU-bound.
//
// The delay can be changed at any time, e.g. to build an index quickly and
// then measure queries under simulated latency. Synchronization of the
// underlying File is the caller's concern, exactly as for any other File.
type SlowFile struct {
	File
	delay atomic.Int64 // nanoseconds per physical page access
}

// NewSlowFile wraps f so every ReadPage and WritePage takes at least delay.
func NewSlowFile(f File, delay time.Duration) *SlowFile {
	sf := &SlowFile{File: f}
	sf.SetDelay(delay)
	return sf
}

// SetDelay changes the per-access latency.
func (f *SlowFile) SetDelay(d time.Duration) { f.delay.Store(int64(d)) }

// Delay returns the current per-access latency.
func (f *SlowFile) Delay() time.Duration { return time.Duration(f.delay.Load()) }

func (f *SlowFile) pause() {
	if d := f.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// ReadPage implements File.
func (f *SlowFile) ReadPage(id PageID, buf []byte) error {
	f.pause()
	return f.File.ReadPage(id, buf)
}

// WritePage implements File.
func (f *SlowFile) WritePage(id PageID, data []byte) error {
	f.pause()
	return f.File.WritePage(id, data)
}
