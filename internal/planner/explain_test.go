package planner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"tartree/internal/core"
	"tartree/internal/obs"
	"tartree/internal/tia"
)

// TestPlanCrossoverGroupings pins the tree-vs-scan decision boundary for
// every grouping: a selective query stays on the index, k approaching the
// data set size flips to the scan, and a degenerate cone (α0 → 0 with a
// large k, where the spatial term stops pruning) flips too. The exact
// crossover k differs per grouping (the fanout depends on the tree's
// dimensionality); the extremes must not.
func TestPlanCrossoverGroupings(t *testing.T) {
	const n = 2000
	iv := tia.Interval{Start: 0, End: 200}
	cases := []struct {
		name   string
		k      int
		alpha0 float64
		want   Engine
	}{
		{"selective", 5, 0.3, UseIndex},
		{"k_near_n", 1900, 0.3, UseScan},
		{"degenerate_cone", 500, 0.01, UseScan},
	}
	for _, g := range []core.Grouping{core.TAR3D, core.IndSpa, core.IndAgg} {
		t.Run(g.String(), func(t *testing.T) {
			tr, _ := buildTreeGrouping(t, n, 9, g)
			p, err := New(tr)
			if err != nil {
				t.Fatal(err)
			}
			var prevNA float64
			for _, tc := range cases {
				plan, err := p.Plan(core.Query{X: 50, Y: 50, Iq: iv, K: tc.k, Alpha0: tc.alpha0})
				if err != nil {
					t.Fatalf("%s: %v", tc.name, err)
				}
				if plan.Engine != tc.want {
					t.Errorf("%s (k=%d, α0=%.2f): engine = %v (index %.1f vs scan %.1f)",
						tc.name, tc.k, tc.alpha0, plan.Engine, plan.IndexCost, plan.ScanCost)
				}
				if plan.EstimatedNodeAccesses <= plan.EstimatedLeafAccesses {
					t.Errorf("%s: node estimate %.1f not above leaf estimate %.1f",
						tc.name, plan.EstimatedNodeAccesses, plan.EstimatedLeafAccesses)
				}
				if len(plan.Bands) == 0 {
					t.Errorf("%s: plan has no estimation bands", tc.name)
				}
				if plan.EstimatedNodeAccesses < prevNA {
					t.Errorf("%s: node-access estimate shrank (%.1f after %.1f) on a widening search",
						tc.name, plan.EstimatedNodeAccesses, prevNA)
				}
				prevNA = plan.EstimatedNodeAccesses
			}
		})
	}
}

// TestPlanErrorPaths pins Plan's failure modes: validation failures wrap
// core.ErrInvalid and an estimate-only planner refuses to calibrate.
func TestPlanErrorPaths(t *testing.T) {
	tr, _ := buildTree(t, 100, 3)
	p, err := New(tr)
	if err != nil {
		t.Fatal(err)
	}
	bad := []core.Query{
		{X: 1, Y: 1, Iq: tia.Interval{Start: 0, End: 100}, K: 0, Alpha0: 0.5},
		{X: 1, Y: 1, Iq: tia.Interval{Start: 100, End: 0}, K: 5, Alpha0: 0.5},
		{X: 1, Y: 1, Iq: tia.Interval{Start: 0, End: 100}, K: 5, Alpha0: 1.5},
	}
	for i, q := range bad {
		if _, err := p.Plan(q); !errors.Is(err, core.ErrInvalid) {
			t.Errorf("bad query %d: Plan error = %v, want ErrInvalid", i, err)
		}
		if _, _, _, err := p.Query(q); !errors.Is(err, core.ErrInvalid) {
			t.Errorf("bad query %d: Query error = %v, want ErrInvalid", i, err)
		}
	}
	est := NewEstimator(tr)
	if err := est.Calibrate([]core.Query{{X: 1, Y: 1, Iq: tia.Interval{Start: 0, End: 100}, K: 5, Alpha0: 0.5}}); err == nil {
		t.Error("estimate-only planner accepted Calibrate")
	}
}

// TestEstimatorExecutesTree pins the advisory contract of NewEstimator:
// even when the plan says scan, the tree executes (there is no scan
// engine), the answer matches the tree's own, and the explain still
// carries the scan plan for forensics.
func TestEstimatorExecutesTree(t *testing.T) {
	tr, _ := buildTree(t, 500, 7)
	p := NewEstimator(tr)
	q := core.Query{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 200}, K: 480, Alpha0: 0.3}
	ex := core.NewExplain()
	res, plan, stats, err := p.QueryCtx(context.Background(), q, &core.QueryOpts{Explain: ex})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Engine != UseScan {
		t.Fatalf("k near n planned %v, want the scan (advisory)", plan.Engine)
	}
	if stats.RTreeAccesses() == 0 || ex.Pops == 0 {
		t.Fatal("estimator did not execute the tree")
	}
	want, _, err := tr.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(want) {
		t.Fatalf("estimator answer has %d results, tree has %d", len(res), len(want))
	}
	if ex.Plan == nil || ex.Plan.Engine != UseScan.String() {
		t.Fatalf("explain plan = %+v, want the advisory scan plan", ex.Plan)
	}
}

// TestQueryCtxScanExplain checks the scan-path explain: the recorder is
// finished with the outcome and carries the plan, but no tree forensics —
// the tree never ran.
func TestQueryCtxScanExplain(t *testing.T) {
	tr, _ := buildTree(t, 2000, 9)
	p, err := New(tr)
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 200}, K: 1900, Alpha0: 0.3}
	ex := core.NewExplain()
	res, plan, _, err := p.QueryCtx(context.Background(), q, &core.QueryOpts{Explain: ex})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Engine != UseScan {
		t.Fatalf("engine = %v, want scan", plan.Engine)
	}
	if ex.Plan == nil || ex.Plan.Engine != "sequential-scan" {
		t.Fatalf("explain plan = %+v", ex.Plan)
	}
	if ex.Pops != 0 || ex.NodeAccesses() != 0 {
		t.Errorf("scan explain has tree forensics: pops=%d nodes=%d", ex.Pops, ex.NodeAccesses())
	}
	if ex.Results != len(res) {
		t.Errorf("scan explain Results = %d, want %d", ex.Results, len(res))
	}
	if len(res) > 0 && ex.ActualFk != res[len(res)-1].Score {
		t.Errorf("scan explain ActualFk = %v, want %v", ex.ActualFk, res[len(res)-1].Score)
	}
}

// TestObserveEstimateError is the metric fixture: hand-computed signed
// relative errors must land in the instrumented histograms exactly, and
// each observation must increment the right engine/verdict counter.
func TestObserveEstimateError(t *testing.T) {
	tr, _ := buildTree(t, 50, 1)
	p := NewEstimator(tr)
	reg := obs.NewRegistry()
	p.Instrument(reg)

	mkExplain := func(actualNA int64, actualFk float64) *core.Explain {
		ex := core.NewExplain()
		ex.NodeAccessesByLevel = []int64{actualNA - 5, 5}
		ex.ActualFk = actualFk
		return ex
	}

	// est 30 vs actual 20: signed error (30−20)/20 = +0.5, verdict ok
	// (the boundary is exclusive). est f(pk) 2 vs actual 4: (2−4)/4 = −0.5.
	p.Observe(Plan{Engine: UseIndex, EstimatedNodeAccesses: 30, EstimatedFk: 2}, mkExplain(20, 4))
	if got := p.metrics.accessErr.Sum(); got != 0.5 {
		t.Errorf("access error sum = %v, want +0.5", got)
	}
	if got := p.metrics.accessErr.Count(); got != 1 {
		t.Errorf("access error count = %d, want 1", got)
	}
	if got := p.metrics.fkErr.Sum(); got != -0.5 {
		t.Errorf("fk error sum = %v, want -0.5", got)
	}

	// est 35 vs actual 20: +0.75 → over. est 5 vs actual 20: −0.75 → under.
	p.Observe(Plan{Engine: UseIndex, EstimatedNodeAccesses: 35}, mkExplain(20, 0))
	p.Observe(Plan{Engine: UseIndex, EstimatedNodeAccesses: 5}, mkExplain(20, 0))
	if got := p.metrics.accessErr.Sum(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("access error sum after over+under = %v, want 0.5", got)
	}

	// Unmeasured paths: a scan plan, a missing recorder, a result-cache
	// hit, and a zero-actual explain must not feed the error histograms.
	p.Observe(Plan{Engine: UseScan, EstimatedNodeAccesses: 30}, mkExplain(20, 4))
	p.Observe(Plan{Engine: UseIndex, EstimatedNodeAccesses: 30}, nil)
	hit := core.NewExplain()
	hit.ResultCacheHit = true
	p.Observe(Plan{Engine: UseIndex, EstimatedNodeAccesses: 30}, hit)
	p.Observe(Plan{Engine: UseIndex, EstimatedNodeAccesses: 30}, core.NewExplain())
	if got := p.metrics.accessErr.Count(); got != 3 {
		t.Errorf("access error count after unmeasured paths = %d, want 3", got)
	}
	if got := p.metrics.fkErr.Count(); got != 1 {
		t.Errorf("fk error count = %d, want 1 (only the first had an actual f(pk))", got)
	}

	counter := func(engine Engine, verdict string) int64 {
		return reg.Counter(fmt.Sprintf(`tartree_planner_engine_total{engine=%q,verdict=%q}`,
			engine.String(), verdict)).Value()
	}
	if got := counter(UseIndex, VerdictOK); got != 1 {
		t.Errorf("ok verdicts = %d, want 1", got)
	}
	if got := counter(UseIndex, VerdictOver); got != 1 {
		t.Errorf("over verdicts = %d, want 1", got)
	}
	if got := counter(UseIndex, VerdictUnder); got != 1 {
		t.Errorf("under verdicts = %d, want 1", got)
	}
	if got := counter(UseIndex, VerdictUnmeasured); got != 3 {
		t.Errorf("index unmeasured verdicts = %d, want 3", got)
	}
	if got := counter(UseScan, VerdictUnmeasured); got != 1 {
		t.Errorf("scan unmeasured verdicts = %d, want 1", got)
	}

	// Uninstrumented planner: Observe is a no-op, not a panic.
	NewEstimator(tr).Observe(Plan{Engine: UseIndex}, nil)
}
