// Package planner turns the Section-6 cost analysis into a query
// optimizer, the use the paper suggests ("the analysis can also be used as
// a cost model for query optimization purposes"): for each kNNTA query it
// estimates the best-first search's node accesses from the aggregate
// distribution of the query's interval class and chooses between the
// TAR-tree and the sequential scan — the scan wins when k approaches the
// data set size or the search region degenerates to most of the space.
package planner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"tartree/internal/core"
	"tartree/internal/costmodel"
	"tartree/internal/obs"
	"tartree/internal/powerlaw"
	"tartree/internal/seqscan"
	"tartree/internal/tia"
)

// Engine names the execution strategy a Plan selects.
type Engine int

const (
	// UseIndex answers with best-first search over the TAR-tree.
	UseIndex Engine = iota
	// UseScan answers with the sequential scan.
	UseScan
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	if e == UseScan {
		return "sequential-scan"
	}
	return "tar-tree"
}

// Plan is the optimizer's decision with its supporting estimates.
type Plan struct {
	Engine Engine
	// EstimatedFk is the predicted ranking score of the kth result.
	EstimatedFk float64
	// EstimatedLeafAccesses is the Section-6.3 leaf node-access estimate
	// NA(α, k); EstimatedNodeAccesses adds the proportional internal
	// accesses and the normalization read — the number the explain pipeline
	// compares against the search's actual node accesses.
	EstimatedLeafAccesses float64
	EstimatedNodeAccesses float64
	// IndexCost and ScanCost are the predicted costs in microseconds when
	// calibrated, otherwise in abstract page-access units.
	IndexCost, ScanCost float64
	// Calibrated reports whether the costs above are in microseconds.
	Calibrated bool
	// Bands is the Section-6.3 estimation detail: one slab of cubic leaf
	// nodes per entry. Empty for the degenerate empty-tree plan.
	Bands []costmodel.Band
}

// Explain converts the plan into the neutral form a core.Explain recorder
// carries, bands included.
func (pl Plan) Explain() *core.ExplainPlan {
	ep := &core.ExplainPlan{
		Engine:                pl.Engine.String(),
		EstimatedFk:           pl.EstimatedFk,
		EstimatedLeafAccesses: pl.EstimatedLeafAccesses,
		EstimatedNodeAccesses: pl.EstimatedNodeAccesses,
		IndexCost:             pl.IndexCost,
		ScanCost:              pl.ScanCost,
		Calibrated:            pl.Calibrated,
	}
	for _, b := range pl.Bands {
		ep.Bands = append(ep.Bands, core.ExplainBand{
			Nodes: b.Count, Side: b.Side, Radius: b.Radius, P: b.P,
		})
	}
	return ep
}

// classStats caches the fitted cost-model layers for one interval length.
type classStats struct {
	layers  []costmodel.Layer
	maxAgg  int64
	builtAt int // tree size when fitted; refitted after significant growth
}

// Planner plans and executes kNNTA queries over one tree. A Planner is
// safe for concurrent use: the class cache and calibration coefficients
// are guarded by an internal mutex, so a server can plan from many
// request goroutines.
type Planner struct {
	tree   *core.Tree
	scan   *seqscan.Scanner // nil on an estimate-only planner (NewEstimator)
	fanout float64

	mu sync.Mutex
	// classes caches per-interval-length statistics.
	classes map[int64]*classStats
	// Calibration coefficients; zero until Calibrate runs.
	usPerAccess float64 // microseconds per estimated index node access
	usPerPOI    float64 // microseconds per scanned POI

	metrics *plannerMetrics // nil until Instrument
}

// New builds a planner for tr, constructing the sequential-scan fallback
// from the tree's own registry.
func New(tr *core.Tree) (*Planner, error) {
	opts := tr.Options()
	scan := seqscan.New(opts.World, opts.Semantics)
	var ferr error
	tr.POIs(func(p core.POI, total int64) bool {
		hist, err := tr.History(p.ID)
		if err != nil {
			ferr = err
			return false
		}
		scan.Add(p, hist)
		return true
	})
	if ferr != nil {
		return nil, ferr
	}
	return &Planner{
		tree:    tr,
		scan:    scan,
		fanout:  0.69 * float64(core.CapacityFor(opts.NodeSize, tr.Dims())),
		classes: make(map[int64]*classStats),
	}, nil
}

// NewEstimator builds an estimate-only planner: Plan and Observe work, but
// no sequential-scan engine is materialized — Query always executes the
// tree, with the plan advisory. Servers use it so attaching EXPLAIN does
// not copy every POI history into a second engine.
func NewEstimator(tr *core.Tree) *Planner {
	opts := tr.Options()
	return &Planner{
		tree:    tr,
		fanout:  0.69 * float64(core.CapacityFor(opts.NodeSize, tr.Dims())),
		classes: make(map[int64]*classStats),
	}
}

// plannerMetrics is the planner's bridge into an obs.Registry: the engine
// decision/verdict counters and the signed relative estimate-error
// histograms the calibration dashboards read.
type plannerMetrics struct {
	reg       *obs.Registry
	accessErr *obs.Histogram
	fkErr     *obs.Histogram
}

// estimateErrorBounds buckets the signed relative error (estimated −
// actual) / actual: negative buckets are underestimates, positive
// overestimates.
var estimateErrorBounds = []float64{-5, -2, -1, -0.5, -0.25, -0.1, 0, 0.1, 0.25, 0.5, 1, 2, 5}

// Instrument attaches the planner to a registry, exporting
// tartree_planner_engine_total{engine,verdict} and
// tartree_planner_estimate_error{quantity}. Idempotent per registry (the
// registry getters are); safe to call before or after queries run.
func (p *Planner) Instrument(r *obs.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.metrics = &plannerMetrics{
		reg:       r,
		accessErr: r.Histogram(`tartree_planner_estimate_error{quantity="node_accesses"}`, estimateErrorBounds),
		fkErr:     r.Histogram(`tartree_planner_estimate_error{quantity="fk"}`, estimateErrorBounds),
	}
}

// Verdicts of Observe: how far the Section-6 node-access estimate landed
// from the measured search.
const (
	VerdictOK         = "ok"         // |relative error| ≤ 0.5
	VerdictOver       = "over"       // estimate > 1.5 × actual
	VerdictUnder      = "under"      // estimate < 0.5 × actual
	VerdictUnmeasured = "unmeasured" // scan plan, no explain, or zero actuals
)

// Observe folds one executed plan into the calibration metrics: the engine
// decision with its accuracy verdict, and — when the query ran with an
// explain recorder on the tree engine — the signed relative errors of the
// node-access and f(pk) estimates. A result-cache hit counts as
// unmeasured: the search never ran, so the estimate has no actual to meet.
func (p *Planner) Observe(plan Plan, ex *core.Explain) {
	p.mu.Lock()
	m := p.metrics
	p.mu.Unlock()
	if m == nil {
		return
	}
	verdict := VerdictUnmeasured
	if plan.Engine == UseIndex && ex != nil && !ex.ResultCacheHit {
		if actual := float64(ex.NodeAccesses()); actual > 0 {
			relErr := (plan.EstimatedNodeAccesses - actual) / actual
			m.accessErr.Observe(relErr)
			switch {
			case relErr > 0.5:
				verdict = VerdictOver
			case relErr < -0.5:
				verdict = VerdictUnder
			default:
				verdict = VerdictOK
			}
		}
		if ex.ActualFk > 0 {
			m.fkErr.Observe((plan.EstimatedFk - ex.ActualFk) / ex.ActualFk)
		}
	}
	m.reg.Counter(fmt.Sprintf(`tartree_planner_engine_total{engine=%q,verdict=%q}`,
		plan.Engine.String(), verdict)).Inc()
}

// statsFor returns (building if needed) the layer statistics of the
// query's interval-length class.
func (p *Planner) statsFor(iv tia.Interval) (*classStats, error) {
	length := iv.End - iv.Start
	cs := p.classes[length]
	if cs != nil && p.tree.Len() < cs.builtAt*5/4 {
		return cs, nil
	}
	var aggs []int64
	var ferr error
	p.tree.POIs(func(poi core.POI, total int64) bool {
		a, err := p.tree.AggregateMirror(poi.ID, iv)
		if err != nil {
			ferr = err
			return false
		}
		aggs = append(aggs, a)
		return true
	})
	if ferr != nil {
		return nil, ferr
	}
	if len(aggs) == 0 {
		return nil, errors.New("planner: empty tree")
	}
	cs = &classStats{builtAt: p.tree.Len()}
	cs.layers, cs.maxAgg = buildLayers(aggs)
	p.classes[length] = cs
	return cs, nil
}

// buildLayers mirrors the evaluation harness: empirical body below the
// fitted cutoff, power-law tail above it.
func buildLayers(aggs []int64) ([]costmodel.Layer, int64) {
	var maxAgg int64 = 1
	var nonzero []int64
	for _, a := range aggs {
		if a > maxAgg {
			maxAgg = a
		}
		if a > 0 {
			nonzero = append(nonzero, a)
		}
	}
	empirical := costmodel.EmpiricalLayers(aggs)
	fit, err := powerlaw.Estimate(nonzero, powerlaw.FitOptions{})
	if err != nil {
		return empirical, maxAgg
	}
	var layers []costmodel.Layer
	for _, l := range empirical {
		if l.X < fit.Xmin {
			layers = append(layers, l)
		}
	}
	tail, err := costmodel.PowerLawLayers(float64(fit.NTail), fit.Beta, fit.Xmin, maxAgg, 0)
	if err != nil {
		return empirical, maxAgg
	}
	return append(layers, tail...), maxAgg
}

// Plan estimates both engines' costs for q and picks the cheaper.
func (p *Planner) Plan(q core.Query) (Plan, error) {
	if err := q.Validate(); err != nil {
		return Plan{}, err
	}
	n := p.tree.Len()
	if n == 0 {
		return Plan{Engine: UseScan}, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cs, err := p.statsFor(q.Iq)
	if err != nil {
		return Plan{}, err
	}
	cm := costmodel.Params{
		Alpha0: q.Alpha0,
		K:      min(q.K, n),
		Fanout: p.fanout,
		MaxAgg: cs.maxAgg,
		Layers: cs.layers,
	}
	fk, err := cm.EstimateFk()
	if err != nil {
		return Plan{}, err
	}
	leafNA, bands, err := cm.EstimateLeafAccesses(fk)
	if err != nil {
		return Plan{}, err
	}
	// Index cost: estimated leaf accesses plus the proportional internal
	// accesses and the normalization read. Scan cost: one pass over N POIs.
	accesses := leafNA*(1+1/p.fanout) + 2
	pois := float64(n)
	plan := Plan{
		EstimatedFk:           fk,
		EstimatedLeafAccesses: leafNA,
		EstimatedNodeAccesses: accesses,
		Bands:                 bands,
	}
	if p.usPerAccess > 0 && p.usPerPOI > 0 {
		plan.IndexCost = accesses * p.usPerAccess
		plan.ScanCost = pois * p.usPerPOI
		plan.Calibrated = true
	} else {
		// Uncalibrated: compare in page units; a scanned page holds about
		// one node's worth of POIs.
		plan.IndexCost = accesses
		plan.ScanCost = pois / p.fanout
	}
	if plan.IndexCost <= plan.ScanCost {
		plan.Engine = UseIndex
	} else {
		plan.Engine = UseScan
	}
	return plan, nil
}

// Calibrate measures both engines on the given sample queries and derives
// microsecond cost coefficients, turning Plan's comparison from page units
// into predicted wall time.
func (p *Planner) Calibrate(queries []core.Query) error {
	if len(queries) == 0 {
		return errors.New("planner: no calibration queries")
	}
	if p.scan == nil {
		return errors.New("planner: estimate-only planner cannot calibrate")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var idxMicros, estAccesses, scanMicros, scannedPOIs float64
	for _, q := range queries {
		cs, err := p.statsFor(q.Iq)
		if err != nil {
			return err
		}
		cm := costmodel.Params{
			Alpha0: q.Alpha0, K: min(q.K, p.tree.Len()),
			Fanout: p.fanout, MaxAgg: cs.maxAgg, Layers: cs.layers,
		}
		_, leafNA, err := cm.Estimate()
		if err != nil {
			return err
		}
		estAccesses += leafNA*(1+1/p.fanout) + 2

		start := time.Now()
		if _, _, err := p.tree.Query(q); err != nil {
			return err
		}
		idxMicros += float64(time.Since(start).Microseconds())

		start = time.Now()
		if _, err := p.scan.Query(q); err != nil {
			return err
		}
		scanMicros += float64(time.Since(start).Microseconds())
		scannedPOIs += float64(p.scan.Len())
	}
	if estAccesses <= 0 || scannedPOIs <= 0 {
		return errors.New("planner: degenerate calibration")
	}
	p.usPerAccess = math.Max(idxMicros/estAccesses, 1e-6)
	p.usPerPOI = math.Max(scanMicros/scannedPOIs, 1e-6)
	return nil
}

// Query plans and executes q, returning the results, the plan taken and
// the index's work counters (zero when the scan ran).
func (p *Planner) Query(q core.Query) ([]core.Result, Plan, core.QueryStats, error) {
	return p.QueryCtx(context.Background(), q, nil)
}

// QueryCtx plans and executes q with per-query options. When opts carries
// an explain recorder, the plan is attached to it before execution, the
// recorder is finished on every path (a scan-engine explain carries the
// plan and outcome but no tree forensics — the tree never ran), and the
// executed plan feeds the calibration metrics when the planner is
// instrumented. On an estimate-only planner (NewEstimator) the tree always
// executes and the plan is advisory.
func (p *Planner) QueryCtx(ctx context.Context, q core.Query, opts *core.QueryOpts) ([]core.Result, Plan, core.QueryStats, error) {
	plan, err := p.Plan(q)
	if err != nil {
		return nil, plan, core.QueryStats{}, err
	}
	var ex *core.Explain
	if opts != nil {
		ex = opts.Explain
	}
	if ex != nil {
		ex.Plan = plan.Explain()
	}
	if plan.Engine == UseScan && p.scan != nil {
		res, err := p.scan.Query(q)
		ex.Finish(res, nil, err)
		p.Observe(plan, ex)
		return res, plan, core.QueryStats{}, err
	}
	res, stats, err := p.tree.QueryCtx(ctx, q, opts)
	p.Observe(plan, ex)
	return res, plan, stats, err
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
