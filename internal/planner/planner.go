// Package planner turns the Section-6 cost analysis into a query
// optimizer, the use the paper suggests ("the analysis can also be used as
// a cost model for query optimization purposes"): for each kNNTA query it
// estimates the best-first search's node accesses from the aggregate
// distribution of the query's interval class and chooses between the
// TAR-tree and the sequential scan — the scan wins when k approaches the
// data set size or the search region degenerates to most of the space.
package planner

import (
	"errors"
	"math"
	"time"

	"tartree/internal/core"
	"tartree/internal/costmodel"
	"tartree/internal/powerlaw"
	"tartree/internal/seqscan"
	"tartree/internal/tia"
)

// Engine names the execution strategy a Plan selects.
type Engine int

const (
	// UseIndex answers with best-first search over the TAR-tree.
	UseIndex Engine = iota
	// UseScan answers with the sequential scan.
	UseScan
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	if e == UseScan {
		return "sequential-scan"
	}
	return "tar-tree"
}

// Plan is the optimizer's decision with its supporting estimates.
type Plan struct {
	Engine Engine
	// EstimatedFk is the predicted ranking score of the kth result.
	EstimatedFk float64
	// IndexCost and ScanCost are the predicted costs in microseconds when
	// calibrated, otherwise in abstract page-access units.
	IndexCost, ScanCost float64
}

// classStats caches the fitted cost-model layers for one interval length.
type classStats struct {
	layers  []costmodel.Layer
	maxAgg  int64
	builtAt int // tree size when fitted; refitted after significant growth
}

// Planner plans and executes kNNTA queries over one tree.
type Planner struct {
	tree   *core.Tree
	scan   *seqscan.Scanner
	fanout float64
	// classes caches per-interval-length statistics.
	classes map[int64]*classStats
	// Calibration coefficients; zero until Calibrate runs.
	usPerAccess float64 // microseconds per estimated index node access
	usPerPOI    float64 // microseconds per scanned POI
}

// New builds a planner for tr, constructing the sequential-scan fallback
// from the tree's own registry.
func New(tr *core.Tree) (*Planner, error) {
	opts := tr.Options()
	scan := seqscan.New(opts.World, opts.Semantics)
	var ferr error
	tr.POIs(func(p core.POI, total int64) bool {
		hist, err := tr.History(p.ID)
		if err != nil {
			ferr = err
			return false
		}
		scan.Add(p, hist)
		return true
	})
	if ferr != nil {
		return nil, ferr
	}
	return &Planner{
		tree:    tr,
		scan:    scan,
		fanout:  0.69 * float64(core.CapacityFor(opts.NodeSize, tr.Dims())),
		classes: make(map[int64]*classStats),
	}, nil
}

// statsFor returns (building if needed) the layer statistics of the
// query's interval-length class.
func (p *Planner) statsFor(iv tia.Interval) (*classStats, error) {
	length := iv.End - iv.Start
	cs := p.classes[length]
	if cs != nil && p.tree.Len() < cs.builtAt*5/4 {
		return cs, nil
	}
	var aggs []int64
	var ferr error
	p.tree.POIs(func(poi core.POI, total int64) bool {
		a, err := p.tree.AggregateMirror(poi.ID, iv)
		if err != nil {
			ferr = err
			return false
		}
		aggs = append(aggs, a)
		return true
	})
	if ferr != nil {
		return nil, ferr
	}
	if len(aggs) == 0 {
		return nil, errors.New("planner: empty tree")
	}
	cs = &classStats{builtAt: p.tree.Len()}
	cs.layers, cs.maxAgg = buildLayers(aggs)
	p.classes[length] = cs
	return cs, nil
}

// buildLayers mirrors the evaluation harness: empirical body below the
// fitted cutoff, power-law tail above it.
func buildLayers(aggs []int64) ([]costmodel.Layer, int64) {
	var maxAgg int64 = 1
	var nonzero []int64
	for _, a := range aggs {
		if a > maxAgg {
			maxAgg = a
		}
		if a > 0 {
			nonzero = append(nonzero, a)
		}
	}
	empirical := costmodel.EmpiricalLayers(aggs)
	fit, err := powerlaw.Estimate(nonzero, powerlaw.FitOptions{})
	if err != nil {
		return empirical, maxAgg
	}
	var layers []costmodel.Layer
	for _, l := range empirical {
		if l.X < fit.Xmin {
			layers = append(layers, l)
		}
	}
	tail, err := costmodel.PowerLawLayers(float64(fit.NTail), fit.Beta, fit.Xmin, maxAgg, 0)
	if err != nil {
		return empirical, maxAgg
	}
	return append(layers, tail...), maxAgg
}

// Plan estimates both engines' costs for q and picks the cheaper.
func (p *Planner) Plan(q core.Query) (Plan, error) {
	if err := q.Validate(); err != nil {
		return Plan{}, err
	}
	n := p.tree.Len()
	if n == 0 {
		return Plan{Engine: UseScan}, nil
	}
	cs, err := p.statsFor(q.Iq)
	if err != nil {
		return Plan{}, err
	}
	cm := costmodel.Params{
		Alpha0: q.Alpha0,
		K:      min(q.K, n),
		Fanout: p.fanout,
		MaxAgg: cs.maxAgg,
		Layers: cs.layers,
	}
	fk, leafNA, err := cm.Estimate()
	if err != nil {
		return Plan{}, err
	}
	// Index cost: estimated leaf accesses plus the proportional internal
	// accesses and the normalization read. Scan cost: one pass over N POIs.
	accesses := leafNA*(1+1/p.fanout) + 2
	pois := float64(n)
	plan := Plan{EstimatedFk: fk}
	if p.usPerAccess > 0 && p.usPerPOI > 0 {
		plan.IndexCost = accesses * p.usPerAccess
		plan.ScanCost = pois * p.usPerPOI
	} else {
		// Uncalibrated: compare in page units; a scanned page holds about
		// one node's worth of POIs.
		plan.IndexCost = accesses
		plan.ScanCost = pois / p.fanout
	}
	if plan.IndexCost <= plan.ScanCost {
		plan.Engine = UseIndex
	} else {
		plan.Engine = UseScan
	}
	return plan, nil
}

// Calibrate measures both engines on the given sample queries and derives
// microsecond cost coefficients, turning Plan's comparison from page units
// into predicted wall time.
func (p *Planner) Calibrate(queries []core.Query) error {
	if len(queries) == 0 {
		return errors.New("planner: no calibration queries")
	}
	var idxMicros, estAccesses, scanMicros, scannedPOIs float64
	for _, q := range queries {
		cs, err := p.statsFor(q.Iq)
		if err != nil {
			return err
		}
		cm := costmodel.Params{
			Alpha0: q.Alpha0, K: min(q.K, p.tree.Len()),
			Fanout: p.fanout, MaxAgg: cs.maxAgg, Layers: cs.layers,
		}
		_, leafNA, err := cm.Estimate()
		if err != nil {
			return err
		}
		estAccesses += leafNA*(1+1/p.fanout) + 2

		start := time.Now()
		if _, _, err := p.tree.Query(q); err != nil {
			return err
		}
		idxMicros += float64(time.Since(start).Microseconds())

		start = time.Now()
		if _, err := p.scan.Query(q); err != nil {
			return err
		}
		scanMicros += float64(time.Since(start).Microseconds())
		scannedPOIs += float64(p.scan.Len())
	}
	if estAccesses <= 0 || scannedPOIs <= 0 {
		return errors.New("planner: degenerate calibration")
	}
	p.usPerAccess = math.Max(idxMicros/estAccesses, 1e-6)
	p.usPerPOI = math.Max(scanMicros/scannedPOIs, 1e-6)
	return nil
}

// Query plans and executes q, returning the results, the plan taken and
// the index's work counters (zero when the scan ran).
func (p *Planner) Query(q core.Query) ([]core.Result, Plan, core.QueryStats, error) {
	plan, err := p.Plan(q)
	if err != nil {
		return nil, plan, core.QueryStats{}, err
	}
	if plan.Engine == UseScan {
		res, err := p.scan.Query(q)
		return res, plan, core.QueryStats{}, err
	}
	res, stats, err := p.tree.Query(q)
	return res, plan, stats, err
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
