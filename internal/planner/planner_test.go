package planner

import (
	"math"
	"math/rand"
	"testing"

	"tartree/internal/core"
	"tartree/internal/geo"
	"tartree/internal/tia"
)

func buildTree(t testing.TB, n int, seed int64) (*core.Tree, *rand.Rand) {
	t.Helper()
	return buildTreeGrouping(t, n, seed, core.TAR3D)
}

// buildTreeGrouping is buildTree with the grouping as a parameter, so the
// crossover tests can pin the planner's decision for every tree layout.
func buildTreeGrouping(t testing.TB, n int, seed int64, g core.Grouping) (*core.Tree, *rand.Rand) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tr, err := core.NewTree(core.Options{
		World:       geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{100, 100}},
		Grouping:    g,
		EpochStart:  0,
		EpochLength: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		var hist []tia.Record
		scale := math.Pow(r.Float64(), -1.1)
		for ep := int64(0); ep < 20; ep++ {
			if r.Intn(3) == 0 {
				agg := int64(1 + scale*r.Float64())
				if agg > 300 {
					agg = 300
				}
				hist = append(hist, tia.Record{Ts: ep * 10, Te: ep*10 + 10, Agg: agg})
			}
		}
		if err := tr.InsertPOI(core.POI{ID: int64(i), X: r.Float64() * 100, Y: r.Float64() * 100}, hist); err != nil {
			t.Fatal(err)
		}
	}
	return tr, r
}

func TestPlanExtremes(t *testing.T) {
	tr, _ := buildTree(t, 2000, 9)
	p, err := New(tr)
	if err != nil {
		t.Fatal(err)
	}
	iv := tia.Interval{Start: 0, End: 200}
	// Small k: the index must win.
	small, err := p.Plan(core.Query{X: 50, Y: 50, Iq: iv, K: 5, Alpha0: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if small.Engine != UseIndex {
		t.Errorf("k=5: engine = %v (index %.1f vs scan %.1f)", small.Engine, small.IndexCost, small.ScanCost)
	}
	// k covering nearly everything: the scan must win.
	big, err := p.Plan(core.Query{X: 50, Y: 50, Iq: iv, K: 1900, Alpha0: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if big.Engine != UseScan {
		t.Errorf("k=1900: engine = %v (index %.1f vs scan %.1f)", big.Engine, big.IndexCost, big.ScanCost)
	}
	if big.EstimatedFk <= small.EstimatedFk {
		t.Errorf("estimated f(pk) should grow with k: %v vs %v", small.EstimatedFk, big.EstimatedFk)
	}
}

// Both engines must return identical results — the planner never changes
// answers, only costs.
func TestPlannerResultsMatch(t *testing.T) {
	tr, r := buildTree(t, 600, 4)
	p, err := New(tr)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		q := core.Query{
			X: r.Float64() * 100, Y: r.Float64() * 100,
			Iq:     tia.Interval{Start: int64(r.Intn(100)), End: int64(120 + r.Intn(80))},
			K:      1 + r.Intn(50),
			Alpha0: 0.1 + 0.8*r.Float64(),
		}
		res, _, _, err := p.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := tr.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(want) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(res), len(want))
		}
		for i := range res {
			if math.Abs(res[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("trial %d pos %d: %.9f vs %.9f", trial, i, res[i].Score, want[i].Score)
			}
		}
	}
}

func TestCalibration(t *testing.T) {
	tr, r := buildTree(t, 800, 14)
	p, err := New(tr)
	if err != nil {
		t.Fatal(err)
	}
	var sample []core.Query
	for i := 0; i < 8; i++ {
		sample = append(sample, core.Query{
			X: r.Float64() * 100, Y: r.Float64() * 100,
			Iq:     tia.Interval{Start: 0, End: 200},
			K:      10,
			Alpha0: 0.3,
		})
	}
	if err := p.Calibrate(sample); err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan(sample[0])
	if err != nil {
		t.Fatal(err)
	}
	if plan.IndexCost <= 0 || plan.ScanCost <= 0 {
		t.Errorf("calibrated costs = %+v", plan)
	}
	if err := p.Calibrate(nil); err == nil {
		t.Error("empty calibration accepted")
	}
}

func TestClassStatsCached(t *testing.T) {
	tr, _ := buildTree(t, 400, 5)
	p, err := New(tr)
	if err != nil {
		t.Fatal(err)
	}
	iv := tia.Interval{Start: 0, End: 100}
	if _, err := p.Plan(core.Query{X: 1, Y: 1, Iq: iv, K: 5, Alpha0: 0.5}); err != nil {
		t.Fatal(err)
	}
	if len(p.classes) != 1 {
		t.Fatalf("classes = %d", len(p.classes))
	}
	// Same length, different position: reuses the class.
	iv2 := tia.Interval{Start: 50, End: 150}
	if _, err := p.Plan(core.Query{X: 1, Y: 1, Iq: iv2, K: 5, Alpha0: 0.5}); err != nil {
		t.Fatal(err)
	}
	if len(p.classes) != 1 {
		t.Fatalf("classes after same-length query = %d", len(p.classes))
	}
	// New length: new class.
	iv3 := tia.Interval{Start: 0, End: 30}
	if _, err := p.Plan(core.Query{X: 1, Y: 1, Iq: iv3, K: 5, Alpha0: 0.5}); err != nil {
		t.Fatal(err)
	}
	if len(p.classes) != 2 {
		t.Fatalf("classes after new length = %d", len(p.classes))
	}
}

func TestPlannerEmptyTree(t *testing.T) {
	tr, err := core.NewTree(core.Options{
		World:       geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{10, 10}},
		EpochLength: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(tr)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan(core.Query{X: 1, Y: 1, Iq: tia.Interval{Start: 0, End: 10}, K: 1, Alpha0: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Engine != UseScan {
		t.Error("empty tree should trivially scan")
	}
	res, _, _, err := p.Query(core.Query{X: 1, Y: 1, Iq: tia.Interval{Start: 0, End: 10}, K: 1, Alpha0: 0.5})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty query = %v %v", res, err)
	}
}

func TestEngineString(t *testing.T) {
	if UseIndex.String() != "tar-tree" || UseScan.String() != "sequential-scan" {
		t.Error("bad engine names")
	}
}
