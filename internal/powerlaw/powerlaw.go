// Package powerlaw implements discrete power-law distributions: the
// Hurwitz zeta function, maximum-likelihood fitting with KS-minimizing
// lower cutoff and a bootstrap goodness-of-fit p-value (the method of
// Clauset, Shalizi and Newman that the paper applies in Section 6.1 /
// Table 2), and sampling.
//
// The paper's cost model rests on the observation that the number of POIs
// with a given aggregate value follows p(x) = x^−β / ζ(β, xmin); this
// package provides both directions — estimating (β, xmin) from data and
// generating data with a prescribed (β, xmin).
package powerlaw

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// HurwitzZeta computes ζ(s, q) = Σ_{i=0..∞} (q+i)^−s for s > 1, q > 0,
// using direct summation plus an Euler–Maclaurin tail.
func HurwitzZeta(s, q float64) float64 {
	if s <= 1 || q <= 0 {
		return math.NaN()
	}
	const direct = 64
	sum := 0.0
	for i := 0; i < direct; i++ {
		sum += math.Pow(q+float64(i), -s)
	}
	// Euler–Maclaurin tail starting at a = q + direct:
	// ∫_a^∞ x^−s dx + a^−s/2 + s·a^−(s+1)/12 − s(s+1)(s+2)·a^−(s+3)/720.
	a := q + direct
	sum += math.Pow(a, 1-s)/(s-1) + math.Pow(a, -s)/2 +
		s*math.Pow(a, -s-1)/12 - s*(s+1)*(s+2)*math.Pow(a, -s-3)/720
	return sum
}

// Dist is a discrete power law with pmf p(x) = x^−β / ζ(β, xmin) for
// integers x ≥ xmin.
type Dist struct {
	Beta float64
	Xmin int64
	z    float64 // ζ(β, xmin)
}

// NewDist constructs the distribution, precomputing its normalizer.
func NewDist(beta float64, xmin int64) (*Dist, error) {
	if beta <= 1 {
		return nil, errors.New("powerlaw: β must exceed 1")
	}
	if xmin < 1 {
		return nil, errors.New("powerlaw: xmin must be at least 1")
	}
	return &Dist{Beta: beta, Xmin: xmin, z: HurwitzZeta(beta, float64(xmin))}, nil
}

// PMF returns P(X = x).
func (d *Dist) PMF(x int64) float64 {
	if x < d.Xmin {
		return 0
	}
	return math.Pow(float64(x), -d.Beta) / d.z
}

// SF returns the survival function P(X >= x) = ζ(β, x)/ζ(β, xmin).
func (d *Dist) SF(x int64) float64 {
	if x <= d.Xmin {
		return 1
	}
	return HurwitzZeta(d.Beta, float64(x)) / d.z
}

// CDF returns P(X <= x) = 1 − P(X >= x+1).
func (d *Dist) CDF(x int64) float64 {
	if x < d.Xmin {
		return 0
	}
	return 1 - d.SF(x+1)
}

// Mean returns E[X] = ζ(β−1, xmin)/ζ(β, xmin) (infinite when β <= 2).
func (d *Dist) Mean() float64 {
	if d.Beta <= 2 {
		return math.Inf(1)
	}
	return HurwitzZeta(d.Beta-1, float64(d.Xmin)) / d.z
}

// Sampler draws from the distribution. It wraps rand.Zipf, whose law
// P(k) ∝ (v+k)^−s with v = xmin yields exactly x = xmin + k ∝ x^−β.
type Sampler struct {
	z *rand.Zipf
	d *Dist
}

// NewSampler creates a sampler using r as the randomness source.
func (d *Dist) NewSampler(r *rand.Rand) *Sampler {
	return &Sampler{z: rand.NewZipf(r, d.Beta, float64(d.Xmin), math.MaxInt32), d: d}
}

// Sample draws one value.
func (s *Sampler) Sample() int64 { return int64(s.d.Xmin) + int64(s.z.Uint64()) }

// Fit is the result of fitting a discrete power law to data.
type Fit struct {
	Beta  float64 // β̂: estimated scaling parameter
	Xmin  int64   // x̂min: estimated lower bound of power-law behavior
	KS    float64 // Kolmogorov–Smirnov distance of the tail fit
	NTail int     // number of observations ≥ x̂min
	N     int     // total observations
}

// Dist returns the fitted distribution.
func (f Fit) Dist() *Dist {
	d, _ := NewDist(f.Beta, f.Xmin)
	return d
}

// mleBeta maximizes the discrete power-law log-likelihood
// L(β) = −n·ln ζ(β, xmin) − β·Σ ln x over β ∈ (1, 20] by golden-section
// search (L is unimodal in β).
func mleBeta(sumLogX float64, n int, xmin int64) float64 {
	ll := func(beta float64) float64 {
		return -float64(n)*math.Log(HurwitzZeta(beta, float64(xmin))) - beta*sumLogX
	}
	lo, hi := 1.0001, 20.0
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := ll(c), ll(d)
	for i := 0; i < 100 && b-a > 1e-7; i++ {
		if fc > fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = ll(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = ll(d)
		}
	}
	return (a + b) / 2
}

// ksDistance computes the KS statistic between the empirical distribution
// of tail (sorted ascending, all >= xmin) and the fitted power law.
func ksDistance(tail []int64, d *Dist) float64 {
	n := float64(len(tail))
	maxD := 0.0
	i := 0
	for i < len(tail) {
		x := tail[i]
		j := i
		for j < len(tail) && tail[j] == x {
			j++
		}
		empLo := float64(i) / n // empirical CDF just below x
		empHi := float64(j) / n // empirical CDF at x
		// Discrete two-sided KS: compare the CDFs both just below and at
		// the atom x.
		if dd := math.Abs(d.CDF(x-1) - empLo); dd > maxD {
			maxD = dd
		}
		if dd := math.Abs(d.CDF(x) - empHi); dd > maxD {
			maxD = dd
		}
		i = j
	}
	return maxD
}

// FitTail fits β with a fixed xmin.
func FitTail(data []int64, xmin int64) (Fit, error) {
	var tail []int64
	sumLog := 0.0
	for _, x := range data {
		if x >= xmin {
			tail = append(tail, x)
			sumLog += math.Log(float64(x))
		}
	}
	if len(tail) < 2 {
		return Fit{}, errors.New("powerlaw: too few tail observations")
	}
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	beta := mleBeta(sumLog, len(tail), xmin)
	d, err := NewDist(beta, xmin)
	if err != nil {
		return Fit{}, err
	}
	return Fit{
		Beta:  beta,
		Xmin:  xmin,
		KS:    ksDistance(tail, d),
		NTail: len(tail),
		N:     len(data),
	}, nil
}

// FitOptions tunes Estimate.
type FitOptions struct {
	// MaxXmin caps the candidate lower cutoffs (0: up to the 90th
	// percentile of distinct values, a practical CSN convention).
	MaxXmin int64
	// MinTail is the minimum number of tail observations a candidate xmin
	// must retain (default 25).
	MinTail int
}

// Estimate fits (β, xmin) by trying every candidate xmin and keeping the
// one whose tail fit minimizes the KS distance — the Clauset–Shalizi–
// Newman estimator.
func Estimate(data []int64, opts FitOptions) (Fit, error) {
	if len(data) < 10 {
		return Fit{}, errors.New("powerlaw: too few observations")
	}
	if opts.MinTail == 0 {
		opts.MinTail = 25
	}
	distinct := distinctSorted(data)
	if opts.MaxXmin == 0 {
		opts.MaxXmin = distinct[int(float64(len(distinct))*0.9)]
	}
	var best Fit
	found := false
	for _, xmin := range distinct {
		if xmin < 1 || xmin > opts.MaxXmin {
			continue
		}
		f, err := FitTail(data, xmin)
		if err != nil || f.NTail < opts.MinTail {
			continue
		}
		if !found || f.KS < best.KS {
			best, found = f, true
		}
	}
	if !found {
		return Fit{}, errors.New("powerlaw: no feasible xmin")
	}
	return best, nil
}

func distinctSorted(data []int64) []int64 {
	s := append([]int64(nil), data...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	var last int64 = math.MinInt64
	for _, x := range s {
		if x != last {
			out = append(out, x)
			last = x
		}
	}
	return out
}

// PValue runs the semi-parametric bootstrap of CSN: synthetic data sets are
// drawn (body resampled from the observed sub-xmin values, tail from the
// fitted power law), refit, and the p-value is the share whose KS distance
// exceeds the observed one. A p-value above 0.1 means the power-law
// hypothesis cannot be ruled out — the criterion the paper quotes.
func PValue(data []int64, fit Fit, trials int, r *rand.Rand) (float64, error) {
	return PValueOpts(data, fit, trials, r, FitOptions{})
}

// PValueOpts is PValue with explicit fit options for the bootstrap refits
// (they should match the options used for the original fit).
func PValueOpts(data []int64, fit Fit, trials int, r *rand.Rand, opts FitOptions) (float64, error) {
	if trials <= 0 {
		trials = 100
	}
	var body []int64
	for _, x := range data {
		if x < fit.Xmin {
			body = append(body, x)
		}
	}
	pTail := float64(fit.NTail) / float64(fit.N)
	sampler := fit.Dist().NewSampler(r)
	exceed := 0
	synth := make([]int64, fit.N)
	for t := 0; t < trials; t++ {
		for i := range synth {
			if len(body) == 0 || r.Float64() < pTail {
				synth[i] = sampler.Sample()
			} else {
				synth[i] = body[r.Intn(len(body))]
			}
		}
		sf, err := Estimate(synth, opts)
		if err != nil {
			continue
		}
		if sf.KS > fit.KS {
			exceed++
		}
	}
	return float64(exceed) / float64(trials), nil
}
