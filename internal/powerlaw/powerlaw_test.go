package powerlaw

import (
	"math"
	"math/rand"
	"testing"
)

func TestHurwitzZetaKnownValues(t *testing.T) {
	cases := []struct {
		s, q, want float64
	}{
		{2, 1, math.Pi * math.Pi / 6},     // ζ(2) = π²/6
		{3, 1, 1.2020569031595943},        // Apéry's constant
		{2, 2, math.Pi*math.Pi/6 - 1},     // ζ(2,2) = ζ(2) − 1
		{4, 1, math.Pow(math.Pi, 4) / 90}, // ζ(4)
		{2, 10, 0.10516633568168575},      // ζ(2,10)
		{1.5, 1, 2.6123753486854883},      // ζ(3/2)
	}
	for _, c := range cases {
		got := HurwitzZeta(c.s, c.q)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("ζ(%g,%g) = %.12f, want %.12f", c.s, c.q, got, c.want)
		}
	}
	if !math.IsNaN(HurwitzZeta(0.5, 1)) {
		t.Error("ζ with s<=1 should be NaN")
	}
	if !math.IsNaN(HurwitzZeta(2, -1)) {
		t.Error("ζ with q<=0 should be NaN")
	}
}

func TestDistBasics(t *testing.T) {
	if _, err := NewDist(0.9, 1); err == nil {
		t.Error("β<=1 accepted")
	}
	if _, err := NewDist(2, 0); err == nil {
		t.Error("xmin<1 accepted")
	}
	d, err := NewDist(2.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.PMF(2) != 0 {
		t.Error("pmf below xmin should be 0")
	}
	// PMF sums to 1 (truncated sum + survival of the remainder).
	sum := 0.0
	for x := int64(3); x < 2000; x++ {
		sum += d.PMF(x)
	}
	sum += d.SF(2000)
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("pmf total = %.9f", sum)
	}
	// CDF + SF = 1 at every point.
	for _, x := range []int64{3, 5, 17, 100} {
		if got := d.CDF(x) + d.SF(x+1); math.Abs(got-1) > 1e-12 {
			t.Errorf("CDF(%d)+SF(%d) = %v", x, x+1, got)
		}
	}
	// CDF monotone.
	prev := 0.0
	for x := int64(3); x < 50; x++ {
		c := d.CDF(x)
		if c < prev {
			t.Fatalf("CDF not monotone at %d", x)
		}
		prev = c
	}
}

func TestMean(t *testing.T) {
	d, _ := NewDist(3, 1)
	// E[X] = ζ(2)/ζ(3) ≈ 1.3684.
	want := (math.Pi * math.Pi / 6) / 1.2020569031595943
	if got := d.Mean(); math.Abs(got-want) > 1e-9 {
		t.Errorf("mean = %v, want %v", got, want)
	}
	d2, _ := NewDist(1.8, 1)
	if !math.IsInf(d2.Mean(), 1) {
		t.Error("mean should be infinite for β<=2")
	}
}

func TestSamplerMatchesPMF(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d, _ := NewDist(2.5, 2)
	s := d.NewSampler(r)
	const n = 200000
	counts := map[int64]int{}
	for i := 0; i < n; i++ {
		x := s.Sample()
		if x < 2 {
			t.Fatalf("sample %d below xmin", x)
		}
		counts[x]++
	}
	for _, x := range []int64{2, 3, 5, 10} {
		emp := float64(counts[x]) / n
		want := d.PMF(x)
		if math.Abs(emp-want) > 0.01+0.1*want {
			t.Errorf("P(%d): empirical %.4f vs pmf %.4f", x, emp, want)
		}
	}
}

func TestFitRecoversParameters(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, beta := range []float64{2.2, 2.8, 3.2} {
		d, _ := NewDist(beta, 5)
		s := d.NewSampler(r)
		data := make([]int64, 20000)
		for i := range data {
			data[i] = s.Sample()
		}
		fit, err := Estimate(data, FitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Beta-beta) > 0.15 {
			t.Errorf("β = %.3f, want ≈%.1f", fit.Beta, beta)
		}
		if fit.Xmin > 20 {
			t.Errorf("x̂min = %d, want near 5", fit.Xmin)
		}
		if fit.KS > 0.05 {
			t.Errorf("KS = %.4f, too large for true power-law data", fit.KS)
		}
	}
}

func TestFitWithBody(t *testing.T) {
	// Data with a non-power-law body below xmin=20 and a power-law tail:
	// the estimator should find a cutoff near 20.
	r := rand.New(rand.NewSource(3))
	d, _ := NewDist(2.5, 20)
	s := d.NewSampler(r)
	data := make([]int64, 0, 30000)
	for i := 0; i < 20000; i++ {
		data = append(data, int64(1+r.Intn(19))) // uniform body
	}
	for i := 0; i < 10000; i++ {
		data = append(data, s.Sample())
	}
	fit, err := Estimate(data, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Xmin < 15 || fit.Xmin > 30 {
		t.Errorf("x̂min = %d, want ≈20", fit.Xmin)
	}
	if math.Abs(fit.Beta-2.5) > 0.2 {
		t.Errorf("β = %.3f, want ≈2.5", fit.Beta)
	}
}

func TestPValueAcceptsPowerLaw(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	d, _ := NewDist(2.8, 3)
	s := d.NewSampler(r)
	data := make([]int64, 3000)
	for i := range data {
		data[i] = s.Sample()
	}
	fit, err := Estimate(data, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := PValue(data, fit, 60, r)
	if err != nil {
		t.Fatal(err)
	}
	// The paper rules out the power law when p <= 0.1; true power-law data
	// must comfortably pass.
	if p <= 0.1 {
		t.Errorf("p-value = %.3f for true power-law data", p)
	}
}

func TestPValueRejectsGeometric(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	data := make([]int64, 20000)
	for i := range data {
		// Geometric (exponential-tailed) data is not a power law.
		x := int64(1)
		for r.Float64() < 0.75 {
			x++
		}
		data[i] = x
	}
	// Require a substantial tail so the KS-minimizing cutoff cannot hide
	// in the sparse extreme tail, where anything fits.
	fit, err := Estimate(data, FitOptions{MinTail: 500})
	if err != nil {
		t.Fatal(err)
	}
	p, err := PValueOpts(data, fit, 60, r, FitOptions{MinTail: 500})
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.1 {
		t.Errorf("p-value = %.3f: geometric data should be ruled out", p)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := Estimate([]int64{1, 2, 3}, FitOptions{}); err == nil {
		t.Error("tiny data accepted")
	}
	if _, err := FitTail([]int64{5}, 1); err == nil {
		t.Error("single observation accepted")
	}
}

func TestKSDistanceZeroForPerfectFit(t *testing.T) {
	// Empirical data drawn exactly proportional to the pmf over a truncated
	// support should give a small KS distance.
	d, _ := NewDist(2.0, 1)
	var data []int64
	for x := int64(1); x <= 200; x++ {
		n := int(math.Round(d.PMF(x) * 100000))
		for i := 0; i < n; i++ {
			data = append(data, x)
		}
	}
	fit, err := FitTail(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fit.KS > 0.02 {
		t.Errorf("KS = %.4f for near-perfect data", fit.KS)
	}
}

func BenchmarkEstimate(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	d, _ := NewDist(2.8, 5)
	s := d.NewSampler(r)
	data := make([]int64, 10000)
	for i := range data {
		data[i] = s.Sample()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(data, FitOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
