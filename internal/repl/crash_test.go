package repl

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"tartree/internal/wal"
)

// crashLeader is a static leader for the kill-point harness: the snapshot
// endpoint serves a blob captured at LSN 200 (so every follower run sees
// the identical bootstrap artifact no matter how far the leader's live
// tree has moved), and the WAL endpoint is the real ServeWAL with a
// 100-record-per-connection budget, which makes the follower's apply
// sequence — and therefore its write-unit trace — fully deterministic.
type crashLeader struct {
	store *wal.Store
	blob  []byte
	lsn   uint64
	srv   *httptest.Server
}

func startCrashLeader(t *testing.T, cs []wal.CheckIn, bootRecords int) *crashLeader {
	t.Helper()
	s, err := wal.OpenStore(testFS(t), newBaseTree, wal.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if _, err := s.Ingest(cs[:bootRecords]); err != nil {
		t.Fatal(err)
	}
	blob, lsn, err := s.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != uint64(bootRecords) {
		t.Fatalf("snapshot LSN %d, want %d", lsn, bootRecords)
	}
	if _, err := s.Ingest(cs[bootRecords:]); err != nil {
		t.Fatal(err)
	}

	ld := &Leader{
		Store:            s,
		Token:            testToken,
		ChunkRecords:     25,
		MaxStreamRecords: 100,
		PollTimeout:      1, // an idle poll closes immediately; reconnects are cheap
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repl/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if !Authorized(r, testToken) {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		w.Header().Set(HeaderSnapshotLSN, strconv.FormatUint(lsn, 10))
		w.Write(blob)
	})
	mux.HandleFunc("/v1/repl/wal", ld.ServeWAL)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return &crashLeader{store: s, blob: blob, lsn: lsn, srv: srv}
}

// crashFollowerWorkload drives a follower through every replication phase —
// snapshot bootstrap, streaming applies across its own segment rotations,
// a mid-run checkpoint (segment truncation) and a final checkpoint — until
// it converges at target or the FaultFS kills it. It returns the highest
// LSN acknowledged durable locally before the crash.
//
// The workload is strictly sequential (no goroutines, BatchMax 1, one
// record per local group commit) so the counting run's unit trace aims
// budgets at real phase boundaries.
func crashFollowerWorkload(fs wal.FS, leaderURL string, target uint64) uint64 {
	ctx := context.Background()
	opts := FollowerOptions{LeaderURL: leaderURL, Token: testToken, BatchMax: 1}
	if _, _, err := Bootstrap(ctx, fs, opts); err != nil {
		return 0
	}
	s, err := wal.OpenStore(fs, newBaseTree, wal.StoreOptions{SegmentBytes: 768})
	if err != nil {
		return 0
	}
	defer s.Close()
	f := &Follower{Store: s, Opts: opts}
	for s.AppliedLSN() < target {
		if _, err := f.streamOnce(ctx); err != nil {
			return s.AppliedLSN()
		}
		// The 100-record connection budget steps applied exactly through
		// 300, 400, 500; checkpoint on the middle step.
		if s.AppliedLSN() == crashLeaderBoot+200 {
			// Checkpoint halfway: exercises the follower's own snapshot
			// write, rename and segment truncation under fire.
			if _, err := s.Checkpoint(); err != nil {
				return s.AppliedLSN()
			}
		}
	}
	if _, err := s.Checkpoint(); err != nil {
		return s.AppliedLSN()
	}
	return s.AppliedLSN()
}

const (
	crashLeaderBoot = 200
	crashCorpusLen  = 500
)

// TestFollowerCrashRecoveryKillPoints is the fault-injection proof of the
// replication contract: kill the follower at budgets aimed at every I/O
// class in every phase — mid-bootstrap (torn snapshot download, before and
// after the install rename), mid-segment append, mid-rotation,
// mid-checkpoint — then restart it over the surviving files and require it
// to converge to the leader: byte-identical applied LSN and
// answer-identical on the query battery. A restart must never lose a
// locally acknowledged record and never re-download a snapshot it already
// installed.
func TestFollowerCrashRecoveryKillPoints(t *testing.T) {
	cs := corpus(crashCorpusLen, 41)
	horizon := int64(crashCorpusLen*3 + 2*testEpochLn)
	c := startCrashLeader(t, cs, crashLeaderBoot)
	// Flush the leader up front so the shared assertStoresAgree flushes are
	// no-ops under the parallel subtests.
	if err := c.store.FlushEpochs(horizon); err != nil {
		t.Fatal(err)
	}

	// Counting run: record the unit offset of every operation class.
	countFS, err := wal.NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	counter := wal.NewFaultFS(countFS, -1)
	if got := crashFollowerWorkload(counter, c.srv.URL, crashCorpusLen); got != crashCorpusLen {
		t.Fatalf("counting run converged at %d of %d", got, crashCorpusLen)
	}
	trace := counter.Trace()
	if len(trace) == 0 {
		t.Fatal("empty fault trace")
	}

	byOp := make(map[wal.Op][]wal.OpPoint)
	for _, p := range trace {
		byOp[p.Op] = append(byOp[p.Op], p)
	}
	total := counter.Used()
	seen := make(map[int64]bool)
	var budgets []int64
	for _, points := range byOp {
		picks := []wal.OpPoint{points[0], points[len(points)/2], points[len(points)-1]}
		for _, p := range picks {
			for _, b := range []int64{p.Used, p.Used + 13} {
				if b >= 0 && b < total && !seen[b] {
					seen[b] = true
					budgets = append(budgets, b)
				}
			}
		}
	}
	// Every phase must actually be under fire: snapshot install (create,
	// write, sync, rename, dir sync), segment appends and rotations (write,
	// sync, create), checkpoint truncation (remove).
	for _, op := range []wal.Op{wal.OpWrite, wal.OpSync, wal.OpCreate, wal.OpRemove, wal.OpRename, wal.OpSyncDir} {
		if len(byOp[op]) == 0 {
			t.Errorf("workload never exercised op class %q", op)
		}
	}

	for _, budget := range budgets {
		budget := budget
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			t.Parallel()
			dirFS, err := wal.NewDirFS(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			faulty := wal.NewFaultFS(dirFS, budget)
			acked := crashFollowerWorkload(faulty, c.srv.URL, crashCorpusLen)
			if !faulty.Crashed() {
				t.Fatalf("budget %d did not crash the workload", budget)
			}

			// "Reboot" on the plain FS over whatever survived. Bootstrap
			// re-downloads only when the crash predates the install rename.
			ctx := context.Background()
			opts := FollowerOptions{LeaderURL: c.srv.URL, Token: testToken, BatchMax: 1}
			if _, _, err := Bootstrap(ctx, dirFS, opts); err != nil {
				t.Fatalf("re-bootstrap after crash: %v", err)
			}
			s, err := wal.OpenStore(dirFS, newBaseTree, wal.StoreOptions{NoSync: true})
			if err != nil {
				t.Fatalf("recovery failed after crash at budget %d: %v", budget, err)
			}
			defer s.Close()
			if got := s.AppliedLSN(); got < acked {
				t.Fatalf("LOST %d acknowledged records: acked %d, recovered %d", acked-got, acked, got)
			}
			f := &Follower{Store: s, Opts: opts}
			for s.AppliedLSN() < crashCorpusLen {
				if _, err := f.streamOnce(ctx); err != nil {
					t.Fatalf("resumed tail at LSN %d: %v", s.AppliedLSN(), err)
				}
			}
			if got := s.AppliedLSN(); got != crashCorpusLen {
				t.Fatalf("converged at LSN %d, want %d", got, crashCorpusLen)
			}
			assertStoresAgree(t, c.store, s, horizon)
		})
	}
	t.Logf("%d kill points across %d op classes", len(budgets), len(byOp))
}
