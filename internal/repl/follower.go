package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"tartree/internal/wal"
)

// ErrSnapshotRequired reports that the leader has truncated the LSN the
// follower needs (410 Gone): its WAL position was covered by a checkpoint
// and deleted, so tailing cannot resume. The operator restarts the
// follower with an empty data directory to re-bootstrap; an automatic
// wipe of a directory holding durable state is not this package's call.
var ErrSnapshotRequired = errors.New("repl: leader truncated our LSN; re-bootstrap from snapshot required")

// ErrUnauthorized reports a token the leader rejected — misconfiguration
// that retrying will not fix.
var ErrUnauthorized = errors.New("repl: leader rejected replication token")

// ErrDiverged reports that the follower's WAL runs ahead of the leader's
// (409 Conflict) — it replicated from a different leader or the leader
// lost acknowledged data. Unrecoverable without operator intervention.
var ErrDiverged = errors.New("repl: follower WAL is ahead of leader (diverged)")

// FollowerOptions configures Bootstrap and Follower.
type FollowerOptions struct {
	// LeaderURL is the leader's base URL, e.g. http://leader:7501.
	LeaderURL string
	// Token is the shared replication secret.
	Token string
	// Client issues the HTTP requests; nil means a dedicated client with
	// no overall timeout (streams are long-lived; cancellation comes from
	// the Run context).
	Client *http.Client

	Metrics *Metrics
	// Watermark, when set, is advanced after every applied batch — the
	// server's min_lsn queries park on it.
	Watermark *Watermark

	// BatchMax caps records per ApplyReplicated call. After one blocking
	// frame read the tail loop drains only already-buffered frames up to
	// this bound, so a quiet stream never delays an apply. 0 means 512.
	BatchMax int
	// RetryMin/RetryMax bound the jittered exponential reconnect backoff.
	// Zero values mean 100ms and 5s.
	RetryMin, RetryMax time.Duration
	// Logf, when set, receives reconnect/backoff noise.
	Logf func(format string, args ...any)
}

func (o *FollowerOptions) client() *http.Client {
	if o.Client != nil {
		return o.Client
	}
	return &http.Client{}
}

func (o *FollowerOptions) batchMax() int {
	if o.BatchMax > 0 {
		return o.BatchMax
	}
	return 512
}

func (o *FollowerOptions) retryMin() time.Duration {
	if o.RetryMin > 0 {
		return o.RetryMin
	}
	return 100 * time.Millisecond
}

func (o *FollowerOptions) retryMax() time.Duration {
	if o.RetryMax > 0 {
		return o.RetryMax
	}
	return 5 * time.Second
}

func (o *FollowerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

func (o *FollowerOptions) newRequest(ctx context.Context, path string) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, o.LeaderURL+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+o.Token)
	return req, nil
}

// Bootstrap prepares a follower's WAL directory. If the directory already
// holds state (a checkpoint or segments from an earlier run), it does
// nothing — the caller's normal OpenStore recovers locally and tailing
// resumes from the follower's own durable LSN, no re-download. Otherwise
// it fetches the leader's snapshot and installs it atomically as a local
// checkpoint (tmp + fsync + rename), so a crash mid-download leaves only
// a checkpoint.tmp that recovery already ignores and cleans.
//
// It returns the snapshot LSN and whether a download happened.
func Bootstrap(ctx context.Context, fs wal.FS, opts FollowerOptions) (uint64, bool, error) {
	has, err := wal.DirHasState(fs)
	if err != nil {
		return 0, false, err
	}
	if has {
		return 0, false, nil
	}
	req, err := opts.newRequest(ctx, "/v1/repl/snapshot")
	if err != nil {
		return 0, false, err
	}
	resp, err := opts.client().Do(req)
	if err != nil {
		return 0, false, fmt.Errorf("repl: fetching snapshot: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusUnauthorized, http.StatusForbidden:
		return 0, false, ErrUnauthorized
	default:
		return 0, false, fmt.Errorf("repl: snapshot request: %s", resp.Status)
	}
	lsn, err := strconv.ParseUint(resp.Header.Get(HeaderSnapshotLSN), 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("repl: snapshot response missing %s", HeaderSnapshotLSN)
	}
	if err := wal.InstallCheckpoint(fs, lsn, resp.Body); err != nil {
		return 0, false, fmt.Errorf("repl: installing snapshot: %w", err)
	}
	opts.Metrics.addBootstrap()
	return lsn, true, nil
}

// localError marks a failure of the follower's own store — appending or
// applying a batch locally. Reconnecting the stream cannot fix those, so
// Run treats them as fatal rather than retrying.
type localError struct{ err error }

func (e localError) Error() string { return "repl: local apply failed: " + e.err.Error() }
func (e localError) Unwrap() error { return e.err }

// Follower tails a leader's WAL stream into a local store. The store was
// opened normally (after Bootstrap prepared the directory), so every
// applied batch is re-logged to the follower's own WAL and folded into
// its tree through the exact path local ingest uses.
type Follower struct {
	Store *wal.Store
	Opts  FollowerOptions
}

// Run tails until ctx ends (returns ctx.Err()) or an unrecoverable
// condition surfaces (ErrSnapshotRequired, ErrUnauthorized, ErrDiverged,
// or a local apply/durability failure). Transient stream errors reconnect
// with jittered exponential backoff, resuming from the follower's own
// applied LSN.
func (f *Follower) Run(ctx context.Context) error {
	backoff := f.Opts.retryMin()
	for {
		madeProgress, err := f.streamOnce(ctx)
		switch {
		case err == nil:
			// Clean close (idle long-poll expiry or per-connection record
			// budget): reconnect immediately, the stream is the clock.
			backoff = f.Opts.retryMin()
			continue
		case ctx.Err() != nil:
			return ctx.Err()
		case errors.Is(err, ErrSnapshotRequired), errors.Is(err, ErrUnauthorized), errors.Is(err, ErrDiverged):
			return err
		case errors.Is(err, wal.ErrClosed):
			// Local store shut down under us: an orderly exit, not a fault.
			return err
		case errors.As(err, &localError{}):
			return err
		}
		if madeProgress {
			backoff = f.Opts.retryMin()
		}
		f.Opts.Metrics.addReconnect()
		f.Opts.logf("repl: stream dropped at LSN %d: %v (retrying in %v)", f.Store.AppliedLSN(), err, backoff)
		// Jitter ±50% so a fleet of followers does not reconnect in phase.
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
		if backoff *= 2; backoff > f.Opts.retryMax() {
			backoff = f.Opts.retryMax()
		}
	}
}

// streamOnce opens one /v1/repl/wal connection and applies frames until
// the stream ends. It reports whether any batch was applied, and nil on a
// clean end-of-stream.
func (f *Follower) streamOnce(ctx context.Context) (bool, error) {
	from := f.Store.AppliedLSN() + 1
	req, err := f.Opts.newRequest(ctx, "/v1/repl/wal?from="+strconv.FormatUint(from, 10))
	if err != nil {
		return false, err
	}
	resp, err := f.Opts.client().Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return false, ErrSnapshotRequired
	case http.StatusConflict:
		return false, ErrDiverged
	case http.StatusUnauthorized, http.StatusForbidden:
		return false, ErrUnauthorized
	default:
		return false, fmt.Errorf("repl: wal stream request: %s", resp.Status)
	}
	leaderDurable, _ := strconv.ParseUint(resp.Header.Get(HeaderDurableLSN), 10, 64)

	sc := wal.NewFrameScanner(resp.Body, from)
	batch := make([]wal.CheckIn, 0, f.Opts.batchMax())
	progressed := false
	for {
		// One blocking read, then drain whatever is already buffered so a
		// quiet stream applies immediately and a busy one applies in bulk.
		first := from
		batch = batch[:0]
		_, c, err := sc.Next()
		if err != nil {
			if err == io.EOF {
				return progressed, nil // clean close: reconnect without backoff
			}
			return progressed, err
		}
		batch = append(batch, c)
		for n := sc.Buffered(); n > 0 && len(batch) < f.Opts.batchMax(); n-- {
			if _, c, err = sc.Next(); err != nil {
				break
			}
			batch = append(batch, c)
		}
		applied, aerr := f.Store.ApplyReplicated(first, batch)
		if aerr != nil {
			return progressed, localError{aerr}
		}
		progressed = true
		from = first + uint64(len(batch))
		if f.Opts.Watermark != nil {
			f.Opts.Watermark.Advance(applied)
		}
		f.Opts.Metrics.addRecordsApplied(len(batch))
		f.Opts.Metrics.ObserveApplied(applied, leaderDurable)
		if err != nil && err != io.EOF {
			// The scanner error captured during the drain (torn frame,
			// corruption): surface after applying the good prefix.
			return progressed, err
		}
		if err == io.EOF {
			return progressed, nil
		}
	}
}
