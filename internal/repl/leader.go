package repl

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"tartree/internal/httpapi"
	"tartree/internal/wal"
)

// Leader serves a store's WAL to followers over HTTP. Mount it on the
// server mux with Register; both endpoints require the shared token.
//
// GET /v1/repl/snapshot streams a checkpoint-format snapshot of the tree
// at the leader's contiguous applied LSN (X-Tartree-Snapshot-Lsn), the
// follower's bootstrap artifact.
//
// GET /v1/repl/wal?from=<lsn> streams CRC32C frames from that LSN. The
// handler pushes everything durable, then long-polls the durable watermark
// and keeps streaming as records arrive; an idle poll expiring (or the
// per-connection record budget running out) ends the response cleanly, and
// the follower reconnects from its own applied LSN — which also refreshes
// the X-Tartree-Durable-Lsn header its lag gauges feed on. A from below
// the oldest surviving segment gets 410 Gone (checkpoint truncation ate
// it; re-bootstrap), a from beyond durable+1 gets 409 Conflict (the
// follower has records this leader never wrote — divergence).
type Leader struct {
	Store   *wal.Store
	Token   string
	Metrics *Metrics

	// ChunkRecords caps how many frames are encoded per write+flush.
	// 0 means 512.
	ChunkRecords int
	// MaxStreamRecords caps how many records one connection carries before
	// a clean close forces a header-refreshing reconnect. 0 means 1<<20.
	MaxStreamRecords int
	// PollTimeout bounds the idle long-poll before a clean close.
	// 0 means 10s.
	PollTimeout time.Duration
}

func (ld *Leader) chunkRecords() int {
	if ld.ChunkRecords > 0 {
		return ld.ChunkRecords
	}
	return 512
}

func (ld *Leader) maxStreamRecords() int {
	if ld.MaxStreamRecords > 0 {
		return ld.MaxStreamRecords
	}
	return 1 << 20
}

func (ld *Leader) pollTimeout() time.Duration {
	if ld.PollTimeout > 0 {
		return ld.PollTimeout
	}
	return 10 * time.Second
}

// Register mounts the replication endpoints on mux.
func (ld *Leader) Register(mux *http.ServeMux) {
	mux.HandleFunc("/v1/repl/snapshot", ld.ServeSnapshot)
	mux.HandleFunc("/v1/repl/wal", ld.ServeWAL)
}

// authorize writes the error response itself when it returns false.
func (ld *Leader) authorize(w http.ResponseWriter, r *http.Request) bool {
	if ld.Token == "" {
		httpapi.WriteStatusError(w, http.StatusForbidden, "replication disabled: no token configured")
		return false
	}
	if !Authorized(r, ld.Token) {
		httpapi.WriteStatusError(w, http.StatusUnauthorized, "missing or invalid replication token")
		return false
	}
	if r.Method != http.MethodGet {
		httpapi.WriteStatusError(w, http.StatusMethodNotAllowed, "GET only")
		return false
	}
	return true
}

// ServeSnapshot handles GET /v1/repl/snapshot.
func (ld *Leader) ServeSnapshot(w http.ResponseWriter, r *http.Request) {
	if !ld.authorize(w, r) {
		return
	}
	buf, lsn, err := ld.Store.EncodeSnapshot()
	if err != nil {
		httpapi.WriteStatusError(w, http.StatusInternalServerError, fmt.Sprintf("encoding snapshot: %v", err))
		return
	}
	ld.Metrics.addSnapshotServed()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.Header().Set(HeaderSnapshotLSN, strconv.FormatUint(lsn, 10))
	w.WriteHeader(http.StatusOK)
	w.Write(buf)
}

// ServeWAL handles GET /v1/repl/wal?from=<lsn>.
func (ld *Leader) ServeWAL(w http.ResponseWriter, r *http.Request) {
	if !ld.authorize(w, r) {
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil || from == 0 {
		httpapi.WriteStatusError(w, http.StatusBadRequest, "from must be a positive LSN")
		return
	}
	log := ld.Store.Log()
	if oldest := log.OldestLSN(); from < oldest {
		w.Header().Set(HeaderOldestLSN, strconv.FormatUint(oldest, 10))
		httpapi.WriteError(w, http.StatusGone, httpapi.CodeGone,
			fmt.Sprintf("LSN %d truncated by checkpoint (oldest %d): re-bootstrap from snapshot", from, oldest),
			map[string]any{"oldest_lsn": oldest})
		return
	}
	if durable := log.DurableLSN(); from > durable+1 {
		httpapi.WriteError(w, http.StatusConflict, httpapi.CodeConflict,
			fmt.Sprintf("LSN %d is beyond this leader's durable %d: follower has diverged", from, durable),
			map[string]any{"durable_lsn": durable})
		return
	}
	ld.Metrics.addStreamRequest()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderDurableLSN, strconv.FormatUint(log.DurableLSN(), 10))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	rd := log.OpenSegmentReader(from)
	defer rd.Close()
	ctx := r.Context()
	chunk := make([]wal.CheckIn, 0, ld.chunkRecords())
	sent := 0
	for sent < ld.maxStreamRecords() {
		// Drain one chunk of durable records.
		first := rd.NextLSN()
		chunk = chunk[:0]
		var rerr error
		for len(chunk) < cap(chunk) {
			_, c, err := rd.Next()
			if err != nil {
				rerr = err
				break
			}
			chunk = append(chunk, c)
		}
		if len(chunk) > 0 {
			if _, err := w.Write(wal.EncodeFrames(first, chunk)); err != nil {
				return // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
			sent += len(chunk)
			ld.Metrics.addRecordsStreamed(len(chunk))
		}
		switch {
		case rerr == nil:
			// Chunk filled; keep draining.
		case rerr == wal.ErrCaughtUp:
			// Long-poll: park on the durable watermark. Expiry is the
			// normal clean close — the follower reconnects.
			pollCtx, cancel := context.WithTimeout(ctx, ld.pollTimeout())
			err := log.WaitDurable(pollCtx, rd.NextLSN())
			cancel()
			if err != nil {
				return
			}
		default:
			// Truncation or corruption mid-stream: close the connection;
			// the follower's reconnect surfaces the right status code.
			return
		}
	}
}
