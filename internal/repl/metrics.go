package repl

import (
	"sync/atomic"
	"time"

	"tartree/internal/obs"
)

// Metrics publishes the replication telemetry into an obs.Registry. A nil
// *Metrics is valid and records nothing, matching the convention in
// internal/wal.
//
// On a follower it exports the replication SLO trio:
//
//	tartree_repl_applied_lsn    highest LSN applied locally
//	tartree_repl_lag_records    leader durable LSN − applied LSN (best known)
//	tartree_repl_lag_seconds    0 while caught up, else seconds since the
//	                            follower last was
//
// plus counters for records applied, reconnects and bootstraps. On a
// leader, counters for snapshots served, stream requests and records
// streamed.
type Metrics struct {
	// Leader side.
	SnapshotsServed *obs.Counter
	StreamRequests  *obs.Counter
	RecordsStreamed *obs.Counter

	// Follower side.
	RecordsApplied *obs.Counter
	Reconnects     *obs.Counter
	Bootstraps     *obs.Counter

	appliedLSN    atomic.Uint64
	leaderDurable atomic.Uint64
	// caughtUpSince is the UnixNano instant the follower last transitioned
	// to caught-up; 0 means it is behind and lag_seconds measures from
	// behindSince instead.
	caughtUp    atomic.Bool
	behindSince atomic.Int64
}

// NewMetrics registers the replication series in r. Pass nil to disable.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	m := &Metrics{
		SnapshotsServed: r.Counter("tartree_repl_snapshots_served_total"),
		StreamRequests:  r.Counter("tartree_repl_stream_requests_total"),
		RecordsStreamed: r.Counter("tartree_repl_records_streamed_total"),
		RecordsApplied:  r.Counter("tartree_repl_records_applied_total"),
		Reconnects:      r.Counter("tartree_repl_reconnects_total"),
		Bootstraps:      r.Counter("tartree_repl_bootstraps_total"),
	}
	m.caughtUp.Store(true)
	r.GaugeFunc("tartree_repl_applied_lsn", func() float64 {
		return float64(m.appliedLSN.Load())
	})
	r.GaugeFunc("tartree_repl_lag_records", func() float64 {
		applied, durable := m.appliedLSN.Load(), m.leaderDurable.Load()
		if durable <= applied {
			return 0
		}
		return float64(durable - applied)
	})
	r.GaugeFunc("tartree_repl_lag_seconds", func() float64 {
		if m.caughtUp.Load() {
			return 0
		}
		since := m.behindSince.Load()
		if since == 0 {
			return 0
		}
		return time.Since(time.Unix(0, since)).Seconds()
	})
	return m
}

// ObserveApplied records the follower's applied LSN and the freshest known
// leader durable LSN, updating the lag gauges.
func (m *Metrics) ObserveApplied(applied, leaderDurable uint64) {
	if m == nil {
		return
	}
	m.appliedLSN.Store(applied)
	if leaderDurable > m.leaderDurable.Load() {
		m.leaderDurable.Store(leaderDurable)
	}
	if applied >= m.leaderDurable.Load() {
		m.caughtUp.Store(true)
	} else if m.caughtUp.CompareAndSwap(true, false) {
		m.behindSince.Store(time.Now().UnixNano())
	}
}

// AppliedLSN returns the last observed applied LSN (0 on nil).
func (m *Metrics) AppliedLSN() uint64 {
	if m == nil {
		return 0
	}
	return m.appliedLSN.Load()
}

// LeaderDurableLSN returns the freshest leader durable LSN seen (0 on nil).
func (m *Metrics) LeaderDurableLSN() uint64 {
	if m == nil {
		return 0
	}
	return m.leaderDurable.Load()
}

func (m *Metrics) addSnapshotServed() {
	if m != nil {
		m.SnapshotsServed.Inc()
	}
}

func (m *Metrics) addStreamRequest() {
	if m != nil {
		m.StreamRequests.Inc()
	}
}

func (m *Metrics) addRecordsStreamed(n int) {
	if m != nil {
		m.RecordsStreamed.Add(int64(n))
	}
}

func (m *Metrics) addRecordsApplied(n int) {
	if m != nil {
		m.RecordsApplied.Add(int64(n))
	}
}

func (m *Metrics) addReconnect() {
	if m != nil {
		m.Reconnects.Inc()
	}
}

func (m *Metrics) addBootstrap() {
	if m != nil {
		m.Bootstraps.Inc()
	}
}
