// Package repl implements WAL-shipping replication for the TAR-tree
// server: a leader ships its write-ahead log to any number of followers,
// which serve the same kNNTA queries from their own copy of the index —
// horizontal read scale with a precise consistency story.
//
// The design leans on two properties the storage layer already has. The
// WAL (internal/wal) assigns every check-in a monotonically increasing LSN
// and group-commits frames with CRC32C checksums, so "the leader's state at
// LSN n" is a well-defined, byte-reproducible thing. And snapshot v3 makes
// "the tree at LSN n" a cheap section-read artifact. Replication is then
// just two HTTP endpoints on the leader:
//
//	GET /v1/repl/snapshot          the tree encoded at the leader's
//	                               contiguous applied LSN (header
//	                               X-Tartree-Snapshot-Lsn)
//	GET /v1/repl/wal?from=<lsn>    CRC32C frames from that LSN through the
//	                               durable watermark, then a long-poll tail
//	                               of the live segment with rotation-safe
//	                               handoff (header X-Tartree-Durable-Lsn)
//
// Both require the shared replication token (Authorization: Bearer).
//
// A follower bootstraps by downloading the snapshot straight into its own
// WAL directory as an installed checkpoint (wal.InstallCheckpoint), so the
// completely ordinary OpenStore recovery path loads it; it then tails the
// stream and feeds every batch through wal.Store.ApplyReplicated — the same
// validate→append→apply path local ingest uses, which means aggregate-cache
// invalidation, epoch flushes and freeze/refreeze work unchanged, and the
// follower keeps its own durable WAL copy. A restart therefore recovers
// locally (checkpoint + local segment replay) and resumes tailing from its
// own applied LSN — no re-bootstrap, no re-download.
//
// Consistency: a follower is always a prefix of the leader — exactly the
// records with LSN <= its applied watermark, applied in order. Clients that
// need read-your-writes echo the leader's ingest ack LSN as
// /v1/query?min_lsn=<lsn> on the follower, which parks on the Watermark
// until the record is applied (or the deadline passes → 504). Everything
// else reads whatever prefix the follower has — bounded staleness,
// observable as tartree_repl_lag_{records,seconds}.
package repl

import (
	"context"
	"crypto/subtle"
	"net/http"
	"sync"
)

// Wire protocol headers and limits shared by leader and follower.
const (
	// HeaderSnapshotLSN carries the LSN a /v1/repl/snapshot body covers.
	HeaderSnapshotLSN = "X-Tartree-Snapshot-Lsn"
	// HeaderDurableLSN carries the leader's durable watermark at the moment
	// a /v1/repl/wal response started.
	HeaderDurableLSN = "X-Tartree-Durable-Lsn"
	// HeaderOldestLSN carries the oldest LSN still in the leader's log on a
	// 410 Gone response — what the follower lost to checkpoint truncation.
	HeaderOldestLSN = "X-Tartree-Oldest-Lsn"
)

// Authorized checks the request's bearer token against the shared secret
// in constant time. An empty configured token never authorizes anything:
// replication endpoints are enabled by configuring a token, not by leaving
// it blank.
func Authorized(r *http.Request, token string) bool {
	if token == "" {
		return false
	}
	const prefix = "Bearer "
	h := r.Header.Get("Authorization")
	if len(h) <= len(prefix) || h[:len(prefix)] != prefix {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(h[len(prefix):]), []byte(token)) == 1
}

// Watermark publishes a monotonically increasing applied LSN and lets
// readers block until it reaches a target — the read-your-writes primitive
// behind /v1/query?min_lsn=. On a follower the tail loop advances it after
// every applied batch; on a leader the ingest handler advances it after
// every acknowledged request, so min_lsn works identically on both roles.
type Watermark struct {
	mu sync.Mutex
	v  uint64
	ch chan struct{} // closed and replaced on every advance
}

// NewWatermark returns a watermark at 0.
func NewWatermark() *Watermark {
	return &Watermark{ch: make(chan struct{})}
}

// Value returns the current watermark.
func (w *Watermark) Value() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.v
}

// Advance raises the watermark to lsn and wakes waiters. Regressions are
// ignored — concurrent ingests can report the contiguous applied prefix
// out of order, and the watermark only ever moves forward.
func (w *Watermark) Advance(lsn uint64) {
	w.mu.Lock()
	if lsn > w.v {
		w.v = lsn
		close(w.ch)
		w.ch = make(chan struct{})
	}
	w.mu.Unlock()
}

// Wait blocks until the watermark reaches lsn or ctx ends.
func (w *Watermark) Wait(ctx context.Context, lsn uint64) error {
	for {
		w.mu.Lock()
		if w.v >= lsn {
			w.mu.Unlock()
			return nil
		}
		ch := w.ch
		w.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
