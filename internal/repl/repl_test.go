package repl

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tartree/internal/core"
	"tartree/internal/geo"
	"tartree/internal/obs"
	"tartree/internal/tia"
	"tartree/internal/wal"
)

const (
	testPOIs    = 16
	testEpochLn = 100
	testToken   = "repl-test-secret"
)

// newBaseTree mirrors the deterministic base tree the wal store tests use:
// testPOIs POIs over a 100x100 world, uniform epochs. Leader and follower
// start from the same base, as a real deployment's would.
func newBaseTree() (*core.Tree, error) {
	tr, err := core.NewTree(core.Options{
		World:       geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{100, 100}},
		EpochStart:  0,
		EpochLength: testEpochLn,
	})
	if err != nil {
		return nil, err
	}
	for id := int64(1); id <= testPOIs; id++ {
		p := core.POI{ID: id, X: float64(id*13%97) + 1, Y: float64(id*29%89) + 2}
		if err := tr.InsertPOI(p, nil); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

func testFS(t *testing.T) *wal.DirFS {
	t.Helper()
	fs, err := wal.NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func corpus(n int, seed int64) []wal.CheckIn {
	r := rand.New(rand.NewSource(seed))
	cs := make([]wal.CheckIn, n)
	for i := range cs {
		cs[i] = wal.CheckIn{POI: int64(r.Intn(testPOIs) + 1), At: int64(i * 3)}
	}
	return cs
}

// assertStoresAgree flushes both stores to the same horizon and requires
// them answer-identical: every POI's aggregate over the full interval and a
// battery of kNNTA queries.
func assertStoresAgree(t *testing.T, leader, follower *wal.Store, horizon int64) {
	t.Helper()
	if err := leader.FlushEpochs(horizon); err != nil {
		t.Fatal(err)
	}
	if err := follower.FlushEpochs(horizon); err != nil {
		t.Fatal(err)
	}
	iv := tia.Interval{Start: 0, End: horizon}
	want := make(map[int64]int64, testPOIs)
	leader.View(func(tr *core.Tree) {
		for id := int64(1); id <= testPOIs; id++ {
			v, err := tr.Aggregate(id, iv)
			if err != nil {
				t.Fatal(err)
			}
			want[id] = v
		}
	})
	follower.View(func(tr *core.Tree) {
		if err := tr.Check(); err != nil {
			t.Fatalf("follower tree invariant: %v", err)
		}
		for id := int64(1); id <= testPOIs; id++ {
			v, err := tr.Aggregate(id, iv)
			if err != nil {
				t.Fatal(err)
			}
			if v != want[id] {
				t.Fatalf("POI %d: follower aggregate %d, leader %d", id, v, want[id])
			}
		}
	})
	for trial := 0; trial < 5; trial++ {
		q := core.Query{
			X: float64(11 + trial*17), Y: float64(7 + trial*13),
			Iq:     tia.Interval{Start: int64(trial * 50), End: horizon},
			K:      4,
			Alpha0: 0.4,
		}
		a, _, err := leader.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := follower.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %d: %d results on leader, %d on follower", trial, len(a), len(b))
		}
		scores := make(map[int64]float64, len(a))
		for _, r := range a {
			scores[r.POI.ID] = r.Score
		}
		for _, r := range b {
			lw, ok := scores[r.POI.ID]
			if !ok {
				t.Fatalf("query %d: POI %d only on follower", trial, r.POI.ID)
			}
			if math.Abs(r.Score-lw) > 1e-9 {
				t.Fatalf("query %d: POI %d score %.12f vs leader %.12f", trial, r.POI.ID, r.Score, lw)
			}
		}
	}
}

// replTestCluster is one leader store behind an httptest server.
type replTestCluster struct {
	leader  *wal.Store
	metrics *Metrics
	srv     *httptest.Server
}

func startLeader(t *testing.T, opts wal.StoreOptions, ld *Leader) *replTestCluster {
	t.Helper()
	opts.NoSync = true
	s, err := wal.OpenStore(testFS(t), newBaseTree, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	m := NewMetrics(obs.NewRegistry())
	if ld == nil {
		ld = &Leader{}
	}
	ld.Store, ld.Token, ld.Metrics = s, testToken, m
	mux := http.NewServeMux()
	ld.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return &replTestCluster{leader: s, metrics: m, srv: srv}
}

func followerOptions(c *replTestCluster, w *Watermark, m *Metrics) FollowerOptions {
	return FollowerOptions{
		LeaderURL: c.srv.URL,
		Token:     testToken,
		Watermark: w,
		Metrics:   m,
		RetryMin:  time.Millisecond,
		RetryMax:  50 * time.Millisecond,
	}
}

// TestLeaderFollowerConvergence is the tentpole's happy path with no sleeps
// anywhere: bootstrap from a live snapshot, tail concurrent leader ingest,
// park on the watermark for read-your-writes, finish answer-identical.
func TestLeaderFollowerConvergence(t *testing.T) {
	cs := corpus(500, 31)
	horizon := int64(500*3 + 2*testEpochLn)
	c := startLeader(t, wal.StoreOptions{}, nil)
	if _, err := c.leader.Ingest(cs[:300]); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fFS := testFS(t)
	w := NewWatermark()
	fm := NewMetrics(obs.NewRegistry())
	opts := followerOptions(c, w, fm)
	lsn, downloaded, err := Bootstrap(ctx, fFS, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !downloaded || lsn != 300 {
		t.Fatalf("bootstrap: downloaded=%v lsn=%d, want true/300", downloaded, lsn)
	}
	fstore, err := wal.OpenStore(fFS, func() (*core.Tree, error) {
		t.Fatal("base tree rebuilt despite bootstrapped snapshot")
		return nil, nil
	}, wal.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fstore.Close()
	if got := fstore.AppliedLSN(); got != 300 {
		t.Fatalf("bootstrapped applied LSN %d, want 300", got)
	}
	w.Advance(fstore.AppliedLSN())

	runCtx, stop := context.WithCancel(ctx)
	done := make(chan error, 1)
	f := &Follower{Store: fstore, Opts: opts}
	go func() { done <- f.Run(runCtx) }()

	// Concurrent leader ingest while the follower tails; the ack LSN is the
	// read-your-writes token clients would pass as min_lsn.
	ack, err := c.leader.Ingest(cs[300:])
	if err != nil {
		t.Fatal(err)
	}
	if ack != 500 {
		t.Fatalf("leader ack LSN %d, want 500", ack)
	}
	if err := w.Wait(ctx, ack); err != nil {
		t.Fatalf("waiting for replication of LSN %d: %v", ack, err)
	}
	if got := fstore.AppliedLSN(); got != 500 {
		t.Fatalf("follower applied %d after watermark hit 500", got)
	}
	stop()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run exit: %v", err)
	}

	assertStoresAgree(t, c.leader, fstore, horizon)
	if n := c.metrics.SnapshotsServed.Value(); n != 1 {
		t.Fatalf("snapshots served = %d, want 1", n)
	}
	if n := fm.RecordsApplied.Value(); n != 200 {
		t.Fatalf("records applied = %d, want 200", n)
	}
	if got := fm.AppliedLSN(); got != 500 {
		t.Fatalf("metrics applied LSN = %d", got)
	}
}

// TestFollowerRestartResumesWithoutReBootstrap pins the durable-WAL-copy
// property: a follower restart recovers locally and resumes tailing from
// its own applied LSN — the leader serves no second snapshot.
func TestFollowerRestartResumesWithoutReBootstrap(t *testing.T) {
	cs := corpus(400, 32)
	horizon := int64(400*3 + 2*testEpochLn)
	c := startLeader(t, wal.StoreOptions{}, nil)
	if _, err := c.leader.Ingest(cs[:200]); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fFS := testFS(t)
	w := NewWatermark()
	opts := followerOptions(c, w, nil)
	if _, downloaded, err := Bootstrap(ctx, fFS, opts); err != nil || !downloaded {
		t.Fatalf("first bootstrap: downloaded=%v err=%v", downloaded, err)
	}
	fstore, err := wal.OpenStore(fFS, newBaseTree, wal.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	runCtx, stop := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- (&Follower{Store: fstore, Opts: opts}).Run(runCtx) }()
	ack, err := c.leader.Ingest(cs[200:300])
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Wait(ctx, ack); err != nil {
		t.Fatal(err)
	}
	stop()
	<-done
	if err := fstore.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same directory: no download, local recovery to 300.
	if lsn, downloaded, err := Bootstrap(ctx, fFS, opts); err != nil || downloaded || lsn != 0 {
		t.Fatalf("re-bootstrap on populated dir: lsn=%d downloaded=%v err=%v", lsn, downloaded, err)
	}
	if n := c.metrics.SnapshotsServed.Value(); n != 1 {
		t.Fatalf("restart re-downloaded the snapshot (%d served)", n)
	}
	fstore2, err := wal.OpenStore(fFS, func() (*core.Tree, error) {
		t.Fatal("base tree rebuilt on restart")
		return nil, nil
	}, wal.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fstore2.Close()
	if got := fstore2.AppliedLSN(); got != 300 {
		t.Fatalf("restart recovered applied LSN %d, want 300", got)
	}

	w2 := NewWatermark()
	opts2 := followerOptions(c, w2, nil)
	runCtx2, stop2 := context.WithCancel(ctx)
	go func() { done <- (&Follower{Store: fstore2, Opts: opts2}).Run(runCtx2) }()
	ack2, err := c.leader.Ingest(cs[300:])
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Wait(ctx, ack2); err != nil {
		t.Fatal(err)
	}
	stop2()
	<-done
	assertStoresAgree(t, c.leader, fstore2, horizon)
}

// TestStreamReconnectAcrossCleanCloses forces tiny per-connection budgets so
// the follower must reconnect many times mid-corpus and still converge.
func TestStreamReconnectAcrossCleanCloses(t *testing.T) {
	cs := corpus(300, 33)
	horizon := int64(300*3 + 2*testEpochLn)
	c := startLeader(t, wal.StoreOptions{}, &Leader{ChunkRecords: 7, MaxStreamRecords: 20})
	if _, err := c.leader.Ingest(cs[:50]); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fFS := testFS(t)
	w := NewWatermark()
	opts := followerOptions(c, w, nil)
	if _, _, err := Bootstrap(ctx, fFS, opts); err != nil {
		t.Fatal(err)
	}
	fstore, err := wal.OpenStore(fFS, newBaseTree, wal.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fstore.Close()
	runCtx, stop := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- (&Follower{Store: fstore, Opts: opts}).Run(runCtx) }()
	ack, err := c.leader.Ingest(cs[50:])
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Wait(ctx, ack); err != nil {
		t.Fatal(err)
	}
	stop()
	<-done
	if n := c.metrics.StreamRequests.Value(); n < 10 {
		t.Fatalf("expected many reconnect streams under a 20-record budget, got %d", n)
	}
	assertStoresAgree(t, c.leader, fstore, horizon)
}

func TestLeaderAuth(t *testing.T) {
	// The happy-path probe of /v1/repl/wal parks in the idle long-poll;
	// a short timeout keeps the test fast.
	c := startLeader(t, wal.StoreOptions{}, &Leader{PollTimeout: 10 * time.Millisecond})
	get := func(path, token string) int {
		req, err := http.NewRequest(http.MethodGet, c.srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, path := range []string{"/v1/repl/snapshot", "/v1/repl/wal?from=1"} {
		if code := get(path, ""); code != http.StatusUnauthorized {
			t.Errorf("%s without token: %d, want 401", path, code)
		}
		if code := get(path, "wrong"); code != http.StatusUnauthorized {
			t.Errorf("%s with bad token: %d, want 401", path, code)
		}
		if code := get(path, testToken); code != http.StatusOK {
			t.Errorf("%s with token: %d, want 200", path, code)
		}
	}
	// from beyond durable+1 is divergence.
	if code := get("/v1/repl/wal?from=999", testToken); code != http.StatusConflict {
		t.Errorf("diverged from: %d, want 409", code)
	}
	if code := get("/v1/repl/wal?from=0", testToken); code != http.StatusBadRequest {
		t.Errorf("from=0: %d, want 400", code)
	}

	// A leader with no token refuses replication outright.
	off := startLeader(t, wal.StoreOptions{}, nil)
	mux := http.NewServeMux()
	(&Leader{Store: off.leader, Token: ""}).Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/repl/snapshot", nil)
	req.Header.Set("Authorization", "Bearer ")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("disabled replication: %d, want 403", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	badOpts := FollowerOptions{LeaderURL: c.srv.URL, Token: "wrong"}
	if _, _, err := Bootstrap(ctx, testFS(t), badOpts); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("bootstrap with bad token: %v, want ErrUnauthorized", err)
	}
}

// TestTruncatedLSNRequiresRebootstrap: a follower that slept through a
// leader checkpoint that truncated its position gets 410 and Run surfaces
// ErrSnapshotRequired instead of silently diverging.
func TestTruncatedLSNRequiresRebootstrap(t *testing.T) {
	cs := corpus(300, 34)
	c := startLeader(t, wal.StoreOptions{SegmentBytes: 1 << 10}, nil)
	if _, err := c.leader.Ingest(cs[:50]); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fFS := testFS(t)
	opts := followerOptions(c, nil, nil)
	if _, _, err := Bootstrap(ctx, fFS, opts); err != nil {
		t.Fatal(err)
	}
	fstore, err := wal.OpenStore(fFS, newBaseTree, wal.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fstore.Close()

	// While the follower is down, the leader moves on and checkpoints: the
	// segments holding LSN 51.. are deleted. Small batches force rotations
	// so truncation has whole segments to delete past the follower's LSN.
	for i := 50; i < len(cs); i += 10 {
		if _, err := c.leader.Ingest(cs[i : i+10]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if oldest := c.leader.Log().OldestLSN(); oldest <= 51 {
		t.Fatalf("checkpoint kept LSN 51 (oldest %d); test needs truncation", oldest)
	}
	err = (&Follower{Store: fstore, Opts: opts}).Run(ctx)
	if !errors.Is(err, ErrSnapshotRequired) {
		t.Fatalf("Run on truncated position: %v, want ErrSnapshotRequired", err)
	}
}

func TestWatermark(t *testing.T) {
	w := NewWatermark()
	if w.Value() != 0 {
		t.Fatal("fresh watermark not at 0")
	}
	w.Advance(10)
	w.Advance(5) // regression ignored
	if v := w.Value(); v != 10 {
		t.Fatalf("value %d, want 10", v)
	}
	if err := w.Wait(context.Background(), 10); err != nil {
		t.Fatalf("wait at reached LSN: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Wait(context.Background(), 11) }()
	w.Advance(11)
	if err := <-done; err != nil {
		t.Fatalf("wait across advance: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { done <- w.Wait(ctx, 99) }()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled wait: %v", err)
	}
}
