package rstar

import (
	"fmt"
	"math"
	"sort"
)

// BulkLoad builds a tree from leaf entries with Sort-Tile-Recursive
// packing (Leutenegger et al.): entries are tiled into near-full nodes
// level by level, which yields small node extents without paying for one
// insertion per entry. The paper suggests periodic rebuilds when the
// TAR-tree drifts from the data distribution (Section 8.2); bulk loading
// makes such rebuilds cheap.
//
// Bulk loading packs by spatial position, so it applies to the spatial
// grouping strategies (the integral 3D strategy and IND-spa); trees using
// custom non-spatial strategies should be built incrementally.
func BulkLoad(cfg Config, entries []Entry) (*Tree, error) {
	t := New(cfg)
	if len(entries) == 0 {
		return t, nil
	}
	for _, e := range entries {
		if !e.IsLeafEntry() {
			return nil, fmt.Errorf("rstar: BulkLoad requires leaf entries")
		}
	}
	// Pack at ~90% fill: near-minimal extents while leaving headroom for
	// subsequent inserts before the first splits.
	per := t.cfg.Capacity * 9 / 10
	if per < t.minFill {
		per = t.minFill
	}
	level := 0
	current := append([]Entry(nil), entries...)
	var nodes []*Node
	for {
		groups := strTile(current, per, t.cfg.Dims, t.minFill, t.cfg.Capacity)
		nodes = nodes[:0]
		for _, g := range groups {
			// Copy: the groups are slices of one shared array, but nodes
			// mutate their entry slices independently afterwards.
			nodes = append(nodes, &Node{Level: level, Entries: append([]Entry(nil), g...)})
		}
		if len(nodes) == 1 {
			break
		}
		// Build the parent entries for the next round.
		next := make([]Entry, len(nodes))
		for i, n := range nodes {
			e := Entry{Rect: n.MBR(t.cfg.Dims), Child: n}
			if t.aug != nil {
				var err error
				if e.Data, err = t.aug.Make(n, nil); err != nil {
					return nil, err
				}
			}
			next[i] = e
		}
		current = next
		level++
	}
	t.root = nodes[0]
	t.height = level + 1
	t.size = len(entries)
	var fixParents func(n *Node)
	fixParents = func(n *Node) {
		for i := range n.Entries {
			if c := n.Entries[i].Child; c != nil {
				c.Parent = n
				fixParents(c)
			}
		}
	}
	fixParents(t.root)
	return t, nil
}

// strTile partitions entries into groups of at most per entries using
// sort-tile-recursive over the first dims dimensions of the entry centers.
// Undersized slab tails are merged into their predecessor (and evenly
// re-split when the merge would overflow), so every group — except a lone
// root group — meets the tree's minimum fill.
func strTile(entries []Entry, per, dims, minFill, capacity int) [][]Entry {
	n := len(entries)
	if n <= per {
		return [][]Entry{entries}
	}
	groups := tileAxis(entries, per, dims, 0)
	fixed := groups[:1]
	for i := 1; i < len(groups); i++ {
		g := groups[i]
		if len(g) >= minFill {
			fixed = append(fixed, g)
			continue
		}
		prev := fixed[len(fixed)-1]
		combined := append(append([]Entry(nil), prev...), g...)
		if len(combined) <= capacity {
			fixed[len(fixed)-1] = combined
			continue
		}
		half := len(combined) / 2
		fixed[len(fixed)-1] = combined[:half]
		fixed = append(fixed, combined[half:])
	}
	return fixed
}

// tileAxis recursively slices entries along axis, then tiles the slabs
// along the next axis; at the last axis it emits runs of per entries.
func tileAxis(entries []Entry, per, dims, axis int) [][]Entry {
	n := len(entries)
	if axis == dims-1 {
		sortByAxis(entries, axis)
		var out [][]Entry
		for i := 0; i < n; i += per {
			end := i + per
			if end > n {
				end = n
			}
			out = append(out, entries[i:end:end])
		}
		return out
	}
	// Number of slabs along this axis: the STR formula generalized to the
	// remaining dimensions.
	leaves := int(math.Ceil(float64(n) / float64(per)))
	rem := dims - axis
	slabs := int(math.Ceil(math.Pow(float64(leaves), 1/float64(rem))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := int(math.Ceil(float64(n) / float64(slabs)))
	if slabSize < per {
		slabSize = per
	}
	sortByAxis(entries, axis)
	var out [][]Entry
	for i := 0; i < n; i += slabSize {
		end := i + slabSize
		if end > n {
			end = n
		}
		out = append(out, tileAxis(entries[i:end:end], per, dims, axis+1)...)
	}
	return out
}

func sortByAxis(entries []Entry, axis int) {
	sort.Slice(entries, func(i, j int) bool {
		ci := entries[i].Rect.Min[axis] + entries[i].Rect.Max[axis]
		cj := entries[j].Rect.Min[axis] + entries[j].Rect.Max[axis]
		return ci < cj
	})
}
