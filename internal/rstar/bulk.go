package rstar

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
)

// BulkLoad builds a tree from leaf entries with Sort-Tile-Recursive
// packing (Leutenegger et al.): entries are tiled into near-full nodes
// level by level, which yields small node extents without paying for one
// insertion per entry. The paper suggests periodic rebuilds when the
// TAR-tree drifts from the data distribution (Section 8.2); bulk loading
// makes such rebuilds cheap.
//
// Bulk loading packs by spatial position, so it applies to the spatial
// grouping strategies (the integral 3D strategy and IND-spa); trees using
// custom non-spatial strategies should be built incrementally.
//
// The sorting passes run on all available cores; see BulkLoadWorkers for
// the worker-count contract.
func BulkLoad(cfg Config, entries []Entry) (*Tree, error) {
	return BulkLoadWorkers(cfg, entries, 0)
}

// BulkLoadWorkers is BulkLoad with an explicit sort parallelism; workers
// <= 0 selects GOMAXPROCS. The worker count never changes the resulting
// tree: each STR pass is a parallel *stable* merge sort (chunks are
// stable-sorted concurrently, then merged with ties resolved toward the
// earlier chunk), so the tiling order is byte-for-byte the order a
// sequential stable sort would produce, for any worker count.
func BulkLoadWorkers(cfg Config, entries []Entry, workers int) (*Tree, error) {
	t := New(cfg)
	if len(entries) == 0 {
		return t, nil
	}
	for _, e := range entries {
		if !e.IsLeafEntry() {
			return nil, fmt.Errorf("rstar: BulkLoad requires leaf entries")
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Pack at ~90% fill: near-minimal extents while leaving headroom for
	// subsequent inserts before the first splits.
	per := t.cfg.Capacity * 9 / 10
	if per < t.minFill {
		per = t.minFill
	}
	level := 0
	current := append([]Entry(nil), entries...)
	var nodes []*Node
	for {
		groups := strTile(current, per, t.cfg.Dims, t.minFill, t.cfg.Capacity, workers)
		nodes = nodes[:0]
		for _, g := range groups {
			// Copy: the groups are slices of one shared array, but nodes
			// mutate their entry slices independently afterwards.
			nodes = append(nodes, &Node{Level: level, Entries: append([]Entry(nil), g...)})
		}
		if len(nodes) == 1 {
			break
		}
		// Build the parent entries for the next round.
		next := make([]Entry, len(nodes))
		for i, n := range nodes {
			e := Entry{Rect: n.MBR(t.cfg.Dims), Child: n}
			if t.aug != nil {
				var err error
				if e.Data, err = t.aug.Make(n, nil); err != nil {
					return nil, err
				}
			}
			next[i] = e
		}
		current = next
		level++
	}
	t.root = nodes[0]
	t.height = level + 1
	t.size = len(entries)
	var fixParents func(n *Node)
	fixParents = func(n *Node) {
		for i := range n.Entries {
			if c := n.Entries[i].Child; c != nil {
				c.Parent = n
				c.slot = i
				fixParents(c)
			}
		}
	}
	fixParents(t.root)
	return t, nil
}

// strTile partitions entries into groups of at most per entries using
// sort-tile-recursive over the first dims dimensions of the entry centers.
// Undersized slab tails are merged into their predecessor (and evenly
// re-split when the merge would overflow), so every group — except a lone
// root group — meets the tree's minimum fill.
func strTile(entries []Entry, per, dims, minFill, capacity, workers int) [][]Entry {
	n := len(entries)
	if n <= per {
		return [][]Entry{entries}
	}
	groups := tileAxis(entries, per, dims, 0, workers)
	fixed := groups[:1]
	for i := 1; i < len(groups); i++ {
		g := groups[i]
		if len(g) >= minFill {
			fixed = append(fixed, g)
			continue
		}
		prev := fixed[len(fixed)-1]
		combined := append(append([]Entry(nil), prev...), g...)
		if len(combined) <= capacity {
			fixed[len(fixed)-1] = combined
			continue
		}
		half := len(combined) / 2
		fixed[len(fixed)-1] = combined[:half]
		fixed = append(fixed, combined[half:])
	}
	return fixed
}

// tileAxis recursively slices entries along axis, then tiles the slabs
// along the next axis; at the last axis it emits runs of per entries.
func tileAxis(entries []Entry, per, dims, axis, workers int) [][]Entry {
	n := len(entries)
	if axis == dims-1 {
		sortByAxis(entries, axis, workers)
		var out [][]Entry
		for i := 0; i < n; i += per {
			end := i + per
			if end > n {
				end = n
			}
			out = append(out, entries[i:end:end])
		}
		return out
	}
	// Number of slabs along this axis: the STR formula generalized to the
	// remaining dimensions.
	leaves := int(math.Ceil(float64(n) / float64(per)))
	rem := dims - axis
	slabs := int(math.Ceil(math.Pow(float64(leaves), 1/float64(rem))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := int(math.Ceil(float64(n) / float64(slabs)))
	if slabSize < per {
		slabSize = per
	}
	sortByAxis(entries, axis, workers)
	var out [][]Entry
	for i := 0; i < n; i += slabSize {
		end := i + slabSize
		if end > n {
			end = n
		}
		out = append(out, tileAxis(entries[i:end:end], per, dims, axis+1, workers)...)
	}
	return out
}

// sortByAxis orders entries by center position along axis. The sort is
// stable (a departure from the earlier unstable sort), so equal-center
// entries keep their input order and the whole build is deterministic: the
// same entry slice always yields the same tree.
func sortByAxis(entries []Entry, axis, workers int) {
	parallelStableSort(entries, workers, func(a, b *Entry) bool {
		return a.Rect.Min[axis]+a.Rect.Max[axis] < b.Rect.Min[axis]+b.Rect.Max[axis]
	})
}

// parallelSortMin is the slice length below which a chunk stops being worth
// a goroutine; it also floors the chunk size so tiny inputs sort inline.
const parallelSortMin = 4096

// parallelStableSort sorts es with a parallel stable merge sort: the slice
// is cut into `workers` contiguous chunks, each chunk is stable-sorted
// concurrently, and log₂(workers) rounds of pairwise stable merges (ties
// take the left — earlier — chunk's element first) combine them. Because
// stability is preserved end to end, the result is identical to
// sort.SliceStable over the whole slice regardless of the worker count.
func parallelStableSort(es []Entry, workers int, less func(a, b *Entry) bool) {
	n := len(es)
	if max := n / parallelSortMin; workers > max {
		workers = max
	}
	if workers <= 1 {
		sort.SliceStable(es, func(i, j int) bool { return less(&es[i], &es[j]) })
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		part := es[lo:hi]
		wg.Add(1)
		go func() {
			defer wg.Done()
			sort.SliceStable(part, func(i, j int) bool { return less(&part[i], &part[j]) })
		}()
	}
	wg.Wait()
	// Bottom-up pairwise merge rounds; the pairs of one round are disjoint
	// ranges, so they merge concurrently too.
	buf := make([]Entry, n)
	src, dst := es, buf
	for width := chunk; width < n; width *= 2 {
		var mg sync.WaitGroup
		for lo := 0; lo < n; lo += 2 * width {
			mid, hi := lo+width, lo+2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			mg.Add(1)
			go func(lo, mid, hi int) {
				defer mg.Done()
				mergeStable(dst[lo:hi], src[lo:mid], src[mid:hi], less)
			}(lo, mid, hi)
		}
		mg.Wait()
		src, dst = dst, src
	}
	if &src[0] != &es[0] {
		copy(es, src)
	}
}

// mergeStable merges two sorted runs into dst, taking from a on ties so
// stability (and with it worker-count invariance) is preserved.
func mergeStable(dst, a, b []Entry, less func(x, y *Entry) bool) {
	k := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if less(&b[j], &a[i]) {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}
