package rstar

import (
	"math/rand"
	"sort"
	"testing"

	"tartree/internal/geo"
)

func TestBulkLoadEmpty(t *testing.T) {
	tr, err := BulkLoad(Config{Dims: 2, Capacity: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("len=%d height=%d", tr.Len(), tr.Height())
	}
}

func TestBulkLoadRejectsInternalEntries(t *testing.T) {
	if _, err := BulkLoad(Config{Dims: 2, Capacity: 10},
		[]Entry{{Child: &Node{}}}); err == nil {
		t.Fatal("internal entry accepted")
	}
}

func TestBulkLoadInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 9, 10, 11, 100, 1234, 5000} {
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{Rect: pt(r.Float64()*100, r.Float64()*100), Item: Item(i)}
		}
		tr, err := BulkLoad(Config{Dims: 2, Capacity: 10}, entries)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: len=%d", n, tr.Len())
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Every item findable.
		got := rangeSearch(tr, geo.Rect{Min: geo.Vector{-1, -1}, Max: geo.Vector{101, 101}})
		if len(got) != n {
			t.Fatalf("n=%d: found %d items", n, len(got))
		}
	}
}

func TestBulkLoad3D(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	entries := make([]Entry, 2000)
	for i := range entries {
		v := geo.Vector{r.Float64(), r.Float64(), r.Float64()}
		entries[i] = Entry{Rect: geo.PointRect(v), Item: Item(i)}
	}
	tr, err := BulkLoad(Config{Dims: 3, Capacity: 36}, entries)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	q := geo.Rect{Min: geo.Vector{0.4, 0.4, 0.4}, Max: geo.Vector{0.6, 0.6, 0.6}}
	var want []Item
	for _, e := range entries {
		if e.Rect.Intersects(q, 3) {
			want = append(want, e.Item)
		}
	}
	got := rangeSearch(tr, q)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("range mismatch")
		}
	}
}

func TestBulkLoadWithAugmenter(t *testing.T) {
	aug := &countingAug{}
	r := rand.New(rand.NewSource(8))
	entries := make([]Entry, 777)
	for i := range entries {
		entries[i] = Entry{Rect: pt(r.Float64()*10, r.Float64()*10), Item: Item(i)}
	}
	tr, err := BulkLoad(Config{Dims: 2, Capacity: 8, Aug: aug}, entries)
	if err != nil {
		t.Fatal(err)
	}
	checkAug(t, tr)
	// Inserts after a bulk load keep everything consistent.
	for i := 0; i < 100; i++ {
		if err := tr.Insert(Entry{Rect: pt(r.Float64()*10, r.Float64()*10), Item: Item(1000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	checkAug(t, tr)
}

// Bulk-loaded trees should have tighter packing (fewer nodes) than
// incrementally built ones.
func TestBulkLoadPacksTighter(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	entries := make([]Entry, 3000)
	inc := New(Config{Dims: 2, Capacity: 20})
	for i := range entries {
		entries[i] = Entry{Rect: pt(r.Float64()*100, r.Float64()*100), Item: Item(i)}
		if err := inc.Insert(entries[i]); err != nil {
			t.Fatal(err)
		}
	}
	bulk, err := BulkLoad(Config{Dims: 2, Capacity: 20}, entries)
	if err != nil {
		t.Fatal(err)
	}
	bl, bi := bulk.NodeCount()
	il, ii := inc.NodeCount()
	if bl+bi >= il+ii {
		t.Errorf("bulk %d nodes >= incremental %d", bl+bi, il+ii)
	}
}

// Fewer entries than MinFill must still produce a valid (single-node) tree.
func TestBulkLoadFewerThanMinFill(t *testing.T) {
	cfg := Config{Dims: 2, Capacity: 10, MinFill: 4}
	for n := 1; n < 4; n++ {
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{Rect: pt(float64(i), float64(i)), Item: Item(i)}
		}
		tr, err := BulkLoad(cfg, entries)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != n || tr.Height() != 1 {
			t.Fatalf("n=%d: len=%d height=%d", n, tr.Len(), tr.Height())
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// All-duplicate coordinates exercise the tie paths of the stable sort and
// the min-fill tail merging; every item must remain findable.
func TestBulkLoadDuplicateCoordinates(t *testing.T) {
	for _, n := range []int{7, 64, 1000} {
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{Rect: pt(5, 5), Item: Item(i)}
		}
		tr, err := BulkLoad(Config{Dims: 2, Capacity: 10}, entries)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := rangeSearch(tr, geo.Rect{Min: geo.Vector{4, 4}, Max: geo.Vector{6, 6}})
		if len(got) != n {
			t.Fatalf("n=%d: found %d items", n, len(got))
		}
	}
}

// The parallel stable merge sort must equal sort.SliceStable for any worker
// count, including on heavy tie loads.
func TestParallelStableSortMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for _, n := range []int{0, 1, 100, parallelSortMin, 3 * parallelSortMin, 50000} {
		base := make([]Entry, n)
		for i := range base {
			// Coarse buckets force many ties so stability is observable.
			x := float64(r.Intn(20))
			base[i] = Entry{Rect: pt(x, x), Item: Item(i)}
		}
		want := append([]Entry(nil), base...)
		sort.SliceStable(want, func(i, j int) bool {
			return want[i].Rect.Min[0]+want[i].Rect.Max[0] < want[j].Rect.Min[0]+want[j].Rect.Max[0]
		})
		for _, workers := range []int{1, 2, 3, 4, 16} {
			got := append([]Entry(nil), base...)
			sortByAxis(got, 0, workers)
			for i := range got {
				if got[i].Item != want[i].Item {
					t.Fatalf("n=%d workers=%d: order diverges at %d", n, workers, i)
				}
			}
		}
	}
}

// Worker-count invariance: 1/4/16 workers build identical trees (compared
// via the canonical frozen form).
func TestBulkLoadWorkerInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	entries := make([]Entry, 20000)
	for i := range entries {
		// Duplicate-heavy coordinates make any instability visible.
		x, y := float64(r.Intn(50)), float64(r.Intn(50))
		entries[i] = Entry{Rect: pt(x, y), Item: Item(i)}
	}
	var want *FlatTree
	for _, workers := range []int{1, 4, 16} {
		tr, err := BulkLoadWorkers(Config{Dims: 2, Capacity: 20}, append([]Entry(nil), entries...), workers)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		f := tr.Freeze()
		if want == nil {
			want = f
			continue
		}
		if len(f.Nodes) != len(want.Nodes) || len(f.Items) != len(want.Items) {
			t.Fatalf("workers=%d: shape differs (%d/%d nodes, %d/%d entries)",
				workers, len(f.Nodes), len(want.Nodes), len(f.Items), len(want.Items))
		}
		for i := range f.Nodes {
			if f.Nodes[i] != want.Nodes[i] {
				t.Fatalf("workers=%d: node %d differs", workers, i)
			}
		}
		for i := range f.Items {
			if f.Items[i] != want.Items[i] || f.Rects[i] != want.Rects[i] || f.Children[i] != want.Children[i] {
				t.Fatalf("workers=%d: entry %d differs", workers, i)
			}
		}
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	entries := make([]Entry, 50000)
	for i := range entries {
		entries[i] = Entry{Rect: pt(r.Float64()*1000, r.Float64()*1000), Item: Item(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BulkLoad(Config{Dims: 2, Capacity: 50}, entries); err != nil {
			b.Fatal(err)
		}
	}
}
