package rstar

import (
	"math/rand"
	"sort"
	"testing"

	"tartree/internal/geo"
)

func TestBulkLoadEmpty(t *testing.T) {
	tr, err := BulkLoad(Config{Dims: 2, Capacity: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("len=%d height=%d", tr.Len(), tr.Height())
	}
}

func TestBulkLoadRejectsInternalEntries(t *testing.T) {
	if _, err := BulkLoad(Config{Dims: 2, Capacity: 10},
		[]Entry{{Child: &Node{}}}); err == nil {
		t.Fatal("internal entry accepted")
	}
}

func TestBulkLoadInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 9, 10, 11, 100, 1234, 5000} {
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{Rect: pt(r.Float64()*100, r.Float64()*100), Item: Item(i)}
		}
		tr, err := BulkLoad(Config{Dims: 2, Capacity: 10}, entries)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: len=%d", n, tr.Len())
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Every item findable.
		got := rangeSearch(tr, geo.Rect{Min: geo.Vector{-1, -1}, Max: geo.Vector{101, 101}})
		if len(got) != n {
			t.Fatalf("n=%d: found %d items", n, len(got))
		}
	}
}

func TestBulkLoad3D(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	entries := make([]Entry, 2000)
	for i := range entries {
		v := geo.Vector{r.Float64(), r.Float64(), r.Float64()}
		entries[i] = Entry{Rect: geo.PointRect(v), Item: Item(i)}
	}
	tr, err := BulkLoad(Config{Dims: 3, Capacity: 36}, entries)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	q := geo.Rect{Min: geo.Vector{0.4, 0.4, 0.4}, Max: geo.Vector{0.6, 0.6, 0.6}}
	var want []Item
	for _, e := range entries {
		if e.Rect.Intersects(q, 3) {
			want = append(want, e.Item)
		}
	}
	got := rangeSearch(tr, q)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("range mismatch")
		}
	}
}

func TestBulkLoadWithAugmenter(t *testing.T) {
	aug := &countingAug{}
	r := rand.New(rand.NewSource(8))
	entries := make([]Entry, 777)
	for i := range entries {
		entries[i] = Entry{Rect: pt(r.Float64()*10, r.Float64()*10), Item: Item(i)}
	}
	tr, err := BulkLoad(Config{Dims: 2, Capacity: 8, Aug: aug}, entries)
	if err != nil {
		t.Fatal(err)
	}
	checkAug(t, tr)
	// Inserts after a bulk load keep everything consistent.
	for i := 0; i < 100; i++ {
		if err := tr.Insert(Entry{Rect: pt(r.Float64()*10, r.Float64()*10), Item: Item(1000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	checkAug(t, tr)
}

// Bulk-loaded trees should have tighter packing (fewer nodes) than
// incrementally built ones.
func TestBulkLoadPacksTighter(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	entries := make([]Entry, 3000)
	inc := New(Config{Dims: 2, Capacity: 20})
	for i := range entries {
		entries[i] = Entry{Rect: pt(r.Float64()*100, r.Float64()*100), Item: Item(i)}
		if err := inc.Insert(entries[i]); err != nil {
			t.Fatal(err)
		}
	}
	bulk, err := BulkLoad(Config{Dims: 2, Capacity: 20}, entries)
	if err != nil {
		t.Fatal(err)
	}
	bl, bi := bulk.NodeCount()
	il, ii := inc.NodeCount()
	if bl+bi >= il+ii {
		t.Errorf("bulk %d nodes >= incremental %d", bl+bi, il+ii)
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	entries := make([]Entry, 50000)
	for i := range entries {
		entries[i] = Entry{Rect: pt(r.Float64()*1000, r.Float64()*1000), Item: Item(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BulkLoad(Config{Dims: 2, Capacity: 50}, entries); err != nil {
			b.Fatal(err)
		}
	}
}
