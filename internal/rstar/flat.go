package rstar

import (
	"fmt"
	"unsafe"

	"tartree/internal/geo"
)

// FlatNode is one node of the frozen layout: a (level, start, count) triple
// addressing a contiguous run of entries in the FlatTree slabs. There are
// no Parent pointers and no per-node entry slices — offsets replace both.
type FlatNode struct {
	Level int32
	Start int32 // first entry index in the entry slabs
	Count int32 // number of entries
}

// FlatTree is a frozen, read-only compilation of a Tree: every node lives
// in one []FlatNode slab addressed by int32 ids (the root is node 0), and
// the entries of all nodes live in parallel struct-of-arrays slabs indexed
// by entry id. The garbage collector sees five slices instead of a pointer
// graph proportional to the POI count, node expansion reads contiguous
// memory, and the layout maps 1:1 onto the snapshot-v3 on-disk sections.
//
// A FlatTree is immutable: mutation goes through the pointer Tree it was
// compiled from (or a Thaw of it) followed by a re-Freeze. Child node ids
// are always greater than their parent's id (the compiler emits parents
// first), which Thaw exploits to reject cyclic or aliased structures
// decoded from untrusted snapshots.
type FlatTree struct {
	Dims   int
	Height int // number of levels; 1 = the root is a leaf
	Count  int // number of items (leaf entries)

	Nodes []FlatNode

	// Entry slabs, all of equal length, indexed by entry id.
	Rects    []geo.Rect
	Children []int32 // child node id; -1 for leaf entries
	Items    []int64 // POI id for leaf entries; 0 otherwise
	Data     []any   // augmentation handle (the TAR-tree's TIA)
}

// Freeze compiles the tree into its frozen flat form. The tree is only
// read; the result shares the per-entry Data handles (the TAR-tree's TIAs
// keep receiving check-in flushes through the pointer tree, and the frozen
// entries observe the same aggregates), while rectangles are copied by
// value. Node 0 is the root; a node's children appear in its entries'
// order.
func (t *Tree) Freeze() *FlatTree {
	nodes, entries := 0, 0
	t.VisitNodes(func(n *Node) bool {
		nodes++
		entries += len(n.Entries)
		return true
	})
	f := &FlatTree{
		Dims:     t.cfg.Dims,
		Height:   t.height,
		Count:    t.size,
		Nodes:    make([]FlatNode, 0, nodes),
		Rects:    make([]geo.Rect, 0, entries),
		Children: make([]int32, 0, entries),
		Items:    make([]int64, 0, entries),
		Data:     make([]any, 0, entries),
	}
	var compile func(n *Node) int32
	compile = func(n *Node) int32 {
		id := int32(len(f.Nodes))
		start := int32(len(f.Rects))
		f.Nodes = append(f.Nodes, FlatNode{Level: int32(n.Level), Start: start, Count: int32(len(n.Entries))})
		for _, e := range n.Entries {
			f.Rects = append(f.Rects, e.Rect)
			f.Children = append(f.Children, -1)
			f.Items = append(f.Items, int64(e.Item))
			f.Data = append(f.Data, e.Data)
		}
		for i, e := range n.Entries {
			if e.Child != nil {
				f.Children[start+int32(i)] = compile(e.Child)
			}
		}
		return id
	}
	compile(t.root)
	return f
}

// Root returns the root node (node 0).
func (f *FlatTree) Root() FlatNode { return f.Nodes[0] }

// EntryAt materializes entry i as a pointer-form Entry (Child stays nil;
// use Children[i] for the child node id). The scorer and search operate on
// this value exactly as on a pointer-tree entry.
func (f *FlatTree) EntryAt(i int32) Entry {
	return Entry{Rect: f.Rects[i], Item: Item(f.Items[i]), Data: f.Data[i]}
}

// Bytes returns the heap footprint of the slabs (headers included) — the
// number exported as tartree_index_bytes{layout="flat"}.
func (f *FlatTree) Bytes() int64 {
	if f == nil {
		return 0
	}
	return int64(unsafe.Sizeof(*f)) +
		int64(cap(f.Nodes))*int64(unsafe.Sizeof(FlatNode{})) +
		int64(cap(f.Rects))*int64(unsafe.Sizeof(geo.Rect{})) +
		int64(cap(f.Children))*4 +
		int64(cap(f.Items))*8 +
		int64(cap(f.Data))*int64(unsafe.Sizeof(any(nil)))
}

// MemoryBytes estimates the heap footprint of the pointer tree: node
// structs plus their entry arrays. Augmentation data is excluded (it is
// shared with the frozen layout, so it cancels out of any comparison).
func (t *Tree) MemoryBytes() int64 {
	var b int64
	t.VisitNodes(func(n *Node) bool {
		b += int64(unsafe.Sizeof(*n)) + int64(cap(n.Entries))*int64(unsafe.Sizeof(Entry{}))
		return true
	})
	return b
}

// Thaw reconstructs a mutable pointer tree from the frozen form, restoring
// Parent pointers and slot caches. cfg must be the configuration the
// original tree was built with (dims, capacity, strategy, augmenter).
//
// Thaw validates the structure as it walks — entry ranges in bounds, child
// ids strictly increasing (the Freeze compiler's parents-first order, which
// rules out cycles), each node referenced at most once, child levels
// descending by one — so a FlatTree decoded from a corrupted snapshot
// produces an error, never a panic or runaway recursion.
func (f *FlatTree) Thaw(cfg Config) (*Tree, error) {
	t := New(cfg)
	if cfg.Dims != f.Dims {
		return nil, fmt.Errorf("rstar: thaw dims %d != frozen dims %d", cfg.Dims, f.Dims)
	}
	if len(f.Nodes) == 0 {
		return nil, fmt.Errorf("rstar: frozen tree has no nodes")
	}
	ne := len(f.Rects)
	if len(f.Children) != ne || len(f.Items) != ne || len(f.Data) != ne {
		return nil, fmt.Errorf("rstar: frozen entry slabs disagree on length")
	}
	seen := make([]bool, len(f.Nodes))
	var build func(id int32) (*Node, error)
	build = func(id int32) (*Node, error) {
		fn := f.Nodes[id]
		if seen[id] {
			return nil, fmt.Errorf("rstar: frozen node %d referenced twice", id)
		}
		seen[id] = true
		if fn.Count < 0 || fn.Start < 0 || int(fn.Start)+int(fn.Count) > ne {
			return nil, fmt.Errorf("rstar: frozen node %d entries [%d,%d) out of bounds", id, fn.Start, fn.Start+fn.Count)
		}
		n := &Node{Level: int(fn.Level), Entries: make([]Entry, fn.Count)}
		for i := int32(0); i < fn.Count; i++ {
			ei := fn.Start + i
			e := Entry{Rect: f.Rects[ei], Item: Item(f.Items[ei]), Data: f.Data[ei]}
			if cid := f.Children[ei]; cid >= 0 {
				if fn.Level == 0 {
					return nil, fmt.Errorf("rstar: frozen leaf node %d has child entry", id)
				}
				if cid <= id || int(cid) >= len(f.Nodes) {
					return nil, fmt.Errorf("rstar: frozen node %d child id %d out of order", id, cid)
				}
				if f.Nodes[cid].Level != fn.Level-1 {
					return nil, fmt.Errorf("rstar: frozen child level %d under level %d", f.Nodes[cid].Level, fn.Level)
				}
				c, err := build(cid)
				if err != nil {
					return nil, err
				}
				c.Parent = n
				c.slot = int(i)
				e.Child = c
			} else if fn.Level > 0 {
				return nil, fmt.Errorf("rstar: frozen internal node %d has leaf entry", id)
			}
			n.Entries[i] = e
		}
		return n, nil
	}
	root, err := build(0)
	if err != nil {
		return nil, err
	}
	if int(root.Level) != f.Height-1 {
		return nil, fmt.Errorf("rstar: frozen root level %d != height-1 %d", root.Level, f.Height-1)
	}
	t.root = root
	t.height = f.Height
	t.size = f.Count
	return t, nil
}
