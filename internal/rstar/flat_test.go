package rstar

import (
	"math/rand"
	"testing"

	"tartree/internal/geo"
)

// Freeze → Thaw must reproduce the pointer tree exactly: same structure,
// same entries, valid parent/slot caches.
func TestFreezeThawRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cfg := Config{Dims: 2, Capacity: 12}
	tr := New(cfg)
	for i := 0; i < 2500; i++ {
		if err := tr.Insert(Entry{Rect: pt(r.Float64()*100, r.Float64()*100), Item: Item(i)}); err != nil {
			t.Fatal(err)
		}
	}
	f := tr.Freeze()
	if f.Count != tr.Len() || f.Height != tr.Height() || f.Dims != tr.Dims() {
		t.Fatalf("frozen header: count=%d height=%d dims=%d", f.Count, f.Height, f.Dims)
	}
	leaves, internals := tr.NodeCount()
	if len(f.Nodes) != leaves+internals {
		t.Fatalf("frozen %d nodes, pointer tree has %d", len(f.Nodes), leaves+internals)
	}
	th, err := f.Thaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Check(); err != nil {
		t.Fatal(err)
	}
	if th.Len() != tr.Len() || th.Height() != tr.Height() {
		t.Fatalf("thawed len=%d height=%d", th.Len(), th.Height())
	}
	// Re-freezing the thawed tree must reproduce the same canonical form.
	f2 := th.Freeze()
	if len(f2.Nodes) != len(f.Nodes) || len(f2.Items) != len(f.Items) {
		t.Fatal("refreeze changed shape")
	}
	for i := range f.Nodes {
		if f.Nodes[i] != f2.Nodes[i] {
			t.Fatalf("node %d differs after thaw+refreeze", i)
		}
	}
	for i := range f.Items {
		if f.Items[i] != f2.Items[i] || f.Rects[i] != f2.Rects[i] || f.Children[i] != f2.Children[i] {
			t.Fatalf("entry %d differs after thaw+refreeze", i)
		}
	}
	// The thawed tree stays mutable.
	for i := 0; i < 200; i++ {
		if err := th.Insert(Entry{Rect: pt(r.Float64()*100, r.Float64()*100), Item: Item(10000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := th.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFreezeEmptyTree(t *testing.T) {
	cfg := Config{Dims: 2, Capacity: 8}
	f := New(cfg).Freeze()
	if len(f.Nodes) != 1 || f.Count != 0 {
		t.Fatalf("nodes=%d count=%d", len(f.Nodes), f.Count)
	}
	th, err := f.Thaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if th.Len() != 0 || th.Height() != 1 {
		t.Fatalf("len=%d height=%d", th.Len(), th.Height())
	}
}

// Thaw must reject corrupt structures instead of panicking or recursing
// forever: cycles, out-of-bounds entry runs, double references, level skew.
func TestThawRejectsCorruptStructures(t *testing.T) {
	cfg := Config{Dims: 2, Capacity: 8}
	leaf := func() FlatNode { return FlatNode{Level: 0, Start: 0, Count: 1} }
	cases := map[string]*FlatTree{
		"no nodes": {Dims: 2, Height: 1},
		"entry run out of bounds": {
			Dims: 2, Height: 1, Count: 2,
			Nodes: []FlatNode{{Level: 0, Start: 0, Count: 5}},
			Rects: make([]geo.Rect, 2), Children: []int32{-1, -1}, Items: []int64{1, 2}, Data: make([]any, 2),
		},
		"self cycle": {
			Dims: 2, Height: 2, Count: 1,
			Nodes: []FlatNode{{Level: 1, Start: 0, Count: 1}},
			Rects: make([]geo.Rect, 1), Children: []int32{0}, Items: []int64{0}, Data: make([]any, 1),
		},
		"double reference": {
			Dims: 2, Height: 2, Count: 2,
			Nodes: []FlatNode{{Level: 1, Start: 0, Count: 2}, leaf()},
			Rects: make([]geo.Rect, 3), Children: []int32{1, 1, -1}, Items: []int64{0, 0, 7}, Data: make([]any, 3),
		},
		"level skew": {
			Dims: 2, Height: 3, Count: 1,
			Nodes: []FlatNode{{Level: 2, Start: 0, Count: 1}, {Level: 0, Start: 1, Count: 1}},
			Rects: make([]geo.Rect, 2), Children: []int32{1, -1}, Items: []int64{0, 7}, Data: make([]any, 2),
		},
		"slab length mismatch": {
			Dims: 2, Height: 1, Count: 1,
			Nodes: []FlatNode{leaf()},
			Rects: make([]geo.Rect, 1), Children: []int32{-1, -1}, Items: []int64{1}, Data: make([]any, 1),
		},
		"child in leaf": {
			Dims: 2, Height: 2, Count: 1,
			Nodes: []FlatNode{{Level: 0, Start: 0, Count: 1}, leaf()},
			Rects: make([]geo.Rect, 2), Children: []int32{1, -1}, Items: []int64{0, 1}, Data: make([]any, 2),
		},
	}
	for name, f := range cases {
		if _, err := f.Thaw(cfg); err == nil {
			t.Errorf("%s: corrupt structure accepted", name)
		}
	}
}

func TestFlatBytesAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	tr := New(Config{Dims: 2, Capacity: 16})
	for i := 0; i < 1000; i++ {
		if err := tr.Insert(Entry{Rect: pt(r.Float64()*10, r.Float64()*10), Item: Item(i)}); err != nil {
			t.Fatal(err)
		}
	}
	f := tr.Freeze()
	if f.Bytes() <= 0 || tr.MemoryBytes() <= 0 {
		t.Fatalf("bytes: flat=%d pointer=%d", f.Bytes(), tr.MemoryBytes())
	}
	// The flat slabs drop Parent pointers and per-node slice headers, so
	// they should be strictly smaller than the pointer representation.
	if f.Bytes() >= tr.MemoryBytes() {
		t.Errorf("flat %d B not smaller than pointer %d B", f.Bytes(), tr.MemoryBytes())
	}
	if (*FlatTree)(nil).Bytes() != 0 {
		t.Error("nil Bytes() != 0")
	}
}
